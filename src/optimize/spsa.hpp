#pragma once

#include <cstdint>

#include "optimize/optimizer.hpp"

namespace hgp::opt {

/// Simultaneous Perturbation Stochastic Approximation (Spall 1992): two
/// objective evaluations per iteration regardless of dimension, which is why
/// it is popular for shot-noisy VQA training.
class Spsa : public Optimizer {
 public:
  struct Options {
    int max_iterations = 100;
    double a = 0.2;    // step-size numerator
    double c = 0.15;   // perturbation size
    double alpha = 0.602;
    double gamma = 0.101;
    double stability = 10.0;  // the "A" offset in the step schedule
    std::uint64_t seed = 17;
    /// Checked at each iteration boundary; when fired, the search returns
    /// its best point so far with stopped_early = true.
    std::shared_ptr<const CancelToken> cancel;
  };

  Spsa() = default;
  explicit Spsa(Options options) : options_(options) {}

  OptimizeResult minimize(const Objective& f, std::vector<double> x0,
                          const Bounds& bounds = {}) const override;
  /// Each iteration's perturbation pair {x+ckΔ, x-ckΔ} is one batch.
  OptimizeResult minimize_batch(const BatchObjective& f, std::vector<double> x0,
                                const Bounds& bounds = {}) const override;
  std::string name() const override { return "SPSA"; }

 private:
  Options options_ = {};
};

}  // namespace hgp::opt
