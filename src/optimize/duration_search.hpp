#pragma once

#include <functional>
#include <vector>

namespace hgp::opt {

/// Step I of the paper's workflow (§IV-B): binary search for the minimum
/// pulse duration (in multiples of the hardware granularity, 32 dt for
/// Gaussian waveforms) that keeps the trained score within `keep_fraction`
/// of the full-duration baseline.
struct DurationSearchResult {
  int best_duration = 0;
  double baseline_score = 0.0;
  double best_score = 0.0;
  /// (duration, score) pairs in evaluation order, including the baseline.
  std::vector<std::pair<int, double>> trace;
};

/// `score_at` must return the (higher-is-better) trained score of the model
/// with the pulse layer rescaled to the given duration.
DurationSearchResult binary_search_duration(const std::function<double(int)>& score_at,
                                            int initial_duration, int granularity = 32,
                                            double keep_fraction = 0.97);

}  // namespace hgp::opt
