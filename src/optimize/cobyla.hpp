#pragma once

#include "optimize/optimizer.hpp"

namespace hgp::opt {

/// Derivative-free linear-approximation trust-region optimizer with the
/// COBYLA control flow (Powell 1994): keep a simplex of n+1 interpolation
/// points, fit a linear model of the objective, step to the trust-region
/// boundary along the model gradient, and shrink the trust radius when the
/// model stops predicting descent. Our VQA problems are bound-constrained
/// only, so Powell's general nonlinear-constraint machinery is replaced by
/// bound clipping (documented simplification; see DESIGN.md).
class Cobyla : public Optimizer {
 public:
  struct Options {
    int max_evaluations = 50;  // the paper caps COBYLA at 50 iterations
    double rho_begin = 0.4;
    double rho_end = 1e-4;
    /// Checked at each iteration boundary; when fired, the search returns
    /// its best point so far with stopped_early = true.
    std::shared_ptr<const CancelToken> cancel;
  };

  Cobyla() = default;
  explicit Cobyla(Options options) : options_(options) {}

  OptimizeResult minimize(const Objective& f, std::vector<double> x0,
                          const Bounds& bounds = {}) const override;
  /// The n+1-point interpolation set builds as one batch; the trust-region
  /// trial points stay sequential (each depends on the refreshed model).
  OptimizeResult minimize_batch(const BatchObjective& f, std::vector<double> x0,
                                const Bounds& bounds = {}) const override;
  std::string name() const override { return "COBYLA"; }

 private:
  Options options_ = {};
};

}  // namespace hgp::opt
