#include "optimize/spsa.hpp"

#include <cmath>

#include "common/error.hpp"
#include "common/rng.hpp"

namespace hgp::opt {

OptimizeResult Spsa::minimize(const Objective& f, std::vector<double> x0,
                              const Bounds& bounds) const {
  return minimize_batch(serial_batch(f), std::move(x0), bounds);
}

OptimizeResult Spsa::minimize_batch(const BatchObjective& f, std::vector<double> x0,
                                    const Bounds& bounds) const {
  const std::size_t n = x0.size();
  HGP_REQUIRE(n >= 1, "Spsa: empty parameter vector");
  Rng rng(options_.seed);
  OptimizeResult out;
  bounds.clip(x0);

  std::vector<double> x = x0;
  std::vector<double> best_x = x;
  double best_val = f({x})[0];
  out.evaluations = 1;

  for (int k = 0; k < options_.max_iterations; ++k) {
    if (cancel_requested(options_.cancel)) {
      out.stopped_early = true;
      break;
    }
    const double ak =
        options_.a / std::pow(k + 1 + options_.stability, options_.alpha);
    const double ck = options_.c / std::pow(k + 1, options_.gamma);

    std::vector<double> delta(n);
    for (double& d : delta) d = rng.bernoulli(0.5) ? 1.0 : -1.0;

    std::vector<double> xp = x, xm = x;
    for (std::size_t j = 0; j < n; ++j) {
      xp[j] += ck * delta[j];
      xm[j] -= ck * delta[j];
    }
    bounds.clip(xp);
    bounds.clip(xm);
    // The perturbation pair is independent — one batch, two workers.
    const std::vector<double> pair = f({xp, xm});
    const double fp = pair[0];
    const double fm = pair[1];
    out.evaluations += 2;

    for (std::size_t j = 0; j < n; ++j)
      x[j] -= ak * (fp - fm) / (2.0 * ck * delta[j]);
    bounds.clip(x);

    const double fx = std::min(fp, fm);
    if (fx < best_val) {
      best_val = fx;
      best_x = fp < fm ? xp : xm;
    }
    out.history.push_back(best_val);
    ++out.iterations;
  }

  // Final evaluation at the iterate (often better than the best probe) —
  // skipped on cancellation, where the goal is to stop spending shots.
  if (!out.stopped_early) {
    const double fx = f({x})[0];
    ++out.evaluations;
    if (fx < best_val) {
      best_val = fx;
      best_x = x;
    }
  }
  out.x = std::move(best_x);
  out.value = best_val;
  out.converged = !out.stopped_early;
  return out;
}

}  // namespace hgp::opt
