#include "optimize/gradient.hpp"

#include <cmath>

#include "common/error.hpp"
#include "obs/metrics.hpp"
#include "obs/trace.hpp"

namespace hgp::opt {

std::vector<double> parameter_shift_gradient(const Objective& f, const std::vector<double>& x,
                                             double shift) {
  std::vector<double> g(x.size());
  for (std::size_t i = 0; i < x.size(); ++i) {
    std::vector<double> xp = x, xm = x;
    xp[i] += shift;
    xm[i] -= shift;
    g[i] = (f(xp) - f(xm)) / (2.0 * std::sin(shift));
  }
  return g;
}

std::vector<double> parameter_shift_gradient_batch(const BatchObjective& f,
                                                   const std::vector<double>& x,
                                                   double shift) {
  const std::size_t n = x.size();
  // One span per stencil dispatch: the 2n-point batch handed to the
  // evaluator, plus running totals of dispatches and points.
  static obs::Counter& stencil_batches =
      obs::Registry::global().counter("gradient.stencil_batches");
  static obs::Counter& stencil_points =
      obs::Registry::global().counter("gradient.stencil_points");
  obs::Span span("gradient.stencil_batch");
  stencil_batches.inc();
  stencil_points.inc(2 * n);
  std::vector<std::vector<double>> points;
  points.reserve(2 * n);
  for (std::size_t i = 0; i < n; ++i) {
    std::vector<double> xp = x, xm = x;
    xp[i] += shift;
    xm[i] -= shift;
    points.push_back(std::move(xp));
    points.push_back(std::move(xm));
  }
  const std::vector<double> vals = f(points);
  HGP_REQUIRE(vals.size() == 2 * n,
              "parameter_shift_gradient_batch: evaluator returned wrong batch size");
  std::vector<double> g(n);
  for (std::size_t i = 0; i < n; ++i)
    g[i] = (vals[2 * i] - vals[2 * i + 1]) / (2.0 * std::sin(shift));
  return g;
}

std::vector<double> finite_difference_gradient(const Objective& f, const std::vector<double>& x,
                                               double eps) {
  std::vector<double> g(x.size());
  for (std::size_t i = 0; i < x.size(); ++i) {
    std::vector<double> xp = x, xm = x;
    xp[i] += eps;
    xm[i] -= eps;
    g[i] = (f(xp) - f(xm)) / (2.0 * eps);
  }
  return g;
}

OptimizeResult Adam::minimize(const Objective& f, std::vector<double> x0,
                              const Bounds& bounds) const {
  return minimize_batch(serial_batch(f), std::move(x0), bounds);
}

OptimizeResult Adam::minimize_batch(const BatchObjective& f, std::vector<double> x0,
                                    const Bounds& bounds) const {
  const std::size_t n = x0.size();
  HGP_REQUIRE(n >= 1, "Adam: empty parameter vector");
  OptimizeResult out;
  bounds.clip(x0);

  // Singleton-batch adapter for the serial gradient modes and the
  // per-iteration probe: evaluation order matches the legacy scalar path
  // exactly.
  const Objective scalar = [&f](const std::vector<double>& p) { return f({p})[0]; };

  std::vector<double> x = x0, m(n, 0.0), v(n, 0.0);
  double best_val = scalar(x);
  std::vector<double> best_x = x;
  out.evaluations = 1;

  for (int k = 1; k <= options_.max_iterations; ++k) {
    if (cancel_requested(options_.cancel)) {
      out.stopped_early = true;
      break;
    }
    std::vector<double> g;
    switch (options_.mode) {
      case GradientMode::BatchedParameterShift:
        // All 2·n shift points in one call — the evaluator decides whether
        // they run as candidate lanes, pooled workers, or serially.
        g = parameter_shift_gradient_batch(f, x);
        break;
      case GradientMode::ParameterShift:
        g = parameter_shift_gradient(scalar, x);
        break;
      default:
        g = finite_difference_gradient(scalar, x, options_.fd_eps);
    }
    out.evaluations += static_cast<int>(2 * n);

    for (std::size_t j = 0; j < n; ++j) {
      m[j] = options_.beta1 * m[j] + (1.0 - options_.beta1) * g[j];
      v[j] = options_.beta2 * v[j] + (1.0 - options_.beta2) * g[j] * g[j];
      const double mhat = m[j] / (1.0 - std::pow(options_.beta1, k));
      const double vhat = v[j] / (1.0 - std::pow(options_.beta2, k));
      x[j] -= options_.learning_rate * mhat / (std::sqrt(vhat) + options_.epsilon);
    }
    bounds.clip(x);

    const double fx = scalar(x);
    ++out.evaluations;
    if (fx < best_val) {
      best_val = fx;
      best_x = x;
    }
    out.history.push_back(best_val);
    ++out.iterations;
  }
  out.x = std::move(best_x);
  out.value = best_val;
  out.converged = !out.stopped_early;
  return out;
}

}  // namespace hgp::opt
