#include "optimize/optimizer.hpp"

#include <algorithm>

#include "common/error.hpp"

namespace hgp::opt {

void Bounds::clip(std::vector<double>& x) const {
  if (!active()) return;
  HGP_REQUIRE(lo.size() == x.size() && hi.size() == x.size(), "Bounds: dimension mismatch");
  for (std::size_t i = 0; i < x.size(); ++i) x[i] = std::clamp(x[i], lo[i], hi[i]);
}

OptimizeResult Optimizer::minimize_batch(const BatchObjective& f, std::vector<double> x0,
                                         const Bounds& bounds) const {
  const Objective scalar = [&f](const std::vector<double>& x) { return f({x})[0]; };
  return minimize(scalar, std::move(x0), bounds);
}

int iterations_to_converge(const OptimizeResult& result, double tol) {
  if (result.history.empty()) return result.iterations;
  const double target = result.history.back() + std::abs(tol);
  for (std::size_t i = 0; i < result.history.size(); ++i)
    if (result.history[i] <= target) return static_cast<int>(i) + 1;
  return static_cast<int>(result.history.size());
}

}  // namespace hgp::opt
