#pragma once

#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "common/cancel.hpp"
#include "optimize/batch.hpp"

namespace hgp::opt {

/// Box bounds; empty vectors mean unbounded. Optimizers clip candidates.
struct Bounds {
  std::vector<double> lo;
  std::vector<double> hi;

  bool active() const { return !lo.empty(); }
  void clip(std::vector<double>& x) const;
};

struct OptimizeResult {
  std::vector<double> x;
  double value = 0.0;
  int evaluations = 0;
  int iterations = 0;
  bool converged = false;
  /// True when a cancel token stopped the search at an iteration boundary:
  /// x/value/history reflect the best point seen so far, not a converged
  /// optimum.
  bool stopped_early = false;
  /// Best objective value after each iteration — convergence curves (the
  /// paper compares pulse-level vs hybrid training speed with these).
  std::vector<double> history;
};

/// Common interface for the derivative-free optimizers used machine-in-loop.
class Optimizer {
 public:
  virtual ~Optimizer() = default;
  virtual OptimizeResult minimize(const Objective& f, std::vector<double> x0,
                                  const Bounds& bounds = {}) const = 0;
  /// Batched entry point: independent candidates (perturbation pairs,
  /// simplex vertices, trial points) arrive as one BatchObjective call, so a
  /// parallel evaluator can run them concurrently. The default adapter feeds
  /// singleton batches through minimize(); SPSA, Nelder-Mead, and COBYLA
  /// override it with real batching whose evaluation sequence matches their
  /// serial path exactly.
  virtual OptimizeResult minimize_batch(const BatchObjective& f, std::vector<double> x0,
                                        const Bounds& bounds = {}) const;
  virtual std::string name() const = 0;
};

/// Iterations needed to get within `tol` of the final value — the
/// "training time to convergence" metric of Fig. 5.
int iterations_to_converge(const OptimizeResult& result, double tol = 0.01);

}  // namespace hgp::opt
