#include "optimize/duration_search.hpp"

#include "common/error.hpp"

namespace hgp::opt {

DurationSearchResult binary_search_duration(const std::function<double(int)>& score_at,
                                            int initial_duration, int granularity,
                                            double keep_fraction) {
  HGP_REQUIRE(granularity > 0, "binary_search_duration: bad granularity");
  HGP_REQUIRE(initial_duration >= granularity && initial_duration % granularity == 0,
              "binary_search_duration: initial duration must be a positive multiple of the "
              "granularity");

  DurationSearchResult out;
  out.baseline_score = score_at(initial_duration);
  out.trace.emplace_back(initial_duration, out.baseline_score);
  const double floor = keep_fraction * out.baseline_score;

  int lo = 1;                                   // in units of granularity
  int hi = initial_duration / granularity;     // known-good
  out.best_duration = initial_duration;
  out.best_score = out.baseline_score;

  while (lo < hi) {
    const int mid = lo + (hi - lo) / 2;
    const int duration = mid * granularity;
    const double score = score_at(duration);
    out.trace.emplace_back(duration, score);
    if (score >= floor) {
      hi = mid;
      out.best_duration = duration;
      out.best_score = score;
    } else {
      lo = mid + 1;
    }
  }
  return out;
}

}  // namespace hgp::opt
