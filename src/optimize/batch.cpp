#include "optimize/batch.hpp"

namespace hgp::opt {

BatchObjective serial_batch(Objective f) {
  return [f = std::move(f)](const std::vector<std::vector<double>>& xs) {
    std::vector<double> vals;
    vals.reserve(xs.size());
    for (const std::vector<double>& x : xs) vals.push_back(f(x));
    return vals;
  };
}

void BatchDispatcher::run(std::vector<std::function<void()>>& tasks) {
  for (std::function<void()>& task : tasks) task();
}

std::vector<double> parallel_map(BatchDispatcher& dispatcher, std::size_t n,
                                 const std::function<double(std::size_t)>& fn) {
  std::vector<double> vals(n, 0.0);
  std::vector<std::function<void()>> tasks;
  tasks.reserve(n);
  for (std::size_t i = 0; i < n; ++i)
    tasks.push_back([&vals, &fn, i] { vals[i] = fn(i); });
  dispatcher.run(tasks);
  return vals;
}

std::vector<double> parallel_map(BatchDispatcher* dispatcher, std::size_t n,
                                 const std::function<double(std::size_t)>& fn) {
  BatchDispatcher inline_dispatcher;
  return parallel_map(dispatcher != nullptr ? *dispatcher : inline_dispatcher, n, fn);
}

}  // namespace hgp::opt
