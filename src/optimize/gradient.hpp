#pragma once

#include "optimize/optimizer.hpp"

namespace hgp::opt {

/// Gradient estimate by the parameter-shift rule (exact for expectation
/// values of circuits whose gates are e^{-iθP/2}; with shot noise it is an
/// unbiased estimator). shift = π/2 reproduces the textbook rule.
std::vector<double> parameter_shift_gradient(const Objective& f, const std::vector<double>& x,
                                             double shift = 1.5707963267948966);

/// Parameter-shift gradient as one batch: all 2·n shift points (ordered
/// x+s·e_0, x−s·e_0, x+s·e_1, …, the serial rule's evaluation order) go out
/// in a single BatchObjective call, so a candidate-lane or worker-pool
/// evaluator amortizes every shared gate application across the whole
/// gradient. Element-wise identical to parameter_shift_gradient whenever the
/// batch evaluator matches the scalar one point-for-point.
std::vector<double> parameter_shift_gradient_batch(const BatchObjective& f,
                                                   const std::vector<double>& x,
                                                   double shift = 1.5707963267948966);

/// Central finite differences (for pulse parameters, where no shift rule
/// applies).
std::vector<double> finite_difference_gradient(const Objective& f, const std::vector<double>& x,
                                               double eps = 1e-3);

/// Adam on top of one of the gradient estimators above — the "enabling
/// gradient descent for pulse-level VQAs" baseline the paper cites.
class Adam : public Optimizer {
 public:
  enum class GradientMode {
    ParameterShift,
    FiniteDifference,
    /// Parameter-shift with all 2·n shift points submitted as one
    /// BatchObjective call per iteration — the same numbers as
    /// ParameterShift when the evaluator is point-exact, but a lane-batched
    /// or pooled evaluator runs the whole gradient concurrently.
    BatchedParameterShift,
  };

  struct Options {
    int max_iterations = 100;
    double learning_rate = 0.1;
    double beta1 = 0.9;
    double beta2 = 0.999;
    double epsilon = 1e-8;
    GradientMode mode = GradientMode::FiniteDifference;
    double fd_eps = 1e-3;
    /// Checked at each iteration boundary; when fired, the search returns
    /// its best point so far with stopped_early = true.
    std::shared_ptr<const CancelToken> cancel;
  };

  Adam() = default;
  explicit Adam(Options options) : options_(options) {}

  OptimizeResult minimize(const Objective& f, std::vector<double> x0,
                          const Bounds& bounds = {}) const override;
  /// Real batching for BatchedParameterShift (one 2·n-candidate call per
  /// iteration); the other modes feed singleton batches in the serial
  /// evaluation order, so traces are unchanged.
  OptimizeResult minimize_batch(const BatchObjective& f, std::vector<double> x0,
                                const Bounds& bounds = {}) const override;
  std::string name() const override { return "Adam"; }

 private:
  Options options_ = {};
};

}  // namespace hgp::opt
