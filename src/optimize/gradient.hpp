#pragma once

#include "optimize/optimizer.hpp"

namespace hgp::opt {

/// Gradient estimate by the parameter-shift rule (exact for expectation
/// values of circuits whose gates are e^{-iθP/2}; with shot noise it is an
/// unbiased estimator). shift = π/2 reproduces the textbook rule.
std::vector<double> parameter_shift_gradient(const Objective& f, const std::vector<double>& x,
                                             double shift = 1.5707963267948966);

/// Central finite differences (for pulse parameters, where no shift rule
/// applies).
std::vector<double> finite_difference_gradient(const Objective& f, const std::vector<double>& x,
                                               double eps = 1e-3);

/// Adam on top of one of the gradient estimators above — the "enabling
/// gradient descent for pulse-level VQAs" baseline the paper cites.
class Adam : public Optimizer {
 public:
  enum class GradientMode { ParameterShift, FiniteDifference };

  struct Options {
    int max_iterations = 100;
    double learning_rate = 0.1;
    double beta1 = 0.9;
    double beta2 = 0.999;
    double epsilon = 1e-8;
    GradientMode mode = GradientMode::FiniteDifference;
    double fd_eps = 1e-3;
  };

  Adam() = default;
  explicit Adam(Options options) : options_(options) {}

  OptimizeResult minimize(const Objective& f, std::vector<double> x0,
                          const Bounds& bounds = {}) const override;
  std::string name() const override { return "Adam"; }

 private:
  Options options_ = {};
};

}  // namespace hgp::opt
