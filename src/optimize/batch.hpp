#pragma once

#include <functional>
#include <vector>

namespace hgp::opt {

/// Objective to minimize (VQA drivers pass the negative cost, since QAOA
/// maximizes the cut expectation).
using Objective = std::function<double(const std::vector<double>&)>;

/// Batched objective: evaluate a list of independent candidate parameter
/// vectors, return their values in the same order. Optimizers submit every
/// mutually-independent group of candidates (SPSA perturbation pairs,
/// simplex vertices, COBYLA trial points) in one call, so a parallel
/// evaluator can fan them out across workers. For a fixed batch structure
/// the optimizer's result depends only on the returned values, never on how
/// the batch was executed.
using BatchObjective =
    std::function<std::vector<double>(const std::vector<std::vector<double>>&)>;

/// Adapt a scalar objective: candidates evaluate sequentially in index
/// order, so a batched optimizer driven through it is
/// evaluation-for-evaluation identical to the serial path.
BatchObjective serial_batch(Objective f);

/// Runs a batch of independent tasks to completion. The base implementation
/// executes them inline in order; serve::EvalService overrides it with a
/// worker pool. Defined in optimize/ so core-layer drivers can accept a
/// dispatcher without depending on the serve subsystem.
class BatchDispatcher {
 public:
  virtual ~BatchDispatcher() = default;
  virtual void run(std::vector<std::function<void()>>& tasks);
};

/// Evaluate fn(0..n-1) through the dispatcher and collect the values — the
/// fan-out skeleton shared by the batched QAOA/VQE/landscape drivers. The
/// pointer overload treats null as "run inline" (the drivers' optional-
/// dispatcher convention).
std::vector<double> parallel_map(BatchDispatcher& dispatcher, std::size_t n,
                                 const std::function<double(std::size_t)>& fn);
std::vector<double> parallel_map(BatchDispatcher* dispatcher, std::size_t n,
                                 const std::function<double(std::size_t)>& fn);

}  // namespace hgp::opt
