#include "optimize/cobyla.hpp"

#include <algorithm>
#include <cmath>

#include "common/error.hpp"
#include "common/rng.hpp"
#include "linalg/matrix.hpp"
#include "linalg/solve.hpp"

namespace hgp::opt {

namespace {

/// Solve the n x n linear interpolation system for the model gradient g:
/// (x_i - x_base) · g = f_i - f_base. Returns false on singularity.
bool model_gradient(const std::vector<std::vector<double>>& pts,
                    const std::vector<double>& vals, std::size_t base,
                    std::vector<double>& g) {
  const std::size_t n = pts[0].size();
  la::CMat a(n, n);
  la::CVec b(n);
  std::size_t row = 0;
  for (std::size_t i = 0; i < pts.size(); ++i) {
    if (i == base) continue;
    for (std::size_t j = 0; j < n; ++j) a(row, j) = pts[i][j] - pts[base][j];
    b[row] = vals[i] - vals[base];
    ++row;
  }
  g.assign(n, 0.0);
  try {
    const la::CVec sol = la::lu_solve(a, b);
    for (std::size_t j = 0; j < n; ++j) g[j] = sol[j].real();
  } catch (const Error&) {
    return false;
  }
  return true;
}

double dist2(const std::vector<double>& a, const std::vector<double>& b) {
  double s = 0.0;
  for (std::size_t i = 0; i < a.size(); ++i) s += (a[i] - b[i]) * (a[i] - b[i]);
  return s;
}

}  // namespace

OptimizeResult Cobyla::minimize(const Objective& f, std::vector<double> x0,
                                const Bounds& bounds) const {
  return minimize_batch(serial_batch(f), std::move(x0), bounds);
}

OptimizeResult Cobyla::minimize_batch(const BatchObjective& f, std::vector<double> x0,
                                      const Bounds& bounds) const {
  const std::size_t n = x0.size();
  HGP_REQUIRE(n >= 1, "Cobyla: empty parameter vector");
  OptimizeResult out;
  bounds.clip(x0);

  double rho = options_.rho_begin;
  int evals = 0;
  auto eval = [&](const std::vector<double>& x) {
    ++evals;
    return f({x})[0];
  };

  // Interpolation set: x0 plus rho steps along each axis. Each later
  // iteration costs exactly one evaluation (Powell's budget discipline; the
  // paper runs COBYLA with a 50-evaluation cap on 19+ parameters). The set
  // is mutually independent — one batch, capped at the evaluation budget
  // (points beyond it keep the default value, as in the serial path).
  std::vector<std::vector<double>> pts(n + 1, x0);
  std::vector<double> vals(n + 1);
  {
    const std::size_t budget = static_cast<std::size_t>(
        std::max(0, options_.max_evaluations));
    const std::size_t initial = std::min(n + 1, budget == 0 ? std::size_t{1} : budget);
    for (std::size_t i = 0; i + 1 < initial; ++i) {
      pts[i + 1][i] += rho;
      bounds.clip(pts[i + 1]);
    }
    std::vector<std::vector<double>> batch(pts.begin(),
                                           pts.begin() + static_cast<long>(initial));
    const std::vector<double> batch_vals = f(batch);
    for (std::size_t i = 0; i < initial; ++i) vals[i] = batch_vals[i];
    evals += static_cast<int>(initial);
  }

  auto best_index = [&]() {
    return static_cast<std::size_t>(std::min_element(vals.begin(), vals.end()) - vals.begin());
  };
  auto replace_index = [&](std::size_t best) {
    // Replace the worst value; break ties toward the point furthest from the
    // incumbent to keep the simplex from collapsing.
    std::size_t worst = best == 0 ? 1 : 0;
    for (std::size_t i = 0; i < pts.size(); ++i) {
      if (i == best) continue;
      if (vals[i] > vals[worst] ||
          (vals[i] == vals[worst] && dist2(pts[i], pts[best]) > dist2(pts[worst], pts[best])))
        worst = i;
    }
    return worst;
  };

  out.history.push_back(vals[best_index()]);
  Rng geometry_rng(0xC0B71Aull);
  int no_progress = 0;
  int since_refresh = 0;

  while (evals < options_.max_evaluations && rho > options_.rho_end) {
    if (cancel_requested(options_.cancel)) {
      out.stopped_early = true;
      break;
    }
    // Noisy objectives: an incumbent whose stored value was a lucky draw
    // anchors the search forever. Refresh it periodically so the model keeps
    // comparing against an honest estimate.
    if (++since_refresh >= 6 && evals + 1 < options_.max_evaluations) {
      const std::size_t b = best_index();
      vals[b] = eval(pts[b]);
      since_refresh = 0;
    }
    const std::size_t best = best_index();
    std::vector<double> g;
    std::vector<double> cand = pts[best];

    if (model_gradient(pts, vals, best, g)) {
      double gnorm = 0.0;
      for (double v : g) gnorm += v * v;
      gnorm = std::sqrt(gnorm);
      if (gnorm > 1e-14) {
        for (std::size_t j = 0; j < n; ++j) cand[j] -= rho * g[j] / gnorm;
      } else {
        for (std::size_t j = 0; j < n; ++j)
          cand[j] += rho * geometry_rng.normal() / std::sqrt(double(n));
      }
    } else {
      // Degenerate geometry: probe a random direction at the trust radius.
      for (std::size_t j = 0; j < n; ++j)
        cand[j] += rho * geometry_rng.normal() / std::sqrt(double(n));
    }
    bounds.clip(cand);

    double fc = eval(cand);
    bool improved = fc < vals[best];
    if (improved && evals < options_.max_evaluations && !g.empty()) {
      // Expansion: a successful trust-region step often under-shoots early
      // in training; probe further along the same direction.
      double gnorm = 0.0;
      for (double v : g) gnorm += v * v;
      gnorm = std::sqrt(gnorm);
      if (gnorm > 1e-14) {
        std::vector<double> cand2 = pts[best];
        for (std::size_t j = 0; j < n; ++j) cand2[j] -= 2.5 * rho * g[j] / gnorm;
        bounds.clip(cand2);
        const double fc2 = eval(cand2);
        if (fc2 < fc) {
          fc = fc2;
          cand = std::move(cand2);
        }
      }
    }
    const std::size_t victim = replace_index(best);
    if (fc < vals[victim]) {
      pts[victim] = std::move(cand);
      vals[victim] = fc;
    }
    if (improved) {
      no_progress = 0;
    } else if (++no_progress >= 3) {
      // Shot-noisy objectives produce spurious "no improvement" verdicts;
      // be patient before trusting them enough to shrink the radius.
      rho *= 0.7;
      no_progress = 0;
    }

    ++out.iterations;
    out.history.push_back(vals[best_index()]);
  }

  const std::size_t best = best_index();
  out.x = pts[best];
  out.value = vals[best];
  out.evaluations = evals;
  out.converged = rho <= options_.rho_end;
  return out;
}

}  // namespace hgp::opt
