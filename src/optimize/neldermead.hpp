#pragma once

#include "optimize/optimizer.hpp"

namespace hgp::opt {

/// Classic Nelder–Mead downhill simplex with the standard
/// reflect/expand/contract/shrink moves and bound clipping.
class NelderMead : public Optimizer {
 public:
  struct Options {
    int max_evaluations = 200;
    double initial_step = 0.3;
    double f_tol = 1e-8;
    /// Checked at each iteration boundary; when fired, the search returns
    /// its best point so far with stopped_early = true.
    std::shared_ptr<const CancelToken> cancel;
  };

  NelderMead() = default;
  explicit NelderMead(Options options) : options_(options) {}

  OptimizeResult minimize(const Objective& f, std::vector<double> x0,
                          const Bounds& bounds = {}) const override;
  /// The n+1 initial vertices and the n shrink points are batches; the
  /// reflect/expand/contract probes stay sequential (data-dependent).
  OptimizeResult minimize_batch(const BatchObjective& f, std::vector<double> x0,
                                const Bounds& bounds = {}) const override;
  std::string name() const override { return "Nelder-Mead"; }

 private:
  Options options_ = {};
};

}  // namespace hgp::opt
