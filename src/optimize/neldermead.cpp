#include "optimize/neldermead.hpp"

#include <algorithm>
#include <cmath>
#include <numeric>

#include "common/error.hpp"

namespace hgp::opt {

OptimizeResult NelderMead::minimize(const Objective& f, std::vector<double> x0,
                                    const Bounds& bounds) const {
  return minimize_batch(serial_batch(f), std::move(x0), bounds);
}

OptimizeResult NelderMead::minimize_batch(const BatchObjective& f, std::vector<double> x0,
                                          const Bounds& bounds) const {
  const std::size_t n = x0.size();
  HGP_REQUIRE(n >= 1, "NelderMead: empty parameter vector");
  OptimizeResult out;
  bounds.clip(x0);

  int evals = 0;
  auto eval = [&](std::vector<double> x) {
    bounds.clip(x);
    ++evals;
    return std::pair(f({x})[0], x);
  };

  // Initial simplex: x0 plus one step along each axis, all independent —
  // one batch of n+1 candidates.
  std::vector<std::vector<double>> pts(n + 1, x0);
  std::vector<double> vals(n + 1);
  for (std::size_t i = 0; i < n; ++i) {
    pts[i + 1][i] += options_.initial_step;
    bounds.clip(pts[i + 1]);
  }
  vals = f(pts);
  evals += static_cast<int>(n) + 1;

  std::vector<std::size_t> order(n + 1);
  auto sort_simplex = [&] {
    std::iota(order.begin(), order.end(), 0);
    std::sort(order.begin(), order.end(),
              [&](std::size_t a, std::size_t b) { return vals[a] < vals[b]; });
  };

  while (evals < options_.max_evaluations) {
    if (cancel_requested(options_.cancel)) {
      out.stopped_early = true;
      break;
    }
    sort_simplex();
    out.history.push_back(vals[order[0]]);
    if (std::abs(vals[order[n]] - vals[order[0]]) < options_.f_tol) {
      out.converged = true;
      break;
    }

    const std::size_t worst = order[n];
    // Centroid of all but the worst.
    std::vector<double> centroid(n, 0.0);
    for (std::size_t k = 0; k <= n; ++k) {
      if (k == worst) continue;
      for (std::size_t j = 0; j < n; ++j) centroid[j] += pts[k][j];
    }
    for (double& c : centroid) c /= static_cast<double>(n);

    auto along = [&](double coef) {
      std::vector<double> x(n);
      for (std::size_t j = 0; j < n; ++j)
        x[j] = centroid[j] + coef * (pts[worst][j] - centroid[j]);
      return x;
    };

    auto [fr, xr] = eval(along(-1.0));  // reflection
    if (fr < vals[order[0]]) {
      auto [fe, xe] = eval(along(-2.0));  // expansion
      if (fe < fr) {
        pts[worst] = xe;
        vals[worst] = fe;
      } else {
        pts[worst] = xr;
        vals[worst] = fr;
      }
      ++out.iterations;
      continue;
    }
    if (fr < vals[order[n - 1]]) {
      pts[worst] = xr;
      vals[worst] = fr;
      ++out.iterations;
      continue;
    }
    // Contraction (outside if reflection helped over worst, else inside).
    const bool outside = fr < vals[worst];
    auto [fc, xc] = eval(along(outside ? -0.5 : 0.5));
    if (fc < std::min(fr, vals[worst])) {
      pts[worst] = xc;
      vals[worst] = fc;
      ++out.iterations;
      continue;
    }
    // Shrink toward the best vertex: the surviving vertices move
    // independently — one batch, capped at the remaining budget (vertices
    // beyond it keep their old position and value, as in the serial path).
    const std::size_t best = order[0];
    std::vector<std::size_t> shrunk;
    for (std::size_t k = 0;
         k <= n && evals + static_cast<int>(shrunk.size()) < options_.max_evaluations;
         ++k) {
      if (k == best) continue;
      for (std::size_t j = 0; j < n; ++j)
        pts[k][j] = pts[best][j] + 0.5 * (pts[k][j] - pts[best][j]);
      bounds.clip(pts[k]);
      shrunk.push_back(k);
    }
    std::vector<std::vector<double>> batch;
    batch.reserve(shrunk.size());
    for (std::size_t k : shrunk) batch.push_back(pts[k]);
    if (!batch.empty()) {
      const std::vector<double> batch_vals = f(batch);
      for (std::size_t i = 0; i < shrunk.size(); ++i) vals[shrunk[i]] = batch_vals[i];
      evals += static_cast<int>(shrunk.size());
    }
    ++out.iterations;
  }

  sort_simplex();
  out.x = pts[order[0]];
  out.value = vals[order[0]];
  out.evaluations = evals;
  return out;
}

}  // namespace hgp::opt
