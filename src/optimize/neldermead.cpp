#include "optimize/neldermead.hpp"

#include <algorithm>
#include <cmath>
#include <numeric>

#include "common/error.hpp"

namespace hgp::opt {

OptimizeResult NelderMead::minimize(const Objective& f, std::vector<double> x0,
                                    const Bounds& bounds) const {
  const std::size_t n = x0.size();
  HGP_REQUIRE(n >= 1, "NelderMead: empty parameter vector");
  OptimizeResult out;
  bounds.clip(x0);

  int evals = 0;
  auto eval = [&](std::vector<double> x) {
    bounds.clip(x);
    ++evals;
    return std::pair(f(x), x);
  };

  std::vector<std::vector<double>> pts(n + 1, x0);
  std::vector<double> vals(n + 1);
  {
    auto [v, x] = eval(x0);
    vals[0] = v;
    pts[0] = x;
  }
  for (std::size_t i = 0; i < n; ++i) {
    pts[i + 1][i] += options_.initial_step;
    auto [v, x] = eval(pts[i + 1]);
    vals[i + 1] = v;
    pts[i + 1] = x;
  }

  std::vector<std::size_t> order(n + 1);
  auto sort_simplex = [&] {
    std::iota(order.begin(), order.end(), 0);
    std::sort(order.begin(), order.end(),
              [&](std::size_t a, std::size_t b) { return vals[a] < vals[b]; });
  };

  while (evals < options_.max_evaluations) {
    sort_simplex();
    out.history.push_back(vals[order[0]]);
    if (std::abs(vals[order[n]] - vals[order[0]]) < options_.f_tol) {
      out.converged = true;
      break;
    }

    const std::size_t worst = order[n];
    // Centroid of all but the worst.
    std::vector<double> centroid(n, 0.0);
    for (std::size_t k = 0; k <= n; ++k) {
      if (k == worst) continue;
      for (std::size_t j = 0; j < n; ++j) centroid[j] += pts[k][j];
    }
    for (double& c : centroid) c /= static_cast<double>(n);

    auto along = [&](double coef) {
      std::vector<double> x(n);
      for (std::size_t j = 0; j < n; ++j)
        x[j] = centroid[j] + coef * (pts[worst][j] - centroid[j]);
      return x;
    };

    auto [fr, xr] = eval(along(-1.0));  // reflection
    if (fr < vals[order[0]]) {
      auto [fe, xe] = eval(along(-2.0));  // expansion
      if (fe < fr) {
        pts[worst] = xe;
        vals[worst] = fe;
      } else {
        pts[worst] = xr;
        vals[worst] = fr;
      }
      ++out.iterations;
      continue;
    }
    if (fr < vals[order[n - 1]]) {
      pts[worst] = xr;
      vals[worst] = fr;
      ++out.iterations;
      continue;
    }
    // Contraction (outside if reflection helped over worst, else inside).
    const bool outside = fr < vals[worst];
    auto [fc, xc] = eval(along(outside ? -0.5 : 0.5));
    if (fc < std::min(fr, vals[worst])) {
      pts[worst] = xc;
      vals[worst] = fc;
      ++out.iterations;
      continue;
    }
    // Shrink toward the best vertex.
    const std::size_t best = order[0];
    for (std::size_t k = 0; k <= n && evals < options_.max_evaluations; ++k) {
      if (k == best) continue;
      for (std::size_t j = 0; j < n; ++j)
        pts[k][j] = pts[best][j] + 0.5 * (pts[k][j] - pts[best][j]);
      auto [v, x] = eval(pts[k]);
      vals[k] = v;
      pts[k] = x;
    }
    ++out.iterations;
  }

  sort_simplex();
  out.x = pts[order[0]];
  out.value = vals[order[0]];
  out.evaluations = evals;
  return out;
}

}  // namespace hgp::opt
