#pragma once

#include <sstream>
#include <stdexcept>
#include <string>

namespace hgp {

/// Exception type thrown by all hgp components on precondition violations
/// and invalid arguments.
class Error : public std::runtime_error {
 public:
  explicit Error(const std::string& what) : std::runtime_error(what) {}
};

namespace detail {
[[noreturn]] inline void fail(const char* cond, const char* file, int line,
                              const std::string& msg) {
  std::ostringstream os;
  os << file << ":" << line << ": requirement failed (" << cond << ")";
  if (!msg.empty()) os << ": " << msg;
  throw Error(os.str());
}
}  // namespace detail

}  // namespace hgp

/// Precondition check that throws hgp::Error. Never compiled out: these guard
/// API boundaries, not hot loops.
#define HGP_REQUIRE(cond, msg)                                         \
  do {                                                                 \
    if (!(cond)) ::hgp::detail::fail(#cond, __FILE__, __LINE__, (msg)); \
  } while (0)
