#pragma once

#include <cstdint>
#include <cstring>
#include <string>

#include "linalg/matrix.hpp"

namespace hgp::io {

/// Minimal binary encoding shared by every on-disk payload (compiled blocks,
/// compiled-schedule IR, the serve::BlockStore records). Fixed-width
/// host-endian integers (little-endian on every target this project
/// supports; a byte-swapped reader would fail the bounds checks and degrade
/// to a cold-compile skip, not corrupt data) and raw IEEE-754 bit patterns
/// for doubles, so a round trip is bit-exact — the property the
/// cross-process bit-identical guarantees rest on. Readers never trust the
/// input: every read is bounds-checked and a failed read poisons the reader
/// instead of throwing, so a truncated or corrupted record degrades to
/// "skip this entry".

/// Appends fields to a byte buffer.
class Writer {
 public:
  explicit Writer(std::string& out) : out_(out) {}

  void u8(std::uint8_t v) { out_.push_back(static_cast<char>(v)); }
  void u32(std::uint32_t v) { raw(&v, sizeof v); }
  void u64(std::uint64_t v) { raw(&v, sizeof v); }
  void i32(std::int32_t v) { raw(&v, sizeof v); }
  void f64(double v) { raw(&v, sizeof v); }
  void str(const std::string& s) {
    u32(static_cast<std::uint32_t>(s.size()));
    out_.append(s);
  }
  /// rows, cols, then the row-major complex entries as raw double pairs.
  void mat(const la::CMat& m) {
    u32(static_cast<std::uint32_t>(m.rows()));
    u32(static_cast<std::uint32_t>(m.cols()));
    if (!m.data().empty())
      raw(m.data().data(), m.data().size() * sizeof(la::cxd));
  }

 private:
  void raw(const void* p, std::size_t n) {
    out_.append(static_cast<const char*>(p), n);
  }
  std::string& out_;
};

/// Consumes fields from a byte range. After any failed read, ok() is false
/// and every subsequent read fails too (outputs untouched), so callers can
/// decode a whole record and check validity once at the end.
class Reader {
 public:
  Reader(const char* data, std::size_t size) : data_(data), size_(size) {}
  explicit Reader(const std::string& buf) : Reader(buf.data(), buf.size()) {}

  bool ok() const { return ok_; }
  std::size_t remaining() const { return size_ - pos_; }

  bool u8(std::uint8_t& v) { return raw(&v, sizeof v); }
  bool u32(std::uint32_t& v) { return raw(&v, sizeof v); }
  bool u64(std::uint64_t& v) { return raw(&v, sizeof v); }
  bool i32(std::int32_t& v) { return raw(&v, sizeof v); }
  bool f64(double& v) { return raw(&v, sizeof v); }
  bool str(std::string& s) {
    std::uint32_t n = 0;
    if (!u32(n) || n > remaining()) return fail();
    s.assign(data_ + pos_, n);
    pos_ += n;
    return true;
  }
  bool mat(la::CMat& m) {
    std::uint32_t rows = 0, cols = 0;
    if (!u32(rows) || !u32(cols)) return false;
    const std::uint64_t count = std::uint64_t{rows} * cols;
    // Divide instead of multiplying: count * sizeof(cxd) can wrap, and a
    // wrapped bound would wave a crafted header through to a huge
    // allocation — readers must degrade, never throw.
    if (count > remaining() / sizeof(la::cxd)) return fail();
    m = la::CMat(rows, cols);
    if (count > 0 && !raw(m.data().data(), count * sizeof(la::cxd))) return false;
    return true;
  }

 private:
  bool raw(void* p, std::size_t n) {
    if (!ok_ || n > remaining()) return fail();
    std::memcpy(p, data_ + pos_, n);
    pos_ += n;
    return true;
  }
  bool fail() {
    ok_ = false;
    return false;
  }
  const char* data_;
  std::size_t size_;
  std::size_t pos_ = 0;
  bool ok_ = true;
};

/// FNV-1a over a byte buffer — the per-record checksum of the block store.
/// Deliberately independent of the backend/schedule fingerprint hashers
/// (which use their own accumulation orders and, between them, different
/// offset bases): a checksum only needs writer/reader agreement, and
/// "unifying" the three would silently invalidate every persisted
/// fingerprint or store in the wild.
inline std::uint64_t fnv1a(const std::string& bytes) {
  std::uint64_t h = 1469598103934665603ull;
  for (const char c : bytes) {
    h ^= static_cast<unsigned char>(c);
    h *= 1099511628211ull;
  }
  return h;
}

}  // namespace hgp::io
