#pragma once

#include <atomic>
#include <chrono>
#include <cstdint>
#include <memory>
#include <stdexcept>
#include <string>

namespace hgp {

/// Why a cooperative cancellation fired.
enum class CancelReason : int {
  None = 0,
  /// An explicit cancel() call — a client withdrew the work.
  Cancelled = 1,
  /// The token's soft deadline passed; observers stop exactly like an
  /// explicit cancel but report the distinct reason (a job layer maps it to
  /// an Expired terminal state instead of Cancelled).
  DeadlineExpired = 2,
};

inline const char* cancel_reason_name(CancelReason reason) {
  switch (reason) {
    case CancelReason::Cancelled: return "cancelled";
    case CancelReason::DeadlineExpired: return "deadline_expired";
    case CancelReason::None: break;
  }
  return "none";
}

/// Thrown by CancelToken::check() at a cooperative checkpoint. Long-running
/// engine loops (the trajectory shot loop, candidate batches) let it unwind
/// to whoever owns the run; a job layer converts it into a terminal job
/// state instead of propagating it to clients.
class CancelledError : public std::runtime_error {
 public:
  explicit CancelledError(CancelReason reason)
      : std::runtime_error(std::string("run stopped: ") + cancel_reason_name(reason)),
        reason_(reason) {}
  CancelReason reason() const { return reason_; }

 private:
  CancelReason reason_;
};

/// Cooperative cancellation + soft-deadline token. One writer side (cancel /
/// set_deadline) and any number of reader threads polling cancelled() at
/// checkpoint boundaries — a relaxed atomic load on the fast path, plus one
/// steady-clock read per poll while a deadline is armed. The first cause to
/// fire latches its reason; later causes never overwrite it.
class CancelToken {
 public:
  CancelToken() = default;
  CancelToken(const CancelToken&) = delete;
  CancelToken& operator=(const CancelToken&) = delete;

  /// Request cancellation. Idempotent; a latched deadline expiry wins if it
  /// fired first.
  void cancel(CancelReason reason = CancelReason::Cancelled) const {
    int expected = 0;
    reason_.compare_exchange_strong(expected, static_cast<int>(reason),
                                    std::memory_order_acq_rel);
  }

  /// Arm (or move) the soft deadline. Observers latch DeadlineExpired on the
  /// first poll past it.
  void set_deadline(std::chrono::steady_clock::time_point deadline) const {
    deadline_ns_.store(
        std::chrono::duration_cast<std::chrono::nanoseconds>(deadline.time_since_epoch())
            .count(),
        std::memory_order_release);
  }
  bool has_deadline() const {
    return deadline_ns_.load(std::memory_order_acquire) != 0;
  }

  /// True once cancellation was requested or the deadline passed. Safe (and
  /// cheap) to call from hot loops at batch/lane-group granularity.
  bool cancelled() const {
    if (reason_.load(std::memory_order_acquire) != 0) return true;
    const std::int64_t dl = deadline_ns_.load(std::memory_order_acquire);
    if (dl != 0 && now_ns() >= dl) {
      cancel(CancelReason::DeadlineExpired);
      return true;
    }
    return false;
  }

  CancelReason reason() const {
    return static_cast<CancelReason>(reason_.load(std::memory_order_acquire));
  }

  /// Cooperative checkpoint: throws CancelledError when the token fired.
  void check() const {
    if (cancelled()) throw CancelledError(reason());
  }

 private:
  static std::int64_t now_ns() {
    return std::chrono::duration_cast<std::chrono::nanoseconds>(
               std::chrono::steady_clock::now().time_since_epoch())
        .count();
  }

  /// 0 = not cancelled, else the latched CancelReason.
  mutable std::atomic<int> reason_{0};
  /// Steady-clock deadline in ns since epoch; 0 = none armed.
  mutable std::atomic<std::int64_t> deadline_ns_{0};
};

/// Null-safe poll for the optional-token convention used by config structs.
inline bool cancel_requested(const std::shared_ptr<const CancelToken>& token) {
  return token && token->cancelled();
}
inline bool cancel_requested(const CancelToken* token) {
  return token != nullptr && token->cancelled();
}

}  // namespace hgp
