#include "common/rng.hpp"

#include <cmath>

#include "common/error.hpp"

namespace hgp {

namespace {
std::uint64_t splitmix64(std::uint64_t& x) {
  x += 0x9e3779b97f4a7c15ull;
  std::uint64_t z = x;
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ull;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebull;
  return z ^ (z >> 31);
}

std::uint64_t rotl(std::uint64_t x, int k) { return (x << k) | (x >> (64 - k)); }
}  // namespace

Rng::Rng(std::uint64_t seed) {
  std::uint64_t sm = seed;
  for (auto& s : s_) s = splitmix64(sm);
}

Rng Rng::child(std::uint64_t base, std::uint64_t stream) {
  // Mix the stream index into the base with one splitmix round so adjacent
  // streams land far apart; the constructor's per-word splitmix then expands
  // the combined seed into a decorrelated xoshiro state.
  std::uint64_t x = base ^ (0x9e3779b97f4a7c15ull * (stream + 1));
  return Rng(splitmix64(x));
}

std::uint64_t Rng::next_u64() {
  const std::uint64_t result = rotl(s_[0] + s_[3], 23) + s_[0];
  const std::uint64_t t = s_[1] << 17;
  s_[2] ^= s_[0];
  s_[3] ^= s_[1];
  s_[1] ^= s_[2];
  s_[0] ^= s_[3];
  s_[2] ^= t;
  s_[3] = rotl(s_[3], 45);
  return result;
}

double Rng::uniform() {
  // 53 random bits mapped into [0, 1).
  return static_cast<double>(next_u64() >> 11) * 0x1.0p-53;
}

double Rng::uniform(double lo, double hi) { return lo + (hi - lo) * uniform(); }

double Rng::normal(double mean, double stddev) {
  if (have_cached_normal_) {
    have_cached_normal_ = false;
    return mean + stddev * cached_normal_;
  }
  double u1 = 0.0;
  do {
    u1 = uniform();
  } while (u1 <= 0.0);
  const double u2 = uniform();
  const double r = std::sqrt(-2.0 * std::log(u1));
  const double theta = 2.0 * M_PI * u2;
  cached_normal_ = r * std::sin(theta);
  have_cached_normal_ = true;
  return mean + stddev * r * std::cos(theta);
}

bool Rng::bernoulli(double p) {
  if (p <= 0.0) return false;
  if (p >= 1.0) return true;
  return uniform() < p;
}

int Rng::uniform_int(int lo, int hi) {
  HGP_REQUIRE(lo <= hi, "uniform_int: empty range");
  const std::uint64_t span = static_cast<std::uint64_t>(hi) - static_cast<std::uint64_t>(lo) + 1;
  // Rejection sampling to avoid modulo bias.
  const std::uint64_t limit = UINT64_MAX - UINT64_MAX % span;
  std::uint64_t r = 0;
  do {
    r = next_u64();
  } while (r >= limit);
  return lo + static_cast<int>(r % span);
}

std::size_t Rng::discrete(const std::vector<double>& weights) {
  HGP_REQUIRE(!weights.empty(), "discrete: no weights");
  double total = 0.0;
  for (double w : weights) {
    HGP_REQUIRE(w >= 0.0, "discrete: negative weight");
    total += w;
  }
  HGP_REQUIRE(total > 0.0, "discrete: all weights zero");
  double x = uniform() * total;
  for (std::size_t i = 0; i < weights.size(); ++i) {
    x -= weights[i];
    if (x < 0.0) return i;
  }
  return weights.size() - 1;
}

}  // namespace hgp
