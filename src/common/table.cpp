#include "common/table.hpp"

#include <algorithm>
#include <iomanip>
#include <sstream>

#include "common/error.hpp"

namespace hgp {

Table::Table(std::vector<std::string> headers) : headers_(std::move(headers)) {
  HGP_REQUIRE(!headers_.empty(), "Table: need at least one column");
}

void Table::add_row(std::vector<std::string> cells) {
  HGP_REQUIRE(cells.size() == headers_.size(), "Table: row width mismatch");
  rows_.push_back(std::move(cells));
}

std::string Table::str() const {
  std::vector<std::size_t> width(headers_.size());
  for (std::size_t c = 0; c < headers_.size(); ++c) width[c] = headers_[c].size();
  for (const auto& row : rows_)
    for (std::size_t c = 0; c < row.size(); ++c) width[c] = std::max(width[c], row[c].size());

  std::ostringstream os;
  auto emit = [&](const std::vector<std::string>& row) {
    for (std::size_t c = 0; c < row.size(); ++c) {
      os << (c == 0 ? "| " : " | ") << std::left << std::setw(static_cast<int>(width[c]))
         << row[c];
    }
    os << " |\n";
  };
  emit(headers_);
  for (std::size_t c = 0; c < headers_.size(); ++c) {
    os << (c == 0 ? "|" : "|") << std::string(width[c] + 2, '-');
  }
  os << "|\n";
  for (const auto& row : rows_) emit(row);
  return os.str();
}

std::string Table::pct(double x, int prec) {
  std::ostringstream os;
  os << std::fixed << std::setprecision(prec) << 100.0 * x << "%";
  return os.str();
}

std::string Table::num(double x, int prec) {
  std::ostringstream os;
  os << std::fixed << std::setprecision(prec) << x;
  return os.str();
}

}  // namespace hgp
