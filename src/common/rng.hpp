#pragma once

#include <cstddef>
#include <cstdint>
#include <vector>

namespace hgp {

/// Deterministic, seedable PRNG (xoshiro256++) plus the distribution helpers
/// used across the library. Every stochastic component takes an Rng& so that
/// whole experiments are reproducible from a single seed.
class Rng {
 public:
  explicit Rng(std::uint64_t seed = 0x9e3779b97f4a7c15ull);

  /// Derive an independent child stream from a base value (typically one
  /// next_u64() draw of a parent Rng) and a stream index. Used by the
  /// executor's parallel shot engine: each shot batch gets child(base, b),
  /// so results are bit-identical regardless of how batches are scheduled
  /// across threads.
  static Rng child(std::uint64_t base, std::uint64_t stream);

  std::uint64_t next_u64();

  /// Uniform double in [0, 1).
  double uniform();
  /// Uniform double in [lo, hi).
  double uniform(double lo, double hi);
  /// Gaussian via Box-Muller (cached pair).
  double normal(double mean = 0.0, double stddev = 1.0);
  /// True with probability p (p clamped to [0, 1]).
  bool bernoulli(double p);
  /// Uniform integer in [lo, hi], inclusive.
  int uniform_int(int lo, int hi);
  /// Index sampled proportionally to non-negative weights.
  std::size_t discrete(const std::vector<double>& weights);

  /// Fisher-Yates shuffle.
  template <typename T>
  void shuffle(std::vector<T>& v) {
    for (std::size_t i = v.size(); i > 1; --i) {
      std::size_t j = static_cast<std::size_t>(uniform_int(0, static_cast<int>(i) - 1));
      std::swap(v[i - 1], v[j]);
    }
  }

 private:
  std::uint64_t s_[4];
  bool have_cached_normal_ = false;
  double cached_normal_ = 0.0;
};

}  // namespace hgp
