#pragma once

#include <string>
#include <vector>

namespace hgp {

/// Minimal aligned ASCII table used by the benchmark harnesses to print
/// paper-style tables (Table I, Table II, figure series).
class Table {
 public:
  explicit Table(std::vector<std::string> headers);

  void add_row(std::vector<std::string> cells);
  /// Render with column alignment and a header separator.
  std::string str() const;

  /// "54.3%" style formatting of a ratio in [0,1].
  static std::string pct(double x, int prec = 1);
  /// Fixed-precision number.
  static std::string num(double x, int prec = 3);

 private:
  std::vector<std::string> headers_;
  std::vector<std::vector<std::string>> rows_;
};

}  // namespace hgp
