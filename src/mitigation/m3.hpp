#pragma once

#include <cstdint>
#include <functional>
#include <map>
#include <vector>

#include "noise/channels.hpp"
#include "sim/statevector.hpp"

namespace hgp::mit {

/// Quasi-probability distribution returned by measurement mitigation
/// (entries can be negative; they sum to ~1).
struct QuasiDistribution {
  std::map<std::uint64_t, double> probs;
  /// Σ|p| ≥ 1 — the sampling-overhead metric of quasi-probabilities.
  double overhead = 1.0;
  int solver_iterations = 0;
  bool converged = false;

  /// Expectation of a diagonal observable given by a per-bitstring value.
  double expectation(const std::function<double(std::uint64_t)>& value) const;
};

/// Matrix-free measurement error mitigation (M3, Nation et al., PRX Quantum
/// 2021): restrict the assignment matrix to the subspace of *observed*
/// bitstrings, normalize its columns within the subspace, and solve
/// Ā x = p_noisy iteratively (GMRES) with the matrix applied on the fly from
/// per-qubit confusion data — no 2^n matrix is ever formed.
class M3Mitigator {
 public:
  /// `errors[i]` is the confusion of measured bit i.
  explicit M3Mitigator(std::vector<noise::ReadoutError> errors);

  /// Mitigate raw counts into a quasi-probability distribution over the
  /// observed bitstrings.
  QuasiDistribution mitigate(const sim::Counts& counts) const;

  std::size_t num_bits() const { return errors_.size(); }

 private:
  std::vector<noise::ReadoutError> errors_;
};

}  // namespace hgp::mit
