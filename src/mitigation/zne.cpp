#include "mitigation/zne.hpp"

#include "common/error.hpp"
#include "linalg/matrix.hpp"
#include "linalg/solve.hpp"

namespace hgp::mit {

qc::Circuit fold_gates(const qc::Circuit& circuit, int scale_factor) {
  HGP_REQUIRE(scale_factor >= 1 && scale_factor % 2 == 1,
              "fold_gates: scale factor must be odd and >= 1");
  qc::Circuit out(circuit.num_qubits());
  const int extra_pairs = (scale_factor - 1) / 2;
  for (const qc::Op& op : circuit.ops()) {
    out.append(op);
    if (op.kind == qc::GateKind::Barrier || op.kind == qc::GateKind::Measure) continue;
    if (op.kind == qc::GateKind::RZ || op.kind == qc::GateKind::P) continue;  // virtual
    for (int k = 0; k < extra_pairs; ++k) {
      // G† then G: build the inverse via a one-op circuit.
      qc::Circuit one(circuit.num_qubits());
      one.append(op);
      const qc::Circuit inverse = one.inverse();
      for (const qc::Op& inv : inverse.ops()) out.append(inv);
      out.append(op);
    }
  }
  return out;
}

double richardson_extrapolate(const std::vector<std::pair<double, double>>& samples) {
  HGP_REQUIRE(samples.size() >= 2, "richardson_extrapolate: need >= 2 samples");
  // Fit a polynomial of degree (k-1) through the k samples; evaluate at 0 —
  // equivalent to Lagrange interpolation at x = 0.
  double result = 0.0;
  for (std::size_t i = 0; i < samples.size(); ++i) {
    double basis = 1.0;
    for (std::size_t j = 0; j < samples.size(); ++j) {
      if (i == j) continue;
      basis *= (0.0 - samples[j].first) / (samples[i].first - samples[j].first);
    }
    result += samples[i].second * basis;
  }
  return result;
}

}  // namespace hgp::mit
