#include "mitigation/cvar.hpp"

#include <algorithm>
#include <vector>

#include "common/error.hpp"

namespace hgp::mit {

namespace {
struct Entry {
  double value;
  double weight;
};

double cvar_over_entries(std::vector<Entry> entries, double alpha, bool maximize) {
  HGP_REQUIRE(alpha > 0.0 && alpha <= 1.0, "cvar: alpha must be in (0, 1]");
  std::sort(entries.begin(), entries.end(), [&](const Entry& a, const Entry& b) {
    return maximize ? a.value > b.value : a.value < b.value;
  });
  double total = 0.0;
  for (const Entry& e : entries) total += std::max(e.weight, 0.0);
  HGP_REQUIRE(total > 0.0, "cvar: no positive weight");
  const double budget = alpha * total;

  double used = 0.0, acc = 0.0;
  for (const Entry& e : entries) {
    const double w = std::max(e.weight, 0.0);
    if (w == 0.0) continue;
    const double take = std::min(w, budget - used);
    acc += take * e.value;
    used += take;
    if (used >= budget - 1e-15) break;
  }
  return acc / budget;
}
}  // namespace

double cvar_from_counts(const sim::Counts& counts,
                        const std::function<double(std::uint64_t)>& value, double alpha,
                        bool maximize) {
  std::vector<Entry> entries;
  entries.reserve(counts.size());
  for (const auto& [bits, n] : counts)
    entries.push_back(Entry{value(bits), static_cast<double>(n)});
  return cvar_over_entries(std::move(entries), alpha, maximize);
}

double cvar_from_quasi(const QuasiDistribution& quasi,
                       const std::function<double(std::uint64_t)>& value, double alpha,
                       bool maximize) {
  std::vector<Entry> entries;
  entries.reserve(quasi.probs.size());
  for (const auto& [bits, p] : quasi.probs) entries.push_back(Entry{value(bits), p});
  return cvar_over_entries(std::move(entries), alpha, maximize);
}

double cvar_from_distribution(const std::vector<double>& p,
                              const std::vector<double>& values, double alpha,
                              bool maximize) {
  HGP_REQUIRE(p.size() == values.size(),
              "cvar_from_distribution: weight/value size mismatch");
  std::vector<Entry> entries;
  entries.reserve(p.size());
  for (std::size_t j = 0; j < p.size(); ++j)
    if (p[j] > 0.0) entries.push_back(Entry{values[j], p[j]});
  return cvar_over_entries(std::move(entries), alpha, maximize);
}

}  // namespace hgp::mit
