#pragma once

#include <functional>
#include <vector>

#include "mitigation/m3.hpp"
#include "sim/statevector.hpp"

namespace hgp::mit {

/// CVaR_α aggregation of a sampled cost (Barkoutsos et al., Quantum 2020):
/// the mean over the best α-fraction of shots. With alpha = 1 this is the
/// ordinary expectation; smaller alpha focuses the optimizer on the good
/// tail of the distribution — the paper uses α = 0.3.
/// `value` maps a measured bitstring to its cost; `maximize` selects which
/// tail is "best".
double cvar_from_counts(const sim::Counts& counts,
                        const std::function<double(std::uint64_t)>& value, double alpha,
                        bool maximize = true);

/// CVaR over a quasi-probability distribution (post-M3): bitstrings are
/// sorted by value and quasi-weights accumulated until α of the total
/// positive weight is covered.
double cvar_from_quasi(const QuasiDistribution& quasi,
                       const std::function<double(std::uint64_t)>& value, double alpha,
                       bool maximize = true);

/// CVaR over a dense exact outcome distribution: p[j] is the weight of
/// bitstring j and values[j] its cost (the executor's lane-native objective
/// path feeds its exact per-candidate distributions here). The tail budget
/// scales with the total weight, so unnormalized probability masses give the
/// same result as normalized ones.
double cvar_from_distribution(const std::vector<double>& p,
                              const std::vector<double>& values, double alpha,
                              bool maximize = true);

}  // namespace hgp::mit
