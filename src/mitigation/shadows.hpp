#pragma once

#include <cstdint>
#include <vector>

#include "circuit/circuit.hpp"
#include "common/rng.hpp"
#include "linalg/pauli.hpp"
#include "sim/statevector.hpp"

namespace hgp::mit {

/// Classical shadows with random single-qubit Pauli measurements (Huang,
/// Kueng, Preskill 2020) — the "measurement reduction / classical shadows"
/// entry of the paper's Step III menu. One snapshot = a random X/Y/Z basis
/// choice per qubit plus the measured bit; Pauli observables are estimated
/// by the standard 3^weight inverse-channel formula with median-of-means.
struct ShadowSnapshot {
  std::vector<la::Pauli> basis;  // measurement basis per qubit (X, Y or Z)
  std::uint64_t bits = 0;        // outcome per qubit
};

class ClassicalShadow {
 public:
  /// Collect `snapshots` single-shot random-basis measurements of the state
  /// prepared by `prep` (ideal statevector execution).
  static ClassicalShadow collect(const qc::Circuit& prep, std::size_t snapshots, Rng& rng);

  std::size_t size() const { return snapshots_.size(); }
  std::size_t num_qubits() const { return num_qubits_; }
  const std::vector<ShadowSnapshot>& snapshots() const { return snapshots_; }

  /// Median-of-means estimate of <P> for a Pauli string (k groups).
  double estimate(const la::PauliString& obs, int groups = 8) const;
  /// Estimate of a full Pauli-sum observable.
  double estimate(const la::PauliSum& obs, int groups = 8) const;

 private:
  std::size_t num_qubits_ = 0;
  std::vector<ShadowSnapshot> snapshots_;
};

}  // namespace hgp::mit
