#pragma once

#include <vector>

#include "circuit/circuit.hpp"

namespace hgp::mit {

/// Global unitary folding for zero-noise extrapolation: scale factor s
/// (odd) replaces every non-virtual gate G by G (G† G)^((s-1)/2), amplifying
/// incoherent gate noise by ~s while preserving the unitary.
qc::Circuit fold_gates(const qc::Circuit& circuit, int scale_factor);

/// Richardson/polynomial extrapolation of (scale, value) samples to scale 0.
/// With two points this is linear extrapolation; with three, quadratic.
double richardson_extrapolate(const std::vector<std::pair<double, double>>& samples);

}  // namespace hgp::mit
