#include "mitigation/m3.hpp"

#include <cmath>

#include "common/error.hpp"
#include "linalg/solve.hpp"

namespace hgp::mit {

double QuasiDistribution::expectation(
    const std::function<double(std::uint64_t)>& value) const {
  double e = 0.0;
  for (const auto& [bits, p] : probs) e += p * value(bits);
  return e;
}

M3Mitigator::M3Mitigator(std::vector<noise::ReadoutError> errors)
    : errors_(std::move(errors)) {
  HGP_REQUIRE(!errors_.empty(), "M3Mitigator: no confusion data");
  for (const auto& e : errors_) {
    HGP_REQUIRE(e.p1_given_0 >= 0 && e.p1_given_0 < 0.5 && e.p0_given_1 >= 0 &&
                    e.p0_given_1 < 0.5,
                "M3Mitigator: confusion probabilities must be in [0, 0.5)");
  }
}

QuasiDistribution M3Mitigator::mitigate(const sim::Counts& counts) const {
  QuasiDistribution out;
  HGP_REQUIRE(!counts.empty(), "M3Mitigator::mitigate: empty counts");

  std::vector<std::uint64_t> keys;
  keys.reserve(counts.size());
  double shots = 0.0;
  for (const auto& [bits, n] : counts) {
    keys.push_back(bits);
    shots += static_cast<double>(n);
  }
  const std::size_t k = keys.size();

  // Per-qubit single-bit assignment probabilities.
  auto bit_prob = [&](std::size_t q, bool measured, bool truth) -> double {
    const noise::ReadoutError& e = errors_[q];
    if (truth) return measured ? 1.0 - e.p0_given_1 : e.p0_given_1;
    return measured ? e.p1_given_0 : 1.0 - e.p1_given_0;
  };
  // A[i][j] = P(measure keys[i] | true keys[j]).
  auto assignment = [&](std::size_t i, std::size_t j) {
    double p = 1.0;
    for (std::size_t q = 0; q < errors_.size(); ++q)
      p *= bit_prob(q, (keys[i] >> q) & 1, (keys[j] >> q) & 1);
    return p;
  };

  // Column normalization within the observed subspace keeps Ā stochastic on
  // the restricted space (the M3 trick that controls the truncation bias).
  std::vector<double> col_norm(k, 0.0);
  for (std::size_t j = 0; j < k; ++j) {
    for (std::size_t i = 0; i < k; ++i) col_norm[j] += assignment(i, j);
    HGP_REQUIRE(col_norm[j] > 1e-12, "M3Mitigator: degenerate column");
  }

  auto matvec = [&](const std::vector<double>& x) {
    std::vector<double> y(k, 0.0);
    for (std::size_t i = 0; i < k; ++i) {
      double s = 0.0;
      for (std::size_t j = 0; j < k; ++j) s += assignment(i, j) / col_norm[j] * x[j];
      y[i] = s;
    }
    return y;
  };

  std::vector<double> p_noisy(k);
  for (std::size_t i = 0; i < k; ++i)
    p_noisy[i] = static_cast<double>(counts.at(keys[i])) / shots;

  const la::GmresResult sol =
      la::gmres(matvec, p_noisy, /*max_iter=*/300, /*tol=*/1e-10, /*restart=*/60);

  out.solver_iterations = sol.iterations;
  out.converged = sol.converged;
  out.overhead = 0.0;
  for (std::size_t i = 0; i < k; ++i) {
    out.probs[keys[i]] = sol.x[i];
    out.overhead += std::abs(sol.x[i]);
  }
  return out;
}

}  // namespace hgp::mit
