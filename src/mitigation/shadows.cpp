#include "mitigation/shadows.hpp"

#include <algorithm>
#include <cmath>

#include "common/error.hpp"

namespace hgp::mit {

using la::Pauli;

ClassicalShadow ClassicalShadow::collect(const qc::Circuit& prep, std::size_t snapshots,
                                         Rng& rng) {
  HGP_REQUIRE(snapshots >= 1, "ClassicalShadow: need at least one snapshot");
  ClassicalShadow out;
  out.num_qubits_ = prep.num_qubits();
  out.snapshots_.reserve(snapshots);

  sim::Statevector base(prep.num_qubits());
  base.run(prep);

  for (std::size_t s = 0; s < snapshots; ++s) {
    ShadowSnapshot snap;
    snap.basis.resize(prep.num_qubits());
    sim::Statevector sv = base;
    for (std::size_t q = 0; q < prep.num_qubits(); ++q) {
      const int pick = rng.uniform_int(0, 2);
      snap.basis[q] = static_cast<Pauli>(pick + 1);  // X, Y or Z
      // Rotate the measurement basis onto Z.
      if (snap.basis[q] == Pauli::X) {
        sv.apply_matrix(qc::gate_matrix(qc::GateKind::H), {q});
      } else if (snap.basis[q] == Pauli::Y) {
        sv.apply_matrix(qc::gate_matrix(qc::GateKind::Sdg), {q});
        sv.apply_matrix(qc::gate_matrix(qc::GateKind::H), {q});
      }
    }
    snap.bits = sv.sample_one(rng);
    out.snapshots_.push_back(std::move(snap));
  }
  return out;
}

double ClassicalShadow::estimate(const la::PauliString& obs, int groups) const {
  HGP_REQUIRE(obs.num_qubits() == num_qubits_, "ClassicalShadow: observable width mismatch");
  HGP_REQUIRE(groups >= 1, "ClassicalShadow: need >= 1 group");

  // Per-snapshot estimator: 0 unless every non-identity factor was measured
  // in the matching basis; then 3^weight * Π(±1).
  auto single = [&](const ShadowSnapshot& snap) -> double {
    double value = 1.0;
    for (std::size_t q = 0; q < num_qubits_; ++q) {
      const Pauli p = obs.op(q);
      if (p == Pauli::I) continue;
      if (snap.basis[q] != p) return 0.0;
      value *= 3.0 * (((snap.bits >> q) & 1) ? -1.0 : 1.0);
    }
    return value;
  };

  // Median of means over `groups` chunks.
  const std::size_t per_group = std::max<std::size_t>(1, snapshots_.size() / groups);
  std::vector<double> means;
  for (std::size_t g = 0; g * per_group < snapshots_.size(); ++g) {
    double sum = 0.0;
    std::size_t count = 0;
    for (std::size_t i = g * per_group;
         i < std::min(snapshots_.size(), (g + 1) * per_group); ++i) {
      sum += single(snapshots_[i]);
      ++count;
    }
    if (count > 0) means.push_back(sum / static_cast<double>(count));
  }
  std::sort(means.begin(), means.end());
  const std::size_t m = means.size();
  return m % 2 == 1 ? means[m / 2] : 0.5 * (means[m / 2 - 1] + means[m / 2]);
}

double ClassicalShadow::estimate(const la::PauliSum& obs, int groups) const {
  double total = 0.0;
  for (const la::PauliTerm& term : obs.terms()) {
    if (term.string.weight() == 0) {
      total += term.coeff;  // identity term
      continue;
    }
    total += term.coeff * estimate(term.string, groups);
  }
  return total;
}

}  // namespace hgp::mit
