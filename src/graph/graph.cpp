#include "graph/graph.hpp"

#include <algorithm>
#include <queue>
#include <sstream>

#include "common/error.hpp"

namespace hgp::graph {

Graph Graph::from_edges(std::size_t num_vertices,
                        const std::vector<std::pair<std::size_t, std::size_t>>& edges) {
  Graph g(num_vertices);
  for (const auto& [u, v] : edges) g.add_edge(u, v);
  return g;
}

void Graph::add_edge(std::size_t u, std::size_t v, double weight) {
  HGP_REQUIRE(u < n_ && v < n_, "Graph::add_edge: vertex out of range");
  HGP_REQUIRE(u != v, "Graph::add_edge: self-loop");
  HGP_REQUIRE(!has_edge(u, v), "Graph::add_edge: parallel edge");
  edges_.push_back(Edge{std::min(u, v), std::max(u, v), weight});
}

bool Graph::has_edge(std::size_t u, std::size_t v) const {
  const std::size_t a = std::min(u, v), b = std::max(u, v);
  return std::any_of(edges_.begin(), edges_.end(),
                     [&](const Edge& e) { return e.u == a && e.v == b; });
}

std::vector<std::size_t> Graph::neighbors(std::size_t u) const {
  std::vector<std::size_t> out;
  for (const Edge& e : edges_) {
    if (e.u == u) out.push_back(e.v);
    if (e.v == u) out.push_back(e.u);
  }
  return out;
}

std::size_t Graph::degree(std::size_t u) const { return neighbors(u).size(); }

bool Graph::is_regular(std::size_t k) const {
  for (std::size_t u = 0; u < n_; ++u)
    if (degree(u) != k) return false;
  return true;
}

bool Graph::is_connected() const {
  if (n_ == 0) return true;
  std::vector<bool> seen(n_, false);
  std::queue<std::size_t> q;
  q.push(0);
  seen[0] = true;
  std::size_t count = 1;
  while (!q.empty()) {
    const std::size_t u = q.front();
    q.pop();
    for (std::size_t v : neighbors(u)) {
      if (!seen[v]) {
        seen[v] = true;
        ++count;
        q.push(v);
      }
    }
  }
  return count == n_;
}

double Graph::total_weight() const {
  double s = 0.0;
  for (const Edge& e : edges_) s += e.weight;
  return s;
}

double Graph::cut_value(std::uint64_t partition) const {
  double cut = 0.0;
  for (const Edge& e : edges_) {
    const bool su = (partition >> e.u) & 1;
    const bool sv = (partition >> e.v) & 1;
    if (su != sv) cut += e.weight;
  }
  return cut;
}

std::string Graph::str() const {
  std::ostringstream os;
  os << "Graph(n=" << n_ << ", m=" << edges_.size() << "): ";
  for (std::size_t i = 0; i < edges_.size(); ++i) {
    if (i) os << ", ";
    os << "(" << edges_[i].u << "," << edges_[i].v << ")";
  }
  return os.str();
}

}  // namespace hgp::graph
