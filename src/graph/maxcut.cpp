#include "graph/maxcut.hpp"

#include "common/error.hpp"

namespace hgp::graph {

CutResult max_cut_brute_force(const Graph& g) {
  HGP_REQUIRE(g.num_vertices() <= 30, "max_cut_brute_force: graph too large");
  CutResult best;
  if (g.num_vertices() == 0) return best;
  // Fix vertex 0 to side 0 (the cut is invariant under global flip): the
  // partition bits of vertices 1..n-1 are the bits 0..n-2 of `part`.
  const std::uint64_t limit = std::uint64_t{1} << (g.num_vertices() - 1);
  for (std::uint64_t part = 0; part < limit; ++part) {
    const std::uint64_t partition = part << 1;
    const double value = g.cut_value(partition);
    if (value > best.value) {
      best.partition = partition;
      best.value = value;
    }
  }
  return best;
}

CutResult max_cut_local_search(const Graph& g, Rng& rng, int restarts) {
  const std::size_t n = g.num_vertices();
  CutResult best;
  for (int r = 0; r < restarts; ++r) {
    std::uint64_t part = 0;
    for (std::size_t v = 0; v < n; ++v)
      if (rng.bernoulli(0.5)) part |= (std::uint64_t{1} << v);
    double value = g.cut_value(part);
    bool improved = true;
    while (improved) {
      improved = false;
      for (std::size_t v = 0; v < n; ++v) {
        const std::uint64_t flipped = part ^ (std::uint64_t{1} << v);
        const double fv = g.cut_value(flipped);
        if (fv > value) {
          part = flipped;
          value = fv;
          improved = true;
        }
      }
    }
    if (value > best.value || r == 0) {
      best.partition = part;
      best.value = value;
    }
  }
  return best;
}

double random_cut_expectation(const Graph& g) { return g.total_weight() / 2.0; }

}  // namespace hgp::graph
