#pragma once

#include <cstdint>

#include "common/rng.hpp"
#include "graph/graph.hpp"

namespace hgp::graph {

/// A Max-Cut solution: partition bitmask + cut weight.
struct CutResult {
  std::uint64_t partition = 0;
  double value = 0.0;
};

/// Exact Max-Cut by exhaustive enumeration (n <= 30; the paper's instances
/// have 6-8 vertices).
CutResult max_cut_brute_force(const Graph& g);

/// Greedy vertex-by-vertex assignment followed by 1-flip local search —
/// the classical baseline used for context in examples.
CutResult max_cut_local_search(const Graph& g, Rng& rng, int restarts = 16);

/// Expected cut of a uniformly random partition (= total_weight / 2); the
/// floor any optimizer should beat.
double random_cut_expectation(const Graph& g);

}  // namespace hgp::graph
