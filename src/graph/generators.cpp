#include "graph/generators.hpp"

#include <algorithm>
#include <numeric>

#include "common/error.hpp"

namespace hgp::graph {

Graph random_regular(std::size_t n, std::size_t k, Rng& rng, int max_attempts) {
  HGP_REQUIRE((n * k) % 2 == 0, "random_regular: n*k must be even");
  HGP_REQUIRE(k < n, "random_regular: need k < n");

  for (int attempt = 0; attempt < max_attempts; ++attempt) {
    // Configuration model: k stubs per vertex, random perfect matching.
    std::vector<std::size_t> stubs;
    stubs.reserve(n * k);
    for (std::size_t v = 0; v < n; ++v)
      for (std::size_t i = 0; i < k; ++i) stubs.push_back(v);
    rng.shuffle(stubs);

    Graph g(n);
    bool ok = true;
    for (std::size_t i = 0; i + 1 < stubs.size(); i += 2) {
      const std::size_t u = stubs[i], v = stubs[i + 1];
      if (u == v || g.has_edge(u, v)) {
        ok = false;
        break;
      }
      g.add_edge(u, v);
    }
    if (ok) return g;
  }
  throw Error("random_regular: failed to build a simple k-regular graph");
}

Graph erdos_renyi(std::size_t n, double p, Rng& rng, bool require_connected, int max_attempts) {
  HGP_REQUIRE(p >= 0.0 && p <= 1.0, "erdos_renyi: p out of range");
  for (int attempt = 0; attempt < max_attempts; ++attempt) {
    Graph g(n);
    for (std::size_t u = 0; u < n; ++u)
      for (std::size_t v = u + 1; v < n; ++v)
        if (rng.bernoulli(p)) g.add_edge(u, v);
    if (!require_connected || g.is_connected()) return g;
  }
  throw Error("erdos_renyi: failed to sample a connected graph");
}

Graph cycle(std::size_t n) {
  HGP_REQUIRE(n >= 3, "cycle: need n >= 3");
  Graph g(n);
  for (std::size_t i = 0; i < n; ++i) g.add_edge(i, (i + 1) % n);
  return g;
}

Graph complete(std::size_t n) {
  Graph g(n);
  for (std::size_t u = 0; u < n; ++u)
    for (std::size_t v = u + 1; v < n; ++v) g.add_edge(u, v);
  return g;
}

Graph complete_bipartite(std::size_t a, std::size_t b) {
  Graph g(a + b);
  for (std::size_t u = 0; u < a; ++u)
    for (std::size_t v = 0; v < b; ++v) g.add_edge(u, a + v);
  return g;
}

}  // namespace hgp::graph
