#pragma once

#include <cstddef>
#include <string>
#include <vector>

namespace hgp::graph {

/// An undirected edge with a weight (Max-Cut instances are weighted in
/// general; the paper's benchmarks are unweighted, weight = 1).
struct Edge {
  std::size_t u = 0;
  std::size_t v = 0;
  double weight = 1.0;
};

/// Simple undirected graph. Parallel edges and self-loops are rejected —
/// Max-Cut and QAOA encodings assume a simple graph.
class Graph {
 public:
  Graph() = default;
  explicit Graph(std::size_t num_vertices) : n_(num_vertices) {}

  static Graph from_edges(std::size_t num_vertices,
                          const std::vector<std::pair<std::size_t, std::size_t>>& edges);

  void add_edge(std::size_t u, std::size_t v, double weight = 1.0);
  bool has_edge(std::size_t u, std::size_t v) const;

  std::size_t num_vertices() const { return n_; }
  std::size_t num_edges() const { return edges_.size(); }
  const std::vector<Edge>& edges() const { return edges_; }
  /// Neighbors of vertex u.
  std::vector<std::size_t> neighbors(std::size_t u) const;
  std::size_t degree(std::size_t u) const;
  /// True when every vertex has degree k.
  bool is_regular(std::size_t k) const;
  /// Connectivity via BFS (isolated vertices count as disconnected).
  bool is_connected() const;
  /// Total edge weight.
  double total_weight() const;

  /// Cut value of a partition given as a bitmask (bit u = side of vertex u).
  double cut_value(std::uint64_t partition) const;

  std::string str() const;

 private:
  std::size_t n_ = 0;
  std::vector<Edge> edges_;
};

}  // namespace hgp::graph
