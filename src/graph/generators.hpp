#pragma once

#include "common/rng.hpp"
#include "graph/graph.hpp"

namespace hgp::graph {

/// Random k-regular graph via the pairing (configuration) model with
/// rejection of loops/parallel edges. Requires n*k even and k < n.
Graph random_regular(std::size_t n, std::size_t k, Rng& rng, int max_attempts = 1000);

/// Erdős–Rényi G(n, p); optionally resamples until connected.
Graph erdos_renyi(std::size_t n, double p, Rng& rng, bool require_connected = false,
                  int max_attempts = 1000);

/// Cycle graph C_n.
Graph cycle(std::size_t n);

/// Complete graph K_n.
Graph complete(std::size_t n);

/// Complete bipartite K_{a,b} with parts {0..a-1} and {a..a+b-1}.
Graph complete_bipartite(std::size_t a, std::size_t b);

}  // namespace hgp::graph
