#pragma once

#include <string>
#include <vector>

#include "graph/graph.hpp"

namespace hgp::graph {

/// A named benchmark instance with its (brute-force verified) optimum.
struct Instance {
  std::string name;
  Graph graph;
  double max_cut = 0.0;
};

/// Task 1 (paper Fig. 4-1): 3-regular, 6 nodes, Max-Cut = 9. The unique such
/// graph with a perfect cut is K3,3.
Instance paper_task1();

/// Task 2 (paper Fig. 4-2): Erdős–Rényi, 6 nodes, Max-Cut = 8. Frozen sample
/// with 9 edges and one frustrated triangle.
Instance paper_task2();

/// Task 3 (paper Fig. 4-3): 3-regular, 8 nodes, Max-Cut = 10. The Wagner
/// (Möbius–Kantor ladder) graph V8.
Instance paper_task3();

/// All three tasks in paper order.
std::vector<Instance> paper_instances();

}  // namespace hgp::graph
