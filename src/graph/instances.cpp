#include "graph/instances.hpp"

#include "graph/generators.hpp"

namespace hgp::graph {

Instance paper_task1() {
  return Instance{"3-regular-6 (task 1)", complete_bipartite(3, 3), 9.0};
}

Instance paper_task2() {
  // K3,3 with edge (0,3) rewired to (0,1): still 9 edges, one triangle
  // (0,1,4), so the best cut loses exactly one edge.
  Graph g = Graph::from_edges(
      6, {{0, 1}, {0, 4}, {0, 5}, {1, 3}, {1, 4}, {1, 5}, {2, 3}, {2, 4}, {2, 5}});
  return Instance{"erdos-renyi-6 (task 2)", std::move(g), 8.0};
}

Instance paper_task3() {
  // Wagner graph: C8 plus the four diameters.
  Graph g = Graph::from_edges(8, {{0, 1},
                                  {1, 2},
                                  {2, 3},
                                  {3, 4},
                                  {4, 5},
                                  {5, 6},
                                  {6, 7},
                                  {7, 0},
                                  {0, 4},
                                  {1, 5},
                                  {2, 6},
                                  {3, 7}});
  return Instance{"3-regular-8 (task 3)", std::move(g), 10.0};
}

std::vector<Instance> paper_instances() {
  return {paper_task1(), paper_task2(), paper_task3()};
}

}  // namespace hgp::graph
