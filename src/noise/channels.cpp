#include "noise/channels.hpp"

#include <cmath>

#include "common/error.hpp"
#include "linalg/pauli.hpp"

namespace hgp::noise {

int sample_depolarizing(std::size_t num_qubits, double p, Rng& rng) {
  HGP_REQUIRE(p >= 0.0 && p <= 1.0, "sample_depolarizing: bad probability");
  if (!rng.bernoulli(p)) return 0;
  // Uniform non-identity Pauli on the qubit set.
  const int options = (1 << (2 * static_cast<int>(num_qubits))) - 1;
  return rng.uniform_int(1, options);
}

void apply_depolarizing(sim::QuantumState& state, const std::vector<std::size_t>& qubits,
                        double p, Rng& rng) {
  const int pick = sample_depolarizing(qubits.size(), p, rng);
  if (pick == 0) return;
  for (std::size_t i = 0; i < qubits.size(); ++i) {
    const int pauli = (pick >> (2 * i)) & 3;
    if (pauli == 0) continue;
    state.apply_matrix(la::pauli_matrix(static_cast<la::Pauli>(pauli)), {qubits[i]});
  }
}

void apply_amplitude_damping(sim::QuantumState& state, std::size_t q, double gamma, Rng& rng) {
  HGP_REQUIRE(gamma >= 0.0 && gamma <= 1.0, "apply_amplitude_damping: bad gamma");
  if (gamma == 0.0) return;
  const double p1 = state.prob_one(q);
  const double p_jump = gamma * p1;
  if (rng.bernoulli(p_jump)) {
    // K1 = sqrt(gamma)|0><1|: project onto |1>, then reset to |0>.
    state.collapse(q, true);
    state.apply_matrix(la::pauli_matrix(la::Pauli::X), {q});
    return;
  }
  // K0 = diag(1, sqrt(1-gamma)), renormalized.
  const la::CMat k0{{1, 0}, {0, std::sqrt(1.0 - gamma)}};
  state.apply_kraus_branch(k0, {q});
}

void apply_phase_flip(sim::QuantumState& state, std::size_t q, double p, Rng& rng) {
  HGP_REQUIRE(p >= 0.0 && p <= 1.0, "apply_phase_flip: bad probability");
  if (rng.bernoulli(p)) state.apply_matrix(la::pauli_matrix(la::Pauli::Z), {q});
}

RelaxationConstants relaxation_constants(double t1_us, double t2_us, double duration_ns) {
  HGP_REQUIRE(t1_us > 0.0 && t2_us > 0.0, "relaxation_constants: bad T1/T2");
  RelaxationConstants rc;
  if (duration_ns <= 0.0) return rc;
  const double t_us = duration_ns * 1e-3;
  rc.gamma = 1.0 - std::exp(-t_us / t1_us);
  rc.damp = std::sqrt(1.0 - rc.gamma);
  // Pure dephasing rate; clamp T2 into the physical region.
  const double t2 = std::min(t2_us, 2.0 * t1_us);
  const double inv_tphi = 1.0 / t2 - 0.5 / t1_us;
  if (inv_tphi > 1e-12) {
    rc.dephase = true;
    rc.p_z = 0.5 * (1.0 - std::exp(-t_us * inv_tphi));
  }
  return rc;
}

void apply_thermal_relaxation(sim::QuantumState& state, std::size_t q, double t1_us,
                              double t2_us, double duration_ns, Rng& rng) {
  if (duration_ns <= 0.0) return;
  const RelaxationConstants rc = relaxation_constants(t1_us, t2_us, duration_ns);
  apply_amplitude_damping(state, q, rc.gamma, rng);
  if (rc.dephase) apply_phase_flip(state, q, rc.p_z, rng);
}

std::uint64_t apply_readout(std::uint64_t bits, const std::vector<ReadoutError>& errors,
                            Rng& rng) {
  for (std::size_t q = 0; q < errors.size(); ++q) {
    const bool one = (bits >> q) & 1;
    const double p_flip = one ? errors[q].p0_given_1 : errors[q].p1_given_0;
    if (rng.bernoulli(p_flip)) bits ^= (std::uint64_t{1} << q);
  }
  return bits;
}

}  // namespace hgp::noise
