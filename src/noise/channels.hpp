#pragma once

#include <cstdint>
#include <vector>

#include "common/rng.hpp"
#include "sim/state.hpp"

namespace hgp::noise {

/// Trajectory (quantum-jump) application of the standard error channels to a
/// quantum state: each call samples one Kraus branch with the exact branch
/// probabilities, so averaging over shots reproduces the density-matrix
/// channel. The routines are written against `sim::QuantumState`, so they
/// apply to any backend (statevector trajectories being the production use).

/// Depolarizing with probability p on the listed qubits: with prob p, apply
/// a uniformly random non-identity Pauli on those qubits.
void apply_depolarizing(sim::QuantumState& state, const std::vector<std::size_t>& qubits,
                        double p, Rng& rng);

/// Sample the depolarizing branch without applying it: returns 0 (identity,
/// probability 1-p) or the chosen Pauli-product code (2 bits per qubit,
/// 1..4^k-1, qubit i's Pauli in bits [2i, 2i+1]). Consumes the Rng exactly
/// like apply_depolarizing, so per-lane engines that draw one branch per
/// trajectory lane stay stream-compatible with the per-shot reference.
int sample_depolarizing(std::size_t num_qubits, double p, Rng& rng);

/// Derived constants of one thermal-relaxation application over duration_ns
/// — the quantities every engine (scalar trajectory kernel, lane-batched
/// kernel, generic Kraus channel) must agree on exactly:
///   gamma = 1 - exp(-t/T1)      amplitude-damping probability scale
///   damp  = sqrt(1 - gamma)     no-jump damping of the |1> amplitudes
///   p_z   = (1 - exp(-t/Tphi))/2 phase-flip probability (when `dephase`;
///           Tphi from 1/Tphi = 1/T2 - 1/(2 T1), T2 clamped to <= 2 T1)
struct RelaxationConstants {
  double gamma = 0.0;
  double damp = 1.0;
  double p_z = 0.0;
  bool dephase = false;
};
RelaxationConstants relaxation_constants(double t1_us, double t2_us, double duration_ns);

/// Amplitude damping with decay probability gamma on qubit q.
void apply_amplitude_damping(sim::QuantumState& state, std::size_t q, double gamma, Rng& rng);

/// Pure dephasing: phase flip (Z) with probability p.
void apply_phase_flip(sim::QuantumState& state, std::size_t q, double p, Rng& rng);

/// Combined T1/T2 thermal relaxation over duration_ns: amplitude damping with
/// gamma = 1 - exp(-t/T1) plus pure dephasing at rate 1/Tphi = 1/T2 - 1/(2 T1)
/// (Tphi clamped to the physical region T2 <= 2 T1).
void apply_thermal_relaxation(sim::QuantumState& state, std::size_t q, double t1_us,
                              double t2_us, double duration_ns, Rng& rng);

/// Asymmetric readout confusion of one qubit. Probabilities are
/// P(measured 1 | prepared 0) and P(measured 0 | prepared 1).
struct ReadoutError {
  double p1_given_0 = 0.0;
  double p0_given_1 = 0.0;
};

/// Flip the measured bits of `bits` according to each qubit's confusion.
std::uint64_t apply_readout(std::uint64_t bits, const std::vector<ReadoutError>& errors,
                            Rng& rng);

}  // namespace hgp::noise
