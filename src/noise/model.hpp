#pragma once

#include <cstddef>
#include <vector>

#include "noise/channels.hpp"

namespace hgp::noise {

/// Per-qubit noise parameters. T1/T2 and readout error come from the
/// backend's calibration table (the paper's Table I); frequency drift and
/// drive gain are the seeded coherent miscalibrations that the hybrid
/// model's trainable pulse parameters can learn around.
struct QubitNoise {
  double t1_us = 100.0;
  double t2_us = 100.0;
  ReadoutError readout;
  double freq_drift_ghz = 0.0;
  double drive_gain = 1.0;
};

/// Backend-level noise model used by the machine-in-loop executor.
struct NoiseModel {
  bool enabled = true;
  std::vector<QubitNoise> qubits;
  /// Depolarizing probability charged per played single-qubit pulse.
  double dep_per_1q_pulse = 3e-4;
  /// Depolarizing probability charged per two-qubit (CR-based) block.
  double dep_per_2q_block = 1e-2;
  /// Static ZZ crosstalk between coupled pairs (GHz), active during blocks
  /// that contain both qubits.
  double zz_crosstalk_ghz = 0.0;

  std::vector<ReadoutError> readout_errors() const {
    std::vector<ReadoutError> out;
    out.reserve(qubits.size());
    for (const QubitNoise& q : qubits) out.push_back(q.readout);
    return out;
  }
};

}  // namespace hgp::noise
