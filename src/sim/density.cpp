#include "sim/density.hpp"

#include <algorithm>
#include <cmath>

#include "common/error.hpp"

namespace hgp::sim {

using la::cxd;
using la::CMat;

DensityMatrix::DensityMatrix(std::size_t num_qubits)
    : num_qubits_(num_qubits),
      rho_(std::size_t{1} << num_qubits, std::size_t{1} << num_qubits) {
  HGP_REQUIRE(num_qubits <= 10, "DensityMatrix: too many qubits for a dense matrix");
  rho_(0, 0) = 1.0;
}

void DensityMatrix::reset() {
  rho_ = CMat(rho_.rows(), rho_.cols());
  rho_(0, 0) = 1.0;
}

std::unique_ptr<QuantumState> DensityMatrix::clone() const {
  return std::make_unique<DensityMatrix>(*this);
}

DensityMatrix DensityMatrix::from_amplitudes(const la::CVec& amplitudes) {
  std::size_t n = 0;
  while ((std::size_t{1} << n) < amplitudes.size()) ++n;
  HGP_REQUIRE((std::size_t{1} << n) == amplitudes.size(),
              "DensityMatrix: amplitude count is not a power of two");
  DensityMatrix dm(n);
  for (std::size_t i = 0; i < amplitudes.size(); ++i)
    for (std::size_t j = 0; j < amplitudes.size(); ++j)
      dm.rho_(i, j) = amplitudes[i] * std::conj(amplitudes[j]);
  return dm;
}

void DensityMatrix::apply_matrix(const CMat& u, const std::vector<std::size_t>& qubits) {
  apply_kraus({u}, qubits);
}

void DensityMatrix::apply_unitary(const CMat& u, const std::vector<std::size_t>& qubits) {
  apply_matrix(u, qubits);
}

void DensityMatrix::apply_kraus(const std::vector<CMat>& kraus,
                                const std::vector<std::size_t>& qubits) {
  // In-place block-partitioned update. rho' = Σ_k K rho K† with K acting on
  // `qubits` couples only entries that agree on every *other* qubit, so rho
  // decomposes into independent m x m blocks (m = 2^k) indexed by the rest
  // bits — each block transforms in place with two small matrix products.
  // O(4^n · |K| · m) work and O(m²) scratch, vs the dense-lift formulation's
  // O(8^n) products and O(4^n) temporaries per operator.
  HGP_REQUIRE(!kraus.empty(), "apply_kraus: empty Kraus set");
  const std::size_t k = qubits.size();
  const std::size_t m = std::size_t{1} << k;
  for (const CMat& op : kraus)
    HGP_REQUIRE(op.rows() == m && op.cols() == m, "apply_kraus: operator size mismatch");

  // offset[sub] spreads a k-bit sub-index onto the qubit positions
  // (qubits[j] carries bit j — first listed qubit is the LSB).
  std::uint64_t mask = 0;
  std::vector<std::uint64_t> offset(m, 0);
  for (std::size_t j = 0; j < k; ++j) {
    HGP_REQUIRE(qubits[j] < num_qubits_, "apply_kraus: qubit out of range");
    const std::uint64_t bit = std::uint64_t{1} << qubits[j];
    HGP_REQUIRE((mask & bit) == 0, "apply_kraus: duplicate qubit");
    mask |= bit;
  }
  for (std::size_t sub = 0; sub < m; ++sub)
    for (std::size_t j = 0; j < k; ++j)
      if ((sub >> j) & 1) offset[sub] |= std::uint64_t{1} << qubits[j];

  const std::uint64_t dim = rho_.rows();
  std::vector<cxd> block(m * m), tmp(m * m), out(m * m);
  for (std::uint64_t rb = 0; rb < dim; ++rb) {
    if (rb & mask) continue;
    for (std::uint64_t cb = 0; cb < dim; ++cb) {
      if (cb & mask) continue;
      for (std::size_t i = 0; i < m; ++i)
        for (std::size_t j = 0; j < m; ++j)
          block[i * m + j] = rho_(rb | offset[i], cb | offset[j]);
      std::fill(out.begin(), out.end(), cxd{0.0, 0.0});
      for (const CMat& op : kraus) {
        // tmp = K · block, then out += tmp · K†.
        for (std::size_t a = 0; a < m; ++a)
          for (std::size_t j = 0; j < m; ++j) {
            cxd s{0.0, 0.0};
            for (std::size_t i = 0; i < m; ++i) s += op(a, i) * block[i * m + j];
            tmp[a * m + j] = s;
          }
        for (std::size_t a = 0; a < m; ++a)
          for (std::size_t b = 0; b < m; ++b) {
            cxd s{0.0, 0.0};
            for (std::size_t j = 0; j < m; ++j) s += tmp[a * m + j] * std::conj(op(b, j));
            out[a * m + b] += s;
          }
      }
      for (std::size_t i = 0; i < m; ++i)
        for (std::size_t j = 0; j < m; ++j)
          rho_(rb | offset[i], cb | offset[j]) = out[i * m + j];
    }
  }
}

void DensityMatrix::apply_depolarizing(const std::vector<std::size_t>& qubits, double p) {
  HGP_REQUIRE(p >= 0.0 && p <= 1.0, "apply_depolarizing: bad probability");
  if (p == 0.0) return;
  const std::size_t k = qubits.size();
  const int paulis = 1 << (2 * static_cast<int>(k));
  std::vector<CMat> kraus;
  kraus.reserve(static_cast<std::size_t>(paulis));
  for (int pick = 0; pick < paulis; ++pick) {
    CMat op = CMat::identity(1);
    for (std::size_t j = k; j-- > 0;) {
      const int pj = (pick >> (2 * j)) & 3;
      op = la::kron(op, la::pauli_matrix(static_cast<la::Pauli>(pj)));
    }
    const double weight = pick == 0 ? 1.0 - p : p / (paulis - 1);
    kraus.push_back(op * cxd{std::sqrt(weight), 0.0});
  }
  apply_kraus(kraus, qubits);
}

void DensityMatrix::apply_amplitude_damping(std::size_t q, double gamma) {
  HGP_REQUIRE(gamma >= 0.0 && gamma <= 1.0, "apply_amplitude_damping: bad gamma");
  const CMat k0{{1, 0}, {0, std::sqrt(1.0 - gamma)}};
  const CMat k1{{0, std::sqrt(gamma)}, {0, 0}};
  apply_kraus({k0, k1}, {q});
}

void DensityMatrix::apply_phase_damping(std::size_t q, double p_z) {
  HGP_REQUIRE(p_z >= 0.0 && p_z <= 1.0, "apply_phase_damping: bad probability");
  const CMat kz = la::pauli_matrix(la::Pauli::Z) * cxd{std::sqrt(p_z), 0.0};
  const CMat ki = CMat::identity(2) * cxd{std::sqrt(1.0 - p_z), 0.0};
  apply_kraus({ki, kz}, {q});
}

void DensityMatrix::apply_thermal_relaxation(std::size_t q, double t1_us, double t2_us,
                                             double duration_ns) {
  if (duration_ns <= 0.0) return;
  const double t_us = duration_ns * 1e-3;
  apply_amplitude_damping(q, 1.0 - std::exp(-t_us / t1_us));
  const double t2 = std::min(t2_us, 2.0 * t1_us);
  const double inv_tphi = 1.0 / t2 - 0.5 / t1_us;
  if (inv_tphi > 1e-12)
    apply_phase_damping(q, 0.5 * (1.0 - std::exp(-t_us * inv_tphi)));
}

std::vector<double> DensityMatrix::probabilities() const {
  std::vector<double> p(rho_.rows());
  for (std::size_t i = 0; i < rho_.rows(); ++i) p[i] = rho_(i, i).real();
  return p;
}

double DensityMatrix::expectation(const la::PauliSum& obs) const {
  HGP_REQUIRE(obs.num_qubits() == num_qubits_, "expectation: observable width mismatch");
  // Tr(rho P) per term.
  double total = 0.0;
  for (const la::PauliTerm& term : obs.terms()) {
    const CMat full = term.string.matrix();
    cxd tr{0.0, 0.0};
    for (std::size_t i = 0; i < rho_.rows(); ++i)
      for (std::size_t j = 0; j < rho_.cols(); ++j) tr += rho_(i, j) * full(j, i);
    total += term.coeff * tr.real();
  }
  return total;
}

double DensityMatrix::prob_one(std::size_t q) const {
  HGP_REQUIRE(q < num_qubits_, "prob_one: qubit out of range");
  const std::uint64_t bit = std::uint64_t{1} << q;
  double p = 0.0;
  for (std::uint64_t i = 0; i < rho_.rows(); ++i)
    if (i & bit) p += rho_(i, i).real();
  return p;
}

double DensityMatrix::collapse(std::size_t q, bool outcome) {
  const double p1 = prob_one(q);
  const double p = outcome ? p1 : 1.0 - p1;
  HGP_REQUIRE(p > 1e-15, "collapse: outcome has (near-)zero probability");
  const std::uint64_t bit = std::uint64_t{1} << q;
  for (std::uint64_t r = 0; r < rho_.rows(); ++r)
    for (std::uint64_t c = 0; c < rho_.cols(); ++c) {
      const bool keep = (((r & bit) != 0) == outcome) && (((c & bit) != 0) == outcome);
      rho_(r, c) = keep ? rho_(r, c) / p : cxd{0.0, 0.0};
    }
  return p;
}

void DensityMatrix::normalize() {
  const double tr = trace();
  HGP_REQUIRE(tr > 1e-300, "normalize: zero-trace state");
  for (std::uint64_t r = 0; r < rho_.rows(); ++r)
    for (std::uint64_t c = 0; c < rho_.cols(); ++c) rho_(r, c) /= tr;
}

double DensityMatrix::trace() const { return rho_.trace().real(); }

double DensityMatrix::purity() const {
  // Tr(rho²) = Σ_ij rho_ij rho_ji; rho is Hermitian so this is Σ |rho_ij|².
  double s = 0.0;
  for (const cxd& x : rho_.data()) s += std::norm(x);
  return s;
}

}  // namespace hgp::sim
