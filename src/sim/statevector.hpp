#pragma once

#include <cstdint>

#include "circuit/circuit.hpp"
#include "common/rng.hpp"
#include "linalg/matrix.hpp"
#include "linalg/pauli.hpp"
#include "linalg/types.hpp"
#include "sim/state.hpp"

namespace hgp::sim {

/// Exact statevector of an n-qubit register with in-place gate application.
/// Little-endian: qubit q is bit q of the basis index. Structured 1q/2q
/// operators (diagonal, anti-diagonal/X-like, permutation) are detected at
/// apply time and dispatched to specialized kernels that skip the dense
/// matrix product.
class Statevector final : public QuantumState {
 public:
  explicit Statevector(std::size_t num_qubits);
  static Statevector from_amplitudes(la::CVec amplitudes);

  StateKind kind() const override { return StateKind::Statevector; }
  std::size_t num_qubits() const override { return num_qubits_; }
  const la::CVec& data() const { return amp_; }
  la::CVec& data() { return amp_; }

  void reset() override;
  std::unique_ptr<QuantumState> clone() const override;

  /// Apply a dense k-qubit operator to the listed qubits (first listed qubit
  /// = least significant sub-index bit). Optimized paths for k = 1, 2 plus
  /// structure-specialized kernels (diagonal / permutation).
  void apply_matrix(const la::CMat& u, const std::vector<std::size_t>& qubits) override;

  std::vector<double> probabilities() const override;
  /// Probability-weighted sum over the basis without materializing a CDF:
  /// num += values[i] * p_i and den += p_i in ascending basis order, with
  /// p_i = re^2 + im^2 — term-for-term the same accumulation as
  /// BatchedStatevector::weighted_masses, so a scalar evaluation is
  /// bit-identical to any lane of a batched one. The state may be
  /// unnormalized (den carries the actual squared norm).
  void weighted_mass(const double* values, double& num, double& den) const;
  std::uint64_t sample_one(Rng& rng) const override;
  double expectation(const la::PauliSum& obs) const override;
  double prob_one(std::size_t q) const override;
  /// Project qubit q onto `outcome` and renormalize; returns the outcome's
  /// pre-measurement probability. Used by trajectory noise (amplitude
  /// damping branches).
  double collapse(std::size_t q, bool outcome) override;
  void normalize() override;
  void apply_kraus_branch(const la::CMat& k,
                          const std::vector<std::size_t>& qubits) override;

 private:
  std::size_t num_qubits_ = 0;
  la::CVec amp_;
};

}  // namespace hgp::sim
