#pragma once

#include <cstdint>
#include <map>

#include "circuit/circuit.hpp"
#include "common/rng.hpp"
#include "linalg/matrix.hpp"
#include "linalg/pauli.hpp"
#include "linalg/types.hpp"

namespace hgp::sim {

/// Measurement counts keyed by the basis-state bitmask (bit q = outcome of
/// qubit q). Ordered map so printouts are deterministic.
using Counts = std::map<std::uint64_t, std::size_t>;

/// Render a bitmask as the conventional big-endian bitstring ("q_{n-1}..q_0").
std::string bits_to_string(std::uint64_t bits, std::size_t num_qubits);

/// Exact statevector of an n-qubit register with in-place gate application.
/// Little-endian: qubit q is bit q of the basis index.
class Statevector {
 public:
  explicit Statevector(std::size_t num_qubits);
  static Statevector from_amplitudes(la::CVec amplitudes);

  std::size_t num_qubits() const { return num_qubits_; }
  const la::CVec& data() const { return amp_; }
  la::CVec& data() { return amp_; }

  void reset();

  /// Apply a dense k-qubit unitary to the listed qubits (first listed qubit
  /// = least significant sub-index bit). Optimized paths for k = 1, 2.
  void apply_matrix(const la::CMat& u, const std::vector<std::size_t>& qubits);
  /// Apply one circuit op (must be bound; Barrier is a no-op; Measure is
  /// rejected — use sample()).
  void apply_op(const qc::Op& op);
  /// Run a whole bound circuit.
  void run(const qc::Circuit& circuit);

  /// Probability of each basis state.
  std::vector<double> probabilities() const;
  /// Sample `shots` measurement outcomes of all qubits.
  Counts sample(std::size_t shots, Rng& rng) const;
  /// Expectation of a Pauli-sum observable.
  double expectation(const la::PauliSum& obs) const;
  /// Probability that qubit q reads 1.
  double prob_one(std::size_t q) const;
  /// Project qubit q onto `outcome` and renormalize; returns the outcome's
  /// pre-measurement probability. Used by trajectory noise (amplitude
  /// damping branches).
  double collapse(std::size_t q, bool outcome);

 private:
  std::size_t num_qubits_ = 0;
  la::CVec amp_;
};

}  // namespace hgp::sim
