#pragma once

#include <cstdint>
#include <utility>
#include <vector>

#include "linalg/matrix.hpp"
#include "linalg/types.hpp"

namespace hgp::sim {

/// B statevector trajectories evolved in lockstep: a structure-of-lanes
/// layout with separate real/imaginary planes, `re_[i * lanes + l]` holding
/// the real part of basis index i in lane l. Deterministic gates apply once
/// across all lanes — the 1q/2q kernels (including the diagonal /
/// anti-diagonal / permutation fast paths) loop over the contiguous lane
/// dimension with scalar-broadcast matrix elements, so a single core
/// auto-vectorizes the inner loop instead of re-dispatching per shot.
///
/// Determinism contract: every kernel mirrors the scalar `Statevector`
/// kernel's complex arithmetic expression-for-expression (same products,
/// same association, structure dispatch shared via sim/kernel_structure.hpp)
/// and the build disables FP contraction, so a lane's amplitudes stay
/// bit-identical (up to the sign of zeros) to a scalar shot evolved through
/// the same operations — which is what lets the executor pin scalar-vs-
/// batched counts exactly for every lane count.
class BatchedStatevector {
 public:
  BatchedStatevector(std::size_t num_qubits, std::size_t lanes);

  std::size_t num_qubits() const { return num_qubits_; }
  /// Basis dimension 2^n.
  std::size_t dim() const { return dim_; }
  std::size_t lanes() const { return lanes_; }

  /// Every lane back to |0...0>.
  void reset();

  la::cxd amplitude(std::uint64_t i, std::size_t lane) const;
  void set_amplitude(std::uint64_t i, std::size_t lane, la::cxd a);

  // ---- broadcast operations (same operator, every lane) ----

  /// Apply a dense k-qubit operator to every lane (first listed qubit =
  /// least significant sub-index bit, as in Statevector::apply_matrix).
  void apply_matrix(const la::CMat& u, const std::vector<std::size_t>& qubits);

  /// Multiply the |1>-subspace of qubit q by `ratio` in every lane — the
  /// half-pass virtual-Z / frame-drift kernel (diag(1, ratio) up to global
  /// phase). No-op when ratio == 1.
  void apply_phase_ratio(std::size_t q, la::cxd ratio);

  // ---- per-lane plumbing for the trajectory noise kernels ----

  /// m1[l] = unnormalized |1>-mass of qubit q in lane l (accumulated in
  /// ascending basis-index order, like the scalar kernel).
  void masses_one(std::size_t q, double* m1) const;

  /// Fused mass measurement + per-lane damping of qubit q's |1> amplitudes:
  /// m1[l] accumulates each lane's pre-damp |1> mass while the amplitudes
  /// are scaled by scale1[l] — the no-jump fast path of thermal relaxation
  /// (scale1 folds the dephasing sign flip when it fired).
  void fused_mass_damp(std::size_t q, const double* scale1, double* m1);

  /// Per-lane amplitude-damping branch on qubit q: lanes with take[l] == 1.0
  /// jump (|1> amplitudes move to |0>, |1> zeroed — scale1[l] must be 0),
  /// lanes with take[l] == 0.0 keep |0> and scale |1> by scale1[l].
  void damp_or_jump(std::size_t q, const double* take, const double* scale1);

  /// Apply a 1-qubit operator to one lane only (the rare Pauli-jump path of
  /// per-lane depolarizing branches). Mirrors the scalar 1q kernels exactly.
  void apply_matrix_lane(const la::CMat& u, std::size_t q, std::size_t lane);

  /// Grouped Pauli pass of the depolarizing channel: codes[l] in {0=I, 1=X,
  /// 2=Y, 3=Z} selects the Pauli applied to lane l on qubit q (code 0 leaves
  /// the lane untouched). One pair-base sweep replaces up to lanes() strided
  /// apply_matrix_lane calls when several lanes drew a charge at once; the
  /// per-lane arithmetic is the literal complex product with the 0 / ±1
  /// Pauli entries, so each lane is bitwise what apply_matrix_lane with the
  /// same Pauli would produce.
  void apply_pauli_lanes(std::size_t q, const std::uint8_t* codes);

  // ---- per-lane operators (candidate-lane batching) ----

  /// Apply a *different* operator per lane in one pass — the parameterized
  /// blocks of a candidate-lane batch, where every lane shares the circuit
  /// structure but carries its own rotation angle. us[l] acts on lane l
  /// (us.size() == lanes()). When all lanes share one structure class (all
  /// 1q diagonal / anti-diagonal / dense, or all 2q diagonal / dense) the
  /// kernel is lane-vectorized with per-lane coefficient rows; mixed classes
  /// and k > 2 fall back to per-lane strided applies. Either way lane l ends
  /// up bitwise identical (up to zero signs) to a scalar
  /// Statevector::apply_matrix(us[l], qubits).
  void apply_matrix_per_lane(const std::vector<la::CMat>& us,
                             const std::vector<std::size_t>& qubits);

  /// Apply a k-qubit operator to one lane only (strided), with the scalar
  /// backend's full structure dispatch — the mixed-structure fallback of
  /// apply_matrix_per_lane. Generalizes apply_matrix_lane beyond one qubit.
  void apply_matrix_one_lane(const la::CMat& u, const std::vector<std::size_t>& qubits,
                             std::size_t lane);

  // ---- lane-native objective reductions (no terminal sampling) ----

  /// One lane-major sweep over the [basis][lane] planes: num[l] +=
  /// values[i] * p and den[l] += p in ascending basis order, with p = re^2 +
  /// im^2 — the sampling-free expectation pass (values indexed by the local
  /// basis index). States may be unnormalized (trajectory lanes carry their
  /// squared norm); num[l] / den[l] is lane l's normalized expectation. The
  /// accumulation mirrors Statevector::weighted_mass term-for-term.
  void weighted_masses(const double* values, double* num, double* den) const;

  /// Mapped probability accumulation for the CVaR tail pass: for every basis
  /// index i (ascending), out[map[i] * lanes + l] += p. The caller zeroes
  /// `out` (num_mapped x lanes entries) and owns any normalization.
  void accumulate_mapped(const std::uint32_t* map, double* out) const;

  // ---- terminal sampling ----

  /// One probability pass for all lanes: out[l] = first basis index i with
  /// x[l] < sum_{j<=i} |amp_j(l)|^2 (fall-through to dim()-1), matching the
  /// scalar trajectory sampler. Lanes with active[l] == 0 are skipped
  /// (their out entry is left untouched); pass active == nullptr for all.
  void sample_lanes(const double* x, const std::uint8_t* active,
                    std::uint64_t* out) const;

  /// Shared-state sampling for lanes that took no stochastic branch (their
  /// amplitudes are bitwise identical): `draws` is (x, lane) sorted
  /// ascending by x; one accumulate pass over ref_lane emits every outcome.
  void sample_sorted(std::size_t ref_lane,
                     const std::pair<double, std::size_t>* draws, std::size_t count,
                     std::uint64_t* out) const;

 private:
  std::size_t num_qubits_ = 0;
  std::size_t dim_ = 0;
  std::size_t lanes_ = 0;
  std::vector<double> re_, im_;
  // Gather scratch of the 2q/3q kernels (8 rows x lanes) and sampling scratch,
  // allocated once so the hot loop never touches the allocator. Instances
  // are used from one thread at a time (the engine keeps one per worker), so
  // mutable scratch in const sampling methods is safe.
  std::vector<double> scratch_re_, scratch_im_;
  mutable std::vector<double> acc_;
  mutable std::vector<std::uint8_t> done_;
};

}  // namespace hgp::sim
