#pragma once

#include <algorithm>
#include <cstdint>

#include "linalg/matrix.hpp"
#include "linalg/types.hpp"

namespace hgp::sim::detail {

/// Operator-structure detection and basis-index iteration shared by the
/// scalar `Statevector` kernels and the lane-batched `BatchedStatevector`
/// kernels. Both backends MUST dispatch identically (and then perform the
/// same complex arithmetic) for the trajectory engines to produce
/// bit-identical counts, so the detection logic lives here exactly once.

inline bool is_zero(const la::cxd& x) { return x.real() == 0.0 && x.imag() == 0.0; }

/// Iterate f(i) over all basis indices with bit `b` clear — nested block
/// iteration touches exactly size/2 indices instead of a skip-test over all.
template <typename F>
inline void for_each_pair_base(std::uint64_t size, std::uint64_t b, F&& f) {
  for (std::uint64_t base = 0; base < size; base += 2 * b)
    for (std::uint64_t i = base; i < base + b; ++i) f(i);
}

/// Iterate f(i) over all basis indices with both bits clear (size/4 visits).
template <typename F>
inline void for_each_quad_base(std::uint64_t size, std::uint64_t b0, std::uint64_t b1,
                               F&& f) {
  const std::uint64_t blo = std::min(b0, b1);
  const std::uint64_t bhi = std::max(b0, b1);
  for (std::uint64_t outer = 0; outer < size; outer += 2 * bhi)
    for (std::uint64_t mid = outer; mid < outer + bhi; mid += 2 * blo)
      for (std::uint64_t i = mid; i < mid + blo; ++i) f(i);
}

/// Iterate f(i) over all basis indices with all three bits clear (size/8
/// visits) — the block-base walk of the dense 3q fusion kernels.
template <typename F>
inline void for_each_oct_base(std::uint64_t size, std::uint64_t b0, std::uint64_t b1,
                              std::uint64_t b2, F&& f) {
  std::uint64_t m[3] = {b0, b1, b2};
  std::sort(m, m + 3);
  for (std::uint64_t outer = 0; outer < size; outer += 2 * m[2])
    for (std::uint64_t mid = outer; mid < outer + m[2]; mid += 2 * m[1])
      for (std::uint64_t inner = mid; inner < mid + m[1]; inner += 2 * m[0])
        for (std::uint64_t i = inner; i < inner + m[0]; ++i) f(i);
}

/// Iterate f(i) over all basis indices with bit `b` set (size/2 visits,
/// ascending) — the |1>-subspace walk of the trajectory noise kernels.
template <typename F>
inline void for_each_one(std::uint64_t size, std::uint64_t b, F&& f) {
  for (std::uint64_t base = b; base < size; base += 2 * b)
    for (std::uint64_t i = base; i < base + b; ++i) f(i);
}

/// True when the 2x2 operator is diagonal (RZ/Z-frame blocks).
inline bool is_diagonal2(const la::CMat& u) {
  return u.rows() == 2 && is_zero(u(0, 1)) && is_zero(u(1, 0));
}

/// True when the 2x2 operator is anti-diagonal (X/Y-like).
inline bool is_antidiagonal2(const la::CMat& u) {
  return u.rows() == 2 && is_zero(u(0, 0)) && is_zero(u(1, 1));
}

/// True when the 4x4 operator is diagonal (RZZ/CZ/CPhase).
inline bool is_diagonal4(const la::CMat& u) {
  for (std::size_t r = 0; r < 4; ++r)
    for (std::size_t c = 0; c < 4; ++c)
      if (r != c && !is_zero(u(r, c))) return false;
  return true;
}

/// True when a square operator of any width is diagonal — the structure test
/// of the 8x8 fused-block fast path (and any wider future specialization).
inline bool is_diagonal_n(const la::CMat& u) {
  for (std::size_t r = 0; r < u.rows(); ++r)
    for (std::size_t c = 0; c < u.cols(); ++c)
      if (r != c && !is_zero(u(r, c))) return false;
  return true;
}

/// A generalized 4x4 permutation: exactly one non-zero per column, all
/// target rows distinct. column c scatters to row perm[c] with phase[c].
struct Perm4 {
  std::size_t perm[4];
  la::cxd phase[4];
};

/// Extract the generalized-permutation structure (CX/SWAP/X⊗X...). Returns
/// false for anything that must take the dense path — including non-unitary
/// operators that repeat a target row.
inline bool as_permutation4(const la::CMat& u, Perm4& out) {
  bool row_used[4] = {false, false, false, false};
  for (std::size_t c = 0; c < 4; ++c) {
    std::size_t nonzero = 0, row = 0;
    for (std::size_t r = 0; r < 4; ++r)
      if (!is_zero(u(r, c))) {
        ++nonzero;
        row = r;
      }
    if (nonzero != 1 || row_used[row]) return false;
    row_used[row] = true;
    out.perm[c] = row;
    out.phase[c] = u(row, c);
  }
  return true;
}

/// Expand a compressed base index (k target bits removed) back to a full
/// basis index with zeros at every target-bit position. `sorted_masks` must
/// be the target bit masks in ascending order.
inline std::uint64_t expand_base(std::uint64_t t, const std::uint64_t* sorted_masks,
                                 std::size_t k) {
  std::uint64_t i = t;
  for (std::size_t j = 0; j < k; ++j) {
    const std::uint64_t m = sorted_masks[j];
    i = ((i & ~(m - 1)) << 1) | (i & (m - 1));
  }
  return i;
}

}  // namespace hgp::sim::detail
