#pragma once

#include <cstdint>
#include <map>
#include <memory>
#include <string>

#include "circuit/circuit.hpp"
#include "common/rng.hpp"
#include "linalg/matrix.hpp"
#include "linalg/pauli.hpp"

namespace hgp::sim {

/// Measurement counts keyed by the basis-state bitmask (bit q = outcome of
/// qubit q). Ordered map so printouts are deterministic.
using Counts = std::map<std::uint64_t, std::size_t>;

/// Render a bitmask as the conventional big-endian bitstring ("q_{n-1}..q_0").
std::string bits_to_string(std::uint64_t bits, std::size_t num_qubits);

/// Multinomial shot sampling from a (possibly un-normalized) probability
/// vector via inverse-CDF draws — the one sampler every backend and the
/// executor's exact-density engine share.
Counts sample_from_probabilities(const std::vector<double>& p, std::size_t shots, Rng& rng);

/// Available state representations.
enum class StateKind {
  Statevector,  ///< pure state, trajectory noise, up to ~26 qubits
  Density,      ///< exact mixed state with Kraus channels, small registers
};

/// Parse "statevector" | "density" (throws on anything else).
StateKind state_kind_from_name(const std::string& name);
const std::string& state_kind_name(StateKind kind);

/// Polymorphic quantum register: the single surface the executor, drivers,
/// and noise channels program against. Concrete backends are `Statevector`
/// (pure states, trajectory noise) and `DensityMatrix` (exact open-system
/// evolution); both keep their richer concrete APIs for callers that need
/// amplitudes or Kraus maps directly.
class QuantumState {
 public:
  virtual ~QuantumState() = default;

  virtual StateKind kind() const = 0;
  virtual std::size_t num_qubits() const = 0;
  /// Back to |0...0>.
  virtual void reset() = 0;
  virtual std::unique_ptr<QuantumState> clone() const = 0;

  /// Apply a dense k-qubit operator to the listed qubits (first listed qubit
  /// = least significant sub-index bit). The operator need not be unitary:
  /// a statevector maps psi -> A psi, a density matrix rho -> A rho A†, so
  /// un-normalized Kraus branches compose with normalize().
  virtual void apply_matrix(const la::CMat& u,
                            const std::vector<std::size_t>& qubits) = 0;

  /// Apply one circuit op (must be bound; Barrier/I/Delay are no-ops;
  /// Measure is rejected — use sample()).
  void apply_op(const qc::Op& op);
  /// Run a whole bound circuit.
  void run(const qc::Circuit& circuit);

  /// Probability of each basis state (diagonal of rho / |amplitude|²).
  virtual std::vector<double> probabilities() const = 0;
  /// Probability that qubit q reads 1.
  virtual double prob_one(std::size_t q) const = 0;
  /// Expectation of a Pauli-sum observable.
  virtual double expectation(const la::PauliSum& obs) const = 0;

  /// Sample `shots` measurement outcomes of all qubits.
  virtual Counts sample(std::size_t shots, Rng& rng) const;
  /// Sample a single outcome without materializing the CDF (the trajectory
  /// engine's per-shot path).
  virtual std::uint64_t sample_one(Rng& rng) const;

  /// Project qubit q onto `outcome` and renormalize; returns the outcome's
  /// pre-measurement probability.
  virtual double collapse(std::size_t q, bool outcome) = 0;
  /// Rescale to unit norm / unit trace after a non-unitary apply_matrix.
  virtual void normalize() = 0;
  /// Apply one (generally non-unitary) Kraus operator and renormalize —
  /// trajectory-noise branch selection. Backends may fuse the two passes.
  virtual void apply_kraus_branch(const la::CMat& k,
                                  const std::vector<std::size_t>& qubits);
};

/// Factory: construct a fresh |0...0> state of the given representation.
std::unique_ptr<QuantumState> make_state(StateKind kind, std::size_t num_qubits);
std::unique_ptr<QuantumState> make_state(const std::string& kind_name,
                                         std::size_t num_qubits);

}  // namespace hgp::sim
