#pragma once

#include <vector>

#include "circuit/circuit.hpp"
#include "linalg/matrix.hpp"
#include "linalg/pauli.hpp"

namespace hgp::sim {

/// Dense density-matrix simulator (small qubit counts). The trajectory
/// sampler in `noise/` is the production path; this class is the exact
/// reference the trajectory statistics are verified against, and the tool
/// for purity/entropy analyses in the examples.
class DensityMatrix {
 public:
  explicit DensityMatrix(std::size_t num_qubits);
  static DensityMatrix from_amplitudes(const la::CVec& amplitudes);

  std::size_t num_qubits() const { return num_qubits_; }
  const la::CMat& data() const { return rho_; }

  /// rho -> U rho U† with U acting on the listed qubits (first = LSB).
  void apply_unitary(const la::CMat& u, const std::vector<std::size_t>& qubits);
  /// rho -> Σ_k K_k rho K_k† (Kraus maps on the listed qubits).
  void apply_kraus(const std::vector<la::CMat>& kraus,
                   const std::vector<std::size_t>& qubits);
  void apply_op(const qc::Op& op);
  void run(const qc::Circuit& circuit);

  // ----- standard channels (exact, non-stochastic) -----
  void apply_depolarizing(const std::vector<std::size_t>& qubits, double p);
  void apply_amplitude_damping(std::size_t q, double gamma);
  void apply_phase_damping(std::size_t q, double p_z);
  void apply_thermal_relaxation(std::size_t q, double t1_us, double t2_us,
                                double duration_ns);

  std::vector<double> probabilities() const;
  double expectation(const la::PauliSum& obs) const;
  /// Tr(rho) — 1 for any CPTP evolution.
  double trace() const;
  /// Tr(rho²) — 1 for pure states, 1/2^n for the maximally mixed state.
  double purity() const;

 private:
  /// Lift a k-qubit operator to the full register.
  la::CMat lift(const la::CMat& op, const std::vector<std::size_t>& qubits) const;

  std::size_t num_qubits_;
  la::CMat rho_;
};

}  // namespace hgp::sim
