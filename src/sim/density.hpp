#pragma once

#include <vector>

#include "circuit/circuit.hpp"
#include "linalg/matrix.hpp"
#include "linalg/pauli.hpp"
#include "sim/state.hpp"

namespace hgp::sim {

/// Dense density-matrix simulator (small qubit counts). As a `QuantumState`
/// backend it powers the executor's exact-density engine: noise channels
/// apply as Kraus maps in a single pass, so no trajectory shot loop is
/// needed. It is also the exact reference the trajectory statistics are
/// verified against, and the tool for purity/entropy analyses.
class DensityMatrix final : public QuantumState {
 public:
  explicit DensityMatrix(std::size_t num_qubits);
  static DensityMatrix from_amplitudes(const la::CVec& amplitudes);

  StateKind kind() const override { return StateKind::Density; }
  std::size_t num_qubits() const override { return num_qubits_; }
  const la::CMat& data() const { return rho_; }

  void reset() override;
  std::unique_ptr<QuantumState> clone() const override;

  /// rho -> A rho A† with A acting on the listed qubits (first = LSB). For a
  /// non-unitary A (Kraus branch) the result is un-normalized; pair with
  /// normalize().
  void apply_matrix(const la::CMat& u, const std::vector<std::size_t>& qubits) override;
  /// Alias of apply_matrix kept for the exact-channel call sites.
  void apply_unitary(const la::CMat& u, const std::vector<std::size_t>& qubits);
  /// rho -> Σ_k K_k rho K_k† (Kraus maps on the listed qubits).
  void apply_kraus(const std::vector<la::CMat>& kraus,
                   const std::vector<std::size_t>& qubits);

  // ----- standard channels (exact, non-stochastic) -----
  void apply_depolarizing(const std::vector<std::size_t>& qubits, double p);
  void apply_amplitude_damping(std::size_t q, double gamma);
  void apply_phase_damping(std::size_t q, double p_z);
  void apply_thermal_relaxation(std::size_t q, double t1_us, double t2_us,
                                double duration_ns);

  std::vector<double> probabilities() const override;
  double prob_one(std::size_t q) const override;
  double expectation(const la::PauliSum& obs) const override;
  /// Project qubit q onto `outcome`, renormalize rho; returns the outcome's
  /// pre-measurement probability.
  double collapse(std::size_t q, bool outcome) override;
  /// Rescale to unit trace after a non-unitary apply_matrix.
  void normalize() override;
  /// Tr(rho) — 1 for any CPTP evolution.
  double trace() const;
  /// Tr(rho²) — 1 for pure states, 1/2^n for the maximally mixed state.
  double purity() const;

 private:
  std::size_t num_qubits_;
  la::CMat rho_;
};

}  // namespace hgp::sim
