#include "sim/batched_statevector.hpp"

#include <algorithm>
#include <cmath>

#include "common/error.hpp"
#include "sim/kernel_structure.hpp"

namespace hgp::sim {

using la::cxd;
using la::CMat;
using detail::for_each_one;
using detail::for_each_pair_base;
using detail::for_each_quad_base;
using detail::is_zero;

// Every arithmetic expression in this file mirrors the corresponding scalar
// Statevector / executor kernel term-for-term (products first, then the same
// association of sums) so that, with FP contraction disabled, a lane evolves
// bit-identically to a scalar shot. Do not "simplify" the arithmetic here
// without changing the scalar kernels in lockstep.

BatchedStatevector::BatchedStatevector(std::size_t num_qubits, std::size_t lanes)
    : num_qubits_(num_qubits), dim_(std::size_t{1} << num_qubits), lanes_(lanes) {
  HGP_REQUIRE(num_qubits <= 26, "BatchedStatevector: too many qubits");
  HGP_REQUIRE(lanes >= 1, "BatchedStatevector: need at least one lane");
  re_.assign(dim_ * lanes_, 0.0);
  im_.assign(dim_ * lanes_, 0.0);
  for (std::size_t l = 0; l < lanes_; ++l) re_[l] = 1.0;
  scratch_re_.resize(8 * lanes_);
  scratch_im_.resize(8 * lanes_);
  acc_.resize(lanes_);
  done_.resize(lanes_);
}

void BatchedStatevector::reset() {
  std::fill(re_.begin(), re_.end(), 0.0);
  std::fill(im_.begin(), im_.end(), 0.0);
  for (std::size_t l = 0; l < lanes_; ++l) re_[l] = 1.0;
}

cxd BatchedStatevector::amplitude(std::uint64_t i, std::size_t lane) const {
  return {re_[i * lanes_ + lane], im_[i * lanes_ + lane]};
}

void BatchedStatevector::set_amplitude(std::uint64_t i, std::size_t lane, cxd a) {
  re_[i * lanes_ + lane] = a.real();
  im_[i * lanes_ + lane] = a.imag();
}

namespace {

/// row *= c for every lane (mirror of amp[i] *= c).
inline void mul_row(double* __restrict__ re, double* __restrict__ im, std::size_t L,
                    double cr, double ci) {
  for (std::size_t l = 0; l < L; ++l) {
    const double ar = re[l], ai = im[l];
    re[l] = cr * ar - ci * ai;
    im[l] = cr * ai + ci * ar;
  }
}

}  // namespace

void BatchedStatevector::apply_matrix(const CMat& u,
                                      const std::vector<std::size_t>& qubits) {
  const std::size_t k = qubits.size();
  HGP_REQUIRE(u.rows() == (std::size_t{1} << k) && u.cols() == u.rows(),
              "BatchedStatevector::apply_matrix: matrix size mismatch");
  for (std::size_t q : qubits)
    HGP_REQUIRE(q < num_qubits_, "BatchedStatevector::apply_matrix: qubit out of range");
  const std::size_t L = lanes_;

  if (k == 1) {
    const std::uint64_t bit = std::uint64_t{1} << qubits[0];
    const cxd u00 = u(0, 0), u01 = u(0, 1), u10 = u(1, 0), u11 = u(1, 1);
    if (is_zero(u01) && is_zero(u10)) {
      // Diagonal: pure per-amplitude phases, broadcast over lanes.
      const double d0r = u00.real(), d0i = u00.imag();
      const double d1r = u11.real(), d1i = u11.imag();
      for_each_pair_base(dim_, bit, [&](std::uint64_t i) {
        mul_row(&re_[i * L], &im_[i * L], L, d0r, d0i);
        mul_row(&re_[(i | bit) * L], &im_[(i | bit) * L], L, d1r, d1i);
      });
      return;
    }
    if (is_zero(u00) && is_zero(u11)) {
      // Anti-diagonal: paired swap with phases.
      const double p01r = u01.real(), p01i = u01.imag();
      const double p10r = u10.real(), p10i = u10.imag();
      for_each_pair_base(dim_, bit, [&](std::uint64_t i) {
        double* __restrict__ r0 = &re_[i * L];
        double* __restrict__ m0 = &im_[i * L];
        double* __restrict__ r1 = &re_[(i | bit) * L];
        double* __restrict__ m1 = &im_[(i | bit) * L];
        for (std::size_t l = 0; l < L; ++l) {
          const double ar0 = r0[l], ai0 = m0[l];
          const double ar1 = r1[l], ai1 = m1[l];
          r0[l] = p01r * ar1 - p01i * ai1;
          m0[l] = p01r * ai1 + p01i * ar1;
          r1[l] = p10r * ar0 - p10i * ai0;
          m1[l] = p10r * ai0 + p10i * ar0;
        }
      });
      return;
    }
    const double u00r = u00.real(), u00i = u00.imag();
    const double u01r = u01.real(), u01i = u01.imag();
    const double u10r = u10.real(), u10i = u10.imag();
    const double u11r = u11.real(), u11i = u11.imag();
    for_each_pair_base(dim_, bit, [&](std::uint64_t i) {
      double* __restrict__ r0 = &re_[i * L];
      double* __restrict__ m0 = &im_[i * L];
      double* __restrict__ r1 = &re_[(i | bit) * L];
      double* __restrict__ m1 = &im_[(i | bit) * L];
      for (std::size_t l = 0; l < L; ++l) {
        const double ar0 = r0[l], ai0 = m0[l];
        const double ar1 = r1[l], ai1 = m1[l];
        r0[l] = (u00r * ar0 - u00i * ai0) + (u01r * ar1 - u01i * ai1);
        m0[l] = (u00r * ai0 + u00i * ar0) + (u01r * ai1 + u01i * ar1);
        r1[l] = (u10r * ar0 - u10i * ai0) + (u11r * ar1 - u11i * ai1);
        m1[l] = (u10r * ai0 + u10i * ar0) + (u11r * ai1 + u11i * ar1);
      }
    });
    return;
  }

  if (k == 2) {
    const std::uint64_t b0 = std::uint64_t{1} << qubits[0];
    const std::uint64_t b1 = std::uint64_t{1} << qubits[1];
    std::uint64_t offset[4];
    for (std::size_t s = 0; s < 4; ++s)
      offset[s] = ((s & 1) ? b0 : 0) | ((s & 2) ? b1 : 0);

    if (detail::is_diagonal4(u)) {
      const cxd d[4] = {u(0, 0), u(1, 1), u(2, 2), u(3, 3)};
      for_each_quad_base(dim_, b0, b1, [&](std::uint64_t i) {
        for (std::size_t s = 0; s < 4; ++s)
          mul_row(&re_[(i | offset[s]) * L], &im_[(i | offset[s]) * L], L, d[s].real(),
                  d[s].imag());
      });
      return;
    }

    detail::Perm4 p4;
    if (detail::as_permutation4(u, p4)) {
      std::vector<double>& sr = scratch_re_;
      std::vector<double>& si = scratch_im_;
      for_each_quad_base(dim_, b0, b1, [&](std::uint64_t i) {
        for (std::size_t s = 0; s < 4; ++s) {
          const double* __restrict__ r = &re_[(i | offset[s]) * L];
          const double* __restrict__ m = &im_[(i | offset[s]) * L];
          for (std::size_t l = 0; l < L; ++l) {
            sr[s * L + l] = r[l];
            si[s * L + l] = m[l];
          }
        }
        for (std::size_t s = 0; s < 4; ++s) {
          const double pr = p4.phase[s].real(), pi = p4.phase[s].imag();
          double* __restrict__ r = &re_[(i | offset[p4.perm[s]]) * L];
          double* __restrict__ m = &im_[(i | offset[p4.perm[s]]) * L];
          const double* __restrict__ ar = &sr[s * L];
          const double* __restrict__ ai = &si[s * L];
          for (std::size_t l = 0; l < L; ++l) {
            r[l] = pr * ar[l] - pi * ai[l];
            m[l] = pr * ai[l] + pi * ar[l];
          }
        }
      });
      return;
    }

    double ur[4][4], ui[4][4];
    for (std::size_t r = 0; r < 4; ++r)
      for (std::size_t c = 0; c < 4; ++c) {
        ur[r][c] = u(r, c).real();
        ui[r][c] = u(r, c).imag();
      }
    std::vector<double>& sr = scratch_re_;
    std::vector<double>& si = scratch_im_;
    for_each_quad_base(dim_, b0, b1, [&](std::uint64_t i) {
      for (std::size_t s = 0; s < 4; ++s) {
        const double* __restrict__ r = &re_[(i | offset[s]) * L];
        const double* __restrict__ m = &im_[(i | offset[s]) * L];
        for (std::size_t l = 0; l < L; ++l) {
          sr[s * L + l] = r[l];
          si[s * L + l] = m[l];
        }
      }
      // Mirror of the scalar row expression u(r,0)*a0 + u(r,1)*a1 + ... :
      // each product rounded first, sums associated left-to-right.
      for (std::size_t r = 0; r < 4; ++r) {
        double* __restrict__ outr = &re_[(i | offset[r]) * L];
        double* __restrict__ outm = &im_[(i | offset[r]) * L];
        for (std::size_t l = 0; l < L; ++l) {
          const double p0r = ur[r][0] * sr[0 * L + l] - ui[r][0] * si[0 * L + l];
          const double p0i = ur[r][0] * si[0 * L + l] + ui[r][0] * sr[0 * L + l];
          const double p1r = ur[r][1] * sr[1 * L + l] - ui[r][1] * si[1 * L + l];
          const double p1i = ur[r][1] * si[1 * L + l] + ui[r][1] * sr[1 * L + l];
          const double p2r = ur[r][2] * sr[2 * L + l] - ui[r][2] * si[2 * L + l];
          const double p2i = ur[r][2] * si[2 * L + l] + ui[r][2] * sr[2 * L + l];
          const double p3r = ur[r][3] * sr[3 * L + l] - ui[r][3] * si[3 * L + l];
          const double p3i = ur[r][3] * si[3 * L + l] + ui[r][3] * sr[3 * L + l];
          outr[l] = ((p0r + p1r) + p2r) + p3r;
          outm[l] = ((p0i + p1i) + p2i) + p3i;
        }
      }
    });
    return;
  }

  if (k == 3) {
    // Dense 3q kernel for width-3 fused blocks: same dispatch as the scalar
    // backend, lane-major unit-stride inner loops, and the generic path's
    // summation order (products rounded first, accumulated in s order).
    const std::uint64_t b0 = std::uint64_t{1} << qubits[0];
    const std::uint64_t b1 = std::uint64_t{1} << qubits[1];
    const std::uint64_t b2 = std::uint64_t{1} << qubits[2];
    std::uint64_t offset[8];
    for (std::size_t s = 0; s < 8; ++s)
      offset[s] = ((s & 1) ? b0 : 0) | ((s & 2) ? b1 : 0) | ((s & 4) ? b2 : 0);

    if (detail::is_diagonal_n(u)) {
      cxd d[8];
      for (std::size_t s = 0; s < 8; ++s) d[s] = u(s, s);
      detail::for_each_oct_base(dim_, b0, b1, b2, [&](std::uint64_t i) {
        for (std::size_t s = 0; s < 8; ++s)
          mul_row(&re_[(i | offset[s]) * L], &im_[(i | offset[s]) * L], L, d[s].real(),
                  d[s].imag());
      });
      return;
    }

    std::vector<double>& sr = scratch_re_;
    std::vector<double>& si = scratch_im_;
    detail::for_each_oct_base(dim_, b0, b1, b2, [&](std::uint64_t i) {
      for (std::size_t s = 0; s < 8; ++s) {
        const double* __restrict__ r = &re_[(i | offset[s]) * L];
        const double* __restrict__ m = &im_[(i | offset[s]) * L];
        for (std::size_t l = 0; l < L; ++l) {
          sr[s * L + l] = r[l];
          si[s * L + l] = m[l];
        }
      }
      for (std::size_t r = 0; r < 8; ++r) {
        double* __restrict__ outr = &re_[(i | offset[r]) * L];
        double* __restrict__ outm = &im_[(i | offset[r]) * L];
        for (std::size_t l = 0; l < L; ++l) {
          outr[l] = 0.0;
          outm[l] = 0.0;
        }
        for (std::size_t s = 0; s < 8; ++s) {
          const double cr = u(r, s).real(), ci = u(r, s).imag();
          const double* __restrict__ ar = &sr[s * L];
          const double* __restrict__ ai = &si[s * L];
          for (std::size_t l = 0; l < L; ++l) {
            const double pr = cr * ar[l] - ci * ai[l];
            const double pi = cr * ai[l] + ci * ar[l];
            outr[l] += pr;
            outm[l] += pi;
          }
        }
      }
    });
    return;
  }

  // Generic k-qubit path: block enumeration of the 2^(n-k) base indices,
  // same as the scalar backend.
  const std::size_t dim = std::size_t{1} << k;
  std::vector<std::uint64_t> masks(k);
  for (std::size_t j = 0; j < k; ++j) masks[j] = std::uint64_t{1} << qubits[j];
  std::vector<std::uint64_t> sorted_masks = masks;
  std::sort(sorted_masks.begin(), sorted_masks.end());

  std::vector<double> lr(dim * L), li(dim * L);
  std::vector<std::uint64_t> idx(dim);
  const std::uint64_t num_bases = dim_ >> k;
  for (std::uint64_t t = 0; t < num_bases; ++t) {
    const std::uint64_t base = detail::expand_base(t, sorted_masks.data(), k);
    for (std::uint64_t s = 0; s < dim; ++s) {
      std::uint64_t i = base;
      for (std::size_t j = 0; j < k; ++j)
        if ((s >> j) & 1) i |= masks[j];
      idx[s] = i;
      const double* __restrict__ r = &re_[i * L];
      const double* __restrict__ m = &im_[i * L];
      for (std::size_t l = 0; l < L; ++l) {
        lr[s * L + l] = r[l];
        li[s * L + l] = m[l];
      }
    }
    for (std::uint64_t r = 0; r < dim; ++r) {
      double* __restrict__ outr = &re_[idx[r] * L];
      double* __restrict__ outm = &im_[idx[r] * L];
      for (std::size_t l = 0; l < L; ++l) {
        outr[l] = 0.0;
        outm[l] = 0.0;
      }
      // acc += u(r,s) * local[s], product rounded before the accumulate —
      // the scalar path's exact summation order.
      for (std::uint64_t s = 0; s < dim; ++s) {
        const double cr = u(r, s).real(), ci = u(r, s).imag();
        const double* __restrict__ ar = &lr[s * L];
        const double* __restrict__ ai = &li[s * L];
        for (std::size_t l = 0; l < L; ++l) {
          const double pr = cr * ar[l] - ci * ai[l];
          const double pi = cr * ai[l] + ci * ar[l];
          outr[l] += pr;
          outm[l] += pi;
        }
      }
    }
  }
}

void BatchedStatevector::apply_phase_ratio(std::size_t q, cxd ratio) {
  if (ratio == cxd{1.0, 0.0}) return;
  HGP_REQUIRE(q < num_qubits_, "apply_phase_ratio: qubit out of range");
  const std::uint64_t bit = std::uint64_t{1} << q;
  const double rr = ratio.real(), ri = ratio.imag();
  const std::size_t L = lanes_;
  for_each_one(dim_, bit, [&](std::uint64_t i) { mul_row(&re_[i * L], &im_[i * L], L, rr, ri); });
}

void BatchedStatevector::masses_one(std::size_t q, double* m1) const {
  HGP_REQUIRE(q < num_qubits_, "masses_one: qubit out of range");
  const std::uint64_t bit = std::uint64_t{1} << q;
  const std::size_t L = lanes_;
  for (std::size_t l = 0; l < L; ++l) m1[l] = 0.0;
  for_each_one(dim_, bit, [&](std::uint64_t i) {
    const double* __restrict__ r = &re_[i * L];
    const double* __restrict__ m = &im_[i * L];
    for (std::size_t l = 0; l < L; ++l) m1[l] += r[l] * r[l] + m[l] * m[l];
  });
}

void BatchedStatevector::fused_mass_damp(std::size_t q, const double* scale1, double* m1) {
  HGP_REQUIRE(q < num_qubits_, "fused_mass_damp: qubit out of range");
  const std::uint64_t bit = std::uint64_t{1} << q;
  const std::size_t L = lanes_;
  for (std::size_t l = 0; l < L; ++l) m1[l] = 0.0;
  for_each_one(dim_, bit, [&](std::uint64_t i) {
    double* __restrict__ r = &re_[i * L];
    double* __restrict__ m = &im_[i * L];
    for (std::size_t l = 0; l < L; ++l) {
      const double ar = r[l], ai = m[l];
      m1[l] += ar * ar + ai * ai;
      r[l] = ar * scale1[l];
      m[l] = ai * scale1[l];
    }
  });
}

void BatchedStatevector::damp_or_jump(std::size_t q, const double* take,
                                      const double* scale1) {
  HGP_REQUIRE(q < num_qubits_, "damp_or_jump: qubit out of range");
  const std::uint64_t bit = std::uint64_t{1} << q;
  const std::size_t L = lanes_;
  for_each_one(dim_, bit, [&](std::uint64_t i) {
    double* __restrict__ r1 = &re_[i * L];
    double* __restrict__ m1p = &im_[i * L];
    double* __restrict__ r0 = &re_[(i ^ bit) * L];
    double* __restrict__ m0 = &im_[(i ^ bit) * L];
    for (std::size_t l = 0; l < L; ++l) {
      const double t = take[l];
      const double keep = 1.0 - t;
      r0[l] = keep * r0[l] + t * r1[l];
      m0[l] = keep * m0[l] + t * m1p[l];
      r1[l] *= scale1[l];
      m1p[l] *= scale1[l];
    }
  });
}

void BatchedStatevector::apply_matrix_lane(const CMat& u, std::size_t q, std::size_t lane) {
  HGP_REQUIRE(u.rows() == 2 && u.cols() == 2, "apply_matrix_lane: expected a 2x2 operator");
  HGP_REQUIRE(q < num_qubits_ && lane < lanes_, "apply_matrix_lane: out of range");
  const std::uint64_t bit = std::uint64_t{1} << q;
  const std::size_t L = lanes_;
  const cxd u00 = u(0, 0), u01 = u(0, 1), u10 = u(1, 0), u11 = u(1, 1);
  auto at = [&](std::uint64_t i) -> cxd { return {re_[i * L + lane], im_[i * L + lane]}; };
  auto put = [&](std::uint64_t i, cxd a) {
    re_[i * L + lane] = a.real();
    im_[i * L + lane] = a.imag();
  };
  // Same dispatch and arithmetic as the scalar 1q kernels, restricted to one
  // lane (strided access — this is the rare per-lane Pauli-branch path).
  if (is_zero(u01) && is_zero(u10)) {
    for (std::uint64_t i = 0; i < dim_; ++i) put(i, at(i) * ((i & bit) ? u11 : u00));
    return;
  }
  if (is_zero(u00) && is_zero(u11)) {
    for_each_pair_base(dim_, bit, [&](std::uint64_t i) {
      const cxd a0 = at(i);
      put(i, u01 * at(i | bit));
      put(i | bit, u10 * a0);
    });
    return;
  }
  for_each_pair_base(dim_, bit, [&](std::uint64_t i) {
    const cxd a0 = at(i);
    const cxd a1 = at(i | bit);
    put(i, u00 * a0 + u01 * a1);
    put(i | bit, u10 * a0 + u11 * a1);
  });
}

void BatchedStatevector::apply_pauli_lanes(std::size_t q, const std::uint8_t* codes) {
  HGP_REQUIRE(q < num_qubits_, "apply_pauli_lanes: qubit out of range");
  const std::uint64_t bit = std::uint64_t{1} << q;
  const std::size_t L = lanes_;
  // Literal complex products with the 0 / ±1 Pauli entries, in the exact
  // operand order of the scalar kernels (u * a for the anti-diagonal X/Y
  // paths, a * u for the diagonal Z path) — without fast-math the compiler
  // cannot fold 0.0 * x, so each lane rounds like apply_matrix_lane.
  for_each_pair_base(dim_, bit, [&](std::uint64_t i) {
    double* __restrict__ r0 = &re_[i * L];
    double* __restrict__ m0 = &im_[i * L];
    double* __restrict__ r1 = &re_[(i | bit) * L];
    double* __restrict__ m1 = &im_[(i | bit) * L];
    for (std::size_t l = 0; l < L; ++l) {
      const double ar0 = r0[l], ai0 = m0[l];
      const double ar1 = r1[l], ai1 = m1[l];
      switch (codes[l]) {
        case 1:  // X: u01 = u10 = 1
          r0[l] = 1.0 * ar1 - 0.0 * ai1;
          m0[l] = 1.0 * ai1 + 0.0 * ar1;
          r1[l] = 1.0 * ar0 - 0.0 * ai0;
          m1[l] = 1.0 * ai0 + 0.0 * ar0;
          break;
        case 2:  // Y: u01 = -i, u10 = i
          r0[l] = 0.0 * ar1 - (-1.0) * ai1;
          m0[l] = 0.0 * ai1 + (-1.0) * ar1;
          r1[l] = 0.0 * ar0 - 1.0 * ai0;
          m1[l] = 0.0 * ai0 + 1.0 * ar0;
          break;
        case 3:  // Z: u00 = 1, u11 = -1
          r0[l] = ar0 * 1.0 - ai0 * 0.0;
          m0[l] = ar0 * 0.0 + ai0 * 1.0;
          r1[l] = ar1 * -1.0 - ai1 * 0.0;
          m1[l] = ar1 * 0.0 + ai1 * -1.0;
          break;
        default:  // I: lane untouched
          break;
      }
    }
  });
}

void BatchedStatevector::apply_matrix_per_lane(const std::vector<CMat>& us,
                                               const std::vector<std::size_t>& qubits) {
  const std::size_t k = qubits.size();
  const std::size_t L = lanes_;
  HGP_REQUIRE(us.size() == L, "apply_matrix_per_lane: one operator per lane");
  const std::size_t rows = std::size_t{1} << k;
  for (const CMat& u : us)
    HGP_REQUIRE(u.rows() == rows && u.cols() == rows,
                "apply_matrix_per_lane: matrix size mismatch");
  for (std::size_t q : qubits)
    HGP_REQUIRE(q < num_qubits_, "apply_matrix_per_lane: qubit out of range");

  if (k == 1) {
    const std::uint64_t bit = std::uint64_t{1} << qubits[0];
    bool all_diag = true, all_anti = true;
    for (const CMat& u : us) {
      if (!detail::is_diagonal2(u)) all_diag = false;
      if (!detail::is_antidiagonal2(u)) all_anti = false;
    }
    if (all_diag) {
      // Per-lane diagonal phases: d0/d1 coefficient rows in the gather
      // scratch, one mul_row-shaped pass per half.
      double* __restrict__ d0r = &scratch_re_[0];
      double* __restrict__ d1r = &scratch_re_[L];
      double* __restrict__ d0i = &scratch_im_[0];
      double* __restrict__ d1i = &scratch_im_[L];
      for (std::size_t l = 0; l < L; ++l) {
        d0r[l] = us[l](0, 0).real();
        d0i[l] = us[l](0, 0).imag();
        d1r[l] = us[l](1, 1).real();
        d1i[l] = us[l](1, 1).imag();
      }
      for_each_pair_base(dim_, bit, [&](std::uint64_t i) {
        double* __restrict__ r0 = &re_[i * L];
        double* __restrict__ m0 = &im_[i * L];
        double* __restrict__ r1 = &re_[(i | bit) * L];
        double* __restrict__ m1 = &im_[(i | bit) * L];
        for (std::size_t l = 0; l < L; ++l) {
          const double ar0 = r0[l], ai0 = m0[l];
          const double ar1 = r1[l], ai1 = m1[l];
          r0[l] = d0r[l] * ar0 - d0i[l] * ai0;
          m0[l] = d0r[l] * ai0 + d0i[l] * ar0;
          r1[l] = d1r[l] * ar1 - d1i[l] * ai1;
          m1[l] = d1r[l] * ai1 + d1i[l] * ar1;
        }
      });
      return;
    }
    if (all_anti) {
      double* __restrict__ p01r = &scratch_re_[0];
      double* __restrict__ p10r = &scratch_re_[L];
      double* __restrict__ p01i = &scratch_im_[0];
      double* __restrict__ p10i = &scratch_im_[L];
      for (std::size_t l = 0; l < L; ++l) {
        p01r[l] = us[l](0, 1).real();
        p01i[l] = us[l](0, 1).imag();
        p10r[l] = us[l](1, 0).real();
        p10i[l] = us[l](1, 0).imag();
      }
      for_each_pair_base(dim_, bit, [&](std::uint64_t i) {
        double* __restrict__ r0 = &re_[i * L];
        double* __restrict__ m0 = &im_[i * L];
        double* __restrict__ r1 = &re_[(i | bit) * L];
        double* __restrict__ m1 = &im_[(i | bit) * L];
        for (std::size_t l = 0; l < L; ++l) {
          const double ar0 = r0[l], ai0 = m0[l];
          const double ar1 = r1[l], ai1 = m1[l];
          r0[l] = p01r[l] * ar1 - p01i[l] * ai1;
          m0[l] = p01r[l] * ai1 + p01i[l] * ar1;
          r1[l] = p10r[l] * ar0 - p10i[l] * ai0;
          m1[l] = p10r[l] * ai0 + p10i[l] * ar0;
        }
      });
      return;
    }
    bool all_dense = true;
    for (const CMat& u : us)
      if (detail::is_diagonal2(u) || detail::is_antidiagonal2(u)) all_dense = false;
    if (all_dense) {
      std::vector<double> cr(4 * L), ci(4 * L);
      for (std::size_t l = 0; l < L; ++l)
        for (std::size_t e = 0; e < 4; ++e) {
          cr[e * L + l] = us[l](e >> 1, e & 1).real();
          ci[e * L + l] = us[l](e >> 1, e & 1).imag();
        }
      const double* __restrict__ u00r = &cr[0 * L];
      const double* __restrict__ u01r = &cr[1 * L];
      const double* __restrict__ u10r = &cr[2 * L];
      const double* __restrict__ u11r = &cr[3 * L];
      const double* __restrict__ u00i = &ci[0 * L];
      const double* __restrict__ u01i = &ci[1 * L];
      const double* __restrict__ u10i = &ci[2 * L];
      const double* __restrict__ u11i = &ci[3 * L];
      for_each_pair_base(dim_, bit, [&](std::uint64_t i) {
        double* __restrict__ r0 = &re_[i * L];
        double* __restrict__ m0 = &im_[i * L];
        double* __restrict__ r1 = &re_[(i | bit) * L];
        double* __restrict__ m1 = &im_[(i | bit) * L];
        for (std::size_t l = 0; l < L; ++l) {
          const double ar0 = r0[l], ai0 = m0[l];
          const double ar1 = r1[l], ai1 = m1[l];
          r0[l] = (u00r[l] * ar0 - u00i[l] * ai0) + (u01r[l] * ar1 - u01i[l] * ai1);
          m0[l] = (u00r[l] * ai0 + u00i[l] * ar0) + (u01r[l] * ai1 + u01i[l] * ar1);
          r1[l] = (u10r[l] * ar0 - u10i[l] * ai0) + (u11r[l] * ar1 - u11i[l] * ai1);
          m1[l] = (u10r[l] * ai0 + u10i[l] * ar0) + (u11r[l] * ai1 + u11i[l] * ar1);
        }
      });
      return;
    }
    // Mixed structure classes: each lane takes its own scalar dispatch.
    for (std::size_t l = 0; l < L; ++l) apply_matrix_lane(us[l], qubits[0], l);
    return;
  }

  if (k == 2) {
    const std::uint64_t b0 = std::uint64_t{1} << qubits[0];
    const std::uint64_t b1 = std::uint64_t{1} << qubits[1];
    std::uint64_t offset[4];
    for (std::size_t s = 0; s < 4; ++s)
      offset[s] = ((s & 1) ? b0 : 0) | ((s & 2) ? b1 : 0);

    bool all_diag = true;
    for (const CMat& u : us)
      if (!detail::is_diagonal4(u)) all_diag = false;
    if (all_diag) {
      // The per-lane-theta RZZ kernel: four per-lane phase rows, one
      // quad-base sweep.
      for (std::size_t l = 0; l < L; ++l)
        for (std::size_t s = 0; s < 4; ++s) {
          scratch_re_[s * L + l] = us[l](s, s).real();
          scratch_im_[s * L + l] = us[l](s, s).imag();
        }
      for_each_quad_base(dim_, b0, b1, [&](std::uint64_t i) {
        for (std::size_t s = 0; s < 4; ++s) {
          const double* __restrict__ dr = &scratch_re_[s * L];
          const double* __restrict__ di = &scratch_im_[s * L];
          double* __restrict__ r = &re_[(i | offset[s]) * L];
          double* __restrict__ m = &im_[(i | offset[s]) * L];
          for (std::size_t l = 0; l < L; ++l) {
            const double ar = r[l], ai = m[l];
            r[l] = dr[l] * ar - di[l] * ai;
            m[l] = dr[l] * ai + di[l] * ar;
          }
        }
      });
      return;
    }

    bool any_structured = false;
    detail::Perm4 p4;
    for (const CMat& u : us)
      if (detail::is_diagonal4(u) || detail::as_permutation4(u, p4)) any_structured = true;
    if (!any_structured) {
      // All-dense: per-lane 4x4 coefficient rows, gather scratch as in the
      // broadcast kernel, the same product/association order per lane.
      std::vector<double> cr(16 * L), ci(16 * L);
      for (std::size_t l = 0; l < L; ++l)
        for (std::size_t r = 0; r < 4; ++r)
          for (std::size_t c = 0; c < 4; ++c) {
            cr[(r * 4 + c) * L + l] = us[l](r, c).real();
            ci[(r * 4 + c) * L + l] = us[l](r, c).imag();
          }
      std::vector<double>& sr = scratch_re_;
      std::vector<double>& si = scratch_im_;
      for_each_quad_base(dim_, b0, b1, [&](std::uint64_t i) {
        for (std::size_t s = 0; s < 4; ++s) {
          const double* __restrict__ r = &re_[(i | offset[s]) * L];
          const double* __restrict__ m = &im_[(i | offset[s]) * L];
          for (std::size_t l = 0; l < L; ++l) {
            sr[s * L + l] = r[l];
            si[s * L + l] = m[l];
          }
        }
        for (std::size_t r = 0; r < 4; ++r) {
          double* __restrict__ outr = &re_[(i | offset[r]) * L];
          double* __restrict__ outm = &im_[(i | offset[r]) * L];
          const double* __restrict__ ur0 = &cr[(r * 4 + 0) * L];
          const double* __restrict__ ur1 = &cr[(r * 4 + 1) * L];
          const double* __restrict__ ur2 = &cr[(r * 4 + 2) * L];
          const double* __restrict__ ur3 = &cr[(r * 4 + 3) * L];
          const double* __restrict__ ui0 = &ci[(r * 4 + 0) * L];
          const double* __restrict__ ui1 = &ci[(r * 4 + 1) * L];
          const double* __restrict__ ui2 = &ci[(r * 4 + 2) * L];
          const double* __restrict__ ui3 = &ci[(r * 4 + 3) * L];
          for (std::size_t l = 0; l < L; ++l) {
            const double p0r = ur0[l] * sr[0 * L + l] - ui0[l] * si[0 * L + l];
            const double p0i = ur0[l] * si[0 * L + l] + ui0[l] * sr[0 * L + l];
            const double p1r = ur1[l] * sr[1 * L + l] - ui1[l] * si[1 * L + l];
            const double p1i = ur1[l] * si[1 * L + l] + ui1[l] * sr[1 * L + l];
            const double p2r = ur2[l] * sr[2 * L + l] - ui2[l] * si[2 * L + l];
            const double p2i = ur2[l] * si[2 * L + l] + ui2[l] * sr[2 * L + l];
            const double p3r = ur3[l] * sr[3 * L + l] - ui3[l] * si[3 * L + l];
            const double p3i = ur3[l] * si[3 * L + l] + ui3[l] * sr[3 * L + l];
            outr[l] = ((p0r + p1r) + p2r) + p3r;
            outm[l] = ((p0i + p1i) + p2i) + p3i;
          }
        }
      });
      return;
    }
  }

  if (k == 3) {
    bool all_diag = true;
    for (const CMat& u : us)
      if (!detail::is_diagonal_n(u)) all_diag = false;
    if (all_diag) {
      // Width-3 fused diagonal chains with per-lane parameters: eight
      // per-lane phase rows, one oct-base sweep.
      const std::uint64_t b0 = std::uint64_t{1} << qubits[0];
      const std::uint64_t b1 = std::uint64_t{1} << qubits[1];
      const std::uint64_t b2 = std::uint64_t{1} << qubits[2];
      std::uint64_t offset[8];
      for (std::size_t s = 0; s < 8; ++s)
        offset[s] = ((s & 1) ? b0 : 0) | ((s & 2) ? b1 : 0) | ((s & 4) ? b2 : 0);
      for (std::size_t l = 0; l < L; ++l)
        for (std::size_t s = 0; s < 8; ++s) {
          scratch_re_[s * L + l] = us[l](s, s).real();
          scratch_im_[s * L + l] = us[l](s, s).imag();
        }
      detail::for_each_oct_base(dim_, b0, b1, b2, [&](std::uint64_t i) {
        for (std::size_t s = 0; s < 8; ++s) {
          const double* __restrict__ dr = &scratch_re_[s * L];
          const double* __restrict__ di = &scratch_im_[s * L];
          double* __restrict__ r = &re_[(i | offset[s]) * L];
          double* __restrict__ m = &im_[(i | offset[s]) * L];
          for (std::size_t l = 0; l < L; ++l) {
            const double ar = r[l], ai = m[l];
            r[l] = dr[l] * ar - di[l] * ai;
            m[l] = dr[l] * ai + di[l] * ar;
          }
        }
      });
      return;
    }

    bool any_diag = false;
    for (const CMat& u : us)
      if (detail::is_diagonal_n(u)) any_diag = true;
    if (!any_diag) {
      // All-dense width-3 fused blocks with per-lane parameters: per-lane
      // 8x8 coefficient rows, gather scratch, and the broadcast dense
      // kernel's product/association order per lane (products rounded
      // first, summed in ascending s).
      const std::uint64_t b0 = std::uint64_t{1} << qubits[0];
      const std::uint64_t b1 = std::uint64_t{1} << qubits[1];
      const std::uint64_t b2 = std::uint64_t{1} << qubits[2];
      std::uint64_t offset[8];
      for (std::size_t s = 0; s < 8; ++s)
        offset[s] = ((s & 1) ? b0 : 0) | ((s & 2) ? b1 : 0) | ((s & 4) ? b2 : 0);
      std::vector<double> cr(64 * L), ci(64 * L);
      for (std::size_t l = 0; l < L; ++l)
        for (std::size_t r = 0; r < 8; ++r)
          for (std::size_t c = 0; c < 8; ++c) {
            cr[(r * 8 + c) * L + l] = us[l](r, c).real();
            ci[(r * 8 + c) * L + l] = us[l](r, c).imag();
          }
      std::vector<double>& sr = scratch_re_;
      std::vector<double>& si = scratch_im_;
      detail::for_each_oct_base(dim_, b0, b1, b2, [&](std::uint64_t i) {
        for (std::size_t s = 0; s < 8; ++s) {
          const double* __restrict__ r = &re_[(i | offset[s]) * L];
          const double* __restrict__ m = &im_[(i | offset[s]) * L];
          for (std::size_t l = 0; l < L; ++l) {
            sr[s * L + l] = r[l];
            si[s * L + l] = m[l];
          }
        }
        for (std::size_t r = 0; r < 8; ++r) {
          double* __restrict__ outr = &re_[(i | offset[r]) * L];
          double* __restrict__ outm = &im_[(i | offset[r]) * L];
          for (std::size_t l = 0; l < L; ++l) {
            outr[l] = 0.0;
            outm[l] = 0.0;
          }
          for (std::size_t s = 0; s < 8; ++s) {
            const double* __restrict__ ur = &cr[(r * 8 + s) * L];
            const double* __restrict__ ui = &ci[(r * 8 + s) * L];
            const double* __restrict__ ar = &sr[s * L];
            const double* __restrict__ ai = &si[s * L];
            for (std::size_t l = 0; l < L; ++l) {
              const double pr = ur[l] * ar[l] - ui[l] * ai[l];
              const double pi = ur[l] * ai[l] + ui[l] * ar[l];
              outr[l] += pr;
              outm[l] += pi;
            }
          }
        }
      });
      return;
    }
  }

  // Mixed structure, permutation, or k > 2: per-lane strided applies with
  // the scalar dispatch.
  for (std::size_t l = 0; l < L; ++l) apply_matrix_one_lane(us[l], qubits, l);
}

void BatchedStatevector::apply_matrix_one_lane(const CMat& u,
                                               const std::vector<std::size_t>& qubits,
                                               std::size_t lane) {
  const std::size_t k = qubits.size();
  HGP_REQUIRE(u.rows() == (std::size_t{1} << k) && u.cols() == u.rows(),
              "apply_matrix_one_lane: matrix size mismatch");
  HGP_REQUIRE(lane < lanes_, "apply_matrix_one_lane: lane out of range");
  for (std::size_t q : qubits)
    HGP_REQUIRE(q < num_qubits_, "apply_matrix_one_lane: qubit out of range");
  if (k == 1) {
    apply_matrix_lane(u, qubits[0], lane);
    return;
  }
  const std::size_t L = lanes_;
  auto at = [&](std::uint64_t i) -> cxd { return {re_[i * L + lane], im_[i * L + lane]}; };
  auto put = [&](std::uint64_t i, cxd a) {
    re_[i * L + lane] = a.real();
    im_[i * L + lane] = a.imag();
  };

  if (k == 2) {
    const std::uint64_t b0 = std::uint64_t{1} << qubits[0];
    const std::uint64_t b1 = std::uint64_t{1} << qubits[1];
    if (detail::is_diagonal4(u)) {
      const cxd d[4] = {u(0, 0), u(1, 1), u(2, 2), u(3, 3)};
      for (std::uint64_t i = 0; i < dim_; ++i) {
        const std::size_t sub = ((i & b0) ? 1u : 0u) | ((i & b1) ? 2u : 0u);
        put(i, at(i) * d[sub]);
      }
      return;
    }
    detail::Perm4 p4;
    if (detail::as_permutation4(u, p4)) {
      std::uint64_t offset[4];
      for (std::size_t s = 0; s < 4; ++s)
        offset[s] = ((s & 1) ? b0 : 0) | ((s & 2) ? b1 : 0);
      for_each_quad_base(dim_, b0, b1, [&](std::uint64_t i) {
        cxd a[4];
        for (std::size_t s = 0; s < 4; ++s) a[s] = at(i | offset[s]);
        for (std::size_t s = 0; s < 4; ++s) put(i | offset[p4.perm[s]], p4.phase[s] * a[s]);
      });
      return;
    }
    for_each_quad_base(dim_, b0, b1, [&](std::uint64_t i) {
      const std::uint64_t i0 = i, i1 = i | b0, i2 = i | b1, i3 = i | b0 | b1;
      const cxd a0 = at(i0), a1 = at(i1), a2 = at(i2), a3 = at(i3);
      put(i0, u(0, 0) * a0 + u(0, 1) * a1 + u(0, 2) * a2 + u(0, 3) * a3);
      put(i1, u(1, 0) * a0 + u(1, 1) * a1 + u(1, 2) * a2 + u(1, 3) * a3);
      put(i2, u(2, 0) * a0 + u(2, 1) * a1 + u(2, 2) * a2 + u(2, 3) * a3);
      put(i3, u(3, 0) * a0 + u(3, 1) * a1 + u(3, 2) * a2 + u(3, 3) * a3);
    });
    return;
  }

  if (k == 3 && detail::is_diagonal_n(u)) {
    // Mirror of the scalar backend's diagonal-8 fast path, one lane's stride.
    const std::uint64_t b0 = std::uint64_t{1} << qubits[0];
    const std::uint64_t b1 = std::uint64_t{1} << qubits[1];
    const std::uint64_t b2 = std::uint64_t{1} << qubits[2];
    cxd d[8];
    for (std::size_t s = 0; s < 8; ++s) d[s] = u(s, s);
    for (std::uint64_t i = 0; i < dim_; ++i) {
      const std::size_t sub =
          ((i & b0) ? 1u : 0u) | ((i & b1) ? 2u : 0u) | ((i & b2) ? 4u : 0u);
      put(i, at(i) * d[sub]);
    }
    return;
  }

  // Generic k: the scalar backend's block enumeration, one lane's stride.
  const std::size_t dim = std::size_t{1} << k;
  std::vector<std::uint64_t> masks(k);
  for (std::size_t j = 0; j < k; ++j) masks[j] = std::uint64_t{1} << qubits[j];
  std::vector<std::uint64_t> sorted_masks = masks;
  std::sort(sorted_masks.begin(), sorted_masks.end());
  std::vector<cxd> local(dim);
  const std::uint64_t num_bases = dim_ >> k;
  for (std::uint64_t t = 0; t < num_bases; ++t) {
    const std::uint64_t base = detail::expand_base(t, sorted_masks.data(), k);
    for (std::uint64_t s = 0; s < dim; ++s) {
      std::uint64_t idx = base;
      for (std::size_t j = 0; j < k; ++j)
        if ((s >> j) & 1) idx |= masks[j];
      local[s] = at(idx);
    }
    for (std::uint64_t r = 0; r < dim; ++r) {
      cxd acc{0.0, 0.0};
      for (std::uint64_t s = 0; s < dim; ++s) acc += u(r, s) * local[s];
      std::uint64_t idx = base;
      for (std::size_t j = 0; j < k; ++j)
        if ((r >> j) & 1) idx |= masks[j];
      put(idx, acc);
    }
  }
}

void BatchedStatevector::weighted_masses(const double* values, double* num,
                                         double* den) const {
  const std::size_t L = lanes_;
  for (std::size_t l = 0; l < L; ++l) {
    num[l] = 0.0;
    den[l] = 0.0;
  }
  for (std::uint64_t i = 0; i < dim_; ++i) {
    const double* __restrict__ r = &re_[i * L];
    const double* __restrict__ m = &im_[i * L];
    const double v = values[i];
    for (std::size_t l = 0; l < L; ++l) {
      const double p = r[l] * r[l] + m[l] * m[l];
      num[l] += v * p;
      den[l] += p;
    }
  }
}

void BatchedStatevector::accumulate_mapped(const std::uint32_t* map, double* out) const {
  const std::size_t L = lanes_;
  for (std::uint64_t i = 0; i < dim_; ++i) {
    const double* __restrict__ r = &re_[i * L];
    const double* __restrict__ m = &im_[i * L];
    double* __restrict__ o = &out[static_cast<std::size_t>(map[i]) * L];
    for (std::size_t l = 0; l < L; ++l) o[l] += r[l] * r[l] + m[l] * m[l];
  }
}

void BatchedStatevector::sample_lanes(const double* x, const std::uint8_t* active,
                                      std::uint64_t* out) const {
  const std::size_t L = lanes_;
  std::vector<double>& acc = acc_;
  std::vector<std::uint8_t>& done = done_;
  std::fill(acc.begin(), acc.end(), 0.0);
  std::size_t remaining = 0;
  for (std::size_t l = 0; l < L; ++l) {
    done[l] = active != nullptr && !active[l];
    if (!done[l]) {
      out[l] = dim_ - 1;  // rounding-slack fall-through, as in the scalar scan
      ++remaining;
    }
  }
  if (remaining == 0) return;
  for (std::uint64_t i = 0; i < dim_; ++i) {
    const double* __restrict__ r = &re_[i * L];
    const double* __restrict__ m = &im_[i * L];
    for (std::size_t l = 0; l < L; ++l) acc[l] += r[l] * r[l] + m[l] * m[l];
    for (std::size_t l = 0; l < L; ++l) {
      if (!done[l] && x[l] < acc[l]) {
        out[l] = i;
        done[l] = 1;
        --remaining;
      }
    }
    if (remaining == 0) return;
  }
}

void BatchedStatevector::sample_sorted(std::size_t ref_lane,
                                       const std::pair<double, std::size_t>* draws,
                                       std::size_t count, std::uint64_t* out) const {
  if (count == 0) return;
  const std::size_t L = lanes_;
  double acc = 0.0;
  std::size_t d = 0;
  for (std::uint64_t i = 0; i < dim_ && d < count; ++i) {
    const double ar = re_[i * L + ref_lane], ai = im_[i * L + ref_lane];
    acc += ar * ar + ai * ai;
    while (d < count && draws[d].first < acc) {
      out[draws[d].second] = i;
      ++d;
    }
  }
  for (; d < count; ++d) out[draws[d].second] = dim_ - 1;
}

}  // namespace hgp::sim
