#include "sim/statevector.hpp"

#include <cmath>

#include "common/error.hpp"
#include "linalg/vec.hpp"

namespace hgp::sim {

using la::cxd;
using la::CMat;
using la::CVec;

std::string bits_to_string(std::uint64_t bits, std::size_t num_qubits) {
  std::string s(num_qubits, '0');
  for (std::size_t q = 0; q < num_qubits; ++q)
    if ((bits >> q) & 1) s[num_qubits - 1 - q] = '1';
  return s;
}

Statevector::Statevector(std::size_t num_qubits)
    : num_qubits_(num_qubits), amp_(std::size_t{1} << num_qubits, cxd{0.0, 0.0}) {
  HGP_REQUIRE(num_qubits <= 26, "Statevector: too many qubits");
  amp_[0] = 1.0;
}

Statevector Statevector::from_amplitudes(CVec amplitudes) {
  std::size_t n = 0;
  while ((std::size_t{1} << n) < amplitudes.size()) ++n;
  HGP_REQUIRE((std::size_t{1} << n) == amplitudes.size(),
              "Statevector: amplitude count is not a power of two");
  Statevector sv(n);
  sv.amp_ = std::move(amplitudes);
  return sv;
}

void Statevector::reset() {
  std::fill(amp_.begin(), amp_.end(), cxd{0.0, 0.0});
  amp_[0] = 1.0;
}

void Statevector::apply_matrix(const CMat& u, const std::vector<std::size_t>& qubits) {
  const std::size_t k = qubits.size();
  HGP_REQUIRE(u.rows() == (std::size_t{1} << k) && u.cols() == u.rows(),
              "apply_matrix: matrix size does not match qubit count");
  for (std::size_t q : qubits) HGP_REQUIRE(q < num_qubits_, "apply_matrix: qubit out of range");

  if (k == 1) {
    const std::size_t q = qubits[0];
    const std::uint64_t bit = std::uint64_t{1} << q;
    const cxd u00 = u(0, 0), u01 = u(0, 1), u10 = u(1, 0), u11 = u(1, 1);
    for (std::uint64_t i = 0; i < amp_.size(); ++i) {
      if (i & bit) continue;
      const cxd a0 = amp_[i];
      const cxd a1 = amp_[i | bit];
      amp_[i] = u00 * a0 + u01 * a1;
      amp_[i | bit] = u10 * a0 + u11 * a1;
    }
    return;
  }
  if (k == 2) {
    const std::uint64_t b0 = std::uint64_t{1} << qubits[0];
    const std::uint64_t b1 = std::uint64_t{1} << qubits[1];
    for (std::uint64_t i = 0; i < amp_.size(); ++i) {
      if ((i & b0) || (i & b1)) continue;
      const std::uint64_t i0 = i, i1 = i | b0, i2 = i | b1, i3 = i | b0 | b1;
      const cxd a0 = amp_[i0], a1 = amp_[i1], a2 = amp_[i2], a3 = amp_[i3];
      amp_[i0] = u(0, 0) * a0 + u(0, 1) * a1 + u(0, 2) * a2 + u(0, 3) * a3;
      amp_[i1] = u(1, 0) * a0 + u(1, 1) * a1 + u(1, 2) * a2 + u(1, 3) * a3;
      amp_[i2] = u(2, 0) * a0 + u(2, 1) * a1 + u(2, 2) * a2 + u(2, 3) * a3;
      amp_[i3] = u(3, 0) * a0 + u(3, 1) * a1 + u(3, 2) * a2 + u(3, 3) * a3;
    }
    return;
  }

  // Generic k-qubit path.
  const std::size_t dim = std::size_t{1} << k;
  std::vector<std::uint64_t> masks(k);
  for (std::size_t j = 0; j < k; ++j) masks[j] = std::uint64_t{1} << qubits[j];
  std::uint64_t outer_mask = 0;
  for (auto m : masks) outer_mask |= m;

  std::vector<cxd> local(dim);
  for (std::uint64_t i = 0; i < amp_.size(); ++i) {
    if (i & outer_mask) continue;
    for (std::uint64_t s = 0; s < dim; ++s) {
      std::uint64_t idx = i;
      for (std::size_t j = 0; j < k; ++j)
        if ((s >> j) & 1) idx |= masks[j];
      local[s] = amp_[idx];
    }
    for (std::uint64_t r = 0; r < dim; ++r) {
      cxd acc{0.0, 0.0};
      for (std::uint64_t s = 0; s < dim; ++s) acc += u(r, s) * local[s];
      std::uint64_t idx = i;
      for (std::size_t j = 0; j < k; ++j)
        if ((r >> j) & 1) idx |= masks[j];
      amp_[idx] = acc;
    }
  }
}

void Statevector::apply_op(const qc::Op& op) {
  if (op.kind == qc::GateKind::Barrier || op.kind == qc::GateKind::I ||
      op.kind == qc::GateKind::Delay)
    return;
  HGP_REQUIRE(op.kind != qc::GateKind::Measure,
              "Statevector::apply_op: use sample() for measurement");
  apply_matrix(qc::gate_matrix(op.kind, op.constant_params()), op.qubits);
}

void Statevector::run(const qc::Circuit& circuit) {
  HGP_REQUIRE(circuit.num_qubits() == num_qubits_, "Statevector::run: width mismatch");
  for (const qc::Op& op : circuit.ops()) apply_op(op);
}

std::vector<double> Statevector::probabilities() const {
  std::vector<double> p(amp_.size());
  for (std::size_t i = 0; i < amp_.size(); ++i) p[i] = std::norm(amp_[i]);
  return p;
}

Counts Statevector::sample(std::size_t shots, Rng& rng) const {
  // Inverse-CDF sampling over the cumulative distribution.
  std::vector<double> cdf(amp_.size());
  double acc = 0.0;
  for (std::size_t i = 0; i < amp_.size(); ++i) {
    acc += std::norm(amp_[i]);
    cdf[i] = acc;
  }
  Counts counts;
  for (std::size_t s = 0; s < shots; ++s) {
    const double x = rng.uniform() * acc;
    const auto it = std::lower_bound(cdf.begin(), cdf.end(), x);
    const auto idx = static_cast<std::uint64_t>(it - cdf.begin());
    ++counts[std::min<std::uint64_t>(idx, amp_.size() - 1)];
  }
  return counts;
}

double Statevector::expectation(const la::PauliSum& obs) const {
  HGP_REQUIRE(obs.num_qubits() == num_qubits_, "expectation: observable width mismatch");
  return obs.expectation(amp_);
}

double Statevector::prob_one(std::size_t q) const {
  HGP_REQUIRE(q < num_qubits_, "prob_one: qubit out of range");
  const std::uint64_t bit = std::uint64_t{1} << q;
  double p = 0.0;
  for (std::uint64_t i = 0; i < amp_.size(); ++i)
    if (i & bit) p += std::norm(amp_[i]);
  return p;
}

double Statevector::collapse(std::size_t q, bool outcome) {
  const double p1 = prob_one(q);
  const double p = outcome ? p1 : 1.0 - p1;
  HGP_REQUIRE(p > 1e-15, "collapse: outcome has (near-)zero probability");
  const std::uint64_t bit = std::uint64_t{1} << q;
  const double scale = 1.0 / std::sqrt(p);
  for (std::uint64_t i = 0; i < amp_.size(); ++i) {
    const bool one = (i & bit) != 0;
    if (one == outcome)
      amp_[i] *= scale;
    else
      amp_[i] = cxd{0.0, 0.0};
  }
  return p;
}

}  // namespace hgp::sim
