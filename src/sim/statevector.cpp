#include "sim/statevector.hpp"

#include <algorithm>
#include <cmath>

#include "common/error.hpp"
#include "linalg/vec.hpp"
#include "sim/kernel_structure.hpp"

namespace hgp::sim {

using la::cxd;
using la::CMat;
using la::CVec;
using detail::for_each_pair_base;
using detail::for_each_quad_base;
using detail::is_zero;

Statevector::Statevector(std::size_t num_qubits)
    : num_qubits_(num_qubits), amp_(std::size_t{1} << num_qubits, cxd{0.0, 0.0}) {
  HGP_REQUIRE(num_qubits <= 26, "Statevector: too many qubits");
  amp_[0] = 1.0;
}

Statevector Statevector::from_amplitudes(CVec amplitudes) {
  std::size_t n = 0;
  while ((std::size_t{1} << n) < amplitudes.size()) ++n;
  HGP_REQUIRE((std::size_t{1} << n) == amplitudes.size(),
              "Statevector: amplitude count is not a power of two");
  Statevector sv(n);
  sv.amp_ = std::move(amplitudes);
  return sv;
}

void Statevector::reset() {
  std::fill(amp_.begin(), amp_.end(), cxd{0.0, 0.0});
  amp_[0] = 1.0;
}

std::unique_ptr<QuantumState> Statevector::clone() const {
  return std::make_unique<Statevector>(*this);
}

void Statevector::apply_matrix(const CMat& u, const std::vector<std::size_t>& qubits) {
  const std::size_t k = qubits.size();
  HGP_REQUIRE(u.rows() == (std::size_t{1} << k) && u.cols() == u.rows(),
              "apply_matrix: matrix size does not match qubit count");
  for (std::size_t q : qubits) HGP_REQUIRE(q < num_qubits_, "apply_matrix: qubit out of range");

  if (k == 1) {
    const std::uint64_t bit = std::uint64_t{1} << qubits[0];
    const cxd u00 = u(0, 0), u01 = u(0, 1), u10 = u(1, 0), u11 = u(1, 1);
    if (is_zero(u01) && is_zero(u10)) {
      // Diagonal (RZ/Z/S/T/P and fused virtual-RZ blocks): pure per-amplitude
      // phases, no pairing pass.
      for (std::uint64_t i = 0; i < amp_.size(); ++i)
        amp_[i] *= (i & bit) ? u11 : u00;
      return;
    }
    if (is_zero(u00) && is_zero(u11)) {
      // Anti-diagonal (X/Y-like): a paired swap with phases.
      for_each_pair_base(amp_.size(), bit, [&](std::uint64_t i) {
        const cxd a0 = amp_[i];
        amp_[i] = u01 * amp_[i | bit];
        amp_[i | bit] = u10 * a0;
      });
      return;
    }
    for_each_pair_base(amp_.size(), bit, [&](std::uint64_t i) {
      const cxd a0 = amp_[i];
      const cxd a1 = amp_[i | bit];
      amp_[i] = u00 * a0 + u01 * a1;
      amp_[i | bit] = u10 * a0 + u11 * a1;
    });
    return;
  }
  if (k == 2) {
    const std::uint64_t b0 = std::uint64_t{1} << qubits[0];
    const std::uint64_t b1 = std::uint64_t{1} << qubits[1];

    if (detail::is_diagonal4(u)) {
      // Diagonal (RZZ/CZ/CPhase): one phase multiply per amplitude.
      const cxd d[4] = {u(0, 0), u(1, 1), u(2, 2), u(3, 3)};
      for (std::uint64_t i = 0; i < amp_.size(); ++i) {
        const std::size_t sub = ((i & b0) ? 1u : 0u) | ((i & b1) ? 2u : 0u);
        amp_[i] *= d[sub];
      }
      return;
    }

    // Generalized permutation (CX/SWAP/X⊗X...): exactly one non-zero per
    // column, all target rows distinct — a gather/scatter with phases
    // instead of a dense 4x4 product. (A non-unitary operator repeating a
    // target row must fall through to the dense path.)
    detail::Perm4 p4;
    if (detail::as_permutation4(u, p4)) {
      const std::uint64_t sub_bit[2] = {b0, b1};
      std::uint64_t offset[4];
      for (std::size_t s = 0; s < 4; ++s)
        offset[s] = ((s & 1) ? sub_bit[0] : 0) | ((s & 2) ? sub_bit[1] : 0);
      for_each_quad_base(amp_.size(), b0, b1, [&](std::uint64_t i) {
        cxd a[4];
        for (std::size_t s = 0; s < 4; ++s) a[s] = amp_[i | offset[s]];
        for (std::size_t s = 0; s < 4; ++s) amp_[i | offset[p4.perm[s]]] = p4.phase[s] * a[s];
      });
      return;
    }

    for_each_quad_base(amp_.size(), b0, b1, [&](std::uint64_t i) {
      const std::uint64_t i0 = i, i1 = i | b0, i2 = i | b1, i3 = i | b0 | b1;
      const cxd a0 = amp_[i0], a1 = amp_[i1], a2 = amp_[i2], a3 = amp_[i3];
      amp_[i0] = u(0, 0) * a0 + u(0, 1) * a1 + u(0, 2) * a2 + u(0, 3) * a3;
      amp_[i1] = u(1, 0) * a0 + u(1, 1) * a1 + u(1, 2) * a2 + u(1, 3) * a3;
      amp_[i2] = u(2, 0) * a0 + u(2, 1) * a1 + u(2, 2) * a2 + u(2, 3) * a3;
      amp_[i3] = u(3, 0) * a0 + u(3, 1) * a1 + u(3, 2) * a2 + u(3, 3) * a3;
    });
    return;
  }

  if (k == 3) {
    // Dense 3q kernel for width-3 fused blocks. Same structure dispatch as
    // the batched backend (kernel_structure.hpp) and the same arithmetic as
    // the generic path below: acc += u(r,s) * a[s], products rounded first,
    // sums associated left-to-right.
    const std::uint64_t b0 = std::uint64_t{1} << qubits[0];
    const std::uint64_t b1 = std::uint64_t{1} << qubits[1];
    const std::uint64_t b2 = std::uint64_t{1} << qubits[2];

    if (detail::is_diagonal_n(u)) {
      // Diagonal 8x8 (fused RZZ/CZ/virtual-RZ chains): one phase per amp.
      cxd d[8];
      for (std::size_t s = 0; s < 8; ++s) d[s] = u(s, s);
      for (std::uint64_t i = 0; i < amp_.size(); ++i) {
        const std::size_t sub =
            ((i & b0) ? 1u : 0u) | ((i & b1) ? 2u : 0u) | ((i & b2) ? 4u : 0u);
        amp_[i] *= d[sub];
      }
      return;
    }

    std::uint64_t offset[8];
    for (std::size_t s = 0; s < 8; ++s)
      offset[s] = ((s & 1) ? b0 : 0) | ((s & 2) ? b1 : 0) | ((s & 4) ? b2 : 0);
    detail::for_each_oct_base(amp_.size(), b0, b1, b2, [&](std::uint64_t i) {
      cxd a[8];
      for (std::size_t s = 0; s < 8; ++s) a[s] = amp_[i | offset[s]];
      for (std::size_t r = 0; r < 8; ++r) {
        cxd acc{0.0, 0.0};
        for (std::size_t s = 0; s < 8; ++s) acc += u(r, s) * a[s];
        amp_[i | offset[r]] = acc;
      }
    });
    return;
  }

  // Generic k-qubit path: enumerate the 2^(n-k) block-base indices directly
  // (insert a zero bit at each target position, ascending — same trick as
  // for_each_pair_base) instead of a skip test over all 2^n indices, so a
  // 3q+ operator no longer pays a full-register iteration tax.
  const std::size_t dim = std::size_t{1} << k;
  std::vector<std::uint64_t> masks(k);
  for (std::size_t j = 0; j < k; ++j) masks[j] = std::uint64_t{1} << qubits[j];
  std::vector<std::uint64_t> sorted_masks = masks;
  std::sort(sorted_masks.begin(), sorted_masks.end());

  std::vector<cxd> local(dim);
  const std::uint64_t num_bases = amp_.size() >> k;
  for (std::uint64_t t = 0; t < num_bases; ++t) {
    const std::uint64_t i = detail::expand_base(t, sorted_masks.data(), k);
    for (std::uint64_t s = 0; s < dim; ++s) {
      std::uint64_t idx = i;
      for (std::size_t j = 0; j < k; ++j)
        if ((s >> j) & 1) idx |= masks[j];
      local[s] = amp_[idx];
    }
    for (std::uint64_t r = 0; r < dim; ++r) {
      cxd acc{0.0, 0.0};
      for (std::uint64_t s = 0; s < dim; ++s) acc += u(r, s) * local[s];
      std::uint64_t idx = i;
      for (std::size_t j = 0; j < k; ++j)
        if ((r >> j) & 1) idx |= masks[j];
      amp_[idx] = acc;
    }
  }
}

std::vector<double> Statevector::probabilities() const {
  std::vector<double> p(amp_.size());
  for (std::size_t i = 0; i < amp_.size(); ++i) p[i] = std::norm(amp_[i]);
  return p;
}

void Statevector::weighted_mass(const double* values, double& num, double& den) const {
  num = 0.0;
  den = 0.0;
  for (std::uint64_t i = 0; i < amp_.size(); ++i) {
    const double ar = amp_[i].real(), ai = amp_[i].imag();
    const double p = ar * ar + ai * ai;
    num += values[i] * p;
    den += p;
  }
}

std::uint64_t Statevector::sample_one(Rng& rng) const {
  // One shot: a single accumulate-and-compare pass, no CDF materialization.
  // The state is unit-norm (trajectory branches renormalize), so the draw is
  // against 1 with a fall-through to the last amplitude for rounding slack.
  const double x = rng.uniform();
  double acc = 0.0;
  for (std::uint64_t i = 0; i < amp_.size(); ++i) {
    acc += std::norm(amp_[i]);
    if (x < acc) return i;
  }
  return amp_.size() - 1;
}

double Statevector::expectation(const la::PauliSum& obs) const {
  HGP_REQUIRE(obs.num_qubits() == num_qubits_, "expectation: observable width mismatch");
  return obs.expectation(amp_);
}

double Statevector::prob_one(std::size_t q) const {
  HGP_REQUIRE(q < num_qubits_, "prob_one: qubit out of range");
  const std::uint64_t bit = std::uint64_t{1} << q;
  double p = 0.0;
  for (std::uint64_t i = 0; i < amp_.size(); ++i)
    if (i & bit) p += std::norm(amp_[i]);
  return p;
}

double Statevector::collapse(std::size_t q, bool outcome) {
  const double p1 = prob_one(q);
  const double p = outcome ? p1 : 1.0 - p1;
  HGP_REQUIRE(p > 1e-15, "collapse: outcome has (near-)zero probability");
  const std::uint64_t bit = std::uint64_t{1} << q;
  const double scale = 1.0 / std::sqrt(p);
  for (std::uint64_t i = 0; i < amp_.size(); ++i) {
    const bool one = (i & bit) != 0;
    if (one == outcome)
      amp_[i] *= scale;
    else
      amp_[i] = cxd{0.0, 0.0};
  }
  return p;
}

void Statevector::normalize() {
  double norm2 = 0.0;
  for (const cxd& a : amp_) norm2 += std::norm(a);
  HGP_REQUIRE(norm2 > 1e-300, "normalize: zero state");
  const double scale = 1.0 / std::sqrt(norm2);
  for (cxd& a : amp_) a *= scale;
}

void Statevector::apply_kraus_branch(const CMat& k,
                                     const std::vector<std::size_t>& qubits) {
  // Single-qubit diagonal Kraus branch (the amplitude-damping no-jump
  // operator): fuse the damp and the norm accumulation into one pass.
  if (qubits.size() == 1 && is_zero(k(0, 1)) && is_zero(k(1, 0))) {
    const std::uint64_t bit = std::uint64_t{1} << qubits[0];
    const cxd k0 = k(0, 0), k1 = k(1, 1);
    double norm2 = 0.0;
    for (std::uint64_t i = 0; i < amp_.size(); ++i) {
      amp_[i] *= (i & bit) ? k1 : k0;
      norm2 += std::norm(amp_[i]);
    }
    HGP_REQUIRE(norm2 > 1e-300, "apply_kraus_branch: branch has zero weight");
    const double scale = 1.0 / std::sqrt(norm2);
    for (cxd& a : amp_) a *= scale;
    return;
  }
  QuantumState::apply_kraus_branch(k, qubits);
}

}  // namespace hgp::sim
