#include "sim/state.hpp"

#include <algorithm>
#include <cmath>

#include "common/error.hpp"
#include "sim/density.hpp"
#include "sim/statevector.hpp"

namespace hgp::sim {

std::string bits_to_string(std::uint64_t bits, std::size_t num_qubits) {
  std::string s(num_qubits, '0');
  for (std::size_t q = 0; q < num_qubits; ++q)
    if ((bits >> q) & 1) s[num_qubits - 1 - q] = '1';
  return s;
}

StateKind state_kind_from_name(const std::string& name) {
  if (name == "statevector" || name == "sv") return StateKind::Statevector;
  if (name == "density" || name == "density_matrix") return StateKind::Density;
  throw Error("state_kind_from_name: unknown state kind '" + name +
              "' (expected 'statevector' or 'density')");
}

const std::string& state_kind_name(StateKind kind) {
  static const std::string sv = "statevector";
  static const std::string dm = "density";
  return kind == StateKind::Statevector ? sv : dm;
}

void QuantumState::apply_op(const qc::Op& op) {
  if (op.kind == qc::GateKind::Barrier || op.kind == qc::GateKind::I ||
      op.kind == qc::GateKind::Delay)
    return;
  HGP_REQUIRE(op.kind != qc::GateKind::Measure,
              "QuantumState::apply_op: use sample() for measurement");
  apply_matrix(qc::gate_matrix(op.kind, op.constant_params()), op.qubits);
}

void QuantumState::run(const qc::Circuit& circuit) {
  HGP_REQUIRE(circuit.num_qubits() == num_qubits(), "QuantumState::run: width mismatch");
  for (const qc::Op& op : circuit.ops()) apply_op(op);
}

Counts sample_from_probabilities(const std::vector<double>& p, std::size_t shots,
                                 Rng& rng) {
  HGP_REQUIRE(!p.empty(), "sample_from_probabilities: empty distribution");
  if (shots == 0) return {};
  double total = 0.0;
  for (double pi : p) total += pi;
  // Draw every shot first (the Rng stream is consumed in the same order as
  // before), then sort the draws so one accumulate pass over p emits all
  // outcomes — no materialized CDF and no per-shot binary search. Each draw
  // maps to the same outcome the previous lower_bound(cdf) implementation
  // produced: the first index whose running sum reaches it.
  std::vector<double> draws(shots);
  for (std::size_t s = 0; s < shots; ++s) draws[s] = rng.uniform() * total;
  std::sort(draws.begin(), draws.end());
  Counts counts;
  double acc = 0.0;
  std::size_t d = 0;
  for (std::size_t i = 0; i < p.size() && d < shots; ++i) {
    acc += p[i];
    const std::size_t start = d;
    while (d < shots && draws[d] <= acc) ++d;
    if (d > start) counts[i] += d - start;
  }
  if (d < shots) counts[p.size() - 1] += shots - d;  // rounding slack
  return counts;
}

Counts QuantumState::sample(std::size_t shots, Rng& rng) const {
  return sample_from_probabilities(probabilities(), shots, rng);
}

std::uint64_t QuantumState::sample_one(Rng& rng) const {
  const std::vector<double> p = probabilities();
  double total = 0.0;
  for (double pi : p) total += pi;
  const double x = rng.uniform() * total;
  double acc = 0.0;
  for (std::size_t i = 0; i < p.size(); ++i) {
    acc += p[i];
    if (x < acc) return i;
  }
  return p.size() - 1;
}

void QuantumState::apply_kraus_branch(const la::CMat& k,
                                      const std::vector<std::size_t>& qubits) {
  apply_matrix(k, qubits);
  normalize();
}

std::unique_ptr<QuantumState> make_state(StateKind kind, std::size_t num_qubits) {
  switch (kind) {
    case StateKind::Statevector:
      return std::make_unique<Statevector>(num_qubits);
    case StateKind::Density:
      return std::make_unique<DensityMatrix>(num_qubits);
  }
  throw Error("make_state: bad state kind");
}

std::unique_ptr<QuantumState> make_state(const std::string& kind_name,
                                         std::size_t num_qubits) {
  return make_state(state_kind_from_name(kind_name), num_qubits);
}

}  // namespace hgp::sim
