#pragma once

#include <chrono>
#include <cstdint>
#include <memory>
#include <mutex>
#include <optional>
#include <string>
#include <unordered_map>

#include "serve/eval_service.hpp"
#include "serve/job.hpp"
#include "serve/job_validation.hpp"

namespace hgp::serve {

/// Managed job front end of the serve subsystem: SweepRunner runs requests,
/// JobService runs *jobs* — validated before any executor exists, admitted
/// against queue and backlog limits, scheduled weighted-fair across tenants,
/// cancellable mid-run, and expired when a soft deadline passes while they
/// wait. Every outcome is a terminal JobState plus a structured JobError
/// delivered through a future that always resolves with a value; the job
/// layer never throws at a client.
///
/// Scheduling rides on EvalService's deficit-round-robin job queue, and the
/// runs themselves are ordinary run_qaoa calls on the shared worker pool and
/// compiled-block cache — so jobs that complete normally are bit-identical
/// to the same SweepJob run through SweepRunner (or alone), for any worker
/// count.
class JobService {
 public:
  struct Options {
    /// Worker threads of the underlying EvalService (0 = hardware).
    std::size_t num_workers = 0;
    /// LRU bound of the shared compiled-block cache.
    std::size_t cache_capacity = 8192;
    /// Non-empty = persistent compiled-block store shared by every job.
    std::string block_store_path;
    /// Adaptive worker pool (see EvalService::Options): when max_workers > 0
    /// the pool grows toward max_workers while jobs queue up and retires
    /// idle workers toward min_workers. 0 = fixed pool.
    std::size_t min_workers = 1;
    std::size_t max_workers = 0;
    std::chrono::milliseconds adapt_interval{25};
    /// Admission control: maximum jobs waiting in the queue. A submit that
    /// finds the queue at the limit is rejected with QueueFull —
    /// deterministically, the limit is exact, not advisory. 0 = unbounded.
    std::size_t max_queued_jobs = 0;
    /// Admission control: reject with BacklogFull when the estimated time to
    /// drain the queue (EWMA of recent job run times × queued jobs / worker
    /// count) exceeds this bound. 0 = unbounded. The estimate warms up from
    /// completed jobs, so an empty service always admits.
    std::chrono::milliseconds max_backlog{0};
  };

  /// Backoff schedule for submit_with_retry: only transient rejections
  /// (QueueFull/BacklogFull — see job_error_transient) are retried.
  struct RetryPolicy {
    int max_attempts = 4;
    std::chrono::milliseconds initial_delay{5};
    double multiplier = 2.0;
    std::chrono::milliseconds max_delay{500};
  };

  JobService() : JobService(Options{}) {}
  explicit JobService(Options options);
  ~JobService();

  JobService(const JobService&) = delete;
  JobService& operator=(const JobService&) = delete;

  /// Validate, admit, and queue one job. The handle reports the submit-time
  /// verdict: accepted() means Queued (watch `outcome`); otherwise
  /// submit_state is Rejected (validation / admission) or Expired (deadline
  /// already in the past) and `outcome` is already resolved.
  JobHandle submit(JobRequest request);

  /// submit(), retrying transient rejections (queue pressure) with
  /// exponential backoff. Permanent rejections return immediately.
  JobHandle submit_with_retry(const JobRequest& request, const RetryPolicy& policy);
  JobHandle submit_with_retry(const JobRequest& request) {
    return submit_with_retry(request, RetryPolicy{});
  }

  /// Request cooperative cancellation. A still-queued job resolves Cancelled
  /// immediately (no executor is ever constructed); a running job observes
  /// its token at the next optimizer-iteration or shot-batch/lane-group
  /// checkpoint and resolves with its partial result. False when the id is
  /// unknown or the job already reached a terminal state.
  bool cancel(JobId id);

  /// Current lifecycle state (nullopt for unknown or pruned ids).
  std::optional<JobState> state(JobId id) const;

  /// The job's outcome future by id (nullopt for unknown or pruned ids).
  /// This is how a party that did not submit the job — a reconnected wire
  /// client whose original session died mid-run — waits for or fetches the
  /// terminal outcome: the job keeps running when its submitter vanishes,
  /// and the outcome is retained here until prune_finished() drops it.
  std::optional<std::shared_future<JobOutcome>> outcome(JobId id) const;

  /// Expire every queued job whose soft deadline has passed, without waiting
  /// for a worker to dequeue it: the queue slot frees immediately (admission
  /// control stops counting it) and the future resolves Expired. run_job
  /// performs the same check at dequeue time, so even between sweeps an
  /// overdue job never constructs an executor. Returns how many expired.
  std::size_t expire_overdue();

  /// Jobs currently in the Queued state (admission control's view).
  std::size_t queued() const;

  /// Estimated nanoseconds to drain the current queue (the BacklogFull
  /// signal): EWMA job run time × queued / workers. 0 until a job finishes.
  std::uint64_t estimated_backlog_ns() const;

  /// Drop terminal jobs from the registry (their futures stay valid — the
  /// shared state lives in the handle), after first expiring any queued job
  /// whose deadline passed. Returns how many were dropped.
  std::size_t prune_finished();

  EvalService& service() { return service_; }
  BlockCache::Stats cache_stats() const { return service_.cache_stats(); }

 private:
  std::shared_ptr<Job> find(JobId id) const;
  /// The queued lambda: deadline/cancel pre-check (terminal without an
  /// executor), Queued→Running, run_qaoa with the job's token, map the
  /// outcome, resolve.
  void run_job(const std::shared_ptr<Job>& job);
  /// Win `from`→terminal, resolve the promise, and account metrics. No-op
  /// (false) when another thread already moved the job.
  bool finish(const std::shared_ptr<Job>& job, JobState from, JobOutcome outcome);
  void note_queued_delta(long delta);

  Options options_;

  mutable std::mutex jobs_mutex_;
  std::unordered_map<JobId, std::shared_ptr<Job>> jobs_;
  JobId next_id_ = 1;
  /// Jobs in the Queued state; decremented exactly once per job by whichever
  /// thread wins the transition out of Queued.
  std::size_t queued_count_ = 0;
  /// EWMA of completed-job run time, the backlog estimator's rate input.
  double ewma_run_ns_ = 0.0;

  /// "service.*" job-lifecycle series (resolved once at construction); the
  /// per-tenant "service.tenant.<t>.*" counters resolve lazily per tenant.
  struct Metrics {
    obs::Counter* accepted;
    obs::Counter* rejected;
    obs::Counter* completed;
    obs::Counter* failed;
    obs::Counter* cancelled;
    obs::Counter* expired;
    obs::Gauge* queued;
    obs::Gauge* backlog_ns;
    obs::Histogram* queue_ns;
    obs::Histogram* run_ns;
    /// Cancel-request to future-resolution latency — the "how fast does a
    /// cancelled run free its worker" series the tests pin.
    obs::Histogram* cancel_ns;
  };
  Metrics metrics_;

  /// Declared last on purpose: EvalService's destructor drains the queued
  /// run_job lambdas, which touch every member above — so the pool must be
  /// torn down first.
  EvalService service_;
};

}  // namespace hgp::serve
