// Wire codec of the unified submission schema: JobRequest and JobOutcome
// serialize through common/binio.hpp under a leading JobRequest::kSchemaVersion
// stamp. The format is append-only within a version — any layout change bumps
// the version, and deserialize() rejects what it does not speak — and every
// double travels as its IEEE-754 bit pattern, so a request or outcome that
// crosses a socket is bit-identical to one that never left the process.
//
// Deliberately not serialized:
//   - SweepJob::dev: a non-owning pointer. The writer records the backend
//     *name* (dev->name(), or JobRequest::backend when dev is null); the
//     reader leaves dev null and the receiving side resolves the name
//     against its own preset registry.
//   - RunConfig::block_store_path: persistent-store placement is the
//     *server's* policy — a remote client must not steer another host's
//     filesystem.
//   - RunConfig::cancel: cancellation is a live channel (a wire Cancel
//     frame, an in-process token), not request state.
#include "serve/job.hpp"

namespace hgp::serve {

namespace {

void put_bool(io::Writer& w, bool v) { w.u8(v ? 1 : 0); }

bool get_bool(io::Reader& r, bool& v) {
  std::uint8_t byte = 0;
  if (!r.u8(byte)) return false;
  v = byte != 0;
  return true;
}

void put_f64s(io::Writer& w, const std::vector<double>& xs) {
  w.u32(static_cast<std::uint32_t>(xs.size()));
  for (const double x : xs) w.f64(x);
}

bool get_f64s(io::Reader& r, std::vector<double>& xs) {
  std::uint32_t n = 0;
  if (!r.u32(n)) return false;
  // Bound by what the payload can actually hold — an oversized count from a
  // crafted frame must fail the read, not drive a huge allocation.
  if (n > r.remaining() / sizeof(double)) return false;
  xs.assign(n, 0.0);
  for (double& x : xs)
    if (!r.f64(x)) return false;
  return true;
}

void put_graph(io::Writer& w, const graph::Graph& g) {
  w.u64(g.num_vertices());
  w.u32(static_cast<std::uint32_t>(g.num_edges()));
  for (const graph::Edge& e : g.edges()) {
    w.u32(static_cast<std::uint32_t>(e.u));
    w.u32(static_cast<std::uint32_t>(e.v));
    w.f64(e.weight);
  }
}

bool get_graph(io::Reader& r, graph::Graph& g) {
  std::uint64_t n = 0;
  std::uint32_t edges = 0;
  if (!r.u64(n) || !r.u32(edges)) return false;
  // Each edge costs 2*u32 + f64 = 16 bytes; an edge count the payload
  // cannot hold is a lie. The vertex count is bounded by the validator's
  // register caps downstream, but cap it here too so a crafted request
  // cannot make Graph bookkeeping allocate absurdly.
  if (edges > r.remaining() / 16 || n > (std::uint64_t{1} << 20)) return false;
  g = graph::Graph(static_cast<std::size_t>(n));
  for (std::uint32_t i = 0; i < edges; ++i) {
    std::uint32_t u = 0, v = 0;
    double weight = 1.0;
    if (!r.u32(u) || !r.u32(v) || !r.f64(weight)) return false;
    if (u >= n || v >= n || u == v) return false;  // add_edge would throw
    if (g.has_edge(u, v)) return false;
    g.add_edge(u, v, weight);
  }
  return true;
}

void put_model(io::Writer& w, const core::ModelConfig& m) {
  w.i32(m.p);
  w.i32(m.mixer_duration_dt);
  w.f64(m.init_gamma);
  w.f64(m.init_beta);
  put_bool(w, m.gate_optimization);
  w.u32(static_cast<std::uint32_t>(m.initial_layout.size()));
  for (const std::size_t q : m.initial_layout) w.u32(static_cast<std::uint32_t>(q));
  put_bool(w, m.pulse_efficient_rzz);
  put_bool(w, m.dynamical_decoupling);
  put_bool(w, m.train_amp);
  put_bool(w, m.train_phase);
  put_bool(w, m.train_freq);
  w.u64(m.seed);
}

bool get_model(io::Reader& r, core::ModelConfig& m) {
  std::uint32_t layout = 0;
  if (!r.i32(m.p) || !r.i32(m.mixer_duration_dt) || !r.f64(m.init_gamma) ||
      !r.f64(m.init_beta) || !get_bool(r, m.gate_optimization) || !r.u32(layout))
    return false;
  if (layout > r.remaining() / sizeof(std::uint32_t)) return false;
  m.initial_layout.assign(layout, 0);
  for (std::size_t& q : m.initial_layout) {
    std::uint32_t v = 0;
    if (!r.u32(v)) return false;
    q = v;
  }
  return get_bool(r, m.pulse_efficient_rzz) && get_bool(r, m.dynamical_decoupling) &&
         get_bool(r, m.train_amp) && get_bool(r, m.train_phase) &&
         get_bool(r, m.train_freq) && r.u64(m.seed);
}

void put_config(io::Writer& w, const core::RunConfig& c) {
  w.u64(c.shots);
  w.i32(c.max_evaluations);
  put_bool(w, c.gate_optimization);
  put_bool(w, c.m3);
  put_bool(w, c.cvar);
  w.f64(c.cvar_alpha);
  w.str(c.optimizer);
  put_bool(w, c.noise);
  w.str(c.objective);
  w.u64(c.candidate_lanes);
  w.str(c.engine);
  w.u64(c.executor_threads);
  w.u64(c.shot_batch_lanes);
  w.u64(c.fusion);
  w.u64(c.calibration_shots);
  put_bool(w, c.telemetry);
  put_model(w, c.model);
  w.u64(c.seed);
}

bool get_config(io::Reader& r, core::RunConfig& c) {
  std::uint64_t shots = 0, lanes = 0, threads = 0, shot_lanes = 0, fusion = 0,
                cal_shots = 0;
  if (!r.u64(shots) || !r.i32(c.max_evaluations) || !get_bool(r, c.gate_optimization) ||
      !get_bool(r, c.m3) || !get_bool(r, c.cvar) || !r.f64(c.cvar_alpha) ||
      !r.str(c.optimizer) || !get_bool(r, c.noise) || !r.str(c.objective) ||
      !r.u64(lanes) || !r.str(c.engine) || !r.u64(threads) || !r.u64(shot_lanes) ||
      !r.u64(fusion) || !r.u64(cal_shots) || !get_bool(r, c.telemetry) ||
      !get_model(r, c.model) || !r.u64(c.seed))
    return false;
  c.shots = static_cast<std::size_t>(shots);
  c.candidate_lanes = static_cast<std::size_t>(lanes);
  c.executor_threads = static_cast<std::size_t>(threads);
  c.shot_batch_lanes = static_cast<std::size_t>(shot_lanes);
  c.fusion = static_cast<std::size_t>(fusion);
  c.calibration_shots = static_cast<std::size_t>(cal_shots);
  return true;
}

}  // namespace

void JobRequest::serialize(io::Writer& w) const {
  w.u32(kSchemaVersion);
  w.str(run.label);
  w.str(run.dev != nullptr ? run.dev->name() : backend);
  w.str(run.instance.name);
  put_graph(w, run.instance.graph);
  w.f64(run.instance.max_cut);
  w.u8(static_cast<std::uint8_t>(run.kind));
  w.str(run.tenant);
  w.i32(run.priority);
  w.f64(run.weight);
  w.u64(static_cast<std::uint64_t>(deadline.count() < 0 ? 0 : deadline.count()));
  put_config(w, run.config);
}

std::string JobRequest::serialize() const {
  std::string bytes;
  io::Writer w(bytes);
  serialize(w);
  return bytes;
}

bool JobRequest::deserialize(io::Reader& r, JobRequest& out) {
  std::uint32_t version = 0;
  if (!r.u32(version) || version != kSchemaVersion) return false;
  std::uint8_t kind = 0;
  std::uint64_t deadline_ms = 0;
  if (!r.str(out.run.label) || !r.str(out.backend) || !r.str(out.run.instance.name) ||
      !get_graph(r, out.run.instance.graph) || !r.f64(out.run.instance.max_cut) ||
      !r.u8(kind) || !r.str(out.run.tenant) || !r.i32(out.run.priority) ||
      !r.f64(out.run.weight) || !r.u64(deadline_ms) || !get_config(r, out.run.config))
    return false;
  if (kind > static_cast<std::uint8_t>(core::ModelKind::PulseLevel)) return false;
  out.run.kind = static_cast<core::ModelKind>(kind);
  out.run.dev = nullptr;  // resolved by name on the receiving side
  out.deadline = std::chrono::milliseconds(static_cast<std::int64_t>(deadline_ms));
  return true;
}

void JobOutcome::serialize(io::Writer& w) const {
  w.u32(JobRequest::kSchemaVersion);
  w.u8(static_cast<std::uint8_t>(state));
  w.i32(static_cast<std::int32_t>(error.code));
  w.str(error.message);
  w.u64(wait_ns);
  w.u64(run_ns);
  put_bool(w, has_result);
  if (!has_result) return;
  w.str(result.model);
  w.f64(result.ar);
  w.f64(result.final_cost);
  put_f64s(w, result.optimizer.x);
  w.f64(result.optimizer.value);
  w.i32(result.optimizer.evaluations);
  w.i32(result.optimizer.iterations);
  put_bool(w, result.optimizer.converged);
  put_bool(w, result.optimizer.stopped_early);
  put_f64s(w, result.optimizer.history);
  w.i32(result.iterations_to_converge);
  w.i32(result.mixer_layer_duration_dt);
  w.i32(result.makespan_dt);
  w.u64(result.swap_count);
  w.u64(result.num_parameters);
  put_bool(w, result.cancelled);
  w.str(result.cancel_reason);
}

std::string JobOutcome::serialize() const {
  std::string bytes;
  io::Writer w(bytes);
  serialize(w);
  return bytes;
}

bool JobOutcome::deserialize(io::Reader& r, JobOutcome& out) {
  std::uint32_t version = 0;
  if (!r.u32(version) || version != JobRequest::kSchemaVersion) return false;
  std::uint8_t state = 0;
  std::int32_t code = 0;
  if (!r.u8(state) || !r.i32(code) || !r.str(out.error.message) || !r.u64(out.wait_ns) ||
      !r.u64(out.run_ns) || !get_bool(r, out.has_result))
    return false;
  if (state > static_cast<std::uint8_t>(JobState::Rejected)) return false;
  if (code < 0 || code > static_cast<std::int32_t>(JobErrorCode::ExecutionFailed))
    return false;
  out.state = static_cast<JobState>(state);
  out.error.code = static_cast<JobErrorCode>(code);
  if (!out.has_result) return true;
  core::RunResult& res = out.result;
  std::uint64_t swaps = 0, params = 0;
  if (!r.str(res.model) || !r.f64(res.ar) || !r.f64(res.final_cost) ||
      !get_f64s(r, res.optimizer.x) || !r.f64(res.optimizer.value) ||
      !r.i32(res.optimizer.evaluations) || !r.i32(res.optimizer.iterations) ||
      !get_bool(r, res.optimizer.converged) || !get_bool(r, res.optimizer.stopped_early) ||
      !get_f64s(r, res.optimizer.history) || !r.i32(res.iterations_to_converge) ||
      !r.i32(res.mixer_layer_duration_dt) || !r.i32(res.makespan_dt) || !r.u64(swaps) ||
      !r.u64(params) || !get_bool(r, res.cancelled) || !r.str(res.cancel_reason))
    return false;
  res.swap_count = static_cast<std::size_t>(swaps);
  res.num_parameters = static_cast<std::size_t>(params);
  return true;
}

}  // namespace hgp::serve
