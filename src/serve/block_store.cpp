#include "serve/block_store.hpp"

#include <fcntl.h>
#include <sys/file.h>
#include <unistd.h>

#include <atomic>
#include <cstdio>
#include <filesystem>
#include <unordered_map>

#include "common/binio.hpp"

namespace hgp::serve {

namespace {

/// Parse one 12-byte record-frame prefix (body length + checksum). False
/// when the length field is implausible — the framing has desynchronized
/// and, records being variable-length, there is no resync point. Single
/// source of truth for load_file's walk and the attach-time tail rescan.
bool parse_frame_prefix(const char (&prefix)[12], std::uint32_t& len,
                        std::uint64_t& checksum) {
  io::Reader pr(prefix, sizeof prefix);
  pr.u32(len);
  pr.u64(checksum);
  return len <= BlockStore::kMaxRecordBytes;
}

void encode_header(std::string& out, std::uint64_t fingerprint) {
  io::Writer w(out);
  w.u32(BlockStore::kMagic);
  w.u32(BlockStore::kFormatVersion);
  w.u64(fingerprint);
}

void encode_record(std::string& out, std::uint64_t fingerprint, const std::string& key,
                   BlockKind kind, const core::CompiledBlock& block) {
  std::string body;
  io::Writer w(body);
  w.u8(kind == BlockKind::Pulse ? 1 : kind == BlockKind::Fused ? 2 : 0);
  w.u64(fingerprint);
  w.str(key);
  block.serialize(body);
  io::Writer rec(out);
  rec.u32(static_cast<std::uint32_t>(body.size()));
  rec.u64(io::fnv1a(body));
  out.append(body);
}

/// Decode one checksum-verified record body. False on any malformation
/// (unknown kind, truncated payload, trailing garbage).
bool decode_body(const std::string& body, std::uint64_t& fingerprint, std::string& key,
                 BlockKind& kind, core::CompiledBlock& block) {
  io::Reader in(body);
  std::uint8_t kind_byte = 0;
  if (!in.u8(kind_byte) || kind_byte > 2) return false;
  kind = kind_byte == 1   ? BlockKind::Pulse
         : kind_byte == 2 ? BlockKind::Fused
                          : BlockKind::Gate;
  if (!in.u64(fingerprint)) return false;
  if (!in.str(key)) return false;
  if (!core::CompiledBlock::deserialize(in, block)) return false;
  return in.remaining() == 0;
}

}  // namespace

BlockStore::LoadReport BlockStore::load_file(const std::string& path,
                                             std::uint64_t fingerprint,
                                             const RecordFn& fn) {
  LoadReport report;
  std::ifstream in(path, std::ios::binary);
  if (!in) return report;

  char header[16];
  if (!in.read(header, sizeof header)) return report;
  io::Reader hr(header, sizeof header);
  std::uint32_t magic = 0, version = 0;
  std::uint64_t file_fp = 0;
  if (!hr.u32(magic) || !hr.u32(version) || !hr.u64(file_fp)) return report;
  if (magic != kMagic || version != kFormatVersion) return report;
  report.header_ok = true;
  report.valid_bytes = sizeof header;
  report.fingerprint_ok = file_fp == fingerprint;

  std::string body;
  for (;;) {
    char prefix[12];
    if (!in.read(prefix, sizeof prefix)) {
      // Clean EOF between records, or a tail shorter than one prefix (a
      // writer killed mid-append) — either way there is nothing more to
      // trust.
      if (in.gcount() != 0) ++report.skipped;
      break;
    }
    std::uint32_t len = 0;
    std::uint64_t checksum = 0;
    if (!parse_frame_prefix(prefix, len, checksum)) {
      ++report.skipped;  // desynchronized framing: no resync point, stop
      break;
    }
    body.resize(len);
    if (!in.read(body.data(), static_cast<std::streamsize>(len))) {
      ++report.skipped;  // truncated tail
      break;
    }
    report.valid_bytes += sizeof prefix + len;  // an intact frame either way
    if (io::fnv1a(body) != checksum) {
      ++report.skipped;  // bit rot within one record: framing still holds
      continue;
    }
    std::uint64_t record_fp = 0;
    std::string key;
    BlockKind kind = BlockKind::Gate;
    core::CompiledBlock block;
    if (!decode_body(body, record_fp, key, kind, block)) {
      ++report.skipped;
      continue;
    }
    // Ownership is per record: each carries the fingerprint it was compiled
    // under, so a multi-calibration store (or one whose header another
    // device restamped since we wrote it) still hands every reader exactly
    // its own blocks — nothing foreign is merged, nothing ours is hidden.
    if (record_fp != fingerprint) {
      ++report.skipped;  // another calibration's block
      continue;
    }
    fn(key, kind, record_fp, std::move(block));
    ++report.loaded;
  }
  return report;
}

std::size_t BlockStore::save_file(const std::string& path, std::uint64_t fingerprint,
                                  const std::vector<SaveEntry>& entries) {
  // Unique sibling temp file: the pid disambiguates concurrent savers
  // across processes sharing one path (the fleet scenario), the counter
  // within this process; the final rename is atomic against readers.
  static std::atomic<std::uint64_t> save_seq{0};
  const std::string tmp = path + ".tmp" + std::to_string(::getpid()) + "." +
                          std::to_string(save_seq.fetch_add(1, std::memory_order_relaxed));
  {
    std::ofstream out(tmp, std::ios::binary | std::ios::trunc);
    if (!out) return 0;
    std::string buf;
    encode_header(buf, fingerprint);
    out.write(buf.data(), static_cast<std::streamsize>(buf.size()));
    for (const auto& [key, kind, entry_fp, block] : entries) {
      buf.clear();
      encode_record(buf, entry_fp != 0 ? entry_fp : fingerprint, key, kind, *block);
      out.write(buf.data(), static_cast<std::streamsize>(buf.size()));
    }
    if (!out) {
      std::remove(tmp.c_str());
      return 0;
    }
  }
  if (std::rename(tmp.c_str(), path.c_str()) != 0) {
    std::remove(tmp.c_str());
    return 0;
  }
  return entries.size();
}

BlockStore::BlockStore(std::string path, std::uint64_t fingerprint, Mode mode,
                       std::uint64_t valid_bytes)
    : path_(std::move(path)), fingerprint_(fingerprint) {
  // The flock descriptor coordinates across processes: attach mutations
  // (truncate / header restamp) hold it exclusively, appends hold it shared,
  // so an attacher can never resize away a record another process is
  // mid-appending.
  lock_fd_ = ::open(path_.c_str(), O_RDWR | O_CREAT, 0644);
  if (lock_fd_ < 0) return;
  ::flock(lock_fd_, LOCK_EX);

  std::string header;
  encode_header(header, fingerprint);
  if (mode == Mode::Reset) {
    // Reset was chosen from a pre-lock load pass; another process may have
    // created a valid store here since (two fleet workers starting against
    // a missing file both pick Reset). Re-check under the lock and demote
    // to Append/Takeover rather than wiping its records.
    std::ifstream check(path_, std::ios::binary);
    char hdr[16];
    if (check.read(hdr, sizeof hdr)) {
      io::Reader hr(hdr, sizeof hdr);
      std::uint32_t magic = 0, version = 0;
      std::uint64_t file_fp = 0;
      if (hr.u32(magic) && hr.u32(version) && hr.u64(file_fp) && magic == kMagic &&
          version == kFormatVersion) {
        mode = file_fp == fingerprint ? Mode::Append : Mode::Takeover;
        valid_bytes = sizeof hdr;  // the rescan below walks the frames
      }
    }
  }

  bool prepared = false;
  if (mode == Mode::Reset) {
    std::ofstream fresh(path_, std::ios::binary | std::ios::trunc);
    fresh.write(header.data(), static_cast<std::streamsize>(header.size()));
    prepared = static_cast<bool>(fresh);
  } else {
    // Drop any torn tail: appending after a half-written record would bury
    // every later record behind an unreadable frame. `valid_bytes` may be
    // stale by now — another attacher can have truncated the same tear and
    // appended fresh records since our load pass — so re-walk the frames
    // from there (under the exclusive lock) and only cut what still fails
    // to frame.
    std::error_code ec;
    const std::uintmax_t size = std::filesystem::file_size(path_, ec);
    if (!ec && size > valid_bytes) {
      std::uint64_t end = valid_bytes;
      std::ifstream rescan(path_, std::ios::binary);
      rescan.seekg(static_cast<std::streamoff>(end));
      char prefix[12];
      std::uint32_t len = 0;
      std::uint64_t checksum = 0;
      while (rescan.read(prefix, sizeof prefix)) {
        if (!parse_frame_prefix(prefix, len, checksum)) break;
        rescan.seekg(static_cast<std::streamoff>(len), std::ios::cur);
        if (!rescan || static_cast<std::uint64_t>(rescan.tellg()) > size) break;
        end = static_cast<std::uint64_t>(rescan.tellg());
      }
      if (size > end) std::filesystem::resize_file(path_, end, ec);
    }
    prepared = true;
    if (mode == Mode::Takeover) {
      // Stamp this calibration's fingerprint into the header; the existing
      // records stay — each carries its own fingerprint, so every
      // calibration keeps loading exactly its blocks (per-record ownership
      // in load_file) and none can be replayed by the wrong device.
      std::fstream restamp(path_, std::ios::binary | std::ios::in | std::ios::out);
      restamp.write(header.data(), static_cast<std::streamsize>(header.size()));
      prepared = static_cast<bool>(restamp);
    }
  }
  ::flock(lock_fd_, LOCK_UN);
  if (!prepared) return;

  // The appender itself runs in O_APPEND mode (std::ios::app): every flush
  // lands at the true end of file, so concurrent appenders — other threads
  // via this object's mutex, other *processes* via the kernel's append
  // semantics — interleave at record granularity instead of splicing over
  // each other at stale offsets. The stream buffer is sized so one record
  // is one OS write.
  iobuf_.resize(std::size_t{1} << 16);
  file_.rdbuf()->pubsetbuf(iobuf_.data(), static_cast<std::streamsize>(iobuf_.size()));
  file_.open(path_, std::ios::binary | std::ios::out | std::ios::app);
  ok_ = static_cast<bool>(file_);
}

BlockStore::~BlockStore() {
  if (lock_fd_ >= 0) ::close(lock_fd_);
}

void BlockStore::append(const std::string& key, BlockKind kind,
                        const core::CompiledBlock& block, std::uint64_t fingerprint) {
  std::string buf;
  encode_record(buf, fingerprint != 0 ? fingerprint : fingerprint_, key, kind, block);
  const std::lock_guard<std::mutex> lock(mutex_);
  if (!ok_) return;
  // Skip keys already on disk: an entry the LRU evicted and a later run
  // recompiled would otherwise append a duplicate record per round trip,
  // growing the file without bound.
  if (!persisted_.insert(key).second) return;
  // One buffered write + flush per record under the shared flock: a crash
  // mid-append tears at most the final record (which the checksummed loader
  // skips and the next attacher truncates), and no concurrent attacher can
  // resize the file out from under the flush.
  ::flock(lock_fd_, LOCK_SH);
  file_.write(buf.data(), static_cast<std::streamsize>(buf.size()));
  file_.flush();
  ::flock(lock_fd_, LOCK_UN);
  ok_ = static_cast<bool>(file_);
}

void BlockStore::note_existing(const std::string& key) {
  const std::lock_guard<std::mutex> lock(mutex_);
  persisted_.insert(key);
}

std::size_t BlockStore::compact(const std::vector<SaveEntry>& entries) {
  const std::lock_guard<std::mutex> lock(mutex_);
  if (!ok_) return 0;
  ::flock(lock_fd_, LOCK_EX);

  // Walk the current frames and keep the other calibrations' records as raw
  // frames (checksum already verified, so byte-for-byte reuse is safe).
  // Frames of this fingerprint are skipped — the live ones come back from
  // `entries` — as are torn or corrupt frames.
  std::vector<std::string> foreign_keys;  // first-seen order
  std::unordered_map<std::string, std::string> foreign_frames;
  {
    std::ifstream in(path_, std::ios::binary);
    char header[16];
    if (in.read(header, sizeof header)) {
      std::string body;
      for (;;) {
        char prefix[12];
        if (!in.read(prefix, sizeof prefix)) break;
        std::uint32_t len = 0;
        std::uint64_t checksum = 0;
        if (!parse_frame_prefix(prefix, len, checksum)) break;
        body.resize(len);
        if (!in.read(body.data(), static_cast<std::streamsize>(len))) break;
        if (io::fnv1a(body) != checksum) continue;
        std::uint64_t record_fp = 0;
        std::string key;
        BlockKind kind = BlockKind::Gate;
        core::CompiledBlock block;
        if (!decode_body(body, record_fp, key, kind, block)) continue;
        if (record_fp == fingerprint_) continue;
        std::string frame(prefix, sizeof prefix);
        frame.append(body);
        if (foreign_frames.emplace(key, frame).second)
          foreign_keys.push_back(key);
        else
          foreign_frames[key] = std::move(frame);  // last record wins, as in load
      }
    }
  }

  std::string out;
  encode_header(out, fingerprint_);
  for (const std::string& k : foreign_keys) out.append(foreign_frames.at(k));
  for (const auto& [key, kind, entry_fp, block] : entries)
    encode_record(out, entry_fp != 0 ? entry_fp : fingerprint_, key, kind, *block);

  bool written = false;
  {
    std::fstream rw(path_, std::ios::binary | std::ios::in | std::ios::out);
    rw.write(out.data(), static_cast<std::streamsize>(out.size()));
    rw.flush();
    written = static_cast<bool>(rw);
  }
  if (written) written = ::truncate(path_.c_str(), static_cast<off_t>(out.size())) == 0;
  ::flock(lock_fd_, LOCK_UN);
  if (!written) {
    // A half-rewritten file is still frame-valid up to the failure point;
    // stop appending to it rather than risk compounding the damage.
    ok_ = false;
    return 0;
  }

  // The dedup set must mirror the new disk contents exactly: keys dropped by
  // the compaction become appendable again, keys it kept stay deduped.
  persisted_.clear();
  for (const std::string& k : foreign_keys) persisted_.insert(k);
  for (const SaveEntry& e : entries) persisted_.insert(std::get<0>(e));
  return foreign_keys.size() + entries.size();
}

}  // namespace hgp::serve
