#include "serve/block_cache.hpp"

#include "common/error.hpp"

namespace hgp::serve {

BlockCache::BlockCache(std::size_t capacity) : capacity_(capacity) {
  HGP_REQUIRE(capacity >= 1, "BlockCache: capacity must be positive");
}

std::shared_ptr<const core::CompiledBlock> BlockCache::find(const std::string& key,
                                                            BlockKind kind) {
  const std::lock_guard<std::mutex> lock(mutex_);
  const auto it = map_.find(key);
  if (it == map_.end()) {
    ++(kind == BlockKind::Pulse ? pulse_misses_ : gate_misses_);
    return nullptr;
  }
  ++(kind == BlockKind::Pulse ? pulse_hits_ : gate_hits_);
  lru_.splice(lru_.begin(), lru_, it->second.lru_pos);
  return it->second.block;
}

std::shared_ptr<const core::CompiledBlock> BlockCache::insert(const std::string& key,
                                                              core::CompiledBlock block) {
  auto shared = std::make_shared<const core::CompiledBlock>(std::move(block));
  const std::lock_guard<std::mutex> lock(mutex_);
  const auto it = map_.find(key);
  if (it != map_.end()) {
    it->second.block = shared;
    lru_.splice(lru_.begin(), lru_, it->second.lru_pos);
    return shared;
  }
  lru_.push_front(key);
  map_[key] = Entry{shared, lru_.begin()};
  while (map_.size() > capacity_) {
    map_.erase(lru_.back());
    lru_.pop_back();
    ++evictions_;
  }
  return shared;
}

BlockCache::Stats BlockCache::stats() const {
  const std::lock_guard<std::mutex> lock(mutex_);
  Stats s;
  s.gate_hits = gate_hits_;
  s.gate_misses = gate_misses_;
  s.pulse_hits = pulse_hits_;
  s.pulse_misses = pulse_misses_;
  s.hits = gate_hits_ + pulse_hits_;
  s.misses = gate_misses_ + pulse_misses_;
  s.evictions = evictions_;
  s.size = map_.size();
  s.capacity = capacity_;
  return s;
}

void BlockCache::clear() {
  const std::lock_guard<std::mutex> lock(mutex_);
  map_.clear();
  lru_.clear();
}

}  // namespace hgp::serve
