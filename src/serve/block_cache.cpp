#include "serve/block_cache.hpp"

#include <filesystem>
#include <tuple>
#include <utility>
#include <vector>

#include "common/error.hpp"
#include "serve/block_store.hpp"

namespace hgp::serve {

namespace {

/// Path equality by filesystem identity, not spelling — "store.bin" and
/// "./store.bin" are the same inode.
bool same_path(const std::string& a, const std::string& b) {
  std::error_code ec;
  const auto ca = std::filesystem::weakly_canonical(a, ec);
  if (ec) return a == b;
  const auto cb = std::filesystem::weakly_canonical(b, ec);
  if (ec) return a == b;
  return ca == cb;
}

BlockCache::StoreReport to_store_report(const BlockStore::LoadReport& r) {
  BlockCache::StoreReport out;
  out.loaded = r.loaded;
  out.skipped = r.skipped;
  out.header_ok = r.header_ok;
  out.fingerprint_ok = r.fingerprint_ok;
  return out;
}

}  // namespace

BlockCache::BlockCache(std::size_t capacity) : capacity_(capacity) {
  HGP_REQUIRE(capacity >= 1, "BlockCache: capacity must be positive");
  // Registry handles resolve once here; the hot paths then pay only a
  // gated sharded increment per mirror update.
  obs::Registry& reg = obs::Registry::global();
  reg_.gate_hits = &reg.counter("block_cache.gate_hits");
  reg_.gate_misses = &reg.counter("block_cache.gate_misses");
  reg_.pulse_hits = &reg.counter("block_cache.pulse_hits");
  reg_.pulse_misses = &reg.counter("block_cache.pulse_misses");
  reg_.fused_hits = &reg.counter("block_cache.fused_hits");
  reg_.fused_misses = &reg.counter("block_cache.fused_misses");
  reg_.evictions = &reg.counter("block_cache.evictions");
  reg_.store_hits = &reg.counter("block_cache.store_hits");
  reg_.store_misses = &reg.counter("block_cache.store_misses");
  reg_.store_loaded = &reg.counter("block_cache.store_loaded");
  reg_.size = &reg.gauge("block_cache.size");
}

BlockCache::~BlockCache() = default;

std::shared_ptr<const core::CompiledBlock> BlockCache::find(const std::string& key,
                                                            BlockKind kind) {
  const std::lock_guard<std::mutex> lock(mutex_);
  const auto it = map_.find(key);
  if (it == map_.end()) {
    if (kind == BlockKind::Pulse) {
      pulse_misses_.fetch_add(1, std::memory_order_relaxed);
      reg_.pulse_misses->inc();
    } else if (kind == BlockKind::Fused) {
      fused_misses_.fetch_add(1, std::memory_order_relaxed);
      reg_.fused_misses->inc();
    } else {
      gate_misses_.fetch_add(1, std::memory_order_relaxed);
      reg_.gate_misses->inc();
    }
    if (store_tracking_) {
      store_misses_.fetch_add(1, std::memory_order_relaxed);
      reg_.store_misses->inc();
    }
    return nullptr;
  }
  if (kind == BlockKind::Pulse) {
    pulse_hits_.fetch_add(1, std::memory_order_relaxed);
    reg_.pulse_hits->inc();
  } else if (kind == BlockKind::Fused) {
    fused_hits_.fetch_add(1, std::memory_order_relaxed);
    reg_.fused_hits->inc();
  } else {
    gate_hits_.fetch_add(1, std::memory_order_relaxed);
    reg_.gate_hits->inc();
  }
  if (it->second.from_store) {
    store_hits_.fetch_add(1, std::memory_order_relaxed);
    reg_.store_hits->inc();
  }
  lru_.splice(lru_.begin(), lru_, it->second.lru_pos);
  return it->second.block;
}

bool BlockCache::insert_locked(const std::string& key,
                               std::shared_ptr<const core::CompiledBlock> block,
                               BlockKind kind, std::uint64_t fingerprint,
                               bool from_store) {
  const auto it = map_.find(key);
  if (it != map_.end()) {
    it->second.block = std::move(block);
    it->second.kind = kind;
    it->second.fingerprint = fingerprint;
    lru_.splice(lru_.begin(), lru_, it->second.lru_pos);
    return false;
  }
  lru_.push_front(key);
  map_[key] = Entry{std::move(block), lru_.begin(), kind, fingerprint, from_store};
  while (map_.size() > capacity_) {
    map_.erase(lru_.back());
    lru_.pop_back();
    evictions_.fetch_add(1, std::memory_order_relaxed);
    reg_.evictions->inc();
  }
  reg_.size->set(static_cast<std::int64_t>(map_.size()));
  return true;
}

std::shared_ptr<const core::CompiledBlock> BlockCache::insert(const std::string& key,
                                                              core::CompiledBlock block,
                                                              BlockKind kind,
                                                              std::uint64_t fingerprint) {
  auto shared = std::make_shared<const core::CompiledBlock>(std::move(block));
  std::shared_ptr<BlockStore> store;
  {
    const std::lock_guard<std::mutex> lock(mutex_);
    if (insert_locked(key, shared, kind, fingerprint, /*from_store=*/false))
      store = store_;
  }
  // Write-through happens off the cache lock: disk latency never blocks
  // concurrent lookups, and the store serializes appends on its own mutex.
  // The record is stamped with the compiling backend's fingerprint, so a
  // multi-backend cache persists every block under its own calibration.
  if (store) store->append(key, kind, *shared, fingerprint);
  return shared;
}

std::size_t BlockCache::save(const std::string& path, std::uint64_t fingerprint) const {
  std::vector<BlockStore::SaveEntry> entries;
  {
    const std::lock_guard<std::mutex> lock(mutex_);
    // Snapshotting onto the attached store's path would rename over the
    // live appender's inode: its later write-through appends would land in
    // the unlinked file and silently vanish.
    HGP_REQUIRE(!store_ || !same_path(store_->path(), path),
                "BlockCache::save: cannot snapshot onto the attached "
                "write-through store path (detach or pick another file)");
    entries.reserve(map_.size());
    // Snapshot in LRU order, oldest first, so a loader replaying the file
    // front-to-back reconstructs the same LRU ranking (the hottest entries
    // end up most recently used and survive a smaller-capacity load).
    for (auto it = lru_.rbegin(); it != lru_.rend(); ++it) {
      const Entry& e = map_.at(*it);
      entries.emplace_back(*it, e.kind, e.fingerprint, e.block);
    }
  }
  return BlockStore::save_file(path, fingerprint, entries);
}

BlockStore::LoadReport BlockCache::load_impl(const std::string& path,
                                             std::uint64_t fingerprint,
                                             std::vector<std::string>* loaded_keys) {
  const BlockStore::LoadReport r = BlockStore::load_file(
      path, fingerprint,
      [this, loaded_keys](const std::string& key, BlockKind kind,
                          std::uint64_t record_fp, core::CompiledBlock block) {
        if (loaded_keys != nullptr) loaded_keys->push_back(key);
        auto shared = std::make_shared<const core::CompiledBlock>(std::move(block));
        const std::lock_guard<std::mutex> lock(mutex_);
        insert_locked(key, std::move(shared), kind, record_fp, /*from_store=*/true);
      });
  const std::lock_guard<std::mutex> lock(mutex_);
  store_tracking_ = true;
  store_loaded_.fetch_add(r.loaded, std::memory_order_relaxed);
  reg_.store_loaded->inc(r.loaded);
  return r;
}

BlockCache::StoreReport BlockCache::load(const std::string& path,
                                         std::uint64_t fingerprint) {
  return to_store_report(load_impl(path, fingerprint, nullptr));
}

BlockCache::StoreReport BlockCache::attach_store(const std::string& path,
                                                 std::uint64_t fingerprint) {
  const std::lock_guard<std::mutex> attach_lock(attach_mutex_);
  {
    const std::lock_guard<std::mutex> lock(mutex_);
    // First attach wins — successful or not: every executor of a sweep
    // calls this with the service-configured path, so re-attachment must
    // stay cheap even when the path is unwritable (otherwise every job
    // would re-parse the whole file just to fail the open again).
    if (store_attempted_) {
      StoreReport out;
      out.attached = static_cast<bool>(store_);
      return out;
    }
    store_attempted_ = true;
  }
  std::vector<std::string> loaded_keys;
  const BlockStore::LoadReport r = load_impl(path, fingerprint, &loaded_keys);
  StoreReport report = to_store_report(r);
  // Missing/foreign-format files restart from scratch; a valid store from
  // another calibration is taken over non-destructively (header restamped,
  // records kept — each calibration still loads exactly its own, keyed by
  // fingerprint); our own store resumes appending after its last intact
  // record.
  const BlockStore::Mode mode = !r.header_ok ? BlockStore::Mode::Reset
                                : !r.fingerprint_ok ? BlockStore::Mode::Takeover
                                                    : BlockStore::Mode::Append;
  auto store = std::make_shared<BlockStore>(path, fingerprint, mode, r.valid_bytes);
  if (store->ok()) {
    // Seed the dedup set with everything the load delivered so write-through
    // never re-appends a record that is already on disk.
    for (const std::string& key : loaded_keys) store->note_existing(key);
    // Blocks other executors compiled into this cache before the store was
    // attached (e.g. through a service cache whose first store-configured
    // run arrived late) would otherwise never be persisted — replay them
    // now; append() dedups against what the load already saw.
    std::vector<BlockStore::SaveEntry> backlog;
    {
      const std::lock_guard<std::mutex> lock(mutex_);
      for (const auto& [key, entry] : map_)
        if (!entry.from_store)
          backlog.emplace_back(key, entry.kind, entry.fingerprint, entry.block);
      store_ = store;
    }
    for (const auto& [key, kind, fp, block] : backlog)
      store->append(key, kind, *block, fp);
    report.attached = true;
  }
  return report;
}

std::size_t BlockCache::compact_store() {
  std::shared_ptr<BlockStore> store;
  std::vector<BlockStore::SaveEntry> entries;
  {
    const std::lock_guard<std::mutex> lock(mutex_);
    if (!store_) return 0;
    store = store_;
    entries.reserve(map_.size());
    // LRU order, oldest first — same convention as save().
    for (auto it = lru_.rbegin(); it != lru_.rend(); ++it) {
      const Entry& e = map_.at(*it);
      entries.emplace_back(*it, e.kind, e.fingerprint, e.block);
    }
  }
  // Off the cache lock, like write-through appends: the store serializes
  // the rewrite on its own mutex and the exclusive flock.
  return store->compact(entries);
}

std::string BlockCache::store_path() const {
  const std::lock_guard<std::mutex> lock(mutex_);
  return store_ ? store_->path() : std::string();
}

BlockCache::Stats BlockCache::stats() const {
  // Counters are atomics: read lock-free so stats polling never contends
  // with (or tears against) concurrent find()/insert() traffic. Only the
  // map size needs the lock.
  Stats s;
  s.gate_hits = gate_hits_.load(std::memory_order_relaxed);
  s.gate_misses = gate_misses_.load(std::memory_order_relaxed);
  s.pulse_hits = pulse_hits_.load(std::memory_order_relaxed);
  s.pulse_misses = pulse_misses_.load(std::memory_order_relaxed);
  s.fused_hits = fused_hits_.load(std::memory_order_relaxed);
  s.fused_misses = fused_misses_.load(std::memory_order_relaxed);
  s.hits = s.gate_hits + s.pulse_hits + s.fused_hits;
  s.misses = s.gate_misses + s.pulse_misses + s.fused_misses;
  s.evictions = evictions_.load(std::memory_order_relaxed);
  s.store_hits = store_hits_.load(std::memory_order_relaxed);
  s.store_misses = store_misses_.load(std::memory_order_relaxed);
  s.store_loaded = store_loaded_.load(std::memory_order_relaxed);
  s.capacity = capacity_;
  {
    const std::lock_guard<std::mutex> lock(mutex_);
    s.size = map_.size();
  }
  return s;
}

void BlockCache::clear() {
  const std::lock_guard<std::mutex> lock(mutex_);
  map_.clear();
  lru_.clear();
  reg_.size->set(0);
}

}  // namespace hgp::serve
