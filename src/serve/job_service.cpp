#include "serve/job_service.hpp"

#include <algorithm>
#include <thread>

namespace hgp::serve {

namespace {

std::int64_t steady_now_ns() {
  return std::chrono::duration_cast<std::chrono::nanoseconds>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

std::uint64_t ns_since(std::chrono::steady_clock::time_point start) {
  return static_cast<std::uint64_t>(std::chrono::duration_cast<std::chrono::nanoseconds>(
                                        std::chrono::steady_clock::now() - start)
                                        .count());
}

/// A handle whose outcome is already decided at submit time (rejection,
/// pre-expired deadline): no Job object, no queue traffic — just a resolved
/// future carrying the structured verdict.
JobHandle settled_handle(JobId id, JobState state, JobError error) {
  JobHandle handle;
  handle.id = id;
  handle.submit_state = state;
  handle.submit_error = error;
  JobOutcome outcome;
  outcome.state = state;
  outcome.error = std::move(error);
  std::promise<JobOutcome> promise;
  promise.set_value(std::move(outcome));
  handle.outcome = promise.get_future().share();
  return handle;
}

}  // namespace

JobService::JobService(Options options)
    : options_(options),
      service_(EvalService::Options{options.num_workers, options.cache_capacity,
                                    std::move(options.block_store_path),
                                    options.min_workers, options.max_workers,
                                    options.adapt_interval}) {
  obs::Registry& reg = obs::Registry::global();
  metrics_.accepted = &reg.counter("service.jobs_accepted");
  metrics_.rejected = &reg.counter("service.jobs_rejected");
  metrics_.completed = &reg.counter("service.jobs_completed");
  metrics_.failed = &reg.counter("service.jobs_failed");
  metrics_.cancelled = &reg.counter("service.jobs_cancelled");
  metrics_.expired = &reg.counter("service.jobs_expired");
  metrics_.queued = &reg.gauge("service.jobs_queued");
  metrics_.backlog_ns = &reg.gauge("service.estimated_backlog_ns");
  metrics_.queue_ns = &reg.histogram("service.job_queue_ns");
  metrics_.run_ns = &reg.histogram("service.job_run_ns");
  metrics_.cancel_ns = &reg.histogram("service.job_cancel_ns");
}

JobService::~JobService() = default;

std::shared_ptr<Job> JobService::find(JobId id) const {
  const std::lock_guard<std::mutex> lock(jobs_mutex_);
  const auto it = jobs_.find(id);
  return it == jobs_.end() ? nullptr : it->second;
}

void JobService::note_queued_delta(long delta) {
  const std::lock_guard<std::mutex> lock(jobs_mutex_);
  queued_count_ = static_cast<std::size_t>(static_cast<long>(queued_count_) + delta);
  metrics_.queued->set(static_cast<std::int64_t>(queued_count_));
}

std::size_t JobService::queued() const {
  const std::lock_guard<std::mutex> lock(jobs_mutex_);
  return queued_count_;
}

std::uint64_t JobService::estimated_backlog_ns() const {
  const std::lock_guard<std::mutex> lock(jobs_mutex_);
  const double per_worker = static_cast<double>(queued_count_) /
                            static_cast<double>(std::max<std::size_t>(1, service_.num_workers()));
  return static_cast<std::uint64_t>(ewma_run_ns_ * per_worker);
}

JobHandle JobService::submit(JobRequest request) {
  const std::string tenant =
      request.run.tenant.empty() ? std::string("<invalid>") : request.run.tenant;
  obs::Registry& reg = obs::Registry::global();
  reg.counter("service.tenant." + tenant + ".submitted").inc();

  // Validation first: a malformed request is rejected before a Job object,
  // an executor, or a queue slot exists.
  if (JobError error = validate_job(request.run)) {
    metrics_.rejected->inc();
    reg.counter("service.tenant." + tenant + ".rejected").inc();
    JobId id;
    {
      const std::lock_guard<std::mutex> lock(jobs_mutex_);
      id = next_id_++;
    }
    return settled_handle(id, JobState::Rejected, std::move(error));
  }

  // A deadline already in the past expires at submit — the request was
  // well-formed, it just arrived too late to be worth queueing.
  if (request.deadline.count() < 0) {
    metrics_.expired->inc();
    JobId id;
    {
      const std::lock_guard<std::mutex> lock(jobs_mutex_);
      id = next_id_++;
    }
    return settled_handle(id, JobState::Expired,
                          JobError{JobErrorCode::DeadlineExpired,
                                   request.run.label + ": deadline precedes submission"});
  }

  // Admission control under the registry lock, so the verdict at the limit
  // is exact: the (max_queued_jobs + 1)-th concurrent submit is rejected, not
  // raced in. Backlog uses the EWMA drain estimate mirrored to the
  // service.estimated_backlog_ns gauge.
  std::shared_ptr<Job> job;
  {
    const std::lock_guard<std::mutex> lock(jobs_mutex_);
    if (options_.max_queued_jobs > 0 && queued_count_ >= options_.max_queued_jobs) {
      metrics_.rejected->inc();
      reg.counter("service.tenant." + tenant + ".rejected").inc();
      return settled_handle(
          next_id_++, JobState::Rejected,
          JobError{JobErrorCode::QueueFull,
                   request.run.label + ": " + std::to_string(queued_count_) +
                       " jobs queued (limit " + std::to_string(options_.max_queued_jobs) +
                       ") — retry later"});
    }
    if (options_.max_backlog.count() > 0 && ewma_run_ns_ > 0.0) {
      const double per_worker =
          static_cast<double>(queued_count_ + 1) /
          static_cast<double>(std::max<std::size_t>(1, service_.num_workers()));
      const double estimate_ns = ewma_run_ns_ * per_worker;
      const double bound_ns = static_cast<double>(options_.max_backlog.count()) * 1e6;
      if (estimate_ns > bound_ns) {
        metrics_.rejected->inc();
        reg.counter("service.tenant." + tenant + ".rejected").inc();
        return settled_handle(
            next_id_++, JobState::Rejected,
            JobError{JobErrorCode::BacklogFull,
                     request.run.label + ": estimated backlog " +
                         std::to_string(static_cast<std::uint64_t>(estimate_ns / 1e6)) +
                         "ms exceeds the " + std::to_string(options_.max_backlog.count()) +
                         "ms bound — retry later"});
      }
    }
    job = std::make_shared<Job>(next_id_++, std::move(request));
    jobs_.emplace(job->id(), job);
    ++queued_count_;
    metrics_.queued->set(static_cast<std::int64_t>(queued_count_));
    const double per_worker = static_cast<double>(queued_count_) /
                              static_cast<double>(std::max<std::size_t>(1, service_.num_workers()));
    metrics_.backlog_ns->set(static_cast<std::int64_t>(ewma_run_ns_ * per_worker));
  }
  metrics_.accepted->inc();

  EvalService::SubmitOptions sopt;
  sopt.tenant = job->request().run.tenant;
  sopt.weight = job->request().run.weight;
  sopt.priority = job->request().run.priority;
  service_.post(sopt, [this, job] { run_job(job); });

  JobHandle handle;
  handle.id = job->id();
  handle.submit_state = JobState::Queued;
  handle.outcome = job->outcome();
  return handle;
}

JobHandle JobService::submit_with_retry(const JobRequest& request, const RetryPolicy& policy) {
  std::chrono::milliseconds delay = policy.initial_delay;
  JobHandle handle;
  for (int attempt = 1;; ++attempt) {
    handle = submit(request);
    if (handle.accepted() || !job_error_transient(handle.submit_error.code) ||
        attempt >= policy.max_attempts)
      return handle;
    std::this_thread::sleep_for(delay);
    delay = std::min(std::chrono::milliseconds(static_cast<std::int64_t>(
                         static_cast<double>(delay.count()) * policy.multiplier)),
                     policy.max_delay);
  }
}

bool JobService::finish(const std::shared_ptr<Job>& job, JobState from, JobOutcome outcome) {
  const JobState to = outcome.state;
  if (!job->try_transition(from, to)) return false;
  if (from == JobState::Queued) note_queued_delta(-1);

  switch (to) {
    case JobState::Completed: metrics_.completed->inc(); break;
    case JobState::Failed: metrics_.failed->inc(); break;
    case JobState::Cancelled: metrics_.cancelled->inc(); break;
    case JobState::Expired: metrics_.expired->inc(); break;
    default: break;
  }
  if (to == JobState::Completed) {
    obs::Registry::global()
        .counter("service.tenant." + job->tenant() + ".completed")
        .inc();
    // Only clean completions feed the backlog estimator: a cancelled or
    // expired run's truncated duration would bias the drain estimate low.
    const std::lock_guard<std::mutex> lock(jobs_mutex_);
    constexpr double kAlpha = 0.3;
    ewma_run_ns_ = ewma_run_ns_ == 0.0
                       ? static_cast<double>(outcome.run_ns)
                       : kAlpha * static_cast<double>(outcome.run_ns) +
                             (1.0 - kAlpha) * ewma_run_ns_;
  }
  metrics_.queue_ns->record(outcome.wait_ns);
  if (outcome.run_ns != 0) metrics_.run_ns->record(outcome.run_ns);
  const std::int64_t cancel_at = job->cancel_requested_ns.load(std::memory_order_acquire);
  if (cancel_at != 0)
    metrics_.cancel_ns->record(static_cast<std::uint64_t>(
        std::max<std::int64_t>(0, steady_now_ns() - cancel_at)));

  job->resolve(std::move(outcome));
  return true;
}

void JobService::run_job(const std::shared_ptr<Job>& job) {
  const std::uint64_t wait_ns = ns_since(job->submitted_at);
  const CancelToken& token = *job->token();

  // Dequeue-time deadline check, independent of the token poll below: a job
  // whose deadline expired while it sat in the queue — even between
  // expire_overdue() sweeps — must never construct an executor. The explicit
  // clock comparison keeps that guarantee even if the token's deadline arm
  // and this dequeue race on the same tick.
  const std::chrono::milliseconds deadline = job->request().deadline;
  if (deadline.count() > 0 &&
      std::chrono::steady_clock::now() >= job->submitted_at + deadline)
    token.cancel(CancelReason::DeadlineExpired);

  // Pre-run checkpoint: a job whose deadline passed (or that was cancelled)
  // while it waited in the queue terminates here — no executor, no model, no
  // shot is ever constructed for it.
  if (token.cancelled()) {
    JobOutcome outcome;
    outcome.wait_ns = wait_ns;
    if (token.reason() == CancelReason::DeadlineExpired) {
      outcome.state = JobState::Expired;
      outcome.error = JobError{JobErrorCode::DeadlineExpired,
                               job->request().run.label + ": deadline passed while queued"};
    } else {
      outcome.state = JobState::Cancelled;
      outcome.error = JobError{JobErrorCode::CancelRequested,
                               job->request().run.label + ": cancelled while queued"};
    }
    finish(job, JobState::Queued, std::move(outcome));
    return;
  }

  if (!job->try_transition(JobState::Queued, JobState::Running)) return;
  note_queued_delta(-1);

  const SweepJob& run = job->request().run;
  core::RunConfig cfg = run.config;
  // Same discipline as SweepRunner::submit: the pool is the parallelism.
  if (cfg.executor_threads == 0) cfg.executor_threads = 1;
  if (cfg.block_store_path.empty()) cfg.block_store_path = service_.block_store_path();
  cfg.cancel = job->token();

  const auto started = std::chrono::steady_clock::now();
  JobOutcome outcome;
  outcome.wait_ns = wait_ns;
  try {
    core::RunResult result =
        core::run_qaoa(run.instance, *run.dev, run.kind, cfg, &service_, service_.block_cache());
    if (result.cancelled) {
      // run_qaoa assembled a partial result up to the last completed batch.
      const bool expired = token.reason() == CancelReason::DeadlineExpired;
      outcome.state = expired ? JobState::Expired : JobState::Cancelled;
      outcome.error =
          expired ? JobError{JobErrorCode::DeadlineExpired,
                             run.label + ": deadline expired mid-run (partial result attached)"}
                  : JobError{JobErrorCode::CancelRequested,
                             run.label + ": cancelled mid-run (partial result attached)"};
    } else {
      outcome.state = JobState::Completed;
    }
    outcome.result = std::move(result);
    outcome.has_result = true;
  } catch (const CancelledError& e) {
    // The token fired outside run_qaoa's partial-result net (e.g. during M3
    // calibration): terminal state only, no result.
    const bool expired = e.reason() == CancelReason::DeadlineExpired;
    outcome.state = expired ? JobState::Expired : JobState::Cancelled;
    outcome.error = expired ? JobError{JobErrorCode::DeadlineExpired,
                                       run.label + ": deadline expired mid-run"}
                            : JobError{JobErrorCode::CancelRequested,
                                       run.label + ": cancelled mid-run"};
  } catch (const std::exception& e) {
    // The run threw: the job fails, the worker (and the shared cache) stay
    // healthy for the next job.
    outcome.state = JobState::Failed;
    outcome.error = JobError{JobErrorCode::ExecutionFailed, e.what()};
  }
  outcome.run_ns = ns_since(started);
  finish(job, JobState::Running, std::move(outcome));
}

bool JobService::cancel(JobId id) {
  const std::shared_ptr<Job> job = find(id);
  if (!job) return false;
  if (job_state_terminal(job->state())) return false;

  // Stamp the first request (feeds the time-to-cancel histogram), then fire
  // the token: a running job observes it at its next checkpoint.
  std::int64_t expected = 0;
  job->cancel_requested_ns.compare_exchange_strong(expected, steady_now_ns(),
                                                   std::memory_order_acq_rel);
  job->token()->cancel(CancelReason::Cancelled);

  // Still queued? Resolve right now — the queued lambda will see the
  // terminal state (or the fired token) and back off.
  JobOutcome outcome;
  outcome.state = JobState::Cancelled;
  outcome.error = JobError{JobErrorCode::CancelRequested,
                           job->request().run.label + ": cancelled while queued"};
  outcome.wait_ns = ns_since(job->submitted_at);
  finish(job, JobState::Queued, std::move(outcome));
  return true;
}

std::optional<JobState> JobService::state(JobId id) const {
  const std::shared_ptr<Job> job = find(id);
  if (!job) return std::nullopt;
  return job->state();
}

std::optional<std::shared_future<JobOutcome>> JobService::outcome(JobId id) const {
  const std::shared_ptr<Job> job = find(id);
  if (!job) return std::nullopt;
  return job->outcome();
}

std::size_t JobService::expire_overdue() {
  // Snapshot under the lock, resolve outside it: finish() takes jobs_mutex_
  // through note_queued_delta.
  std::vector<std::shared_ptr<Job>> overdue;
  const auto now = std::chrono::steady_clock::now();
  {
    const std::lock_guard<std::mutex> lock(jobs_mutex_);
    for (const auto& [id, job] : jobs_) {
      const std::chrono::milliseconds deadline = job->request().deadline;
      if (deadline.count() > 0 && job->state() == JobState::Queued &&
          now >= job->submitted_at + deadline)
        overdue.push_back(job);
    }
  }
  std::size_t expired = 0;
  for (const std::shared_ptr<Job>& job : overdue) {
    job->token()->cancel(CancelReason::DeadlineExpired);
    JobOutcome outcome;
    outcome.state = JobState::Expired;
    outcome.error = JobError{JobErrorCode::DeadlineExpired,
                             job->request().run.label + ": deadline passed while queued"};
    outcome.wait_ns = ns_since(job->submitted_at);
    if (finish(job, JobState::Queued, std::move(outcome))) ++expired;
    // Lost the race to a worker dequeuing it: run_job's own deadline check
    // (which saw the token we just fired) resolves it Expired instead.
  }
  return expired;
}

std::size_t JobService::prune_finished() {
  expire_overdue();
  const std::lock_guard<std::mutex> lock(jobs_mutex_);
  std::size_t dropped = 0;
  for (auto it = jobs_.begin(); it != jobs_.end();) {
    if (job_state_terminal(it->second->state())) {
      it = jobs_.erase(it);
      ++dropped;
    } else {
      ++it;
    }
  }
  return dropped;
}

}  // namespace hgp::serve
