#include "serve/eval_service.hpp"

#include <algorithm>

namespace hgp::serve {

void FairJobQueue::push(const std::string& tenant, double weight, int priority,
                        std::function<void()> task) {
  Tenant& t = tenants_[tenant];
  // Weight updates take effect immediately (last submit wins); clamp so a
  // degenerate weight cannot stall the round-robin top-up loop.
  t.weight = std::max(weight, 1e-3);
  if (t.count == 0) {
    ring_.push_back(tenant);
    t.deficit = 0.0;
    t.topped_up = false;
  }
  t.buckets[priority].push_back(std::move(task));
  ++t.count;
  ++size_;
}

bool FairJobQueue::pop(std::function<void()>& out) {
  if (size_ == 0) return false;
  // The ring holds only backlogged tenants, and every full pass tops each
  // one up by its weight, so some deficit reaches 1 in bounded passes.
  for (;;) {
    if (cursor_ >= ring_.size()) cursor_ = 0;
    Tenant& t = tenants_[ring_[cursor_]];
    if (!t.topped_up) {
      t.deficit += t.weight;
      t.topped_up = true;
    }
    if (t.deficit < 1.0) {
      // This stop's credit is spent — move on, keeping the remainder.
      t.topped_up = false;
      ++cursor_;
      continue;
    }
    t.deficit -= 1.0;
    auto bucket = t.buckets.begin();
    out = std::move(bucket->second.front());
    bucket->second.pop_front();
    if (bucket->second.empty()) t.buckets.erase(bucket);
    --t.count;
    --size_;
    if (t.count == 0) {
      // Drained: leave the ring and forfeit leftover credit, so an idle
      // tenant cannot bank an unfair burst for later.
      t.deficit = 0.0;
      t.topped_up = false;
      ring_.erase(ring_.begin() + static_cast<long>(cursor_));
    } else if (t.deficit < 1.0) {
      t.topped_up = false;
      ++cursor_;
    }
    return true;
  }
}

EvalService::EvalService(Options options)
    : cache_(std::make_shared<BlockCache>(options.cache_capacity)),
      block_store_path_(std::move(options.block_store_path)),
      min_workers_(std::max<std::size_t>(1, options.min_workers)),
      max_workers_(options.max_workers),
      adapt_interval_(options.adapt_interval) {
  obs::Registry& reg = obs::Registry::global();
  metrics_.candidates_submitted = &reg.counter("service.candidates_submitted");
  metrics_.jobs_submitted = &reg.counter("service.jobs_submitted");
  metrics_.helping_steals = &reg.counter("service.helping_steals");
  metrics_.worker_busy_ns = &reg.counter("service.worker_busy_ns");
  metrics_.worker_idle_ns = &reg.counter("service.worker_idle_ns");
  metrics_.pool_grows = &reg.counter("service.pool_grows");
  metrics_.pool_shrinks = &reg.counter("service.pool_shrinks");
  metrics_.queue_depth = &reg.gauge("service.queue_depth");
  metrics_.workers = &reg.gauge("service.workers");
  metrics_.candidate_wait_ns = &reg.histogram("service.candidate_wait_ns");
  metrics_.job_wait_ns = &reg.histogram("service.job_wait_ns");

  std::size_t n = options.num_workers != 0
                      ? options.num_workers
                      : std::max<std::size_t>(1, std::thread::hardware_concurrency());
  if (max_workers_ != 0) {
    // Adaptive mode: a max below min is a config slip, not a mode; resolve
    // it in min's favor and clamp the starting size into the band.
    max_workers_ = std::max(max_workers_, min_workers_);
    n = std::min(std::max(n, min_workers_), max_workers_);
  }
  {
    const std::lock_guard<std::mutex> lock(mutex_);
    for (std::size_t i = 0; i < n; ++i) spawn_worker();
  }
  if (max_workers_ != 0) manager_ = std::thread([this] { manager_loop(); });
}

EvalService::~EvalService() {
  {
    const std::lock_guard<std::mutex> lock(mutex_);
    stop_ = true;
  }
  cv_.notify_all();
  if (manager_.joinable()) manager_.join();
  for (WorkerSlot& slot : workers_)
    if (slot.thread.joinable()) slot.thread.join();
}

void EvalService::spawn_worker() {
  workers_.emplace_back();
  WorkerSlot* slot = &workers_.back();
  ++alive_workers_;
  alive_count_.store(alive_workers_, std::memory_order_release);
  metrics_.workers->set(static_cast<std::int64_t>(alive_workers_));
  slot->thread = std::thread([this, slot] { worker_loop(slot); });
}

void EvalService::manager_loop() {
  // Consecutive ticks with both queues empty; one shrink per kIdleTicks run
  // so the pool decays gradually instead of collapsing on the first gap.
  constexpr std::size_t kIdleTicks = 4;
  std::size_t idle_ticks = 0;
  std::unique_lock<std::mutex> lock(mutex_);
  while (!stop_) {
    // There is no dedicated manager CV: cv_ is notified on every enqueue and
    // on stop, and the wait_for timeout is the adaptation tick. Spurious
    // wakes just re-evaluate the same policy a little early.
    cv_.wait_for(lock, adapt_interval_, [&] { return stop_; });
    if (stop_) break;

    // Reap exited workers (retired ones; the list never shrinks otherwise).
    // `exited` flips after the thread's last touch of pool state, so these
    // joins return promptly.
    for (auto it = workers_.begin(); it != workers_.end();) {
      if (it->exited.load(std::memory_order_acquire) && it->thread.joinable()) {
        it->thread.join();
        it = workers_.erase(it);
      } else {
        ++it;
      }
    }

    const std::size_t depth = candidates_.size() + jobs_.size();
    if (depth > 0) {
      idle_ticks = 0;
      // Work outlasted a whole tick with every worker busy: grow toward the
      // backlog, bounded by max_workers. Pending retirements are cancelled
      // first — un-asking an idle worker beats spawning a fresh thread.
      std::size_t want = std::min(max_workers_, alive_workers_ - retire_requests_ + depth);
      while (retire_requests_ > 0 && alive_workers_ - retire_requests_ < want)
        --retire_requests_;
      while (alive_workers_ < want) {
        spawn_worker();
        metrics_.pool_grows->inc();
        grow_events_.fetch_add(1, std::memory_order_acq_rel);
      }
    } else if (alive_workers_ - retire_requests_ > min_workers_ &&
               ++idle_ticks >= kIdleTicks) {
      idle_ticks = 0;
      ++retire_requests_;
      metrics_.pool_shrinks->inc();
      shrink_events_.fetch_add(1, std::memory_order_acq_rel);
      cv_.notify_all();
    }
  }
}

bool EvalService::run_one(std::unique_lock<std::mutex>& lock, bool jobs_too) {
  std::function<void()> task;
  if (!candidates_.empty()) {
    task = std::move(candidates_.front());
    candidates_.pop_front();
  } else if (!jobs_too || !jobs_.pop(task)) {
    return false;
  }
  metrics_.queue_depth->set(static_cast<std::int64_t>(candidates_.size() + jobs_.size()));
  lock.unlock();
  // Busy time accrues to whoever runs the task — worker or helping
  // submitter — so busy+idle over the workers tracks pool utilization.
  const std::uint64_t t0 = obs::enabled() ? obs::now_ns() : 0;
  task();
  if (t0 != 0) metrics_.worker_busy_ns->inc(obs::now_ns() - t0);
  lock.lock();
  return true;
}

void EvalService::worker_loop(WorkerSlot* slot) {
  std::unique_lock<std::mutex> lock(mutex_);
  for (;;) {
    const std::uint64_t t0 = obs::enabled() ? obs::now_ns() : 0;
    cv_.wait(lock, [&] {
      return stop_ || retire_requests_ > 0 || !candidates_.empty() || !jobs_.empty();
    });
    if (t0 != 0) metrics_.worker_idle_ns->inc(obs::now_ns() - t0);
    if (!run_one(lock, /*jobs_too=*/true)) {
      if (stop_) break;
      // Retirement is taken only with both queues empty: a worker never
      // abandons queued work, so shrinking cannot delay a running job.
      if (retire_requests_ > 0) {
        --retire_requests_;
        break;
      }
    }
  }
  --alive_workers_;
  alive_count_.store(alive_workers_, std::memory_order_release);
  metrics_.workers->set(static_cast<std::int64_t>(alive_workers_));
  slot->exited.store(true, std::memory_order_release);
}

void EvalService::post(const SubmitOptions& options, std::function<void()> task) {
  const std::uint64_t t_enq = obs::enabled() ? obs::now_ns() : 0;
  std::function<void()> wrapped = [this, t_enq, task = std::move(task)] {
    if (t_enq != 0) metrics_.job_wait_ns->record(obs::now_ns() - t_enq);
    task();
  };
  {
    const std::lock_guard<std::mutex> lock(mutex_);
    jobs_.push(options.tenant, options.weight, options.priority, std::move(wrapped));
    metrics_.jobs_submitted->inc();
    metrics_.queue_depth->set(static_cast<std::int64_t>(candidates_.size() + jobs_.size()));
  }
  cv_.notify_all();
}

std::size_t EvalService::queued_jobs() const {
  const std::lock_guard<std::mutex> lock(mutex_);
  return jobs_.size();
}

void EvalService::run(std::vector<std::function<void()>>& tasks) {
  if (tasks.empty()) return;
  if (tasks.size() == 1 || num_workers() == 0) {
    // Nothing to fan out — run inline (exceptions propagate directly).
    for (std::function<void()>& task : tasks) task();
    return;
  }

  auto batch = std::make_shared<Batch>();
  batch->remaining = tasks.size();
  const std::uint64_t t_enq = obs::enabled() ? obs::now_ns() : 0;
  {
    const std::lock_guard<std::mutex> lock(mutex_);
    for (std::function<void()>& fn : tasks) {
      candidates_.push_back([this, batch, t_enq, fn = std::move(fn)] {
        if (t_enq != 0) metrics_.candidate_wait_ns->record(obs::now_ns() - t_enq);
        try {
          fn();
        } catch (...) {
          const std::lock_guard<std::mutex> inner(mutex_);
          if (!batch->error) batch->error = std::current_exception();
        }
        {
          const std::lock_guard<std::mutex> inner(mutex_);
          --batch->remaining;
        }
        cv_.notify_all();
      });
    }
    metrics_.candidates_submitted->inc(tasks.size());
    metrics_.queue_depth->set(static_cast<std::int64_t>(candidates_.size() + jobs_.size()));
  }
  cv_.notify_all();

  // Help drain the candidate queue while waiting: a batch submitted from a
  // job running on the pool makes progress even when every worker is busy,
  // so nested submission cannot deadlock.
  std::unique_lock<std::mutex> lock(mutex_);
  while (batch->remaining > 0) {
    if (run_one(lock, /*jobs_too=*/false))
      metrics_.helping_steals->inc();
    else
      cv_.wait(lock, [&] { return batch->remaining == 0 || !candidates_.empty(); });
  }
  if (batch->error) std::rethrow_exception(batch->error);
}

}  // namespace hgp::serve
