#include "serve/eval_service.hpp"

#include <algorithm>

namespace hgp::serve {

EvalService::EvalService(Options options)
    : cache_(std::make_shared<BlockCache>(options.cache_capacity)),
      block_store_path_(std::move(options.block_store_path)) {
  const std::size_t n = options.num_workers != 0
                            ? options.num_workers
                            : std::max<std::size_t>(1, std::thread::hardware_concurrency());
  workers_.reserve(n);
  for (std::size_t i = 0; i < n; ++i) workers_.emplace_back([this] { worker_loop(); });
}

EvalService::~EvalService() {
  {
    const std::lock_guard<std::mutex> lock(mutex_);
    stop_ = true;
  }
  cv_.notify_all();
  for (std::thread& w : workers_) w.join();
}

bool EvalService::run_one(std::unique_lock<std::mutex>& lock, bool jobs_too) {
  std::function<void()> task;
  if (!candidates_.empty()) {
    task = std::move(candidates_.front());
    candidates_.pop_front();
  } else if (jobs_too && !jobs_.empty()) {
    task = std::move(jobs_.front());
    jobs_.pop_front();
  } else {
    return false;
  }
  lock.unlock();
  task();
  lock.lock();
  return true;
}

void EvalService::worker_loop() {
  std::unique_lock<std::mutex> lock(mutex_);
  for (;;) {
    cv_.wait(lock, [&] { return stop_ || !candidates_.empty() || !jobs_.empty(); });
    if (!run_one(lock, /*jobs_too=*/true) && stop_) return;
  }
}

void EvalService::run(std::vector<std::function<void()>>& tasks) {
  if (tasks.empty()) return;
  if (tasks.size() == 1 || workers_.empty()) {
    // Nothing to fan out — run inline (exceptions propagate directly).
    for (std::function<void()>& task : tasks) task();
    return;
  }

  auto batch = std::make_shared<Batch>();
  batch->remaining = tasks.size();
  {
    const std::lock_guard<std::mutex> lock(mutex_);
    for (std::function<void()>& fn : tasks) {
      candidates_.push_back([this, batch, fn = std::move(fn)] {
        try {
          fn();
        } catch (...) {
          const std::lock_guard<std::mutex> inner(mutex_);
          if (!batch->error) batch->error = std::current_exception();
        }
        {
          const std::lock_guard<std::mutex> inner(mutex_);
          --batch->remaining;
        }
        cv_.notify_all();
      });
    }
  }
  cv_.notify_all();

  // Help drain the candidate queue while waiting: a batch submitted from a
  // job running on the pool makes progress even when every worker is busy,
  // so nested submission cannot deadlock.
  std::unique_lock<std::mutex> lock(mutex_);
  while (batch->remaining > 0) {
    if (!run_one(lock, /*jobs_too=*/false))
      cv_.wait(lock, [&] { return batch->remaining == 0 || !candidates_.empty(); });
  }
  if (batch->error) std::rethrow_exception(batch->error);
}

}  // namespace hgp::serve
