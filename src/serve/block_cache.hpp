#pragma once

#include <cstdint>
#include <list>
#include <memory>
#include <mutex>
#include <string>
#include <unordered_map>

#include "core/compiled_block.hpp"

namespace hgp::serve {

/// What kind of program step a cached block was compiled from. Gate blocks
/// key on (gate kind, qubits, exact parameters, schedule duration); pulse
/// blocks key on the physical qubits plus the schedule's content
/// fingerprint. The cache treats both uniformly — the kind only routes the
/// per-kind hit/miss accounting, so a sweep's stats show whether the
/// expensive pulse-ODE compilations (the hybrid model's trainable mixer
/// layers) are actually being shared.
enum class BlockKind { Gate, Pulse };

/// Thread-safe, LRU-bounded map from structure keys to compiled blocks.
///
/// The key encodes everything a block's unitary depends on — backend
/// fingerprint, compile options, gate kind, physical qubits, exact
/// (hexfloat) parameters, schedule fingerprint, and schedule duration — so
/// one cache can be shared process-wide: across optimizer candidates of one
/// run, across COBYLA iterations (only parameter-bearing blocks recompile),
/// and across the concurrent runs of a sweep (including the pulse mixer
/// blocks of hybrid runs at repeated candidate angles). Values are
/// immutable and handed out as shared_ptr, so eviction never invalidates a
/// block another thread is still holding.
class BlockCache {
 public:
  struct Stats {
    std::uint64_t hits = 0;    // total = gate + pulse
    std::uint64_t misses = 0;  // total = gate + pulse
    std::uint64_t evictions = 0;
    std::uint64_t gate_hits = 0;
    std::uint64_t gate_misses = 0;
    std::uint64_t pulse_hits = 0;
    std::uint64_t pulse_misses = 0;
    std::size_t size = 0;
    std::size_t capacity = 0;

    double hit_rate() const {
      const std::uint64_t total = hits + misses;
      return total == 0 ? 0.0 : static_cast<double>(hits) / static_cast<double>(total);
    }
    double pulse_hit_rate() const {
      const std::uint64_t total = pulse_hits + pulse_misses;
      return total == 0 ? 0.0 : static_cast<double>(pulse_hits) / static_cast<double>(total);
    }
  };

  explicit BlockCache(std::size_t capacity = 4096);

  /// Look up a block, refreshing its LRU position. Null on miss. `kind`
  /// selects which per-kind hit/miss counters the lookup charges.
  std::shared_ptr<const core::CompiledBlock> find(const std::string& key,
                                                  BlockKind kind = BlockKind::Gate);

  /// Insert (or refresh) a block and return the cached instance. Two workers
  /// racing to compile the same key both insert identical blocks — last one
  /// wins, which is benign.
  std::shared_ptr<const core::CompiledBlock> insert(const std::string& key,
                                                    core::CompiledBlock block);

  Stats stats() const;
  std::size_t capacity() const { return capacity_; }
  void clear();

 private:
  struct Entry {
    std::shared_ptr<const core::CompiledBlock> block;
    std::list<std::string>::iterator lru_pos;
  };

  mutable std::mutex mutex_;
  std::list<std::string> lru_;  // front = most recently used
  std::unordered_map<std::string, Entry> map_;
  std::size_t capacity_;
  std::uint64_t gate_hits_ = 0;
  std::uint64_t gate_misses_ = 0;
  std::uint64_t pulse_hits_ = 0;
  std::uint64_t pulse_misses_ = 0;
  std::uint64_t evictions_ = 0;
};

}  // namespace hgp::serve
