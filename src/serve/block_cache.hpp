#pragma once

#include <cstdint>
#include <list>
#include <memory>
#include <mutex>
#include <string>
#include <unordered_map>
#include <vector>

#include <atomic>

#include "core/compiled_block.hpp"
#include "obs/metrics.hpp"
#include "serve/block_kind.hpp"
#include "serve/block_store.hpp"

namespace hgp::serve {

/// Thread-safe, LRU-bounded map from structure keys to compiled blocks.
///
/// The key encodes everything a block's unitary depends on — backend
/// fingerprint, compile options, gate kind, physical qubits, exact
/// (hexfloat) parameters, schedule fingerprint, and schedule duration — so
/// one cache can be shared process-wide: across optimizer candidates of one
/// run, across COBYLA iterations (only parameter-bearing blocks recompile),
/// and across the concurrent runs of a sweep (including the pulse mixer
/// blocks of hybrid runs at repeated candidate angles). Values are
/// immutable and handed out as shared_ptr, so eviction never invalidates a
/// block another thread is still holding.
///
/// The cache also survives across processes: save()/load() snapshot it
/// through serve::BlockStore's versioned on-disk format, and attach_store()
/// additionally write-throughs every new compilation so long-lived services
/// persist incrementally. Stats separate disk-warmed hits (store_hits) from
/// purely in-process ones.
class BlockCache {
 public:
  struct Stats {
    std::uint64_t hits = 0;    // total = gate + pulse + fused
    std::uint64_t misses = 0;  // total = gate + pulse + fused
    std::uint64_t evictions = 0;
    std::uint64_t gate_hits = 0;
    std::uint64_t gate_misses = 0;
    std::uint64_t pulse_hits = 0;
    std::uint64_t pulse_misses = 0;
    /// Fused-block traffic from the timeline fusion pass: hits skip the
    /// composition matmuls entirely.
    std::uint64_t fused_hits = 0;
    std::uint64_t fused_misses = 0;
    /// Hits served by an entry that came off disk rather than an in-process
    /// compilation (subset of `hits`).
    std::uint64_t store_hits = 0;
    /// Misses charged while a store load had been attempted — compilations
    /// the store failed to avoid (subset of `misses`; 0 when no store is in
    /// play).
    std::uint64_t store_misses = 0;
    /// Cumulative records merged from disk by load()/attach_store().
    std::uint64_t store_loaded = 0;
    std::size_t size = 0;
    std::size_t capacity = 0;

    double hit_rate() const {
      const std::uint64_t total = hits + misses;
      return total == 0 ? 0.0 : static_cast<double>(hits) / static_cast<double>(total);
    }
    double pulse_hit_rate() const {
      const std::uint64_t total = pulse_hits + pulse_misses;
      return total == 0 ? 0.0 : static_cast<double>(pulse_hits) / static_cast<double>(total);
    }
    double fused_hit_rate() const {
      const std::uint64_t total = fused_hits + fused_misses;
      return total == 0 ? 0.0 : static_cast<double>(fused_hits) / static_cast<double>(total);
    }
    double store_hit_rate() const {
      const std::uint64_t total = store_hits + store_misses;
      return total == 0 ? 0.0 : static_cast<double>(store_hits) / static_cast<double>(total);
    }
  };

  /// Outcome of a load()/attach_store() pass (BlockStore::LoadReport's
  /// record counts plus whether write-through is now active).
  struct StoreReport {
    std::size_t loaded = 0;       // records merged into this cache
    std::size_t skipped = 0;      // checksum/parse/truncation rejects
    bool header_ok = false;       // magic + format version matched
    bool fingerprint_ok = false;  // backend fingerprint matched
    bool attached = false;        // write-through appender is active
  };

  explicit BlockCache(std::size_t capacity = 4096);
  ~BlockCache();

  /// Look up a block, refreshing its LRU position. Null on miss. `kind`
  /// selects which per-kind hit/miss counters the lookup charges.
  std::shared_ptr<const core::CompiledBlock> find(const std::string& key,
                                                  BlockKind kind = BlockKind::Gate);

  /// Insert (or refresh) a block and return the cached instance. Two workers
  /// racing to compile the same key both insert identical blocks — last one
  /// wins, which is benign. A *new* key is also appended to the attached
  /// store, if any (write-through). `fingerprint` records which backend the
  /// block was compiled for — it is stamped into the store record so a
  /// multi-backend cache persists every block under its own calibration
  /// (0 = unattributed; store records then carry the attach/save
  /// fingerprint).
  std::shared_ptr<const core::CompiledBlock> insert(const std::string& key,
                                                    core::CompiledBlock block,
                                                    BlockKind kind = BlockKind::Gate,
                                                    std::uint64_t fingerprint = 0);

  /// Snapshot every resident entry to `path` in BlockStore's format
  /// (atomic replace). Returns the number of records written.
  std::size_t save(const std::string& path, std::uint64_t fingerprint) const;

  /// Merge `path`'s records into this cache. Per-record validation: a
  /// version/fingerprint/checksum mismatch skips entries (never throws), so
  /// a stale or corrupted store degrades to cold compilation. Loaded
  /// entries are flagged as disk-warmed for the store_hits accounting.
  StoreReport load(const std::string& path, std::uint64_t fingerprint);

  /// load() + open `path` for incremental write-through: every subsequently
  /// compiled (new-key) block is appended, so a long-lived service persists
  /// as it runs. One store per cache, first attach wins — re-attaching the
  /// same path is a cheap no-op (concurrent executors of one sweep all call
  /// this), a different path is ignored. A missing or invalidated
  /// (recalibrated) file is reset to a fresh store.
  StoreReport attach_store(const std::string& path, std::uint64_t fingerprint);

  /// Compact the attached write-through store down to this cache's resident
  /// entries (BlockStore::compact): records this calibration appended but
  /// the LRU has since evicted are dropped from the file, other
  /// calibrations' records are kept, and residents are rewritten in LRU
  /// order (oldest first, like save(), so a loader reconstructs the same
  /// ranking). A block compiled concurrently with the pass stays resident
  /// in the cache and is re-persisted by the next write-through or
  /// compaction. Returns the compacted file's record count; 0 when no store
  /// is attached (or the rewrite failed).
  std::size_t compact_store();

  /// Path of the attached write-through store ("" when none).
  std::string store_path() const;

  /// Torn-read-safe traffic snapshot: the counters are atomics read without
  /// the cache lock (only size takes it), so polling stats from a monitor
  /// thread while workers hammer find()/insert() is race-free. The snapshot
  /// is not one consistent cut — counters advance independently.
  Stats stats() const;
  std::size_t capacity() const { return capacity_; }
  void clear();

 private:
  struct Entry {
    std::shared_ptr<const core::CompiledBlock> block;
    std::list<std::string>::iterator lru_pos;
    BlockKind kind = BlockKind::Gate;
    std::uint64_t fingerprint = 0;  // backend the block was compiled for
    bool from_store = false;        // merged from disk, not compiled here
  };

  /// Insert under the held lock; returns true when the key was new.
  bool insert_locked(const std::string& key,
                     std::shared_ptr<const core::CompiledBlock> block, BlockKind kind,
                     std::uint64_t fingerprint, bool from_store);
  /// Shared load pass of load()/attach_store(): merge records, flip store
  /// tracking on, and return the full file report (incl. the resume offset
  /// attach_store needs). `loaded_keys`, when non-null, collects every
  /// delivered key so the attach path can seed the appender's dedup set.
  BlockStore::LoadReport load_impl(const std::string& path, std::uint64_t fingerprint,
                                   std::vector<std::string>* loaded_keys);

  mutable std::mutex mutex_;
  std::list<std::string> lru_;  // front = most recently used
  std::unordered_map<std::string, Entry> map_;
  std::size_t capacity_;
  /// Traffic counters are atomics, not lock-guarded ints: stats() snapshots
  /// them without taking mutex_, so a monitoring thread polling a busy cache
  /// never tears a read and never contends with the workers' lookups. Each
  /// instance additionally mirrors its traffic into the process-wide
  /// obs::Registry ("block_cache.*" series, gated on obs::enabled()).
  std::atomic<std::uint64_t> gate_hits_{0};
  std::atomic<std::uint64_t> gate_misses_{0};
  std::atomic<std::uint64_t> pulse_hits_{0};
  std::atomic<std::uint64_t> pulse_misses_{0};
  std::atomic<std::uint64_t> fused_hits_{0};
  std::atomic<std::uint64_t> fused_misses_{0};
  std::atomic<std::uint64_t> evictions_{0};
  std::atomic<std::uint64_t> store_hits_{0};
  std::atomic<std::uint64_t> store_misses_{0};
  std::atomic<std::uint64_t> store_loaded_{0};
  /// Process-wide registry mirrors (shared by every cache instance).
  struct RegistryMirror {
    obs::Counter* gate_hits;
    obs::Counter* gate_misses;
    obs::Counter* pulse_hits;
    obs::Counter* pulse_misses;
    obs::Counter* fused_hits;
    obs::Counter* fused_misses;
    obs::Counter* evictions;
    obs::Counter* store_hits;
    obs::Counter* store_misses;
    obs::Counter* store_loaded;
    obs::Gauge* size;
  };
  RegistryMirror reg_;
  /// True once a store load was attempted (even an unsuccessful one) —
  /// misses after that point are compilations the store failed to avoid.
  bool store_tracking_ = false;
  /// True once attach_store ran, successfully or not, so re-attaches from
  /// later executors are cheap no-ops either way.
  bool store_attempted_ = false;
  /// Serializes whole attach_store() passes (load + possible file reset) so
  /// two racing attachers cannot truncate the file under each other; held
  /// strictly outside mutex_.
  std::mutex attach_mutex_;
  std::shared_ptr<BlockStore> store_;  // write-through appender (may be null)
};

}  // namespace hgp::serve
