#pragma once

#include <cstdint>
#include <list>
#include <memory>
#include <mutex>
#include <string>
#include <unordered_map>

#include "core/compiled_block.hpp"

namespace hgp::serve {

/// Thread-safe, LRU-bounded map from structure keys to compiled blocks.
///
/// The key encodes everything a block's unitary depends on — backend
/// fingerprint, compile options, gate kind, physical qubits, exact
/// (hexfloat) parameters, and schedule duration — so one cache can be shared
/// process-wide: across optimizer candidates of one run, across COBYLA
/// iterations (only parameter-bearing blocks recompile), and across the
/// concurrent runs of a sweep. Values are immutable and handed out as
/// shared_ptr, so eviction never invalidates a block another thread is
/// still holding.
class BlockCache {
 public:
  struct Stats {
    std::uint64_t hits = 0;
    std::uint64_t misses = 0;
    std::uint64_t evictions = 0;
    std::size_t size = 0;
    std::size_t capacity = 0;

    double hit_rate() const {
      const std::uint64_t total = hits + misses;
      return total == 0 ? 0.0 : static_cast<double>(hits) / static_cast<double>(total);
    }
  };

  explicit BlockCache(std::size_t capacity = 4096);

  /// Look up a block, refreshing its LRU position. Null on miss.
  std::shared_ptr<const core::CompiledBlock> find(const std::string& key);

  /// Insert (or refresh) a block and return the cached instance. Two workers
  /// racing to compile the same key both insert identical blocks — last one
  /// wins, which is benign.
  std::shared_ptr<const core::CompiledBlock> insert(const std::string& key,
                                                    core::CompiledBlock block);

  Stats stats() const;
  std::size_t capacity() const { return capacity_; }
  void clear();

 private:
  struct Entry {
    std::shared_ptr<const core::CompiledBlock> block;
    std::list<std::string>::iterator lru_pos;
  };

  mutable std::mutex mutex_;
  std::list<std::string> lru_;  // front = most recently used
  std::unordered_map<std::string, Entry> map_;
  std::size_t capacity_;
  std::uint64_t hits_ = 0;
  std::uint64_t misses_ = 0;
  std::uint64_t evictions_ = 0;
};

}  // namespace hgp::serve
