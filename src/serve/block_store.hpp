#pragma once

#include <cstdint>
#include <fstream>
#include <functional>
#include <memory>
#include <mutex>
#include <string>
#include <tuple>
#include <unordered_set>
#include <vector>

#include "core/compiled_block.hpp"
#include "serve/block_kind.hpp"

namespace hgp::serve {

/// Versioned on-disk persistence for compiled blocks: the format that lets a
/// process-wide BlockCache survive across runs and hosts, so a fleet of
/// workers shares one calibration's pulse-ODE compilations instead of each
/// recompiling them (PAPER.md §III — the hybrid model's dominant compile
/// cost).
///
/// File layout (fixed-width host-endian — little-endian on every supported
/// target; a byte-swapped host would fail the bounds checks and degrade to
/// cold compilation — doubles by IEEE-754 bit pattern):
///
///   header:  magic u32 ("HGPB") | format version u32 | backend fingerprint
///            u64 (backend::FakeBackend::fingerprint() of the last writer)
///   records: body length u32 | FNV-1a checksum u64 of the body | body
///   body:    BlockKind u8 | writer backend fingerprint u64 | cache key
///            (u32 length + bytes) | the serialized core::CompiledBlock
///            payload
///
/// Validation is entry-by-entry and never fatal: a magic/version mismatch
/// skips the whole file, a failed checksum or malformed payload skips that
/// record, a truncated tail (e.g. a writer killed mid-append) skips
/// everything from the cut, and fingerprint ownership is decided *per
/// record* — each record carries the fingerprint it was compiled under and
/// loads only for that backend, so a store shared by several calibrations
/// warm-starts each one with exactly its blocks (the header fingerprint is
/// advisory: who wrote last). In every degradation path the reader falls
/// back to cold compilation. Recalibration therefore invalidates exactly
/// like the in-memory cache: the new device loads nothing of the old one,
/// takes over the header on attach, and the old records stay on disk —
/// still loadable by their own calibration, never replayable by the wrong
/// one.
class BlockStore {
 public:
  static constexpr std::uint32_t kMagic = 0x42504748u;  // "HGPB" little-endian
  static constexpr std::uint32_t kFormatVersion = 1;
  /// Upper bound on one record body — a corrupted length field may not ask
  /// the reader to allocate unbounded memory. Generous: the largest real
  /// payload (a 4-qubit block unitary) is ~4 KiB.
  static constexpr std::uint32_t kMaxRecordBytes = 1u << 26;

  /// What a load pass found. `loaded`/`skipped` count records; the header
  /// flags explain an empty result (missing file, foreign format, other
  /// calibration).
  struct LoadReport {
    std::size_t loaded = 0;
    std::size_t skipped = 0;
    bool header_ok = false;       // magic + version matched
    bool fingerprint_ok = false;  // header backend fingerprint matched
    /// Bytes up to the end of the last intact record frame (the header
    /// alone when no record survives, 0 when the header is invalid).
    /// Appenders resume here so a torn tail never buries later records.
    std::uint64_t valid_bytes = 0;
  };

  /// One decoded record handed to the load callback (`fingerprint` is the
  /// backend the record was compiled for — always the loader's own, since
  /// foreign records are skipped).
  using RecordFn = std::function<void(const std::string& key, BlockKind kind,
                                      std::uint64_t fingerprint,
                                      core::CompiledBlock block)>;

  /// Stream `path`'s records through `fn`, validating each as described
  /// above. Never throws on bad input — unreadable files simply report
  /// nothing loaded.
  static LoadReport load_file(const std::string& path, std::uint64_t fingerprint,
                              const RecordFn& fn);

  /// Atomically replace `path` with a fresh store holding `entries` (written
  /// to a sibling temp file, then renamed — concurrent readers see either
  /// the old snapshot or the new one, never a torn file). Returns the number
  /// of records written, or 0 if the file could not be created. Snapshots
  /// are for caches *without* a live appender on the same path: the rename
  /// detaches any open appender's descriptor, whose later appends would
  /// land in the replaced (unlinked) file.
  /// One entry of a snapshot: key, kind, the backend fingerprint the block
  /// was compiled for (0 = stamp the snapshot's fingerprint), and the block.
  using SaveEntry = std::tuple<std::string, BlockKind, std::uint64_t,
                               std::shared_ptr<const core::CompiledBlock>>;

  static std::size_t save_file(const std::string& path, std::uint64_t fingerprint,
                               const std::vector<SaveEntry>& entries);

  /// How the appending constructor treats what is already at `path`.
  enum class Mode {
    /// Start over: truncate and write a fresh header (missing or
    /// foreign-format files).
    Reset,
    /// Keep the records but stamp this fingerprint into the header — the
    /// non-destructive recalibration path. Old records stay on disk; they
    /// key on the old fingerprint, so they load as inert entries and are
    /// never replayed for the new device.
    Takeover,
    /// The file already belongs to this fingerprint: append after the last
    /// intact record.
    Append,
  };

  /// Open `path` for incremental write-through appends. `valid_bytes` is
  /// the LoadReport's resume point: Takeover/Append first truncate the file
  /// there, so a tail torn by a killed writer never buries the records
  /// appended after it. Load the existing records with load_file *before*
  /// constructing the appender.
  BlockStore(std::string path, std::uint64_t fingerprint, Mode mode,
             std::uint64_t valid_bytes);
  ~BlockStore();

  /// Append one record; keys already persisted (seen by note_existing or a
  /// previous append) are skipped, so an LRU-evicted-then-recompiled block
  /// does not grow the file on every round trip. Thread-safe: concurrent
  /// write-through inserts from sweep workers serialize on the store's own
  /// mutex, off the cache lock. The file is opened O_APPEND with a stream
  /// buffer larger than any realistic record, so each record lands at the
  /// true end of file in one write even when several appenders (processes)
  /// share the path; a torn tail can only be the final record — which the
  /// checksummed loader skips and the next appender truncates.
  /// `fingerprint` attributes the record to the backend that compiled the
  /// block (0 = fall back to the store's attach fingerprint), so blocks a
  /// shared multi-backend cache compiles are each persisted under their own
  /// calibration.
  void append(const std::string& key, BlockKind kind, const core::CompiledBlock& block,
              std::uint64_t fingerprint = 0);

  /// Mark a key as already on disk (the attach path seeds this with every
  /// record the load pass delivered).
  void note_existing(const std::string& key);

  /// Rewrite the file in place so it holds exactly: a fresh header, every
  /// *other* calibration's records (kept verbatim and deduped last-wins —
  /// their liveness cannot be judged from here), then `entries` — this
  /// calibration's live set, typically the attached cache's residents in
  /// LRU order. Records of this fingerprint absent from `entries` (blocks
  /// the cache's LRU evicted across many append-only runs) are dropped, and
  /// torn or corrupt frames are repaired away. The rewrite is write+truncate
  /// in place, never a rename: this appender's (and any other process's)
  /// O_APPEND descriptor must keep pointing at the real file. Holds the
  /// flock exclusively for the whole pass. Returns the compacted record
  /// count, 0 on failure (the store then degrades to not-ok).
  std::size_t compact(const std::vector<SaveEntry>& entries);

  const std::string& path() const { return path_; }
  bool ok() const { return ok_; }

 private:
  std::string path_;
  std::uint64_t fingerprint_ = 0;  // default stamp for unattributed appends
  std::mutex mutex_;
  std::vector<char> iobuf_;  // stream buffer; one flush = one OS write
  std::fstream file_;
  /// Cross-process coordination: attach-time truncation/restamp holds this
  /// descriptor's flock exclusively, appends hold it shared — so one
  /// attacher can never resize away a record another process is appending.
  int lock_fd_ = -1;
  std::unordered_set<std::string> persisted_;  // keys already in the file
  bool ok_ = false;
};

}  // namespace hgp::serve
