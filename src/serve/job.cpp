#include "serve/job.hpp"

namespace hgp::serve {

const std::string& job_state_name(JobState state) {
  static const std::string names[] = {"queued",    "running", "completed", "failed",
                                      "cancelled", "expired", "rejected"};
  return names[static_cast<int>(state)];
}

bool job_state_terminal(JobState state) {
  return state != JobState::Queued && state != JobState::Running;
}

bool job_transition_allowed(JobState from, JobState to) {
  switch (from) {
    case JobState::Queued:
      // Running, or a terminal verdict reached before any executor existed
      // (cancel while queued, deadline passed in the queue).
      return to == JobState::Running || to == JobState::Cancelled ||
             to == JobState::Expired;
    case JobState::Running:
      return to == JobState::Completed || to == JobState::Failed ||
             to == JobState::Cancelled || to == JobState::Expired;
    default:
      return false;  // terminal states are final
  }
}

const std::string& job_error_code_name(JobErrorCode code) {
  static const std::string names[] = {
      "none",           "null_backend",    "backend_too_small", "empty_instance",
      "too_many_qubits", "bad_shots",      "bad_evaluations",   "bad_engine",
      "bad_objective",  "bad_optimizer",   "bad_lanes",         "bad_cvar_alpha",
      "bad_model",      "incompatible_m3", "bad_tenant",        "queue_full",
      "backlog_full",   "deadline_expired", "cancel_requested", "execution_failed"};
  return names[static_cast<int>(code)];
}

bool job_error_transient(JobErrorCode code) {
  return code == JobErrorCode::QueueFull || code == JobErrorCode::BacklogFull;
}

Job::Job(JobId id, JobRequest request)
    : submitted_at(std::chrono::steady_clock::now()),
      id_(id),
      request_(std::move(request)),
      token_(std::make_shared<CancelToken>()),
      future_(promise_.get_future().share()) {
  if (request_.deadline.count() > 0) token_->set_deadline(submitted_at + request_.deadline);
}

bool Job::try_transition(JobState from, JobState to) {
  if (!job_transition_allowed(from, to)) return false;
  return state_.compare_exchange_strong(from, to, std::memory_order_acq_rel);
}

void Job::resolve(JobOutcome outcome) { promise_.set_value(std::move(outcome)); }

}  // namespace hgp::serve
