#pragma once

#include <atomic>
#include <chrono>
#include <cstdint>
#include <future>
#include <memory>
#include <string>

#include "common/binio.hpp"
#include "common/cancel.hpp"
#include "core/workflow.hpp"
#include "serve/sweep.hpp"

namespace hgp::serve {

/// Unique per-service job identifier (monotonically increasing from 1).
using JobId = std::uint64_t;

/// Job lifecycle. Queued and Running are transient; everything else is
/// terminal and resolves the job's future exactly once:
///
///                    ┌────────────▶ Completed
///   submit ─▶ Queued ─▶ Running ──┼─▶ Failed
///     │          │                └─▶ Cancelled / Expired   (via CancelToken)
///     │          └─────▶ Cancelled / Expired    (before any executor exists)
///     └─▶ Rejected                              (validation / admission)
enum class JobState : int {
  Queued = 0,
  Running,
  Completed,
  Failed,
  Cancelled,
  Expired,
  Rejected,
};

const std::string& job_state_name(JobState state);
bool job_state_terminal(JobState state);
/// The edges of the diagram above — anything else is a state-machine bug.
bool job_transition_allowed(JobState from, JobState to);

/// Structured error codes for every non-Completed outcome. Validation codes
/// are produced by validate_job() before any executor is constructed;
/// QueueFull/BacklogFull by admission control; the rest by the lifecycle.
enum class JobErrorCode : int {
  None = 0,
  // -- validation (request never queued) --------------------------------
  NullBackend,        ///< SweepJob::dev is null
  BackendTooSmall,    ///< instance needs more qubits than the backend has
  EmptyInstance,      ///< zero-vertex graph — nothing to optimize
  TooManyQubits,      ///< instance exceeds the engine's register cap
  BadShots,           ///< zero or absurd shot / calibration-shot count
  BadEvaluations,     ///< non-positive or absurd optimizer budget
  BadEngine,          ///< unknown RunConfig::engine string
  BadObjective,       ///< unknown RunConfig::objective string
  BadOptimizer,       ///< unknown RunConfig::optimizer string
  BadLanes,           ///< absurd shot_batch_lanes / candidate_lanes
  BadCvarAlpha,       ///< cvar_alpha outside (0, 1]
  BadModel,           ///< nonsensical model config (p < 1, ...)
  IncompatibleM3,     ///< m3 requires the "sample" objective
  BadTenant,          ///< empty tenant tag or non-positive fair-share weight
  // -- admission control ------------------------------------------------
  QueueFull,          ///< queued-job limit reached — retry later
  BacklogFull,        ///< estimated backlog exceeds the configured bound
  // -- lifecycle --------------------------------------------------------
  DeadlineExpired,    ///< soft deadline passed (queued or running)
  CancelRequested,    ///< client cancelled the job
  ExecutionFailed,    ///< the run threw; message carries what()
};

const std::string& job_error_code_name(JobErrorCode code);
/// Transient codes are worth retrying with backoff (queue pressure);
/// everything else is permanent for an identical request.
bool job_error_transient(JobErrorCode code);

struct JobError {
  JobErrorCode code = JobErrorCode::None;
  std::string message;

  explicit operator bool() const { return code != JobErrorCode::None; }
};

/// What a client submits: the run itself plus job-layer metadata. Tenant,
/// priority, and fair-share weight ride on the SweepJob.
///
/// This struct is *the* submission API — JobService::submit,
/// SweepRunner::submit, and the net::Server wire front end all accept it —
/// and it is the unit of the versioned wire schema: serialize() emits a
/// kSchemaVersion-stamped binio payload a peer deserializes bit-exactly
/// (doubles travel as IEEE-754 bit patterns), so a request submitted over a
/// socket trains the same run, to the bit, as the same request submitted
/// in process. validate_job runs identically on both sides of the wire.
struct JobRequest {
  SweepJob run;
  /// Soft deadline measured from submission (0 = none). A queued job whose
  /// deadline passes is expired without ever constructing an executor; a
  /// running job observes it through its CancelToken at the next
  /// batch/lane-group checkpoint.
  std::chrono::milliseconds deadline{0};
  /// Backend preset name for transport: SweepJob::dev is a non-owning
  /// pointer that cannot cross a socket, so serialize() writes
  /// `run.dev->name()` (or this field when dev is null) and deserialize()
  /// leaves dev null with the name here — the receiving side resolves it
  /// against its own preset registry (see net::Server) before submitting.
  std::string backend;

  /// Version stamp leading every serialized request/outcome. Bump on any
  /// layout change; deserialize() rejects versions it does not speak, so a
  /// newer peer degrades to a structured error instead of misparsing.
  static constexpr std::uint32_t kSchemaVersion = 1;

  void serialize(io::Writer& w) const;
  std::string serialize() const;
  /// False (out untouched beyond partial writes) on truncation, a version
  /// mismatch, or any malformed field. Never throws.
  static bool deserialize(io::Reader& r, JobRequest& out);
};

/// Terminal report of one job, delivered through JobHandle::outcome. The
/// future always resolves with a value — job-layer failures are states and
/// error codes, never exceptions thrown at the client.
struct JobOutcome {
  JobState state = JobState::Queued;
  JobError error;
  /// Completed: the full run. Cancelled/Expired mid-run: the partial run up
  /// to the last completed optimizer batch (result.cancelled == true).
  core::RunResult result;
  bool has_result = false;
  /// Submit-to-dequeue and dequeue-to-terminal wall time.
  std::uint64_t wait_ns = 0;
  std::uint64_t run_ns = 0;

  /// Wire schema counterpart of JobRequest::serialize — same version stamp,
  /// same bit-exactness contract (a RunResult round-trips with every double
  /// preserved bit for bit).
  void serialize(io::Writer& w) const;
  std::string serialize() const;
  static bool deserialize(io::Reader& r, JobOutcome& out);
};

/// The job record: identity, scheduling metadata, lifecycle state, and the
/// cancellation token threaded through the run. State changes go through
/// try_transition (a CAS over the lifecycle edges), so exactly one thread
/// wins each terminal transition and resolves the promise.
class Job {
 public:
  Job(JobId id, JobRequest request);

  JobId id() const { return id_; }
  const JobRequest& request() const { return request_; }
  JobRequest& request() { return request_; }
  const std::string& tenant() const { return request_.run.tenant; }
  JobState state() const { return state_.load(std::memory_order_acquire); }
  const std::shared_ptr<CancelToken>& token() const { return token_; }
  std::shared_future<JobOutcome> outcome() const { return future_; }

  /// CAS `from`-> `to` along an allowed edge; false when another thread moved
  /// the state first (or the edge is illegal).
  bool try_transition(JobState from, JobState to);
  /// Resolve the job's future. Call at most once, by the thread that won the
  /// terminal transition.
  void resolve(JobOutcome outcome);

  std::chrono::steady_clock::time_point submitted_at;
  /// Steady time of the first cancel() request (0 = never) — feeds the
  /// time-to-cancel histogram.
  std::atomic<std::int64_t> cancel_requested_ns{0};

 private:
  JobId id_;
  JobRequest request_;
  std::atomic<JobState> state_{JobState::Queued};
  std::shared_ptr<CancelToken> token_;
  std::promise<JobOutcome> promise_;
  std::shared_future<JobOutcome> future_;
};

/// What submit() hands back: the id, the submit-time verdict (Queued, or a
/// terminal Rejected/Expired whose outcome is already resolved), and the
/// shared future every interested party can wait on.
struct JobHandle {
  JobId id = 0;
  JobState submit_state = JobState::Queued;
  JobError submit_error;
  std::shared_future<JobOutcome> outcome;

  bool accepted() const { return submit_state == JobState::Queued; }
};

}  // namespace hgp::serve
