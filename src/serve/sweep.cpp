#include "serve/sweep.hpp"

#include "obs/trace.hpp"
#include "serve/job.hpp"
#include "serve/job_validation.hpp"

namespace hgp::serve {

SweepRunner::SweepRunner(Options options)
    : service_(EvalService::Options{options.num_workers, options.cache_capacity,
                                    std::move(options.block_store_path)}) {
  obs::Registry& reg = obs::Registry::global();
  jobs_completed_ = &reg.counter("sweep.jobs_completed");
  job_ns_ = &reg.histogram("sweep.job_ns");
}

std::future<core::RunResult> SweepRunner::submit(JobRequest request) {
  return submit_job(std::move(request.run));
}

std::vector<core::RunResult> SweepRunner::run_all(std::vector<JobRequest> requests) {
  std::vector<std::future<core::RunResult>> futures;
  futures.reserve(requests.size());
  for (JobRequest& request : requests) futures.push_back(submit(std::move(request)));
  std::vector<core::RunResult> out;
  out.reserve(futures.size());
  for (std::future<core::RunResult>& f : futures) out.push_back(f.get());
  return out;
}

std::future<core::RunResult> SweepRunner::submit(SweepJob job) {
  return submit_job(std::move(job));
}

std::future<core::RunResult> SweepRunner::submit_job(SweepJob job) {
  // Reject malformed requests (null backend, oversized register, unknown
  // engine/optimizer, ...) before any executor is constructed. The caller
  // gets a failed future with the structured code rather than a crash deep
  // inside a worker thread.
  if (JobError error = validate_job(job)) {
    std::promise<core::RunResult> failed;
    failed.set_exception(std::make_exception_ptr(JobValidationError(std::move(error))));
    return failed.get_future();
  }
  // The pool provides the parallelism: a default thread count (0 = hardware
  // concurrency) would nest a full trajectory shot pool inside every worker
  // and oversubscribe the machine. Counts are bit-identical for any thread
  // count, so this changes scheduling only, never results.
  if (job.config.executor_threads == 0) job.config.executor_threads = 1;
  // Runs inherit the sweep-wide persistent store unless they bring their
  // own; the first executor to construct attaches it to the shared cache.
  if (job.config.block_store_path.empty())
    job.config.block_store_path = service_.block_store_path();
  EvalService::SubmitOptions options;
  options.tenant = job.tenant;
  options.weight = job.weight;
  options.priority = job.priority;
  return service_.submit(options, [this, job = std::move(job)] {
    // Per-job latency: the span lands in the run-lifecycle trace and the
    // elapsed time in the sweep.job_ns histogram.
    obs::Span span("sweep.job", job_ns_);
    core::RunResult result = core::run_qaoa(job.instance, *job.dev, job.kind, job.config,
                                            &service_, service_.block_cache());
    jobs_completed_->inc();
    return result;
  });
}

std::vector<core::RunResult> SweepRunner::run_all(std::vector<SweepJob> jobs) {
  std::vector<std::future<core::RunResult>> futures;
  futures.reserve(jobs.size());
  for (SweepJob& job : jobs) futures.push_back(submit_job(std::move(job)));
  std::vector<core::RunResult> out;
  out.reserve(futures.size());
  for (std::future<core::RunResult>& f : futures) out.push_back(f.get());
  return out;
}

}  // namespace hgp::serve
