#pragma once

#include <future>
#include <string>
#include <vector>

#include "backend/backend.hpp"
#include "core/models.hpp"
#include "core/workflow.hpp"
#include "graph/instances.hpp"
#include "serve/eval_service.hpp"

namespace hgp::serve {

struct JobRequest;  // serve/job.hpp — the unified submission API

/// One cell of a sweep grid (a Table II cell, a Fig. 5/6 ablation bar): a
/// full machine-in-loop training run. `dev` is non-owning — keep the backend
/// alive until the sweep finishes.
struct SweepJob {
  std::string label;
  graph::Instance instance;
  const backend::FakeBackend* dev = nullptr;
  core::ModelKind kind = core::ModelKind::Hybrid;
  core::RunConfig config;
  /// Fair-share scheduling metadata (see FairJobQueue): jobs of one tenant
  /// share that tenant's deficit-round-robin budget, scaled by `weight`;
  /// `priority` orders jobs within the tenant (higher first).
  std::string tenant = "default";
  int priority = 0;
  double weight = 1.0;
};

/// Multi-tenant sweep session: queue many run configurations onto one
/// shared EvalService and stream their results as futures. Every run's
/// optimizer candidates and every concurrent run share the service's
/// worker pool and compiled-block cache, so identical gate/pulse blocks
/// compile once for the whole grid. Results are bit-identical to running
/// each job alone, for any worker count (see run_qaoa's RNG contract).
class SweepRunner {
 public:
  struct Options {
    /// Worker threads of the underlying EvalService (0 = hardware).
    std::size_t num_workers = 0;
    /// LRU bound of the shared compiled-block cache.
    std::size_t cache_capacity = 8192;
    /// Non-empty = persistent compiled-block store for the whole grid: the
    /// shared cache warm-starts from it and every worker writes new
    /// compilations through, so a later sweep (or another host holding the
    /// file) starts warm. Jobs without their own RunConfig::block_store_path
    /// inherit this one.
    std::string block_store_path;
  };

  SweepRunner() : SweepRunner(Options{}) {}
  explicit SweepRunner(Options options);

  /// Queue one run; the future resolves when it finishes training. A
  /// default (0) RunConfig::executor_threads is forced to 1 — the pool is
  /// the parallelism; nesting a shot pool per worker would oversubscribe.
  /// Do not block on sweep futures from inside another pool job.
  ///
  /// JobRequest is the one submission schema shared with JobService::submit
  /// and the net wire front end (request.run carries the SweepJob). This is
  /// the raw future API: the job-layer fields JobService interprets
  /// (deadline) are ignored here, and run.dev must be set — the backend
  /// *name* field exists for wire transport, where net::Server resolves it.
  std::future<core::RunResult> submit(JobRequest request);

  /// Queue all requests, wait, and return results in submission order.
  std::vector<core::RunResult> run_all(std::vector<JobRequest> requests);

  /// Pre-JobRequest per-field overloads, kept as thin adapters so old call
  /// sites keep compiling (with a warning) while they migrate.
  [[deprecated("wrap the SweepJob in a serve::JobRequest — the unified submission API")]]
  std::future<core::RunResult> submit(SweepJob job);
  [[deprecated("wrap the SweepJobs in serve::JobRequests — the unified submission API")]]
  std::vector<core::RunResult> run_all(std::vector<SweepJob> jobs);

  EvalService& service() { return service_; }
  /// Thin adapter over the shared cache's registry-backed counters (the
  /// "block_cache.*" series carries the same numbers process-wide).
  BlockCache::Stats cache_stats() const { return service_.cache_stats(); }

 private:
  /// Shared implementation behind both overload families.
  std::future<core::RunResult> submit_job(SweepJob job);

  EvalService service_;
  /// "sweep.*" series: jobs completed and per-job wall-clock latency.
  obs::Counter* jobs_completed_;
  obs::Histogram* job_ns_;
};

}  // namespace hgp::serve
