#pragma once

#include "common/error.hpp"
#include "serve/job.hpp"
#include "serve/sweep.hpp"

namespace hgp::serve {

/// Hard caps the validator enforces before any executor is constructed.
/// The register caps mirror Executor::compile_program's per-engine limits
/// (statevector trajectories to 14 touched qubits, the exact density engine
/// to 10); the shot/evaluation caps bound the work a single job may claim so
/// an absurd request cannot occupy a worker for hours.
inline constexpr std::size_t kMaxTrajectoryQubits = 14;
inline constexpr std::size_t kMaxDensityQubits = 10;
inline constexpr std::size_t kMaxShots = std::size_t{1} << 26;  // 67M
inline constexpr int kMaxEvaluations = 1 << 20;
inline constexpr std::size_t kMaxLanes = 4096;

/// Validate a run request without touching a backend, model, or executor.
/// Returns {None, ""} when the job is well-formed; otherwise the first
/// failed check's structured code and a human-readable message. Checks are
/// ordered cheapest-first and stop at the first failure, so the verdict for
/// a given request is deterministic.
JobError validate_job(const SweepJob& job);

/// Exception form for the future-based SweepRunner API: carries the
/// structured code alongside the message.
class JobValidationError : public Error {
 public:
  explicit JobValidationError(JobError error)
      : Error("job validation failed [" + job_error_code_name(error.code) +
              "]: " + error.message),
        error_(std::move(error)) {}
  const JobError& error() const { return error_; }

 private:
  JobError error_;
};

}  // namespace hgp::serve
