#pragma once

#include <atomic>
#include <chrono>
#include <condition_variable>
#include <deque>
#include <functional>
#include <future>
#include <list>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <type_traits>
#include <unordered_map>
#include <vector>

#include "obs/metrics.hpp"
#include "obs/obs.hpp"
#include "optimize/batch.hpp"
#include "serve/block_cache.hpp"

namespace hgp::serve {

/// Weighted-fair job queue: per-tenant FIFO/priority queues served by
/// deficit round-robin, so one tenant's 1000-job sweep cannot starve another
/// tenant's single run — tenant t drains jobs in proportion to its weight
/// while backlogged, and an idle tenant accumulates no credit. Within a
/// tenant, higher priority runs first; equal priorities keep submission
/// order. Not internally synchronized: EvalService guards it with its queue
/// mutex. Pop order is fully deterministic for a given push sequence.
class FairJobQueue {
 public:
  void push(const std::string& tenant, double weight, int priority,
            std::function<void()> task);
  /// Next task under deficit round-robin; false when empty.
  bool pop(std::function<void()>& out);
  std::size_t size() const { return size_; }
  bool empty() const { return size_ == 0; }
  std::size_t tenant_count() const { return tenants_.size(); }

 private:
  struct Tenant {
    double weight = 1.0;
    /// DRR credit: topped up by `weight` once per round-robin stop, spent 1
    /// per job served. Cleared when the tenant drains.
    double deficit = 0.0;
    /// True while this tenant is the ring cursor's current stop and has
    /// already received this stop's top-up.
    bool topped_up = false;
    /// Priority buckets, higher first; FIFO within a bucket.
    std::map<int, std::deque<std::function<void()>>, std::greater<int>> buckets;
    std::size_t count = 0;
  };

  std::unordered_map<std::string, Tenant> tenants_;
  /// Backlogged tenants in round-robin order; drained tenants drop out (and
  /// forfeit their remaining deficit).
  std::vector<std::string> ring_;
  std::size_t cursor_ = 0;
  std::size_t size_ = 0;
};

/// The batched evaluation service: one worker pool plus one shared
/// compiled-block cache serving many concurrent VQA workloads — gate blocks
/// and pulse blocks alike, so concurrent hybrid runs share compiled pulse
/// mixers at repeated candidate angles (per-kind traffic visible via
/// cache_stats()).
///
/// Two kinds of work flow through it:
///   - *candidate batches* (opt::BatchDispatcher::run): the independent
///     objective evaluations an optimizer iteration produces. The submitting
///     thread helps drain the candidate queue while it waits, so a batch
///     submitted from inside a pool job can never deadlock the pool.
///   - *jobs* (submit): long-lived run-level tasks (one SweepRunner run
///     each), returned as futures. Workers prefer candidates over jobs, so
///     in-flight runs finish their evaluations before new runs start.
///
/// Determinism: the service only changes *where* tasks execute, never what
/// they compute — callers key every stochastic input to a candidate's index
/// (Rng::child streams), so any worker count yields bit-identical results.
class EvalService : public opt::BatchDispatcher {
 public:
  struct Options {
    /// Worker threads (0 = hardware concurrency). With an adaptive pool
    /// (max_workers > 0) this is the *initial* size, clamped into
    /// [min_workers, max_workers].
    std::size_t num_workers = 0;
    /// LRU bound of the shared compiled-block cache.
    std::size_t cache_capacity = 4096;
    /// Non-empty = persistent compiled-block store shared by every run on
    /// this service. The attach (load + write-through) happens lazily by the
    /// first executor that runs — the store's backend fingerprint comes from
    /// the device, which the service itself never sees.
    std::string block_store_path;
    /// Adaptive pool: when max_workers > 0 a manager thread re-sizes the
    /// pool against the queue-depth/utilization signals the service already
    /// maintains — each adapt_interval tick with work still queued spawns
    /// workers (up to max_workers), and a sustained idle queue retires one
    /// (down to min_workers; a worker only retires when both queues are
    /// empty, never mid-task). 0 = fixed pool of num_workers. Re-sizing
    /// changes only where tasks run, never what they compute, so results
    /// stay bit-identical while the pool breathes.
    std::size_t min_workers = 1;
    std::size_t max_workers = 0;
    std::chrono::milliseconds adapt_interval{25};
  };

  EvalService() : EvalService(Options{}) {}
  explicit EvalService(Options options);
  ~EvalService() override;

  EvalService(const EvalService&) = delete;
  EvalService& operator=(const EvalService&) = delete;

  /// Workers currently alive (retired workers leave this count the moment
  /// they exit). Fixed pools never change it; adaptive pools breathe between
  /// min_workers and max_workers.
  std::size_t num_workers() const { return alive_count_.load(std::memory_order_acquire); }
  /// Pool grow/shrink event counts since construction (adaptive mode).
  std::size_t pool_grow_events() const { return grow_events_.load(std::memory_order_acquire); }
  std::size_t pool_shrink_events() const { return shrink_events_.load(std::memory_order_acquire); }

  /// The process-wide compiled-block cache shared by every executor running
  /// on this service (inject via ExecutorOptions::block_cache).
  const std::shared_ptr<BlockCache>& block_cache() const { return cache_; }
  BlockCache::Stats cache_stats() const { return cache_->stats(); }
  /// Configured persistent-store path ("" = in-memory only). Runs submitted
  /// without their own store path inherit this one.
  const std::string& block_store_path() const { return block_store_path_; }

  /// opt::BatchDispatcher: run all candidate tasks, possibly in parallel,
  /// and return when every one has finished. The first exception thrown by a
  /// task of this batch is rethrown here.
  void run(std::vector<std::function<void()>>& tasks) override;

  /// Scheduling metadata of one queued job. Jobs of one tenant share that
  /// tenant's deficit-round-robin budget; `weight` scales it (last submit
  /// wins), `priority` orders jobs within the tenant (higher first).
  struct SubmitOptions {
    std::string tenant = "default";
    double weight = 1.0;
    int priority = 0;
  };

  /// Queue a bare task on the fair job queue (no future). The job layer
  /// uses this — it tracks completion through its own Job promise.
  void post(const SubmitOptions& options, std::function<void()> task);

  /// Queue a job on the pool and get its future.
  template <typename F>
  auto submit(F job) -> std::future<std::invoke_result_t<F>> {
    return submit(SubmitOptions{}, std::move(job));
  }
  template <typename F>
  auto submit(const SubmitOptions& options, F job) -> std::future<std::invoke_result_t<F>> {
    using R = std::invoke_result_t<F>;
    auto task = std::make_shared<std::packaged_task<R()>>(std::move(job));
    std::future<R> future = task->get_future();
    post(options, [task] { (*task)(); });
    return future;
  }

  /// Jobs currently queued (excludes candidates and running jobs).
  std::size_t queued_jobs() const;

 private:
  /// One in-flight candidate batch: tasks decrement `remaining`; the first
  /// failure is captured for the submitting thread.
  struct Batch {
    std::size_t remaining = 0;
    std::exception_ptr error;
  };

  /// One pool thread. The slot outlives the thread (it lives in workers_
  /// until the manager or destructor reaps it); `exited` flips once the
  /// thread is past its last touch of service state, so a join on it never
  /// blocks behind pool work.
  struct WorkerSlot {
    std::thread thread;
    std::atomic<bool> exited{false};
  };

  void worker_loop(WorkerSlot* slot);
  /// Adaptive-mode manager: re-sizes the pool each adapt_interval tick and
  /// reaps exited worker threads.
  void manager_loop();
  /// Start one worker. Caller holds mutex_.
  void spawn_worker();
  /// Pop one task under `lock` (candidates first, then jobs — jobs only when
  /// `jobs_too`), run it unlocked. False when both queues are empty.
  bool run_one(std::unique_lock<std::mutex>& lock, bool jobs_too);

  /// Process-wide "service.*" series (resolved once at construction):
  /// queue depth, candidate/job enqueue-to-dequeue wait, worker busy/idle
  /// nanoseconds (utilization = busy / (busy + idle)), and helping steals
  /// (candidates the submitting thread drained itself while waiting on its
  /// own batch).
  struct Metrics {
    obs::Counter* candidates_submitted;
    obs::Counter* jobs_submitted;
    obs::Counter* helping_steals;
    obs::Counter* worker_busy_ns;
    obs::Counter* worker_idle_ns;
    obs::Counter* pool_grows;
    obs::Counter* pool_shrinks;
    obs::Gauge* queue_depth;
    obs::Gauge* workers;
    obs::Histogram* candidate_wait_ns;
    obs::Histogram* job_wait_ns;
  };
  Metrics metrics_;

  std::shared_ptr<BlockCache> cache_;
  std::string block_store_path_;
  mutable std::mutex mutex_;
  std::condition_variable cv_;
  std::deque<std::function<void()>> candidates_;
  /// Per-tenant weighted-fair job queue (was a plain FIFO deque; the DRR
  /// ring keeps heavy tenants from starving light ones).
  FairJobQueue jobs_;
  bool stop_ = false;
  /// Worker slots; a std::list so slot addresses stay stable while the pool
  /// grows and shrinks. Guarded by mutex_.
  std::list<WorkerSlot> workers_;
  /// Workers alive (mutex_-guarded master copy + lock-free mirror).
  std::size_t alive_workers_ = 0;
  std::atomic<std::size_t> alive_count_{0};
  /// Pending retirements: an idle worker that sees one decrements it and
  /// exits. Guarded by mutex_.
  std::size_t retire_requests_ = 0;
  std::atomic<std::size_t> grow_events_{0};
  std::atomic<std::size_t> shrink_events_{0};
  /// Adaptive bounds ([min, max]; max == 0 means fixed) and tick length.
  std::size_t min_workers_ = 1;
  std::size_t max_workers_ = 0;
  std::chrono::milliseconds adapt_interval_{25};
  std::thread manager_;
};

}  // namespace hgp::serve
