#pragma once

#include <condition_variable>
#include <deque>
#include <functional>
#include <future>
#include <memory>
#include <mutex>
#include <thread>
#include <type_traits>
#include <vector>

#include "obs/metrics.hpp"
#include "obs/obs.hpp"
#include "optimize/batch.hpp"
#include "serve/block_cache.hpp"

namespace hgp::serve {

/// The batched evaluation service: one worker pool plus one shared
/// compiled-block cache serving many concurrent VQA workloads — gate blocks
/// and pulse blocks alike, so concurrent hybrid runs share compiled pulse
/// mixers at repeated candidate angles (per-kind traffic visible via
/// cache_stats()).
///
/// Two kinds of work flow through it:
///   - *candidate batches* (opt::BatchDispatcher::run): the independent
///     objective evaluations an optimizer iteration produces. The submitting
///     thread helps drain the candidate queue while it waits, so a batch
///     submitted from inside a pool job can never deadlock the pool.
///   - *jobs* (submit): long-lived run-level tasks (one SweepRunner run
///     each), returned as futures. Workers prefer candidates over jobs, so
///     in-flight runs finish their evaluations before new runs start.
///
/// Determinism: the service only changes *where* tasks execute, never what
/// they compute — callers key every stochastic input to a candidate's index
/// (Rng::child streams), so any worker count yields bit-identical results.
class EvalService : public opt::BatchDispatcher {
 public:
  struct Options {
    /// Worker threads (0 = hardware concurrency).
    std::size_t num_workers = 0;
    /// LRU bound of the shared compiled-block cache.
    std::size_t cache_capacity = 4096;
    /// Non-empty = persistent compiled-block store shared by every run on
    /// this service. The attach (load + write-through) happens lazily by the
    /// first executor that runs — the store's backend fingerprint comes from
    /// the device, which the service itself never sees.
    std::string block_store_path;
  };

  EvalService() : EvalService(Options{}) {}
  explicit EvalService(Options options);
  ~EvalService() override;

  EvalService(const EvalService&) = delete;
  EvalService& operator=(const EvalService&) = delete;

  std::size_t num_workers() const { return workers_.size(); }

  /// The process-wide compiled-block cache shared by every executor running
  /// on this service (inject via ExecutorOptions::block_cache).
  const std::shared_ptr<BlockCache>& block_cache() const { return cache_; }
  BlockCache::Stats cache_stats() const { return cache_->stats(); }
  /// Configured persistent-store path ("" = in-memory only). Runs submitted
  /// without their own store path inherit this one.
  const std::string& block_store_path() const { return block_store_path_; }

  /// opt::BatchDispatcher: run all candidate tasks, possibly in parallel,
  /// and return when every one has finished. The first exception thrown by a
  /// task of this batch is rethrown here.
  void run(std::vector<std::function<void()>>& tasks) override;

  /// Queue a job on the pool and get its future.
  template <typename F>
  auto submit(F job) -> std::future<std::invoke_result_t<F>> {
    using R = std::invoke_result_t<F>;
    auto task = std::make_shared<std::packaged_task<R()>>(std::move(job));
    std::future<R> future = task->get_future();
    // Enqueue timestamp only when telemetry is live — the disabled path
    // never touches the clock.
    const std::uint64_t t_enq = obs::enabled() ? obs::now_ns() : 0;
    {
      const std::lock_guard<std::mutex> lock(mutex_);
      jobs_.push_back([this, task, t_enq] {
        if (t_enq != 0) metrics_.job_wait_ns->record(obs::now_ns() - t_enq);
        (*task)();
      });
      metrics_.jobs_submitted->inc();
      metrics_.queue_depth->set(static_cast<std::int64_t>(candidates_.size() + jobs_.size()));
    }
    cv_.notify_all();
    return future;
  }

 private:
  /// One in-flight candidate batch: tasks decrement `remaining`; the first
  /// failure is captured for the submitting thread.
  struct Batch {
    std::size_t remaining = 0;
    std::exception_ptr error;
  };

  void worker_loop();
  /// Pop one task under `lock` (candidates first, then jobs — jobs only when
  /// `jobs_too`), run it unlocked. False when both queues are empty.
  bool run_one(std::unique_lock<std::mutex>& lock, bool jobs_too);

  /// Process-wide "service.*" series (resolved once at construction):
  /// queue depth, candidate/job enqueue-to-dequeue wait, worker busy/idle
  /// nanoseconds (utilization = busy / (busy + idle)), and helping steals
  /// (candidates the submitting thread drained itself while waiting on its
  /// own batch).
  struct Metrics {
    obs::Counter* candidates_submitted;
    obs::Counter* jobs_submitted;
    obs::Counter* helping_steals;
    obs::Counter* worker_busy_ns;
    obs::Counter* worker_idle_ns;
    obs::Gauge* queue_depth;
    obs::Gauge* workers;
    obs::Histogram* candidate_wait_ns;
    obs::Histogram* job_wait_ns;
  };
  Metrics metrics_;

  std::shared_ptr<BlockCache> cache_;
  std::string block_store_path_;
  std::mutex mutex_;
  std::condition_variable cv_;
  std::deque<std::function<void()>> candidates_;
  std::deque<std::function<void()>> jobs_;
  bool stop_ = false;
  std::vector<std::thread> workers_;
};

}  // namespace hgp::serve
