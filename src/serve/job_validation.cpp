#include "serve/job_validation.hpp"

#include <cmath>

namespace hgp::serve {

namespace {

JobError fail(JobErrorCode code, std::string message) {
  return JobError{code, std::move(message)};
}

std::string label_of(const SweepJob& job) {
  return job.label.empty() ? std::string("<unnamed>") : job.label;
}

}  // namespace

JobError validate_job(const SweepJob& job) {
  const std::string label = label_of(job);
  const core::RunConfig& cfg = job.config;

  // Scheduling metadata first: a malformed tenant tag would corrupt the
  // fair-share accounting before the run itself is even looked at.
  if (job.tenant.empty())
    return fail(JobErrorCode::BadTenant, label + ": empty tenant tag");
  if (!(job.weight > 0.0) || !std::isfinite(job.weight))
    return fail(JobErrorCode::BadTenant,
                label + ": fair-share weight must be positive and finite");

  if (job.dev == nullptr)
    return fail(JobErrorCode::NullBackend, label + ": job has no backend");

  const std::size_t n = job.instance.graph.num_vertices();
  if (n == 0)
    return fail(JobErrorCode::EmptyInstance, label + ": zero-vertex instance");
  if (job.instance.graph.num_edges() == 0)
    return fail(JobErrorCode::EmptyInstance, label + ": instance has no edges");

  // Engine string before the engine-dependent register cap.
  const bool density = cfg.engine == "density";
  if (!density && cfg.engine != "trajectory")
    return fail(JobErrorCode::BadEngine, label + ": unknown engine '" + cfg.engine + "'");
  const std::size_t cap = density ? kMaxDensityQubits : kMaxTrajectoryQubits;
  if (n > cap)
    return fail(JobErrorCode::TooManyQubits,
                label + ": " + std::to_string(n) + "-vertex instance exceeds the " +
                    cfg.engine + " engine's " + std::to_string(cap) + "-qubit register cap");
  if (job.dev->num_qubits() < n)
    return fail(JobErrorCode::BackendTooSmall,
                label + ": instance needs " + std::to_string(n) + " qubits but backend '" +
                    job.dev->name() + "' has " + std::to_string(job.dev->num_qubits()));

  if (cfg.objective != "sample" && cfg.objective != "expectation" && cfg.objective != "cvar")
    return fail(JobErrorCode::BadObjective,
                label + ": unknown objective '" + cfg.objective + "'");
  if (cfg.m3 && cfg.objective != "sample")
    return fail(JobErrorCode::IncompatibleM3,
                label + ": M3 mitigation operates on sampled counts — use the 'sample' "
                        "objective");

  if (cfg.optimizer != "cobyla" && cfg.optimizer != "spsa" && cfg.optimizer != "neldermead")
    return fail(JobErrorCode::BadOptimizer,
                label + ": unknown optimizer '" + cfg.optimizer + "'");

  if (cfg.shots == 0 || cfg.shots > kMaxShots)
    return fail(JobErrorCode::BadShots,
                label + ": shot count " + std::to_string(cfg.shots) + " outside [1, " +
                    std::to_string(kMaxShots) + "]");
  if (cfg.m3 && (cfg.calibration_shots == 0 || cfg.calibration_shots > kMaxShots))
    return fail(JobErrorCode::BadShots,
                label + ": calibration shot count " + std::to_string(cfg.calibration_shots) +
                    " outside [1, " + std::to_string(kMaxShots) + "]");

  if (cfg.max_evaluations < 1 || cfg.max_evaluations > kMaxEvaluations)
    return fail(JobErrorCode::BadEvaluations,
                label + ": optimizer budget " + std::to_string(cfg.max_evaluations) +
                    " outside [1, " + std::to_string(kMaxEvaluations) + "]");

  if (cfg.shot_batch_lanes > kMaxLanes || cfg.candidate_lanes > kMaxLanes)
    return fail(JobErrorCode::BadLanes,
                label + ": lane width exceeds " + std::to_string(kMaxLanes));
  if (cfg.executor_threads > kMaxLanes)
    return fail(JobErrorCode::BadLanes,
                label + ": executor thread count exceeds " + std::to_string(kMaxLanes));

  const bool uses_cvar = cfg.cvar || cfg.objective == "cvar";
  if (uses_cvar && !(cfg.cvar_alpha > 0.0 && cfg.cvar_alpha <= 1.0))
    return fail(JobErrorCode::BadCvarAlpha,
                label + ": cvar_alpha must lie in (0, 1]");

  if (cfg.model.p < 1)
    return fail(JobErrorCode::BadModel, label + ": model depth p must be >= 1");
  if (job.kind != core::ModelKind::GateLevel && cfg.model.mixer_duration_dt < 1)
    return fail(JobErrorCode::BadModel,
                label + ": mixer pulse duration must be >= 1 dt");

  return {};
}

}  // namespace hgp::serve
