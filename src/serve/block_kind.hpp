#pragma once

namespace hgp::serve {

/// What kind of program step a cached block was compiled from. Gate blocks
/// key on (gate kind, qubits, exact parameters, schedule duration); pulse
/// blocks key on the physical qubits plus the schedule's content
/// fingerprint; fused blocks (the timeline fusion pass's composed unitaries)
/// key on the concatenation of their constituents' structure keys. The cache
/// treats all kinds uniformly — the kind only routes the per-kind hit/miss
/// accounting (and tags the on-disk store records), so a sweep's stats show
/// whether the expensive pulse-ODE compilations (the hybrid model's
/// trainable mixer layers) and the fusion matmuls are actually being shared.
enum class BlockKind { Gate, Pulse, Fused };

}  // namespace hgp::serve
