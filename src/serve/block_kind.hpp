#pragma once

namespace hgp::serve {

/// What kind of program step a cached block was compiled from. Gate blocks
/// key on (gate kind, qubits, exact parameters, schedule duration); pulse
/// blocks key on the physical qubits plus the schedule's content
/// fingerprint. The cache treats both uniformly — the kind only routes the
/// per-kind hit/miss accounting (and tags the on-disk store records), so a
/// sweep's stats show whether the expensive pulse-ODE compilations (the
/// hybrid model's trainable mixer layers) are actually being shared.
enum class BlockKind { Gate, Pulse };

}  // namespace hgp::serve
