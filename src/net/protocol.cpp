#include "net/protocol.hpp"

#include <array>

namespace hgp::net {

const std::string& wire_status_name(WireStatus status) {
  static const std::array<std::string, 10> names = {
      "ok",           "eof",          "bad_magic",      "bad_version",
      "frame_too_large", "bad_checksum", "bad_payload",    "hello_required",
      "unauthenticated", "unknown_type"};
  static const std::string unknown = "unknown";
  const auto i = static_cast<std::size_t>(status);
  return i < names.size() ? names[i] : unknown;
}

bool wire_status_recoverable(WireStatus status) {
  switch (status) {
    case WireStatus::Ok:
    case WireStatus::BadChecksum:
    case WireStatus::BadPayload:
    case WireStatus::HelloRequired:
    case WireStatus::Unauthenticated:
    case WireStatus::UnknownType:
      return true;
    case WireStatus::Eof:
    case WireStatus::BadMagic:
    case WireStatus::BadVersion:
    case WireStatus::FrameTooLarge:
      return false;
  }
  return false;
}

std::string encode_frame(FrameType type, const std::string& payload) {
  std::string out;
  out.reserve(kFrameHeaderBytes + payload.size());
  io::Writer w(out);
  w.u32(kMagic);
  w.u32(kProtocolVersion);
  w.u8(static_cast<std::uint8_t>(type));
  w.u32(static_cast<std::uint32_t>(payload.size()));
  w.u64(io::fnv1a(payload));
  out.append(payload);
  return out;
}

ReadResult read_frame(Socket& sock, std::size_t max_frame_bytes) {
  ReadResult result;
  char header[kFrameHeaderBytes];
  if (!sock.read_exact(header, sizeof header)) {
    result.status = WireStatus::Eof;
    return result;
  }
  io::Reader r(header, sizeof header);
  std::uint32_t magic = 0, version = 0, length = 0;
  std::uint8_t type = 0;
  std::uint64_t checksum = 0;
  r.u32(magic);
  r.u32(version);
  r.u8(type);
  r.u32(length);
  r.u64(checksum);
  if (magic != kMagic) {
    result.status = WireStatus::BadMagic;
    return result;
  }
  if (version != kProtocolVersion) {
    result.status = WireStatus::BadVersion;
    return result;
  }
  if (length > max_frame_bytes) {
    result.status = WireStatus::FrameTooLarge;
    return result;
  }
  result.frame.type = static_cast<FrameType>(type);
  result.frame.payload.resize(length);
  if (length > 0 && !sock.read_exact(result.frame.payload.data(), length))
    throw NetError("connection closed mid-frame payload");
  if (io::fnv1a(result.frame.payload) != checksum) {
    // The length prefix was honored, so the stream stays frame-aligned;
    // drop the corrupt payload and let the session continue.
    result.frame.payload.clear();
    result.status = WireStatus::BadChecksum;
    return result;
  }
  return result;
}

void write_frame(Socket& sock, FrameType type, const std::string& payload) {
  sock.write_all(encode_frame(type, payload));
}

}  // namespace hgp::net
