#pragma once

#include <cstdint>
#include <functional>
#include <future>
#include <optional>
#include <string>

#include "net/protocol.hpp"
#include "net/socket.hpp"
#include "serve/job.hpp"

namespace hgp::net {

/// Client side of the HGPN wire protocol: one TCP connection, one session.
/// Construction connects and performs the Hello handshake (token → tenant);
/// every method is then a blocking request/response exchange on that
/// connection. A Client is not thread-safe — it is one ordered conversation.
/// For concurrent or future-returning use, open more clients (run_async
/// below opens its own connection per job, the wire analogue of
/// SweepRunner::submit's future).
///
/// Submission takes the same serve::JobRequest that JobService::submit takes
/// in process — the request is serialized with its schema version, validated
/// on the server by the same validate_job, and trains bit-identically.
/// SweepJob::dev cannot cross the socket: set JobRequest::backend to a
/// preset name (or leave run.dev set locally — its name() is sent).
///
/// Protocol-level rejections the session survives (bad payload, unknown
/// token) surface as NetError exceptions carrying the server's status name;
/// job-level rejections are ordinary Submitted/JobOutcome values.
class Client {
 public:
  struct Options {
    std::string host = "127.0.0.1";
    std::uint16_t port = 0;
    /// Authn-lite token (see Server::Options::tokens). Ignored by an open
    /// server.
    std::string token;
    std::size_t max_frame_bytes = kDefaultMaxFrameBytes;
  };

  explicit Client(Options options);
  Client(const std::string& host, std::uint16_t port, const std::string& token = "")
      : Client(Options{host, port, token, kDefaultMaxFrameBytes}) {}

  Client(Client&&) = default;
  Client& operator=(Client&&) = default;

  /// Tenant the server resolved this session's token to (empty on an open
  /// server: submitted jobs keep their own tenant field).
  const std::string& tenant() const { return tenant_; }

  /// Submit-time verdict, mirroring serve::JobHandle minus the future (the
  /// outcome lives server-side; fetch it with await/watch/poll).
  struct Submitted {
    serve::JobId id = 0;
    serve::JobState state = serve::JobState::Rejected;
    serve::JobError error;

    bool accepted() const { return state == serve::JobState::Queued; }
  };

  /// Validate-and-queue one job on the server. Rejections (validation,
  /// admission, unknown backend name) come back as Submitted with a terminal
  /// state and structured error — never an exception.
  Submitted submit(const serve::JobRequest& request);

  /// Current lifecycle state (nullopt once the server pruned the job or the
  /// id was never known).
  std::optional<serve::JobState> poll(serve::JobId id);

  /// Request cooperative cancellation; false when the job is unknown or
  /// already terminal.
  bool cancel(serve::JobId id);

  /// Block until the job is terminal and return its outcome (nullopt for an
  /// unknown id). The result doubles are bit-identical to the in-process
  /// outcome.
  std::optional<serve::JobOutcome> await(serve::JobId id);

  /// Stream state transitions (on_state fires per transition, starting with
  /// the current state) until terminal, then return the outcome.
  std::optional<serve::JobOutcome> watch(serve::JobId id,
                                         const std::function<void(serve::JobState)>& on_state);

  /// Prometheus exposition text over the binary protocol (same text the
  /// HTTP GET endpoint serves).
  std::string scrape();

  /// Submit on a dedicated connection and resolve the future with the
  /// terminal outcome — the future-returning submission API. A rejected
  /// submit resolves immediately with the rejection outcome.
  static std::future<serve::JobOutcome> run_async(Options options,
                                                  serve::JobRequest request);

  void close() { sock_.close(); }

 private:
  /// One request/response exchange. Retries past Error frames only when the
  /// status is a recoverable complaint about *this* request — which is a
  /// protocol bug worth throwing on anyway — so in practice: write, read,
  /// throw on Error, return the expected frame.
  Frame rpc(FrameType type, const std::string& payload, FrameType expect);

  Options options_;
  Socket sock_;
  std::string tenant_;
};

}  // namespace hgp::net
