#include "net/client.hpp"

#include <thread>
#include <utility>

namespace hgp::net {

namespace {

std::string put_u64(std::uint64_t v) {
  std::string out;
  io::Writer w(out);
  w.u64(v);
  return out;
}

[[noreturn]] void throw_error_frame(const Frame& frame) {
  io::Reader r(frame.payload);
  std::int32_t status = 0;
  std::string message;
  r.i32(status);
  r.str(message);
  throw NetError("server error [" +
                 wire_status_name(static_cast<WireStatus>(status)) + "]: " + message);
}

}  // namespace

Client::Client(Options options) : options_(std::move(options)) {
  sock_ = Socket::connect(options_.host, options_.port);
  std::string payload;
  io::Writer w(payload);
  w.str(options_.token);
  const Frame reply = rpc(FrameType::Hello, payload, FrameType::HelloOk);
  io::Reader r(reply.payload);
  std::uint32_t schema = 0;
  if (!r.u32(schema) || !r.str(tenant_) || !r.ok())
    throw NetError("malformed hello reply");
  if (schema != serve::JobRequest::kSchemaVersion)
    throw NetError("server speaks job schema v" + std::to_string(schema) +
                   ", this client speaks v" +
                   std::to_string(serve::JobRequest::kSchemaVersion));
}

Frame Client::rpc(FrameType type, const std::string& payload, FrameType expect) {
  write_frame(sock_, type, payload);
  for (;;) {
    ReadResult in = read_frame(sock_, options_.max_frame_bytes);
    if (in.status == WireStatus::Eof) throw NetError("server closed the connection");
    if (in.status != WireStatus::Ok)
      throw NetError("bad frame from server: " + wire_status_name(in.status));
    if (in.frame.type == FrameType::Error) throw_error_frame(in.frame);
    if (in.frame.type == expect) return std::move(in.frame);
    throw NetError("unexpected reply frame type " +
                   std::to_string(static_cast<int>(in.frame.type)));
  }
}

Client::Submitted Client::submit(const serve::JobRequest& request) {
  const Frame reply = rpc(FrameType::Submit, request.serialize(), FrameType::SubmitReply);
  io::Reader r(reply.payload);
  std::uint64_t id = 0;
  std::uint8_t state = 0;
  std::int32_t code = 0;
  std::string message;
  if (!r.u64(id) || !r.u8(state) || !r.i32(code) || !r.str(message) || !r.ok())
    throw NetError("malformed submit reply");
  Submitted out;
  out.id = id;
  out.state = static_cast<serve::JobState>(state);
  out.error.code = static_cast<serve::JobErrorCode>(code);
  out.error.message = std::move(message);
  return out;
}

std::optional<serve::JobState> Client::poll(serve::JobId id) {
  const Frame reply = rpc(FrameType::Poll, put_u64(id), FrameType::PollReply);
  io::Reader r(reply.payload);
  std::uint8_t known = 0, state = 0;
  if (!r.u8(known) || !r.u8(state) || !r.ok()) throw NetError("malformed poll reply");
  if (!known) return std::nullopt;
  return static_cast<serve::JobState>(state);
}

bool Client::cancel(serve::JobId id) {
  const Frame reply = rpc(FrameType::Cancel, put_u64(id), FrameType::CancelReply);
  io::Reader r(reply.payload);
  std::uint8_t accepted = 0;
  if (!r.u8(accepted) || !r.ok()) throw NetError("malformed cancel reply");
  return accepted != 0;
}

namespace {

std::optional<serve::JobOutcome> parse_outcome(const Frame& frame) {
  io::Reader r(frame.payload);
  std::uint64_t id = 0;
  std::uint8_t known = 0;
  if (!r.u64(id) || !r.u8(known)) throw NetError("malformed outcome frame");
  if (!known) return std::nullopt;
  serve::JobOutcome outcome;
  if (!serve::JobOutcome::deserialize(r, outcome))
    throw NetError("malformed outcome payload");
  return outcome;
}

}  // namespace

std::optional<serve::JobOutcome> Client::await(serve::JobId id) {
  return parse_outcome(rpc(FrameType::Await, put_u64(id), FrameType::Outcome));
}

std::optional<serve::JobOutcome> Client::watch(
    serve::JobId id, const std::function<void(serve::JobState)>& on_state) {
  write_frame(sock_, FrameType::Watch, put_u64(id));
  for (;;) {
    ReadResult in = read_frame(sock_, options_.max_frame_bytes);
    if (in.status == WireStatus::Eof) throw NetError("server closed the connection");
    if (in.status != WireStatus::Ok)
      throw NetError("bad frame from server: " + wire_status_name(in.status));
    if (in.frame.type == FrameType::Error) throw_error_frame(in.frame);
    if (in.frame.type == FrameType::StateEvent) {
      io::Reader r(in.frame.payload);
      std::uint64_t event_id = 0;
      std::uint8_t state = 0;
      if (!r.u64(event_id) || !r.u8(state) || !r.ok())
        throw NetError("malformed state event");
      if (on_state) on_state(static_cast<serve::JobState>(state));
      continue;
    }
    if (in.frame.type == FrameType::Outcome) return parse_outcome(in.frame);
    throw NetError("unexpected frame type " +
                   std::to_string(static_cast<int>(in.frame.type)) + " during watch");
  }
}

std::string Client::scrape() {
  const Frame reply = rpc(FrameType::Scrape, std::string(), FrameType::ScrapeReply);
  io::Reader r(reply.payload);
  std::string text;
  if (!r.str(text) || !r.ok()) throw NetError("malformed scrape reply");
  return text;
}

std::future<serve::JobOutcome> Client::run_async(Options options,
                                                 serve::JobRequest request) {
  return std::async(std::launch::async, [options = std::move(options),
                                         request = std::move(request)]() {
    Client client(options);
    const Submitted submitted = client.submit(request);
    if (!submitted.accepted()) {
      serve::JobOutcome outcome;
      outcome.state = submitted.state;
      outcome.error = submitted.error;
      return outcome;
    }
    auto outcome = client.await(submitted.id);
    if (!outcome) throw NetError("job " + std::to_string(submitted.id) +
                                 " vanished before its outcome arrived");
    return *outcome;
  });
}

}  // namespace hgp::net
