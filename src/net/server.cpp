#include "net/server.hpp"

#include <cstring>
#include <utility>

namespace hgp::net {

namespace {

bool get_u64(const std::string& payload, std::uint64_t& v) {
  io::Reader r(payload);
  return r.u64(v) && r.ok();
}

}  // namespace

Server::Server(Options options)
    : options_(std::move(options)),
      service_(options_.service) {
  auto& reg = obs::Registry::global();
  metrics_.connections = &reg.counter("net.connections");
  metrics_.frames_rx = &reg.counter("net.frames_rx");
  metrics_.frames_tx = &reg.counter("net.frames_tx");
  metrics_.bad_frames = &reg.counter("net.bad_frames");
  metrics_.submits = &reg.counter("net.submits");
  metrics_.scrapes = &reg.counter("net.scrapes");
  metrics_.auth_failures = &reg.counter("net.auth_failures");
  metrics_.sessions_active = &reg.gauge("net.sessions_active");
  metrics_.frame_ns = &reg.histogram("net.frame_ns");
  listener_ = ListenSocket::open(options_.host, options_.port);
  acceptor_ = std::thread([this] { accept_loop(); });
}

Server::~Server() { stop(); }

void Server::stop() {
  if (stop_.exchange(true)) {
    if (acceptor_.joinable()) acceptor_.join();
    return;
  }
  listener_.shutdown();
  if (acceptor_.joinable()) acceptor_.join();
  {
    std::lock_guard<std::mutex> lock(sessions_mutex_);
    for (Session& s : sessions_) s.sock.shutdown_both();
  }
  // Sessions observe the shutdown (read returns EOF / writes fail) and exit;
  // join outside the lock so a session finishing right now can't deadlock.
  for (;;) {
    std::list<Session> finished;
    {
      std::lock_guard<std::mutex> lock(sessions_mutex_);
      if (sessions_.empty()) break;
      finished.splice(finished.begin(), sessions_);
    }
    for (Session& s : finished)
      if (s.thread.joinable()) s.thread.join();
  }
}

void Server::accept_loop() {
  while (!stop_.load(std::memory_order_acquire)) {
    Socket sock = listener_.accept();
    if (!sock.valid()) break;  // listener shut down
    metrics_.connections->inc();
    reap_sessions();
    std::lock_guard<std::mutex> lock(sessions_mutex_);
    if (stop_.load(std::memory_order_acquire)) break;
    sessions_.emplace_back();
    Session* session = &sessions_.back();
    session->sock = std::move(sock);
    metrics_.sessions_active->add(1);
    session->thread = std::thread([this, session] {
      run_session(session);
      // FIN the peer now; the fd itself is closed later at reap/stop (a
      // close here could race stop()'s shutdown over a reused descriptor).
      session->sock.shutdown_both();
      metrics_.sessions_active->add(-1);
      session->done.store(true, std::memory_order_release);
    });
  }
}

void Server::reap_sessions() {
  std::lock_guard<std::mutex> lock(sessions_mutex_);
  for (auto it = sessions_.begin(); it != sessions_.end();) {
    if (it->done.load(std::memory_order_acquire) && it->thread.joinable()) {
      it->thread.join();
      it = sessions_.erase(it);
    } else {
      ++it;
    }
  }
}

void Server::run_session(Session* session) {
  try {
    // One acceptor port, two protocols: peek the first bytes — an HTTP
    // request line means a Prometheus scrape, anything else must frame as
    // HGPN binary.
    char head[4] = {};
    const std::size_t seen = session->sock.peek(head, sizeof head);
    if (seen >= 3 && std::memcmp(head, "GET", 3) == 0) {
      serve_http(session->sock);
      return;
    }
    while (!stop_.load(std::memory_order_acquire)) {
      ReadResult in = read_frame(session->sock, options_.max_frame_bytes);
      if (in.status == WireStatus::Eof) return;
      metrics_.frames_rx->inc();
      if (in.status != WireStatus::Ok) {
        metrics_.bad_frames->inc();
        send_error(*session, in.status, wire_status_name(in.status));
        if (!wire_status_recoverable(in.status)) return;
        continue;  // frame dropped, stream still aligned — session lives
      }
      const auto t0 = std::chrono::steady_clock::now();
      const bool keep = handle_frame(*session, in.frame);
      metrics_.frame_ns->record(static_cast<std::uint64_t>(
          std::chrono::duration_cast<std::chrono::nanoseconds>(
              std::chrono::steady_clock::now() - t0)
              .count()));
      if (!keep) return;
    }
  } catch (const Error&) {
    // Peer vanished (reset, mid-frame close) or became unwritable. The
    // session ends; any job it submitted keeps running and its outcome stays
    // available through JobService::outcome for a later connection.
  }
}

bool Server::handle_frame(Session& session, const Frame& frame) {
  if (frame.type == FrameType::Hello) {
    io::Reader r(frame.payload);
    std::string token;
    if (!r.str(token) || !r.ok()) {
      metrics_.bad_frames->inc();
      send_error(session, WireStatus::BadPayload, "malformed hello");
      return true;
    }
    if (options_.tokens.empty()) {
      session.tenant.clear();  // open server: jobs keep their own tenant
    } else {
      const auto it = options_.tokens.find(token);
      if (it == options_.tokens.end()) {
        metrics_.auth_failures->inc();
        send_error(session, WireStatus::Unauthenticated, "unknown token");
        return true;  // session lives; a later Hello with a good token works
      }
      session.tenant = it->second;
    }
    session.authenticated = true;
    std::string payload;
    io::Writer w(payload);
    w.u32(serve::JobRequest::kSchemaVersion);
    w.str(session.tenant);
    write_frame(session.sock, FrameType::HelloOk, payload);
    metrics_.frames_tx->inc();
    return true;
  }

  if (!session.authenticated) {
    send_error(session, WireStatus::HelloRequired, "hello first");
    return true;
  }

  switch (frame.type) {
    case FrameType::Submit:
      handle_submit(session, frame);
      return true;
    case FrameType::Poll: {
      std::uint64_t id = 0;
      if (!get_u64(frame.payload, id)) {
        send_error(session, WireStatus::BadPayload, "malformed poll");
        return true;
      }
      const auto state = service_.state(id);
      std::string payload;
      io::Writer w(payload);
      w.u8(state.has_value() ? 1 : 0);
      w.u8(static_cast<std::uint8_t>(state.value_or(serve::JobState::Queued)));
      write_frame(session.sock, FrameType::PollReply, payload);
      metrics_.frames_tx->inc();
      return true;
    }
    case FrameType::Cancel: {
      std::uint64_t id = 0;
      if (!get_u64(frame.payload, id)) {
        send_error(session, WireStatus::BadPayload, "malformed cancel");
        return true;
      }
      const bool accepted = service_.cancel(id);
      std::string payload;
      io::Writer w(payload);
      w.u8(accepted ? 1 : 0);
      write_frame(session.sock, FrameType::CancelReply, payload);
      metrics_.frames_tx->inc();
      return true;
    }
    case FrameType::Await:
      handle_await(session, frame);
      return true;
    case FrameType::Watch:
      handle_watch(session, frame);
      return true;
    case FrameType::Scrape: {
      metrics_.scrapes->inc();
      std::string payload;
      io::Writer w(payload);
      w.str(obs::Registry::global().to_prometheus());
      write_frame(session.sock, FrameType::ScrapeReply, payload);
      metrics_.frames_tx->inc();
      return true;
    }
    default:
      metrics_.bad_frames->inc();
      send_error(session, WireStatus::UnknownType, "unknown frame type");
      return true;
  }
}

void Server::handle_submit(Session& session, const Frame& frame) {
  serve::JobRequest request;
  io::Reader r(frame.payload);
  if (!serve::JobRequest::deserialize(r, request)) {
    metrics_.bad_frames->inc();
    send_error(session, WireStatus::BadPayload, "malformed job request");
    return;
  }
  // Token-derived tenant wins over whatever the client wrote: fair shares
  // are per credential, not per self-declared tenant string.
  if (!session.tenant.empty()) request.run.tenant = session.tenant;
  std::string payload;
  io::Writer w(payload);
  request.run.dev = resolve_backend(request.backend);
  if (request.run.dev == nullptr) {
    w.u64(0);
    w.u8(static_cast<std::uint8_t>(serve::JobState::Rejected));
    w.i32(static_cast<std::int32_t>(serve::JobErrorCode::NullBackend));
    w.str("unknown backend '" + request.backend + "'");
  } else {
    metrics_.submits->inc();
    const serve::JobHandle handle = service_.submit(std::move(request));
    w.u64(handle.id);
    w.u8(static_cast<std::uint8_t>(handle.submit_state));
    w.i32(static_cast<std::int32_t>(handle.submit_error.code));
    w.str(handle.submit_error.message);
  }
  write_frame(session.sock, FrameType::SubmitReply, payload);
  metrics_.frames_tx->inc();
}

void Server::handle_await(Session& session, const Frame& frame) {
  std::uint64_t id = 0;
  if (!get_u64(frame.payload, id)) {
    send_error(session, WireStatus::BadPayload, "malformed await");
    return;
  }
  const auto future = service_.outcome(id);
  std::string payload;
  io::Writer w(payload);
  w.u64(id);
  if (!future) {
    w.u8(0);
    write_frame(session.sock, FrameType::Outcome, payload);
    metrics_.frames_tx->inc();
    return;
  }
  // Wait in slices so a stopping server never hangs on a long job; on stop
  // the session just ends and the outcome stays retained in the service.
  while (!stop_.load(std::memory_order_acquire)) {
    if (future->wait_for(options_.watch_interval) == std::future_status::ready) {
      w.u8(1);
      future->get().serialize(w);
      write_frame(session.sock, FrameType::Outcome, payload);
      metrics_.frames_tx->inc();
      return;
    }
  }
}

void Server::handle_watch(Session& session, const Frame& frame) {
  std::uint64_t id = 0;
  if (!get_u64(frame.payload, id)) {
    send_error(session, WireStatus::BadPayload, "malformed watch");
    return;
  }
  auto last = service_.state(id);
  if (!last) {
    std::string payload;
    io::Writer w(payload);
    w.u64(id);
    w.u8(0);
    write_frame(session.sock, FrameType::Outcome, payload);
    metrics_.frames_tx->inc();
    return;
  }
  auto emit_state = [&](serve::JobState s) {
    std::string payload;
    io::Writer w(payload);
    w.u64(id);
    w.u8(static_cast<std::uint8_t>(s));
    write_frame(session.sock, FrameType::StateEvent, payload);
    metrics_.frames_tx->inc();
  };
  emit_state(*last);
  while (!stop_.load(std::memory_order_acquire)) {
    const auto now = service_.state(id);
    if (now && now != last) {
      emit_state(*now);
      last = now;
    }
    if (last && serve::job_state_terminal(*last)) break;
    std::this_thread::sleep_for(options_.watch_interval);
  }
  if (!last || !serve::job_state_terminal(*last)) return;  // stopped mid-watch
  const auto future = service_.outcome(id);
  std::string payload;
  io::Writer w(payload);
  w.u64(id);
  if (future) {
    w.u8(1);
    future->get().serialize(w);  // terminal state ⇒ resolves immediately
  } else {
    w.u8(0);
  }
  write_frame(session.sock, FrameType::Outcome, payload);
  metrics_.frames_tx->inc();
}

void Server::serve_http(Socket& sock) {
  metrics_.scrapes->inc();
  // Drain the request head; one recv is enough for a scrape GET.
  char buf[2048];
  (void)sock.read_some(buf, sizeof buf);
  const std::string body = obs::Registry::global().to_prometheus();
  std::string response =
      "HTTP/1.1 200 OK\r\n"
      "Content-Type: text/plain; version=0.0.4; charset=utf-8\r\n"
      "Content-Length: " +
      std::to_string(body.size()) +
      "\r\n"
      "Connection: close\r\n"
      "\r\n" +
      body;
  sock.write_all(response);
}

void Server::send_error(Session& session, WireStatus status, const std::string& message) {
  std::string payload;
  io::Writer w(payload);
  w.i32(static_cast<std::int32_t>(status));
  w.str(message);
  write_frame(session.sock, FrameType::Error, payload);
  metrics_.frames_tx->inc();
}

const backend::FakeBackend* Server::resolve_backend(const std::string& name) {
  if (name.empty()) return nullptr;
  std::lock_guard<std::mutex> lock(backends_mutex_);
  const auto it = backends_.find(name);
  if (it != backends_.end()) return it->second.get();
  try {
    auto dev = std::make_unique<backend::FakeBackend>(backend::make_backend(name));
    return backends_.emplace(name, std::move(dev)).first->second.get();
  } catch (const Error&) {
    return nullptr;
  }
}

}  // namespace hgp::net
