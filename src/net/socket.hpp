#pragma once

#include <cstdint>
#include <string>

#include "common/error.hpp"

namespace hgp::net {

/// Transport-layer failure: connect refused, peer reset, write on a closed
/// socket. Protocol-layer problems (bad frames, rejected requests) are
/// *statuses*, not exceptions — see net/protocol.hpp.
class NetError : public Error {
 public:
  explicit NetError(const std::string& what) : Error(what) {}
};

/// RAII wrapper over one connected POSIX TCP socket. Blocking I/O; a peer
/// (or Server::stop) unblocks a reader with shutdown_both(). Writes use
/// MSG_NOSIGNAL so a vanished peer surfaces as a NetError, never SIGPIPE.
class Socket {
 public:
  Socket() = default;
  explicit Socket(int fd) : fd_(fd) {}
  ~Socket() { close(); }

  Socket(const Socket&) = delete;
  Socket& operator=(const Socket&) = delete;
  Socket(Socket&& other) noexcept : fd_(other.fd_) { other.fd_ = -1; }
  Socket& operator=(Socket&& other) noexcept;

  bool valid() const { return fd_ >= 0; }
  int fd() const { return fd_; }

  /// Write the whole buffer (retrying short writes); NetError on failure.
  void write_all(const void* data, std::size_t n);
  void write_all(const std::string& bytes) { write_all(bytes.data(), bytes.size()); }

  /// Read exactly n bytes. False on clean EOF *before the first byte*;
  /// NetError on an error or an EOF that cuts the buffer mid-way.
  bool read_exact(void* out, std::size_t n);

  /// Peek up to n bytes without consuming them (MSG_PEEK); blocks until at
  /// least one byte or EOF. Returns bytes seen (0 = EOF).
  std::size_t peek(void* out, std::size_t n);

  /// Read up to n bytes (one recv). Returns bytes read (0 = EOF).
  std::size_t read_some(void* out, std::size_t n);

  /// Disable Nagle's algorithm — the protocol is small request/response
  /// frames, where coalescing only adds latency.
  void set_no_delay();

  /// Wake any thread blocked in read/write on this socket (their calls
  /// return EOF/error). Safe to call from another thread; close() is not.
  void shutdown_both();

  void close();

  /// Blocking TCP connect; NetError on failure.
  static Socket connect(const std::string& host, std::uint16_t port);

 private:
  int fd_ = -1;
};

/// Listening TCP socket. Binding port 0 picks an ephemeral port, reported by
/// port() — how the tests and benches run loopback servers without
/// colliding.
class ListenSocket {
 public:
  ListenSocket() = default;

  /// Bind + listen on host:port with SO_REUSEADDR; NetError on failure.
  static ListenSocket open(const std::string& host, std::uint16_t port, int backlog = 64);

  bool valid() const { return sock_.valid(); }
  std::uint16_t port() const { return port_; }

  /// Blocking accept. An invalid Socket means the listener was shut down.
  Socket accept();

  /// Unblock a pending accept() (it returns an invalid Socket).
  void shutdown();

 private:
  Socket sock_;
  std::uint16_t port_ = 0;
};

}  // namespace hgp::net
