#include "net/socket.hpp"

#include <arpa/inet.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <sys/socket.h>
#include <unistd.h>

#include <cerrno>
#include <cstring>

namespace hgp::net {

namespace {

std::string errno_message(const std::string& what) {
  return what + ": " + std::strerror(errno);
}

sockaddr_in make_addr(const std::string& host, std::uint16_t port) {
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(port);
  if (::inet_pton(AF_INET, host.c_str(), &addr.sin_addr) != 1)
    throw NetError("invalid IPv4 address '" + host + "'");
  return addr;
}

}  // namespace

Socket& Socket::operator=(Socket&& other) noexcept {
  if (this != &other) {
    close();
    fd_ = other.fd_;
    other.fd_ = -1;
  }
  return *this;
}

void Socket::write_all(const void* data, std::size_t n) {
  const char* p = static_cast<const char*>(data);
  while (n > 0) {
    const ssize_t written = ::send(fd_, p, n, MSG_NOSIGNAL);
    if (written < 0) {
      if (errno == EINTR) continue;
      throw NetError(errno_message("send failed"));
    }
    p += written;
    n -= static_cast<std::size_t>(written);
  }
}

bool Socket::read_exact(void* out, std::size_t n) {
  char* p = static_cast<char*>(out);
  std::size_t got = 0;
  while (got < n) {
    const ssize_t r = ::recv(fd_, p + got, n - got, 0);
    if (r < 0) {
      if (errno == EINTR) continue;
      throw NetError(errno_message("recv failed"));
    }
    if (r == 0) {
      if (got == 0) return false;  // clean EOF between frames
      throw NetError("connection closed mid-frame (" + std::to_string(got) + "/" +
                     std::to_string(n) + " bytes)");
    }
    got += static_cast<std::size_t>(r);
  }
  return true;
}

std::size_t Socket::peek(void* out, std::size_t n) {
  for (;;) {
    const ssize_t r = ::recv(fd_, out, n, MSG_PEEK);
    if (r < 0) {
      if (errno == EINTR) continue;
      throw NetError(errno_message("recv(MSG_PEEK) failed"));
    }
    return static_cast<std::size_t>(r);
  }
}

std::size_t Socket::read_some(void* out, std::size_t n) {
  for (;;) {
    const ssize_t r = ::recv(fd_, out, n, 0);
    if (r < 0) {
      if (errno == EINTR) continue;
      throw NetError(errno_message("recv failed"));
    }
    return static_cast<std::size_t>(r);
  }
}

void Socket::set_no_delay() {
  const int one = 1;
  ::setsockopt(fd_, IPPROTO_TCP, TCP_NODELAY, &one, sizeof one);
}

void Socket::shutdown_both() {
  if (fd_ >= 0) ::shutdown(fd_, SHUT_RDWR);
}

void Socket::close() {
  if (fd_ >= 0) {
    ::close(fd_);
    fd_ = -1;
  }
}

Socket Socket::connect(const std::string& host, std::uint16_t port) {
  const sockaddr_in addr = make_addr(host, port);
  const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  if (fd < 0) throw NetError(errno_message("socket failed"));
  Socket sock(fd);
  for (;;) {
    if (::connect(fd, reinterpret_cast<const sockaddr*>(&addr), sizeof addr) == 0) break;
    if (errno == EINTR) continue;
    throw NetError(errno_message("connect to " + host + ":" + std::to_string(port) +
                                 " failed"));
  }
  sock.set_no_delay();
  return sock;
}

ListenSocket ListenSocket::open(const std::string& host, std::uint16_t port, int backlog) {
  const sockaddr_in addr = make_addr(host, port);
  const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  if (fd < 0) throw NetError(errno_message("socket failed"));
  ListenSocket listener;
  listener.sock_ = Socket(fd);
  const int one = 1;
  ::setsockopt(fd, SOL_SOCKET, SO_REUSEADDR, &one, sizeof one);
  if (::bind(fd, reinterpret_cast<const sockaddr*>(&addr), sizeof addr) != 0)
    throw NetError(errno_message("bind to " + host + ":" + std::to_string(port) +
                                 " failed"));
  if (::listen(fd, backlog) != 0) throw NetError(errno_message("listen failed"));
  sockaddr_in bound{};
  socklen_t len = sizeof bound;
  if (::getsockname(fd, reinterpret_cast<sockaddr*>(&bound), &len) != 0)
    throw NetError(errno_message("getsockname failed"));
  listener.port_ = ntohs(bound.sin_port);
  return listener;
}

Socket ListenSocket::accept() {
  for (;;) {
    const int fd = ::accept(sock_.fd(), nullptr, nullptr);
    if (fd >= 0) {
      Socket s(fd);
      s.set_no_delay();
      return s;
    }
    if (errno == EINTR) continue;
    // EINVAL/EBADF after shutdown(): the listener is being torn down.
    return Socket();
  }
}

void ListenSocket::shutdown() { sock_.shutdown_both(); }

}  // namespace hgp::net
