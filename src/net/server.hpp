#pragma once

#include <atomic>
#include <chrono>
#include <cstdint>
#include <list>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <thread>

#include "backend/presets.hpp"
#include "net/protocol.hpp"
#include "net/socket.hpp"
#include "obs/metrics.hpp"
#include "serve/job_service.hpp"

namespace hgp::net {

/// Wire front end of the serve subsystem: one acceptor thread, one session
/// thread per connection, all multiplexing onto a single shared JobService
/// (one worker pool, one compiled-block cache, one fair queue — exactly what
/// an in-process caller gets). A session speaks the HGPN framing of
/// net/protocol.hpp; the payloads are the *same* versioned
/// serve::JobRequest/JobOutcome schema JobService::submit consumes in
/// process, and validate_job runs on the server against the deserialized
/// request just as it would have run in the submitting process — so a job
/// submitted over the socket is validated, scheduled, and trained
/// bit-identically to the same job submitted in process.
///
/// The acceptor also answers plain HTTP GET on the same port (discriminated
/// by peeking the first bytes) with the process-wide Prometheus exposition,
/// so `curl http://host:port/metrics` works against a running server with no
/// second listener.
///
/// Authn-lite: Options::tokens maps opaque client tokens to tenant names.
/// When the map is non-empty a session must open with a Hello frame carrying
/// a known token, and every job it submits is stamped with the mapped tenant
/// — the FairJobQueue tenant, so wire clients get deficit-round-robin fair
/// shares per token, not per whatever tenant string they chose to send.
/// With an empty map the server is open: Hello with any token resolves to
/// the empty tenant and submitted jobs keep their own tenant field.
class Server {
 public:
  struct Options {
    std::string host = "127.0.0.1";
    /// 0 = ephemeral; the bound port is reported by port().
    std::uint16_t port = 0;
    /// token -> tenant (see class comment). Empty = open server.
    std::map<std::string, std::string> tokens;
    /// Options of the owned JobService (worker pool, admission control,
    /// adaptive sizing).
    serve::JobService::Options service;
    /// Refuse frames with a larger payload (corrupt or hostile length).
    std::size_t max_frame_bytes = kDefaultMaxFrameBytes;
    /// Poll cadence of Watch sessions and the Await stop check.
    std::chrono::milliseconds watch_interval{2};
  };

  explicit Server(Options options);
  ~Server();

  Server(const Server&) = delete;
  Server& operator=(const Server&) = delete;

  std::uint16_t port() const { return listener_.port(); }
  serve::JobService& service() { return service_; }

  /// Stop accepting, wake every session, join all threads. Jobs already
  /// queued or running are owned by the JobService and keep running; their
  /// outcomes stay pollable in process. Idempotent.
  void stop();

 private:
  struct Session {
    Socket sock;
    std::thread thread;
    std::atomic<bool> done{false};
    bool authenticated = false;
    std::string tenant;
  };

  void accept_loop();
  void run_session(Session* session);
  /// Dispatch one authenticated frame; false = close the session.
  bool handle_frame(Session& session, const Frame& frame);
  void handle_submit(Session& session, const Frame& frame);
  void handle_await(Session& session, const Frame& frame);
  void handle_watch(Session& session, const Frame& frame);
  /// Answer one plain-HTTP connection (Prometheus scrape) and close it.
  void serve_http(Socket& sock);
  void send_error(Session& session, WireStatus status, const std::string& message);
  /// Resolve a preset name against the owned backend cache (one instance per
  /// name for the server's lifetime — SweepJob::dev stays valid as long as
  /// any job might run). Null when the name is unknown.
  const backend::FakeBackend* resolve_backend(const std::string& name);
  /// Join and drop sessions whose threads have exited.
  void reap_sessions();

  Options options_;

  /// "net.*" series.
  struct Metrics {
    obs::Counter* connections;
    obs::Counter* frames_rx;
    obs::Counter* frames_tx;
    obs::Counter* bad_frames;
    obs::Counter* submits;
    obs::Counter* scrapes;
    obs::Counter* auth_failures;
    obs::Gauge* sessions_active;
    obs::Histogram* frame_ns;
  };
  Metrics metrics_;

  /// Owned backends resolved by name for wire submissions. Declared before
  /// service_ so teardown destroys the JobService (draining every run that
  /// may hold a dev pointer) first.
  std::mutex backends_mutex_;
  std::map<std::string, std::unique_ptr<backend::FakeBackend>> backends_;

  serve::JobService service_;

  ListenSocket listener_;
  std::atomic<bool> stop_{false};
  std::mutex sessions_mutex_;
  std::list<Session> sessions_;
  std::thread acceptor_;
};

}  // namespace hgp::net
