#pragma once

#include <cstdint>
#include <string>

#include "common/binio.hpp"
#include "net/socket.hpp"

namespace hgp::net {

/// Length-prefixed binary framing over TCP, built on common/binio.hpp — the
/// same encoding discipline as the on-disk block store, pointed at a socket.
///
/// Every frame is
///
///   u32  magic     "HGPN"
///   u32  version   kProtocolVersion (negotiation: a mismatched peer gets a
///                  BadVersion error frame naming the server's version and
///                  the connection closes — it never misparses)
///   u8   type      FrameType
///   u32  length    payload bytes that follow (bounded by max_frame_bytes)
///   u64  checksum  io::fnv1a over the payload
///   ...  payload   type-specific binio fields (see net::Server/Client)
///
/// Reader trust model is the block store's: every field is bounds-checked,
/// corruption degrades to a structured status, and the payload of a frame
/// whose checksum fails is never parsed. A checksum/payload failure is
/// *recoverable* — the length prefix was honored, so the stream is still
/// frame-aligned and the session survives. A bad magic/version/oversized
/// length means frame alignment itself is lost; the only safe move is to
/// report and close.

inline constexpr std::uint32_t kMagic = 0x4E504748u;  // "HGPN" little-endian
inline constexpr std::uint32_t kProtocolVersion = 1;
/// Header bytes ahead of the payload: magic + version + type + length + checksum.
inline constexpr std::size_t kFrameHeaderBytes = 4 + 4 + 1 + 4 + 8;
/// Default payload bound. A JobRequest is a few KiB; an outcome with a long
/// optimizer history a few tens of KiB — 16 MiB is generous headroom, and
/// anything above it is a corrupt or hostile length prefix.
inline constexpr std::size_t kDefaultMaxFrameBytes = 16u << 20;

enum class FrameType : std::uint8_t {
  // client -> server
  Hello = 1,    ///< str token — must be the session's first frame
  Submit = 2,   ///< JobRequest::serialize payload
  Poll = 3,     ///< u64 job id
  Cancel = 4,   ///< u64 job id
  Await = 5,    ///< u64 job id — server replies Outcome when terminal
  Watch = 6,    ///< u64 job id — StateEvent per transition, then Outcome
  Scrape = 7,   ///< empty — Prometheus exposition (HTTP GET works too)
  // server -> client
  HelloOk = 64,     ///< u32 schema version, str resolved tenant
  SubmitReply = 65, ///< u64 id, u8 submit JobState, i32 JobErrorCode, str message
  PollReply = 66,   ///< u8 known, u8 JobState
  CancelReply = 67, ///< u8 accepted
  StateEvent = 68,  ///< u64 id, u8 JobState
  Outcome = 69,     ///< u64 id, u8 known, JobOutcome::serialize payload
  ScrapeReply = 70, ///< str exposition text
  Error = 71,       ///< i32 WireStatus, str message
};

/// Protocol-level statuses (Error frames and read_frame verdicts). Distinct
/// from serve::JobErrorCode: these are about the *conversation*, not a job.
enum class WireStatus : std::int32_t {
  Ok = 0,
  Eof,              ///< peer closed cleanly between frames
  BadMagic,         ///< not a protocol frame — alignment lost, close
  BadVersion,       ///< peer speaks a different protocol version — close
  FrameTooLarge,    ///< length prefix exceeds the bound — close
  BadChecksum,      ///< payload corrupt in flight — frame dropped, session lives
  BadPayload,       ///< well-framed but undecodable payload — session lives
  HelloRequired,    ///< request before (successful) Hello
  Unauthenticated,  ///< unknown tenant token
  UnknownType,      ///< unrecognized frame type — session lives
};

const std::string& wire_status_name(WireStatus status);
/// True when the session can continue after reporting this status.
bool wire_status_recoverable(WireStatus status);

struct Frame {
  FrameType type = FrameType::Error;
  std::string payload;
};

/// Encode one frame (header + checksummed payload) ready to write.
std::string encode_frame(FrameType type, const std::string& payload);

/// Read one frame off the socket. Returns Ok with the frame, Eof on a clean
/// close, or the failure status (frame.payload empty). Throws NetError only
/// for transport failures (reset, mid-frame EOF).
struct ReadResult {
  WireStatus status = WireStatus::Ok;
  Frame frame;
};
ReadResult read_frame(Socket& sock, std::size_t max_frame_bytes = kDefaultMaxFrameBytes);

/// Write one frame.
void write_frame(Socket& sock, FrameType type, const std::string& payload);

}  // namespace hgp::net
