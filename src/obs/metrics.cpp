#include "obs/metrics.hpp"

#include <algorithm>
#include <cstdlib>
#include <cstring>

#include "common/error.hpp"

namespace hgp::obs {

namespace detail {

namespace {

bool env_enabled() {
  const char* v = std::getenv("HGP_OBS");
  if (v == nullptr) return false;
  return std::strcmp(v, "1") == 0 || std::strcmp(v, "on") == 0 ||
         std::strcmp(v, "true") == 0;
}

}  // namespace

std::atomic<bool>& enabled_flag() {
  static std::atomic<bool> flag{env_enabled()};
  return flag;
}

std::size_t shard_index() {
  static std::atomic<std::size_t> next{0};
  thread_local const std::size_t idx =
      next.fetch_add(1, std::memory_order_relaxed) % kCounterShards;
  return idx;
}

}  // namespace detail

void set_enabled(bool on) {
  detail::enabled_flag().store(on, std::memory_order_relaxed);
}

Histogram::Histogram(std::vector<std::uint64_t> bounds) : bounds_(std::move(bounds)) {
  HGP_REQUIRE(std::is_sorted(bounds_.begin(), bounds_.end()),
              "obs::Histogram: bucket bounds must be ascending");
  buckets_ = std::make_unique<std::atomic<std::uint64_t>[]>(bounds_.size() + 1);
  for (std::size_t i = 0; i <= bounds_.size(); ++i)
    buckets_[i].store(0, std::memory_order_relaxed);
}

void Histogram::record_always(std::uint64_t v) {
  const auto it = std::lower_bound(bounds_.begin(), bounds_.end(), v);
  const std::size_t idx = static_cast<std::size_t>(it - bounds_.begin());
  buckets_[idx].fetch_add(1, std::memory_order_relaxed);
  count_.fetch_add(1, std::memory_order_relaxed);
  sum_.fetch_add(v, std::memory_order_relaxed);
}

std::vector<std::uint64_t> Histogram::bucket_counts() const {
  std::vector<std::uint64_t> out(bounds_.size() + 1);
  for (std::size_t i = 0; i < out.size(); ++i)
    out[i] = buckets_[i].load(std::memory_order_relaxed);
  return out;
}

void Histogram::reset() {
  for (std::size_t i = 0; i <= bounds_.size(); ++i)
    buckets_[i].store(0, std::memory_order_relaxed);
  count_.store(0, std::memory_order_relaxed);
  sum_.store(0, std::memory_order_relaxed);
}

std::vector<std::uint64_t> default_latency_bounds_ns() {
  return {1'000,          10'000,         100'000,         1'000'000,
          10'000'000,     100'000'000,    1'000'000'000,   10'000'000'000ull,
          100'000'000'000ull};
}

Registry& Registry::global() {
  static Registry reg;
  return reg;
}

Counter& Registry::counter(const std::string& name) {
  const std::lock_guard<std::mutex> lock(mutex_);
  auto& slot = counters_[name];
  if (!slot) slot = std::make_unique<Counter>();
  return *slot;
}

Gauge& Registry::gauge(const std::string& name) {
  const std::lock_guard<std::mutex> lock(mutex_);
  auto& slot = gauges_[name];
  if (!slot) slot = std::make_unique<Gauge>();
  return *slot;
}

Histogram& Registry::histogram(const std::string& name, std::vector<std::uint64_t> bounds) {
  const std::lock_guard<std::mutex> lock(mutex_);
  auto& slot = histograms_[name];
  if (!slot)
    slot = std::make_unique<Histogram>(bounds.empty() ? default_latency_bounds_ns()
                                                      : std::move(bounds));
  return *slot;
}

void Registry::reset() {
  const std::lock_guard<std::mutex> lock(mutex_);
  for (auto& [name, c] : counters_) c->reset();
  for (auto& [name, g] : gauges_) g->reset();
  for (auto& [name, h] : histograms_) h->reset();
}

}  // namespace hgp::obs
