#pragma once

#include <array>
#include <atomic>
#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "obs/obs.hpp"

namespace hgp::obs {

/// Counter shards. Each thread sticks to one cache-line-padded shard (index
/// assigned round-robin on first use), so concurrent increments from the
/// trajectory worker pool never bounce a shared line — the increment is one
/// uncontended relaxed fetch_add, ~1 ns.
inline constexpr std::size_t kCounterShards = 16;

namespace detail {
/// This thread's sticky shard index in [0, kCounterShards).
std::size_t shard_index();
}  // namespace detail

/// Monotonically increasing event count (shots run, cache hits, Kraus
/// jumps). Increments are wait-free and sharded; value() folds the shards.
class Counter {
 public:
  /// Gated increment: a near-no-op while telemetry is disabled.
  void inc(std::uint64_t n = 1) {
    if (enabled()) add(n);
  }
  /// Ungated increment for call sites that must always count.
  void add(std::uint64_t n) {
    shards_[detail::shard_index()].v.fetch_add(n, std::memory_order_relaxed);
  }
  std::uint64_t value() const {
    std::uint64_t total = 0;
    for (const Shard& s : shards_) total += s.v.load(std::memory_order_relaxed);
    return total;
  }
  void reset() {
    for (Shard& s : shards_) s.v.store(0, std::memory_order_relaxed);
  }

 private:
  struct alignas(64) Shard {
    std::atomic<std::uint64_t> v{0};
  };
  std::array<Shard, kCounterShards> shards_{};
};

/// Last-write-wins instantaneous value (queue depth, shots/s throughput).
class Gauge {
 public:
  void set(std::int64_t v) {
    if (enabled()) v_.store(v, std::memory_order_relaxed);
  }
  void add(std::int64_t d) {
    if (enabled()) v_.fetch_add(d, std::memory_order_relaxed);
  }
  std::int64_t value() const { return v_.load(std::memory_order_relaxed); }
  void reset() { v_.store(0, std::memory_order_relaxed); }

 private:
  std::atomic<std::int64_t> v_{0};
};

/// Fixed-bucket latency histogram over unsigned values (nanoseconds by
/// convention). Bucket i counts records <= bounds[i] (Prometheus `le`
/// semantics); one implicit overflow bucket catches the rest. Records are
/// wait-free relaxed fetch_adds; snapshots are torn-read-safe (every cell is
/// an atomic) but not a single consistent cut — fine for monitoring.
class Histogram {
 public:
  explicit Histogram(std::vector<std::uint64_t> bounds);

  /// Gated record: a near-no-op while telemetry is disabled.
  void record(std::uint64_t v) {
    if (enabled()) record_always(v);
  }
  void record_always(std::uint64_t v);

  std::uint64_t count() const { return count_.load(std::memory_order_relaxed); }
  std::uint64_t sum() const { return sum_.load(std::memory_order_relaxed); }
  const std::vector<std::uint64_t>& bounds() const { return bounds_; }
  /// bounds().size() + 1 cells; the last is the +Inf overflow bucket.
  std::vector<std::uint64_t> bucket_counts() const;
  void reset();

 private:
  std::vector<std::uint64_t> bounds_;  // ascending upper bounds
  std::unique_ptr<std::atomic<std::uint64_t>[]> buckets_;
  std::atomic<std::uint64_t> count_{0};
  std::atomic<std::uint64_t> sum_{0};
};

/// The default latency ladder: 1 us to 100 s, decade steps — wide enough
/// for a block compile (ms) and a whole sweep job (s) on one scale.
std::vector<std::uint64_t> default_latency_bounds_ns();

/// Process-wide named-metric registry. Lookup (mutexed map) happens once per
/// call site — instruments hold the returned reference, whose address is
/// stable for the registry's lifetime. Export via to_json()/to_prometheus().
class Registry {
 public:
  /// The process-wide registry every subsystem reports through.
  static Registry& global();

  Registry() = default;
  Registry(const Registry&) = delete;
  Registry& operator=(const Registry&) = delete;

  /// Find-or-create by name. The same name always returns the same metric,
  /// so independent components (every BlockCache, every Executor) aggregate
  /// into one process-wide series.
  Counter& counter(const std::string& name);
  Gauge& gauge(const std::string& name);
  /// `bounds` applies only on first registration; empty = the default
  /// latency ladder.
  Histogram& histogram(const std::string& name, std::vector<std::uint64_t> bounds = {});

  /// One JSON document of every registered metric (sorted by name):
  /// {"counters":{...},"gauges":{...},"histograms":{...}}.
  std::string to_json() const;
  /// Prometheus text exposition ('.' in names becomes '_', "hgp_" prefix).
  std::string to_prometheus() const;

  /// Zero every metric's value (registrations and addresses survive) —
  /// benches and tests measure deltas from here.
  void reset();

 private:
  mutable std::mutex mutex_;
  std::map<std::string, std::unique_ptr<Counter>> counters_;
  std::map<std::string, std::unique_ptr<Gauge>> gauges_;
  std::map<std::string, std::unique_ptr<Histogram>> histograms_;
};

}  // namespace hgp::obs
