// Registry exporters: one JSON snapshot (machine-readable, consumed by the
// benches and tests) and one Prometheus text exposition (scrape-ready).
// Both walk the sorted metric maps under the registry mutex; the values they
// read are relaxed atomic snapshots, not one consistent cut.
#include <cstdio>
#include <sstream>

#include "obs/metrics.hpp"

namespace hgp::obs {

namespace {

/// Minimal JSON string escaping — metric names are identifiers, but a
/// malformed document must be impossible whatever the name.
std::string json_escape(const std::string& s) {
  std::string out;
  out.reserve(s.size());
  for (char c : s) {
    switch (c) {
      case '"':
        out += "\\\"";
        break;
      case '\\':
        out += "\\\\";
        break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof buf, "\\u%04x", c);
          out += buf;
        } else {
          out += c;
        }
    }
  }
  return out;
}

/// Prometheus metric name: dots to underscores under the hgp_ namespace.
std::string prom_name(const std::string& name) {
  std::string out = "hgp_";
  for (char c : name) out += (c == '.' || c == '-') ? '_' : c;
  return out;
}

}  // namespace

std::string Registry::to_json() const {
  const std::lock_guard<std::mutex> lock(mutex_);
  std::ostringstream os;
  os << "{\"counters\":{";
  bool first = true;
  for (const auto& [name, c] : counters_) {
    if (!first) os << ",";
    first = false;
    os << "\"" << json_escape(name) << "\":" << c->value();
  }
  os << "},\"gauges\":{";
  first = true;
  for (const auto& [name, g] : gauges_) {
    if (!first) os << ",";
    first = false;
    os << "\"" << json_escape(name) << "\":" << g->value();
  }
  os << "},\"histograms\":{";
  first = true;
  for (const auto& [name, h] : histograms_) {
    if (!first) os << ",";
    first = false;
    os << "\"" << json_escape(name) << "\":{\"count\":" << h->count()
       << ",\"sum\":" << h->sum() << ",\"buckets\":[";
    const std::vector<std::uint64_t>& bounds = h->bounds();
    const std::vector<std::uint64_t> counts = h->bucket_counts();
    for (std::size_t i = 0; i < counts.size(); ++i) {
      if (i != 0) os << ",";
      os << "{\"le\":";
      if (i < bounds.size())
        os << bounds[i];
      else
        os << "\"+Inf\"";
      os << ",\"count\":" << counts[i] << "}";
    }
    os << "]}";
  }
  os << "}}";
  return os.str();
}

std::string Registry::to_prometheus() const {
  const std::lock_guard<std::mutex> lock(mutex_);
  std::ostringstream os;
  for (const auto& [name, c] : counters_) {
    const std::string pn = prom_name(name);
    os << "# TYPE " << pn << " counter\n" << pn << " " << c->value() << "\n";
  }
  for (const auto& [name, g] : gauges_) {
    const std::string pn = prom_name(name);
    os << "# TYPE " << pn << " gauge\n" << pn << " " << g->value() << "\n";
  }
  for (const auto& [name, h] : histograms_) {
    const std::string pn = prom_name(name);
    os << "# TYPE " << pn << " histogram\n";
    const std::vector<std::uint64_t>& bounds = h->bounds();
    const std::vector<std::uint64_t> counts = h->bucket_counts();
    // Prometheus buckets are cumulative: each le cell includes everything
    // below it, and the +Inf cell equals the total count.
    std::uint64_t cum = 0;
    for (std::size_t i = 0; i < counts.size(); ++i) {
      cum += counts[i];
      os << pn << "_bucket{le=\"";
      if (i < bounds.size())
        os << bounds[i];
      else
        os << "+Inf";
      os << "\"} " << cum << "\n";
    }
    os << pn << "_sum " << h->sum() << "\n" << pn << "_count " << h->count() << "\n";
  }
  return os.str();
}

}  // namespace hgp::obs
