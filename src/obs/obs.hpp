#pragma once

#include <atomic>
#include <chrono>
#include <cstdint>

namespace hgp::obs {

namespace detail {
/// The process-wide telemetry switch. Initialized once from HGP_OBS
/// ("1"/"on"/"true" enables) and flippable at runtime via set_enabled().
std::atomic<bool>& enabled_flag();
}  // namespace detail

/// Whether telemetry is live. Every hot-path instrument checks this first —
/// one relaxed atomic-bool load plus a predictable branch — so disabled
/// telemetry costs roughly a nanosecond per call site and touches neither
/// the clock nor any shared cache line.
inline bool enabled() { return detail::enabled_flag().load(std::memory_order_relaxed); }

/// Flip telemetry at runtime (RunConfig::telemetry and tests go through
/// here). Counters keep whatever they accumulated; they are not reset.
void set_enabled(bool on);

/// Monotonic nanoseconds (steady clock) — the time base of every span and
/// latency histogram. Not wall time: only differences are meaningful.
inline std::uint64_t now_ns() {
  return static_cast<std::uint64_t>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(
          std::chrono::steady_clock::now().time_since_epoch())
          .count());
}

}  // namespace hgp::obs
