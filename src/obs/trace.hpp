#pragma once

#include <atomic>
#include <cstdint>
#include <vector>

#include "obs/metrics.hpp"
#include "obs/obs.hpp"

namespace hgp::obs {

/// One finished span: a named, monotonic-clock-timed scope with a link to
/// the span that was open on the same thread when it started (0 = root).
/// `name` must be a string literal (the tracer stores the pointer only).
struct SpanRecord {
  std::uint64_t id = 0;
  std::uint64_t parent = 0;
  std::uint64_t start_ns = 0;
  std::uint64_t end_ns = 0;
  const char* name = "";
};

/// Bounded lock-free ring of finished spans. Writers claim a slot with one
/// relaxed fetch_add and overwrite whatever lives there, so the ring always
/// holds the newest `capacity` records and overflow drops the oldest —
/// recording never blocks and never allocates. Every slot cell is an atomic
/// stamped with its sequence number, so concurrent snapshots are race-free:
/// a slot whose stamp does not match before and after the payload read was
/// mid-overwrite and is skipped.
class Tracer {
 public:
  static constexpr std::size_t kDefaultCapacity = 4096;

  /// The process-wide ring every Span records into.
  static Tracer& global();

  explicit Tracer(std::size_t capacity = kDefaultCapacity);
  Tracer(const Tracer&) = delete;
  Tracer& operator=(const Tracer&) = delete;

  void record(const SpanRecord& r);

  /// The retained records, oldest first. Slots being overwritten while the
  /// snapshot runs are skipped, never torn.
  std::vector<SpanRecord> snapshot() const;

  /// Total spans ever recorded, including those overflow has dropped.
  std::uint64_t total_recorded() const { return seq_.load(std::memory_order_acquire); }
  /// Records lost to overflow (total - retained).
  std::uint64_t dropped() const {
    const std::uint64_t total = total_recorded();
    return total > slots_.size() ? total - slots_.size() : 0;
  }
  std::size_t capacity() const { return slots_.size(); }

  /// Fresh span id (> 0; 0 means "no span").
  std::uint64_t next_id() { return 1 + id_.fetch_add(1, std::memory_order_relaxed); }

  /// Drop every retained record (callers quiesce writers first — tests and
  /// benches only).
  void clear();

 private:
  struct Slot {
    /// seq + 1 of the resident record; 0 while empty or mid-write.
    std::atomic<std::uint64_t> stamp{0};
    std::atomic<std::uint64_t> id{0};
    std::atomic<std::uint64_t> parent{0};
    std::atomic<std::uint64_t> start_ns{0};
    std::atomic<std::uint64_t> end_ns{0};
    std::atomic<const char*> name{nullptr};
  };

  std::vector<Slot> slots_;
  std::atomic<std::uint64_t> seq_{0};  // total records ever pushed
  std::atomic<std::uint64_t> id_{0};
};

namespace detail {
/// The innermost open span on this thread (0 = none) — the parent link of
/// the next Span constructed here.
std::uint64_t& current_span();
}  // namespace detail

/// RAII run-lifecycle span: times its scope on the monotonic clock, parents
/// itself under the enclosing Span on this thread, and records into the
/// global Tracer's ring on destruction. Optionally feeds the elapsed time
/// into a latency histogram. While telemetry is disabled, construction and
/// destruction are near-no-ops (one flag load each, no clock reads).
class Span {
 public:
  explicit Span(const char* name, Histogram* latency = nullptr) {
    if (!enabled()) return;
    name_ = name;
    latency_ = latency;
    std::uint64_t& cur = detail::current_span();
    parent_ = cur;
    id_ = Tracer::global().next_id();
    cur = id_;
    start_ = now_ns();
    active_ = true;
  }
  ~Span() {
    if (active_) finish();
  }
  Span(const Span&) = delete;
  Span& operator=(const Span&) = delete;

  /// This span's id (0 while telemetry is disabled).
  std::uint64_t id() const { return active_ ? id_ : 0; }

  /// End the span before scope exit (e.g. to time only the first phase of a
  /// function); no-op when telemetry was disabled at construction, and the
  /// destructor will not record again.
  void finish();

 private:
  const char* name_ = "";
  Histogram* latency_ = nullptr;
  std::uint64_t id_ = 0;
  std::uint64_t parent_ = 0;
  std::uint64_t start_ = 0;
  bool active_ = false;
};

}  // namespace hgp::obs
