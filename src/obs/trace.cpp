#include "obs/trace.hpp"

#include "common/error.hpp"

namespace hgp::obs {

namespace detail {

std::uint64_t& current_span() {
  thread_local std::uint64_t current = 0;
  return current;
}

}  // namespace detail

Tracer& Tracer::global() {
  static Tracer tracer;
  return tracer;
}

Tracer::Tracer(std::size_t capacity) : slots_(capacity) {
  HGP_REQUIRE(capacity >= 1, "obs::Tracer: capacity must be positive");
}

void Tracer::record(const SpanRecord& r) {
  const std::uint64_t seq = seq_.fetch_add(1, std::memory_order_acq_rel);
  Slot& s = slots_[seq % slots_.size()];
  // Invalidate first so a concurrent snapshot never stitches the old
  // record's tail onto this one's head, then publish with the new stamp.
  s.stamp.store(0, std::memory_order_release);
  s.id.store(r.id, std::memory_order_relaxed);
  s.parent.store(r.parent, std::memory_order_relaxed);
  s.start_ns.store(r.start_ns, std::memory_order_relaxed);
  s.end_ns.store(r.end_ns, std::memory_order_relaxed);
  s.name.store(r.name, std::memory_order_relaxed);
  s.stamp.store(seq + 1, std::memory_order_release);
}

std::vector<SpanRecord> Tracer::snapshot() const {
  const std::uint64_t total = seq_.load(std::memory_order_acquire);
  const std::uint64_t cap = slots_.size();
  const std::uint64_t first = total > cap ? total - cap : 0;
  std::vector<SpanRecord> out;
  out.reserve(static_cast<std::size_t>(total - first));
  for (std::uint64_t seq = first; seq < total; ++seq) {
    const Slot& s = slots_[seq % cap];
    if (s.stamp.load(std::memory_order_acquire) != seq + 1) continue;
    SpanRecord r;
    r.id = s.id.load(std::memory_order_relaxed);
    r.parent = s.parent.load(std::memory_order_relaxed);
    r.start_ns = s.start_ns.load(std::memory_order_relaxed);
    r.end_ns = s.end_ns.load(std::memory_order_relaxed);
    r.name = s.name.load(std::memory_order_relaxed);
    // A concurrent overwrite between the two stamp reads would have zeroed
    // the stamp first, so a still-matching stamp means the payload is whole.
    if (s.stamp.load(std::memory_order_acquire) != seq + 1) continue;
    out.push_back(r);
  }
  return out;
}

void Tracer::clear() {
  for (Slot& s : slots_) s.stamp.store(0, std::memory_order_relaxed);
  seq_.store(0, std::memory_order_release);
}

void Span::finish() {
  if (!active_) return;
  active_ = false;
  SpanRecord r;
  r.id = id_;
  r.parent = parent_;
  r.start_ns = start_;
  r.end_ns = now_ns();
  r.name = name_;
  detail::current_span() = parent_;
  Tracer::global().record(r);
  if (latency_ != nullptr) latency_->record_always(r.end_ns - r.start_ns);
}

}  // namespace hgp::obs
