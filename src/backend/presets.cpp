#include "backend/presets.hpp"

#include "common/error.hpp"

namespace hgp::backend {

FakeBackend make_auckland() {
  BackendInfo info;
  info.name = "ibm_auckland";
  info.num_qubits = 27;
  info.x_error = 2.229e-4;
  info.cx_error = 1.164e-2;
  info.readout_error = 0.011;
  info.t1_us = 166.220;
  info.t2_us = 145.620;
  info.readout_ns = 757.333;
  return FakeBackend(std::move(info), heavy_hex_27(), 0xA0C1ull);
}

FakeBackend make_toronto() {
  BackendInfo info;
  info.name = "ibmq_toronto";
  info.num_qubits = 27;
  info.x_error = 2.774e-4;
  info.cx_error = 9.677e-3;
  info.readout_error = 0.031;
  info.t1_us = 104.200;
  info.t2_us = 120.760;
  info.readout_ns = 5962.667;
  return FakeBackend(std::move(info), heavy_hex_27(), 0x7030ull);
}

FakeBackend make_montreal() {
  BackendInfo info;
  info.name = "ibmq_montreal";
  info.num_qubits = 27;
  info.x_error = 2.780e-4;
  info.cx_error = 1.049e-2;
  info.readout_error = 0.015;
  info.t1_us = 123.990;
  info.t2_us = 95.010;
  info.readout_ns = 5201.778;
  return FakeBackend(std::move(info), heavy_hex_27(), 0x301Eull);
}

FakeBackend make_guadalupe() {
  BackendInfo info;
  info.name = "ibmq_guadalupe";
  info.num_qubits = 16;
  info.x_error = 3.023e-4;
  info.cx_error = 1.108e-2;
  info.readout_error = 0.025;
  info.t1_us = 102.320;
  info.t2_us = 102.530;
  info.readout_ns = 7111.111;
  return FakeBackend(std::move(info), falcon_16(), 0x6A5Dull);
}

FakeBackend make_backend(const std::string& name) {
  if (name.find("auckland") != std::string::npos) return make_auckland();
  if (name.find("toronto") != std::string::npos) return make_toronto();
  if (name.find("montreal") != std::string::npos) return make_montreal();
  if (name.find("guadalupe") != std::string::npos) return make_guadalupe();
  throw Error("make_backend: unknown backend '" + name + "'");
}

std::vector<std::string> paper_backend_names() {
  return {"ibm_auckland", "ibmq_toronto", "ibmq_guadalupe", "ibmq_montreal"};
}

}  // namespace hgp::backend
