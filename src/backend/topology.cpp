#include "backend/topology.hpp"

#include <limits>
#include <queue>

#include "common/error.hpp"

namespace hgp::backend {

CouplingMap::CouplingMap(std::size_t num_qubits,
                         std::vector<std::pair<std::size_t, std::size_t>> edges)
    : num_qubits_(num_qubits), edges_(std::move(edges)), adj_(num_qubits) {
  for (const auto& [a, b] : edges_) {
    HGP_REQUIRE(a < num_qubits_ && b < num_qubits_ && a != b, "CouplingMap: bad edge");
    adj_[a].push_back(b);
    adj_[b].push_back(a);
  }
  // All-pairs BFS.
  const std::size_t inf = std::numeric_limits<std::size_t>::max() / 2;
  dist_.assign(num_qubits_, std::vector<std::size_t>(num_qubits_, inf));
  for (std::size_t s = 0; s < num_qubits_; ++s) {
    dist_[s][s] = 0;
    std::queue<std::size_t> q;
    q.push(s);
    while (!q.empty()) {
      const std::size_t u = q.front();
      q.pop();
      for (std::size_t v : adj_[u]) {
        if (dist_[s][v] > dist_[s][u] + 1) {
          dist_[s][v] = dist_[s][u] + 1;
          q.push(v);
        }
      }
    }
  }
}

bool CouplingMap::connected(std::size_t a, std::size_t b) const {
  for (std::size_t v : adj_[a])
    if (v == b) return true;
  return false;
}

CouplingMap heavy_hex_27() {
  return CouplingMap(
      27, {{0, 1},   {1, 2},   {1, 4},   {2, 3},   {3, 5},   {4, 7},   {5, 8},
           {6, 7},   {7, 10},  {8, 9},   {8, 11},  {10, 12}, {11, 14}, {12, 13},
           {12, 15}, {13, 14}, {14, 16}, {15, 18}, {16, 19}, {17, 18}, {18, 21},
           {19, 20}, {19, 22}, {21, 23}, {22, 25}, {23, 24}, {24, 25}, {25, 26}});
}

CouplingMap falcon_16() {
  return CouplingMap(16, {{0, 1},
                          {1, 2},
                          {1, 4},
                          {2, 3},
                          {3, 5},
                          {4, 7},
                          {5, 8},
                          {6, 7},
                          {7, 10},
                          {8, 9},
                          {8, 11},
                          {10, 12},
                          {11, 14},
                          {12, 13},
                          {12, 15},
                          {13, 14}});
}

CouplingMap line(std::size_t n) {
  std::vector<std::pair<std::size_t, std::size_t>> edges;
  for (std::size_t i = 0; i + 1 < n; ++i) edges.emplace_back(i, i + 1);
  return CouplingMap(n, std::move(edges));
}

CouplingMap full(std::size_t n) {
  std::vector<std::pair<std::size_t, std::size_t>> edges;
  for (std::size_t i = 0; i < n; ++i)
    for (std::size_t j = i + 1; j < n; ++j) edges.emplace_back(i, j);
  return CouplingMap(n, std::move(edges));
}

}  // namespace hgp::backend
