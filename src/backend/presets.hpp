#pragma once

#include <memory>
#include <string>
#include <vector>

#include "backend/backend.hpp"

namespace hgp::backend {

/// The four machines of the paper's Table I, with its calibration numbers.
/// (Table I prints T1/T2 in "ms"; the values match public IBM calibration
/// data in µs, so the unit is treated as a typo — see DESIGN.md.)
FakeBackend make_auckland();
FakeBackend make_toronto();
FakeBackend make_montreal();
FakeBackend make_guadalupe();

/// Lookup by name ("auckland", "ibmq_toronto", ...).
FakeBackend make_backend(const std::string& name);

/// All Table I backends in paper order.
std::vector<std::string> paper_backend_names();

}  // namespace hgp::backend
