#pragma once

#include <cstddef>
#include <vector>

namespace hgp::backend {

/// Undirected device connectivity plus the all-pairs hop distances the SABRE
/// router scores against.
class CouplingMap {
 public:
  CouplingMap() = default;
  CouplingMap(std::size_t num_qubits, std::vector<std::pair<std::size_t, std::size_t>> edges);

  std::size_t num_qubits() const { return num_qubits_; }
  const std::vector<std::pair<std::size_t, std::size_t>>& edges() const { return edges_; }
  bool connected(std::size_t a, std::size_t b) const;
  const std::vector<std::size_t>& neighbors(std::size_t q) const { return adj_[q]; }
  /// BFS hop distance (precomputed).
  std::size_t distance(std::size_t a, std::size_t b) const { return dist_[a][b]; }

 private:
  std::size_t num_qubits_ = 0;
  std::vector<std::pair<std::size_t, std::size_t>> edges_;
  std::vector<std::vector<std::size_t>> adj_;
  std::vector<std::vector<std::size_t>> dist_;
};

/// 27-qubit IBM Falcon heavy-hex lattice (ibm_auckland / ibmq_toronto /
/// ibmq_montreal).
CouplingMap heavy_hex_27();
/// 16-qubit IBM Falcon (ibmq_guadalupe).
CouplingMap falcon_16();
/// Linear chain, mostly for tests.
CouplingMap line(std::size_t n);
/// Fully connected, for "ideal device" baselines.
CouplingMap full(std::size_t n);

}  // namespace hgp::backend
