#include "backend/backend.hpp"

#include <cmath>

#include "common/error.hpp"
#include "common/rng.hpp"

namespace hgp::backend {

namespace {
/// Coherent-miscalibration magnitudes shared by all fake backends. These are
/// the "what calibration does not know" knobs: they set how much a fixed
/// gate-level compilation is off, and hence how much a trainable pulse
/// ansatz can win back (paper §IV-A).
constexpr double kDriveRateSpread = 0.05;   // fractional qubit-to-qubit spread
constexpr double kFreqDriftSigmaGhz = 4.5e-5;  // ~45 kHz residual frame drift
constexpr double kGainSigma = 0.02;         // 2% amplitude miscalibration
constexpr double kMuZxSpread = 0.10;
constexpr double kZzSigmaGhz = 6e-5;        // 60 kHz static ZZ
constexpr double kCxPhaseSigma = 0.15;      // rad; imperfect echo phase corrections
}  // namespace

FakeBackend::FakeBackend(BackendInfo info, CouplingMap coupling, std::uint64_t seed)
    : info_(std::move(info)), coupling_(std::move(coupling)) {
  HGP_REQUIRE(coupling_.num_qubits() == info_.num_qubits,
              "FakeBackend: coupling map size mismatch");
  Rng rng(seed);

  const int readout_dt =
      ((static_cast<int>(std::lround(info_.readout_ns / pulse::kDtNs)) + 15) / 16) * 16;

  noise_.qubits.resize(info_.num_qubits);
  for (std::size_t q = 0; q < info_.num_qubits; ++q) {
    pulse::QubitCalibration qc;
    qc.drive_rate_ghz = 0.11 * (1.0 + kDriveRateSpread * rng.normal());
    qc.readout_duration = readout_dt;
    cal_.set_qubit(q, qc);

    noise::QubitNoise& qn = noise_.qubits[q];
    qn.t1_us = info_.t1_us * (1.0 + 0.1 * rng.normal());
    qn.t2_us = std::min(info_.t2_us * (1.0 + 0.1 * rng.normal()), 2.0 * qn.t1_us);
    qn.readout.p1_given_0 = 0.8 * info_.readout_error;
    qn.readout.p0_given_1 = 1.2 * info_.readout_error;
    qn.freq_drift_ghz = kFreqDriftSigmaGhz * rng.normal();
    qn.drive_gain = 1.0 + kGainSigma * rng.normal();
  }
  noise_.dep_per_1q_pulse = info_.x_error;
  // In-circuit two-qubit error exceeds the isolated RB number (Table I) due
  // to crosstalk and spectator effects; 1.5x is the usual literature-scale
  // inflation.
  noise_.dep_per_2q_block = 1.5 * info_.cx_error;
  noise_.zz_crosstalk_ghz = kZzSigmaGhz;

  // Directed CR calibrations: one control channel per direction per edge.
  std::size_t u = 0;
  for (const auto& [a, b] : coupling_.edges()) {
    pulse::CrCalibration cr;
    cr.mu_zx_ghz = 0.0030 * (1.0 + kMuZxSpread * rng.normal());
    cr.mu_ix_ghz = 0.0006 * (1.0 + 0.3 * rng.normal());
    cr.mu_zi_ghz = 0.0009 * (1.0 + 0.3 * rng.normal());
    cal_.set_cr(a, b, u++, cr);
    pulse::CrCalibration cr2 = cr;
    cr2.mu_zx_ghz = 0.0030 * (1.0 + kMuZxSpread * rng.normal());
    cal_.set_cr(b, a, u++, cr2);
    zz_[{std::min(a, b), std::max(a, b)}] = kZzSigmaGhz * rng.normal();
    cx_phase_err_[{a, b}] = {kCxPhaseSigma * rng.normal(), kCxPhaseSigma * rng.normal()};
    cx_phase_err_[{b, a}] = {kCxPhaseSigma * rng.normal(), kCxPhaseSigma * rng.normal()};
  }
}

namespace {

/// FNV-1a accumulator; doubles are hashed by bit pattern (calibrations are
/// exact stored values, not recomputed, so bitwise identity is the right
/// equality).
struct Fnv {
  std::uint64_t h = 14695981039346656037ull;

  void bytes(const void* p, std::size_t n) {
    const auto* c = static_cast<const unsigned char*>(p);
    for (std::size_t i = 0; i < n; ++i) {
      h ^= c[i];
      h *= 1099511628211ull;
    }
  }
  void add(double v) { bytes(&v, sizeof v); }
  void add(std::uint64_t v) { bytes(&v, sizeof v); }
  void add(int v) { bytes(&v, sizeof v); }
  void add(const std::string& s) { bytes(s.data(), s.size()); }
};

}  // namespace

std::uint64_t FakeBackend::fingerprint() const {
  Fnv f;
  f.add(info_.name);
  f.add(static_cast<std::uint64_t>(info_.num_qubits));
  for (std::size_t q = 0; q < info_.num_qubits; ++q) {
    const pulse::QubitCalibration& qc = cal_.qubit(q);
    f.add(qc.drive_rate_ghz);
    f.add(qc.sx_duration);
    f.add(qc.sx_sigma);
    f.add(qc.drag_beta);
    f.add(qc.readout_duration);
    const noise::QubitNoise& qn = noise_.qubits[q];
    f.add(qn.freq_drift_ghz);
    f.add(qn.drive_gain);
  }
  for (const auto& [a, b] : coupling_.edges()) {
    for (const auto& [c, t] : {std::pair{a, b}, std::pair{b, a}}) {
      if (!cal_.has_cr(c, t)) continue;
      f.add(static_cast<std::uint64_t>(c));
      f.add(static_cast<std::uint64_t>(t));
      const pulse::CrCalibration& cr = cal_.cr(c, t);
      f.add(cr.mu_zx_ghz);
      f.add(cr.mu_ix_ghz);
      f.add(cr.mu_zi_ghz);
      f.add(cr.cr_duration);
      f.add(cr.cr_sigma);
      f.add(cr.cr_width);
    }
  }
  for (const auto& [pair, zeta] : zz_) {
    f.add(static_cast<std::uint64_t>(pair.first));
    f.add(static_cast<std::uint64_t>(pair.second));
    f.add(zeta);
  }
  for (const auto& [pair, err] : cx_phase_err_) {
    f.add(static_cast<std::uint64_t>(pair.first));
    f.add(static_cast<std::uint64_t>(pair.second));
    f.add(err.first);
    f.add(err.second);
  }
  f.add(noise_.zz_crosstalk_ghz);
  return f.h;
}

std::pair<double, double> FakeBackend::cx_phase_error(std::size_t control,
                                                      std::size_t target) const {
  const auto it = cx_phase_err_.find({control, target});
  return it == cx_phase_err_.end() ? std::pair<double, double>{0.0, 0.0} : it->second;
}

double FakeBackend::zz_crosstalk(std::size_t a, std::size_t b) const {
  const auto it = zz_.find({std::min(a, b), std::max(a, b)});
  return it == zz_.end() ? 0.0 : it->second;
}

int FakeBackend::gate_duration_dt(const qc::Op& op) const {
  using qc::GateKind;
  switch (op.kind) {
    case GateKind::Barrier:
    case GateKind::RZ:
    case GateKind::P:
    case GateKind::Z:
    case GateKind::S:
    case GateKind::Sdg:
    case GateKind::T:
    case GateKind::Tdg:
    case GateKind::I:
      return 0;  // virtual or phase-only
    case GateKind::X:
    case GateKind::SX:
    case GateKind::SXdg:
    case GateKind::RX:
      // RX lowers to two SX pulses in the {rz, sx, x, cx} basis.
      return op.kind == GateKind::RX ? 2 * cal_.qubit(op.qubits[0]).sx_duration
                                     : cal_.qubit(op.qubits[0]).sx_duration;
    case GateKind::H:
    case GateKind::RY:
    case GateKind::Y:
    case GateKind::U3:
      return 2 * cal_.qubit(op.qubits[0]).sx_duration;
    case GateKind::CX:
    case GateKind::CZ:
      return cal_.cx(op.qubits[0], op.qubits[1]).duration();
    case GateKind::RZZ:
      // Standard decomposition: CX · RZ · CX.
      return 2 * cal_.cx(op.qubits[0], op.qubits[1]).duration();
    case GateKind::SWAP:
      return 3 * cal_.cx(op.qubits[0], op.qubits[1]).duration();
    case GateKind::RXX:
      return 2 * cal_.cx(op.qubits[0], op.qubits[1]).duration() +
             4 * cal_.qubit(op.qubits[0]).sx_duration;
    case GateKind::Delay:
      return static_cast<int>(op.params[0].value());
    case GateKind::Measure:
      return readout_duration_dt();
  }
  return 0;
}

int FakeBackend::readout_duration_dt() const { return cal_.qubit(0).readout_duration; }

FakeBackend::Subsystem FakeBackend::subsystem(const std::vector<std::size_t>& qubits,
                                              bool with_coherent_noise) const {
  HGP_REQUIRE(!qubits.empty(), "subsystem: need at least one qubit");
  Subsystem sub{psim::PulseSystem(qubits.size()), {}, qubits};

  for (std::size_t local = 0; local < qubits.size(); ++local) {
    const std::size_t phys = qubits[local];
    HGP_REQUIRE(phys < info_.num_qubits, "subsystem: qubit out of range");
    sub.system.add_drive(local, cal_.qubit(phys).drive_rate_ghz);
    sub.remap[pulse::Channel::drive(phys)] = pulse::Channel::drive(local);
    if (with_coherent_noise) {
      sub.system.set_detuning(local, noise_.qubits[phys].freq_drift_ghz);
      sub.system.set_gain(pulse::Channel::drive(local), noise_.qubits[phys].drive_gain);
    }
  }

  std::size_t local_u = 0;
  for (std::size_t i = 0; i < qubits.size(); ++i) {
    for (std::size_t j = 0; j < qubits.size(); ++j) {
      if (i == j) continue;
      const std::size_t a = qubits[i], b = qubits[j];
      if (!cal_.has_cr(a, b)) continue;
      const pulse::CrCalibration& cr = cal_.cr(a, b);
      sub.system.add_cr(local_u, i, j, cr.mu_zx_ghz, cr.mu_ix_ghz, cr.mu_zi_ghz);
      sub.remap[pulse::Channel::control(cal_.control_channel(a, b))] =
          pulse::Channel::control(local_u);
      if (with_coherent_noise) {
        // The CR tone is emitted by the control qubit's drive electronics.
        sub.system.set_gain(pulse::Channel::control(local_u),
                            noise_.qubits[a].drive_gain);
      }
      ++local_u;
    }
  }

  if (with_coherent_noise) {
    for (std::size_t i = 0; i < qubits.size(); ++i)
      for (std::size_t j = i + 1; j < qubits.size(); ++j) {
        const double zeta = zz_crosstalk(qubits[i], qubits[j]);
        if (zeta != 0.0) sub.system.add_zz_crosstalk(i, j, zeta);
      }
  }
  return sub;
}

pulse::Schedule FakeBackend::remap_schedule(
    const pulse::Schedule& sched, const std::map<pulse::Channel, pulse::Channel>& remap) {
  pulse::Schedule out(sched.name());
  for (const pulse::TimedInstruction& ti : sched.instructions()) {
    const pulse::Channel phys = pulse::instruction_channel(ti.inst);
    const auto it = remap.find(phys);
    if (it == remap.end()) continue;
    pulse::Instruction inst = ti.inst;
    std::visit(
        [&](auto& i) {
          using T = std::decay_t<decltype(i)>;
          if constexpr (std::is_same_v<T, pulse::Acquire>)
            i.qubit = it->second.index;
          else
            i.channel = it->second;
        },
        inst);
    out.insert(ti.t0, std::move(inst));
  }
  return out;
}

}  // namespace hgp::backend
