#pragma once

#include <cstdint>
#include <map>
#include <string>
#include <vector>

#include "backend/topology.hpp"
#include "circuit/circuit.hpp"
#include "noise/model.hpp"
#include "pulse/calibration.hpp"
#include "pulsesim/system.hpp"

namespace hgp::backend {

/// One row of the paper's Table I.
struct BackendInfo {
  std::string name;
  std::size_t num_qubits = 0;
  double x_error = 3e-4;
  double cx_error = 1e-2;
  double readout_error = 0.02;
  double t1_us = 100.0;  // Table I prints "ms"; values match public IBM
  double t2_us = 100.0;  // calibrations in µs (paper unit typo).
  double readout_ns = 5000.0;
};

/// A simulated IBM-style device: topology, analytic pulse calibrations with
/// seeded per-qubit/per-pair spread, Table-I noise parameters, and the
/// coherent miscalibrations (frequency drift, drive gain, ZZ crosstalk) that
/// real machine-in-loop training fights.
class FakeBackend {
 public:
  FakeBackend(BackendInfo info, CouplingMap coupling, std::uint64_t seed);

  const std::string& name() const { return info_.name; }
  std::size_t num_qubits() const { return info_.num_qubits; }
  const BackendInfo& info() const { return info_; }
  const CouplingMap& coupling() const { return coupling_; }
  const pulse::CalibrationSet& calibrations() const { return cal_; }
  const noise::NoiseModel& noise_model() const { return noise_; }
  noise::NoiseModel& mutable_noise_model() { return noise_; }
  /// ZZ crosstalk (GHz) of a coupled pair (0 when uncoupled).
  double zz_crosstalk(std::size_t a, std::size_t b) const;
  /// Residual coherent phase error of the calibrated CX on (control,
  /// target): the virtual-Z corrections baked into the echo calibration are
  /// imperfect, leaving a static RZ(first)⊗RZ(second) defect per gate.
  std::pair<double, double> cx_phase_error(std::size_t control, std::size_t target) const;

  /// Content hash over everything a compiled block unitary depends on:
  /// identity, topology, pulse calibrations, and the coherent
  /// miscalibrations (drift, gains, ZZ, CX phase defects). Two backends with
  /// equal fingerprints compile identical blocks, so the shared
  /// serve::BlockCache keys on it; recalibrating (or mutating the noise
  /// model) changes the fingerprint and invalidates stale entries.
  std::uint64_t fingerprint() const;

  /// Duration of one gate in dt samples, from the lowered schedule (virtual
  /// RZ and barriers are free).
  int gate_duration_dt(const qc::Op& op) const;
  int readout_duration_dt() const;

  /// Pulse subsystem over an ordered set of physical qubits. Local qubit i
  /// = qubits[i]; `remap` translates physical channels to local ones (CR
  /// channels exist for coupled pairs inside the set, both directions).
  struct Subsystem {
    psim::PulseSystem system;
    std::map<pulse::Channel, pulse::Channel> remap;
    std::vector<std::size_t> qubits;
  };
  Subsystem subsystem(const std::vector<std::size_t>& qubits, bool with_coherent_noise) const;

  /// Rewrite a physical-channel schedule onto a subsystem's local channels.
  /// Instructions on unmapped channels are dropped (e.g. measure stimulus).
  static pulse::Schedule remap_schedule(const pulse::Schedule& sched,
                                        const std::map<pulse::Channel, pulse::Channel>& remap);

 private:
  BackendInfo info_;
  CouplingMap coupling_;
  pulse::CalibrationSet cal_;
  noise::NoiseModel noise_;
  std::map<std::pair<std::size_t, std::size_t>, double> zz_;  // per coupled pair
  // per directed pair: (control phase, target phase) defect of the CX cal
  std::map<std::pair<std::size_t, std::size_t>, std::pair<double, double>> cx_phase_err_;
};

}  // namespace hgp::backend
