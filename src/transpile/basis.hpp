#pragma once

#include "circuit/circuit.hpp"

namespace hgp::qc {
class Circuit;
}

namespace hgp::transpile {

/// Rewrite a circuit into the IBM native basis {RZ, SX, X, CX} (+ Barrier),
/// preserving symbolic parameters (affine Param arithmetic) and global-phase
/// equivalence. RX becomes the textbook two-SX sequence — which is why the
/// gate-level QAOA mixer costs 2 × 160dt = 320dt of drive time per qubit.
qc::Circuit to_native_basis(const qc::Circuit& circuit);

}  // namespace hgp::transpile
