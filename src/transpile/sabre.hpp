#pragma once

#include <cstddef>
#include <vector>

#include "backend/topology.hpp"
#include "circuit/circuit.hpp"
#include "common/rng.hpp"

namespace hgp::transpile {

/// Result of SABRE layout + routing: the circuit rewritten onto physical
/// qubits (device width) with SWAPs inserted so every 2-qubit gate acts on a
/// coupled pair.
struct SabreResult {
  qc::Circuit circuit;
  /// virtual qubit v starts at physical initial_layout[v].
  std::vector<std::size_t> initial_layout;
  /// virtual qubit v ends at physical final_layout[v] (SWAPs move it).
  std::vector<std::size_t> final_layout;
  std::size_t swap_count = 0;
};

/// SABRE qubit mapping & routing (Li, Ding, Xie — ASPLOS'19): routing with a
/// lookahead + decay heuristic; the initial layout is improved by
/// forward/backward routing sweeps. Pass a non-empty `fixed_layout` to pin
/// the virtual→physical placement (the paper fixes it across experiments)
/// and only route.
SabreResult sabre_route(const qc::Circuit& circuit, const backend::CouplingMap& coupling,
                        Rng& rng, int layout_trials = 4,
                        const std::vector<std::size_t>& fixed_layout = {});

/// Baseline router without lookahead: for every non-adjacent 2-qubit gate,
/// walk the shortest physical path and SWAP the control toward the target.
/// This is the "raw" (unoptimized) compilation; Step II replaces it with
/// SABRE.
SabreResult greedy_route(const qc::Circuit& circuit, const backend::CouplingMap& coupling,
                         const std::vector<std::size_t>& fixed_layout);

}  // namespace hgp::transpile
