#pragma once

#include <vector>

#include "backend/backend.hpp"
#include "circuit/circuit.hpp"

namespace hgp::transpile {

/// One op with its ASAP start time and duration in dt samples.
struct TimedOp {
  qc::Op op;
  int t0 = 0;
  int duration = 0;
};

/// ASAP-scheduled circuit with device timing: used for duration reporting
/// (the paper's "dt" numbers) and for duration-proportional decoherence.
struct ScheduledCircuit {
  std::vector<TimedOp> ops;
  int makespan_dt = 0;
  std::vector<int> qubit_busy_dt;  // active+idle span per qubit up to makespan
};

ScheduledCircuit schedule_asap(const qc::Circuit& circuit, const backend::FakeBackend& dev);

/// Dynamical-decoupling insertion (paper Step III menu): fills every idle
/// window longer than `min_window_dt` with a centered X–X echo pair.
/// Returns the circuit with DD pulses added (unitarily the identity, but it
/// refocuses quasi-static dephasing in the noise model).
qc::Circuit insert_dd(const qc::Circuit& circuit, const backend::FakeBackend& dev,
                      int min_window_dt = 640);

}  // namespace hgp::transpile
