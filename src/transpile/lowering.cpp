#include "transpile/lowering.hpp"

#include <algorithm>
#include <functional>

#include "common/error.hpp"
#include "linalg/types.hpp"
#include "transpile/basis.hpp"

namespace hgp::transpile {

LoweredProgram lower_to_pulses(const qc::Circuit& circuit, const backend::FakeBackend& dev,
                               const LoweringOptions& options) {
  const pulse::CalibrationSet& cal = dev.calibrations();
  LoweredProgram out;
  out.frame_phase.assign(circuit.num_qubits(), 0.0);

  std::vector<int> clock(circuit.num_qubits(), 0);
  std::vector<bool> touched(circuit.num_qubits(), false);

  auto place = [&](const pulse::Schedule& gate_sched, const std::vector<std::size_t>& qubits) {
    int t0 = 0;
    for (std::size_t q : qubits) t0 = std::max(t0, clock[q]);
    out.schedule.insert(t0, gate_sched);
    const int end = t0 + gate_sched.duration();
    for (std::size_t q : qubits) {
      clock[q] = end;
      touched[q] = true;
      out.frame_phase[q] += pulse::CalibrationSet::drive_phase_shift(gate_sched, q);
    }
  };

  std::function<void(const qc::Op&)> lower_op = [&](const qc::Op& op) {
    using qc::GateKind;
    switch (op.kind) {
      case GateKind::Barrier: {
        const int t = *std::max_element(clock.begin(), clock.end());
        for (std::size_t q = 0; q < circuit.num_qubits(); ++q)
          if (touched[q]) clock[q] = t;
        return;
      }
      case GateKind::I:
      case GateKind::Measure:  // readout is appended at the end
        return;
      case GateKind::Delay: {
        pulse::Schedule d("delay");
        d.append(pulse::Delay{static_cast<int>(op.params[0].value()),
                              pulse::Channel::drive(op.qubits[0])});
        place(d, op.qubits);
        return;
      }
      case GateKind::RZ:
        place(cal.rz(op.qubits[0], op.params[0].value()), op.qubits);
        return;
      case GateKind::SX:
        place(cal.sx(op.qubits[0]), op.qubits);
        return;
      case GateKind::X:
        place(cal.x(op.qubits[0]), op.qubits);
        return;
      case GateKind::CX:
        place(cal.cx(op.qubits[0], op.qubits[1]), op.qubits);
        return;
      case GateKind::RZZ:
        if (options.pulse_efficient_rzz) {
          place(cal.rzz_direct(op.qubits[0], op.qubits[1], op.params[0].value()), op.qubits);
          return;
        }
        break;
      default:
        break;
    }
    // Anything else: translate this one op into the native basis and recurse.
    qc::Circuit one(circuit.num_qubits());
    one.append(op);
    const qc::Circuit native = to_native_basis(one);
    HGP_REQUIRE(native.size() != 1 || native.ops()[0].kind != op.kind,
                "lower_to_pulses: gate has no pulse definition: " + qc::gate_name(op.kind));
    for (const qc::Op& sub : native.ops()) lower_op(sub);
  };

  for (const qc::Op& op : circuit.ops()) lower_op(op);

  if (options.include_measure) {
    std::vector<std::size_t> measured;
    for (std::size_t q = 0; q < circuit.num_qubits(); ++q)
      if (touched[q]) measured.push_back(q);
    if (!measured.empty()) {
      const int t = *std::max_element(clock.begin(), clock.end());
      out.schedule.insert(t, cal.measure(measured));
    }
  }
  return out;
}

}  // namespace hgp::transpile
