#pragma once

#include <cstdint>
#include <vector>

#include "backend/backend.hpp"
#include "circuit/circuit.hpp"

namespace hgp::transpile {

/// End-to-end gate-level compilation options (paper Step II).
struct TranspileOptions {
  /// Fixed virtual→physical placement (the paper pins it for fairness);
  /// empty = SABRE layout search.
  std::vector<std::size_t> initial_layout;
  /// Run commutative cancellation after routing/translation.
  bool cancellation = true;
  /// SABRE routing (paper Step II); false = greedy shortest-path routing,
  /// the "raw" compilation baseline.
  bool sabre_routing = true;
  /// Layout search trials when no fixed layout is given.
  int layout_trials = 4;
  std::uint64_t seed = 7;
};

struct TranspileResult {
  /// Physical circuit in the native basis {RZ, SX, X, CX}, device width.
  qc::Circuit circuit;
  std::vector<std::size_t> initial_layout;  // virtual -> physical
  std::vector<std::size_t> final_layout;    // virtual -> physical after SWAPs
  std::size_t swap_count = 0;
  std::size_t ops_before_cancellation = 0;
};

/// SABRE route -> native-basis translate -> commutative cancellation.
/// Parameters stay symbolic throughout, so one transpilation can be bound
/// with many parameter vectors during training.
TranspileResult transpile(const qc::Circuit& circuit, const backend::FakeBackend& dev,
                          const TranspileOptions& options = {});

}  // namespace hgp::transpile
