#pragma once

#include "circuit/circuit.hpp"

namespace hgp::transpile {

/// Commutative gate cancellation (paper Step II): removes adjacent
/// self-inverse pairs (X·X, H·H, CX·CX, ...), merges runs of RZ/RZZ
/// rotations, drops zero-angle rotations, and uses commutation rules
/// (diagonal gates commute with CX controls, X-axis gates with CX targets)
/// to cancel across intervening gates. Repeats to a fixed point.
qc::Circuit cancel_gates(const qc::Circuit& circuit);

/// Number of ops removed by one cancellation run (for reporting).
std::size_t cancellation_gain(const qc::Circuit& before, const qc::Circuit& after);

}  // namespace hgp::transpile
