#pragma once

#include "circuit/circuit.hpp"
#include "transpile/pass_report.hpp"

namespace hgp::transpile {

/// Commutative gate cancellation (paper Step II): removes adjacent
/// self-inverse pairs (X·X, H·H, CX·CX, ...), merges runs of RZ/RZZ
/// rotations, drops zero-angle rotations, and uses commutation rules
/// (diagonal gates commute with CX controls, X-axis gates with CX targets)
/// to cancel across intervening gates. Repeats to a fixed point. The
/// diagonal vocabulary is qc::gate_is_diagonal — the same classification the
/// executor's virtual-gate folding and the fusion pass build on.
/// When `stats` is non-null it receives the pass's op accounting
/// (ops_in/ops_out; merged_runs counts rotation merges).
qc::Circuit cancel_gates(const qc::Circuit& circuit, PassStats* stats = nullptr);

/// Number of ops removed by one cancellation run (for reporting).
std::size_t cancellation_gain(const qc::Circuit& before, const qc::Circuit& after);

}  // namespace hgp::transpile
