#pragma once

#include "backend/backend.hpp"
#include "circuit/circuit.hpp"
#include "pulse/schedule.hpp"

namespace hgp::transpile {

/// Options for gate→pulse lowering.
struct LoweringOptions {
  /// Lower RZZ through a single echoed CR (pulse-efficient transpilation,
  /// Earnest et al.) instead of the CX·RZ·CX gate decomposition.
  bool pulse_efficient_rzz = false;
  /// Append the readout stimulus/acquire at the end.
  bool include_measure = true;
};

/// Result of lowering: the full physical-channel schedule plus the virtual-Z
/// frame each qubit has accumulated (the exact circuit unitary equals
/// ⊗RZ(-frame_q) · U_schedule; Z-basis sampling is unaffected).
struct LoweredProgram {
  pulse::Schedule schedule;
  std::vector<double> frame_phase;  // per physical qubit
};

/// Lower a physical, bound circuit (output of the transpiler) to one pulse
/// schedule using the backend's calibrations. Gates are placed ASAP with
/// per-qubit clocks.
LoweredProgram lower_to_pulses(const qc::Circuit& circuit, const backend::FakeBackend& dev,
                               const LoweringOptions& options = {});

}  // namespace hgp::transpile
