#include "transpile/scheduling.hpp"

#include <algorithm>

#include "common/error.hpp"

namespace hgp::transpile {

ScheduledCircuit schedule_asap(const qc::Circuit& circuit, const backend::FakeBackend& dev) {
  ScheduledCircuit out;
  std::vector<int> clock(circuit.num_qubits(), 0);
  for (const qc::Op& op : circuit.ops()) {
    if (op.kind == qc::GateKind::Barrier) {
      const int t = clock.empty() ? 0 : *std::max_element(clock.begin(), clock.end());
      std::fill(clock.begin(), clock.end(), t);
      out.ops.push_back(TimedOp{op, t, 0});
      continue;
    }
    const int dur = dev.gate_duration_dt(op);
    int t0 = 0;
    for (std::size_t q : op.qubits) t0 = std::max(t0, clock[q]);
    for (std::size_t q : op.qubits) clock[q] = t0 + dur;
    out.ops.push_back(TimedOp{op, t0, dur});
  }
  out.makespan_dt = clock.empty() ? 0 : *std::max_element(clock.begin(), clock.end());
  out.qubit_busy_dt = std::move(clock);
  return out;
}

qc::Circuit insert_dd(const qc::Circuit& circuit, const backend::FakeBackend& dev,
                      int min_window_dt) {
  const ScheduledCircuit sched = schedule_asap(circuit, dev);
  const int x_dur = dev.gate_duration_dt(qc::Op{qc::GateKind::X, {0}, {}});

  // Find idle windows per qubit between that qubit's ops (not before its
  // first op — DD on |0> is pointless). The window is filled with the
  // centered echo  delay(τ/4) X delay(τ/2) X delay(τ/4), which refocuses
  // quasi-static Z noise (frame drift) accumulated across the idle.
  std::vector<int> last_end(circuit.num_qubits(), -1);
  std::vector<std::vector<std::pair<int, std::size_t>>> insertions_before(sched.ops.size());

  for (std::size_t i = 0; i < sched.ops.size(); ++i) {
    const TimedOp& top = sched.ops[i];
    for (std::size_t q : top.op.qubits) {
      const int window = last_end[q] >= 0 ? top.t0 - last_end[q] : 0;
      if (window >= min_window_dt && window >= 4 * x_dur)
        insertions_before[i].push_back({window, q});
      last_end[q] = top.t0 + top.duration;
    }
  }

  qc::Circuit out(circuit.num_qubits());
  for (std::size_t i = 0; i < sched.ops.size(); ++i) {
    for (const auto& [window, q] : insertions_before[i]) {
      const int tau = window - 2 * x_dur;
      out.delay(q, tau / 4);
      out.x(q);
      out.delay(q, tau / 2);
      out.x(q);
      out.delay(q, tau - tau / 4 - tau / 2);
    }
    out.append(sched.ops[i].op);
  }
  return out;
}

}  // namespace hgp::transpile
