#include "transpile/cancellation.hpp"

#include <algorithm>
#include <cmath>

#include "common/error.hpp"

namespace hgp::transpile {

using qc::Circuit;
using qc::GateKind;
using qc::Op;
using qc::Param;

namespace {

enum class AxisRole { Diagonal, XAxis, Other };

/// How a gate acts on one of its qubits, for commutation analysis: diagonal
/// actions commute among themselves, X-axis actions likewise.
AxisRole role_on(const Op& op, std::size_t q) {
  if (op.kind == GateKind::CX)
    return q == op.qubits[0] ? AxisRole::Diagonal : AxisRole::XAxis;
  // Shared diagonal vocabulary (gates.hpp): identical to what the executor's
  // virtual-gate folding and the timeline fusion pass classify as diagonal.
  if (qc::gate_is_diagonal(op.kind)) return AxisRole::Diagonal;
  switch (op.kind) {
    case GateKind::X:
    case GateKind::SX:
    case GateKind::SXdg:
    case GateKind::RX:
    case GateKind::RXX:
      return AxisRole::XAxis;
    default:
      return AxisRole::Other;
  }
}

bool commute(const Op& a, const Op& b) {
  for (std::size_t qa : a.qubits) {
    for (std::size_t qb : b.qubits) {
      if (qa != qb) continue;
      const AxisRole ra = role_on(a, qa);
      const AxisRole rb = role_on(b, qb);
      if (ra == AxisRole::Other || rb == AxisRole::Other || ra != rb) return false;
    }
  }
  return true;
}

bool qubit_order_matters(GateKind k) { return k == GateKind::CX; }

bool same_qubits(const Op& a, const Op& b) {
  if (a.qubits.size() != b.qubits.size()) return false;
  if (qubit_order_matters(a.kind)) return a.qubits == b.qubits;
  std::vector<std::size_t> qa = a.qubits, qb = b.qubits;
  std::sort(qa.begin(), qa.end());
  std::sort(qb.begin(), qb.end());
  return qa == qb;
}

bool is_rotation(GateKind k) {
  return k == GateKind::RZ || k == GateKind::RX || k == GateKind::RY || k == GateKind::P ||
         k == GateKind::RZZ || k == GateKind::RXX;
}

/// Try to fold `b` into the earlier op `a`. Returns: 0 = no action,
/// 1 = both ops vanish, 2 = merged into `a` (b vanishes).
int try_fold(Op& a, const Op& b) {
  if (a.kind == b.kind && same_qubits(a, b)) {
    if (qc::gate_is_self_inverse(a.kind)) return 1;
    if (is_rotation(a.kind) && a.params[0].is_constant() && b.params[0].is_constant()) {
      a.params[0] = Param::constant(a.params[0].value() + b.params[0].value());
      return 2;
    }
  }
  // Dagger pairs.
  if (same_qubits(a, b) && qc::gate_inverse_kind(a.kind) == b.kind && a.kind != b.kind) return 1;
  return 0;
}

bool is_removable_identity(const Op& op) {
  if (op.kind == GateKind::I) return true;
  if (is_rotation(op.kind) && op.params[0].is_constant()) {
    // Angles that are multiples of 4π are exactly the identity; 2π is a
    // global phase (harmless to drop for half-turn rotations).
    const double theta = std::fmod(std::abs(op.params[0].value()), 2.0 * la::kPi);
    return theta < 1e-12 || theta > 2.0 * la::kPi - 1e-12;
  }
  return false;
}

}  // namespace

Circuit cancel_gates(const Circuit& circuit, PassStats* stats) {
  std::vector<Op> ops;
  ops.reserve(circuit.size());
  for (const Op& op : circuit.ops()) ops.push_back(op);
  std::size_t merges = 0;

  bool changed = true;
  int guard = 0;
  while (changed && guard++ < 50) {
    changed = false;
    std::vector<Op> out;
    std::vector<bool> live;
    for (const Op& op : ops) {
      if (op.kind == GateKind::Barrier) {
        out.push_back(op);
        live.push_back(true);
        continue;
      }
      if (is_removable_identity(op)) {
        changed = true;
        continue;
      }
      bool folded = false;
      // Scan backward over live ops; stop at a blocker.
      for (std::size_t r = out.size(); r-- > 0;) {
        if (!live[r]) continue;
        Op& prev = out[r];
        if (prev.kind == GateKind::Barrier) break;
        const bool shares = std::any_of(op.qubits.begin(), op.qubits.end(), [&](std::size_t q) {
          return std::find(prev.qubits.begin(), prev.qubits.end(), q) != prev.qubits.end();
        });
        if (!shares) continue;
        const int action = try_fold(prev, op);
        if (action == 1) {
          live[r] = false;
          folded = true;
          changed = true;
          break;
        }
        if (action == 2) {
          ++merges;
          folded = true;
          changed = true;
          break;
        }
        if (!commute(prev, op)) break;
      }
      if (!folded) {
        out.push_back(op);
        live.push_back(true);
      }
    }
    ops.clear();
    for (std::size_t i = 0; i < out.size(); ++i)
      if (live[i]) ops.push_back(std::move(out[i]));
  }

  Circuit result(circuit.num_qubits());
  for (Op& op : ops) result.append(std::move(op));
  if (stats != nullptr) {
    stats->ops_in = circuit.size();
    stats->ops_out = result.size();
    stats->merged_runs = merges;
  }
  return result;
}

std::size_t cancellation_gain(const Circuit& before, const Circuit& after) {
  return before.size() >= after.size() ? before.size() - after.size() : 0;
}

}  // namespace hgp::transpile
