#pragma once

#include <cstddef>

namespace hgp::transpile {

/// Shared before/after report of an op-reducing pass — filled by circuit-level
/// gate cancellation and by the timeline block-fusion pass, so callers read
/// one shape regardless of which layer did the shrinking.
struct PassStats {
  std::size_t ops_in = 0;    // ops (or timeline blocks) entering the pass
  std::size_t ops_out = 0;   // ops (or fused blocks) leaving it
  std::size_t merged_runs = 0;  // fused/merged groups of >= 2 ops
  std::size_t max_run_len = 0;  // longest such group

  std::size_t removed() const { return ops_in >= ops_out ? ops_in - ops_out : 0; }
};

}  // namespace hgp::transpile
