#include "transpile/sabre.hpp"

#include <algorithm>
#include <numeric>

#include "common/error.hpp"

namespace hgp::transpile {

namespace {

constexpr double kExtendedWeight = 0.5;
constexpr double kDecayRate = 0.001;
constexpr std::size_t kExtendedSetSize = 20;

/// Routing state: layout maps virtual -> physical; inverse the other way.
struct Layout {
  std::vector<std::size_t> v2p;
  std::vector<std::size_t> p2v;

  void swap_physical(std::size_t pa, std::size_t pb) {
    const std::size_t va = p2v[pa], vb = p2v[pb];
    std::swap(p2v[pa], p2v[pb]);
    if (va != SIZE_MAX) v2p[va] = pb;
    if (vb != SIZE_MAX) v2p[vb] = pa;
  }
};

struct TwoQubitGate {
  std::size_t index;  // into the op list
  std::size_t a, b;   // virtual qubits
};

/// Dependency structure over the 2-qubit gates only; 1-qubit gates are
/// emitted eagerly once their predecessors have been routed.
struct GateDag {
  std::vector<TwoQubitGate> gates;
  std::vector<std::vector<std::size_t>> successors;  // gate -> gates
  std::vector<int> in_degree;
};

GateDag build_dag(const qc::Circuit& circuit) {
  GateDag dag;
  std::vector<int> last_gate_on_qubit(circuit.num_qubits(), -1);
  for (std::size_t i = 0; i < circuit.ops().size(); ++i) {
    const qc::Op& op = circuit.ops()[i];
    if (op.qubits.size() != 2) continue;
    const std::size_t g = dag.gates.size();
    dag.gates.push_back(TwoQubitGate{i, op.qubits[0], op.qubits[1]});
    dag.successors.emplace_back();
    dag.in_degree.push_back(0);
    for (std::size_t q : op.qubits) {
      const int prev = last_gate_on_qubit[q];
      if (prev >= 0) {
        dag.successors[static_cast<std::size_t>(prev)].push_back(g);
        ++dag.in_degree[g];
      }
      last_gate_on_qubit[q] = static_cast<int>(g);
    }
  }
  return dag;
}

struct RouteOutcome {
  std::vector<qc::Op> ops;  // physical ops
  Layout final_layout;
  std::size_t swaps = 0;
};

RouteOutcome route(const qc::Circuit& circuit, const backend::CouplingMap& map, Layout layout,
                   Rng& rng) {
  const std::size_t nv = circuit.num_qubits();
  GateDag dag = build_dag(circuit);

  // For interleaving: for each op index, how many 2q gates precede it.
  // 1-qubit ops are emitted as soon as all earlier 2q gates on their qubit
  // are routed; we process the op list lazily per qubit.
  std::vector<std::size_t> next_op(1, 0);  // single cursor over ops
  std::vector<bool> gate_done(dag.gates.size(), false);
  std::vector<std::size_t> gate_of_op(circuit.ops().size(), SIZE_MAX);
  for (std::size_t g = 0; g < dag.gates.size(); ++g) gate_of_op[dag.gates[g].index] = g;

  RouteOutcome out;
  out.swaps = 0;

  std::vector<double> decay(map.num_qubits(), 1.0);
  std::vector<std::size_t> front;
  for (std::size_t g = 0; g < dag.gates.size(); ++g)
    if (dag.in_degree[g] == 0) front.push_back(g);

  std::size_t cursor = 0;
  auto flush_ready_ops = [&]() {
    // Emit every op (1q, barrier) up to the first unrouted 2q gate.
    while (cursor < circuit.ops().size()) {
      const qc::Op& op = circuit.ops()[cursor];
      const std::size_t g = gate_of_op[cursor];
      if (g != SIZE_MAX && !gate_done[g]) break;
      if (g == SIZE_MAX) {
        qc::Op mapped = op;
        for (std::size_t& q : mapped.qubits) q = layout.v2p[q];
        out.ops.push_back(std::move(mapped));
      }
      ++cursor;
    }
  };

  std::vector<std::size_t> newly_ready;
  auto emit_gate = [&](std::size_t g) {
    const TwoQubitGate& gate = dag.gates[g];
    qc::Op mapped = circuit.ops()[gate.index];
    for (std::size_t& q : mapped.qubits) q = layout.v2p[q];
    gate_done[g] = true;
    out.ops.push_back(std::move(mapped));
    for (std::size_t s : dag.successors[g])
      if (--dag.in_degree[s] == 0) newly_ready.push_back(s);
  };

  flush_ready_ops();
  std::size_t stall_guard = 0;
  while (!front.empty()) {
    // Execute every front gate that is already adjacent (gates unblocked by
    // an emission join the front on the next sweep).
    bool progress = false;
    std::vector<std::size_t> still_blocked;
    for (std::size_t g : front) {
      const TwoQubitGate& gate = dag.gates[g];
      if (map.connected(layout.v2p[gate.a], layout.v2p[gate.b])) {
        emit_gate(g);
        progress = true;
      } else {
        still_blocked.push_back(g);
      }
    }
    front = std::move(still_blocked);
    front.insert(front.end(), newly_ready.begin(), newly_ready.end());
    newly_ready.clear();
    if (progress) {
      flush_ready_ops();
      std::fill(decay.begin(), decay.end(), 1.0);
      stall_guard = 0;
      continue;
    }
    if (front.empty()) break;

    // Extended set: successors of the front, breadth-first, for lookahead.
    std::vector<std::size_t> extended;
    {
      std::vector<std::size_t> frontier = front;
      while (extended.size() < kExtendedSetSize && !frontier.empty()) {
        std::vector<std::size_t> next;
        for (std::size_t g : frontier)
          for (std::size_t s : dag.successors[g]) {
            extended.push_back(s);
            next.push_back(s);
            if (extended.size() >= kExtendedSetSize) break;
          }
        frontier = std::move(next);
      }
    }

    // Candidate swaps: edges touching any qubit of a front gate.
    std::vector<std::pair<std::size_t, std::size_t>> candidates;
    for (std::size_t g : front) {
      for (std::size_t vq : {dag.gates[g].a, dag.gates[g].b}) {
        const std::size_t p = layout.v2p[vq];
        for (std::size_t nb : map.neighbors(p)) candidates.emplace_back(p, nb);
      }
    }

    auto score = [&](const std::pair<std::size_t, std::size_t>& sw) {
      Layout trial = layout;
      trial.swap_physical(sw.first, sw.second);
      double h = 0.0;
      for (std::size_t g : front)
        h += static_cast<double>(
            map.distance(trial.v2p[dag.gates[g].a], trial.v2p[dag.gates[g].b]));
      h /= static_cast<double>(front.size());
      if (!extended.empty()) {
        double e = 0.0;
        for (std::size_t g : extended)
          e += static_cast<double>(
              map.distance(trial.v2p[dag.gates[g].a], trial.v2p[dag.gates[g].b]));
        h += kExtendedWeight * e / static_cast<double>(extended.size());
      }
      return std::max(decay[sw.first], decay[sw.second]) * h;
    };

    double best_score = 0.0;
    std::vector<std::pair<std::size_t, std::size_t>> best;
    for (const auto& sw : candidates) {
      const double s = score(sw);
      if (best.empty() || s < best_score - 1e-12) {
        best_score = s;
        best = {sw};
      } else if (s < best_score + 1e-12) {
        best.push_back(sw);
      }
    }
    HGP_REQUIRE(!best.empty(), "sabre: no candidate swaps (disconnected device?)");
    const auto chosen = best[static_cast<std::size_t>(
        rng.uniform_int(0, static_cast<int>(best.size()) - 1))];

    layout.swap_physical(chosen.first, chosen.second);
    decay[chosen.first] += kDecayRate;
    decay[chosen.second] += kDecayRate;
    out.ops.push_back(qc::Op{qc::GateKind::SWAP, {chosen.first, chosen.second}, {}});
    ++out.swaps;
    HGP_REQUIRE(++stall_guard < 10000, "sabre: routing did not converge");
  }
  flush_ready_ops();
  HGP_REQUIRE(cursor == circuit.ops().size(), "sabre: not all ops were routed");
  (void)nv;
  out.final_layout = std::move(layout);
  return out;
}

Layout make_layout(std::size_t nv, std::size_t np, const std::vector<std::size_t>& v2p) {
  Layout l;
  l.v2p = v2p;
  l.p2v.assign(np, SIZE_MAX);
  for (std::size_t v = 0; v < nv; ++v) l.p2v[v2p[v]] = v;
  return l;
}

}  // namespace

SabreResult sabre_route(const qc::Circuit& circuit, const backend::CouplingMap& coupling,
                        Rng& rng, int layout_trials,
                        const std::vector<std::size_t>& fixed_layout) {
  const std::size_t nv = circuit.num_qubits();
  const std::size_t np = coupling.num_qubits();
  HGP_REQUIRE(nv <= np, "sabre_route: circuit wider than device");

  qc::Circuit wide(np);
  for (const qc::Op& op : circuit.ops()) wide.append(op);

  auto run_with = [&](const std::vector<std::size_t>& v2p) {
    return route(wide, coupling, make_layout(np, np, v2p), rng);
  };

  std::vector<std::size_t> init(np);
  if (!fixed_layout.empty()) {
    HGP_REQUIRE(fixed_layout.size() >= nv, "sabre_route: fixed layout too small");
    std::vector<bool> used(np, false);
    std::iota(init.begin(), init.end(), 0);
    // Place virtual qubits as requested; fill remaining identities greedily.
    for (std::size_t v = 0; v < fixed_layout.size() && v < np; ++v) {
      init[v] = fixed_layout[v];
      used[fixed_layout[v]] = true;
    }
    std::size_t next_free = 0;
    for (std::size_t v = fixed_layout.size(); v < np; ++v) {
      while (next_free < np && used[next_free]) ++next_free;
      HGP_REQUIRE(next_free < np, "sabre_route: fixed layout collision");
      init[v] = next_free;
      used[next_free] = true;
    }
    // Routing is stochastic (tie-breaks): keep the best of a few attempts.
    RouteOutcome outcome = run_with(init);
    for (int trial = 1; trial < std::max(1, layout_trials); ++trial) {
      RouteOutcome alt = run_with(init);
      if (alt.swaps < outcome.swaps) outcome = std::move(alt);
    }
    SabreResult result;
    result.circuit = qc::Circuit(np);
    for (qc::Op& op : outcome.ops) result.circuit.append(std::move(op));
    result.initial_layout = init;
    result.final_layout.resize(np);
    for (std::size_t v = 0; v < np; ++v) result.final_layout[v] = outcome.final_layout.v2p[v];
    result.swap_count = outcome.swaps;
    return result;
  }

  // SABRE layout search: random starts refined by forward/backward sweeps;
  // keep the trial with the fewest SWAPs.
  const qc::Circuit reversed = [&] {
    qc::Circuit r(np);
    for (auto it = wide.ops().rbegin(); it != wide.ops().rend(); ++it) r.append(*it);
    return r;
  }();

  SabreResult best;
  bool have_best = false;
  for (int trial = 0; trial < layout_trials; ++trial) {
    std::vector<std::size_t> v2p(np);
    std::iota(v2p.begin(), v2p.end(), 0);
    rng.shuffle(v2p);
    // Forward-backward refinement.
    for (int sweep = 0; sweep < 2; ++sweep) {
      RouteOutcome fwd = route(wide, coupling, make_layout(np, np, v2p), rng);
      RouteOutcome bwd = route(reversed, coupling, fwd.final_layout, rng);
      v2p = bwd.final_layout.v2p;
    }
    RouteOutcome outcome = route(wide, coupling, make_layout(np, np, v2p), rng);
    if (!have_best || outcome.swaps < best.swap_count) {
      best.circuit = qc::Circuit(np);
      for (qc::Op& op : outcome.ops) best.circuit.append(std::move(op));
      best.initial_layout = v2p;
      best.final_layout.resize(np);
      for (std::size_t v = 0; v < np; ++v) best.final_layout[v] = outcome.final_layout.v2p[v];
      best.swap_count = outcome.swaps;
      have_best = true;
    }
  }
  return best;
}

SabreResult greedy_route(const qc::Circuit& circuit, const backend::CouplingMap& coupling,
                         const std::vector<std::size_t>& fixed_layout) {
  const std::size_t nv = circuit.num_qubits();
  const std::size_t np = coupling.num_qubits();
  HGP_REQUIRE(nv <= np, "greedy_route: circuit wider than device");
  HGP_REQUIRE(fixed_layout.size() >= nv, "greedy_route: need a full layout");

  Layout layout = make_layout(np, np, [&] {
    std::vector<std::size_t> v2p(np);
    std::vector<bool> used(np, false);
    for (std::size_t v = 0; v < nv; ++v) {
      v2p[v] = fixed_layout[v];
      used[fixed_layout[v]] = true;
    }
    std::size_t next_free = 0;
    for (std::size_t v = nv; v < np; ++v) {
      while (used[next_free]) ++next_free;
      v2p[v] = next_free;
      used[next_free] = true;
    }
    return v2p;
  }());

  SabreResult out;
  out.circuit = qc::Circuit(np);
  for (std::size_t v = 0; v < np; ++v) out.initial_layout.push_back(layout.v2p[v]);

  for (const qc::Op& op : circuit.ops()) {
    if (op.qubits.size() == 2) {
      std::size_t pa = layout.v2p[op.qubits[0]];
      const std::size_t pb = layout.v2p[op.qubits[1]];
      // Swap pa along a shortest path until adjacent to pb.
      while (!coupling.connected(pa, pb)) {
        std::size_t best = pa;
        for (std::size_t nb : coupling.neighbors(pa))
          if (coupling.distance(nb, pb) < coupling.distance(best, pb)) best = nb;
        HGP_REQUIRE(best != pa, "greedy_route: no progress (disconnected device?)");
        out.circuit.append(qc::Op{qc::GateKind::SWAP, {pa, best}, {}});
        layout.swap_physical(pa, best);
        ++out.swap_count;
        pa = best;
      }
    }
    qc::Op mapped = op;
    for (std::size_t& q : mapped.qubits) q = layout.v2p[q];
    out.circuit.append(std::move(mapped));
  }
  for (std::size_t v = 0; v < np; ++v) out.final_layout.push_back(layout.v2p[v]);
  return out;
}

}  // namespace hgp::transpile
