#include "transpile/basis.hpp"

#include "common/error.hpp"
#include "linalg/types.hpp"

namespace hgp::transpile {

using qc::Circuit;
using qc::GateKind;
using qc::Op;
using qc::Param;

namespace {

Param shifted(const Param& p, double offset) {
  if (p.is_constant()) return Param::constant(p.value() + offset);
  return Param::symbol(p.index(), p.scale(), p.offset() + offset);
}

/// U3(theta, phi, lambda) = RZ(phi+π) · SX · RZ(theta+π) · SX · RZ(lambda),
/// up to global phase (qiskit's ZSXZSXZ form). Circuit order: RZ(lambda)
/// first.
void emit_u3(Circuit& out, std::size_t q, const Param& theta, const Param& phi,
             const Param& lambda) {
  out.rz(q, lambda);
  out.sx(q);
  out.rz(q, shifted(theta, la::kPi));
  out.sx(q);
  out.rz(q, shifted(phi, la::kPi));
}

void emit_h(Circuit& out, std::size_t q) {
  out.rz(q, la::kPi / 2).sx(q).rz(q, la::kPi / 2);
}

}  // namespace

Circuit to_native_basis(const Circuit& circuit) {
  Circuit out(circuit.num_qubits());
  const double pi = la::kPi;
  for (const Op& op : circuit.ops()) {
    const std::size_t q = op.qubits.empty() ? 0 : op.qubits[0];
    switch (op.kind) {
      case GateKind::I:
        break;
      case GateKind::X:
      case GateKind::SX:
      case GateKind::RZ:
      case GateKind::CX:
      case GateKind::Delay:
      case GateKind::Barrier:
      case GateKind::Measure:
        out.append(op);
        break;
      case GateKind::SXdg:
        // SX† = RZ(π) · SX · RZ(π) up to global phase.
        out.rz(q, pi).sx(q).rz(q, pi);
        break;
      case GateKind::Z:
        out.rz(q, pi);
        break;
      case GateKind::S:
        out.rz(q, pi / 2);
        break;
      case GateKind::Sdg:
        out.rz(q, -pi / 2);
        break;
      case GateKind::T:
        out.rz(q, pi / 4);
        break;
      case GateKind::Tdg:
        out.rz(q, -pi / 4);
        break;
      case GateKind::P:
        out.rz(q, op.params[0]);
        break;
      case GateKind::H:
        emit_h(out, q);
        break;
      case GateKind::Y:
        // Y = RZ(π) then X, up to global phase.
        out.rz(q, pi);
        out.x(q);
        break;
      case GateKind::RX:
        emit_u3(out, q, op.params[0], Param::constant(-pi / 2), Param::constant(pi / 2));
        break;
      case GateKind::RY:
        emit_u3(out, q, op.params[0], Param::constant(0.0), Param::constant(0.0));
        break;
      case GateKind::U3:
        emit_u3(out, q, op.params[0], op.params[1], op.params[2]);
        break;
      case GateKind::CZ:
        emit_h(out, op.qubits[1]);
        out.cx(op.qubits[0], op.qubits[1]);
        emit_h(out, op.qubits[1]);
        break;
      case GateKind::SWAP:
        out.cx(op.qubits[0], op.qubits[1]);
        out.cx(op.qubits[1], op.qubits[0]);
        out.cx(op.qubits[0], op.qubits[1]);
        break;
      case GateKind::RZZ:
        out.cx(op.qubits[0], op.qubits[1]);
        out.rz(op.qubits[1], op.params[0]);
        out.cx(op.qubits[0], op.qubits[1]);
        break;
      case GateKind::RXX:
        emit_h(out, op.qubits[0]);
        emit_h(out, op.qubits[1]);
        out.cx(op.qubits[0], op.qubits[1]);
        out.rz(op.qubits[1], op.params[0]);
        out.cx(op.qubits[0], op.qubits[1]);
        emit_h(out, op.qubits[0]);
        emit_h(out, op.qubits[1]);
        break;
    }
  }
  return out;
}

}  // namespace hgp::transpile
