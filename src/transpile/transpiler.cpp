#include "transpile/transpiler.hpp"

#include "common/rng.hpp"
#include "transpile/basis.hpp"
#include "transpile/cancellation.hpp"
#include "transpile/sabre.hpp"

namespace hgp::transpile {

TranspileResult transpile(const qc::Circuit& circuit, const backend::FakeBackend& dev,
                          const TranspileOptions& options) {
  Rng rng(options.seed);
  std::vector<std::size_t> layout = options.initial_layout;
  if (!options.sabre_routing && layout.empty())
    for (std::size_t v = 0; v < circuit.num_qubits(); ++v) layout.push_back(v);
  SabreResult routed =
      options.sabre_routing
          ? sabre_route(circuit, dev.coupling(), rng, options.layout_trials, layout)
          : greedy_route(circuit, dev.coupling(), layout);

  qc::Circuit native = to_native_basis(routed.circuit);

  TranspileResult out;
  out.ops_before_cancellation = native.size();
  out.circuit = options.cancellation ? cancel_gates(native) : std::move(native);
  out.initial_layout = std::move(routed.initial_layout);
  out.final_layout = std::move(routed.final_layout);
  out.swap_count = routed.swap_count;
  return out;
}

}  // namespace hgp::transpile
