#pragma once

#include <functional>
#include <vector>

#include "linalg/matrix.hpp"

namespace hgp::la {

/// Solve A x = b by LU decomposition with partial pivoting (A copied).
CVec lu_solve(const CMat& a, const CVec& b);

/// Result of an iterative real-valued solve.
struct GmresResult {
  std::vector<double> x;
  int iterations = 0;
  double residual = 0.0;
  bool converged = false;
};

/// Restarted GMRES over real vectors with a matrix-free operator. Used by the
/// M3 measurement-mitigation routine, whose reduced assignment matrix is only
/// available as a matvec.
GmresResult gmres(const std::function<std::vector<double>(const std::vector<double>&)>& matvec,
                  const std::vector<double>& b, int max_iter = 200, double tol = 1e-10,
                  int restart = 50);

}  // namespace hgp::la
