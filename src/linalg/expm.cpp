#include "linalg/expm.hpp"

#include <cmath>

#include "common/error.hpp"
#include "linalg/eig.hpp"
#include "linalg/solve.hpp"

namespace hgp::la {

namespace {
double one_norm(const CMat& a) {
  double best = 0.0;
  for (std::size_t j = 0; j < a.cols(); ++j) {
    double s = 0.0;
    for (std::size_t i = 0; i < a.rows(); ++i) s += std::abs(a(i, j));
    best = std::max(best, s);
  }
  return best;
}
}  // namespace

CMat expm(const CMat& a) {
  HGP_REQUIRE(a.rows() == a.cols(), "expm: not square");
  const std::size_t n = a.rows();

  // Scale so that ||A/2^s|| <= 0.5, apply Padé(6,6), square back.
  int s = 0;
  double nrm = one_norm(a);
  while (nrm > 0.5 && s < 60) {
    nrm /= 2.0;
    ++s;
  }
  CMat x = a * cxd{std::ldexp(1.0, -s), 0.0};

  // Padé(6,6) coefficients.
  static const double b[] = {64764752532480000.0, 32382376266240000.0, 7771770303897600.0,
                             1187353796428800.0,  129060195264000.0,   10559470521600.0,
                             670442572800.0,      33522128640.0,       1323241920.0,
                             40840800.0,          960960.0,            16380.0,
                             182.0,               1.0};
  // Only the first 7 coefficients are needed for (6,6); use the classic form
  // U = X * (b7 X6 + b5 X4 + b3 X2 + b1 I), V = b6 X6 + b4 X4 + b2 X2 + b0 I
  // with the (6,6) subset of the (13,13) coefficient table above.
  const CMat x2 = x * x;
  const CMat x4 = x2 * x2;
  const CMat x6 = x4 * x2;
  const CMat eye = CMat::identity(n);

  CMat u = x6 * cxd{b[7], 0} + x4 * cxd{b[5], 0} + x2 * cxd{b[3], 0} + eye * cxd{b[1], 0};
  u = x * u;
  CMat v = x6 * cxd{b[6], 0} + x4 * cxd{b[4], 0} + x2 * cxd{b[2], 0} + eye * cxd{b[0], 0};

  // Solve (V - U) E = (V + U).
  CMat num = v + u;
  CMat den = v - u;
  CMat e(n, n);
  for (std::size_t j = 0; j < n; ++j) {
    CVec col(n);
    for (std::size_t i = 0; i < n; ++i) col[i] = num(i, j);
    CVec sol = lu_solve(den, col);
    for (std::size_t i = 0; i < n; ++i) e(i, j) = sol[i];
  }

  for (int k = 0; k < s; ++k) e = e * e;
  return e;
}

CMat expm_ih(const CMat& h, double t) {
  const EigResult eg = eigh(h);
  const std::size_t n = h.rows();
  CMat d(n, n);
  for (std::size_t i = 0; i < n; ++i) {
    const double phi = -t * eg.values[i];
    d(i, i) = cxd{std::cos(phi), std::sin(phi)};
  }
  return eg.vectors * d * eg.vectors.dagger();
}

}  // namespace hgp::la
