#pragma once

#include "linalg/matrix.hpp"

namespace hgp::la {

/// Matrix exponential e^A via scaling-and-squaring with a (6,6) Padé
/// approximant. Intended for the small operators used in tests and
/// calibration checks (dimension up to a few hundred).
CMat expm(const CMat& a);

/// exp(-i t H) for Hermitian H, computed from the eigendecomposition — exact
/// up to the eigensolver tolerance and unconditionally unitary.
CMat expm_ih(const CMat& h, double t);

}  // namespace hgp::la
