#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "linalg/matrix.hpp"
#include "linalg/types.hpp"

namespace hgp::la {

enum class Pauli : std::uint8_t { I = 0, X = 1, Y = 2, Z = 3 };

/// Tensor product of single-qubit Paulis over n qubits. Index q in `ops`
/// refers to qubit q (little-endian statevector convention: qubit q is bit q
/// of the basis index).
class PauliString {
 public:
  PauliString() = default;
  explicit PauliString(std::vector<Pauli> ops) : ops_(std::move(ops)) {}
  /// Parse e.g. "ZIZ" — leftmost character is the HIGHEST qubit, matching
  /// the usual textbook big-endian print order.
  static PauliString parse(const std::string& s);
  /// All-identity string on n qubits.
  static PauliString identity(std::size_t n);
  /// Single non-identity Pauli p on qubit q of an n-qubit register.
  static PauliString single(std::size_t n, std::size_t q, Pauli p);

  std::size_t num_qubits() const { return ops_.size(); }
  Pauli op(std::size_t q) const { return ops_[q]; }
  /// Number of non-identity factors.
  std::size_t weight() const;
  /// True if all factors are I or Z (string is diagonal in the Z basis).
  bool is_diagonal() const;
  std::string str() const;

  bool operator==(const PauliString& o) const { return ops_ == o.ops_; }

  /// out = (this) |v>, for a statevector on exactly num_qubits() qubits.
  CVec apply(const CVec& v) const;
  /// <v| this |v> (real for Hermitian Pauli strings).
  double expectation(const CVec& v) const;
  /// Dense 2^n x 2^n matrix (small n only).
  CMat matrix() const;
  /// For a diagonal string: eigenvalue on the computational basis state
  /// `bits` (bit q of `bits` = measured value of qubit q).
  double diagonal_eigenvalue(std::uint64_t bits) const;

 private:
  std::vector<Pauli> ops_;
};

/// One weighted term of a Pauli-sum operator.
struct PauliTerm {
  double coeff = 0.0;
  PauliString string;
};

/// Real-weighted sum of Pauli strings; the Hermitian observables used as VQA
/// cost Hamiltonians.
class PauliSum {
 public:
  PauliSum() = default;
  explicit PauliSum(std::size_t num_qubits) : num_qubits_(num_qubits) {}

  void add(double coeff, PauliString s);
  void add(double coeff, const std::string& s) { add(coeff, PauliString::parse(s)); }

  std::size_t num_qubits() const { return num_qubits_; }
  std::size_t size() const { return terms_.size(); }
  const std::vector<PauliTerm>& terms() const { return terms_; }

  bool is_diagonal() const;
  double expectation(const CVec& v) const;
  CMat matrix() const;
  /// For diagonal sums: energy of the computational basis state `bits`.
  double energy(std::uint64_t bits) const;
  /// Extremal energies of a diagonal sum by exhaustive scan over basis
  /// states (n <= ~24).
  double min_energy() const;
  double max_energy() const;

 private:
  std::size_t num_qubits_ = 0;
  std::vector<PauliTerm> terms_;
};

/// The four single-qubit Pauli matrices.
const CMat& pauli_matrix(Pauli p);

}  // namespace hgp::la
