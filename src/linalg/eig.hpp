#pragma once

#include <vector>

#include "linalg/matrix.hpp"

namespace hgp::la {

/// Eigendecomposition of a Hermitian matrix: A = V diag(values) V†.
/// `vectors` holds orthonormal eigenvectors as columns, ordered by ascending
/// eigenvalue.
struct EigResult {
  std::vector<double> values;
  CMat vectors;
};

/// Hermitian eigensolver. Internally embeds the n×n complex Hermitian matrix
/// into a 2n×2n real symmetric one ([[X,-Y],[Y,X]] for A = X + iY), runs
/// cyclic Jacobi, and reassembles complex eigenvectors with a Gram-Schmidt
/// pass over each (doubled) eigenspace.
EigResult eigh(const CMat& a, double tol = 1e-12, int max_sweeps = 100);

}  // namespace hgp::la
