#include "linalg/pauli.hpp"

#include <algorithm>
#include <cmath>

#include "common/error.hpp"

namespace hgp::la {

PauliString PauliString::parse(const std::string& s) {
  std::vector<Pauli> ops(s.size());
  for (std::size_t i = 0; i < s.size(); ++i) {
    // Leftmost char = highest qubit.
    const char c = s[i];
    const std::size_t q = s.size() - 1 - i;
    switch (c) {
      case 'I': ops[q] = Pauli::I; break;
      case 'X': ops[q] = Pauli::X; break;
      case 'Y': ops[q] = Pauli::Y; break;
      case 'Z': ops[q] = Pauli::Z; break;
      default: HGP_REQUIRE(false, std::string("PauliString::parse: bad char '") + c + "'");
    }
  }
  return PauliString(std::move(ops));
}

PauliString PauliString::identity(std::size_t n) {
  return PauliString(std::vector<Pauli>(n, Pauli::I));
}

PauliString PauliString::single(std::size_t n, std::size_t q, Pauli p) {
  HGP_REQUIRE(q < n, "PauliString::single: qubit out of range");
  std::vector<Pauli> ops(n, Pauli::I);
  ops[q] = p;
  return PauliString(std::move(ops));
}

std::size_t PauliString::weight() const {
  return static_cast<std::size_t>(
      std::count_if(ops_.begin(), ops_.end(), [](Pauli p) { return p != Pauli::I; }));
}

bool PauliString::is_diagonal() const {
  return std::all_of(ops_.begin(), ops_.end(),
                     [](Pauli p) { return p == Pauli::I || p == Pauli::Z; });
}

std::string PauliString::str() const {
  std::string s(ops_.size(), 'I');
  for (std::size_t q = 0; q < ops_.size(); ++q) {
    const char c = "IXYZ"[static_cast<int>(ops_[q])];
    s[ops_.size() - 1 - q] = c;
  }
  return s;
}

CVec PauliString::apply(const CVec& v) const {
  const std::size_t n = ops_.size();
  HGP_REQUIRE(v.size() == (std::size_t{1} << n), "PauliString::apply: dimension mismatch");

  // Precompute: X/Y flip bit q, Y/Z contribute phases.
  std::uint64_t flip_mask = 0;
  for (std::size_t q = 0; q < n; ++q)
    if (ops_[q] == Pauli::X || ops_[q] == Pauli::Y) flip_mask |= (std::uint64_t{1} << q);

  CVec out(v.size());
  for (std::uint64_t i = 0; i < v.size(); ++i) {
    const std::uint64_t j = i ^ flip_mask;
    // phase for mapping |i> component: out[j] += phase * v[i]
    cxd phase{1.0, 0.0};
    for (std::size_t q = 0; q < n; ++q) {
      const bool bit = (i >> q) & 1;
      switch (ops_[q]) {
        case Pauli::I: break;
        case Pauli::X: break;
        case Pauli::Y: phase *= bit ? cxd{0.0, -1.0} : cxd{0.0, 1.0}; break;
        case Pauli::Z: phase *= bit ? -1.0 : 1.0; break;
      }
    }
    out[j] += phase * v[i];
  }
  return out;
}

double PauliString::expectation(const CVec& v) const {
  const CVec pv = apply(v);
  cxd s{0.0, 0.0};
  for (std::size_t i = 0; i < v.size(); ++i) s += std::conj(v[i]) * pv[i];
  return s.real();
}

CMat PauliString::matrix() const {
  CMat m = CMat::identity(1);
  // kron(a, b): a = most significant; qubit n-1 is leftmost factor.
  for (std::size_t qi = ops_.size(); qi-- > 0;) {
    if (m.rows() == 1)
      m = pauli_matrix(ops_[qi]);
    else
      m = kron(m, pauli_matrix(ops_[qi]));
  }
  // Walk from highest qubit down so the final matrix is P_{n-1} ⊗ ... ⊗ P_0,
  // consistent with little-endian statevector indexing.
  return m;
}

double PauliString::diagonal_eigenvalue(std::uint64_t bits) const {
  HGP_REQUIRE(is_diagonal(), "diagonal_eigenvalue: string has X/Y factors");
  double v = 1.0;
  for (std::size_t q = 0; q < ops_.size(); ++q)
    if (ops_[q] == Pauli::Z && ((bits >> q) & 1)) v = -v;
  return v;
}

void PauliSum::add(double coeff, PauliString s) {
  if (num_qubits_ == 0) num_qubits_ = s.num_qubits();
  HGP_REQUIRE(s.num_qubits() == num_qubits_, "PauliSum::add: qubit count mismatch");
  terms_.push_back(PauliTerm{coeff, std::move(s)});
}

bool PauliSum::is_diagonal() const {
  return std::all_of(terms_.begin(), terms_.end(),
                     [](const PauliTerm& t) { return t.string.is_diagonal(); });
}

double PauliSum::expectation(const CVec& v) const {
  double s = 0.0;
  for (const PauliTerm& t : terms_) s += t.coeff * t.string.expectation(v);
  return s;
}

CMat PauliSum::matrix() const {
  HGP_REQUIRE(num_qubits_ <= 12, "PauliSum::matrix: too many qubits for a dense matrix");
  const std::size_t dim = std::size_t{1} << num_qubits_;
  CMat m(dim, dim);
  for (const PauliTerm& t : terms_) m += t.string.matrix() * cxd{t.coeff, 0.0};
  return m;
}

double PauliSum::energy(std::uint64_t bits) const {
  double e = 0.0;
  for (const PauliTerm& t : terms_) e += t.coeff * t.string.diagonal_eigenvalue(bits);
  return e;
}

double PauliSum::min_energy() const {
  HGP_REQUIRE(is_diagonal() && num_qubits_ <= 24, "min_energy: need a small diagonal sum");
  double best = energy(0);
  for (std::uint64_t b = 1; b < (std::uint64_t{1} << num_qubits_); ++b)
    best = std::min(best, energy(b));
  return best;
}

double PauliSum::max_energy() const {
  HGP_REQUIRE(is_diagonal() && num_qubits_ <= 24, "max_energy: need a small diagonal sum");
  double best = energy(0);
  for (std::uint64_t b = 1; b < (std::uint64_t{1} << num_qubits_); ++b)
    best = std::max(best, energy(b));
  return best;
}

const CMat& pauli_matrix(Pauli p) {
  static const CMat i = CMat{{1, 0}, {0, 1}};
  static const CMat x = CMat{{0, 1}, {1, 0}};
  static const CMat y = CMat{{0, cxd{0, -1}}, {cxd{0, 1}, 0}};
  static const CMat z = CMat{{1, 0}, {0, -1}};
  switch (p) {
    case Pauli::I: return i;
    case Pauli::X: return x;
    case Pauli::Y: return y;
    case Pauli::Z: return z;
  }
  throw Error("pauli_matrix: bad enum");
}

}  // namespace hgp::la
