#include "linalg/matrix.hpp"

#include <algorithm>
#include <cmath>
#include <iomanip>
#include <ostream>
#include <sstream>

#include "common/error.hpp"

namespace hgp::la {

CMat::CMat(std::size_t rows, std::size_t cols)
    : rows_(rows), cols_(cols), data_(rows * cols, cxd{0.0, 0.0}) {}

CMat::CMat(std::initializer_list<std::initializer_list<cxd>> rows) {
  rows_ = rows.size();
  cols_ = rows.begin() == rows.end() ? 0 : rows.begin()->size();
  data_.reserve(rows_ * cols_);
  for (const auto& row : rows) {
    HGP_REQUIRE(row.size() == cols_, "CMat: ragged initializer");
    data_.insert(data_.end(), row.begin(), row.end());
  }
}

CMat CMat::identity(std::size_t n) {
  CMat m(n, n);
  for (std::size_t i = 0; i < n; ++i) m(i, i) = 1.0;
  return m;
}

CMat CMat::zeros(std::size_t rows, std::size_t cols) { return CMat(rows, cols); }

CMat CMat::operator*(const CMat& rhs) const {
  HGP_REQUIRE(cols_ == rhs.rows_, "CMat::operator*: shape mismatch");
  CMat out(rows_, rhs.cols_);
  for (std::size_t i = 0; i < rows_; ++i) {
    for (std::size_t k = 0; k < cols_; ++k) {
      const cxd a = (*this)(i, k);
      if (a == cxd{0.0, 0.0}) continue;
      for (std::size_t j = 0; j < rhs.cols_; ++j) out(i, j) += a * rhs(k, j);
    }
  }
  return out;
}

CVec CMat::operator*(const CVec& v) const {
  HGP_REQUIRE(cols_ == v.size(), "CMat::operator*(vec): shape mismatch");
  CVec out(rows_, cxd{0.0, 0.0});
  for (std::size_t i = 0; i < rows_; ++i) {
    cxd s{0.0, 0.0};
    const cxd* row = &data_[i * cols_];
    for (std::size_t j = 0; j < cols_; ++j) s += row[j] * v[j];
    out[i] = s;
  }
  return out;
}

CMat CMat::operator+(const CMat& rhs) const {
  CMat out = *this;
  out += rhs;
  return out;
}

CMat CMat::operator-(const CMat& rhs) const {
  CMat out = *this;
  out -= rhs;
  return out;
}

CMat CMat::operator*(cxd alpha) const {
  CMat out = *this;
  out *= alpha;
  return out;
}

CMat& CMat::operator+=(const CMat& rhs) {
  HGP_REQUIRE(rows_ == rhs.rows_ && cols_ == rhs.cols_, "CMat::operator+=: shape mismatch");
  for (std::size_t i = 0; i < data_.size(); ++i) data_[i] += rhs.data_[i];
  return *this;
}

CMat& CMat::operator-=(const CMat& rhs) {
  HGP_REQUIRE(rows_ == rhs.rows_ && cols_ == rhs.cols_, "CMat::operator-=: shape mismatch");
  for (std::size_t i = 0; i < data_.size(); ++i) data_[i] -= rhs.data_[i];
  return *this;
}

CMat& CMat::operator*=(cxd alpha) {
  for (cxd& x : data_) x *= alpha;
  return *this;
}

CMat CMat::dagger() const {
  CMat out(cols_, rows_);
  for (std::size_t i = 0; i < rows_; ++i)
    for (std::size_t j = 0; j < cols_; ++j) out(j, i) = std::conj((*this)(i, j));
  return out;
}

CMat CMat::transpose() const {
  CMat out(cols_, rows_);
  for (std::size_t i = 0; i < rows_; ++i)
    for (std::size_t j = 0; j < cols_; ++j) out(j, i) = (*this)(i, j);
  return out;
}

CMat CMat::conj() const {
  CMat out = *this;
  for (cxd& x : out.data_) x = std::conj(x);
  return out;
}

cxd CMat::trace() const {
  HGP_REQUIRE(rows_ == cols_, "CMat::trace: not square");
  cxd s{0.0, 0.0};
  for (std::size_t i = 0; i < rows_; ++i) s += (*this)(i, i);
  return s;
}

bool CMat::is_unitary(double tol) const {
  if (rows_ != cols_) return false;
  const CMat p = (*this) * dagger();
  return p.max_abs_diff(identity(rows_)) < tol;
}

bool CMat::is_hermitian(double tol) const {
  if (rows_ != cols_) return false;
  return max_abs_diff(dagger()) < tol;
}

double CMat::max_abs_diff(const CMat& other) const {
  HGP_REQUIRE(rows_ == other.rows_ && cols_ == other.cols_, "max_abs_diff: shape mismatch");
  double m = 0.0;
  for (std::size_t i = 0; i < data_.size(); ++i)
    m = std::max(m, std::abs(data_[i] - other.data_[i]));
  return m;
}

double CMat::max_abs() const {
  double m = 0.0;
  for (const cxd& x : data_) m = std::max(m, std::abs(x));
  return m;
}

std::string CMat::str(int prec) const {
  std::ostringstream os;
  os << std::fixed << std::setprecision(prec);
  for (std::size_t i = 0; i < rows_; ++i) {
    os << "[";
    for (std::size_t j = 0; j < cols_; ++j) {
      const cxd& x = (*this)(i, j);
      os << (j ? ", " : "") << x.real() << (x.imag() < 0 ? "-" : "+") << std::abs(x.imag())
         << "i";
    }
    os << "]\n";
  }
  return os.str();
}

CMat kron(const CMat& a, const CMat& b) {
  CMat out(a.rows() * b.rows(), a.cols() * b.cols());
  for (std::size_t ia = 0; ia < a.rows(); ++ia)
    for (std::size_t ja = 0; ja < a.cols(); ++ja) {
      const cxd av = a(ia, ja);
      if (av == cxd{0.0, 0.0}) continue;
      for (std::size_t ib = 0; ib < b.rows(); ++ib)
        for (std::size_t jb = 0; jb < b.cols(); ++jb)
          out(ia * b.rows() + ib, ja * b.cols() + jb) = av * b(ib, jb);
    }
  return out;
}

std::ostream& operator<<(std::ostream& os, const CMat& m) { return os << m.str(); }

}  // namespace hgp::la
