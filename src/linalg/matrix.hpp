#pragma once

#include <cstddef>
#include <initializer_list>
#include <iosfwd>
#include <string>

#include "linalg/types.hpp"

namespace hgp::la {

/// Dense row-major complex matrix. Sized for quantum operators on a handful
/// of qubits (gate matrices, pulse-block unitaries, confusion matrices) —
/// correctness and clarity over BLAS-level tuning.
class CMat {
 public:
  CMat() = default;
  CMat(std::size_t rows, std::size_t cols);
  /// Row-major nested initializer, e.g. CMat{{1,0},{0,1}}.
  CMat(std::initializer_list<std::initializer_list<cxd>> rows);

  static CMat identity(std::size_t n);
  static CMat zeros(std::size_t rows, std::size_t cols);

  std::size_t rows() const { return rows_; }
  std::size_t cols() const { return cols_; }
  bool empty() const { return data_.empty(); }

  cxd& operator()(std::size_t r, std::size_t c) { return data_[r * cols_ + c]; }
  const cxd& operator()(std::size_t r, std::size_t c) const { return data_[r * cols_ + c]; }

  const CVec& data() const { return data_; }
  CVec& data() { return data_; }

  CMat operator*(const CMat& rhs) const;
  CVec operator*(const CVec& v) const;
  CMat operator+(const CMat& rhs) const;
  CMat operator-(const CMat& rhs) const;
  CMat operator*(cxd alpha) const;
  CMat& operator+=(const CMat& rhs);
  CMat& operator-=(const CMat& rhs);
  CMat& operator*=(cxd alpha);

  /// Conjugate transpose.
  CMat dagger() const;
  CMat transpose() const;
  CMat conj() const;
  cxd trace() const;

  bool is_unitary(double tol = 1e-9) const;
  bool is_hermitian(double tol = 1e-9) const;

  /// Largest |a_ij - b_ij|.
  double max_abs_diff(const CMat& other) const;
  /// Largest absolute entry.
  double max_abs() const;

  std::string str(int prec = 4) const;

 private:
  std::size_t rows_ = 0;
  std::size_t cols_ = 0;
  CVec data_;
};

/// Kronecker product, a ⊗ b (a's indices are the most significant).
CMat kron(const CMat& a, const CMat& b);

std::ostream& operator<<(std::ostream& os, const CMat& m);

}  // namespace hgp::la
