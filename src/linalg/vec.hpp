#pragma once

#include "linalg/types.hpp"

namespace hgp::la {

/// <a|b> with the left argument conjugated.
cxd dot(const CVec& a, const CVec& b);
/// Euclidean norm.
double norm(const CVec& v);
/// Scale v in place so that norm(v) == 1; throws on (near-)zero vectors.
void normalize(CVec& v);
/// y += alpha * x.
void axpy(cxd alpha, const CVec& x, CVec& y);
/// v *= alpha.
void scale(cxd alpha, CVec& v);
/// max_i |a_i - b_i|.
double max_abs_diff(const CVec& a, const CVec& b);
/// |<a|b>|^2, the overlap probability between two normalized states.
double fidelity(const CVec& a, const CVec& b);
/// max_i |a_i - b_i| ignoring a global phase (aligns phases on the largest
/// component of a first). Used to compare unitary evolutions.
double max_abs_diff_up_to_phase(const CVec& a, const CVec& b);

}  // namespace hgp::la
