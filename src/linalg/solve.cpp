#include "linalg/solve.hpp"

#include <algorithm>
#include <cmath>

#include "common/error.hpp"

namespace hgp::la {

CVec lu_solve(const CMat& a_in, const CVec& b_in) {
  HGP_REQUIRE(a_in.rows() == a_in.cols(), "lu_solve: not square");
  HGP_REQUIRE(a_in.rows() == b_in.size(), "lu_solve: rhs size mismatch");
  const std::size_t n = a_in.rows();
  CMat a = a_in;
  CVec b = b_in;

  std::vector<std::size_t> piv(n);
  for (std::size_t i = 0; i < n; ++i) piv[i] = i;

  for (std::size_t k = 0; k < n; ++k) {
    std::size_t p = k;
    double best = std::abs(a(k, k));
    for (std::size_t i = k + 1; i < n; ++i) {
      const double v = std::abs(a(i, k));
      if (v > best) {
        best = v;
        p = i;
      }
    }
    HGP_REQUIRE(best > 1e-300, "lu_solve: singular matrix");
    if (p != k) {
      for (std::size_t j = 0; j < n; ++j) std::swap(a(k, j), a(p, j));
      std::swap(b[k], b[p]);
    }
    for (std::size_t i = k + 1; i < n; ++i) {
      const cxd f = a(i, k) / a(k, k);
      a(i, k) = f;
      for (std::size_t j = k + 1; j < n; ++j) a(i, j) -= f * a(k, j);
      b[i] -= f * b[k];
    }
  }
  CVec x(n);
  for (std::size_t ii = n; ii-- > 0;) {
    cxd s = b[ii];
    for (std::size_t j = ii + 1; j < n; ++j) s -= a(ii, j) * x[j];
    x[ii] = s / a(ii, ii);
  }
  return x;
}

namespace {
double dnrm2(const std::vector<double>& v) {
  double s = 0.0;
  for (double x : v) s += x * x;
  return std::sqrt(s);
}
double ddot(const std::vector<double>& a, const std::vector<double>& b) {
  double s = 0.0;
  for (std::size_t i = 0; i < a.size(); ++i) s += a[i] * b[i];
  return s;
}
}  // namespace

GmresResult gmres(const std::function<std::vector<double>(const std::vector<double>&)>& matvec,
                  const std::vector<double>& b, int max_iter, double tol, int restart) {
  const std::size_t n = b.size();
  GmresResult out;
  out.x.assign(n, 0.0);
  const double bnorm = std::max(dnrm2(b), 1e-300);

  int total_iters = 0;
  while (total_iters < max_iter) {
    // r = b - A x
    std::vector<double> r = matvec(out.x);
    for (std::size_t i = 0; i < n; ++i) r[i] = b[i] - r[i];
    double beta = dnrm2(r);
    out.residual = beta / bnorm;
    if (out.residual < tol) {
      out.converged = true;
      return out;
    }

    const int m = std::min<int>(restart, max_iter - total_iters);
    std::vector<std::vector<double>> v;  // Krylov basis
    v.reserve(m + 1);
    for (double& x : r) x /= beta;
    v.push_back(r);

    // Hessenberg (m+1) x m, Givens rotations, residual vector g.
    std::vector<std::vector<double>> h(m + 1, std::vector<double>(m, 0.0));
    std::vector<double> cs(m, 0.0), sn(m, 0.0), g(m + 1, 0.0);
    g[0] = beta;

    int k = 0;
    for (; k < m; ++k) {
      std::vector<double> w = matvec(v[k]);
      for (int j = 0; j <= k; ++j) {
        h[j][k] = ddot(w, v[j]);
        for (std::size_t i = 0; i < n; ++i) w[i] -= h[j][k] * v[j][i];
      }
      h[k + 1][k] = dnrm2(w);
      if (h[k + 1][k] > 1e-14) {
        for (double& x : w) x /= h[k + 1][k];
        v.push_back(w);
      }
      // Apply previous Givens rotations to the new column.
      for (int j = 0; j < k; ++j) {
        const double t = cs[j] * h[j][k] + sn[j] * h[j + 1][k];
        h[j + 1][k] = -sn[j] * h[j][k] + cs[j] * h[j + 1][k];
        h[j][k] = t;
      }
      const double denom = std::hypot(h[k][k], h[k + 1][k]);
      if (denom < 1e-300) {
        ++k;
        break;
      }
      cs[k] = h[k][k] / denom;
      sn[k] = h[k + 1][k] / denom;
      h[k][k] = denom;
      h[k + 1][k] = 0.0;
      g[k + 1] = -sn[k] * g[k];
      g[k] = cs[k] * g[k];
      ++total_iters;
      out.residual = std::abs(g[k + 1]) / bnorm;
      if (out.residual < tol || h[k + 1][k] == 0.0) {
        ++k;
        break;
      }
      if (static_cast<std::size_t>(k + 1) >= v.size()) {  // lucky breakdown
        ++k;
        break;
      }
    }

    // Back-substitute y from H y = g, update x.
    std::vector<double> y(k, 0.0);
    for (int i = k - 1; i >= 0; --i) {
      double s = g[i];
      for (int j = i + 1; j < k; ++j) s -= h[i][j] * y[j];
      y[i] = s / h[i][i];
    }
    for (int j = 0; j < k; ++j)
      for (std::size_t i = 0; i < n; ++i) out.x[i] += y[j] * v[j][i];

    out.iterations = total_iters;
    if (out.residual < tol) {
      out.converged = true;
      return out;
    }
    if (k == 0) break;  // no progress possible
  }
  // Final residual check.
  std::vector<double> r = matvec(out.x);
  for (std::size_t i = 0; i < n; ++i) r[i] = b[i] - r[i];
  out.residual = dnrm2(r) / bnorm;
  out.converged = out.residual < tol;
  return out;
}

}  // namespace hgp::la
