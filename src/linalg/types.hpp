#pragma once

#include <complex>
#include <vector>

namespace hgp::la {

using cxd = std::complex<double>;
/// Dense complex vector; used for statevectors (little-endian qubit order:
/// basis index i has qubit q in bit q of i).
using CVec = std::vector<cxd>;

inline constexpr double kPi = 3.14159265358979323846;
inline constexpr cxd kI{0.0, 1.0};

}  // namespace hgp::la
