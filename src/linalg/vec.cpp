#include "linalg/vec.hpp"

#include <algorithm>
#include <cmath>

#include "common/error.hpp"

namespace hgp::la {

cxd dot(const CVec& a, const CVec& b) {
  HGP_REQUIRE(a.size() == b.size(), "dot: size mismatch");
  cxd s{0.0, 0.0};
  for (std::size_t i = 0; i < a.size(); ++i) s += std::conj(a[i]) * b[i];
  return s;
}

double norm(const CVec& v) {
  double s = 0.0;
  for (const cxd& x : v) s += std::norm(x);
  return std::sqrt(s);
}

void normalize(CVec& v) {
  const double n = norm(v);
  HGP_REQUIRE(n > 1e-300, "normalize: zero vector");
  for (cxd& x : v) x /= n;
}

void axpy(cxd alpha, const CVec& x, CVec& y) {
  HGP_REQUIRE(x.size() == y.size(), "axpy: size mismatch");
  for (std::size_t i = 0; i < x.size(); ++i) y[i] += alpha * x[i];
}

void scale(cxd alpha, CVec& v) {
  for (cxd& x : v) x *= alpha;
}

double max_abs_diff(const CVec& a, const CVec& b) {
  HGP_REQUIRE(a.size() == b.size(), "max_abs_diff: size mismatch");
  double m = 0.0;
  for (std::size_t i = 0; i < a.size(); ++i) m = std::max(m, std::abs(a[i] - b[i]));
  return m;
}

double fidelity(const CVec& a, const CVec& b) { return std::norm(dot(a, b)); }

double max_abs_diff_up_to_phase(const CVec& a, const CVec& b) {
  HGP_REQUIRE(a.size() == b.size(), "max_abs_diff_up_to_phase: size mismatch");
  std::size_t ref = 0;
  double best = 0.0;
  for (std::size_t i = 0; i < a.size(); ++i) {
    if (std::abs(a[i]) > best) {
      best = std::abs(a[i]);
      ref = i;
    }
  }
  if (best < 1e-300 || std::abs(b[ref]) < 1e-300) return max_abs_diff(a, b);
  const cxd phase = (b[ref] / std::abs(b[ref])) / (a[ref] / std::abs(a[ref]));
  double m = 0.0;
  for (std::size_t i = 0; i < a.size(); ++i) m = std::max(m, std::abs(a[i] * phase - b[i]));
  return m;
}

}  // namespace hgp::la
