#include "linalg/eig.hpp"

#include <algorithm>
#include <cmath>
#include <numeric>

#include "common/error.hpp"
#include "linalg/vec.hpp"

namespace hgp::la {

namespace {

/// Cyclic Jacobi on a real symmetric matrix stored densely. Returns
/// eigenvalues in `d` and accumulates rotations into `v` (columns are
/// eigenvectors).
void jacobi_real_symmetric(std::vector<double>& a, std::size_t n, std::vector<double>& d,
                           std::vector<double>& v, double tol, int max_sweeps) {
  auto at = [&](std::size_t i, std::size_t j) -> double& { return a[i * n + j]; };
  auto vt = [&](std::size_t i, std::size_t j) -> double& { return v[i * n + j]; };

  std::fill(v.begin(), v.end(), 0.0);
  for (std::size_t i = 0; i < n; ++i) vt(i, i) = 1.0;

  for (int sweep = 0; sweep < max_sweeps; ++sweep) {
    double off = 0.0;
    for (std::size_t i = 0; i < n; ++i)
      for (std::size_t j = i + 1; j < n; ++j) off += at(i, j) * at(i, j);
    if (std::sqrt(off) < tol) break;

    for (std::size_t p = 0; p < n; ++p) {
      for (std::size_t q = p + 1; q < n; ++q) {
        const double apq = at(p, q);
        if (std::abs(apq) < 1e-300) continue;
        const double app = at(p, p);
        const double aqq = at(q, q);
        const double tau = (aqq - app) / (2.0 * apq);
        double t = 0.0;
        if (tau >= 0.0)
          t = 1.0 / (tau + std::sqrt(1.0 + tau * tau));
        else
          t = -1.0 / (-tau + std::sqrt(1.0 + tau * tau));
        const double c = 1.0 / std::sqrt(1.0 + t * t);
        const double s = t * c;

        for (std::size_t k = 0; k < n; ++k) {
          const double akp = at(k, p);
          const double akq = at(k, q);
          at(k, p) = c * akp - s * akq;
          at(k, q) = s * akp + c * akq;
        }
        for (std::size_t k = 0; k < n; ++k) {
          const double apk = at(p, k);
          const double aqk = at(q, k);
          at(p, k) = c * apk - s * aqk;
          at(q, k) = s * apk + c * aqk;
        }
        for (std::size_t k = 0; k < n; ++k) {
          const double vkp = vt(k, p);
          const double vkq = vt(k, q);
          vt(k, p) = c * vkp - s * vkq;
          vt(k, q) = s * vkp + c * vkq;
        }
      }
    }
  }
  d.resize(n);
  for (std::size_t i = 0; i < n; ++i) d[i] = at(i, i);
}

}  // namespace

EigResult eigh(const CMat& m, double tol, int max_sweeps) {
  HGP_REQUIRE(m.rows() == m.cols(), "eigh: not square");
  HGP_REQUIRE(m.is_hermitian(1e-8), "eigh: matrix is not Hermitian");
  const std::size_t n = m.rows();
  const std::size_t n2 = 2 * n;

  // Real embedding: A = X + iY  ->  [[X, -Y], [Y, X]] (symmetric since
  // X = X^T and Y = -Y^T for Hermitian A).
  std::vector<double> a(n2 * n2, 0.0);
  for (std::size_t i = 0; i < n; ++i) {
    for (std::size_t j = 0; j < n; ++j) {
      const double x = m(i, j).real();
      const double y = m(i, j).imag();
      a[i * n2 + j] = x;
      a[(i + n) * n2 + (j + n)] = x;
      a[i * n2 + (j + n)] = -y;
      a[(i + n) * n2 + j] = y;
    }
  }

  std::vector<double> d;
  std::vector<double> v(n2 * n2, 0.0);
  jacobi_real_symmetric(a, n2, d, v, tol, max_sweeps);

  // Each complex eigenvector appears twice in the embedding ((u;v) and
  // (-v;u)). Sort by eigenvalue and keep n orthonormal complex vectors via
  // Gram-Schmidt against the already-selected set.
  std::vector<std::size_t> order(n2);
  std::iota(order.begin(), order.end(), 0);
  std::sort(order.begin(), order.end(), [&](std::size_t x, std::size_t y) { return d[x] < d[y]; });

  EigResult out;
  out.vectors = CMat(n, n);
  std::vector<CVec> picked;
  for (std::size_t idx : order) {
    if (picked.size() == n) break;
    CVec z(n);
    for (std::size_t i = 0; i < n; ++i) z[i] = cxd{v[i * n2 + idx], v[(i + n) * n2 + idx]};
    // Project out previously selected vectors.
    for (const CVec& p : picked) axpy(-dot(p, z), p, z);
    const double nz = norm(z);
    if (nz < 1e-6) continue;  // the duplicate partner of an already-kept vector
    for (cxd& x : z) x /= nz;
    out.values.push_back(d[idx]);
    picked.push_back(std::move(z));
  }
  HGP_REQUIRE(picked.size() == n, "eigh: failed to extract a full eigenbasis");
  for (std::size_t j = 0; j < n; ++j)
    for (std::size_t i = 0; i < n; ++i) out.vectors(i, j) = picked[j][i];
  return out;
}

}  // namespace hgp::la
