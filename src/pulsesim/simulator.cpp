#include "pulsesim/simulator.hpp"

#include <algorithm>
#include <cmath>
#include <map>

#include "common/error.hpp"
#include "linalg/eig.hpp"
#include "linalg/expm.hpp"
#include "linalg/vec.hpp"

namespace hgp::psim {

using la::cxd;
using la::CMat;
using la::CVec;

namespace {

/// Per-channel frame: total phase at time t_ns is
/// phase + 2π·freq·(t_ns - ref_time_ns).
struct Frame {
  double phase = 0.0;
  double freq_ghz = 0.0;
  double ref_time_ns = 0.0;

  double phase_at(double t_ns) const {
    return phase + 2.0 * la::kPi * freq_ghz * (t_ns - ref_time_ns);
  }
  void rebase(double t_ns) {
    phase = phase_at(t_ns);
    ref_time_ns = t_ns;
  }
};

struct ActivePlay {
  int t0 = 0;
  const pulse::PulseShape* shape = nullptr;
};

/// exp(-i tau H) for Hermitian H; analytic for dim 2, eigendecomposition
/// otherwise.
CMat step_propagator(const CMat& h, double tau) {
  if (h.rows() == 2) {
    const double a = h(0, 0).real();
    const double d = h(1, 1).real();
    const cxd b = h(0, 1);
    const double c0 = 0.5 * (a + d);
    const double nz = 0.5 * (a - d);
    const double nx = b.real();
    const double ny = -b.imag();
    const double nn = std::sqrt(nx * nx + ny * ny + nz * nz);
    const cxd gphase = std::polar(1.0, -tau * c0);
    if (nn < 1e-15) return CMat{{gphase, 0}, {0, gphase}};
    const double ct = std::cos(tau * nn);
    const double st = std::sin(tau * nn);
    const cxd mi{0.0, -1.0};
    CMat u(2, 2);
    u(0, 0) = gphase * (ct + mi * st * (nz / nn));
    u(0, 1) = gphase * mi * st * cxd{nx / nn, -ny / nn};
    u(1, 0) = gphase * mi * st * cxd{nx / nn, ny / nn};
    u(1, 1) = gphase * (ct - mi * st * (nz / nn));
    return u;
  }
  return la::expm_ih(h, tau);
}

/// One RK4 pass over a constant Hamiltonian span (`substeps` steps).
void rk4_apply(const CMat& h, double tau, int substeps, CVec& psi) {
  const double hstep = tau / substeps;
  for (int s = 0; s < substeps; ++s) {
    const cxd mi{0.0, -1.0};
    CVec k1 = h * psi;
    la::scale(mi, k1);
    CVec tmp = psi;
    la::axpy(cxd{hstep / 2.0, 0.0}, k1, tmp);
    CVec k2 = h * tmp;
    la::scale(mi, k2);
    tmp = psi;
    la::axpy(cxd{hstep / 2.0, 0.0}, k2, tmp);
    CVec k3 = h * tmp;
    la::scale(mi, k3);
    tmp = psi;
    la::axpy(cxd{hstep, 0.0}, k3, tmp);
    CVec k4 = h * tmp;
    la::scale(mi, k4);
    la::axpy(cxd{hstep / 6.0, 0.0}, k1, psi);
    la::axpy(cxd{hstep / 3.0, 0.0}, k2, psi);
    la::axpy(cxd{hstep / 3.0, 0.0}, k3, psi);
    la::axpy(cxd{hstep / 6.0, 0.0}, k4, psi);
  }
}

}  // namespace

PulseSimulator::PulseSimulator(PulseSystem system, Integrator integrator, int substeps,
                               int sample_stride)
    : system_(std::move(system)),
      integrator_(integrator),
      substeps_(substeps),
      sample_stride_(sample_stride) {
  HGP_REQUIRE(substeps >= 1, "PulseSimulator: substeps must be >= 1");
  HGP_REQUIRE(sample_stride >= 1, "PulseSimulator: sample_stride must be >= 1");
}

CompiledSchedule PulseSimulator::compile(const pulse::Schedule& sched) const {
  CompiledSchedule cs;
  cs.duration_ = sched.duration();
  const double dt = pulse::kDtNs;

  // Index the schedule: frame events and plays, per wired channel.
  std::map<pulse::Channel, Frame> frames;
  struct Event {
    int t0;
    const pulse::Instruction* inst;
  };
  std::vector<Event> frame_events;
  std::map<pulse::Channel, std::vector<ActivePlay>> plays;
  for (const pulse::TimedInstruction& ti : sched.instructions()) {
    if (const auto* play = std::get_if<pulse::Play>(&ti.inst)) {
      if (system_.find_channel(play->channel) != nullptr)
        plays[play->channel].push_back(ActivePlay{ti.t0, &play->shape});
      continue;
    }
    if (std::holds_alternative<pulse::ShiftPhase>(ti.inst) ||
        std::holds_alternative<pulse::SetPhase>(ti.inst) ||
        std::holds_alternative<pulse::ShiftFrequency>(ti.inst) ||
        std::holds_alternative<pulse::SetFrequency>(ti.inst)) {
      frame_events.push_back(Event{ti.t0, &ti.inst});
    }
  }
  std::stable_sort(frame_events.begin(), frame_events.end(),
                   [](const Event& a, const Event& b) { return a.t0 < b.t0; });
  for (auto& [c, v] : plays)
    std::stable_sort(v.begin(), v.end(),
                     [](const ActivePlay& a, const ActivePlay& b) { return a.t0 < b.t0; });

  const double tau_sample = 2.0 * la::kPi * dt;
  std::size_t next_event = 0;
  std::map<pulse::Channel, std::size_t> play_cursor;

  cs.steps_.reserve(static_cast<std::size_t>(cs.duration_ / sample_stride_) + 1);
  for (int t = 0; t < cs.duration_; t += sample_stride_) {
    const int step = std::min(sample_stride_, cs.duration_ - t);
    const double t_ns = t * dt;
    // Apply frame events scheduled at or before this sample boundary.
    while (next_event < frame_events.size() && frame_events[next_event].t0 <= t) {
      const pulse::Instruction& inst = *frame_events[next_event].inst;
      const pulse::Channel c = pulse::instruction_channel(inst);
      Frame& f = frames[c];
      const double event_t_ns = frame_events[next_event].t0 * dt;
      if (const auto* sp = std::get_if<pulse::ShiftPhase>(&inst)) {
        f.phase += sp->phase;
      } else if (const auto* stp = std::get_if<pulse::SetPhase>(&inst)) {
        f.rebase(event_t_ns);
        f.phase = stp->phase;
      } else if (const auto* sf = std::get_if<pulse::ShiftFrequency>(&inst)) {
        f.rebase(event_t_ns);
        f.freq_ghz += sf->freq_ghz;
      } else if (const auto* stf = std::get_if<pulse::SetFrequency>(&inst)) {
        f.rebase(event_t_ns);
        f.freq_ghz = stf->freq_ghz;
      }
      ++next_event;
    }

    // Sum the active channel drives at this sample.
    CompiledStep cstep;
    cstep.tau = tau_sample * step;
    CMat h = system_.static_hamiltonian();
    for (auto& [channel, channel_plays] : plays) {
      std::size_t& cur = play_cursor[channel];
      while (cur < channel_plays.size() &&
             channel_plays[cur].t0 + channel_plays[cur].shape->duration() <= t)
        ++cur;
      if (cur >= channel_plays.size() || channel_plays[cur].t0 > t) continue;
      const ActivePlay& ap = channel_plays[cur];
      cxd s = ap.shape->sample(t - ap.t0);
      if (s == cxd{0.0, 0.0}) continue;
      const auto it = frames.find(channel);
      if (it != frames.end()) s *= std::polar(1.0, it->second.phase_at(t_ns));
      const ChannelOperator* op = system_.find_channel(channel);
      s *= op->gain;
      h += op->x_quad * cxd{s.real(), 0.0} + op->y_quad * cxd{s.imag(), 0.0};
      if (!op->sq_quad.empty()) h += op->sq_quad * cxd{std::norm(s), 0.0};
      cstep.has_drive = true;
    }
    cstep.h = std::move(h);
    cs.steps_.push_back(std::move(cstep));
  }

  // Precompute step propagators: every step under Exact, idle steps only
  // under RK4 (drive steps integrate from the sampled Hamiltonian). Idle
  // steps share one exponential of the static Hamiltonian per span length.
  // Once a step has its propagator, the Hamiltonian is dead weight and is
  // released, so a long-lived reused IR holds one matrix per step.
  cs.integrator_ = integrator_;
  const double tau_full = tau_sample * sample_stride_;
  CMat idle_full, idle_tail;
  cs.props_.reserve(cs.steps_.size());
  for (CompiledStep& st : cs.steps_) {
    if (st.has_drive) {
      if (integrator_ != Integrator::Exact) {
        cs.props_.emplace_back();
        continue;
      }
      cs.props_.push_back(step_propagator(st.h, st.tau));
    } else {
      CMat& idle = st.tau == tau_full ? idle_full : idle_tail;
      if (idle.empty()) idle = step_propagator(st.h, st.tau);
      cs.props_.push_back(idle);
    }
    st.h = CMat();
  }
  return cs;
}

CVec PulseSimulator::evolve(const CompiledSchedule& cs, CVec psi) const {
  HGP_REQUIRE(psi.size() == system_.dim(), "evolve: state dimension mismatch");
  HGP_REQUIRE(cs.integrator() == integrator_,
              "evolve: schedule was compiled for a different integrator");
  if (integrator_ == Integrator::Exact) {
    for (const CMat& p : cs.props_) psi = p * psi;
    return psi;
  }
  for (std::size_t i = 0; i < cs.steps_.size(); ++i) {
    const CompiledStep& st = cs.steps_[i];
    if (!st.has_drive) {
      // Idle spans stay exact — precompiled (the static Hamiltonian is
      // constant anyway).
      psi = cs.props_[i] * psi;
      continue;
    }
    rk4_apply(st.h, st.tau, substeps_, psi);
  }
  return psi;
}

CVec PulseSimulator::evolve(const pulse::Schedule& sched, CVec psi) const {
  return evolve(compile(sched), std::move(psi));
}

CMat PulseSimulator::propagator(const CompiledSchedule& cs) const {
  HGP_REQUIRE(cs.integrator() == Integrator::Exact && integrator_ == Integrator::Exact,
              "propagator: requires the Exact integrator (use evolve for RK4)");
  CMat u = CMat::identity(system_.dim());
  for (const CMat& p : cs.props_) u = p * u;
  return u;
}

CMat PulseSimulator::propagator(const pulse::Schedule& sched) const {
  return propagator(compile(sched));
}

CMat PulseSimulator::unitary(const pulse::Schedule& sched) const {
  const CompiledSchedule cs = compile(sched);
  if (integrator_ == Integrator::Exact) return propagator(cs);
  // RK4 cross-validation: integrate each basis column over the shared IR.
  const std::size_t dim = system_.dim();
  CMat u(dim, dim);
  for (std::size_t col = 0; col < dim; ++col) {
    CVec e(dim, cxd{0.0, 0.0});
    e[col] = 1.0;
    const CVec out = evolve(cs, std::move(e));
    for (std::size_t row = 0; row < dim; ++row) u(row, col) = out[row];
  }
  return u;
}

}  // namespace hgp::psim
