#pragma once

#include "linalg/matrix.hpp"
#include "linalg/types.hpp"
#include "pulse/schedule.hpp"
#include "pulsesim/compiled_schedule.hpp"
#include "pulsesim/system.hpp"

namespace hgp::psim {

/// Time-dependent Schrödinger solver for pulse schedules:
///     dψ/dt = -i 2π H(t) ψ,   H in GHz, t in ns.
///
/// All entry points run through the CompiledSchedule IR: compile() lowers a
/// schedule once (indexing, frame walk, sampled Hamiltonians, precomputed
/// step propagators), and evolve()/propagator() are cheap passes over that
/// IR. The schedule-taking overloads compile on the fly; callers that evolve
/// one schedule repeatedly should compile once and reuse.
class PulseSimulator {
 public:
  /// `sample_stride` > 1 holds the Hamiltonian constant over that many dt
  /// samples per propagator step — a fast path for slowly varying envelopes
  /// (flat-top CR pulses). Left/right staircase errors cancel on symmetric
  /// rise/fall; keep stride = 1 for schedules with frequency ramps.
  explicit PulseSimulator(PulseSystem system, Integrator integrator = Integrator::Exact,
                          int substeps = 1, int sample_stride = 1);

  const PulseSystem& system() const { return system_; }

  /// Lower a schedule to the IR. Channels the system does not wire
  /// (measure/acquire) are ignored.
  CompiledSchedule compile(const pulse::Schedule& sched) const;

  /// Evolve ψ0 through a compiled schedule; returns the final state.
  la::CVec evolve(const CompiledSchedule& cs, la::CVec psi) const;
  /// Convenience: compile + evolve in one call.
  la::CVec evolve(const pulse::Schedule& sched, la::CVec psi) const;

  /// Full unitary of a compiled schedule, built column-batched: the product
  /// of the precomputed step propagators advances all basis columns at once
  /// instead of re-integrating the schedule once per column. Requires the
  /// Exact integrator (the executor's block-compilation path).
  la::CMat propagator(const CompiledSchedule& cs) const;
  la::CMat propagator(const pulse::Schedule& sched) const;
  /// Full unitary under the configured integrator: Exact = propagator();
  /// Rk4 = column-at-a-time integration over the IR (cross-validation).
  la::CMat unitary(const pulse::Schedule& sched) const;

 private:
  PulseSystem system_;
  Integrator integrator_;
  int substeps_;
  int sample_stride_;
};

}  // namespace hgp::psim
