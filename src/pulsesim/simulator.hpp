#pragma once

#include "linalg/matrix.hpp"
#include "linalg/types.hpp"
#include "pulse/schedule.hpp"
#include "pulsesim/system.hpp"

namespace hgp::psim {

/// Integration scheme. `Exact` treats the Hamiltonian as piecewise constant
/// over each dt sample (exactly how the AWG emits the envelope) and applies
/// the exact matrix exponential per sample; `Rk4` is a classic fixed-step
/// integrator used to cross-validate the propagator in tests.
enum class Integrator { Exact, Rk4 };

/// Time-dependent Schrödinger solver for pulse schedules:
///     dψ/dt = -i 2π H(t) ψ,   H in GHz, t in ns.
class PulseSimulator {
 public:
  /// `sample_stride` > 1 holds the Hamiltonian constant over that many dt
  /// samples per propagator step — a fast path for slowly varying envelopes
  /// (flat-top CR pulses). Left/right staircase errors cancel on symmetric
  /// rise/fall; keep stride = 1 for schedules with frequency ramps.
  explicit PulseSimulator(PulseSystem system, Integrator integrator = Integrator::Exact,
                          int substeps = 1, int sample_stride = 1);

  const PulseSystem& system() const { return system_; }

  /// Evolve ψ0 through the schedule; returns the final state. Channels the
  /// system does not wire (measure/acquire) are ignored.
  la::CVec evolve(const pulse::Schedule& sched, la::CVec psi0) const;
  /// Full unitary of the schedule (columns = evolved basis states).
  la::CMat unitary(const pulse::Schedule& sched) const;

 private:
  PulseSystem system_;
  Integrator integrator_;
  int substeps_;
  int sample_stride_;
};

}  // namespace hgp::psim
