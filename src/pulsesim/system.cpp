#include "pulsesim/system.hpp"

#include "common/error.hpp"
#include "linalg/pauli.hpp"
#include "linalg/types.hpp"

namespace hgp::psim {

using la::cxd;
using la::CMat;
using la::Pauli;
using la::PauliString;

PulseSystem::PulseSystem(std::size_t num_qubits)
    : num_qubits_(num_qubits), h0_(dim(), dim()) {
  HGP_REQUIRE(num_qubits >= 1 && num_qubits <= 6,
              "PulseSystem: pulse simulation is sized for small subsystems");
}

const ChannelOperator* PulseSystem::find_channel(const pulse::Channel& c) const {
  for (const ChannelOperator& op : channels_)
    if (op.channel == c) return &op;
  return nullptr;
}

void PulseSystem::set_detuning(std::size_t q, double delta_ghz) {
  HGP_REQUIRE(q < num_qubits_, "set_detuning: qubit out of range");
  h0_ += PauliString::single(num_qubits_, q, Pauli::Z).matrix() * cxd{delta_ghz / 2.0, 0.0};
}

void PulseSystem::add_zz_crosstalk(std::size_t a, std::size_t b, double zeta_ghz) {
  HGP_REQUIRE(a < num_qubits_ && b < num_qubits_ && a != b, "add_zz_crosstalk: bad qubits");
  std::vector<Pauli> ops(num_qubits_, Pauli::I);
  ops[a] = Pauli::Z;
  ops[b] = Pauli::Z;
  h0_ += PauliString(ops).matrix() * cxd{zeta_ghz / 4.0, 0.0};
}

void PulseSystem::add_exchange(std::size_t a, std::size_t b, double j_ghz) {
  HGP_REQUIRE(a < num_qubits_ && b < num_qubits_ && a != b, "add_exchange: bad qubits");
  std::vector<Pauli> xx(num_qubits_, Pauli::I), yy(num_qubits_, Pauli::I);
  xx[a] = Pauli::X;
  xx[b] = Pauli::X;
  yy[a] = Pauli::Y;
  yy[b] = Pauli::Y;
  h0_ += (PauliString(xx).matrix() + PauliString(yy).matrix()) * cxd{j_ghz / 2.0, 0.0};
}

void PulseSystem::add_drive(std::size_t q, double rate_ghz) {
  HGP_REQUIRE(q < num_qubits_, "add_drive: qubit out of range");
  ChannelOperator op;
  op.channel = pulse::Channel::drive(q);
  op.x_quad = PauliString::single(num_qubits_, q, Pauli::X).matrix() * cxd{rate_ghz / 2.0, 0.0};
  op.y_quad = PauliString::single(num_qubits_, q, Pauli::Y).matrix() * cxd{rate_ghz / 2.0, 0.0};
  channels_.push_back(std::move(op));
}

void PulseSystem::add_cr(std::size_t u, std::size_t control, std::size_t target,
                         double mu_zx_ghz, double mu_ix_ghz, double mu_zi_ghz) {
  HGP_REQUIRE(control < num_qubits_ && target < num_qubits_ && control != target,
              "add_cr: bad qubits");
  auto two = [&](Pauli pc, Pauli pt) {
    std::vector<Pauli> ops(num_qubits_, Pauli::I);
    ops[control] = pc;
    ops[target] = pt;
    return PauliString(ops).matrix();
  };
  ChannelOperator op;
  op.channel = pulse::Channel::control(u);
  op.x_quad = two(Pauli::Z, Pauli::X) * cxd{mu_zx_ghz / 2.0, 0.0} +
              two(Pauli::I, Pauli::X) * cxd{mu_ix_ghz / 2.0, 0.0};
  op.y_quad = two(Pauli::Z, Pauli::Y) * cxd{mu_zx_ghz / 2.0, 0.0} +
              two(Pauli::I, Pauli::Y) * cxd{mu_ix_ghz / 2.0, 0.0};
  op.sq_quad = two(Pauli::Z, Pauli::I) * cxd{mu_zi_ghz / 2.0, 0.0};
  channels_.push_back(std::move(op));
}

void PulseSystem::set_gain(const pulse::Channel& c, double gain) {
  for (ChannelOperator& op : channels_) {
    if (op.channel == c) {
      op.gain = gain;
      return;
    }
  }
  HGP_REQUIRE(false, "set_gain: channel not wired: " + c.str());
}

}  // namespace hgp::psim
