#pragma once

#include <string>
#include <vector>

#include "common/binio.hpp"
#include "linalg/matrix.hpp"

namespace hgp::psim {

/// Integration scheme. `Exact` treats the Hamiltonian as piecewise constant
/// over each dt sample (exactly how the AWG emits the envelope) and applies
/// the exact matrix exponential per sample; `Rk4` is a classic fixed-step
/// integrator used to cross-validate the propagator in tests.
enum class Integrator { Exact, Rk4 };

/// One piecewise-constant integration step of a compiled schedule.
struct CompiledStep {
  double tau = 0.0;        // integration span: 2π · dt · samples
  bool has_drive = false;  // any channel playing during the step
  /// Sampled Hamiltonian held constant over the step. Released (emptied)
  /// once the step's propagator is precomputed — under the Exact integrator
  /// the IR keeps only the propagators, halving a reused IR's footprint.
  la::CMat h;
};

/// A pulse schedule lowered to the simulator's intermediate representation.
///
/// Compilation resolves the schedule once — per-channel play timelines,
/// frame-event walk (phase/frequency bookkeeping), envelope sampling, and
/// the per-step sampled Hamiltonians — and, for the Exact integrator, also
/// precomputes every step propagator (idle steps share one matrix
/// exponential). Time-stepping a state through the IR is then a plain
/// sequence of small matrix applies: no schedule re-indexing, no propagator
/// rebuilds. One compiled schedule serves repeated evolve() calls and the
/// column-batched propagator() equally, which is what makes the executor's
/// pulse-block compilation cacheable end to end.
class CompiledSchedule {
 public:
  int duration_dt() const { return duration_; }
  std::size_t num_steps() const { return steps_.size(); }
  /// Which integrator this IR was compiled for (evolve/propagator require a
  /// matching simulator).
  Integrator integrator() const { return integrator_; }
  const std::vector<CompiledStep>& steps() const { return steps_; }
  /// Per-step exact propagators, parallel to steps(). Under RK4 only the
  /// idle (no-drive) steps carry one — drive steps integrate from the
  /// sampled Hamiltonian and their slots are empty matrices.
  const std::vector<la::CMat>& step_propagators() const { return props_; }

  /// Append the IR to `out` in the store's binary encoding (steps, sampled
  /// Hamiltonians where retained, and precomputed propagators — all by
  /// IEEE-754 bit pattern, so evolve() over a deserialized IR is
  /// bit-identical to the original). This is the payload format a persistent
  /// compiled-IR cache shares across processes, the same way
  /// serve::BlockStore ships compiled block unitaries.
  void serialize(std::string& out) const;
  /// Decode one IR from `in`. False on truncated/malformed input; never
  /// throws.
  static bool deserialize(io::Reader& in, CompiledSchedule& out);

 private:
  friend class PulseSimulator;
  int duration_ = 0;
  Integrator integrator_ = Integrator::Exact;
  std::vector<CompiledStep> steps_;
  std::vector<la::CMat> props_;
};

}  // namespace hgp::psim
