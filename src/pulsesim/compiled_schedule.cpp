#include "pulsesim/compiled_schedule.hpp"

namespace hgp::psim {

void CompiledSchedule::serialize(std::string& out) const {
  io::Writer w(out);
  w.i32(duration_);
  w.u8(integrator_ == Integrator::Rk4 ? 1 : 0);
  w.u32(static_cast<std::uint32_t>(steps_.size()));
  for (const CompiledStep& s : steps_) {
    w.f64(s.tau);
    w.u8(s.has_drive ? 1 : 0);
    w.mat(s.h);
  }
  w.u32(static_cast<std::uint32_t>(props_.size()));
  for (const la::CMat& p : props_) w.mat(p);
}

bool CompiledSchedule::deserialize(io::Reader& in, CompiledSchedule& out) {
  std::int32_t duration = 0;
  std::uint8_t integrator = 0;
  std::uint32_t num_steps = 0;
  if (!in.i32(duration) || !in.u8(integrator) || !in.u32(num_steps)) return false;
  out.duration_ = duration;
  out.integrator_ = integrator == 1 ? Integrator::Rk4 : Integrator::Exact;
  // Every step occupies at least (tau, has_drive, empty mat) = 17 bytes —
  // bound the reserve so a corrupted count cannot balloon memory.
  if (std::uint64_t{num_steps} * 17 > in.remaining()) return false;
  out.steps_.clear();
  out.steps_.resize(num_steps);
  for (CompiledStep& s : out.steps_) {
    std::uint8_t drive = 0;
    if (!in.f64(s.tau) || !in.u8(drive) || !in.mat(s.h)) return false;
    s.has_drive = drive != 0;
  }
  std::uint32_t num_props = 0;
  if (!in.u32(num_props) || std::uint64_t{num_props} * 8 > in.remaining())
    return false;
  out.props_.clear();
  out.props_.resize(num_props);
  for (la::CMat& p : out.props_)
    if (!in.mat(p)) return false;
  return true;
}

}  // namespace hgp::psim
