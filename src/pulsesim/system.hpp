#pragma once

#include <vector>

#include "linalg/matrix.hpp"
#include "pulse/channels.hpp"

namespace hgp::psim {

/// Drivable channel: contributes 2π·[Re(s̃(t))·x_quad + Im(s̃(t))·y_quad] to
/// the Hamiltonian, where s̃ is the played envelope adjusted by the channel's
/// frame phase/frequency. Coefficients are in GHz; time is in ns.
struct ChannelOperator {
  pulse::Channel channel;
  la::CMat x_quad;
  la::CMat y_quad;
  /// Quadratic (AC-Stark) term, driven by |s̃(t)|²: phase-independent by
  /// construction, which is what makes virtual-Z frame changes exact. Empty
  /// when the channel has no quadratic response.
  la::CMat sq_quad;
  /// Multiplicative output error of the channel electronics: the hardware
  /// emits gain * requested envelope. 1.0 when perfectly calibrated; the
  /// noise model perturbs it (coherent amplitude miscalibration).
  double gain = 1.0;
};

/// The time-dependent system a pulse schedule drives:
///
///   H(t)/2π = H0 + Σ_c [Re(s̃_c(t)) X_c + Im(s̃_c(t)) Y_c]      (GHz)
///
/// H0 carries qubit detunings (rotating frame of each qubit's calibrated
/// drive frequency), static ZZ crosstalk, and optional exchange coupling.
/// Control channels use the standard effective cross-resonance operators
/// (ZX / IX / ZI terms), the textbook model for echoed-CR gates on IBM
/// hardware.
class PulseSystem {
 public:
  explicit PulseSystem(std::size_t num_qubits);

  std::size_t num_qubits() const { return num_qubits_; }
  std::size_t dim() const { return std::size_t{1} << num_qubits_; }
  const la::CMat& static_hamiltonian() const { return h0_; }
  const std::vector<ChannelOperator>& channels() const { return channels_; }

  /// Find the operator for a channel; nullptr when the channel is not wired
  /// (e.g. measure channels, which the unitary solver ignores).
  const ChannelOperator* find_channel(const pulse::Channel& c) const;

  /// Detuning δ_q (GHz): adds δ/2 · Z_q to H0. Nonzero when the hardware's
  /// true qubit frequency drifted from the calibrated frame.
  void set_detuning(std::size_t q, double delta_ghz);
  /// Static ZZ crosstalk ζ (GHz): adds ζ/4 · Z_a Z_b.
  void add_zz_crosstalk(std::size_t a, std::size_t b, double zeta_ghz);
  /// Exchange coupling J (GHz): adds J/2 (X_a X_b + Y_a Y_b). Used by the
  /// physics tests; backends express two-qubit drive via CR channels instead.
  void add_exchange(std::size_t a, std::size_t b, double j_ghz);

  /// Wire DriveChannel(q) with rate r (GHz): X_quad = r/2 X_q.
  void add_drive(std::size_t q, double rate_ghz);
  /// Wire ControlChannel(u) for directed pair (control, target) with
  /// effective CR coefficients (GHz). ZX and IX respond linearly to the
  /// drive; ZI is the control's AC-Stark shift, quadratic in |drive| (and
  /// hence immune to the echo's sign flip — corrected by virtual RZ, as on
  /// hardware).
  void add_cr(std::size_t u, std::size_t control, std::size_t target, double mu_zx_ghz,
              double mu_ix_ghz, double mu_zi_ghz);

  /// Set the output gain of an already-wired channel.
  void set_gain(const pulse::Channel& c, double gain);

 private:
  std::size_t num_qubits_;
  la::CMat h0_;
  std::vector<ChannelOperator> channels_;
};

}  // namespace hgp::psim
