#pragma once

#include <cstdint>
#include <vector>

#include "circuit/circuit.hpp"
#include "pulse/schedule.hpp"

namespace hgp::core {

/// One step of an executable program on physical qubits: either a compiled
/// gate (whose pulse realization comes from the backend calibrations) or a
/// raw pulse block (the hybrid model's native-pulse ansatz layers).
struct ExecOp {
  bool is_pulse = false;
  /// Valid when !is_pulse.
  qc::Op gate;
  /// Valid when is_pulse: the physical qubits the block acts on (their order
  /// defines the block's local basis) and its schedule on physical channels.
  std::vector<std::size_t> qubits;
  pulse::Schedule schedule;

  static ExecOp from_gate(qc::Op op) {
    ExecOp e;
    e.gate = std::move(op);
    return e;
  }
  static ExecOp from_pulse(std::vector<std::size_t> qubits, pulse::Schedule schedule) {
    ExecOp e;
    e.is_pulse = true;
    e.qubits = std::move(qubits);
    e.schedule = std::move(schedule);
    return e;
  }
};

/// A fully bound, physical program plus the measurement map: measured bit i
/// of the result corresponds to physical qubit measure_qubits[i].
struct Program {
  std::vector<ExecOp> ops;
  std::vector<std::size_t> measure_qubits;

  /// Total drive-pulse count of the pulse blocks (reported in ablations).
  std::size_t pulse_block_play_count() const;
};

}  // namespace hgp::core
