#include "core/calibration_run.hpp"

#include "common/error.hpp"

namespace hgp::core {

std::vector<noise::ReadoutError> calibrate_readout(Executor& executor,
                                                   const std::vector<std::size_t>& phys_qubits,
                                                   std::size_t shots, Rng& rng) {
  HGP_REQUIRE(!phys_qubits.empty(), "calibrate_readout: no qubits");
  HGP_REQUIRE(shots >= 16, "calibrate_readout: too few shots");

  Program zeros;
  zeros.measure_qubits = phys_qubits;
  // The executor needs at least one op to learn the qubit set; an explicit
  // identity-duration barrier is free.
  zeros.ops.push_back(ExecOp::from_gate(qc::Op{qc::GateKind::Barrier, {}, {}}));

  Program ones;
  ones.measure_qubits = phys_qubits;
  for (std::size_t q : phys_qubits)
    ones.ops.push_back(ExecOp::from_gate(qc::Op{qc::GateKind::X, {q}, {}}));

  const sim::Counts c0 = executor.run(zeros, shots, rng);
  const sim::Counts c1 = executor.run(ones, shots, rng);

  std::vector<noise::ReadoutError> out(phys_qubits.size());
  for (std::size_t i = 0; i < phys_qubits.size(); ++i) {
    double ones_in_c0 = 0.0, zeros_in_c1 = 0.0;
    for (const auto& [bits, n] : c0)
      if ((bits >> i) & 1) ones_in_c0 += static_cast<double>(n);
    for (const auto& [bits, n] : c1)
      if (!((bits >> i) & 1)) zeros_in_c1 += static_cast<double>(n);
    // Clamp away from 0.5 so the M3 assignment matrix stays well-posed even
    // under calibration shot noise.
    out[i].p1_given_0 = std::min(0.49, ones_in_c0 / static_cast<double>(shots));
    out[i].p0_given_1 = std::min(0.49, zeros_in_c1 / static_cast<double>(shots));
  }
  return out;
}

}  // namespace hgp::core
