#pragma once

#include <vector>

#include "backend/backend.hpp"
#include "common/rng.hpp"
#include "core/executor.hpp"
#include "noise/channels.hpp"

namespace hgp::core {

/// Estimate per-qubit readout confusion by running the two M3 calibration
/// programs (all-|0> and all-|1> preparations) on the device, exactly like
/// the "initial calibration program" of the paper's §IV-D. The X gates of
/// the |1...1> preparation carry their own (small) error — the estimate is
/// what a real calibration would see, not the simulator's ground truth.
std::vector<noise::ReadoutError> calibrate_readout(Executor& executor,
                                                   const std::vector<std::size_t>& phys_qubits,
                                                   std::size_t shots, Rng& rng);

}  // namespace hgp::core
