#include "core/workflow.hpp"

#include "common/error.hpp"
#include "core/calibration_run.hpp"
#include "core/qaoa.hpp"
#include "mitigation/cvar.hpp"
#include "mitigation/m3.hpp"
#include "obs/obs.hpp"
#include "optimize/cobyla.hpp"
#include "optimize/neldermead.hpp"
#include "optimize/spsa.hpp"

namespace hgp::core {

namespace {

/// The configured cost metric: plain expectation / M3 / CVaR, over counts
/// keyed in virtual qubit order.
double scored_cost(const sim::Counts& counts, const graph::Graph& g, const RunConfig& cfg,
                   const mit::M3Mitigator* m3) {
  auto cut = [&](std::uint64_t bits) { return g.cut_value(bits); };
  if (m3 != nullptr) {
    const mit::QuasiDistribution quasi = m3->mitigate(counts);
    if (cfg.cvar) return mit::cvar_from_quasi(quasi, cut, cfg.cvar_alpha);
    return quasi.expectation(cut);
  }
  if (cfg.cvar) return mit::cvar_from_counts(counts, cut, cfg.cvar_alpha);
  return cut_expectation(g, counts);
}

}  // namespace

RunResult run_qaoa(const graph::Instance& instance, const backend::FakeBackend& dev,
                   ModelKind kind, const RunConfig& config,
                   opt::BatchDispatcher* dispatcher,
                   std::shared_ptr<serve::BlockCache> block_cache) {
  // Sticky by design: telemetry is a process-wide flag, so one instrumented
  // run in a sweep lights up the shared registry for the rest of the process
  // (concurrent runs would race an on/off toggle here).
  if (config.telemetry) obs::set_enabled(true);

  ModelConfig mcfg = config.model;
  mcfg.gate_optimization = config.gate_optimization;
  const QaoaModel model = QaoaModel::build(instance.graph, dev, kind, mcfg);

  ExecutorOptions eopt;
  eopt.noise = config.noise;
  eopt.engine = engine_from_name(config.engine);
  eopt.num_threads = config.executor_threads;
  eopt.shot_batch_lanes = config.shot_batch_lanes;
  eopt.fusion_max_qubits = config.fusion;
  // Every executor of this run (driver + per-candidate) compiles into one
  // cache: across optimizer iterations only the parameter-bearing blocks
  // recompile. A service-injected cache extends the sharing to every
  // concurrent run of a sweep.
  eopt.block_cache = block_cache
                         ? std::move(block_cache)
                         : std::make_shared<serve::BlockCache>(eopt.block_cache_capacity);
  eopt.block_store_path = config.block_store_path;
  eopt.cancel = config.cancel;
  Executor executor(dev, eopt);
  Rng rng(config.seed);

  const ObjectiveKind okind = objective_from_name(config.objective);
  HGP_REQUIRE(okind == ObjectiveKind::Sample || !config.m3,
              "run_qaoa: M3 mitigation operates on sampled counts — use the "
              "'sample' objective");
  ObjectiveSpec spec;
  spec.kind = okind == ObjectiveKind::Sample ? ObjectiveKind::Expectation : okind;
  spec.value = [&g = instance.graph](std::uint64_t bits) { return g.cut_value(bits); };
  spec.cvar_alpha = config.cvar_alpha;
  spec.cvar_maximize = true;

  // M3 readout calibration (paper §IV-D): estimate the per-qubit confusion
  // by running the all-|0> and all-|1> calibration programs on the device.
  std::unique_ptr<mit::M3Mitigator> m3;
  if (config.m3) {
    const Program probe = model.instantiate(model.initial_parameters());
    Rng cal_rng(config.seed ^ 0xCA11ull);
    m3 = std::make_unique<mit::M3Mitigator>(
        calibrate_readout(executor, probe.measure_qubits, config.calibration_shots, cal_rng));
  }

  // Batch-level progress record, updated single-threaded after each batch
  // returns. When a cancel token fires mid-evaluation the optimizer's own
  // state unwinds with the CancelledError, so this is what turns a cancelled
  // run into a partial result instead of a lost one. Pure observation — it
  // never touches the RNG or the evaluation order, so runs that complete
  // normally stay bit-identical to a cancel-free build.
  struct Progress {
    bool any = false;
    double best = 0.0;
    std::vector<double> best_x;
    int evals = 0;
    std::vector<double> history;
  };
  Progress progress;

  const opt::BatchObjective raw_objective = [&](const std::vector<std::vector<double>>& xs) {
    if (okind != ObjectiveKind::Sample && !config.noise) {
      // Lane-native, zero-noise path: the batch's candidates share one
      // circuit structure, so they pack as lanes of one batched evolve —
      // every unparameterized block applies once for the whole group. Fully
      // deterministic (no rng draw), and value i is bit-identical to a
      // scalar evaluation of candidate i alone, for any group or worker
      // count.
      const std::size_t group = std::max<std::size_t>(std::size_t{1}, config.candidate_lanes);
      std::vector<double> vals(xs.size());
      std::vector<std::function<void()>> tasks;
      for (std::size_t start = 0; start < xs.size(); start += group) {
        const std::size_t count = std::min(group, xs.size() - start);
        tasks.push_back([&, start, count] {
          std::vector<Program> progs;
          progs.reserve(count);
          for (std::size_t i = 0; i < count; ++i)
            progs.push_back(model.instantiate(xs[start + i]));
          Executor ex(dev, eopt);  // shares the block cache; private report
          const std::vector<double> v = ex.run_expectation_batch(progs, spec);
          for (std::size_t i = 0; i < count; ++i) vals[start + i] = -v[i];
        });
      }
      if (dispatcher != nullptr) {
        dispatcher->run(tasks);
      } else {
        for (std::function<void()>& task : tasks) task();
      }
      return vals;
    }
    // One parent draw per batch; candidate i samples its own child stream.
    // Values therefore depend only on the batch structure, never on which
    // worker (or how many) evaluated them.
    const std::uint64_t base = rng.next_u64();
    return opt::parallel_map(dispatcher, xs.size(), [&](std::size_t i) {
      const Program prog = model.instantiate(xs[i]);
      Executor ex(dev, eopt);  // shares the block cache; private report
      Rng candidate_rng = Rng::child(base, i);
      if (okind != ObjectiveKind::Sample)
        return -ex.run_expectation(prog, config.shots, candidate_rng, spec);
      const sim::Counts counts = ex.run(prog, config.shots, candidate_rng);
      return -scored_cost(counts, instance.graph, config, m3.get());
    });
  };

  const opt::BatchObjective objective = [&](const std::vector<std::vector<double>>& xs) {
    const std::vector<double> vals = raw_objective(xs);
    progress.evals += static_cast<int>(vals.size());
    for (std::size_t i = 0; i < vals.size(); ++i) {
      if (!progress.any || vals[i] < progress.best) {
        progress.any = true;
        progress.best = vals[i];
        progress.best_x = xs[i];
      }
    }
    progress.history.push_back(progress.best);
    return vals;
  };

  bool cancelled = false;
  opt::OptimizeResult opt_result;
  try {
    if (config.optimizer == "cobyla") {
      opt::Cobyla::Options copt;
      copt.max_evaluations = config.max_evaluations;
      copt.cancel = config.cancel;
      opt_result = opt::Cobyla(copt).minimize_batch(objective, model.initial_parameters(),
                                                    model.bounds());
    } else if (config.optimizer == "spsa") {
      opt::Spsa::Options sopt;
      sopt.max_iterations = config.max_evaluations / 2;  // 2 evals per iteration
      sopt.seed = config.seed ^ 0x5B5Aull;
      sopt.cancel = config.cancel;
      opt_result = opt::Spsa(sopt).minimize_batch(objective, model.initial_parameters(),
                                                  model.bounds());
    } else if (config.optimizer == "neldermead") {
      opt::NelderMead::Options nopt;
      nopt.max_evaluations = config.max_evaluations;
      nopt.cancel = config.cancel;
      opt_result = opt::NelderMead(nopt).minimize_batch(objective, model.initial_parameters(),
                                                        model.bounds());
    } else {
      HGP_REQUIRE(false, "run_qaoa: unknown optimizer '" + config.optimizer + "'");
    }
    cancelled = opt_result.stopped_early;
  } catch (const CancelledError&) {
    // The token fired inside an evaluation (executor batch checkpoint).
    // Reassemble the training record from the batches that did complete.
    cancelled = true;
    opt_result = opt::OptimizeResult{};
    opt_result.x = progress.any ? progress.best_x : model.initial_parameters();
    opt_result.value = progress.best;
    opt_result.evaluations = progress.evals;
    opt_result.iterations = static_cast<int>(progress.history.size());
    opt_result.history = progress.history;
    opt_result.stopped_early = true;
  }

  // Final evaluation at the optimum with a fresh sampling seed, under the
  // same objective mode the training used. A cancelled run skips it — the
  // point of cancelling is to stop spending shots — and reports the best
  // completed training evaluation instead.
  double final_cost = -opt_result.value;
  if (!cancelled) {
    try {
      Rng final_rng(config.seed ^ 0xF1A5ull);
      const Program final_prog = model.instantiate(opt_result.x);
      if (okind != ObjectiveKind::Sample) {
        final_cost = executor.run_expectation(final_prog, config.shots, final_rng, spec);
      } else {
        const sim::Counts final_counts = executor.run(final_prog, config.shots, final_rng);
        final_cost = scored_cost(final_counts, instance.graph, config, m3.get());
      }
    } catch (const CancelledError&) {
      cancelled = true;
      final_cost = -opt_result.value;
    }
  }

  RunResult out;
  out.model = model_name(kind);
  out.final_cost = final_cost;
  out.ar = approximation_ratio(final_cost, instance.max_cut);
  out.optimizer = std::move(opt_result);
  out.iterations_to_converge = opt::iterations_to_converge(out.optimizer, 0.02);
  out.mixer_layer_duration_dt = model.mixer_layer_duration_dt();
  out.makespan_dt = executor.last_report().makespan_dt;
  out.swap_count = model.swap_count();
  out.num_parameters = model.num_parameters();
  if (cancelled) {
    out.cancelled = true;
    out.cancel_reason =
        config.cancel ? cancel_reason_name(config.cancel->reason()) : "cancelled";
  }
  return out;
}

DurationSearchOutcome optimize_mixer_duration(const graph::Instance& instance,
                                              const backend::FakeBackend& dev,
                                              const RunConfig& config,
                                              double keep_fraction) {
  HGP_REQUIRE(config.model.p >= 1, "optimize_mixer_duration: bad config");
  DurationSearchOutcome out;

  auto score_at = [&](int duration_dt) {
    RunConfig c = config;
    c.model.mixer_duration_dt = duration_dt;
    const RunResult r = run_qaoa(instance, dev, ModelKind::Hybrid, c);
    return r.ar;
  };

  out.search = opt::binary_search_duration(score_at, config.model.mixer_duration_dt, 32,
                                           keep_fraction);
  RunConfig final_cfg = config;
  final_cfg.model.mixer_duration_dt = out.search.best_duration;
  out.final_run = run_qaoa(instance, dev, ModelKind::Hybrid, final_cfg);
  return out;
}

}  // namespace hgp::core
