#pragma once

#include <cstdint>

#include "circuit/circuit.hpp"
#include "graph/graph.hpp"
#include "linalg/pauli.hpp"
#include "optimize/batch.hpp"
#include "sim/state.hpp"

namespace hgp::core {

/// Max-Cut cost Hamiltonian H_P = Σ_(u,v) w/2 (I - Z_u Z_v): its expectation
/// is the expected cut value; its ground-space maximizes the cut.
la::PauliSum maxcut_hamiltonian(const graph::Graph& g);

/// Expected cut value over measured bitstrings.
double cut_expectation(const graph::Graph& g, const sim::Counts& counts);

/// Approximation ratio α = C*/C_max (paper §II).
double approximation_ratio(double cut_value, double max_cut);

/// Gate-level QAOA ansatz (paper Fig. 2e): |+>^n, then p layers of the
/// problem layer Π RZZ(-w γ_l) and the mixer layer Π RX(2 β_l). Parameter
/// vector layout: [γ_1, β_1, γ_2, β_2, ...].
qc::Circuit qaoa_circuit(const graph::Graph& g, int p);

/// Index helpers for the QAOA parameter layout.
inline int gamma_index(int layer) { return 2 * layer; }
inline int beta_index(int layer) { return 2 * layer + 1; }

/// Noiseless QAOA cut expectation at given angles (no shots): used by tests
/// and for locating good initial angles. `backend` selects the simulation
/// representation by name ("statevector" default; "density" cross-checks the
/// exact mixed-state path).
double ideal_qaoa_expectation(const graph::Graph& g, int p, const std::vector<double>& theta,
                              sim::StateKind backend = sim::StateKind::Statevector);

/// Batched form for landscape scans and angle grids: each angle vector is an
/// independent deterministic evaluation, fanned out through `dispatcher`
/// (e.g. a serve::EvalService) when given, inline otherwise.
std::vector<double> ideal_qaoa_expectation_batch(
    const graph::Graph& g, int p, const std::vector<std::vector<double>>& thetas,
    opt::BatchDispatcher* dispatcher = nullptr,
    sim::StateKind backend = sim::StateKind::Statevector);

/// Hardware-efficient PQC of Fig. 2b: per-layer U3 rotations plus a CX
/// entanglement layer ("linear", "circular", or "full"). Provided for the
/// general-VQA examples; parameters are θ[3*q + 3*n*layer + component].
qc::Circuit hardware_efficient_pqc(std::size_t num_qubits, int layers,
                                   const std::string& entanglement);

}  // namespace hgp::core
