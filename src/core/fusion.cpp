#include "core/fusion.hpp"

#include <algorithm>

#include "common/error.hpp"

namespace hgp::core {

using la::CMat;

namespace {

/// Sorted union of two sorted index lists.
std::vector<std::size_t> support_union(const std::vector<std::size_t>& a,
                                       const std::vector<std::size_t>& b) {
  std::vector<std::size_t> out;
  out.reserve(a.size() + b.size());
  std::set_union(a.begin(), a.end(), b.begin(), b.end(), std::back_inserter(out));
  return out;
}

std::vector<std::size_t> sorted(std::vector<std::size_t> v) {
  std::sort(v.begin(), v.end());
  return v;
}

}  // namespace

CMat embed_on_support(const CMat& u, const std::vector<std::size_t>& local,
                      const std::vector<std::size_t>& support) {
  const std::size_t k = local.size();
  const std::size_t m = support.size();
  HGP_REQUIRE(u.rows() == (std::size_t{1} << k), "embed_on_support: size mismatch");
  if (local == support) return u;  // already in the fused basis

  // pos[j] = support position of the constituent's sub-index bit j.
  std::size_t pos[8];
  std::uint64_t target_mask = 0;
  for (std::size_t j = 0; j < k; ++j) {
    const auto it = std::lower_bound(support.begin(), support.end(), local[j]);
    HGP_REQUIRE(it != support.end() && *it == local[j],
                "embed_on_support: constituent qubit outside the support");
    pos[j] = static_cast<std::size_t>(it - support.begin());
    target_mask |= std::uint64_t{1} << pos[j];
  }

  const std::size_t dim = std::size_t{1} << m;
  CMat big = CMat::zeros(dim, dim);
  for (std::uint64_t r = 0; r < dim; ++r) {
    std::uint64_t tr = 0;
    for (std::size_t j = 0; j < k; ++j) tr |= ((r >> pos[j]) & 1u) << j;
    const std::uint64_t rest = r & ~target_mask;
    for (std::uint64_t ts = 0; ts < (std::uint64_t{1} << k); ++ts) {
      std::uint64_t s = rest;
      for (std::size_t j = 0; j < k; ++j) s |= ((ts >> j) & 1u) << pos[j];
      big(r, s) = u(tr, ts);
    }
  }
  return big;
}

CMat compose_fused(const FusePartView* parts, std::size_t n,
                   const std::vector<std::size_t>& support) {
  HGP_REQUIRE(n >= 1, "compose_fused: empty run");
  CMat acc = embed_on_support(*parts[0].u, *parts[0].local, support);
  const std::size_t m = support.size();
  const std::size_t dim = std::size_t{1} << m;
  for (std::size_t i = 1; i < n; ++i) {
    const CMat& u = *parts[i].u;
    const std::vector<std::size_t>& local = *parts[i].local;
    const std::size_t k = local.size();
    if (local == support) {  // full-width part: plain left-multiply
      acc = u * acc;
      continue;
    }
    // Narrow part: apply it to each column of the accumulator in place —
    // the left-multiply E(u)·acc without materializing the embedded matrix
    // (the delta-compile path re-composes per dirty lane, so this runs in
    // the batch hot loop).
    std::size_t pos[8];
    std::uint64_t target_mask = 0;
    for (std::size_t j = 0; j < k; ++j) {
      const auto it = std::lower_bound(support.begin(), support.end(), local[j]);
      HGP_REQUIRE(it != support.end() && *it == local[j],
                  "compose_fused: constituent qubit outside the support");
      pos[j] = static_cast<std::size_t>(it - support.begin());
      target_mask |= std::uint64_t{1} << pos[j];
    }
    const std::size_t pdim = std::size_t{1} << k;
    la::cxd a[8];
    std::uint64_t idx[8];
    for (std::uint64_t base = 0; base < dim; ++base) {
      if ((base & target_mask) != 0) continue;
      for (std::uint64_t t = 0; t < pdim; ++t) {
        std::uint64_t r = base;
        for (std::size_t j = 0; j < k; ++j) r |= ((t >> j) & 1u) << pos[j];
        idx[t] = r;
      }
      for (std::size_t c = 0; c < dim; ++c) {
        for (std::uint64_t t = 0; t < pdim; ++t) a[t] = acc(idx[t], c);
        for (std::uint64_t r = 0; r < pdim; ++r) {
          la::cxd s = u(r, 0) * a[0];
          for (std::uint64_t t = 1; t < pdim; ++t) s += u(r, t) * a[t];
          acc(idx[r], c) = s;
        }
      }
    }
  }
  return acc;
}

FusionResult fuse_program(const CompiledProgram& cp, const FusionOptions& opt,
                          serve::BlockCache* cache, const std::string& key_prefix,
                          std::uint64_t fingerprint) {
  FusionResult out;
  out.stats.ops_in = cp.timeline.size();

  // Carry everything but the timeline over unchanged: fusion only reshapes
  // which unitaries apply, not the register, measurement maps, or timing.
  out.program.touched = cp.touched;
  out.program.measure_phys = cp.measure_phys;
  out.program.measure_local = cp.measure_local;
  out.program.clock = cp.clock;
  out.program.makespan_dt = cp.makespan_dt;

  // Greedy order-preserving grouping: extend the current run while the
  // support union stays within the width bound, flush otherwise. No
  // commutation analysis — apply order is preserved exactly.
  std::vector<FusedSlot> groups;
  std::vector<std::vector<std::size_t>> group_support;
  if (opt.max_qubits >= 2) {
    for (std::size_t s = 0; s < cp.timeline.size(); ++s) {
      const std::vector<std::size_t> local = sorted(cp.timeline[s].local);
      if (!groups.empty()) {
        std::vector<std::size_t> u = support_union(group_support.back(), local);
        if (u.size() <= opt.max_qubits) {
          groups.back().sources.push_back(s);
          group_support.back() = std::move(u);
          continue;
        }
      }
      groups.push_back(FusedSlot{{s}});
      group_support.push_back(local);
    }
  } else {
    for (std::size_t s = 0; s < cp.timeline.size(); ++s) {
      groups.push_back(FusedSlot{{s}});
      group_support.push_back(sorted(cp.timeline[s].local));
    }
  }

  // Materialize fused slots and the original-slot -> fused-slot remap.
  std::vector<long> slot_remap(cp.timeline.size(), -1);
  out.program.timeline.reserve(groups.size());
  out.slots.reserve(groups.size());
  for (std::size_t g = 0; g < groups.size(); ++g) {
    const FusedSlot& grp = groups[g];
    for (std::size_t src : grp.sources) slot_remap[src] = static_cast<long>(g);

    if (grp.sources.size() == 1) {
      out.program.timeline.push_back(cp.timeline[grp.sources[0]]);
      out.slots.push_back(grp);
      continue;
    }

    out.stats.merged_runs += 1;
    out.stats.max_run_len = std::max(out.stats.max_run_len, grp.sources.size());
    const std::vector<std::size_t>& support = group_support[g];

    // Cache key: the concatenation of the constituent structure keys under
    // the caller's backend-fingerprint prefix. Only usable when every
    // constituent was stamped; an unstamped part (shouldn't happen in the
    // executor pipeline) just composes uncached.
    std::string fuse_key;
    bool keyed = cache != nullptr;
    if (keyed) {
      fuse_key = "fuse[";
      for (std::size_t i = 0; i < grp.sources.size(); ++i) {
        const std::string& part_key = cp.timeline[grp.sources[i]].block.structure_key;
        if (part_key.empty()) {
          keyed = false;
          break;
        }
        if (i) fuse_key += ';';
        fuse_key += part_key;
      }
      fuse_key += ']';
    }

    Scheduled fused;
    fused.local = support;
    fused.idle_before_dt.assign(support.size(), 0);

    std::shared_ptr<const CompiledBlock> cached;
    if (keyed) cached = cache->find(key_prefix + fuse_key, serve::BlockKind::Fused);
    if (cached) {
      out.stats.cache_hits += 1;
      fused.block = *cached;
      fused.block.structure_key = fuse_key;
    } else {
      out.stats.cache_misses += 1;
      std::vector<FusePartView> parts;
      parts.reserve(grp.sources.size());
      std::vector<std::vector<std::size_t>> part_locals(grp.sources.size());
      for (std::size_t i = 0; i < grp.sources.size(); ++i) {
        const Scheduled& s = cp.timeline[grp.sources[i]];
        part_locals[i] = s.local;
        parts.push_back(FusePartView{&s.block.unitary, &part_locals[i]});
      }
      fused.block.unitary = compose_fused(parts.data(), parts.size(), support);
      fused.block.qubits.reserve(support.size());
      for (std::size_t lq : support) fused.block.qubits.push_back(cp.touched[lq]);
      fused.block.virtual_only =
          std::all_of(grp.sources.begin(), grp.sources.end(), [&](std::size_t src) {
            return cp.timeline[src].block.virtual_only;
          });
      fused.block.structure_key = fuse_key;
      if (keyed)
        cache->insert(key_prefix + fuse_key, fused.block, serve::BlockKind::Fused,
                      fingerprint);
    }
    out.program.timeline.push_back(std::move(fused));
    out.slots.push_back(grp);
  }
  out.stats.ops_out = out.program.timeline.size();

  // Remap op -> slot through the fused slots (delta-compilation follows this
  // map to find which fused slot a changed op's block landed in).
  out.program.op_slot.reserve(cp.op_slot.size());
  for (long s : cp.op_slot)
    out.program.op_slot.push_back(s < 0 ? -1 : slot_remap[static_cast<std::size_t>(s)]);
  return out;
}

}  // namespace hgp::core
