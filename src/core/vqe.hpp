#pragma once

#include <string>

#include "circuit/circuit.hpp"
#include "linalg/pauli.hpp"
#include "optimize/batch.hpp"
#include "optimize/optimizer.hpp"

namespace hgp::core {

/// Generic VQE driver over an arbitrary Pauli-sum Hamiltonian and a
/// parameterized circuit — the "other VQAs" the paper's conclusion points
/// the hybrid abstraction at. Runs on the ideal statevector (chemistry-style
/// energy minimization); the QAOA machinery in workflow.hpp is the noisy,
/// machine-in-loop path.
struct VqeConfig {
  int max_evaluations = 300;
  std::string optimizer = "cobyla";  // "cobyla" | "neldermead" | "spsa" | "adam"
  /// Simulation backend evaluating <H>: "statevector" (default) or
  /// "density" (exact mixed-state reference, small registers).
  std::string state_backend = "statevector";
  /// Gradient estimator of the "adam" optimizer: "finite_difference"
  /// (default), "parameter_shift", or "batched_parameter_shift" — the last
  /// submits all 2·n shift points of every iteration as one batch, which a
  /// dispatcher fans out across workers (same numbers, shorter wall clock).
  std::string gradient = "finite_difference";
  std::uint64_t seed = 5;
  /// Cooperative cancellation, polled at optimizer iteration boundaries:
  /// a fired token makes the run return its best-so-far energy with
  /// optimizer.stopped_early set. Null = never cancelled.
  std::shared_ptr<const CancelToken> cancel;
};

struct VqeResult {
  double energy = 0.0;
  double exact_ground = 0.0;  // from dense diagonalization (small systems)
  /// energy error relative to the spectral width.
  double relative_error = 0.0;
  opt::OptimizeResult optimizer;
};

/// Minimize <ansatz(θ)| H |ansatz(θ)>. The ansatz's symbolic parameters are
/// the optimization variables (initialized at 0.1 each). Energy evaluations
/// are deterministic, so independent optimizer candidates fan out through
/// `dispatcher` (e.g. a serve::EvalService) with results identical to the
/// inline path.
VqeResult run_vqe(const la::PauliSum& hamiltonian, const qc::Circuit& ansatz,
                  const VqeConfig& config = {},
                  opt::BatchDispatcher* dispatcher = nullptr);

/// Transverse-field Ising chain H = -J Σ Z_i Z_{i+1} - h Σ X_i, the standard
/// VQE testbed.
la::PauliSum tfim_hamiltonian(std::size_t n, double j, double h, bool periodic = false);

}  // namespace hgp::core
