#include "core/executor.hpp"

#include <algorithm>
#include <cmath>
#include <sstream>

#include "common/error.hpp"
#include "noise/channels.hpp"
#include "pulsesim/simulator.hpp"

namespace hgp::core {

using la::CMat;

namespace {

bool is_virtual_gate(qc::GateKind k) {
  switch (k) {
    case qc::GateKind::I:
    case qc::GateKind::RZ:
    case qc::GateKind::Z:
    case qc::GateKind::S:
    case qc::GateKind::Sdg:
    case qc::GateKind::T:
    case qc::GateKind::Tdg:
    case qc::GateKind::P:
      return true;
    default:
      return false;
  }
}

/// Count drive-channel and control-channel plays in a schedule (the noise
/// charge units).
void count_plays(const pulse::Schedule& sched, std::size_t& drive_plays,
                 std::size_t& cr_halves) {
  drive_plays = 0;
  cr_halves = 0;
  for (const pulse::TimedInstruction& ti : sched.instructions()) {
    if (const auto* play = std::get_if<pulse::Play>(&ti.inst)) {
      if (play->channel.type == pulse::ChannelType::Drive) ++drive_plays;
      if (play->channel.type == pulse::ChannelType::Control) ++cr_halves;
    }
  }
}

bool has_frequency_instruction(const pulse::Schedule& sched) {
  for (const pulse::TimedInstruction& ti : sched.instructions())
    if (std::holds_alternative<pulse::ShiftFrequency>(ti.inst) ||
        std::holds_alternative<pulse::SetFrequency>(ti.inst))
      return true;
  return false;
}

}  // namespace

Executor::Executor(const backend::FakeBackend& dev, ExecutorOptions options)
    : dev_(dev), options_(options) {}

CMat Executor::simulate_block(const pulse::Schedule& physical_sched,
                              const std::vector<std::size_t>& qubits) const {
  const bool coherent = options_.noise && options_.coherent_noise;
  backend::FakeBackend::Subsystem sub = dev_.subsystem(qubits, coherent);
  const pulse::Schedule local = backend::FakeBackend::remap_schedule(physical_sched, sub.remap);
  // Small subsystems are cheap at full resolution; multi-qubit CR blocks use
  // a coarser piecewise-constant stride (2 when a frequency ramp is present,
  // 4 for flat envelopes — staircase errors cancel on symmetric rise/fall).
  const int stride =
      qubits.size() == 1 ? 1 : (has_frequency_instruction(local) ? 2 : 4);
  const psim::PulseSimulator sim(std::move(sub.system), psim::Integrator::Exact, 1, stride);
  CMat u = sim.unitary(local);

  // Undo deferred virtual-Z frames so the block unitary is self-contained.
  for (std::size_t i = 0; i < qubits.size(); ++i) {
    const double shift = pulse::CalibrationSet::drive_phase_shift(physical_sched, qubits[i]);
    if (shift == 0.0) continue;
    CMat full = CMat::identity(1);
    const CMat rz = qc::gate_matrix(qc::GateKind::RZ, {-shift});
    for (std::size_t k = qubits.size(); k-- > 0;)
      full = la::kron(full, k == i ? rz : CMat::identity(2));
    u = full * u;
  }
  return u;
}

Executor::CompiledBlock Executor::compile_gate(const qc::Op& op) {
  CompiledBlock block;
  block.qubits = op.qubits;

  if (is_virtual_gate(op.kind)) {
    block.unitary = qc::gate_matrix(op.kind, op.constant_params());
    block.virtual_only = true;
    return block;
  }
  if (op.kind == qc::GateKind::Delay) {
    // Timed identity: thermal relaxation and coherent frame drift act over
    // its span (it behaves exactly like idle time, which is what DD slices).
    block.unitary = la::CMat::identity(2);
    block.duration_dt = static_cast<int>(op.params[0].value());
    block.explicit_idle = true;
    return block;
  }

  const pulse::CalibrationSet& cal = dev_.calibrations();
  pulse::Schedule sched;
  std::ostringstream key;
  key << qc::gate_name(op.kind);
  for (std::size_t q : op.qubits) key << "," << q;

  switch (op.kind) {
    case qc::GateKind::SX:
      sched = cal.sx(op.qubits[0]);
      break;
    case qc::GateKind::X:
      sched = cal.x(op.qubits[0]);
      break;
    case qc::GateKind::CX:
      sched = cal.cx(op.qubits[0], op.qubits[1]);
      break;
    case qc::GateKind::RZZ: {
      // An RZZ surviving to execution means the pulse-efficient direct-CR
      // realization was requested.
      const double theta = op.params[0].value();
      sched = cal.rzz_direct(op.qubits[0], op.qubits[1], theta);
      key << ",theta=" << theta;
      break;
    }
    default:
      throw Error("Executor: program not in native basis (got " + qc::gate_name(op.kind) +
                  "); transpile first");
  }

  const auto cached = cache_.find(key.str());
  if (cached != cache_.end()) return cached->second;

  count_plays(sched, block.drive_plays, block.cr_halves);
  block.duration_dt = sched.duration();
  if (options_.noise && options_.coherent_noise) {
    block.unitary = simulate_block(sched, op.qubits);
    if (op.kind == qc::GateKind::CX || op.kind == qc::GateKind::RZZ) {
      // Fold in the static phase defect of the two-qubit calibration.
      const auto [phi_c, phi_t] = dev_.cx_phase_error(op.qubits[0], op.qubits[1]);
      block.unitary = la::kron(qc::gate_matrix(qc::GateKind::RZ, {phi_t}),
                               qc::gate_matrix(qc::GateKind::RZ, {phi_c})) *
                      block.unitary;
    }
  } else {
    block.unitary = qc::gate_matrix(op.kind, op.constant_params());
  }
  cache_[key.str()] = block;
  return block;
}

Executor::CompiledBlock Executor::compile_pulse(const ExecOp& op) {
  CompiledBlock block;
  block.qubits = op.qubits;
  block.duration_dt = op.schedule.duration();
  count_plays(op.schedule, block.drive_plays, block.cr_halves);
  block.unitary = simulate_block(op.schedule, op.qubits);
  return block;
}

sim::Counts Executor::run(const Program& program, std::size_t shots, Rng& rng) {
  HGP_REQUIRE(!program.measure_qubits.empty(), "Executor::run: nothing to measure");

  // Physical -> local compression.
  std::vector<std::size_t> touched;
  auto touch = [&](std::size_t q) {
    if (std::find(touched.begin(), touched.end(), q) == touched.end()) touched.push_back(q);
  };
  for (const ExecOp& op : program.ops)
    for (std::size_t q : (op.is_pulse ? op.qubits : op.gate.qubits)) touch(q);
  for (std::size_t q : program.measure_qubits) touch(q);
  std::sort(touched.begin(), touched.end());
  HGP_REQUIRE(touched.size() <= 14, "Executor::run: too many active qubits to simulate");
  std::map<std::size_t, std::size_t> local_of;
  for (std::size_t i = 0; i < touched.size(); ++i) local_of[touched[i]] = i;

  // Compile blocks and lay out the ASAP timeline.
  struct Scheduled {
    CompiledBlock block;
    std::vector<std::size_t> local;      // local qubit indices
    std::vector<int> idle_before_dt;     // per local qubit of the block
  };
  std::vector<Scheduled> timeline;
  std::vector<int> clock(touched.size(), 0);

  for (const ExecOp& op : program.ops) {
    if (!op.is_pulse && op.gate.kind == qc::GateKind::Barrier) {
      const int t = *std::max_element(clock.begin(), clock.end());
      std::fill(clock.begin(), clock.end(), t);
      continue;
    }
    if (!op.is_pulse && op.gate.kind == qc::GateKind::Measure) continue;
    Scheduled s;
    s.block = op.is_pulse ? compile_pulse(op) : compile_gate(op.gate);
    for (std::size_t q : s.block.qubits) s.local.push_back(local_of.at(q));
    int t0 = 0;
    for (std::size_t lq : s.local) t0 = std::max(t0, clock[lq]);
    for (std::size_t lq : s.local) {
      s.idle_before_dt.push_back(t0 - clock[lq]);
      clock[lq] = t0 + s.block.duration_dt;
    }
    timeline.push_back(std::move(s));
  }
  const int makespan = clock.empty() ? 0 : *std::max_element(clock.begin(), clock.end());
  report_ = ExecutionReport{makespan, dev_.readout_duration_dt(), timeline.size()};

  const noise::NoiseModel& nm = dev_.noise_model();
  const bool noisy = options_.noise;
  const double dep1 = nm.dep_per_1q_pulse;
  const double dep2 = nm.dep_per_2q_block;

  auto relax = [&](sim::Statevector& sv, std::size_t lq, int duration_dt) {
    if (duration_dt <= 0) return;
    const noise::QubitNoise& qn = nm.qubits[touched[lq]];
    noise::apply_thermal_relaxation(sv, lq, qn.t1_us, qn.t2_us, duration_dt * pulse::kDtNs,
                                    rng);
  };
  // Coherent frame drift while idling: the qubit precesses at its true
  // (drifted) frequency but the frame stays at the calibrated one, so a
  // static Z-phase builds up — shot-independent, hence *learnable* by the
  // pulse ansatz's phase knob but invisible to fixed gate calibrations.
  // (During blocks the subsystem Hamiltonian carries the same detuning.)
  auto idle_drift = [&](sim::Statevector& sv, std::size_t lq, int duration_dt) {
    if (duration_dt <= 0 || !options_.coherent_noise) return;
    const double drift = nm.qubits[touched[lq]].freq_drift_ghz;
    if (drift == 0.0) return;
    const double angle = 2.0 * la::kPi * drift * duration_dt * pulse::kDtNs;
    sv.apply_matrix(qc::gate_matrix(qc::GateKind::RZ, {angle}), {lq});
  };

  // Fast path: noiseless execution is deterministic — evolve once, sample.
  if (!noisy) {
    sim::Statevector sv(touched.size());
    for (const Scheduled& s : timeline) sv.apply_matrix(s.block.unitary, s.local);
    sim::Counts local_counts = sv.sample(shots, rng);
    sim::Counts out;
    for (const auto& [bits, n] : local_counts) {
      std::uint64_t mapped = 0;
      for (std::size_t i = 0; i < program.measure_qubits.size(); ++i)
        if ((bits >> local_of.at(program.measure_qubits[i])) & 1)
          mapped |= (std::uint64_t{1} << i);
      out[mapped] += n;
    }
    return out;
  }

  sim::Counts out;
  for (std::size_t shot = 0; shot < shots; ++shot) {
    sim::Statevector sv(touched.size());
    for (const Scheduled& s : timeline) {
      for (std::size_t i = 0; i < s.local.size(); ++i) {
        relax(sv, s.local[i], s.idle_before_dt[i]);
        idle_drift(sv, s.local[i], s.idle_before_dt[i]);
      }
      sv.apply_matrix(s.block.unitary, s.local);
      if (s.block.virtual_only) continue;
      for (std::size_t lq : s.local) relax(sv, lq, s.block.duration_dt);
      if (s.block.explicit_idle) {
        for (std::size_t lq : s.local) idle_drift(sv, lq, s.block.duration_dt);
        continue;
      }
      if (s.block.drive_plays > 0) {
        // Charge 1q depolarizing per drive pulse, spread over the block's
        // qubits (exact for 1q blocks; even split for multi-qubit blocks).
        const double p = dep1 * static_cast<double>(s.block.drive_plays) /
                         static_cast<double>(s.local.size());
        for (std::size_t lq : s.local) noise::apply_depolarizing(sv, {lq}, p, rng);
      }
      if (s.block.cr_halves > 0 && s.local.size() >= 2) {
        const double p = dep2 * static_cast<double>(s.block.cr_halves) / 2.0;
        noise::apply_depolarizing(sv, {s.local[0], s.local[1]}, p, rng);
      }
    }
    // Idle to the end of the circuit, then decohere through readout.
    for (std::size_t lq = 0; lq < touched.size(); ++lq)
      relax(sv, lq, makespan - clock[lq] + dev_.readout_duration_dt());

    std::uint64_t bits = sv.sample(1, rng).begin()->first;
    if (options_.readout_error) {
      for (std::size_t i = 0; i < program.measure_qubits.size(); ++i) {
        const std::size_t phys = program.measure_qubits[i];
        const std::size_t lq = local_of.at(phys);
        const bool one = (bits >> lq) & 1;
        const noise::ReadoutError& re = nm.qubits[phys].readout;
        const double p_flip = one ? re.p0_given_1 : re.p1_given_0;
        if (rng.bernoulli(p_flip)) bits ^= (std::uint64_t{1} << lq);
      }
    }
    std::uint64_t mapped = 0;
    for (std::size_t i = 0; i < program.measure_qubits.size(); ++i)
      if ((bits >> local_of.at(program.measure_qubits[i])) & 1)
        mapped |= (std::uint64_t{1} << i);
    ++out[mapped];
  }
  return out;
}

}  // namespace hgp::core
