#include "core/executor.hpp"

#include <algorithm>
#include <atomic>
#include <cmath>
#include <exception>
#include <iomanip>
#include <map>
#include <memory>
#include <mutex>
#include <sstream>
#include <thread>

#include "common/error.hpp"
#include "core/fusion.hpp"
#include "mitigation/cvar.hpp"
#include "noise/channels.hpp"
#include "obs/trace.hpp"
#include "pulsesim/simulator.hpp"
#include "sim/kernel_structure.hpp"

namespace hgp::core {

using la::CMat;

namespace {

/// The executor's process-wide "executor.*" telemetry series, resolved from
/// the registry once. Stage histograms are fed by RAII spans (so the same
/// event lands in the run-lifecycle trace); the Kraus-branch counters are
/// flushed once per lane group, never per draw, keeping the hot loop clean.
struct ExecMetrics {
  obs::Counter& shots;
  obs::Counter& lane_groups;
  obs::Counter& kraus_jumps;
  obs::Counter& dephase_flips;
  obs::Counter& pauli_charges;
  obs::Counter& blocks_compiled;
  obs::Counter& expectation_batches;
  obs::Counter& fusion_blocks_in;
  obs::Counter& fusion_blocks_out;
  obs::Counter& fusion_runs;
  obs::Gauge& trajectory_shots_per_s;
  obs::Gauge& lane_groups_per_s;
  obs::Histogram& run_ns;
  obs::Histogram& compile_ns;
  obs::Histogram& block_compile_ns;
  obs::Histogram& lane_evolve_ns;
  obs::Histogram& sample_ns;
  obs::Histogram& aggregate_ns;
  /// Lengths of the merged runs (constituents per fused slot, >= 2 only);
  /// explicit bounds because run lengths live far below the default
  /// log-spaced nanosecond buckets.
  obs::Histogram& fusion_run_len;

  static ExecMetrics& get() {
    static ExecMetrics m = [] {
      obs::Registry& reg = obs::Registry::global();
      return ExecMetrics{reg.counter("executor.shots"),
                         reg.counter("executor.lane_groups"),
                         reg.counter("executor.kraus_jumps"),
                         reg.counter("executor.dephase_flips"),
                         reg.counter("executor.pauli_charges"),
                         reg.counter("executor.blocks_compiled"),
                         reg.counter("executor.expectation_batches"),
                         reg.counter("executor.fusion.blocks_in"),
                         reg.counter("executor.fusion.blocks_out"),
                         reg.counter("executor.fusion.runs"),
                         reg.gauge("executor.trajectory_shots_per_s"),
                         reg.gauge("executor.lane_groups_per_s"),
                         reg.histogram("executor.run_ns"),
                         reg.histogram("executor.compile_ns"),
                         reg.histogram("executor.block_compile_ns"),
                         reg.histogram("executor.lane_evolve_ns"),
                         reg.histogram("executor.sample_ns"),
                         reg.histogram("executor.aggregate_ns"),
                         reg.histogram("executor.fusion.run_len",
                                       {1, 2, 3, 4, 6, 8, 12, 16})};
    }();
    return m;
  }
};

/// Shots per work unit of the parallel trajectory engine. The batch grid is
/// fixed (independent of thread count) and each batch draws from its own
/// child RNG stream, so the merged counts are bit-identical no matter how
/// many workers run or how the OS schedules them.
constexpr std::size_t kShotsPerBatch = 256;

/// Virtual gates are the single-qubit diagonals — realized as Z-frame
/// updates, zero duration, no pulse. Same diagonal vocabulary as the
/// transpiler's commutation scans (qc::gate_is_diagonal); the 2q diagonals
/// (CZ, RZZ) are excluded because they do cost a cross-resonance pulse.
bool is_virtual_gate(qc::GateKind k) {
  return qc::gate_is_diagonal(k) && qc::gate_arity(k) == 1;
}

/// Run the post-compile fusion pass for a deterministic-unitary engine path
/// and record its telemetry. A disabled width (0/1) still routes through
/// fuse_program's pass-through mode so the engines walk one code path, but
/// charges no fusion metrics.
FusionResult fuse_for_engine(const CompiledProgram& cp, std::size_t max_qubits,
                             serve::BlockCache* cache, const std::string& key_prefix,
                             std::uint64_t fingerprint) {
  FusionOptions opt;
  opt.max_qubits = std::min<std::size_t>(max_qubits, 3);
  const bool enabled = opt.max_qubits >= 2;
  FusionResult fr =
      fuse_program(cp, opt, enabled ? cache : nullptr, key_prefix, fingerprint);
  if (enabled) {
    ExecMetrics& em = ExecMetrics::get();
    em.fusion_blocks_in.inc(fr.stats.ops_in);
    em.fusion_blocks_out.inc(fr.stats.ops_out);
    em.fusion_runs.inc(fr.stats.merged_runs);
    for (const FusedSlot& s : fr.slots)
      if (s.sources.size() >= 2) em.fusion_run_len.record(s.sources.size());
  }
  return fr;
}

/// Single source of truth for the schedule-derived block bookkeeping shared
/// by the gate and pulse lowering paths: timeline duration plus the noise
/// charge units (drive-channel and control-channel play counts).
void fill_schedule_metadata(CompiledBlock& block, const pulse::Schedule& sched) {
  block.duration_dt = sched.duration();
  block.drive_plays = 0;
  block.cr_halves = 0;
  for (const pulse::TimedInstruction& ti : sched.instructions()) {
    if (const auto* play = std::get_if<pulse::Play>(&ti.inst)) {
      if (play->channel.type == pulse::ChannelType::Drive) ++block.drive_plays;
      if (play->channel.type == pulse::ChannelType::Control) ++block.cr_halves;
    }
  }
}

bool has_frequency_instruction(const pulse::Schedule& sched) {
  for (const pulse::TimedInstruction& ti : sched.instructions())
    if (std::holds_alternative<pulse::ShiftFrequency>(ti.inst) ||
        std::holds_alternative<pulse::SetFrequency>(ti.inst))
      return true;
  return false;
}

// ---- trajectory-specialized channel kernels --------------------------------
//
// The per-shot hot path keeps the statevector *unnormalized* and carries its
// squared norm in `weight`: every branch probability is measured against
// weight instead of renormalizing the vector after each Kraus branch. This
// turns the generic 3-full-pass thermal relaxation (prob_one + damp +
// rescale) into at most one half-pass over the |1>-subspace per call while
// sampling the exact same quantum-jump unraveling as noise::apply_* (the
// reference implementation the parity tests compare against).
//
// The lane-batched kernels in run_lane_group sample the same branches from
// per-lane streams in the same per-shot draw order; both sides share
// noise::relaxation_constants / noise::sample_depolarizing so the branch
// probabilities agree to the bit.

using sim::detail::for_each_one;

void traj_thermal_relaxation(sim::Statevector& sv, double& weight, std::size_t q,
                             const noise::RelaxationConstants& rc, Rng& rng) {
  la::CVec& amp = sv.data();
  const std::uint64_t size = amp.size();
  const std::uint64_t bit = std::uint64_t{1} << q;

  if (rc.gamma > 0.0) {
    // Jump iff u < gamma * m1 with m1 the unnormalized |1> mass — the exact
    // branch probability gamma * (m1 / weight). Since m1 <= weight, a draw
    // u >= gamma * weight settles "no jump" without measuring m1 at all.
    const double u = rng.uniform() * weight;
    bool jumped = false;
    if (u < rc.gamma * weight) {
      double m1 = 0.0;
      for_each_one(size, bit, [&](std::uint64_t i) { m1 += std::norm(amp[i]); });
      if (u < rc.gamma * m1) {
        // K1 = sqrt(gamma)|0><1|: project onto |1> and reset to |0>, fused
        // into one move over the paired indices.
        for_each_one(size, bit, [&](std::uint64_t i) {
          amp[i ^ bit] = amp[i];
          amp[i] = la::cxd{0.0, 0.0};
        });
        weight = m1;
        jumped = true;
      }
    }
    if (!jumped) {
      // K0 = diag(1, sqrt(1-gamma)): damp the |1> amplitudes, measuring
      // their pre-damp mass on the fly if the shortcut skipped it.
      double m1_old = 0.0;
      for_each_one(size, bit, [&](std::uint64_t i) {
        m1_old += std::norm(amp[i]);
        amp[i] *= rc.damp;
      });
      weight -= rc.gamma * m1_old;
    }
  }

  // Pure dephasing: a state-independent phase flip — half-pass only when the
  // (rare) flip fires.
  if (rc.dephase && rng.bernoulli(rc.p_z))
    for_each_one(size, bit, [&](std::uint64_t i) { amp[i] = -amp[i]; });
}

/// diag(d0, d1) up to global phase (irrelevant within one trajectory):
/// multiply the |1> amplitudes by d1/d0 — a half-pass instead of a full
/// diagonal apply. Covers RZ drift and every virtual block (all diagonal).
void traj_phase(sim::Statevector& sv, std::size_t q, la::cxd ratio) {
  if (ratio == la::cxd{1.0, 0.0}) return;
  const std::uint64_t bit = std::uint64_t{1} << q;
  for_each_one(sv.data().size(), bit, [&](std::uint64_t i) { sv.data()[i] *= ratio; });
}

void traj_rz(sim::Statevector& sv, std::size_t q, double angle) {
  traj_phase(sv, q, std::polar(1.0, angle));
}

using sim::detail::is_diagonal2;

/// Single-outcome measurement of the unnormalized state.
std::uint64_t traj_sample_one(const sim::Statevector& sv, double weight, Rng& rng) {
  const la::CVec& amp = sv.data();
  const double x = rng.uniform() * weight;
  double acc = 0.0;
  for (std::uint64_t i = 0; i < amp.size(); ++i) {
    acc += std::norm(amp[i]);
    if (x < acc) return i;
  }
  return amp.size() - 1;
}

/// The canonical noise-timeline walk of every executor engine: idle
/// relaxation + frame drift before each block, the foldable virtual-diagonal
/// shortcut, block application, per-block relaxation, and the drive/CR
/// depolarizing charges, ending with the idle-to-readout relaxation. The
/// scalar trajectory, lane-batched trajectory, and exact-density engines all
/// traverse through here, so the schedule and charge policy have a single
/// source of truth; only the kernels differ.
///   relax(lq, duration_dt), drift(lq, duration_dt),
///   phase(lq, ratio, unitary)  — 1q virtual diagonal block; trajectory
///     engines drop the global phase and multiply by ratio, the density
///     engine applies the full unitary,
///   apply(unitary, locals), depolarize(qubits, p)
template <typename Relax, typename Drift, typename Phase, typename Apply, typename Depol>
void walk_noise_timeline(const CompiledProgram& cp, double dep1, double dep2,
                         int readout_dt, Relax&& relax, Drift&& drift, Phase&& phase,
                         Apply&& apply, Depol&& depolarize) {
  for (const Scheduled& s : cp.timeline) {
    for (std::size_t i = 0; i < s.local.size(); ++i) {
      relax(s.local[i], s.idle_before_dt[i]);
      drift(s.local[i], s.idle_before_dt[i]);
    }
    if (s.block.virtual_only && s.local.size() == 1 && is_diagonal2(s.block.unitary)) {
      // Virtual Z-frame blocks are diagonal: half-pass, global phase dropped.
      phase(s.local[0], s.block.unitary(1, 1) / s.block.unitary(0, 0), s.block.unitary);
      continue;
    }
    apply(s.block.unitary, s.local);
    if (s.block.virtual_only) continue;
    for (std::size_t lq : s.local) relax(lq, s.block.duration_dt);
    if (s.block.explicit_idle) {
      for (std::size_t lq : s.local) drift(lq, s.block.duration_dt);
      continue;
    }
    if (s.block.drive_plays > 0) {
      // Charge 1q depolarizing per drive pulse, spread over the block's
      // qubits (exact for 1q blocks; even split for multi-qubit blocks).
      const double p = dep1 * static_cast<double>(s.block.drive_plays) /
                       static_cast<double>(s.local.size());
      for (std::size_t lq : s.local) depolarize({lq}, p);
    }
    if (s.block.cr_halves > 0 && s.local.size() >= 2) {
      const double p = dep2 * static_cast<double>(s.block.cr_halves) / 2.0;
      depolarize({s.local[0], s.local[1]}, p);
    }
  }
  // Idle to the end of the circuit, then decohere through readout.
  for (std::size_t lq = 0; lq < cp.touched.size(); ++lq)
    relax(lq, cp.makespan_dt - cp.clock[lq] + readout_dt);
}

/// Per-thread scratch of run_lane_group, reused across lane groups, batches,
/// and runs so a shot loop does not reallocate a dozen small vectors per
/// 16-shot group (the lane statevector itself is hoisted by the caller).
struct LaneWorkspace {
  std::vector<Rng> rngs;
  std::vector<double> weight, x, m1, take, scale1;
  std::vector<std::uint8_t> diverged, precheck, flip, codes;
  std::vector<int> picks;
  std::vector<std::uint64_t> bits;
  std::vector<std::pair<double, std::size_t>> clean;
};

/// Readout confusion on one sampled outcome: one bernoulli per measured bit
/// from the shot's stream. Shared by the scalar and lane-batched engines.
std::uint64_t apply_readout_flips(std::uint64_t bits, const CompiledProgram& cp,
                                  const noise::NoiseModel& nm, Rng& rng) {
  for (std::size_t i = 0; i < cp.measure_phys.size(); ++i) {
    const std::size_t lq = cp.measure_local[i];
    const bool one = (bits >> lq) & 1;
    const noise::ReadoutError& re = nm.qubits[cp.measure_phys[i]].readout;
    const double p_flip = one ? re.p0_given_1 : re.p1_given_0;
    if (rng.bernoulli(p_flip)) bits ^= (std::uint64_t{1} << lq);
  }
  return bits;
}

/// Fixed-grid batch scheduler shared by every trajectory reduction: run
/// fn(b) over the batch grid either serially or on an atomic work-stealing
/// pool. The grid itself never depends on the thread count, so results
/// merged in batch order are identical for every value of num_threads.
template <typename Fn>
void for_each_batch(std::size_t num_batches, std::size_t num_threads, Fn&& fn) {
  std::size_t threads =
      num_threads ? num_threads : std::max(1u, std::thread::hardware_concurrency());
  threads = std::min(threads, num_batches);
  if (threads <= 1) {
    for (std::size_t b = 0; b < num_batches; ++b) fn(b);
    return;
  }
  std::atomic<std::size_t> next{0};
  std::exception_ptr first_error;
  std::mutex error_mutex;
  std::vector<std::thread> pool;
  pool.reserve(threads);
  for (std::size_t t = 0; t < threads; ++t) {
    pool.emplace_back([&] {
      try {
        for (std::size_t b = next.fetch_add(1); b < num_batches; b = next.fetch_add(1))
          fn(b);
      } catch (...) {
        const std::lock_guard<std::mutex> lock(error_mutex);
        if (!first_error) first_error = std::current_exception();
      }
    });
  }
  for (std::thread& th : pool) th.join();
  if (first_error) std::rethrow_exception(first_error);
}

/// Delta-compilation equality for candidate-lane batching: two ops share a
/// timeline structure when they agree on everything except parameter values,
/// and share a block unitary when the parameter values agree exactly too.
bool same_op_structure(const ExecOp& a, const ExecOp& b) {
  if (a.is_pulse != b.is_pulse) return false;
  if (a.is_pulse) return a.qubits == b.qubits;
  return a.gate.kind == b.gate.kind && a.gate.qubits == b.gate.qubits &&
         a.gate.params.size() == b.gate.params.size();
}

bool same_op_unitary(const ExecOp& a, const ExecOp& b) {
  if (a.is_pulse)
    return a.schedule.duration() == b.schedule.duration() &&
           a.schedule.fingerprint() == b.schedule.fingerprint();
  for (std::size_t i = 0; i < a.gate.params.size(); ++i) {
    const qc::Param& pa = a.gate.params[i];
    const qc::Param& pb = b.gate.params[i];
    if (pa.index() != pb.index() || pa.scale() != pb.scale() || pa.offset() != pb.offset())
      return false;
  }
  return true;
}

}  // namespace

Engine engine_from_name(const std::string& name) {
  if (name == "trajectory") return Engine::Trajectory;
  if (name == "density" || name == "exact_density") return Engine::ExactDensity;
  throw Error("engine_from_name: unknown engine '" + name +
              "' (expected 'trajectory' or 'density')");
}

const std::string& engine_name(Engine engine) {
  static const std::string traj = "trajectory";
  static const std::string dens = "density";
  return engine == Engine::Trajectory ? traj : dens;
}

ObjectiveKind objective_from_name(const std::string& name) {
  if (name == "sample") return ObjectiveKind::Sample;
  if (name == "expectation") return ObjectiveKind::Expectation;
  if (name == "cvar") return ObjectiveKind::CVaR;
  throw Error("objective_from_name: unknown objective '" + name +
              "' (expected 'sample', 'expectation', or 'cvar')");
}

const std::string& objective_name(ObjectiveKind kind) {
  static const std::string sample = "sample";
  static const std::string expectation = "expectation";
  static const std::string cvar = "cvar";
  switch (kind) {
    case ObjectiveKind::Sample:
      return sample;
    case ObjectiveKind::Expectation:
      return expectation;
    default:
      return cvar;
  }
}

Executor::Executor(const backend::FakeBackend& dev, ExecutorOptions options)
    : dev_(dev), options_(std::move(options)) {
  cache_ = options_.block_cache
               ? options_.block_cache
               : std::make_shared<serve::BlockCache>(options_.block_cache_capacity);
  // Warm-start from (and write through to) the persistent store. The store
  // header carries the writing backend's fingerprint, so a recalibrated
  // device loads nothing and resets the file instead of replaying stale
  // blocks; attach is a no-op when a shared cache already holds this store.
  if (!options_.block_store_path.empty())
    cache_->attach_store(options_.block_store_path, dev_.fingerprint());
}

CMat Executor::simulate_block(const pulse::Schedule& physical_sched,
                              const std::vector<std::size_t>& qubits) const {
  const bool coherent = options_.noise && options_.coherent_noise;
  backend::FakeBackend::Subsystem sub = dev_.subsystem(qubits, coherent);
  const pulse::Schedule local = backend::FakeBackend::remap_schedule(physical_sched, sub.remap);
  // Small subsystems are cheap at full resolution; multi-qubit CR blocks use
  // a coarser piecewise-constant stride (2 when a frequency ramp is present,
  // 4 for flat envelopes — staircase errors cancel on symmetric rise/fall).
  const int stride =
      qubits.size() == 1 ? 1 : (has_frequency_instruction(local) ? 2 : 4);
  const psim::PulseSimulator sim(std::move(sub.system), psim::Integrator::Exact, 1, stride);
  // Column-batched propagator over the compiled-schedule IR: the schedule is
  // indexed and its step propagators built exactly once per block.
  CMat u = sim.propagator(local);

  // Undo deferred virtual-Z frames so the block unitary is self-contained.
  for (std::size_t i = 0; i < qubits.size(); ++i) {
    const double shift = pulse::CalibrationSet::drive_phase_shift(physical_sched, qubits[i]);
    if (shift == 0.0) continue;
    CMat full = CMat::identity(1);
    const CMat rz = qc::gate_matrix(qc::GateKind::RZ, {-shift});
    for (std::size_t k = qubits.size(); k-- > 0;)
      full = la::kron(full, k == i ? rz : CMat::identity(2));
    u = full * u;
  }
  return u;
}

CompiledBlock Executor::compile_block(const ExecOp& op) {
  if (!op.is_pulse) return compile_gate(op.gate);
  // Raw pulse block (the hybrid/pulse-level models' trainable layers): the
  // structure key is the schedule's canonical content fingerprint, so a
  // parametric schedule rebound at a repeated candidate angle keys
  // identically while a nearby amplitude gets its own slot.
  std::ostringstream key;
  key << "pulse";
  for (std::size_t q : op.qubits) key << "," << q;
  key << ",fp=" << std::hex << op.schedule.fingerprint() << std::dec
      << ",dur=" << op.schedule.duration();
  return lower_schedule_block(key.str(), serve::BlockKind::Pulse, op.schedule, op.qubits,
                              nullptr, false);
}

CompiledBlock Executor::compile_gate(const qc::Op& op) {
  if (is_virtual_gate(op.kind)) {
    CompiledBlock block;
    block.qubits = op.qubits;
    block.unitary = qc::gate_matrix(op.kind, op.constant_params());
    block.virtual_only = true;
    // Virtual blocks are never cached (building the 2x2 diagonal is cheaper
    // than a lookup), but they still need an identity for the fusion pass's
    // composed-key construction — same format as the cached gate keys, with
    // the exact hexfloat parameter rendering.
    std::ostringstream key;
    key << qc::gate_name(op.kind);
    for (std::size_t q : op.qubits) key << "," << q;
    for (double p : op.constant_params())
      key << ",p=" << std::hexfloat << p << std::defaultfloat;
    block.structure_key = key.str();
    return block;
  }
  if (op.kind == qc::GateKind::Delay) {
    // Timed identity: thermal relaxation and coherent frame drift act over
    // its span (it behaves exactly like idle time, which is what DD slices).
    CompiledBlock block;
    block.qubits = op.qubits;
    block.unitary = la::CMat::identity(2);
    block.duration_dt = static_cast<int>(op.params[0].value());
    block.explicit_idle = true;
    std::ostringstream key;
    key << "delay," << op.qubits[0] << ",dur=" << block.duration_dt;
    block.structure_key = key.str();
    return block;
  }

  const pulse::CalibrationSet& cal = dev_.calibrations();
  pulse::Schedule sched;
  std::ostringstream key;
  key << qc::gate_name(op.kind);
  for (std::size_t q : op.qubits) key << "," << q;

  switch (op.kind) {
    case qc::GateKind::SX:
      sched = cal.sx(op.qubits[0]);
      break;
    case qc::GateKind::X:
      sched = cal.x(op.qubits[0]);
      break;
    case qc::GateKind::CX:
      sched = cal.cx(op.qubits[0], op.qubits[1]);
      break;
    case qc::GateKind::RZZ: {
      // An RZZ surviving to execution means the pulse-efficient direct-CR
      // realization was requested.
      const double theta = op.params[0].value();
      sched = cal.rzz_direct(op.qubits[0], op.qubits[1], theta);
      // Exact (hexfloat) parameter formatting: the default 6-sig-fig ostream
      // rendering made nearby angles collide on one cache slot, replaying a
      // stale compiled block for a different theta.
      key << ",theta=" << std::hexfloat << theta << std::defaultfloat;
      break;
    }
    default:
      throw Error("Executor: program not in native basis (got " + qc::gate_name(op.kind) +
                  "); transpile first");
  }
  // Duration disambiguates parameter-dependent calibrations further (e.g. a
  // re-calibrated schedule at the same angle but a different stretch).
  key << ",dur=" << sched.duration();

  la::CMat exact;
  const bool coherent = options_.noise && options_.coherent_noise;
  if (!coherent) exact = qc::gate_matrix(op.kind, op.constant_params());
  return lower_schedule_block(key.str(), serve::BlockKind::Gate, sched, op.qubits,
                              coherent ? nullptr : &exact,
                              op.kind == qc::GateKind::CX || op.kind == qc::GateKind::RZZ);
}

CompiledBlock Executor::lower_schedule_block(const std::string& structure_key,
                                             serve::BlockKind kind,
                                             const pulse::Schedule& sched,
                                             const std::vector<std::size_t>& qubits,
                                             const la::CMat* exact_unitary,
                                             bool fold_cx_phase_defect) {
  const std::string cache_key = key_prefix_ + structure_key;
  if (const auto cached = cache_->find(cache_key, kind)) {
    CompiledBlock block = *cached;
    // Transient, not serialized: store-loaded entries come back without it.
    block.structure_key = structure_key;
    return block;
  }

  // A miss means a real compile (pulse-ODE simulation for coherent blocks):
  // span it so the trace separates compile time from cache-hit replay. Hit
  // traffic is counted by the cache's own block_cache.* series.
  ExecMetrics& em = ExecMetrics::get();
  obs::Span compile_span("executor.compile_block", &em.block_compile_ns);
  em.blocks_compiled.inc();

  CompiledBlock block;
  block.qubits = qubits;
  fill_schedule_metadata(block, sched);
  if (exact_unitary != nullptr) {
    block.unitary = *exact_unitary;
  } else {
    block.unitary = simulate_block(sched, qubits);
    if (fold_cx_phase_defect) {
      // Fold in the static phase defect of the two-qubit calibration.
      const auto [phi_c, phi_t] = dev_.cx_phase_error(qubits[0], qubits[1]);
      block.unitary = la::kron(qc::gate_matrix(qc::GateKind::RZ, {phi_t}),
                               qc::gate_matrix(qc::GateKind::RZ, {phi_c})) *
                      block.unitary;
    }
  }
  cache_->insert(cache_key, block, kind, dev_.fingerprint());
  block.structure_key = structure_key;
  return block;
}

CompiledProgram Executor::compile_program(const Program& program,
                                                    std::size_t max_qubits) {
  CompiledProgram cp;

  // Physical -> local compression.
  auto touch = [&](std::size_t q) {
    if (std::find(cp.touched.begin(), cp.touched.end(), q) == cp.touched.end())
      cp.touched.push_back(q);
  };
  for (const ExecOp& op : program.ops)
    for (std::size_t q : (op.is_pulse ? op.qubits : op.gate.qubits)) touch(q);
  for (std::size_t q : program.measure_qubits) touch(q);
  std::sort(cp.touched.begin(), cp.touched.end());
  HGP_REQUIRE(cp.touched.size() <= max_qubits,
              "Executor::run: too many active qubits to simulate");
  std::map<std::size_t, std::size_t> local_of;
  for (std::size_t i = 0; i < cp.touched.size(); ++i) local_of[cp.touched[i]] = i;
  cp.measure_phys = program.measure_qubits;
  for (std::size_t q : program.measure_qubits) cp.measure_local.push_back(local_of.at(q));

  // Compile blocks and lay out the ASAP timeline. Consecutive virtual
  // (diagonal Z-frame) blocks on a qubit fold into one diagonal unitary:
  // they commute with idle relaxation/drift up to a trajectory-global phase,
  // and a fold halves the per-shot apply count of RZ-heavy programs.
  cp.clock.assign(cp.touched.size(), 0);
  cp.op_slot.assign(program.ops.size(), -1);
  std::vector<long> pending_virtual(cp.touched.size(), -1);

  for (std::size_t oi = 0; oi < program.ops.size(); ++oi) {
    const ExecOp& op = program.ops[oi];
    if (!op.is_pulse && op.gate.kind == qc::GateKind::Barrier) {
      const int t = *std::max_element(cp.clock.begin(), cp.clock.end());
      std::fill(cp.clock.begin(), cp.clock.end(), t);
      continue;
    }
    if (!op.is_pulse && op.gate.kind == qc::GateKind::Measure) continue;
    Scheduled s;
    s.block = compile_block(op);
    for (std::size_t q : s.block.qubits) s.local.push_back(local_of.at(q));

    if (s.block.virtual_only && s.local.size() == 1) {
      const std::size_t lq = s.local[0];
      if (pending_virtual[lq] >= 0) {
        CompiledBlock& pending = cp.timeline[pending_virtual[lq]].block;
        pending.unitary = s.block.unitary * pending.unitary;
        pending.structure_key += "|" + s.block.structure_key;
        cp.op_slot[oi] = pending_virtual[lq];
        continue;
      }
      s.idle_before_dt.push_back(0);
      cp.timeline.push_back(std::move(s));
      pending_virtual[lq] = static_cast<long>(cp.timeline.size()) - 1;
      cp.op_slot[oi] = pending_virtual[lq];
      continue;
    }

    int t0 = 0;
    for (std::size_t lq : s.local) t0 = std::max(t0, cp.clock[lq]);
    for (std::size_t lq : s.local) {
      s.idle_before_dt.push_back(t0 - cp.clock[lq]);
      cp.clock[lq] = t0 + s.block.duration_dt;
      pending_virtual[lq] = -1;
    }
    cp.timeline.push_back(std::move(s));
    cp.op_slot[oi] = static_cast<long>(cp.timeline.size()) - 1;
  }
  cp.makespan_dt =
      cp.clock.empty() ? 0 : *std::max_element(cp.clock.begin(), cp.clock.end());
  return cp;
}

std::uint64_t Executor::map_bits(std::uint64_t bits, const CompiledProgram& cp) {
  std::uint64_t mapped = 0;
  for (std::size_t i = 0; i < cp.measure_local.size(); ++i)
    if ((bits >> cp.measure_local[i]) & 1) mapped |= (std::uint64_t{1} << i);
  return mapped;
}

sim::Counts Executor::run_noiseless(const CompiledProgram& cp, std::size_t shots,
                                    Rng& rng) const {
  // Noiseless execution is deterministic — evolve once, sample.
  sim::Statevector sv(cp.touched.size());
  for (const Scheduled& s : cp.timeline) sv.apply_matrix(s.block.unitary, s.local);
  const sim::Counts local_counts = sv.sample(shots, rng);
  sim::Counts out;
  for (const auto& [bits, n] : local_counts) out[map_bits(bits, cp)] += n;
  return out;
}

void Executor::run_one_shot(const CompiledProgram& cp, sim::Statevector& sv, Rng& rng,
                            sim::Counts& out) const {
  const noise::NoiseModel& nm = dev_.noise_model();
  const double dep1 = nm.dep_per_1q_pulse;
  const double dep2 = nm.dep_per_2q_block;
  // Squared norm of the (deferred-normalization) trajectory state.
  double weight = 1.0;

  auto relax = [&](std::size_t lq, int duration_dt) {
    if (duration_dt <= 0) return;
    const noise::QubitNoise& qn = nm.qubits[cp.touched[lq]];
    const noise::RelaxationConstants rc =
        noise::relaxation_constants(qn.t1_us, qn.t2_us, duration_dt * pulse::kDtNs);
    traj_thermal_relaxation(sv, weight, lq, rc, rng);
  };
  // Coherent frame drift while idling: the qubit precesses at its true
  // (drifted) frequency but the frame stays at the calibrated one, so a
  // static Z-phase builds up — shot-independent, hence *learnable* by the
  // pulse ansatz's phase knob but invisible to fixed gate calibrations.
  // (During blocks the subsystem Hamiltonian carries the same detuning.)
  auto idle_drift = [&](std::size_t lq, int duration_dt) {
    if (duration_dt <= 0 || !options_.coherent_noise) return;
    const double drift = nm.qubits[cp.touched[lq]].freq_drift_ghz;
    if (drift == 0.0) return;
    const double angle = 2.0 * la::kPi * drift * duration_dt * pulse::kDtNs;
    traj_rz(sv, lq, angle);
  };

  walk_noise_timeline(
      cp, dep1, dep2, dev_.readout_duration_dt(), relax, idle_drift,
      [&](std::size_t lq, la::cxd ratio, const la::CMat&) { traj_phase(sv, lq, ratio); },
      [&](const la::CMat& u, const std::vector<std::size_t>& locals) {
        sv.apply_matrix(u, locals);
      },
      [&](const std::vector<std::size_t>& qubits, double p) {
        noise::apply_depolarizing(sv, qubits, p, rng);
      });

  std::uint64_t bits = traj_sample_one(sv, weight, rng);
  if (options_.readout_error) bits = apply_readout_flips(bits, cp, nm, rng);
  ++out[map_bits(bits, cp)];
}

namespace {

/// Evolve bsv.lanes() trajectories in lockstep through the compiled
/// timeline — the shared noise walk of run_lane_group (which samples the
/// terminal states) and Executor::run_expectation (which reduces them
/// exactly). Fills and returns the thread-local workspace: per-lane child
/// streams positioned after the last noise draw, deferred-normalization
/// weights, and diverged flags.
LaneWorkspace& evolve_lanes(const backend::FakeBackend& dev, const ExecutorOptions& options,
                            const CompiledProgram& cp, sim::BatchedStatevector& bsv,
                            std::uint64_t rng_base, std::size_t first_shot) {
  const std::size_t nl = bsv.lanes();
  const noise::NoiseModel& nm = dev.noise_model();
  const double dep1 = nm.dep_per_1q_pulse;
  const double dep2 = nm.dep_per_2q_block;

  // Kraus-branch telemetry: plain locals bumped inside the branch decisions
  // (no atomics, no clock) and flushed to the sharded counters once per lane
  // group — per-draw instrumentation would be the one thing that could blow
  // the <=2% telemetry budget.
  std::uint64_t n_jumps = 0, n_flips = 0, n_pauli = 0;

  static thread_local LaneWorkspace ws;

  // Per-lane streams: lane l replays exactly the draw sequence shot
  // first_shot + l makes in the scalar path (uniform before bernoulli per
  // relaxation, bernoulli then rejection-sampled pick per depolarizing,
  // sample uniform then readout flips at the end).
  std::vector<Rng>& rngs = ws.rngs;
  rngs.clear();
  rngs.reserve(nl);
  for (std::size_t l = 0; l < nl; ++l) rngs.push_back(Rng::child(rng_base, first_shot + l));

  // Squared norms of the (deferred-normalization) per-lane states, and which
  // lanes took any stochastic branch (jump / phase flip / Pauli pick) — the
  // untouched lanes stay bitwise identical and share one sampling pass.
  std::vector<double>& weight = ws.weight;
  std::vector<std::uint8_t>& diverged = ws.diverged;
  std::vector<double>& x = ws.x;
  std::vector<double>& m1 = ws.m1;
  std::vector<double>& take = ws.take;
  std::vector<double>& scale1 = ws.scale1;
  std::vector<std::uint8_t>& precheck = ws.precheck;
  std::vector<std::uint8_t>& flip = ws.flip;
  weight.assign(nl, 1.0);
  diverged.assign(nl, 0);
  x.resize(nl);
  m1.resize(nl);
  take.resize(nl);
  scale1.resize(nl);
  precheck.resize(nl);
  flip.resize(nl);

  auto relax = [&](std::size_t lq, int duration_dt) {
    if (duration_dt <= 0) return;
    const noise::QubitNoise& qn = nm.qubits[cp.touched[lq]];
    const noise::RelaxationConstants rc =
        noise::relaxation_constants(qn.t1_us, qn.t2_us, duration_dt * pulse::kDtNs);
    // Draw phase (scalar per-shot order): one uniform for the damping branch
    // when gamma > 0, then one bernoulli for dephasing. The jump shortcut is
    // the scalar one — u >= gamma * weight settles "no jump" without the
    // mass; only lanes inside the window need m1 before deciding.
    bool any_precheck = false, any_flip = false;
    for (std::size_t l = 0; l < nl; ++l) {
      precheck[l] = 0;
      if (rc.gamma > 0.0) {
        x[l] = rngs[l].uniform() * weight[l];
        if (x[l] < rc.gamma * weight[l]) {
          precheck[l] = 1;
          any_precheck = true;
        }
      }
      flip[l] = rc.dephase ? static_cast<std::uint8_t>(rngs[l].bernoulli(rc.p_z)) : 0;
      if (flip[l]) {
        any_flip = true;
        diverged[l] = 1;
        ++n_flips;
      }
    }
    if (rc.gamma > 0.0) {
      if (!any_precheck) {
        // No lane can jump: fused mass + damp pass (dephasing sign folded —
        // amp * (-damp) rounds identically to -(amp * damp)).
        for (std::size_t l = 0; l < nl; ++l) scale1[l] = flip[l] ? -rc.damp : rc.damp;
        bsv.fused_mass_damp(lq, scale1.data(), m1.data());
        for (std::size_t l = 0; l < nl; ++l) weight[l] -= rc.gamma * m1[l];
      } else {
        bsv.masses_one(lq, m1.data());
        for (std::size_t l = 0; l < nl; ++l) {
          if (precheck[l] && x[l] < rc.gamma * m1[l]) {
            take[l] = 1.0;
            scale1[l] = 0.0;  // jump: |1> moves to |0> (flip acts on zeros)
            weight[l] = m1[l];
            diverged[l] = 1;
            ++n_jumps;
          } else {
            take[l] = 0.0;
            scale1[l] = flip[l] ? -rc.damp : rc.damp;
            weight[l] -= rc.gamma * m1[l];
          }
        }
        bsv.damp_or_jump(lq, take.data(), scale1.data());
      }
    } else if (any_flip) {
      for (std::size_t l = 0; l < nl; ++l) {
        take[l] = 0.0;
        scale1[l] = flip[l] ? -1.0 : 1.0;
      }
      bsv.damp_or_jump(lq, take.data(), scale1.data());
    }
  };
  auto idle_drift = [&](std::size_t lq, int duration_dt) {
    if (duration_dt <= 0 || !options.coherent_noise) return;
    const double drift = nm.qubits[cp.touched[lq]].freq_drift_ghz;
    if (drift == 0.0) return;
    const double angle = 2.0 * la::kPi * drift * duration_dt * pulse::kDtNs;
    bsv.apply_phase_ratio(lq, std::polar(1.0, angle));
  };
  // Depolarizing charges: draw every lane's Pauli pick first (per-lane
  // stream order unchanged), then walk the block's qubits once. A qubit
  // where two or more lanes drew a non-identity Pauli takes the grouped
  /// one-sweep Pauli pass; a lone charged lane keeps the strided per-lane
  // apply. Both are bitwise identical to the per-lane path, so the grouping
  // threshold is purely a throughput choice — at large dep rates most
  // charges fold into the grouped sweep.
  std::vector<int>& picks = ws.picks;
  std::vector<std::uint8_t>& codes = ws.codes;
  picks.resize(nl);
  codes.resize(nl);
  auto depolarize = [&](const std::vector<std::size_t>& qubits, double p) {
    std::size_t charged = 0;
    for (std::size_t l = 0; l < nl; ++l) {
      picks[l] = noise::sample_depolarizing(qubits.size(), p, rngs[l]);
      if (picks[l] != 0) {
        diverged[l] = 1;
        ++charged;
        ++n_pauli;
      }
    }
    if (charged == 0) return;
    for (std::size_t i = 0; i < qubits.size(); ++i) {
      std::size_t active = 0, last = 0;
      for (std::size_t l = 0; l < nl; ++l) {
        codes[l] = static_cast<std::uint8_t>((picks[l] >> (2 * i)) & 3);
        if (codes[l] != 0) {
          ++active;
          last = l;
        }
      }
      if (active == 0) continue;
      if (active == 1) {
        bsv.apply_matrix_lane(la::pauli_matrix(static_cast<la::Pauli>(codes[last])),
                              qubits[i], last);
      } else {
        bsv.apply_pauli_lanes(qubits[i], codes.data());
      }
    }
  };

  walk_noise_timeline(
      cp, dep1, dep2, dev.readout_duration_dt(), relax, idle_drift,
      [&](std::size_t lq, la::cxd ratio, const la::CMat&) {
        bsv.apply_phase_ratio(lq, ratio);
      },
      [&](const la::CMat& u, const std::vector<std::size_t>& locals) {
        bsv.apply_matrix(u, locals);
      },
      depolarize);

  if (obs::enabled() && (n_jumps | n_flips | n_pauli) != 0) {
    ExecMetrics& em = ExecMetrics::get();
    if (n_jumps) em.kraus_jumps.inc(n_jumps);
    if (n_flips) em.dephase_flips.inc(n_flips);
    if (n_pauli) em.pauli_charges.inc(n_pauli);
  }
  return ws;
}

}  // namespace

void Executor::run_lane_group(const CompiledProgram& cp, sim::BatchedStatevector& bsv,
                              std::uint64_t rng_base, std::size_t first_shot,
                              sim::Counts& out) const {
  const std::size_t nl = bsv.lanes();
  const noise::NoiseModel& nm = dev_.noise_model();
  ExecMetrics& em = ExecMetrics::get();
  obs::Span evolve_span("executor.lane_evolve", &em.lane_evolve_ns);
  LaneWorkspace& ws = evolve_lanes(dev_, options_, cp, bsv, rng_base, first_shot);
  evolve_span.finish();
  obs::Span sample_span("executor.sample", &em.sample_ns);
  std::vector<Rng>& rngs = ws.rngs;
  std::vector<double>& weight = ws.weight;
  std::vector<std::uint8_t>& diverged = ws.diverged;
  std::vector<double>& x = ws.x;

  // Terminal sampling: per-lane stream order is one uniform, then the
  // readout flips. Lanes that never took a stochastic branch are bitwise
  // identical — sort their draws and emit them in one shared accumulate
  // pass; diverged lanes each scan their own lane in one lane-major pass.
  for (std::size_t l = 0; l < nl; ++l) x[l] = rngs[l].uniform() * weight[l];
  std::vector<std::uint64_t>& bits = ws.bits;
  bits.resize(nl);
  std::vector<std::pair<double, std::size_t>>& clean = ws.clean;
  clean.clear();
  clean.reserve(nl);
  for (std::size_t l = 0; l < nl; ++l)
    if (!diverged[l]) clean.emplace_back(x[l], l);
  if (!clean.empty()) {
    std::sort(clean.begin(), clean.end());
    bsv.sample_sorted(clean.back().second, clean.data(), clean.size(), bits.data());
  }
  if (clean.size() < nl) bsv.sample_lanes(x.data(), diverged.data(), bits.data());

  for (std::size_t l = 0; l < nl; ++l) {
    std::uint64_t b = bits[l];
    if (options_.readout_error) b = apply_readout_flips(b, cp, nm, rngs[l]);
    ++out[map_bits(b, cp)];
  }
  em.lane_groups.inc();
  em.shots.inc(nl);
}

sim::Counts Executor::run_trajectories(const CompiledProgram& cp, std::size_t shots,
                                       Rng& rng) const {
  const std::size_t num_batches = (shots + kShotsPerBatch - 1) / kShotsPerBatch;
  // One parent draw seeds the whole shot grid: the caller's Rng advances by
  // exactly one step regardless of shots, batches, lanes, or thread count.
  // Every shot then owns Rng::child(base, shot_index), so the counts depend
  // only on (base, shots) — not on how shots are grouped into thread batches
  // or lockstep lanes.
  const std::uint64_t base = rng.next_u64();
  const std::size_t lanes = std::max<std::size_t>(std::size_t{1}, options_.shot_batch_lanes);

  std::vector<sim::Counts> batch_counts(num_batches);
  const CancelToken* tok = options_.cancel.get();
  auto run_batch = [&](std::size_t b) {
    // Cancellation checkpoint at every batch boundary: a cancelled run's
    // remaining batches throw instead of simulating, so the pool worker is
    // freed within one batch regardless of the shot budget.
    if (tok) tok->check();
    const std::size_t first = b * kShotsPerBatch;
    const std::size_t count = std::min(kShotsPerBatch, shots - first);
    if (lanes <= 1) {
      // Scalar fallback: one shot at a time on a reused statevector.
      sim::Statevector sv(cp.touched.size());
      for (std::size_t s = 0; s < count; ++s) {
        if (tok) tok->check();
        if (s != 0) sv.reset();
        Rng shot_rng = Rng::child(base, first + s);
        run_one_shot(cp, sv, shot_rng, batch_counts[b]);
      }
      ExecMetrics::get().shots.inc(count);
      return;
    }
    // Lane-parallel: lockstep groups of `lanes` shots; the (reused) full
    // group state plus one tail-sized state when count % lanes != 0.
    std::unique_ptr<sim::BatchedStatevector> full;
    for (std::size_t g = 0; g < count; g += lanes) {
      if (tok) tok->check();
      const std::size_t nl = std::min(lanes, count - g);
      if (nl == lanes) {
        if (full)
          full->reset();
        else
          full = std::make_unique<sim::BatchedStatevector>(cp.touched.size(), lanes);
        run_lane_group(cp, *full, base, first + g, batch_counts[b]);
      } else {
        sim::BatchedStatevector tail(cp.touched.size(), nl);
        run_lane_group(cp, tail, base, first + g, batch_counts[b]);
      }
    }
  };

  // Throughput gauges cover the whole shot grid (all batches, all threads);
  // the clock is read only while telemetry is live.
  const std::uint64_t t0 = obs::enabled() ? obs::now_ns() : 0;
  for_each_batch(num_batches, options_.num_threads, run_batch);
  if (t0 != 0) {
    const double secs = static_cast<double>(obs::now_ns() - t0) * 1e-9;
    if (secs > 0.0) {
      ExecMetrics& em = ExecMetrics::get();
      em.trajectory_shots_per_s.set(
          static_cast<std::int64_t>(static_cast<double>(shots) / secs));
      const std::size_t groups = lanes > 1 ? (shots + lanes - 1) / lanes : 0;
      em.lane_groups_per_s.set(
          static_cast<std::int64_t>(static_cast<double>(groups) / secs));
    }
  }

  // Deterministic merge: batch order is fixed and count addition commutes.
  sim::Counts out;
  for (const sim::Counts& bc : batch_counts)
    for (const auto& [bits, n] : bc) out[bits] += n;
  return out;
}

sim::Counts Executor::run_exact_density(const CompiledProgram& cp, std::size_t shots,
                                        Rng& rng) const {
  // The only stochastic element: multinomial shot noise on the exact
  // distribution.
  return sim::sample_from_probabilities(density_distribution(cp), shots, rng);
}

std::vector<double> Executor::density_distribution(const CompiledProgram& cp) const {
  const noise::NoiseModel& nm = dev_.noise_model();
  sim::DensityMatrix dm(cp.touched.size());

  auto relax = [&](std::size_t lq, int duration_dt) {
    if (duration_dt <= 0) return;
    const noise::QubitNoise& qn = nm.qubits[cp.touched[lq]];
    dm.apply_thermal_relaxation(lq, qn.t1_us, qn.t2_us, duration_dt * pulse::kDtNs);
  };
  auto idle_drift = [&](std::size_t lq, int duration_dt) {
    if (duration_dt <= 0 || !options_.coherent_noise) return;
    const double drift = nm.qubits[cp.touched[lq]].freq_drift_ghz;
    if (drift == 0.0) return;
    const double angle = 2.0 * la::kPi * drift * duration_dt * pulse::kDtNs;
    dm.apply_matrix(qc::gate_matrix(qc::GateKind::RZ, {angle}), {lq});
  };

  walk_noise_timeline(
      cp, nm.dep_per_1q_pulse, nm.dep_per_2q_block, dev_.readout_duration_dt(), relax,
      idle_drift,
      // Exact evolution keeps the full virtual-diagonal unitary (global
      // phase cancels in U rho U†, so no fold is needed).
      [&](std::size_t lq, la::cxd, const la::CMat& u) { dm.apply_matrix(u, {lq}); },
      [&](const la::CMat& u, const std::vector<std::size_t>& locals) {
        dm.apply_matrix(u, locals);
      },
      [&](const std::vector<std::size_t>& qubits, double p) {
        dm.apply_depolarizing(qubits, p);
      });

  // Marginalize the exact distribution onto the measured bits.
  const std::vector<double> p_full = dm.probabilities();
  std::vector<double> p(std::size_t{1} << cp.measure_local.size(), 0.0);
  for (std::uint64_t i = 0; i < p_full.size(); ++i) p[map_bits(i, cp)] += p_full[i];

  // Readout confusion folds in exactly as a per-bit stochastic 2x2 map.
  if (options_.readout_error) {
    for (std::size_t i = 0; i < cp.measure_phys.size(); ++i) {
      const noise::ReadoutError& re = nm.qubits[cp.measure_phys[i]].readout;
      const std::uint64_t bit = std::uint64_t{1} << i;
      for (std::uint64_t idx = 0; idx < p.size(); ++idx) {
        if (idx & bit) continue;
        const double p0 = p[idx], p1 = p[idx | bit];
        p[idx] = (1.0 - re.p1_given_0) * p0 + re.p0_given_1 * p1;
        p[idx | bit] = re.p1_given_0 * p0 + (1.0 - re.p0_given_1) * p1;
      }
    }
  }

  return p;
}

void Executor::refresh_key_prefix() {
  // Refresh the cache-key prefix each run so a recalibrated (or
  // noise-model-mutated) backend never replays stale compiled blocks out of
  // a shared cache.
  std::ostringstream prefix;
  prefix << dev_.name() << '#' << std::hex << dev_.fingerprint() << std::dec
         << (options_.noise && options_.coherent_noise ? "#coh;" : "#exact;");
  key_prefix_ = prefix.str();
}

sim::Counts Executor::run(const Program& program, std::size_t shots, Rng& rng) {
  HGP_REQUIRE(!program.measure_qubits.empty(), "Executor::run: nothing to measure");
  if (options_.cancel) options_.cancel->check();
  refresh_key_prefix();

  ExecMetrics& em = ExecMetrics::get();
  obs::Span run_span("executor.run", &em.run_ns);
  const bool noisy = options_.noise;
  const bool density = noisy && options_.engine == Engine::ExactDensity;
  obs::Span compile_span("executor.compile", &em.compile_ns);
  const CompiledProgram cp = compile_program(program, density ? 10 : 14);
  compile_span.finish();
  report_ = ExecutionReport{cp.makespan_dt, dev_.readout_duration_dt(), cp.timeline.size(),
                            cp.timeline.size()};

  if (!noisy) {
    // Deterministic-unitary path: fuse the timeline into fewer, bigger
    // kernels. Noisy engines below keep the unfused timeline — fusion would
    // change the FP rounding of the amplitudes feeding every branch
    // probability, and with it the RNG consumption pattern.
    const FusionResult fr = fuse_for_engine(cp, options_.fusion_max_qubits, cache_.get(),
                                            key_prefix_, dev_.fingerprint());
    report_.fused_block_count = fr.program.timeline.size();
    return run_noiseless(fr.program, shots, rng);
  }
  if (density) return run_exact_density(cp, shots, rng);
  return run_trajectories(cp, shots, rng);
}

double Executor::run_expectation(const Program& program, std::size_t shots, Rng& rng,
                                 const ObjectiveSpec& spec) {
  HGP_REQUIRE(spec.kind != ObjectiveKind::Sample,
              "Executor::run_expectation: Sample objectives go through run()");
  HGP_REQUIRE(static_cast<bool>(spec.value),
              "Executor::run_expectation: objective has no value function");
  HGP_REQUIRE(!program.measure_qubits.empty(),
              "Executor::run_expectation: nothing to measure");
  if (options_.cancel) options_.cancel->check();

  refresh_key_prefix();
  ExecMetrics& em = ExecMetrics::get();
  // Objective aggregation (evolve + exact per-shot reduction) as one span.
  obs::Span objective_span("executor.objective", &em.aggregate_ns);
  const bool noisy = options_.noise;
  const bool density = noisy && options_.engine == Engine::ExactDensity;
  obs::Span compile_span("executor.compile", &em.compile_ns);
  const CompiledProgram cp = compile_program(program, density ? 10 : 14);
  compile_span.finish();
  report_ = ExecutionReport{cp.makespan_dt, dev_.readout_duration_dt(), cp.timeline.size(),
                            cp.timeline.size()};

  // Tabulate the diagonal observable once over the 2^m measured outcomes,
  // keyed exactly like run()'s counts.
  const std::size_t mdim = std::size_t{1} << cp.measure_local.size();
  std::vector<double> vt(mdim);
  for (std::uint64_t j = 0; j < mdim; ++j) vt[j] = spec.value(j);

  if (density) {
    // Exact objective over the folded distribution — no stochastic element.
    const std::vector<double> p = density_distribution(cp);
    if (spec.kind == ObjectiveKind::CVaR)
      return mit::cvar_from_distribution(p, vt, spec.cvar_alpha, spec.cvar_maximize);
    double num = 0.0, den = 0.0;
    for (std::size_t j = 0; j < mdim; ++j) {
      num += vt[j] * p[j];
      den += p[j];
    }
    return num / den;
  }

  const std::size_t dim = std::size_t{1} << cp.touched.size();
  if (!noisy) {
    // One deterministic evolve, one exact reduction — shots and rng are
    // untouched, and there is no sampling noise at all. Fused, like run()'s
    // noiseless branch: the evolve is a pure unitary product.
    const FusionResult fr = fuse_for_engine(cp, options_.fusion_max_qubits, cache_.get(),
                                            key_prefix_, dev_.fingerprint());
    report_.fused_block_count = fr.program.timeline.size();
    sim::Statevector sv(cp.touched.size());
    for (const Scheduled& s : fr.program.timeline)
      sv.apply_matrix(s.block.unitary, s.local);
    if (spec.kind == ObjectiveKind::Expectation) {
      std::vector<double> lvt(dim);
      for (std::uint64_t i = 0; i < dim; ++i) lvt[i] = vt[map_bits(i, cp)];
      double num = 0.0, den = 0.0;
      sv.weighted_mass(lvt.data(), num, den);
      return num / den;
    }
    // CVaR: accumulate the exact (unnormalized) outcome masses in ascending
    // basis order — the same additions accumulate_mapped performs per lane,
    // so the batched candidate path is bit-identical to this one.
    std::vector<double> p(mdim, 0.0);
    const la::CVec& amp = sv.data();
    for (std::uint64_t i = 0; i < dim; ++i) {
      const double ar = amp[i].real(), ai = amp[i].imag();
      p[map_bits(i, cp)] += ar * ar + ai * ai;
    }
    return mit::cvar_from_distribution(p, vt, spec.cvar_alpha, spec.cvar_maximize);
  }

  // Trajectory noise: the same fixed batch grid and per-shot child streams
  // as run() — the parent rng advances by exactly one draw — but each shot
  // contributes its exact terminal distribution instead of one sample, so
  // the only residual stochastic element is the trajectory unraveling
  // itself. All per-shot reductions merge in shot order, making the result
  // bit-identical for every thread count and lane width.
  HGP_REQUIRE(shots > 0, "Executor::run_expectation: need at least one shot");
  const noise::NoiseModel& nm = dev_.noise_model();
  const std::size_t num_batches = (shots + kShotsPerBatch - 1) / kShotsPerBatch;
  const std::uint64_t base = rng.next_u64();
  const std::size_t lanes = std::max<std::size_t>(std::size_t{1}, options_.shot_batch_lanes);

  if (options_.readout_error && spec.kind == ObjectiveKind::Expectation) {
    // Readout confusion commutes into the value table: E[v(readout(b))] is a
    // per-bit 2x2 mixing of the values, folded once instead of per shot.
    for (std::size_t i = 0; i < cp.measure_phys.size(); ++i) {
      const noise::ReadoutError& re = nm.qubits[cp.measure_phys[i]].readout;
      const std::uint64_t bit = std::uint64_t{1} << i;
      for (std::uint64_t idx = 0; idx < mdim; ++idx) {
        if (idx & bit) continue;
        const double v0 = vt[idx], v1 = vt[idx | bit];
        vt[idx] = (1.0 - re.p1_given_0) * v0 + re.p1_given_0 * v1;
        vt[idx | bit] = re.p0_given_1 * v0 + (1.0 - re.p0_given_1) * v1;
      }
    }
  }

  // Local-register lookup tables: per-basis-state value (Expectation) or
  // measured-outcome index (CVaR).
  std::vector<double> lvt;
  std::vector<std::uint32_t> lmap;
  if (spec.kind == ObjectiveKind::Expectation) {
    lvt.resize(dim);
    for (std::uint64_t i = 0; i < dim; ++i) lvt[i] = vt[map_bits(i, cp)];
  } else {
    lmap.resize(dim);
    for (std::uint64_t i = 0; i < dim; ++i)
      lmap[i] = static_cast<std::uint32_t>(map_bits(i, cp));
  }

  // Per-batch accumulators, merged in batch order after the pool joins.
  std::vector<double> batch_acc;
  std::vector<double> batch_p;
  if (spec.kind == ObjectiveKind::Expectation)
    batch_acc.assign(num_batches, 0.0);
  else
    batch_p.assign(num_batches * mdim, 0.0);

  const CancelToken* tok = options_.cancel.get();
  auto run_batch = [&](std::size_t b) {
    if (tok) tok->check();
    const std::size_t first = b * kShotsPerBatch;
    const std::size_t count = std::min(kShotsPerBatch, shots - first);
    std::unique_ptr<sim::BatchedStatevector> full;
    std::vector<double> num(lanes), den(lanes), mass;
    for (std::size_t g = 0; g < count; g += lanes) {
      if (tok) tok->check();
      const std::size_t nl = std::min(lanes, count - g);
      std::unique_ptr<sim::BatchedStatevector> tail;
      sim::BatchedStatevector* bsv;
      if (nl == lanes) {
        if (full)
          full->reset();
        else
          full = std::make_unique<sim::BatchedStatevector>(cp.touched.size(), lanes);
        bsv = full.get();
      } else {
        tail = std::make_unique<sim::BatchedStatevector>(cp.touched.size(), nl);
        bsv = tail.get();
      }
      evolve_lanes(dev_, options_, cp, *bsv, base, first + g);
      if (spec.kind == ObjectiveKind::Expectation) {
        // Per-shot normalized expectation (den carries the trajectory's
        // deferred-normalization weight), summed in shot-ascending order.
        bsv->weighted_masses(lvt.data(), num.data(), den.data());
        for (std::size_t l = 0; l < nl; ++l) batch_acc[b] += num[l] / den[l];
      } else {
        // Per-shot normalized outcome distribution into the batch average.
        mass.assign(mdim * nl, 0.0);
        bsv->accumulate_mapped(lmap.data(), mass.data());
        double* pb = &batch_p[b * mdim];
        for (std::size_t l = 0; l < nl; ++l) {
          double d = 0.0;
          for (std::size_t j = 0; j < mdim; ++j) d += mass[j * nl + l];
          for (std::size_t j = 0; j < mdim; ++j) pb[j] += mass[j * nl + l] / d;
        }
      }
    }
  };
  for_each_batch(num_batches, options_.num_threads, run_batch);

  if (spec.kind == ObjectiveKind::Expectation) {
    double total = 0.0;
    for (std::size_t b = 0; b < num_batches; ++b) total += batch_acc[b];
    return total / static_cast<double>(shots);
  }

  // CVaR of the shot-averaged distribution, readout confusion folded in
  // density-style (the tail statistic does not commute with per-shot
  // averaging, so confusion must act on the distribution, not the values).
  std::vector<double> p(mdim, 0.0);
  for (std::size_t b = 0; b < num_batches; ++b)
    for (std::size_t j = 0; j < mdim; ++j) p[j] += batch_p[b * mdim + j];
  for (std::size_t j = 0; j < mdim; ++j) p[j] /= static_cast<double>(shots);
  if (options_.readout_error) {
    for (std::size_t i = 0; i < cp.measure_phys.size(); ++i) {
      const noise::ReadoutError& re = nm.qubits[cp.measure_phys[i]].readout;
      const std::uint64_t bit = std::uint64_t{1} << i;
      for (std::uint64_t idx = 0; idx < mdim; ++idx) {
        if (idx & bit) continue;
        const double p0 = p[idx], p1 = p[idx | bit];
        p[idx] = (1.0 - re.p1_given_0) * p0 + re.p0_given_1 * p1;
        p[idx | bit] = re.p1_given_0 * p0 + (1.0 - re.p0_given_1) * p1;
      }
    }
  }
  return mit::cvar_from_distribution(p, vt, spec.cvar_alpha, spec.cvar_maximize);
}

std::vector<double> Executor::run_expectation_batch(const std::vector<Program>& programs,
                                                    const ObjectiveSpec& spec) {
  HGP_REQUIRE(!programs.empty(), "Executor::run_expectation_batch: no candidates");
  HGP_REQUIRE(spec.kind != ObjectiveKind::Sample,
              "Executor::run_expectation_batch: Sample objectives go through run()");
  HGP_REQUIRE(static_cast<bool>(spec.value),
              "Executor::run_expectation_batch: objective has no value function");
  HGP_REQUIRE(!options_.noise,
              "Executor::run_expectation_batch: candidate-lane batching is noiseless only");
  if (options_.cancel) options_.cancel->check();

  refresh_key_prefix();
  ExecMetrics& em = ExecMetrics::get();
  obs::Span batch_span("executor.candidate_batch");
  em.expectation_batches.inc();
  const std::size_t B = programs.size();
  const Program& p0 = programs.front();
  HGP_REQUIRE(!p0.measure_qubits.empty(),
              "Executor::run_expectation_batch: nothing to measure");

  // Candidate-lane batching requires one shared circuit structure: the same
  // register, measurement map, and block placement — only parameter values
  // may differ lane to lane. So candidate 0 is compiled in full once and
  // every other lane is delta-compiled against it: per timeline slot, only
  // ops whose parameters actually changed recompile (a full per-candidate
  // compile_program — key building, cache lookups, block copies — was the
  // dominant cost of small batches).
  const CompiledProgram c0 = compile_program(p0, 14);
  const std::size_t steps = c0.timeline.size();

  // Contributing ops per slot, in program order (virtual folds put several
  // ops into one slot).
  std::vector<std::vector<std::size_t>> slot_ops(steps);
  for (std::size_t i = 0; i < p0.ops.size(); ++i)
    if (c0.op_slot[i] >= 0) slot_ops[static_cast<std::size_t>(c0.op_slot[i])].push_back(i);

  // lane_us[s] empty => every lane shares candidate 0's unitary (broadcast).
  std::vector<std::vector<la::CMat>> lane_us(steps);
  // lane_dirty[s][l]: lane l's slot-s unitary was recompiled (differs from
  // candidate 0's). Drives the per-lane recompose of fused slots below.
  std::vector<std::vector<bool>> lane_dirty(steps);
  for (std::size_t l = 1; l < B; ++l) {
    const Program& pl = programs[l];
    HGP_REQUIRE(pl.measure_qubits == p0.measure_qubits && pl.ops.size() == p0.ops.size(),
                "Executor::run_expectation_batch: candidates are not structurally "
                "identical");
    for (std::size_t i = 0; i < pl.ops.size(); ++i)
      HGP_REQUIRE(same_op_structure(pl.ops[i], p0.ops[i]),
                  "Executor::run_expectation_batch: candidate timelines diverge");
    for (std::size_t s = 0; s < steps; ++s) {
      bool dirty = false;
      for (std::size_t i : slot_ops[s])
        if (!same_op_unitary(pl.ops[i], p0.ops[i])) {
          dirty = true;
          break;
        }
      if (!dirty) continue;
      if (lane_us[s].empty()) {
        lane_us[s].assign(B, c0.timeline[s].block.unitary);
        lane_dirty[s].assign(B, false);
      }
      lane_dirty[s][l] = true;
      // Recompute the slot's (possibly folded) unitary in compile_program's
      // exact multiply order, so the lane stays bit-identical to a scalar
      // compile of this candidate.
      la::CMat u = compile_block(pl.ops[slot_ops[s].front()]).unitary;
      for (std::size_t i = 1; i < slot_ops[s].size(); ++i)
        u = compile_block(pl.ops[slot_ops[s][i]]).unitary * u;
      lane_us[s][l] = std::move(u);
    }
  }
  report_ = ExecutionReport{c0.makespan_dt, dev_.readout_duration_dt(), steps, steps};

  // Fuse candidate 0's timeline, then route the delta-compiled lanes through
  // the fused slots: a fused slot whose constituents are clean on every lane
  // applies once broadcast; a slot with dirty lanes re-composes exactly those
  // lanes' unitaries with compose_fused — the same composition fuse_program
  // performs — so each lane stays bit-identical to a scalar fused run of
  // that candidate.
  const FusionResult fr = fuse_for_engine(c0, options_.fusion_max_qubits, cache_.get(),
                                          key_prefix_, dev_.fingerprint());
  const std::size_t fused_steps = fr.program.timeline.size();
  report_.fused_block_count = fused_steps;
  std::vector<std::vector<la::CMat>> fused_us(fused_steps);
  for (std::size_t g = 0; g < fused_steps; ++g) {
    const std::vector<std::size_t>& srcs = fr.slots[g].sources;
    if (srcs.size() == 1) {
      fused_us[g] = std::move(lane_us[srcs[0]]);
      continue;
    }
    const bool any_varied = std::any_of(srcs.begin(), srcs.end(), [&](std::size_t src) {
      return !lane_us[src].empty();
    });
    if (!any_varied) continue;  // broadcast the fused unitary
    fused_us[g].assign(B, fr.program.timeline[g].block.unitary);
    std::vector<FusePartView> parts(srcs.size());
    for (std::size_t l = 1; l < B; ++l) {
      const bool lane_varied = std::any_of(srcs.begin(), srcs.end(), [&](std::size_t src) {
        return !lane_dirty[src].empty() && lane_dirty[src][l];
      });
      if (!lane_varied) continue;
      for (std::size_t i = 0; i < srcs.size(); ++i) {
        const std::size_t src = srcs[i];
        parts[i].u = lane_us[src].empty() ? &c0.timeline[src].block.unitary
                                          : &lane_us[src][l];
        parts[i].local = &c0.timeline[src].local;
      }
      fused_us[g][l] = compose_fused(parts.data(), parts.size(), fr.program.timeline[g].local);
    }
  }

  // One lane-batched evolve for all candidates: blocks whose unitaries agree
  // across every lane (the unparameterized majority) apply once broadcast;
  // parameterized blocks take the per-lane kernels.
  sim::BatchedStatevector bsv(c0.touched.size(), B);
  for (std::size_t s = 0; s < fused_steps; ++s) {
    if (fused_us[s].empty())
      bsv.apply_matrix(fr.program.timeline[s].block.unitary, fr.program.timeline[s].local);
    else
      bsv.apply_matrix_per_lane(fused_us[s], fr.program.timeline[s].local);
  }

  const std::size_t mdim = std::size_t{1} << c0.measure_local.size();
  std::vector<double> vt(mdim);
  for (std::uint64_t j = 0; j < mdim; ++j) vt[j] = spec.value(j);
  const std::size_t dim = std::size_t{1} << c0.touched.size();

  std::vector<double> out(B);
  if (spec.kind == ObjectiveKind::Expectation) {
    std::vector<double> lvt(dim);
    for (std::uint64_t i = 0; i < dim; ++i) lvt[i] = vt[map_bits(i, c0)];
    std::vector<double> num(B), den(B);
    bsv.weighted_masses(lvt.data(), num.data(), den.data());
    for (std::size_t l = 0; l < B; ++l) out[l] = num[l] / den[l];
  } else {
    std::vector<std::uint32_t> lmap(dim);
    for (std::uint64_t i = 0; i < dim; ++i)
      lmap[i] = static_cast<std::uint32_t>(map_bits(i, c0));
    std::vector<double> mass(mdim * B, 0.0);
    bsv.accumulate_mapped(lmap.data(), mass.data());
    std::vector<double> p(mdim);
    for (std::size_t l = 0; l < B; ++l) {
      for (std::size_t j = 0; j < mdim; ++j) p[j] = mass[j * B + l];
      out[l] = mit::cvar_from_distribution(p, vt, spec.cvar_alpha, spec.cvar_maximize);
    }
  }
  return out;
}

}  // namespace hgp::core
