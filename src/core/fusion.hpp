#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "core/executor.hpp"
#include "serve/block_cache.hpp"
#include "transpile/pass_report.hpp"

namespace hgp::core {

/// Post-compile timeline block fusion: greedily merge adjacent Scheduled
/// blocks whose combined qubit support stays within a width bound into single
/// dense unitaries, so the engines dispatch one kernel where they used to
/// dispatch a run of small ones. Order-preserving — blocks are only merged
/// with their timeline neighbors, never commuted past each other — so the
/// fused state equals the unfused state up to FP rounding of the composed
/// products. The executor therefore only fuses deterministic-unitary paths
/// (noiseless sampling, expectation, candidate-lane batches); noisy runs keep
/// the original timeline so every depolarizing charge, idle-relaxation window
/// and RNG draw stays at its original position, bit for bit.

struct FusionOptions {
  /// Widest fused support. 2 = the default (runs of 1q blocks collapse to
  /// 2x2/4x4, 1q blocks absorb into 2q neighbors); 3 additionally fuses 2q
  /// neighborhoods into 8x8 through the dense 3q kernels. 0 or 1 disables
  /// the pass. Values above 3 are clamped by the executor (no wider kernel).
  std::size_t max_qubits = 2;
};

/// One fused timeline slot's provenance: the original timeline slots it
/// merged, in apply order. Single-element = the block passed through
/// untouched. This is what lets candidate-lane delta-compilation route
/// through fused slots: a lane recompiles only the constituent blocks whose
/// ops changed, then re-composes this slot's unitary.
struct FusedSlot {
  std::vector<std::size_t> sources;
};

struct FusionStats : transpile::PassStats {
  std::size_t cache_hits = 0;    // fused unitaries served from the BlockCache
  std::size_t cache_misses = 0;  // fused unitaries composed by matmul
};

struct FusionResult {
  /// The fused program: same touched register, measurement maps, clock and
  /// makespan as the input, shorter timeline, op_slot remapped to fused
  /// slots.
  CompiledProgram program;
  /// Parallel to program.timeline.
  std::vector<FusedSlot> slots;
  FusionStats stats;
};

/// Embed a k-qubit operator into the basis of `support` (sorted local qubit
/// indices): constituent sub-index bit j (qubit local[j]) maps to the support
/// position holding local[j]; support qubits outside `local` act as identity.
la::CMat embed_on_support(const la::CMat& u, const std::vector<std::size_t>& local,
                          const std::vector<std::size_t>& support);

/// A constituent of a fused product, by reference: `u` acts on `local`.
struct FusePartView {
  const la::CMat* u;
  const std::vector<std::size_t>* local;
};

/// Compose parts[n-1] * ... * parts[0] on `support` (timeline apply order:
/// parts[0] acts first). Deterministic — the candidate-lane recompose path
/// calls this with per-lane constituent unitaries and must reproduce bitwise
/// what fusing that candidate's own compiled program would produce.
la::CMat compose_fused(const FusePartView* parts, std::size_t n,
                       const std::vector<std::size_t>& support);

/// Run the fusion pass. When `cache` is non-null, fused unitaries (from runs
/// whose constituents all carry structure keys) are looked up / inserted
/// under `key_prefix` + "fuse[" + joined constituent keys + "]" with
/// BlockKind::Fused, so repeated compiles — and, through the write-through
/// BlockStore, warm-started processes — skip the composition matmuls.
FusionResult fuse_program(const CompiledProgram& cp, const FusionOptions& opt,
                          serve::BlockCache* cache, const std::string& key_prefix,
                          std::uint64_t fingerprint);

}  // namespace hgp::core
