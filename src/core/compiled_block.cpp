#include "core/compiled_block.hpp"

namespace hgp::core {

void CompiledBlock::serialize(std::string& out) const {
  io::Writer w(out);
  w.u32(static_cast<std::uint32_t>(qubits.size()));
  for (const std::size_t q : qubits) w.u64(q);
  w.i32(duration_dt);
  w.u64(drive_plays);
  w.u64(cr_halves);
  w.u8(static_cast<std::uint8_t>((virtual_only ? 1 : 0) | (explicit_idle ? 2 : 0)));
  w.mat(unitary);
}

bool CompiledBlock::deserialize(io::Reader& in, CompiledBlock& out) {
  std::uint32_t nq = 0;
  if (!in.u32(nq) || std::uint64_t{nq} * sizeof(std::uint64_t) > in.remaining())
    return false;
  out.qubits.resize(nq);
  for (std::uint32_t i = 0; i < nq; ++i) {
    std::uint64_t q = 0;
    if (!in.u64(q)) return false;
    out.qubits[i] = static_cast<std::size_t>(q);
  }
  std::int32_t duration = 0;
  std::uint64_t drive = 0, cr = 0;
  std::uint8_t flags = 0;
  if (!in.i32(duration) || !in.u64(drive) || !in.u64(cr) || !in.u8(flags))
    return false;
  out.duration_dt = duration;
  out.drive_plays = static_cast<std::size_t>(drive);
  out.cr_halves = static_cast<std::size_t>(cr);
  out.virtual_only = (flags & 1) != 0;
  out.explicit_idle = (flags & 2) != 0;
  return in.mat(out.unitary);
}

}  // namespace hgp::core
