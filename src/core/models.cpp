#include "core/models.hpp"

#include <algorithm>
#include <cmath>
#include <sstream>

#include "common/error.hpp"
#include "linalg/types.hpp"
#include "transpile/scheduling.hpp"
#include "transpile/transpiler.hpp"

namespace hgp::core {

using qc::GateKind;
using qc::Param;

std::string model_name(ModelKind kind) {
  switch (kind) {
    case ModelKind::GateLevel: return "gate-level";
    case ModelKind::Hybrid: return "hybrid gate-pulse";
    case ModelKind::PulseLevel: return "pulse-level";
  }
  return "?";
}

namespace {

/// Default fixed placement: a connected line on the Falcon heavy-hex (valid
/// on both the 27- and 16-qubit devices), mirroring the paper's fixed
/// logical-to-physical mapping.
std::vector<std::size_t> default_line_layout(std::size_t n) {
  static const std::vector<std::size_t> line = {0, 1, 4, 7, 10, 12, 13, 14};
  HGP_REQUIRE(n <= line.size(), "default layout supports up to 8 qubits");
  return {line.begin(), line.begin() + static_cast<long>(n)};
}

int gamma_slot(int layer) { return 2 * layer; }
int beta_slot(int layer) { return 2 * layer + 1; }

}  // namespace

pulse::Schedule QaoaModel::mixer_pulse(std::size_t phys_q, double angle, double phase,
                                       double freq_ghz) const {
  const pulse::QubitCalibration& qcal = dev_->calibrations().qubit(phys_q);
  const int dur = config_.mixer_duration_dt;
  const double sigma = dur / 4.0;
  const pulse::PulseShape unit = pulse::PulseShape::gaussian(dur, 1.0, sigma);
  // rotation angle = 2π · rate · amp · area; saturate at full output (this
  // is the physical floor the Step-I duration search runs into).
  double amp = std::abs(angle) / (2.0 * la::kPi * qcal.drive_rate_ghz * unit.area_ns());
  amp = std::min(amp, 1.0);
  const double envelope_angle = angle >= 0.0 ? 0.0 : la::kPi;

  const pulse::Channel d = pulse::Channel::drive(phys_q);
  pulse::Schedule s("mixer");
  // Ansatz frame knobs are applied and reverted inside the block, so they
  // are physical rotation-axis/frequency choices, not deferred virtual-Z.
  if (phase != 0.0) s.append(pulse::ShiftPhase{phase, d});
  if (freq_ghz != 0.0) s.append(pulse::ShiftFrequency{freq_ghz, d});
  s.append(pulse::Play{pulse::PulseShape::gaussian(dur, amp, sigma, envelope_angle), d});
  if (freq_ghz != 0.0) s.append(pulse::ShiftFrequency{-freq_ghz, d});
  if (phase != 0.0) s.append(pulse::ShiftPhase{-phase, d});
  return s;
}

QaoaModel QaoaModel::build(const graph::Graph& graph, const backend::FakeBackend& dev,
                           ModelKind kind, const ModelConfig& config) {
  QaoaModel m;
  m.dev_ = &dev;
  m.graph_ = &graph;
  m.kind_ = kind;
  m.config_ = config;

  const std::size_t n = graph.num_vertices();
  std::vector<std::size_t> layout =
      config.initial_layout.empty() ? default_line_layout(n) : config.initial_layout;

  // Transpile one problem segment per QAOA layer, threading the layout.
  for (int l = 0; l < config.p; ++l) {
    qc::Circuit c(n);
    if (l == 0)
      for (std::size_t q = 0; q < n; ++q) c.h(q);
    c.barrier();
    for (const graph::Edge& e : graph.edges())
      c.rzz(e.u, e.v, Param::symbol(gamma_slot(l), -e.weight));
    c.barrier();
    if (kind == ModelKind::GateLevel)
      for (std::size_t q = 0; q < n; ++q) c.rx(q, Param::symbol(beta_slot(l), 2.0));

    transpile::TranspileOptions topt;
    topt.initial_layout = layout;
    topt.cancellation = config.gate_optimization;
    topt.sabre_routing = config.gate_optimization;
    topt.seed = config.seed + static_cast<std::uint64_t>(l);

    transpile::TranspileResult best = transpile::transpile(c, dev, topt);
    if (config.gate_optimization) {
      // Step II also buys better routing: best of a few SABRE seeds.
      for (int trial = 1; trial < 4; ++trial) {
        topt.seed = config.seed + static_cast<std::uint64_t>(l) + 1000u * trial;
        transpile::TranspileResult alt = transpile::transpile(c, dev, topt);
        if (alt.swap_count < best.swap_count) best = std::move(alt);
      }
    }
    m.swap_count_ += best.swap_count;

    GateSegment seg;
    seg.circuit = config.dynamical_decoupling ? transpile::insert_dd(best.circuit, dev)
                                              : std::move(best.circuit);
    seg.layout_after.assign(best.final_layout.begin(), best.final_layout.begin() + n);
    layout = seg.layout_after;
    m.segments_.push_back(std::move(seg));
  }

  // ----- parameter space -----
  auto add_param = [&](const std::string& name, double init, double lo, double hi) {
    m.params_.push_back(ParamSpec{name, init, lo, hi});
    return static_cast<int>(m.params_.size()) - 1;
  };

  // All trainable parameters are normalized to [-1, 1]: angle-like knobs
  // are ×π, frequency shifts ×0.1 GHz. A single COBYLA trust radius then
  // explores every dimension at a comparable rate.
  const double pi = la::kPi;
  if (kind == ModelKind::GateLevel) {
    for (int l = 0; l < config.p; ++l) {
      add_param("gamma_" + std::to_string(l), config.init_gamma / pi, -1.0, 1.0);
      add_param("beta_" + std::to_string(l), config.init_beta / pi, -1.0, 1.0);
    }
  } else if (kind == ModelKind::Hybrid) {
    for (int l = 0; l < config.p; ++l) {
      add_param("gamma_" + std::to_string(l), config.init_gamma / pi, -1.0, 1.0);
      for (std::size_t q = 0; q < n; ++q) {
        const std::string tag = "_" + std::to_string(l) + "_q" + std::to_string(q);
        if (config.train_amp)
          add_param("theta" + tag, 2.0 * config.init_beta / pi, -1.0, 1.0);
        if (config.train_phase) add_param("phase" + tag, 0.0, -1.0, 1.0);
        if (config.train_freq) add_param("freq" + tag, 0.0, -1.0, 1.0);  // ×0.1 GHz
      }
    }
  } else {  // PulseLevel: every physical pulse of the routed circuit is free
    m.freeop_param_base_.resize(m.segments_.size());
    for (std::size_t s = 0; s < m.segments_.size(); ++s) {
      const auto& ops = m.segments_[s].circuit.ops();
      m.freeop_param_base_[s].assign(ops.size(), -1);
      for (std::size_t i = 0; i < ops.size(); ++i) {
        const qc::Op& op = ops[i];
        std::ostringstream tag;
        tag << "_s" << s << "_op" << i;
        if (op.kind == GateKind::CX) {
          m.freeop_param_base_[s][i] =
              add_param("cr_theta" + tag.str(), 0.5, -1.0, 1.0);
          add_param("cr_phase" + tag.str(), 0.0, -1.0, 1.0);
          add_param("cr_freq" + tag.str(), 0.0, -1.0, 1.0);
        } else if (op.kind == GateKind::SX || op.kind == GateKind::X) {
          const double init = op.kind == GateKind::SX ? 0.5 : 1.0;
          m.freeop_param_base_[s][i] = add_param("d_theta" + tag.str(), init, -1.0, 1.0);
          add_param("d_phase" + tag.str(), 0.0, -1.0, 1.0);
          add_param("d_freq" + tag.str(), 0.0, -1.0, 1.0);
        }
      }
      // The mixer pulses of the pulse-level model are free as well.
      m.pulse_mixer_base_.push_back(m.params_.size());
      for (std::size_t q = 0; q < n; ++q) {
        const std::string tag = "_s" + std::to_string(s) + "_mix" + std::to_string(q);
        add_param("theta" + tag, 2.0 * config.init_beta / pi, -1.0, 1.0);
        add_param("phase" + tag, 0.0, -1.0, 1.0);
        add_param("freq" + tag, 0.0, -1.0, 1.0);
      }
    }
  }
  return m;
}

std::vector<double> QaoaModel::initial_parameters() const {
  std::vector<double> x;
  x.reserve(params_.size());
  for (const ParamSpec& p : params_) x.push_back(p.init);
  return x;
}

opt::Bounds QaoaModel::bounds() const {
  opt::Bounds b;
  for (const ParamSpec& p : params_) {
    b.lo.push_back(p.lo);
    b.hi.push_back(p.hi);
  }
  return b;
}

void QaoaModel::set_mixer_duration(int duration_dt) {
  HGP_REQUIRE(duration_dt >= 32 && duration_dt % 32 == 0,
              "set_mixer_duration: duration must be a positive multiple of 32 dt");
  config_.mixer_duration_dt = duration_dt;
}

int QaoaModel::mixer_layer_duration_dt() const {
  if (kind_ == ModelKind::GateLevel) {
    // RX compiles to two SX pulses.
    return 2 * dev_->calibrations().qubit(0).sx_duration;
  }
  return config_.mixer_duration_dt;
}

Program QaoaModel::instantiate(const std::vector<double>& theta) const {
  HGP_REQUIRE(theta.size() == params_.size(), "instantiate: wrong parameter count");
  const std::size_t n = graph_->num_vertices();

  // Fill the slot vector the transpiled segments were built against.
  std::vector<double> slots(2 * static_cast<std::size_t>(config_.p), 0.0);
  std::size_t cursor = 0;  // walks params_ in the order build() created them
  const std::size_t mixer_params_per_qubit =
      static_cast<std::size_t>(config_.train_amp) + config_.train_phase + config_.train_freq;

  if (kind_ == ModelKind::GateLevel) {
    for (int l = 0; l < config_.p; ++l) {
      slots[gamma_slot(l)] = la::kPi * theta[2 * l];
      slots[beta_slot(l)] = la::kPi * theta[2 * l + 1];
    }
  } else if (kind_ == ModelKind::Hybrid) {
    for (int l = 0; l < config_.p; ++l) {
      slots[gamma_slot(l)] = la::kPi * theta[cursor];
      cursor += 1 + n * mixer_params_per_qubit;
    }
  } else {
    for (int l = 0; l < config_.p; ++l) slots[gamma_slot(l)] = config_.init_gamma;
  }

  Program prog;
  cursor = 0;
  const pulse::CalibrationSet& cal = dev_->calibrations();

  for (std::size_t s = 0; s < segments_.size(); ++s) {
    const qc::Circuit bound = segments_[s].circuit.bound(slots);
    for (std::size_t i = 0; i < bound.ops().size(); ++i) {
      const qc::Op& op = bound.ops()[i];
      const int base =
          kind_ == ModelKind::PulseLevel ? freeop_param_base_[s][i] : -1;
      if (base < 0) {
        prog.ops.push_back(ExecOp::from_gate(op));
        continue;
      }
      // Pulse-level model: this op's pulses are trainable (scaled units).
      const double angle = la::kPi * theta[static_cast<std::size_t>(base)];
      const double phase = la::kPi * theta[static_cast<std::size_t>(base) + 1];
      const double freq = 0.1 * theta[static_cast<std::size_t>(base) + 2];
      if (op.kind == GateKind::CX) {
        const std::size_t c = op.qubits[0], t = op.qubits[1];
        const pulse::Channel u =
            pulse::Channel::control(cal.control_channel(c, t));
        pulse::Schedule sched("free-cx");
        if (phase != 0.0) sched.append(pulse::ShiftPhase{phase, u});
        if (freq != 0.0) sched.append(pulse::ShiftFrequency{freq, u});
        sched.append_sequential(cal.ecr(c, t, angle));
        if (freq != 0.0) sched.append(pulse::ShiftFrequency{-freq, u});
        if (phase != 0.0) sched.append(pulse::ShiftPhase{-phase, u});
        sched.append_sequential(cal.rx_direct(t, -la::kPi / 2.0));
        sched.append_sequential(cal.rz(c, -la::kPi / 2.0));
        prog.ops.push_back(ExecOp::from_pulse({c, t}, std::move(sched)));
      } else {  // SX or X
        const std::size_t q = op.qubits[0];
        const pulse::Channel d = pulse::Channel::drive(q);
        pulse::Schedule sched("free-1q");
        if (phase != 0.0) sched.append(pulse::ShiftPhase{phase, d});
        if (freq != 0.0) sched.append(pulse::ShiftFrequency{freq, d});
        sched.append_sequential(cal.rx_direct(q, std::clamp(angle, -la::kPi, la::kPi)));
        if (freq != 0.0) sched.append(pulse::ShiftFrequency{-freq, d});
        if (phase != 0.0) sched.append(pulse::ShiftPhase{-phase, d});
        prog.ops.push_back(ExecOp::from_pulse({q}, std::move(sched)));
      }
    }

    // Mixer layer after each problem segment.
    if (kind_ == ModelKind::Hybrid) {
      ++cursor;  // past gamma_l
      prog.ops.push_back(ExecOp::from_gate(qc::Op{GateKind::Barrier, {}, {}}));
      for (std::size_t q = 0; q < n; ++q) {
        double angle = 2.0 * config_.init_beta, phase = 0.0, freq = 0.0;
        if (config_.train_amp) angle = la::kPi * theta[cursor++];
        if (config_.train_phase) phase = la::kPi * theta[cursor++];
        if (config_.train_freq) freq = 0.1 * theta[cursor++];
        prog.ops.push_back(ExecOp::from_pulse(
            {segments_[s].layout_after[q]},
            mixer_pulse(segments_[s].layout_after[q], angle, phase, freq)));
      }
    } else if (kind_ == ModelKind::PulseLevel) {
      const std::size_t mix_base = pulse_mixer_base_[s];
      prog.ops.push_back(ExecOp::from_gate(qc::Op{GateKind::Barrier, {}, {}}));
      for (std::size_t q = 0; q < n; ++q) {
        const double angle = la::kPi * theta[mix_base + 3 * q];
        const double phase = la::kPi * theta[mix_base + 3 * q + 1];
        const double freq = 0.1 * theta[mix_base + 3 * q + 2];
        prog.ops.push_back(ExecOp::from_pulse(
            {segments_[s].layout_after[q]},
            mixer_pulse(segments_[s].layout_after[q], angle, phase, freq)));
      }
    }
  }

  prog.measure_qubits.resize(n);
  for (std::size_t q = 0; q < n; ++q)
    prog.measure_qubits[q] = segments_.back().layout_after[q];
  return prog;
}

}  // namespace hgp::core
