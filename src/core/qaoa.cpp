#include "core/qaoa.hpp"

#include <memory>

#include "common/error.hpp"

namespace hgp::core {

la::PauliSum maxcut_hamiltonian(const graph::Graph& g) {
  la::PauliSum h(g.num_vertices());
  for (const graph::Edge& e : g.edges()) {
    h.add(e.weight / 2.0, la::PauliString::identity(g.num_vertices()));
    std::vector<la::Pauli> zz(g.num_vertices(), la::Pauli::I);
    zz[e.u] = la::Pauli::Z;
    zz[e.v] = la::Pauli::Z;
    h.add(-e.weight / 2.0, la::PauliString(zz));
  }
  return h;
}

double cut_expectation(const graph::Graph& g, const sim::Counts& counts) {
  double total = 0.0, shots = 0.0;
  for (const auto& [bits, n] : counts) {
    total += g.cut_value(bits) * static_cast<double>(n);
    shots += static_cast<double>(n);
  }
  HGP_REQUIRE(shots > 0.0, "cut_expectation: empty counts");
  return total / shots;
}

double approximation_ratio(double cut_value, double max_cut) {
  HGP_REQUIRE(max_cut > 0.0, "approximation_ratio: max_cut must be positive");
  return cut_value / max_cut;
}

qc::Circuit qaoa_circuit(const graph::Graph& g, int p) {
  HGP_REQUIRE(p >= 1, "qaoa_circuit: need p >= 1");
  qc::Circuit c(g.num_vertices());
  for (std::size_t q = 0; q < g.num_vertices(); ++q) c.h(q);
  for (int l = 0; l < p; ++l) {
    c.barrier();
    for (const graph::Edge& e : g.edges())
      c.rzz(e.u, e.v, qc::Param::symbol(gamma_index(l), -e.weight));
    c.barrier();
    for (std::size_t q = 0; q < g.num_vertices(); ++q)
      c.rx(q, qc::Param::symbol(beta_index(l), 2.0));
  }
  return c;
}

double ideal_qaoa_expectation(const graph::Graph& g, int p, const std::vector<double>& theta,
                              sim::StateKind backend) {
  const std::unique_ptr<sim::QuantumState> state = sim::make_state(backend, g.num_vertices());
  state->run(qaoa_circuit(g, p).bound(theta));
  const la::PauliSum h = maxcut_hamiltonian(g);
  return state->expectation(h);
}

std::vector<double> ideal_qaoa_expectation_batch(const graph::Graph& g, int p,
                                                 const std::vector<std::vector<double>>& thetas,
                                                 opt::BatchDispatcher* dispatcher,
                                                 sim::StateKind backend) {
  // Share the circuit skeleton and Hamiltonian across the batch; each point
  // binds its own parameters onto a private state.
  const qc::Circuit circuit = qaoa_circuit(g, p);
  const la::PauliSum h = maxcut_hamiltonian(g);
  return opt::parallel_map(dispatcher, thetas.size(), [&](std::size_t i) {
    const std::unique_ptr<sim::QuantumState> state =
        sim::make_state(backend, g.num_vertices());
    state->run(circuit.bound(thetas[i]));
    return state->expectation(h);
  });
}

qc::Circuit hardware_efficient_pqc(std::size_t num_qubits, int layers,
                                   const std::string& entanglement) {
  HGP_REQUIRE(layers >= 1, "hardware_efficient_pqc: need layers >= 1");
  qc::Circuit c(num_qubits);
  int param = 0;
  for (int l = 0; l < layers; ++l) {
    for (std::size_t q = 0; q < num_qubits; ++q) {
      c.u3(q, qc::Param::symbol(param), qc::Param::symbol(param + 1),
           qc::Param::symbol(param + 2));
      param += 3;
    }
    if (num_qubits < 2) continue;
    if (entanglement == "linear") {
      for (std::size_t q = 0; q + 1 < num_qubits; ++q) c.cx(q, q + 1);
    } else if (entanglement == "circular") {
      for (std::size_t q = 0; q + 1 < num_qubits; ++q) c.cx(q, q + 1);
      c.cx(num_qubits - 1, 0);
    } else if (entanglement == "full") {
      for (std::size_t a = 0; a < num_qubits; ++a)
        for (std::size_t b = a + 1; b < num_qubits; ++b) c.cx(a, b);
    } else {
      HGP_REQUIRE(false, "hardware_efficient_pqc: unknown entanglement '" + entanglement + "'");
    }
  }
  return c;
}

}  // namespace hgp::core
