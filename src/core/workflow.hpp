#pragma once

#include <memory>
#include <string>

#include "backend/backend.hpp"
#include "core/executor.hpp"
#include "core/models.hpp"
#include "graph/instances.hpp"
#include "optimize/duration_search.hpp"
#include "optimize/optimizer.hpp"

namespace hgp::core {

/// One experiment configuration (a cell of Table II / a bar of Figs. 5-6).
struct RunConfig {
  std::size_t shots = 1024;
  /// COBYLA evaluation budget: the paper uses 50, and up to 200 for the
  /// pulse-level model.
  int max_evaluations = 50;
  /// Step II: SABRE + commutative cancellation.
  bool gate_optimization = false;
  /// Step III: M3 measurement mitigation on every evaluation's counts.
  bool m3 = false;
  /// Step III: CVaR aggregation of the cost (paper coefficient 0.3).
  bool cvar = false;
  double cvar_alpha = 0.3;
  /// Classical optimizer driving the machine-in-loop training:
  /// "cobyla" (paper default) | "spsa" | "neldermead".
  std::string optimizer = "cobyla";
  /// Master noise switch of the run's executors. false = ideal simulation
  /// (exact gate matrices, no decoherence or readout error) — the regime
  /// where lane-native objectives and candidate-lane batching shine.
  bool noise = true;
  /// What each objective evaluation computes: "sample" (legacy counts +
  /// scored_cost — the only mode M3 supports), "expectation" (exact ⟨H_C⟩
  /// over the terminal state / per-trajectory distributions — no terminal
  /// sampling at all), or "cvar" (sorted-tail CVaR_α of the exact outcome
  /// distribution, α = cvar_alpha). For the non-sample modes the `cvar` and
  /// `m3` booleans do not apply: the mode string is authoritative.
  std::string objective = "sample";
  /// Candidates packed per lane-batched evolve when a noiseless non-sample
  /// run evaluates an optimizer batch: parameter candidates become lanes of
  /// one sim::BatchedStatevector, so every unparameterized block applies
  /// once for the whole group. Values are bit-identical for every lane and
  /// worker count.
  std::size_t candidate_lanes = 16;
  /// Noise engine of the executor: "trajectory" (sampled shots, scales to
  /// ~14 active qubits) or "density" (one exact density-matrix pass per
  /// evaluation, <= 10 active qubits, no trajectory sampling noise).
  std::string engine = "trajectory";
  /// Worker threads of the trajectory shot loop (0 = hardware concurrency).
  /// Counts are bit-identical for every value.
  std::size_t executor_threads = 0;
  /// Lockstep lanes of the batched trajectory engine (0/1 = scalar per-shot
  /// loop). Counts are bit-identical for every value.
  std::size_t shot_batch_lanes = core::kDefaultShotBatchLanes;
  /// Widest support of the post-compile timeline fusion pass (see
  /// ExecutorOptions::fusion_max_qubits): 2 fuses 1q runs and 1q-into-2q
  /// neighborhoods, 3 also fuses 2q neighborhoods through the dense 3q
  /// kernels, 0/1 disables. Only affects deterministic-unitary paths; noisy
  /// engines always run the unfused timeline.
  std::size_t fusion = 2;
  /// Non-empty = persistent compiled-block store (see
  /// ExecutorOptions::block_store_path): the run warm-starts from blocks
  /// another process compiled for the same calibration and persists its own.
  std::string block_store_path;
  /// Shots for the M3 readout-calibration programs.
  std::size_t calibration_shots = 4096;
  /// Turn on the hgp::obs telemetry layer (process-wide) for this run —
  /// metrics, spans, and throughput gauges. Equivalent to HGP_OBS=1 in the
  /// environment; telemetry never changes results (counts are bit-identical
  /// on vs off). Off by default: disabled instruments are near-no-ops.
  bool telemetry = false;
  /// Cooperative cancellation + soft deadline for the whole run. Polled at
  /// two granularities: optimizer iteration boundaries (graceful — the run
  /// returns its best-so-far with RunResult::cancelled set) and executor
  /// shot-batch/lane-group boundaries (prompt — the in-flight evaluation
  /// unwinds and run_qaoa assembles a partial result from the batches that
  /// completed). Null = never cancelled. Cancellation never perturbs the
  /// results of runs that complete normally.
  std::shared_ptr<const CancelToken> cancel;
  ModelConfig model;
  std::uint64_t seed = 2023;
};

/// Outcome of one trained run.
struct RunResult {
  std::string model;
  double ar = 0.0;                 // approximation ratio of the final cost
  double final_cost = 0.0;         // cut value under the configured metric
  opt::OptimizeResult optimizer;   // training record
  int iterations_to_converge = 0;
  int mixer_layer_duration_dt = 0;
  int makespan_dt = 0;             // full program duration
  std::size_t swap_count = 0;
  std::size_t num_parameters = 0;
  /// True when RunConfig::cancel stopped the run early: ar/final_cost come
  /// from the best completed evaluation (no fresh final sampling pass), and
  /// optimizer holds the partial training record.
  bool cancelled = false;
  /// Why ("cancelled" | "deadline_expired"); empty for a completed run.
  std::string cancel_reason;
};

/// Train one model variant on one backend and report the paper's metrics.
/// The cost metric used during training matches the reported one (plain
/// expectation, M3-mitigated, and/or CVaR).
///
/// The optimizer's independent candidates (SPSA perturbation pairs, simplex
/// vertices, COBYLA trial points) are evaluated through a BatchObjective:
/// each batch draws one parent RNG value and candidate i samples from
/// Rng::child(base, i), so the result is bit-identical whether the batch
/// runs inline (dispatcher == nullptr), or on a serve::EvalService pool of
/// any worker count. All of the run's executors compile into one
/// compiled-block cache — pass a service's cache to share blocks across
/// concurrent runs; null creates a run-private cache.
RunResult run_qaoa(const graph::Instance& instance, const backend::FakeBackend& dev,
                   ModelKind kind, const RunConfig& config,
                   opt::BatchDispatcher* dispatcher = nullptr,
                   std::shared_ptr<serve::BlockCache> block_cache = nullptr);

/// Step I (paper §IV-B): binary-search the minimum mixer pulse duration that
/// keeps the trained AR within `keep_fraction` of the 320dt baseline.
/// Returns the search trace plus the run at the selected duration.
struct DurationSearchOutcome {
  opt::DurationSearchResult search;
  RunResult final_run;
};
DurationSearchOutcome optimize_mixer_duration(const graph::Instance& instance,
                                              const backend::FakeBackend& dev,
                                              const RunConfig& config,
                                              double keep_fraction = 0.97);

}  // namespace hgp::core
