#pragma once

#include <string>
#include <vector>

#include "backend/backend.hpp"
#include "core/program.hpp"
#include "graph/graph.hpp"
#include "optimize/optimizer.hpp"

namespace hgp::core {

/// The three abstraction layers compared in the paper.
enum class ModelKind {
  GateLevel,   // standard QAOA, everything compiled through fixed gates
  Hybrid,      // gate-level problem layer + native-pulse mixer (the paper's
               // contribution)
  PulseLevel,  // VQP-style: the problem layer's pulses are free too
};

std::string model_name(ModelKind kind);

/// Model construction options.
struct ModelConfig {
  int p = 1;
  /// Mixer pulse length (dt); Step I's binary search shrinks this.
  int mixer_duration_dt = 320;
  /// Initial angles (shared across models for fairness).
  double init_gamma = 0.65;
  double init_beta = 0.40;
  /// Step II: SABRE routing restarts + commutative cancellation.
  bool gate_optimization = false;
  /// Fixed virtual→physical placement; empty = default device line.
  std::vector<std::size_t> initial_layout;
  /// Ablation: lower RZZ through one direct CR echo instead of CX·RZ·CX.
  bool pulse_efficient_rzz = false;
  /// Step III menu: insert X–X dynamical-decoupling echoes into idle
  /// windows of the compiled problem segments.
  bool dynamical_decoupling = false;
  /// Which of the mixer pulse's knobs are trainable (ablation A4).
  bool train_amp = true;
  bool train_phase = true;
  bool train_freq = true;
  std::uint64_t seed = 7;
};

/// One named, bounded parameter of a model.
struct ParamSpec {
  std::string name;
  double init = 0.0;
  double lo = 0.0;
  double hi = 0.0;
};

/// A QAOA model bound to one backend: owns the transpiled gate segments and
/// knows how to turn a parameter vector into an executable Program.
class QaoaModel {
 public:
  static QaoaModel build(const graph::Graph& graph, const backend::FakeBackend& dev,
                         ModelKind kind, const ModelConfig& config);

  ModelKind kind() const { return kind_; }
  const std::vector<ParamSpec>& parameters() const { return params_; }
  std::size_t num_parameters() const { return params_.size(); }
  std::vector<double> initial_parameters() const;
  opt::Bounds bounds() const;

  /// Instantiate the executable program at a parameter vector.
  Program instantiate(const std::vector<double>& theta) const;

  /// Rescale the mixer pulse layer (Step I knob). No-op for GateLevel.
  void set_mixer_duration(int duration_dt);
  int mixer_duration_dt() const { return config_.mixer_duration_dt; }
  /// Duration of one mixer layer in dt: 2 SX pulses for the gate model, one
  /// parametric pulse for the others — the paper's 320dt vs 128dt metric.
  int mixer_layer_duration_dt() const;

  std::size_t swap_count() const { return swap_count_; }

 private:
  /// One transpiled problem segment (prep + Hamiltonian layer of layer l)
  /// with its final layout.
  struct GateSegment {
    qc::Circuit circuit;  // physical, native basis, symbolic parameters
    std::vector<std::size_t> layout_after;  // virtual -> physical
  };

  const backend::FakeBackend* dev_ = nullptr;
  const graph::Graph* graph_ = nullptr;
  ModelKind kind_ = ModelKind::GateLevel;
  ModelConfig config_;
  std::vector<ParamSpec> params_;
  std::vector<GateSegment> segments_;  // one per QAOA layer
  std::size_t swap_count_ = 0;
  /// PulseLevel: indices into params_ for each free pulse op, keyed by the
  /// op's position (segment, op index); -1 entries for fixed ops.
  std::vector<std::vector<int>> freeop_param_base_;
  /// PulseLevel: params_ index of each segment's first mixer parameter.
  std::vector<std::size_t> pulse_mixer_base_;

  pulse::Schedule mixer_pulse(std::size_t phys_q, double angle, double phase,
                              double freq_ghz) const;
};

}  // namespace hgp::core
