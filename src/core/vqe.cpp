#include "core/vqe.hpp"

#include <algorithm>
#include <memory>

#include "common/error.hpp"
#include "linalg/eig.hpp"
#include "optimize/cobyla.hpp"
#include "optimize/gradient.hpp"
#include "optimize/neldermead.hpp"
#include "optimize/spsa.hpp"
#include "sim/state.hpp"

namespace hgp::core {

la::PauliSum tfim_hamiltonian(std::size_t n, double j, double h, bool periodic) {
  HGP_REQUIRE(n >= 2, "tfim_hamiltonian: need at least 2 sites");
  la::PauliSum ham(n);
  const std::size_t bonds = periodic ? n : n - 1;
  for (std::size_t i = 0; i < bonds; ++i) {
    std::vector<la::Pauli> zz(n, la::Pauli::I);
    zz[i] = la::Pauli::Z;
    zz[(i + 1) % n] = la::Pauli::Z;
    ham.add(-j, la::PauliString(zz));
  }
  for (std::size_t i = 0; i < n; ++i)
    ham.add(-h, la::PauliString::single(n, i, la::Pauli::X));
  return ham;
}

VqeResult run_vqe(const la::PauliSum& hamiltonian, const qc::Circuit& ansatz,
                  const VqeConfig& config, opt::BatchDispatcher* dispatcher) {
  HGP_REQUIRE(hamiltonian.num_qubits() == ansatz.num_qubits(),
              "run_vqe: Hamiltonian/ansatz width mismatch");
  const std::size_t nparams = ansatz.num_parameters();
  HGP_REQUIRE(nparams >= 1, "run_vqe: ansatz has no parameters");

  const sim::StateKind backend = sim::state_kind_from_name(config.state_backend);
  const opt::Objective energy = [&](const std::vector<double>& theta) {
    const std::unique_ptr<sim::QuantumState> state =
        sim::make_state(backend, ansatz.num_qubits());
    state->run(ansatz.bound(theta));
    return state->expectation(hamiltonian);
  };
  // Energy evaluations are deterministic and independent: a batch can fan
  // out across workers with no RNG bookkeeping at all.
  const opt::BatchObjective energy_batch = [&](const std::vector<std::vector<double>>& xs) {
    return opt::parallel_map(dispatcher, xs.size(),
                             [&](std::size_t i) { return energy(xs[i]); });
  };

  std::vector<double> x0(nparams, 0.1);
  opt::OptimizeResult r;
  if (config.optimizer == "cobyla") {
    opt::Cobyla::Options o;
    o.max_evaluations = config.max_evaluations;
    o.cancel = config.cancel;
    r = opt::Cobyla(o).minimize_batch(energy_batch, x0);
  } else if (config.optimizer == "neldermead") {
    opt::NelderMead::Options o;
    o.max_evaluations = config.max_evaluations;
    o.cancel = config.cancel;
    r = opt::NelderMead(o).minimize_batch(energy_batch, x0);
  } else if (config.optimizer == "spsa") {
    opt::Spsa::Options o;
    o.max_iterations = config.max_evaluations / 2;
    o.seed = config.seed;
    o.cancel = config.cancel;
    r = opt::Spsa(o).minimize_batch(energy_batch, x0);
  } else if (config.optimizer == "adam") {
    opt::Adam::Options o;
    o.max_iterations = std::max(1, config.max_evaluations /
                                       (2 * static_cast<int>(nparams) + 1));
    o.cancel = config.cancel;
    if (config.gradient == "parameter_shift")
      o.mode = opt::Adam::GradientMode::ParameterShift;
    else if (config.gradient == "batched_parameter_shift")
      o.mode = opt::Adam::GradientMode::BatchedParameterShift;
    else
      HGP_REQUIRE(config.gradient == "finite_difference",
                  "run_vqe: unknown gradient '" + config.gradient + "'");
    r = opt::Adam(o).minimize_batch(energy_batch, x0);
  } else {
    HGP_REQUIRE(false, "run_vqe: unknown optimizer '" + config.optimizer + "'");
  }

  VqeResult out;
  out.energy = r.value;
  const la::EigResult eg = la::eigh(hamiltonian.matrix());
  out.exact_ground = eg.values.front();
  const double width = eg.values.back() - eg.values.front();
  out.relative_error = width > 0 ? (out.energy - out.exact_ground) / width : 0.0;
  out.optimizer = std::move(r);
  return out;
}

}  // namespace hgp::core
