#pragma once

#include <cstddef>
#include <vector>

#include "linalg/matrix.hpp"

namespace hgp::core {

/// One program step compiled down to its simulated unitary plus the noise
/// bookkeeping the engines charge against it. Blocks are deterministic
/// functions of (device calibrations, compile options, structure key), which
/// is what makes them shareable across executors, optimizer candidates, and
/// concurrent runs through serve::BlockCache.
struct CompiledBlock {
  la::CMat unitary;                  // local to `qubits`
  std::vector<std::size_t> qubits;   // physical
  int duration_dt = 0;
  std::size_t drive_plays = 0;       // 1q depolarizing charges
  std::size_t cr_halves = 0;         // 2q depolarizing charges
  bool virtual_only = false;         // exact & free (RZ etc.)
  bool explicit_idle = false;        // Delay: relaxation + coherent drift
};

}  // namespace hgp::core
