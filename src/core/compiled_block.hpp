#pragma once

#include <cstddef>
#include <string>
#include <vector>

#include "common/binio.hpp"
#include "linalg/matrix.hpp"

namespace hgp::core {

/// One program step compiled down to its simulated unitary plus the noise
/// bookkeeping the engines charge against it. Blocks are deterministic
/// functions of (device calibrations, compile options, structure key), which
/// is what makes them shareable across executors, optimizer candidates, and
/// concurrent runs through serve::BlockCache — and, serialized, across
/// processes and hosts through serve::BlockStore.
struct CompiledBlock {
  la::CMat unitary;                  // local to `qubits`
  std::vector<std::size_t> qubits;   // physical
  int duration_dt = 0;
  std::size_t drive_plays = 0;       // 1q depolarizing charges
  std::size_t cr_halves = 0;         // 2q depolarizing charges
  bool virtual_only = false;         // exact & free (RZ etc.)
  bool explicit_idle = false;        // Delay: relaxation + coherent drift

  /// Transient identity of this block under the executor's cache keying —
  /// the suffix of its BlockCache key (no backend-fingerprint prefix).
  /// Stamped by the compile pipeline so the fusion pass can derive cache
  /// keys for merged blocks by concatenation. NOT serialized: a store
  /// round-trip leaves it empty, and the executor re-stamps it on every
  /// cache hit.
  std::string structure_key;

  /// Append the block to `out` in the store's binary encoding. The unitary
  /// round-trips by IEEE-754 bit pattern, so a deserialized block reproduces
  /// bit-identical counts.
  void serialize(std::string& out) const;
  /// Decode one block from `in`. False (out untouched in spirit — contents
  /// unspecified) on truncated or malformed input; never throws.
  static bool deserialize(io::Reader& in, CompiledBlock& out);
};

}  // namespace hgp::core
