#include "core/program.hpp"

namespace hgp::core {

std::size_t Program::pulse_block_play_count() const {
  std::size_t n = 0;
  for (const ExecOp& op : ops)
    if (op.is_pulse) n += op.schedule.play_count();
  return n;
}

}  // namespace hgp::core
