#pragma once

#include <map>
#include <string>

#include "backend/backend.hpp"
#include "common/rng.hpp"
#include "core/program.hpp"
#include "sim/statevector.hpp"

namespace hgp::core {

struct ExecutorOptions {
  /// Master switch: false = ideal (noiseless, exact gate matrices).
  bool noise = true;
  /// Apply the readout confusion to sampled bits.
  bool readout_error = true;
  /// Simulate gates through their calibrated pulse schedules (coherent
  /// miscalibration included). When false, gates use exact matrices but
  /// incoherent noise still applies.
  bool coherent_noise = true;
};

/// Timing/duration report of one executed program.
struct ExecutionReport {
  int makespan_dt = 0;
  int readout_dt = 0;
  std::size_t block_count = 0;
};

/// The machine-in-loop execution engine: compiles a Program's steps into
/// per-block unitaries (gate blocks through the backend's calibrated pulse
/// schedules, pulse blocks through the pulse simulator — both including the
/// device's coherent miscalibration), then samples shots as quantum
/// trajectories with per-block depolarizing charges, per-qubit thermal
/// relaxation over the ASAP timeline, and readout confusion.
class Executor {
 public:
  Executor(const backend::FakeBackend& dev, ExecutorOptions options = {});

  /// Run the program and return counts keyed in the order of
  /// program.measure_qubits (bit i = measure_qubits[i]).
  sim::Counts run(const Program& program, std::size_t shots, Rng& rng);

  const ExecutionReport& last_report() const { return report_; }

 private:
  struct CompiledBlock {
    la::CMat unitary;                  // local to `qubits`
    std::vector<std::size_t> qubits;   // physical
    int duration_dt = 0;
    std::size_t drive_plays = 0;       // 1q depolarizing charges
    std::size_t cr_halves = 0;         // 2q depolarizing charges
    bool virtual_only = false;         // exact & free (RZ etc.)
    bool explicit_idle = false;        // Delay: relaxation + coherent drift
  };

  CompiledBlock compile_gate(const qc::Op& op);
  CompiledBlock compile_pulse(const ExecOp& op);
  la::CMat simulate_block(const pulse::Schedule& physical_sched,
                          const std::vector<std::size_t>& qubits) const;

  const backend::FakeBackend& dev_;
  ExecutorOptions options_;
  ExecutionReport report_;
  std::map<std::string, CompiledBlock> cache_;
};

}  // namespace hgp::core
