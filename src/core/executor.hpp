#pragma once

#include <cstdint>
#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "backend/backend.hpp"
#include "common/cancel.hpp"
#include "common/rng.hpp"
#include "core/compiled_block.hpp"
#include "core/program.hpp"
#include "serve/block_cache.hpp"
#include "sim/batched_statevector.hpp"
#include "sim/density.hpp"
#include "sim/state.hpp"
#include "sim/statevector.hpp"

namespace hgp::core {

/// How the executor turns a compiled program plus a noise model into counts.
enum class Engine {
  /// Sample shots as statevector quantum trajectories (the machine-in-loop
  /// production path; scales to ~14 active qubits). Every shot owns a child
  /// RNG stream derived from one parent draw, so counts are bit-identical
  /// regardless of worker-thread count or lane-batch width.
  Trajectory,
  /// One exact density-matrix pass with Kraus channels — no shot loop at
  /// all. Exact statistics for small registers (<= 10 active qubits).
  ExactDensity,
};

/// Parse "trajectory" | "density" (throws on anything else).
Engine engine_from_name(const std::string& name);
const std::string& engine_name(Engine engine);

/// What an executor evaluation returns: sampled counts (run()) or a
/// lane-native scalar objective computed from the terminal state without
/// sampling (run_expectation / run_expectation_batch).
enum class ObjectiveKind {
  /// Sample shots and aggregate counts — the only mode run() implements.
  Sample,
  /// Exact expectation of a diagonal observable over the measured bits:
  /// one probability-weighted sweep per terminal state, no sampling noise.
  Expectation,
  /// CVaR_alpha of the diagonal observable: sorted-tail average over the
  /// exact outcome distribution.
  CVaR,
};

/// Parse "sample" | "expectation" | "cvar" (throws on anything else).
ObjectiveKind objective_from_name(const std::string& name);
const std::string& objective_name(ObjectiveKind kind);

/// A diagonal objective over measured bitstrings. `value` is keyed exactly
/// like run()'s counts (bit i = measure_qubits[i]) and is tabulated once per
/// evaluation over the 2^m outcomes, so it must be cheap and total.
struct ObjectiveSpec {
  ObjectiveKind kind = ObjectiveKind::Expectation;
  std::function<double(std::uint64_t)> value;
  /// CVaR tail fraction (ignored for Expectation).
  double cvar_alpha = 0.3;
  /// CVaR tail direction: true averages the best (highest-value) tail —
  /// what Max-Cut training wants for cut values.
  bool cvar_maximize = true;
};

/// Default lockstep width of the batched trajectory engine — the sweet spot
/// measured by bench_shotloop_timing at 12-14 qubits on one core.
inline constexpr std::size_t kDefaultShotBatchLanes = 16;

struct ExecutorOptions {
  /// Master switch: false = ideal (noiseless, exact gate matrices).
  bool noise = true;
  /// Apply the readout confusion to sampled bits.
  bool readout_error = true;
  /// Simulate gates through their calibrated pulse schedules (coherent
  /// miscalibration included). When false, gates use exact matrices but
  /// incoherent noise still applies.
  bool coherent_noise = true;
  /// Noise engine: sampled trajectories or a single exact density pass.
  Engine engine = Engine::Trajectory;
  /// Worker threads for the trajectory shot loop (0 = hardware concurrency).
  /// Counts are identical for every value — threads only change wall clock.
  std::size_t num_threads = 0;
  /// Trajectory lanes evolved in lockstep by the batched multi-shot
  /// statevector: each gate applies once across all lanes of a shot group,
  /// amortizing dispatch and turning the inner loop into unit-stride
  /// vectorizable arithmetic. 0 or 1 falls back to the scalar per-shot
  /// loop. Counts are bit-identical for every value (each shot's stochastic
  /// branches draw from its own child stream in the scalar order).
  std::size_t shot_batch_lanes = kDefaultShotBatchLanes;
  /// Compiled-block cache shared with other executors (serve::EvalService
  /// injects its process-wide cache here). Null = the executor creates a
  /// private cache of `block_cache_capacity` entries.
  std::shared_ptr<serve::BlockCache> block_cache;
  /// LRU bound of the private per-executor cache (ignored when a shared
  /// cache is injected).
  std::size_t block_cache_capacity = 512;
  /// Non-empty = persistent compiled-block store: the cache warm-starts from
  /// this serve::BlockStore file (entries from another process or host load
  /// by content, validated per record) and writes every new compilation
  /// through, so the next process skips the pulse-ODE compilations entirely.
  /// A store written by a different calibration (backend fingerprint
  /// mismatch), foreign format version, or corrupted file degrades to cold
  /// compilation — never an error. On a shared cache the first attach wins;
  /// later executors reuse the already-attached store.
  std::string block_store_path;
  /// Widest support of the post-compile timeline fusion pass (core/fusion):
  /// adjacent blocks merge into single dense unitaries up to this many
  /// qubits, so the engines dispatch fewer, bigger kernels. 2 (default)
  /// fuses 1q runs and 1q-into-2q neighborhoods; 3 additionally fuses 2q
  /// neighborhoods through the dense 3q kernels; 0 or 1 disables the pass,
  /// and values above 3 clamp to 3 (no wider kernel exists). Fusion only
  /// ever applies to deterministic-unitary paths — noiseless run(),
  /// noiseless run_expectation(), and run_expectation_batch(); noisy runs
  /// keep the unfused timeline so every noise event and RNG draw stays at
  /// its original position, bit for bit.
  std::size_t fusion_max_qubits = 2;
  /// Cooperative cancellation: polled at shot-batch / lane-group boundaries
  /// of the trajectory loops and at entry of the evaluation calls. When the
  /// token fires, the in-flight evaluation throws CancelledError — partial
  /// counts are discarded (a partial histogram would be biased), and the
  /// worker is freed within one lane group. Null = never cancelled.
  std::shared_ptr<const CancelToken> cancel;
};

/// Timing/duration report of one executed program.
struct ExecutionReport {
  int makespan_dt = 0;
  int readout_dt = 0;
  std::size_t block_count = 0;
  /// Timeline length the engines actually walked after fusion (equal to
  /// block_count when the pass was disabled or did not apply).
  std::size_t fused_block_count = 0;
};

/// One block placed on the ASAP timeline in local qubit coordinates.
struct Scheduled {
  CompiledBlock block;
  std::vector<std::size_t> local;   // local qubit indices
  std::vector<int> idle_before_dt;  // per local qubit of the block
};

/// A program compiled down to the engine-independent representation: the
/// block timeline over the compressed (touched-only) register plus the
/// measurement maps. Every engine — scalar trajectory, lane-batched
/// trajectory, exact density — walks this same structure.
struct CompiledProgram {
  std::vector<Scheduled> timeline;
  std::vector<std::size_t> touched;        // sorted physical qubits
  std::vector<std::size_t> measure_phys;   // physical qubit per measured bit
  std::vector<std::size_t> measure_local;  // local qubit per measured bit
  std::vector<int> clock;                  // per-local end time
  /// Timeline slot each program op landed in (-1 for barriers/measures).
  /// Consecutive virtual blocks fold, so several ops may map to one slot —
  /// this is what lets candidate-lane batching delta-compile: a candidate
  /// that differs from the reference only in some ops' parameter values
  /// recompiles exactly those ops' slots.
  std::vector<long> op_slot;
  int makespan_dt = 0;
};

/// The machine-in-loop execution engine: compiles a Program's steps into
/// per-block unitaries (gate blocks through the backend's calibrated pulse
/// schedules, pulse blocks through the pulse simulator — both including the
/// device's coherent miscalibration), then realizes noise either as sampled
/// quantum trajectories (per-block depolarizing charges, per-qubit thermal
/// relaxation over the ASAP timeline, readout confusion) or as one exact
/// density-matrix pass over the same timeline.
class Executor {
 public:
  Executor(const backend::FakeBackend& dev, ExecutorOptions options = {});

  /// Run the program and return counts keyed in the order of
  /// program.measure_qubits (bit i = measure_qubits[i]).
  sim::Counts run(const Program& program, std::size_t shots, Rng& rng);

  /// Evaluate a diagonal objective without terminal sampling. Noiseless:
  /// one deterministic evolve, exact expectation/CVaR (shots and rng are
  /// untouched). Trajectory noise: the same fixed batch grid and per-shot
  /// child streams as run() (rng advances by exactly one draw), but each
  /// shot contributes its exact outcome distribution instead of one sample —
  /// Expectation averages per-shot normalized expectations, CVaR takes the
  /// tail of the shot-averaged distribution (readout confusion folds into
  /// the value table / the averaged distribution respectively). Density:
  /// exact objective over the folded distribution, no stochastic element at
  /// all. Deterministic for every thread and lane count.
  double run_expectation(const Program& program, std::size_t shots, Rng& rng,
                         const ObjectiveSpec& spec);

  /// Candidate-lane batching: evaluate B structurally identical programs
  /// (same gates and layout, different parameter values — SPSA pairs,
  /// simplex vertices, parameter-shift points) as B lanes of one lane-batched
  /// evolve. Blocks whose unitaries agree across candidates apply once
  /// broadcast; parameterized blocks take the per-lane kernels. Noiseless
  /// only — result l is bit-identical to run_expectation(programs[l], ...)
  /// on a scalar statevector.
  std::vector<double> run_expectation_batch(const std::vector<Program>& programs,
                                            const ObjectiveSpec& spec);

  const ExecutionReport& last_report() const { return report_; }

  /// The compiled-block cache this executor compiles into (private or
  /// injected) and its hit/miss/evict counters.
  const std::shared_ptr<serve::BlockCache>& block_cache() const { return cache_; }
  serve::BlockCache::Stats cache_stats() const { return cache_->stats(); }

 private:
  /// The single block-lowering entry point: every program step — gate or
  /// pulse — routes through here. Virtual (free diagonal) gates and explicit
  /// delays compile to exact matrices without touching the cache; everything
  /// else builds a structure key (gate kind + hexfloat parameters, or the
  /// pulse schedule's content fingerprint) and goes through
  /// lower_schedule_block's cached path.
  CompiledBlock compile_block(const ExecOp& op);
  /// Gate front-end of compile_block: resolves the calibrated schedule and
  /// the structure key for a native gate, then lowers through the shared
  /// cached path.
  CompiledBlock compile_gate(const qc::Op& op);
  /// Shared lowering tail for every schedule-backed block: cache lookup
  /// under key_prefix_ + structure_key, else simulate (or take the exact
  /// unitary when pulse-accurate compilation is off), fill the
  /// schedule-derived metadata, and insert. `fold_cx_phase_defect` folds the
  /// backend's static two-qubit phase error into simulated CX/RZZ blocks.
  CompiledBlock lower_schedule_block(const std::string& structure_key, serve::BlockKind kind,
                                     const pulse::Schedule& sched,
                                     const std::vector<std::size_t>& qubits,
                                     const la::CMat* exact_unitary, bool fold_cx_phase_defect);
  la::CMat simulate_block(const pulse::Schedule& physical_sched,
                          const std::vector<std::size_t>& qubits) const;

  CompiledProgram compile_program(const Program& program, std::size_t max_qubits);
  /// Compress measured bits out of a local-register basis index.
  static std::uint64_t map_bits(std::uint64_t bits, const CompiledProgram& cp);

  sim::Counts run_noiseless(const CompiledProgram& cp, std::size_t shots, Rng& rng) const;
  sim::Counts run_trajectories(const CompiledProgram& cp, std::size_t shots, Rng& rng) const;
  /// One trajectory: evolve `sv` (already reset) through the timeline and
  /// record a single readout into `out`.
  void run_one_shot(const CompiledProgram& cp, sim::Statevector& sv, Rng& rng,
                    sim::Counts& out) const;
  /// bsv.lanes() trajectories in lockstep: deterministic blocks apply once
  /// across all lanes, stochastic branches draw per lane from
  /// Rng::child(rng_base, first_shot + lane) in the scalar path's order, and
  /// terminal sampling does one probability pass (shared sorted pass for
  /// lanes that took no stochastic branch). Counts land in `out` exactly as
  /// if run_one_shot had run each lane's shot.
  void run_lane_group(const CompiledProgram& cp, sim::BatchedStatevector& bsv,
                      std::uint64_t rng_base, std::size_t first_shot,
                      sim::Counts& out) const;
  sim::Counts run_exact_density(const CompiledProgram& cp, std::size_t shots, Rng& rng) const;
  /// The exact-density outcome distribution over the measured bits,
  /// marginalized and readout-folded — shared by run_exact_density (which
  /// samples it) and the density path of run_expectation (which reduces it).
  std::vector<double> density_distribution(const CompiledProgram& cp) const;
  /// Rebuild key_prefix_ from the backend fingerprint and compile options
  /// (called at the top of every run so recalibration invalidates stale
  /// cache entries).
  void refresh_key_prefix();

  const backend::FakeBackend& dev_;
  ExecutorOptions options_;
  ExecutionReport report_;
  std::shared_ptr<serve::BlockCache> cache_;
  /// Backend-fingerprint + compile-option prefix of every cache key;
  /// refreshed per run() so recalibration invalidates stale entries.
  std::string key_prefix_;
};

}  // namespace hgp::core
