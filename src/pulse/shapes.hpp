#pragma once

#include <string>
#include <vector>

#include "linalg/types.hpp"

namespace hgp::pulse {

/// Hardware timing: IBM backends sample output channels every dt = 2/9 ns.
inline constexpr double kDtNs = 2.0 / 9.0;
/// qiskit-pulse restriction: Gaussian waveform durations are multiples of 32.
inline constexpr int kDurationGranularity = 32;

enum class ShapeKind { Gaussian, GaussianSquare, Drag, Constant };

/// A parametric pulse envelope, sampled at dt resolution. Amplitudes follow
/// the hardware convention |amp| <= 1 (fraction of max channel output);
/// `angle` rotates the envelope in the IQ plane. Gaussian-family envelopes
/// are "lifted" (zero at the sample just outside the pulse) like qiskit's.
class PulseShape {
 public:
  static PulseShape gaussian(int duration, double amp, double sigma, double angle = 0.0);
  static PulseShape gaussian_square(int duration, double amp, double sigma, double width,
                                    double angle = 0.0);
  static PulseShape drag(int duration, double amp, double sigma, double beta,
                         double angle = 0.0);
  static PulseShape constant(int duration, double amp, double angle = 0.0);

  ShapeKind kind() const { return kind_; }
  /// Length in dt samples.
  int duration() const { return duration_; }
  double amp() const { return amp_; }
  double sigma() const { return sigma_; }
  double width() const { return width_; }
  double beta() const { return beta_; }
  double angle() const { return angle_; }

  /// Complex envelope value at sample t in [0, duration).
  la::cxd sample(int t) const;
  std::vector<la::cxd> samples() const;
  /// Integral of the unit-angle envelope in ns: |Σ_t sample(t)| * dt. The
  /// analytic gate calibrations use area ∝ rotation angle.
  double area_ns() const;
  /// Integral of |sample(t)|² in ns — drives quadratic (AC-Stark) terms.
  double area_sq_ns() const;

  /// Same shape with a different amplitude/angle (used by parametric pulse
  /// binding and by the echo's sign flip).
  PulseShape with_amp(double amp) const;
  PulseShape with_angle(double angle) const;
  /// Same shape family rescaled to a new duration (sigma/width scaled
  /// proportionally) — the knob turned by the Step-I duration search.
  PulseShape with_duration(int duration) const;

  std::string str() const;
  /// Exact key rendering for cache fingerprints: unlike str(), which uses
  /// the default 6-significant-digit ostream formatting for display, every
  /// parameter is hexfloat-formatted (lossless), so nearby amplitudes or
  /// angles can never collide on one cache slot.
  std::string key_str() const;

 private:
  ShapeKind kind_ = ShapeKind::Constant;
  int duration_ = 0;
  double amp_ = 0.0;
  double sigma_ = 1.0;
  double width_ = 0.0;  // flat-top width for GaussianSquare
  double beta_ = 0.0;   // DRAG coefficient
  double angle_ = 0.0;
};

}  // namespace hgp::pulse
