#include "pulse/schedule.hpp"

#include <algorithm>
#include <cstdio>
#include <sstream>
#include <tuple>

#include "common/error.hpp"

namespace hgp::pulse {

namespace {

void append_hex(std::string& out, const char* tag, double v) {
  char buf[48];
  std::snprintf(buf, sizeof(buf), "%s%a", tag, v);
  out += buf;
}

}  // namespace

Channel instruction_channel(const Instruction& inst) {
  return std::visit(
      [](const auto& i) -> Channel {
        using T = std::decay_t<decltype(i)>;
        if constexpr (std::is_same_v<T, Acquire>)
          return Channel::acquire(i.qubit);
        else
          return i.channel;
      },
      inst);
}

int instruction_duration(const Instruction& inst) {
  return std::visit(
      [](const auto& i) -> int {
        using T = std::decay_t<decltype(i)>;
        if constexpr (std::is_same_v<T, Play>)
          return i.shape.duration();
        else if constexpr (std::is_same_v<T, Delay>)
          return i.duration;
        else if constexpr (std::is_same_v<T, Acquire>)
          return i.duration;
        else
          return 0;
      },
      inst);
}

int Schedule::duration() const {
  int d = 0;
  for (const auto& [c, end] : channel_end_) d = std::max(d, end);
  return d;
}

int Schedule::channel_duration(const Channel& c) const {
  const auto it = channel_end_.find(c);
  return it == channel_end_.end() ? 0 : it->second;
}

std::vector<Channel> Schedule::channels() const {
  std::vector<Channel> out;
  out.reserve(channel_end_.size());
  for (const auto& [c, end] : channel_end_) out.push_back(c);
  return out;
}

Schedule& Schedule::append(Instruction inst) {
  const Channel c = instruction_channel(inst);
  return insert(channel_duration(c), std::move(inst));
}

Schedule& Schedule::insert(int t0, Instruction inst) {
  HGP_REQUIRE(t0 >= 0, "Schedule::insert: negative start time");
  const Channel c = instruction_channel(inst);
  const int end = t0 + instruction_duration(inst);
  auto& channel_end = channel_end_[c];
  channel_end = std::max(channel_end, end);
  instructions_.push_back(TimedInstruction{t0, std::move(inst)});
  keep_sorted();
  return *this;
}

Schedule& Schedule::insert(int t0, const Schedule& other) {
  for (const TimedInstruction& ti : other.instructions_) insert(t0 + ti.t0, ti.inst);
  return *this;
}

Schedule& Schedule::append_sequential(const Schedule& other) {
  return insert(duration(), other);
}

Schedule& Schedule::append_aligned(const Schedule& other) {
  int t0 = 0;
  for (const Channel& c : other.channels()) t0 = std::max(t0, channel_duration(c));
  return insert(t0, other);
}

Schedule& Schedule::left_align() {
  if (instructions_.empty()) return *this;
  int min_t0 = instructions_.front().t0;
  for (const TimedInstruction& ti : instructions_) min_t0 = std::min(min_t0, ti.t0);
  if (min_t0 == 0) return *this;
  for (TimedInstruction& ti : instructions_) ti.t0 -= min_t0;
  for (auto& [c, end] : channel_end_) end -= min_t0;
  return *this;
}

std::size_t Schedule::play_count() const {
  return static_cast<std::size_t>(
      std::count_if(instructions_.begin(), instructions_.end(), [](const TimedInstruction& ti) {
        return std::holds_alternative<Play>(ti.inst);
      }));
}

std::uint64_t Schedule::fingerprint() const {
  struct Record {
    int t0;
    Channel channel;
    std::string text;
  };
  std::vector<Record> records;
  records.reserve(instructions_.size());
  for (const TimedInstruction& ti : instructions_) {
    Record r;
    r.t0 = ti.t0;
    r.channel = instruction_channel(ti.inst);
    std::visit(
        [&r](const auto& i) {
          using T = std::decay_t<decltype(i)>;
          if constexpr (std::is_same_v<T, Play>)
            r.text = "P" + i.shape.key_str();
          else if constexpr (std::is_same_v<T, Delay>)
            r.text = "D" + std::to_string(i.duration);
          else if constexpr (std::is_same_v<T, ShiftPhase>)
            append_hex(r.text, "p+", i.phase);
          else if constexpr (std::is_same_v<T, SetPhase>)
            append_hex(r.text, "p=", i.phase);
          else if constexpr (std::is_same_v<T, ShiftFrequency>)
            append_hex(r.text, "f+", i.freq_ghz);
          else if constexpr (std::is_same_v<T, SetFrequency>)
            append_hex(r.text, "f=", i.freq_ghz);
          else  // Acquire
            r.text = "A" + std::to_string(i.duration);
        },
        ti.inst);
    records.push_back(std::move(r));
  }
  // Canonical order: (t0, channel), stable within a channel. Instructions on
  // distinct channels at one t0 commute (independent frames, additive drive
  // terms), so interleaving differences across channels must not change the
  // key; same-channel order is semantics (SetPhase then ShiftPhase != the
  // reverse) and is preserved.
  std::stable_sort(records.begin(), records.end(), [](const Record& a, const Record& b) {
    return std::tie(a.t0, a.channel) < std::tie(b.t0, b.channel);
  });

  std::uint64_t h = 1469598103934665603ull;  // FNV-1a offset basis
  auto mix = [&h](const std::string& s) {
    for (const char c : s) {
      h ^= static_cast<unsigned char>(c);
      h *= 1099511628211ull;  // FNV prime
    }
  };
  for (const Record& r : records) {
    mix(std::to_string(r.t0));
    mix(r.channel.str());
    mix(r.text);
    mix(";");
  }
  return h;
}

void Schedule::keep_sorted() {
  std::stable_sort(instructions_.begin(), instructions_.end(),
                   [](const TimedInstruction& a, const TimedInstruction& b) { return a.t0 < b.t0; });
}

std::string Schedule::draw() const {
  std::ostringstream os;
  os << "Schedule";
  if (!name_.empty()) os << " '" << name_ << "'";
  os << " (duration " << duration() << "dt)\n";
  const double scale = duration() > 96 ? 96.0 / duration() : 1.0;
  for (const Channel& c : channels()) {
    os << "  " << c.str() << ": ";
    std::string row(static_cast<std::size_t>(duration() * scale) + 1, '.');
    for (const TimedInstruction& ti : instructions_) {
      if (!(instruction_channel(ti.inst) == c)) continue;
      const int t0 = static_cast<int>(ti.t0 * scale);
      const int d = instruction_duration(ti.inst);
      if (d == 0) {
        char mark = '|';
        if (std::holds_alternative<ShiftPhase>(ti.inst) ||
            std::holds_alternative<SetPhase>(ti.inst))
          mark = 'z';
        if (std::holds_alternative<ShiftFrequency>(ti.inst) ||
            std::holds_alternative<SetFrequency>(ti.inst))
          mark = 'f';
        if (static_cast<std::size_t>(t0) < row.size()) row[static_cast<std::size_t>(t0)] = mark;
        continue;
      }
      const int span = std::max(1, static_cast<int>(d * scale));
      const char fill = std::holds_alternative<Play>(ti.inst) ? '#' : '_';
      for (int t = t0; t < t0 + span && static_cast<std::size_t>(t) < row.size(); ++t)
        row[static_cast<std::size_t>(t)] = fill;
    }
    os << row << "\n";
  }
  return os.str();
}

}  // namespace hgp::pulse
