#pragma once

#include <cstddef>
#include <string>
#include <tuple>

namespace hgp::pulse {

/// IBM-style pulse channels. DriveChannel(q) carries single-qubit microwave
/// drive for qubit q; ControlChannel(u) carries the cross-resonance drive of
/// one directed coupled pair (the backend owns the u -> (control, target)
/// map); MeasureChannel/AcquireChannel model readout.
enum class ChannelType { Drive, Control, Measure, Acquire };

struct Channel {
  ChannelType type = ChannelType::Drive;
  std::size_t index = 0;

  static Channel drive(std::size_t q) { return {ChannelType::Drive, q}; }
  static Channel control(std::size_t u) { return {ChannelType::Control, u}; }
  static Channel measure(std::size_t q) { return {ChannelType::Measure, q}; }
  static Channel acquire(std::size_t q) { return {ChannelType::Acquire, q}; }

  std::string str() const {
    static const char* prefix[] = {"d", "u", "m", "a"};
    return std::string(prefix[static_cast<int>(type)]) + std::to_string(index);
  }

  friend bool operator==(const Channel& a, const Channel& b) {
    return a.type == b.type && a.index == b.index;
  }
  friend bool operator<(const Channel& a, const Channel& b) {
    return std::tie(a.type, a.index) < std::tie(b.type, b.index);
  }
};

}  // namespace hgp::pulse
