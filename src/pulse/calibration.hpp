#pragma once

#include <map>
#include <utility>
#include <vector>

#include "pulse/schedule.hpp"

namespace hgp::pulse {

/// Per-qubit single-qubit gate calibration. SX/X are DRAG pulses on the
/// drive channel with amplitude fixed analytically from the drive rate:
/// rotation angle = 2π · rate · amp · area(unit envelope).
struct QubitCalibration {
  double drive_rate_ghz = 0.11;
  int sx_duration = 160;  // dt samples; 2 SX pulses = the paper's 320dt mixer
  double sx_sigma = 40.0;
  double drag_beta = 0.0;  // 2-level model: no leakage level, so calibrated DRAG beta is 0
  int readout_duration = 3400;  // dt samples (overridden per backend)
};

/// Per-directed-pair cross-resonance calibration (effective Hamiltonian
/// coefficients in GHz plus the echo pulse geometry).
struct CrCalibration {
  double mu_zx_ghz = 0.0030;
  double mu_ix_ghz = 0.0006;
  double mu_zi_ghz = 0.0009;
  int cr_duration = 704;  // per echo half, dt samples
  double cr_sigma = 64.0;
  double cr_width = 448.0;
};

/// Analytic gate -> schedule calibrations on physical qubits/channels,
/// mirroring an IBM backend's instruction schedule map. Virtual RZ is a
/// ShiftPhase(-angle) on the qubit's drive channel and on every control
/// channel targeting that qubit (the CR drive lives in the target's frame).
class CalibrationSet {
 public:
  CalibrationSet() = default;

  void set_qubit(std::size_t q, QubitCalibration cal);
  /// Register the directed control channel u for (control, target).
  void set_cr(std::size_t control, std::size_t target, std::size_t u_index, CrCalibration cal);

  const QubitCalibration& qubit(std::size_t q) const;
  const CrCalibration& cr(std::size_t control, std::size_t target) const;
  std::size_t control_channel(std::size_t control, std::size_t target) const;
  bool has_cr(std::size_t control, std::size_t target) const;
  /// Control channels whose CR target is q (these follow q's frame).
  std::vector<std::size_t> control_channels_targeting(std::size_t q) const;

  /// Analytic SX amplitude for qubit q (rotation π/2).
  double sx_amp(std::size_t q) const;
  /// Analytic per-half CR amplitude for an echoed ZX(theta).
  double cr_amp(std::size_t control, std::size_t target, double theta) const;

  // ----- schedule builders (all on physical channels) -----
  /// Virtual RZ(angle) on q: phase shifts only, zero duration.
  Schedule rz(std::size_t q, double angle) const;
  Schedule sx(std::size_t q) const;
  Schedule x(std::size_t q) const;
  /// Direct RX(theta) as a single amplitude-scaled DRAG pulse (the
  /// pulse-efficient form; |theta| <= pi).
  Schedule rx_direct(std::size_t q, double theta) const;
  /// Echoed cross-resonance exp(-i theta/2 ZX): CR(+), X(c), CR(-), X(c),
  /// with the analytic virtual-RZ correction of the residual ZI term.
  Schedule ecr(std::size_t control, std::size_t target, double theta) const;
  /// CX via ECR: CX = RZ_c(-pi/2) · RX_t(-pi/2) · ZX(pi/2) (global phase
  /// dropped).
  Schedule cx(std::size_t control, std::size_t target) const;
  /// Pulse-efficient RZZ(theta) = (I⊗H) ZX(theta) (I⊗H), one echo instead
  /// of the two CX of the gate-level decomposition.
  Schedule rzz_direct(std::size_t control, std::size_t target, double theta) const;
  /// Readout: measure-channel stimulus plus acquire window.
  Schedule measure(const std::vector<std::size_t>& qubits) const;

  /// Net frame phase accumulated by ShiftPhase instructions on q's drive
  /// channel in a schedule. The exact block unitary of a lowered schedule is
  /// (⊗_q RZ(-shift_q)) · U_schedule; executors use this to undo the
  /// deferred virtual-Z frames.
  static double drive_phase_shift(const Schedule& sched, std::size_t q);

 private:
  std::map<std::size_t, QubitCalibration> qubits_;
  std::map<std::pair<std::size_t, std::size_t>, std::size_t> cr_channel_;
  std::map<std::pair<std::size_t, std::size_t>, CrCalibration> cr_cal_;
};

}  // namespace hgp::pulse
