#pragma once

#include <cstdint>
#include <map>
#include <string>
#include <variant>
#include <vector>

#include "pulse/channels.hpp"
#include "pulse/shapes.hpp"

namespace hgp::pulse {

// ----- instruction set -----

/// Emit a pulse envelope on a channel.
struct Play {
  PulseShape shape;
  Channel channel;
};
/// Idle a channel for `duration` samples.
struct Delay {
  int duration = 0;
  Channel channel;
};
/// Add to the channel's frame phase (virtual-Z is a ShiftPhase on the drive
/// channel; zero duration).
struct ShiftPhase {
  double phase = 0.0;
  Channel channel;
};
struct SetPhase {
  double phase = 0.0;
  Channel channel;
};
/// Add to the channel's frequency offset (GHz, relative to the calibrated
/// channel frequency). The paper's mixer ansatz trains this within ±0.1 GHz.
struct ShiftFrequency {
  double freq_ghz = 0.0;
  Channel channel;
};
struct SetFrequency {
  double freq_ghz = 0.0;
  Channel channel;
};
/// Readout acquisition window on qubit `qubit`.
struct Acquire {
  int duration = 0;
  std::size_t qubit = 0;
};

using Instruction =
    std::variant<Play, Delay, ShiftPhase, SetPhase, ShiftFrequency, SetFrequency, Acquire>;

/// Channel an instruction addresses (Acquire reports its qubit's acquire
/// channel) and its duration in samples (0 for frame instructions).
Channel instruction_channel(const Instruction& inst);
int instruction_duration(const Instruction& inst);

struct TimedInstruction {
  int t0 = 0;
  Instruction inst;
};

/// A pulse program: instructions with explicit start times, one timeline per
/// channel. append() places an instruction at the current end of its channel;
/// merge/compose align whole schedules.
class Schedule {
 public:
  Schedule() = default;
  explicit Schedule(std::string name) : name_(std::move(name)) {}

  const std::string& name() const { return name_; }
  void set_name(std::string n) { name_ = std::move(n); }

  bool empty() const { return instructions_.empty(); }
  std::size_t size() const { return instructions_.size(); }
  const std::vector<TimedInstruction>& instructions() const { return instructions_; }

  /// Total duration (max channel end time), in dt samples.
  int duration() const;
  /// End time of one channel.
  int channel_duration(const Channel& c) const;
  /// All channels referenced.
  std::vector<Channel> channels() const;

  /// Schedule `inst` at the end of its channel's timeline.
  Schedule& append(Instruction inst);
  /// Schedule `inst` at an explicit time.
  Schedule& insert(int t0, Instruction inst);
  /// Insert all of `other` shifted by t0.
  Schedule& insert(int t0, const Schedule& other);
  /// Append `other` after this schedule's full duration (barrier-like
  /// alignment across all channels).
  Schedule& append_sequential(const Schedule& other);
  /// Append `other` as early as possible: each of other's channels starts at
  /// the max end-time of the channels other uses (per-channel alignment).
  Schedule& append_aligned(const Schedule& other);

  /// Left-align: shift every instruction so the earliest starts at t = 0.
  Schedule& left_align();

  /// Number of Play instructions (a proxy for "pulse count" error costing).
  std::size_t play_count() const;

  /// Canonical content fingerprint of the pulse program: a 64-bit FNV-1a
  /// hash over start times, channels, instruction kinds, durations, and
  /// exact (hexfloat) shape/frame parameters — the same collision
  /// discipline as the executor's hexfloat gate-theta keys, so a parametric
  /// schedule rebound at a nearby amplitude never reuses another angle's
  /// slot. Order-stable: instructions are canonically ordered by
  /// (t0, channel) while preserving same-channel program order (the only
  /// order with physical meaning), so schedules assembled by different
  /// append sequences fingerprint identically iff they realize the same
  /// program. The name is cosmetic and excluded.
  std::uint64_t fingerprint() const;

  /// Multi-line ASCII rendering: one row per channel with pulse boxes.
  std::string draw() const;

 private:
  void keep_sorted();

  std::string name_;
  std::vector<TimedInstruction> instructions_;
  std::map<Channel, int> channel_end_;
};

}  // namespace hgp::pulse
