#include "pulse/calibration.hpp"

#include <cmath>

#include "common/error.hpp"
#include "linalg/types.hpp"

namespace hgp::pulse {

void CalibrationSet::set_qubit(std::size_t q, QubitCalibration cal) { qubits_[q] = cal; }

void CalibrationSet::set_cr(std::size_t control, std::size_t target, std::size_t u_index,
                            CrCalibration cal) {
  cr_channel_[{control, target}] = u_index;
  cr_cal_[{control, target}] = cal;
}

const QubitCalibration& CalibrationSet::qubit(std::size_t q) const {
  const auto it = qubits_.find(q);
  HGP_REQUIRE(it != qubits_.end(), "CalibrationSet: qubit not calibrated");
  return it->second;
}

const CrCalibration& CalibrationSet::cr(std::size_t control, std::size_t target) const {
  const auto it = cr_cal_.find({control, target});
  HGP_REQUIRE(it != cr_cal_.end(), "CalibrationSet: pair has no CR calibration");
  return it->second;
}

std::size_t CalibrationSet::control_channel(std::size_t control, std::size_t target) const {
  const auto it = cr_channel_.find({control, target});
  HGP_REQUIRE(it != cr_channel_.end(), "CalibrationSet: pair has no control channel");
  return it->second;
}

bool CalibrationSet::has_cr(std::size_t control, std::size_t target) const {
  return cr_cal_.count({control, target}) > 0;
}

std::vector<std::size_t> CalibrationSet::control_channels_targeting(std::size_t q) const {
  std::vector<std::size_t> out;
  for (const auto& [pair, u] : cr_channel_)
    if (pair.second == q) out.push_back(u);
  return out;
}

double CalibrationSet::sx_amp(std::size_t q) const {
  const QubitCalibration& c = qubit(q);
  const PulseShape unit =
      PulseShape::drag(c.sx_duration, 1.0, c.sx_sigma, c.drag_beta);
  // angle = 2π * rate * amp * area  ->  amp for a π/2 rotation.
  return 0.25 / (c.drive_rate_ghz * unit.area_ns());
}

double CalibrationSet::cr_amp(std::size_t control, std::size_t target, double theta) const {
  const CrCalibration& c = cr(control, target);
  const PulseShape unit =
      PulseShape::gaussian_square(c.cr_duration, 1.0, c.cr_sigma, c.cr_width);
  // Echoed ZX(theta): each half rotates by theta/2 in the exp(-i a/2 ZX)
  // convention, so 2π * mu_zx * amp * area = theta / 2.
  return std::abs(theta) / (4.0 * la::kPi * c.mu_zx_ghz * unit.area_ns());
}

Schedule CalibrationSet::rz(std::size_t q, double angle) const {
  Schedule s("rz");
  s.append(ShiftPhase{-angle, Channel::drive(q)});
  for (std::size_t u : control_channels_targeting(q))
    s.append(ShiftPhase{-angle, Channel::control(u)});
  return s;
}

Schedule CalibrationSet::sx(std::size_t q) const {
  const QubitCalibration& c = qubit(q);
  Schedule s("sx");
  s.append(Play{PulseShape::drag(c.sx_duration, sx_amp(q), c.sx_sigma, c.drag_beta),
                Channel::drive(q)});
  return s;
}

Schedule CalibrationSet::x(std::size_t q) const {
  const QubitCalibration& c = qubit(q);
  Schedule s("x");
  s.append(Play{PulseShape::drag(c.sx_duration, 2.0 * sx_amp(q), c.sx_sigma, c.drag_beta),
                Channel::drive(q)});
  return s;
}

Schedule CalibrationSet::rx_direct(std::size_t q, double theta) const {
  HGP_REQUIRE(std::abs(theta) <= la::kPi + 1e-9, "rx_direct: |theta| must be <= pi");
  const QubitCalibration& c = qubit(q);
  const double amp = sx_amp(q) * std::abs(theta) / (la::kPi / 2.0);
  const double angle = theta >= 0.0 ? 0.0 : la::kPi;
  Schedule s("rx");
  s.append(Play{PulseShape::drag(c.sx_duration, amp, c.sx_sigma, c.drag_beta, angle),
                Channel::drive(q)});
  return s;
}

Schedule CalibrationSet::ecr(std::size_t control, std::size_t target, double theta) const {
  const CrCalibration& c = cr(control, target);
  const std::size_t u = control_channel(control, target);
  const double amp = cr_amp(control, target, theta);
  HGP_REQUIRE(amp <= 1.0, "ecr: requested angle needs amplitude > 1; widen the CR pulse");
  const double sign_angle = theta >= 0.0 ? 0.0 : la::kPi;

  const PulseShape cr_plus =
      PulseShape::gaussian_square(c.cr_duration, amp, c.cr_sigma, c.cr_width, sign_angle);
  const PulseShape cr_minus = cr_plus.with_angle(sign_angle + la::kPi);

  Schedule s("ecr");
  Schedule half1("cr+");
  half1.append(Play{cr_plus, Channel::control(u)});
  Schedule half2("cr-");
  half2.append(Play{cr_minus, Channel::control(u)});

  s.append_sequential(half1);
  s.append_sequential(x(control));
  s.append_sequential(half2);
  s.append_sequential(x(control));
  // Both the linear IX term and the quadratic ZI Stark shift cancel exactly
  // across the X-conjugated halves (all effective CR terms commute), so no
  // residual virtual-RZ correction is needed for the echoed gate.
  return s;
}

Schedule CalibrationSet::cx(std::size_t control, std::size_t target) const {
  // CX = RZ_c(-π/2) · RX_t(-π/2) · ZX(π/2), up to global phase.
  Schedule s("cx");
  s.append_sequential(ecr(control, target, la::kPi / 2.0));
  s.append_sequential(rx_direct(target, -la::kPi / 2.0));
  s.append_sequential(rz(control, -la::kPi / 2.0));
  return s;
}

Schedule CalibrationSet::rzz_direct(std::size_t control, std::size_t target,
                                    double theta) const {
  // RZZ(θ) = (I⊗H) · ZX(θ) · (I⊗H); H = RZ(π/2)·SX·RZ(π/2) up to phase.
  Schedule h("h");
  h.append_sequential(rz(target, la::kPi / 2.0));
  h.append_sequential(sx(target));
  h.append_sequential(rz(target, la::kPi / 2.0));

  Schedule s("rzz");
  s.append_sequential(h);
  s.append_sequential(ecr(control, target, theta));
  s.append_sequential(h);
  return s;
}

Schedule CalibrationSet::measure(const std::vector<std::size_t>& qubits) const {
  Schedule s("measure");
  for (std::size_t q : qubits) {
    const QubitCalibration& c = qubit(q);
    s.insert(0, Play{PulseShape::gaussian_square(c.readout_duration, 0.2, 64.0,
                                                 c.readout_duration - 256.0),
                     Channel::measure(q)});
    s.insert(0, Acquire{c.readout_duration, q});
  }
  return s;
}

double CalibrationSet::drive_phase_shift(const Schedule& sched, std::size_t q) {
  double total = 0.0;
  for (const TimedInstruction& ti : sched.instructions()) {
    if (const auto* sp = std::get_if<ShiftPhase>(&ti.inst))
      if (sp->channel == Channel::drive(q)) total += sp->phase;
  }
  return total;
}

}  // namespace hgp::pulse
