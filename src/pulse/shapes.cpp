#include "pulse/shapes.hpp"

#include <cmath>
#include <cstdio>
#include <sstream>

#include "common/error.hpp"

namespace hgp::pulse {

using la::cxd;

namespace {
void check_common(int duration, double amp, double sigma) {
  HGP_REQUIRE(duration > 0, "PulseShape: non-positive duration");
  HGP_REQUIRE(std::abs(amp) <= 1.0 + 1e-9, "PulseShape: |amp| must be <= 1");
  HGP_REQUIRE(sigma > 0.0, "PulseShape: sigma must be positive");
}

/// Lifted Gaussian g(t) with center c and width s: rescaled so that
/// g(-1) = g(duration) = 0 and the peak stays at 1.
double lifted_gaussian(double t, double c, double s, double edge) {
  const double g = std::exp(-0.5 * (t - c) * (t - c) / (s * s));
  const double g0 = std::exp(-0.5 * (edge - c) * (edge - c) / (s * s));
  return (g - g0) / (1.0 - g0);
}
}  // namespace

PulseShape PulseShape::gaussian(int duration, double amp, double sigma, double angle) {
  check_common(duration, amp, sigma);
  PulseShape p;
  p.kind_ = ShapeKind::Gaussian;
  p.duration_ = duration;
  p.amp_ = amp;
  p.sigma_ = sigma;
  p.angle_ = angle;
  return p;
}

PulseShape PulseShape::gaussian_square(int duration, double amp, double sigma, double width,
                                       double angle) {
  check_common(duration, amp, sigma);
  HGP_REQUIRE(width >= 0.0 && width <= duration, "PulseShape: bad flat-top width");
  PulseShape p;
  p.kind_ = ShapeKind::GaussianSquare;
  p.duration_ = duration;
  p.amp_ = amp;
  p.sigma_ = sigma;
  p.width_ = width;
  p.angle_ = angle;
  return p;
}

PulseShape PulseShape::drag(int duration, double amp, double sigma, double beta, double angle) {
  check_common(duration, amp, sigma);
  PulseShape p;
  p.kind_ = ShapeKind::Drag;
  p.duration_ = duration;
  p.amp_ = amp;
  p.sigma_ = sigma;
  p.beta_ = beta;
  p.angle_ = angle;
  return p;
}

PulseShape PulseShape::constant(int duration, double amp, double angle) {
  HGP_REQUIRE(duration > 0, "PulseShape: non-positive duration");
  HGP_REQUIRE(std::abs(amp) <= 1.0 + 1e-9, "PulseShape: |amp| must be <= 1");
  PulseShape p;
  p.kind_ = ShapeKind::Constant;
  p.duration_ = duration;
  p.amp_ = amp;
  p.angle_ = angle;
  return p;
}

cxd PulseShape::sample(int t) const {
  if (t < 0 || t >= duration_) return cxd{0.0, 0.0};
  const cxd rot = std::polar(1.0, angle_);
  switch (kind_) {
    case ShapeKind::Constant:
      return amp_ * rot;
    case ShapeKind::Gaussian: {
      const double c = 0.5 * (duration_ - 1);
      return amp_ * lifted_gaussian(t, c, sigma_, -1.0) * rot;
    }
    case ShapeKind::Drag: {
      const double c = 0.5 * (duration_ - 1);
      const double g = lifted_gaussian(t, c, sigma_, -1.0);
      // DRAG quadrature: beta * dg/dt (derivative of the unlifted Gaussian).
      const double dg = -(t - c) / (sigma_ * sigma_) *
                        std::exp(-0.5 * (t - c) * (t - c) / (sigma_ * sigma_));
      return amp_ * (g + cxd{0.0, 1.0} * beta_ * dg) * rot;
    }
    case ShapeKind::GaussianSquare: {
      const double rise = 0.5 * (duration_ - width_);
      double v = 0.0;
      if (t < rise) {
        v = lifted_gaussian(t, rise, sigma_, -1.0);
      } else if (t < rise + width_) {
        v = 1.0;
      } else {
        v = lifted_gaussian(t, rise + width_, sigma_, static_cast<double>(duration_));
      }
      return amp_ * v * rot;
    }
  }
  return cxd{0.0, 0.0};
}

std::vector<cxd> PulseShape::samples() const {
  std::vector<cxd> out(static_cast<std::size_t>(duration_));
  for (int t = 0; t < duration_; ++t) out[static_cast<std::size_t>(t)] = sample(t);
  return out;
}

double PulseShape::area_ns() const {
  cxd s{0.0, 0.0};
  for (int t = 0; t < duration_; ++t) s += sample(t);
  return std::abs(s) * kDtNs;
}

double PulseShape::area_sq_ns() const {
  double s = 0.0;
  for (int t = 0; t < duration_; ++t) s += std::norm(sample(t));
  return s * kDtNs;
}

PulseShape PulseShape::with_amp(double amp) const {
  PulseShape p = *this;
  HGP_REQUIRE(std::abs(amp) <= 1.0 + 1e-9, "with_amp: |amp| must be <= 1");
  p.amp_ = amp;
  return p;
}

PulseShape PulseShape::with_angle(double angle) const {
  PulseShape p = *this;
  p.angle_ = angle;
  return p;
}

PulseShape PulseShape::with_duration(int duration) const {
  HGP_REQUIRE(duration > 0, "with_duration: non-positive duration");
  PulseShape p = *this;
  const double ratio = static_cast<double>(duration) / duration_;
  p.duration_ = duration;
  p.sigma_ = sigma_ * ratio;
  p.width_ = width_ * ratio;
  return p;
}

std::string PulseShape::key_str() const {
  // One hexfloat ("%a") field per parameter: bitwise-exact round trip, so a
  // fingerprint built from this never merges distinct envelopes.
  char buf[160];
  std::snprintf(buf, sizeof(buf), "k%d,d%d,%a,%a,%a,%a,%a", static_cast<int>(kind_),
                duration_, amp_, sigma_, width_, beta_, angle_);
  return buf;
}

std::string PulseShape::str() const {
  static const char* names[] = {"Gaussian", "GaussianSquare", "Drag", "Constant"};
  std::ostringstream os;
  os << names[static_cast<int>(kind_)] << "(dur=" << duration_ << "dt, amp=" << amp_;
  if (kind_ != ShapeKind::Constant) os << ", sigma=" << sigma_;
  if (kind_ == ShapeKind::GaussianSquare) os << ", width=" << width_;
  if (kind_ == ShapeKind::Drag) os << ", beta=" << beta_;
  if (angle_ != 0.0) os << ", angle=" << angle_;
  os << ")";
  return os.str();
}

}  // namespace hgp::pulse
