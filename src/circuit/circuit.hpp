#pragma once

#include <cstddef>
#include <string>
#include <vector>

#include "circuit/gates.hpp"
#include "circuit/param.hpp"

namespace hgp::qc {

/// One circuit operation: a gate kind, the qubits it acts on (in the order
/// the gate matrix expects), and its (possibly symbolic) parameters.
struct Op {
  GateKind kind = GateKind::I;
  std::vector<std::size_t> qubits;
  std::vector<Param> params;

  bool is_parameterized() const {
    for (const Param& p : params)
      if (!p.is_constant()) return true;
    return false;
  }
  /// Bound parameter values; all params must be constant.
  std::vector<double> constant_params() const;
};

/// A quantum circuit over n qubits: an ordered list of Ops plus a symbolic
/// parameter space (theta vector) referenced by the ops' Params.
class Circuit {
 public:
  Circuit() = default;
  explicit Circuit(std::size_t num_qubits) : num_qubits_(num_qubits) {}

  std::size_t num_qubits() const { return num_qubits_; }
  std::size_t size() const { return ops_.size(); }
  const std::vector<Op>& ops() const { return ops_; }
  std::vector<Op>& ops() { return ops_; }

  /// Number of symbolic parameters (1 + the largest Param index used).
  std::size_t num_parameters() const;
  /// Count of gates with at least two qubits.
  std::size_t count_2q() const;
  /// Count of a specific kind.
  std::size_t count(GateKind k) const;
  /// Circuit depth (longest chain of ops sharing qubits; barriers block all).
  std::size_t depth() const;

  void append(Op op);
  /// Append another circuit's ops (same width required).
  void compose(const Circuit& other);

  // ----- builder helpers -----
  Circuit& i(std::size_t q) { return add1(GateKind::I, q); }
  Circuit& x(std::size_t q) { return add1(GateKind::X, q); }
  Circuit& y(std::size_t q) { return add1(GateKind::Y, q); }
  Circuit& z(std::size_t q) { return add1(GateKind::Z, q); }
  Circuit& h(std::size_t q) { return add1(GateKind::H, q); }
  Circuit& s(std::size_t q) { return add1(GateKind::S, q); }
  Circuit& sdg(std::size_t q) { return add1(GateKind::Sdg, q); }
  Circuit& t(std::size_t q) { return add1(GateKind::T, q); }
  Circuit& tdg(std::size_t q) { return add1(GateKind::Tdg, q); }
  Circuit& sx(std::size_t q) { return add1(GateKind::SX, q); }
  Circuit& sxdg(std::size_t q) { return add1(GateKind::SXdg, q); }
  Circuit& rx(std::size_t q, Param angle) { return add1p(GateKind::RX, q, angle); }
  Circuit& ry(std::size_t q, Param angle) { return add1p(GateKind::RY, q, angle); }
  Circuit& rz(std::size_t q, Param angle) { return add1p(GateKind::RZ, q, angle); }
  Circuit& p(std::size_t q, Param angle) { return add1p(GateKind::P, q, angle); }
  Circuit& rx(std::size_t q, double a) { return rx(q, Param::constant(a)); }
  Circuit& ry(std::size_t q, double a) { return ry(q, Param::constant(a)); }
  Circuit& rz(std::size_t q, double a) { return rz(q, Param::constant(a)); }
  Circuit& u3(std::size_t q, Param theta, Param phi, Param lam);
  Circuit& cx(std::size_t control, std::size_t target);
  Circuit& cz(std::size_t a, std::size_t b);
  Circuit& swap(std::size_t a, std::size_t b);
  Circuit& rzz(std::size_t a, std::size_t b, Param angle);
  Circuit& rzz(std::size_t a, std::size_t b, double angle) {
    return rzz(a, b, Param::constant(angle));
  }
  Circuit& rxx(std::size_t a, std::size_t b, Param angle);
  Circuit& barrier();
  /// Timed idle of `duration_dt` samples on one qubit (used by DD).
  Circuit& delay(std::size_t q, int duration_dt);

  /// New circuit with every symbolic parameter replaced by its value under
  /// `theta`.
  Circuit bound(const std::vector<double>& theta) const;
  /// Adjoint circuit (constant parameters only).
  Circuit inverse() const;

  /// One-line textual summary.
  std::string str() const;

 private:
  Circuit& add1(GateKind k, std::size_t q);
  Circuit& add1p(GateKind k, std::size_t q, Param p);
  void check_qubit(std::size_t q) const;

  std::size_t num_qubits_ = 0;
  std::vector<Op> ops_;
};

}  // namespace hgp::qc
