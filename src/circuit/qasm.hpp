#pragma once

#include <string>

#include "circuit/circuit.hpp"

namespace hgp::qc {

/// Serialize a (bound) circuit to OpenQASM 2.0 text. Symbolic parameters are
/// rejected — bind first.
std::string to_qasm(const Circuit& c);

/// Parse the subset of OpenQASM 2.0 emitted by to_qasm (one register, the
/// hgp gate vocabulary, numeric parameters with an optional "pi" literal).
Circuit from_qasm(const std::string& text);

}  // namespace hgp::qc
