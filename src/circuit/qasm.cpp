#include "circuit/qasm.hpp"

#include <cctype>
#include <cmath>
#include <iomanip>
#include <map>
#include <sstream>

#include "common/error.hpp"
#include "linalg/types.hpp"

namespace hgp::qc {

std::string to_qasm(const Circuit& c) {
  std::ostringstream os;
  os << "OPENQASM 2.0;\n";
  os << "include \"qelib1.inc\";\n";
  os << "qreg q[" << c.num_qubits() << "];\n";
  os << "creg m[" << c.num_qubits() << "];\n";
  os << std::setprecision(17);
  for (const Op& op : c.ops()) {
    if (op.kind == GateKind::Barrier) {
      os << "barrier q;\n";
      continue;
    }
    if (op.kind == GateKind::Measure) {
      os << "measure q -> m;\n";
      continue;
    }
    os << gate_name(op.kind);
    if (!op.params.empty()) {
      os << "(";
      for (std::size_t i = 0; i < op.params.size(); ++i) {
        HGP_REQUIRE(op.params[i].is_constant(), "to_qasm: circuit has unbound parameters");
        os << (i ? "," : "") << op.params[i].value();
      }
      os << ")";
    }
    os << " ";
    for (std::size_t i = 0; i < op.qubits.size(); ++i)
      os << (i ? "," : "") << "q[" << op.qubits[i] << "]";
    os << ";\n";
  }
  return os.str();
}

namespace {

const std::map<std::string, GateKind>& name_table() {
  static const std::map<std::string, GateKind> table = {
      {"id", GateKind::I},     {"x", GateKind::X},       {"y", GateKind::Y},
      {"z", GateKind::Z},      {"h", GateKind::H},       {"s", GateKind::S},
      {"sdg", GateKind::Sdg},  {"t", GateKind::T},       {"tdg", GateKind::Tdg},
      {"sx", GateKind::SX},    {"sxdg", GateKind::SXdg}, {"rx", GateKind::RX},
      {"ry", GateKind::RY},    {"rz", GateKind::RZ},     {"p", GateKind::P},
      {"u3", GateKind::U3},    {"cx", GateKind::CX},     {"cz", GateKind::CZ},
      {"swap", GateKind::SWAP}, {"rzz", GateKind::RZZ},  {"rxx", GateKind::RXX},
      {"delay", GateKind::Delay}};
  return table;
}

/// Evaluate a numeric expression of the form [-]number[*pi][/number] or
/// "pi/2" style literals.
double parse_number(std::string s) {
  // Trim whitespace.
  auto trim = [](std::string& x) {
    while (!x.empty() && std::isspace(static_cast<unsigned char>(x.front()))) x.erase(x.begin());
    while (!x.empty() && std::isspace(static_cast<unsigned char>(x.back()))) x.pop_back();
  };
  trim(s);
  double sign = 1.0;
  if (!s.empty() && s[0] == '-') {
    sign = -1.0;
    s.erase(s.begin());
    trim(s);
  }
  double denom = 1.0;
  if (auto pos = s.find('/'); pos != std::string::npos) {
    denom = std::stod(s.substr(pos + 1));
    s = s.substr(0, pos);
    trim(s);
  }
  double value = 0.0;
  if (auto pos = s.find("pi"); pos != std::string::npos) {
    std::string pre = s.substr(0, pos);
    if (auto star = pre.find('*'); star != std::string::npos) pre = pre.substr(0, star);
    trim(pre);
    const double factor = pre.empty() ? 1.0 : std::stod(pre);
    value = factor * la::kPi;
  } else {
    value = std::stod(s);
  }
  return sign * value / denom;
}

}  // namespace

Circuit from_qasm(const std::string& text) {
  std::istringstream is(text);
  std::string line;
  Circuit circuit;
  bool have_qreg = false;

  while (std::getline(is, line)) {
    // Strip comments and whitespace.
    if (auto pos = line.find("//"); pos != std::string::npos) line = line.substr(0, pos);
    std::string s;
    for (char ch : line) s += ch;
    while (!s.empty() && std::isspace(static_cast<unsigned char>(s.front()))) s.erase(s.begin());
    while (!s.empty() && (std::isspace(static_cast<unsigned char>(s.back())) || s.back() == ';'))
      s.pop_back();
    if (s.empty()) continue;
    if (s.rfind("OPENQASM", 0) == 0 || s.rfind("include", 0) == 0 || s.rfind("creg", 0) == 0 ||
        s.rfind("barrier", 0) == 0 || s.rfind("measure", 0) == 0)
      continue;
    if (s.rfind("qreg", 0) == 0) {
      const auto lb = s.find('['), rb = s.find(']');
      HGP_REQUIRE(lb != std::string::npos && rb != std::string::npos, "from_qasm: bad qreg");
      circuit = Circuit(static_cast<std::size_t>(std::stoul(s.substr(lb + 1, rb - lb - 1))));
      have_qreg = true;
      continue;
    }
    HGP_REQUIRE(have_qreg, "from_qasm: gate before qreg");

    // Gate name [ '(' params ')' ] qubit list.
    std::size_t i = 0;
    while (i < s.size() && (std::isalnum(static_cast<unsigned char>(s[i])) || s[i] == '_')) ++i;
    const std::string name = s.substr(0, i);
    const auto it = name_table().find(name);
    HGP_REQUIRE(it != name_table().end(), "from_qasm: unknown gate '" + name + "'");

    std::vector<Param> params;
    if (i < s.size() && s[i] == '(') {
      const auto close = s.find(')', i);
      HGP_REQUIRE(close != std::string::npos, "from_qasm: unbalanced parens");
      std::string plist = s.substr(i + 1, close - i - 1);
      std::istringstream ps(plist);
      std::string tok;
      while (std::getline(ps, tok, ','))
        params.push_back(Param::constant(parse_number(tok)));
      i = close + 1;
    }

    std::vector<std::size_t> qubits;
    std::string rest = s.substr(i);
    std::size_t pos = 0;
    while ((pos = rest.find('[', pos)) != std::string::npos) {
      const auto rb = rest.find(']', pos);
      HGP_REQUIRE(rb != std::string::npos, "from_qasm: bad qubit ref");
      qubits.push_back(static_cast<std::size_t>(std::stoul(rest.substr(pos + 1, rb - pos - 1))));
      pos = rb + 1;
    }

    circuit.append(Op{it->second, std::move(qubits), std::move(params)});
  }
  return circuit;
}

}  // namespace hgp::qc
