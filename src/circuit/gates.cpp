#include "circuit/gates.hpp"

#include <cmath>

#include "common/error.hpp"
#include "linalg/types.hpp"

namespace hgp::qc {

using la::cxd;
using la::CMat;

std::size_t gate_arity(GateKind k) {
  switch (k) {
    case GateKind::CX:
    case GateKind::CZ:
    case GateKind::SWAP:
    case GateKind::RZZ:
    case GateKind::RXX:
      return 2;
    case GateKind::Barrier:
    case GateKind::Measure:
      return 0;
    default:
      return 1;
  }
}

std::size_t gate_num_params(GateKind k) {
  switch (k) {
    case GateKind::RX:
    case GateKind::RY:
    case GateKind::RZ:
    case GateKind::P:
    case GateKind::RZZ:
    case GateKind::RXX:
      return 1;
    case GateKind::U3:
      return 3;
    case GateKind::Delay:
      return 1;
    default:
      return 0;
  }
}

const std::string& gate_name(GateKind k) {
  static const std::string names[] = {"id",  "x",  "y",    "z",   "h",   "s",     "sdg",
                                      "t",   "tdg", "sx",  "sxdg", "rx", "ry",    "rz",
                                      "p",   "u3",  "cx",  "cz",   "swap", "rzz", "rxx",
                                      "delay", "barrier", "measure"};
  return names[static_cast<int>(k)];
}

GateKind gate_inverse_kind(GateKind k) {
  switch (k) {
    case GateKind::S: return GateKind::Sdg;
    case GateKind::Sdg: return GateKind::S;
    case GateKind::T: return GateKind::Tdg;
    case GateKind::Tdg: return GateKind::T;
    case GateKind::SX: return GateKind::SXdg;
    case GateKind::SXdg: return GateKind::SX;
    default: return k;
  }
}

bool gate_is_diagonal(GateKind k) {
  switch (k) {
    case GateKind::I:
    case GateKind::Z:
    case GateKind::S:
    case GateKind::Sdg:
    case GateKind::T:
    case GateKind::Tdg:
    case GateKind::P:
    case GateKind::RZ:
    case GateKind::RZZ:
    case GateKind::CZ:
      return true;
    default:
      return false;
  }
}

bool gate_is_self_inverse(GateKind k) {
  switch (k) {
    case GateKind::I:
    case GateKind::X:
    case GateKind::Y:
    case GateKind::Z:
    case GateKind::H:
    case GateKind::CX:
    case GateKind::CZ:
    case GateKind::SWAP:
      return true;
    default:
      return false;
  }
}

CMat gate_matrix(GateKind k, const std::vector<double>& params) {
  HGP_REQUIRE(params.size() == gate_num_params(k),
              "gate_matrix: wrong parameter count for " + gate_name(k));
  const cxd i1{0.0, 1.0};
  switch (k) {
    case GateKind::I: return CMat::identity(2);
    case GateKind::X: return CMat{{0, 1}, {1, 0}};
    case GateKind::Y: return CMat{{0, cxd{0, -1}}, {cxd{0, 1}, 0}};
    case GateKind::Z: return CMat{{1, 0}, {0, -1}};
    case GateKind::H: {
      const double s = 1.0 / std::sqrt(2.0);
      return CMat{{s, s}, {s, -s}};
    }
    case GateKind::S: return CMat{{1, 0}, {0, i1}};
    case GateKind::Sdg: return CMat{{1, 0}, {0, -i1}};
    case GateKind::T: return CMat{{1, 0}, {0, std::polar(1.0, la::kPi / 4)}};
    case GateKind::Tdg: return CMat{{1, 0}, {0, std::polar(1.0, -la::kPi / 4)}};
    case GateKind::SX: {
      const cxd a{0.5, 0.5}, b{0.5, -0.5};
      return CMat{{a, b}, {b, a}};
    }
    case GateKind::SXdg: {
      const cxd a{0.5, -0.5}, b{0.5, 0.5};
      return CMat{{a, b}, {b, a}};
    }
    case GateKind::RX: {
      const double c = std::cos(params[0] / 2), s = std::sin(params[0] / 2);
      return CMat{{c, -i1 * s}, {-i1 * s, c}};
    }
    case GateKind::RY: {
      const double c = std::cos(params[0] / 2), s = std::sin(params[0] / 2);
      return CMat{{c, -s}, {s, c}};
    }
    case GateKind::RZ: {
      const cxd em = std::polar(1.0, -params[0] / 2), ep = std::polar(1.0, params[0] / 2);
      return CMat{{em, 0}, {0, ep}};
    }
    case GateKind::P: return CMat{{1, 0}, {0, std::polar(1.0, params[0])}};
    case GateKind::U3: {
      const double t = params[0], phi = params[1], lam = params[2];
      const double c = std::cos(t / 2), s = std::sin(t / 2);
      return CMat{{c, -std::polar(1.0, lam) * s},
                  {std::polar(1.0, phi) * s, std::polar(1.0, phi + lam) * c}};
    }
    case GateKind::CX:
      // Little-endian, first listed qubit (control) = bit 0.
      return CMat{{1, 0, 0, 0}, {0, 0, 0, 1}, {0, 0, 1, 0}, {0, 1, 0, 0}};
    case GateKind::CZ:
      return CMat{{1, 0, 0, 0}, {0, 1, 0, 0}, {0, 0, 1, 0}, {0, 0, 0, -1}};
    case GateKind::SWAP:
      return CMat{{1, 0, 0, 0}, {0, 0, 1, 0}, {0, 1, 0, 0}, {0, 0, 0, 1}};
    case GateKind::RZZ: {
      const cxd em = std::polar(1.0, -params[0] / 2), ep = std::polar(1.0, params[0] / 2);
      CMat m(4, 4);
      m(0, 0) = em;
      m(1, 1) = ep;
      m(2, 2) = ep;
      m(3, 3) = em;
      return m;
    }
    case GateKind::RXX: {
      const double c = std::cos(params[0] / 2), s = std::sin(params[0] / 2);
      CMat m(4, 4);
      m(0, 0) = c;
      m(1, 1) = c;
      m(2, 2) = c;
      m(3, 3) = c;
      m(0, 3) = -i1 * s;
      m(1, 2) = -i1 * s;
      m(2, 1) = -i1 * s;
      m(3, 0) = -i1 * s;
      return m;
    }
    case GateKind::Delay:
      return CMat::identity(2);
    case GateKind::Barrier:
    case GateKind::Measure:
      break;
  }
  throw Error("gate_matrix: gate has no unitary (" + gate_name(k) + ")");
}

}  // namespace hgp::qc
