#pragma once

#include <vector>

#include "common/error.hpp"

namespace hgp::qc {

/// A gate parameter that is either a constant or an affine function of one
/// entry of the circuit's parameter vector: value = offset + scale * theta[i].
/// The affine form is what QAOA needs (e.g. RZZ(-w*gamma), RX(2*beta)).
class Param {
 public:
  Param() = default;

  static Param constant(double v) {
    Param p;
    p.offset_ = v;
    return p;
  }
  static Param symbol(int index, double scale = 1.0, double offset = 0.0) {
    HGP_REQUIRE(index >= 0, "Param::symbol: negative index");
    Param p;
    p.index_ = index;
    p.scale_ = scale;
    p.offset_ = offset;
    return p;
  }

  bool is_constant() const { return index_ < 0; }
  int index() const { return index_; }
  double scale() const { return scale_; }
  double offset() const { return offset_; }

  double eval(const std::vector<double>& theta) const {
    if (index_ < 0) return offset_;
    HGP_REQUIRE(static_cast<std::size_t>(index_) < theta.size(),
                "Param::eval: parameter vector too short");
    return offset_ + scale_ * theta[static_cast<std::size_t>(index_)];
  }
  /// Constant value; throws if symbolic.
  double value() const {
    HGP_REQUIRE(is_constant(), "Param::value: parameter is symbolic");
    return offset_;
  }

  /// The same parameter negated (used by Circuit::inverse()).
  Param negated() const {
    Param p = *this;
    p.scale_ = -p.scale_;
    p.offset_ = -p.offset_;
    return p;
  }

  bool operator==(const Param& o) const {
    return index_ == o.index_ && scale_ == o.scale_ && offset_ == o.offset_;
  }

 private:
  int index_ = -1;
  double scale_ = 1.0;
  double offset_ = 0.0;
};

}  // namespace hgp::qc
