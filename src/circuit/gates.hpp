#pragma once

#include <string>
#include <vector>

#include "linalg/matrix.hpp"

namespace hgp::qc {

/// The gate vocabulary. Rotation conventions follow the OpenQASM/qiskit
/// standard: RX(t) = exp(-i t X/2), RZZ(t) = exp(-i t Z⊗Z / 2), etc.
enum class GateKind {
  I,
  X,
  Y,
  Z,
  H,
  S,
  Sdg,
  T,
  Tdg,
  SX,
  SXdg,
  RX,
  RY,
  RZ,
  P,   // phase gate diag(1, e^{i t})
  U3,  // U3(theta, phi, lambda)
  CX,
  CZ,
  SWAP,
  RZZ,
  RXX,
  Delay,  // timed idle; one parameter = duration in dt samples
  Barrier,
  Measure,
};

/// Number of qubits the gate acts on (Barrier/Measure are flexible and
/// report 0 here).
std::size_t gate_arity(GateKind k);
/// Number of rotation parameters.
std::size_t gate_num_params(GateKind k);
/// Lowercase mnemonic ("cx", "rzz", ...).
const std::string& gate_name(GateKind k);
/// Inverse kind for self-inverse and dagger-pair gates; rotations invert by
/// negating the angle and return their own kind.
GateKind gate_inverse_kind(GateKind k);
/// True for X, H, CX, CZ, SWAP, Z, Y, I.
bool gate_is_self_inverse(GateKind k);
/// True when the gate's matrix is diagonal in the computational basis for
/// every parameter value (Z-frame rotations and phases: I, Z, S/Sdg, T/Tdg,
/// P, RZ, RZZ, CZ). Shared by the transpiler's diagonal-commutation scans
/// and the executor's virtual-gate classification so the two never drift.
bool gate_is_diagonal(GateKind k);

/// Dense unitary for the gate with bound parameter values. Two-qubit matrices
/// are in little-endian order: for qubits (q0, q1) = (control, target) of CX
/// the basis index bit0 = first listed qubit.
la::CMat gate_matrix(GateKind k, const std::vector<double>& params = {});

}  // namespace hgp::qc
