#include "circuit/circuit.hpp"

#include <algorithm>
#include <sstream>

#include "common/error.hpp"

namespace hgp::qc {

std::vector<double> Op::constant_params() const {
  std::vector<double> out;
  out.reserve(params.size());
  for (const Param& p : params) out.push_back(p.value());
  return out;
}

std::size_t Circuit::num_parameters() const {
  int max_idx = -1;
  for (const Op& op : ops_)
    for (const Param& p : op.params) max_idx = std::max(max_idx, p.index());
  return static_cast<std::size_t>(max_idx + 1);
}

std::size_t Circuit::count_2q() const {
  return static_cast<std::size_t>(std::count_if(
      ops_.begin(), ops_.end(), [](const Op& op) { return op.qubits.size() >= 2; }));
}

std::size_t Circuit::count(GateKind k) const {
  return static_cast<std::size_t>(
      std::count_if(ops_.begin(), ops_.end(), [&](const Op& op) { return op.kind == k; }));
}

std::size_t Circuit::depth() const {
  std::vector<std::size_t> level(num_qubits_, 0);
  std::size_t overall = 0;
  for (const Op& op : ops_) {
    if (op.kind == GateKind::Barrier) {
      const std::size_t m = *std::max_element(level.begin(), level.end());
      std::fill(level.begin(), level.end(), m);
      continue;
    }
    std::size_t start = 0;
    for (std::size_t q : op.qubits) start = std::max(start, level[q]);
    for (std::size_t q : op.qubits) level[q] = start + 1;
    overall = std::max(overall, start + 1);
  }
  return overall;
}

void Circuit::append(Op op) {
  const std::size_t arity = gate_arity(op.kind);
  if (arity > 0)
    HGP_REQUIRE(op.qubits.size() == arity, "Circuit::append: wrong qubit count for " +
                                               gate_name(op.kind));
  for (std::size_t q : op.qubits) check_qubit(q);
  if (op.qubits.size() == 2)
    HGP_REQUIRE(op.qubits[0] != op.qubits[1], "Circuit::append: duplicate qubit");
  HGP_REQUIRE(op.params.size() == gate_num_params(op.kind),
              "Circuit::append: wrong param count for " + gate_name(op.kind));
  ops_.push_back(std::move(op));
}

void Circuit::compose(const Circuit& other) {
  HGP_REQUIRE(other.num_qubits_ == num_qubits_, "Circuit::compose: width mismatch");
  for (const Op& op : other.ops_) ops_.push_back(op);
}

Circuit& Circuit::u3(std::size_t q, Param theta, Param phi, Param lam) {
  check_qubit(q);
  ops_.push_back(Op{GateKind::U3, {q}, {theta, phi, lam}});
  return *this;
}

Circuit& Circuit::cx(std::size_t control, std::size_t target) {
  check_qubit(control);
  check_qubit(target);
  HGP_REQUIRE(control != target, "cx: control == target");
  ops_.push_back(Op{GateKind::CX, {control, target}, {}});
  return *this;
}

Circuit& Circuit::cz(std::size_t a, std::size_t b) {
  check_qubit(a);
  check_qubit(b);
  HGP_REQUIRE(a != b, "cz: duplicate qubit");
  ops_.push_back(Op{GateKind::CZ, {a, b}, {}});
  return *this;
}

Circuit& Circuit::swap(std::size_t a, std::size_t b) {
  check_qubit(a);
  check_qubit(b);
  HGP_REQUIRE(a != b, "swap: duplicate qubit");
  ops_.push_back(Op{GateKind::SWAP, {a, b}, {}});
  return *this;
}

Circuit& Circuit::rzz(std::size_t a, std::size_t b, Param angle) {
  check_qubit(a);
  check_qubit(b);
  HGP_REQUIRE(a != b, "rzz: duplicate qubit");
  ops_.push_back(Op{GateKind::RZZ, {a, b}, {angle}});
  return *this;
}

Circuit& Circuit::rxx(std::size_t a, std::size_t b, Param angle) {
  check_qubit(a);
  check_qubit(b);
  HGP_REQUIRE(a != b, "rxx: duplicate qubit");
  ops_.push_back(Op{GateKind::RXX, {a, b}, {angle}});
  return *this;
}

Circuit& Circuit::barrier() {
  ops_.push_back(Op{GateKind::Barrier, {}, {}});
  return *this;
}

Circuit& Circuit::delay(std::size_t q, int duration_dt) {
  check_qubit(q);
  HGP_REQUIRE(duration_dt >= 0, "delay: negative duration");
  ops_.push_back(Op{GateKind::Delay, {q}, {Param::constant(double(duration_dt))}});
  return *this;
}

Circuit Circuit::bound(const std::vector<double>& theta) const {
  Circuit out(num_qubits_);
  for (const Op& op : ops_) {
    Op b = op;
    for (Param& p : b.params) p = Param::constant(p.eval(theta));
    out.ops_.push_back(std::move(b));
  }
  return out;
}

Circuit Circuit::inverse() const {
  Circuit out(num_qubits_);
  for (auto it = ops_.rbegin(); it != ops_.rend(); ++it) {
    const Op& op = *it;
    if (op.kind == GateKind::Barrier) {
      out.ops_.push_back(op);
      continue;
    }
    HGP_REQUIRE(op.kind != GateKind::Measure, "Circuit::inverse: cannot invert measure");
    Op inv = op;
    if (gate_num_params(op.kind) > 0) {
      if (op.kind == GateKind::U3) {
        // U3(t, p, l)^-1 = U3(-t, -l, -p)
        inv.params = {op.params[0].negated(), op.params[2].negated(), op.params[1].negated()};
      } else {
        for (Param& p : inv.params) p = p.negated();
      }
    } else {
      inv.kind = gate_inverse_kind(op.kind);
    }
    out.ops_.push_back(std::move(inv));
  }
  return out;
}

std::string Circuit::str() const {
  std::ostringstream os;
  os << "Circuit(" << num_qubits_ << " qubits, " << ops_.size() << " ops, depth " << depth()
     << ")";
  return os.str();
}

Circuit& Circuit::add1(GateKind k, std::size_t q) {
  check_qubit(q);
  ops_.push_back(Op{k, {q}, {}});
  return *this;
}

Circuit& Circuit::add1p(GateKind k, std::size_t q, Param p) {
  check_qubit(q);
  ops_.push_back(Op{k, {q}, {p}});
  return *this;
}

void Circuit::check_qubit(std::size_t q) const {
  HGP_REQUIRE(q < num_qubits_, "Circuit: qubit index out of range");
}

}  // namespace hgp::qc
