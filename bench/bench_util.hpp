#pragma once

// Shared helpers for the experiment harnesses (bench_*). Each binary
// regenerates one table or figure of the paper; environment variables allow
// scaling the budget down for quick smoke runs:
//   HGP_SHOTS  - shots per cost evaluation (default 1024, as in the paper)
//   HGP_EVALS  - COBYLA evaluation budget (default 50; pulse-level uses 4x)

#include <cstdio>
#include <cstdlib>
#include <string>
#include <vector>

#include "core/workflow.hpp"

namespace hgp::benchutil {

/// A representative machine-in-loop program for executor timing: an n-qubit
/// GHZ-style ladder along a heavy-hex path of ibmq_toronto, in the native
/// basis plus an RZ frame per qubit (exercises the virtual-RZ folding and
/// the pulse-compiled SX/CX blocks). n <= 15.
inline core::Program toronto_ladder_program(std::size_t n) {
  // A 15-vertex simple path through the heavy-hex 27 coupling map.
  static const std::vector<std::size_t> chain = {6,  7,  4,  1,  2,  3,  5, 8,
                                                 11, 14, 13, 12, 15, 18, 17};
  core::Program prog;
  for (std::size_t i = 0; i < n; ++i) {
    const std::size_t q = chain[i];
    prog.ops.push_back(core::ExecOp::from_gate(
        qc::Op{qc::GateKind::RZ, {q}, {qc::Param::constant(0.3 + 0.01 * i)}}));
    prog.ops.push_back(core::ExecOp::from_gate(qc::Op{qc::GateKind::SX, {q}, {}}));
    prog.ops.push_back(core::ExecOp::from_gate(
        qc::Op{qc::GateKind::RZ, {q}, {qc::Param::constant(-0.2)}}));
  }
  for (std::size_t i = 0; i + 1 < n; ++i)
    prog.ops.push_back(
        core::ExecOp::from_gate(qc::Op{qc::GateKind::CX, {chain[i], chain[i + 1]}, {}}));
  for (std::size_t i = 0; i < n; ++i) prog.measure_qubits.push_back(chain[i]);
  return prog;
}

inline std::size_t env_or(const char* name, std::size_t fallback) {
  const char* v = std::getenv(name);
  return v != nullptr ? static_cast<std::size_t>(std::stoul(v)) : fallback;
}

inline std::string env_or_str(const char* name, const std::string& fallback) {
  const char* v = std::getenv(name);
  return v != nullptr ? std::string(v) : fallback;
}

inline core::RunConfig base_config() {
  core::RunConfig cfg;
  cfg.shots = env_or("HGP_SHOTS", 1024);
  cfg.max_evaluations = static_cast<int>(env_or("HGP_EVALS", 50));
  return cfg;
}

/// Mean AR over HGP_SEEDS (default 2) independent training repetitions —
/// smooths single-run scatter while keeping the paper's protocol per run.
inline double mean_ar(const graph::Instance& inst, const backend::FakeBackend& dev,
                      core::ModelKind kind, core::RunConfig cfg) {
  const std::size_t seeds = env_or("HGP_SEEDS", 2);
  double sum = 0.0;
  for (std::size_t s = 0; s < seeds; ++s) {
    cfg.seed = 2023 + 101 * s;
    cfg.model.seed = 7 + 13 * s;
    sum += core::run_qaoa(inst, dev, kind, cfg).ar;
  }
  return sum / static_cast<double>(seeds);
}

inline void header(const char* title) {
  std::printf("==================================================================\n");
  std::printf("%s\n", title);
  std::printf("==================================================================\n");
}

}  // namespace hgp::benchutil
