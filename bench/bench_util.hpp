#pragma once

// Shared helpers for the experiment harnesses (bench_*). Each binary
// regenerates one table or figure of the paper; environment variables allow
// scaling the budget down for quick smoke runs:
//   HGP_SHOTS  - shots per cost evaluation (default 1024, as in the paper)
//   HGP_EVALS  - COBYLA evaluation budget (default 50; pulse-level uses 4x)

#include <cstdio>
#include <cstdlib>
#include <string>

#include "core/workflow.hpp"

namespace hgp::benchutil {

inline std::size_t env_or(const char* name, std::size_t fallback) {
  const char* v = std::getenv(name);
  return v != nullptr ? static_cast<std::size_t>(std::stoul(v)) : fallback;
}

inline core::RunConfig base_config() {
  core::RunConfig cfg;
  cfg.shots = env_or("HGP_SHOTS", 1024);
  cfg.max_evaluations = static_cast<int>(env_or("HGP_EVALS", 50));
  return cfg;
}

/// Mean AR over HGP_SEEDS (default 2) independent training repetitions —
/// smooths single-run scatter while keeping the paper's protocol per run.
inline double mean_ar(const graph::Instance& inst, const backend::FakeBackend& dev,
                      core::ModelKind kind, core::RunConfig cfg) {
  const std::size_t seeds = env_or("HGP_SEEDS", 2);
  double sum = 0.0;
  for (std::size_t s = 0; s < seeds; ++s) {
    cfg.seed = 2023 + 101 * s;
    cfg.model.seed = 7 + 13 * s;
    sum += core::run_qaoa(inst, dev, kind, cfg).ar;
  }
  return sum / static_cast<double>(seeds);
}

inline void header(const char* title) {
  std::printf("==================================================================\n");
  std::printf("%s\n", title);
  std::printf("==================================================================\n");
}

}  // namespace hgp::benchutil
