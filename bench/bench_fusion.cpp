// Timeline block fusion: fewer, bigger unitaries per shot. A 12-qubit path
// QAOA at p=2 is run noiseless with the fusion pass off and on (width 3, the
// widest kernel), timing the repeated-sampling shot loop and the
// candidate-lane expectation batch — the two deterministic-unitary engine
// paths the pass accelerates. Verifies parity while it measures: fused
// expectations within 1e-9 of unfused, batched candidate lanes bit-identical
// to scalar fused runs, and noisy counts bit-identical whether the knob is on
// or off (fusion must be a semantic no-op under noise). Emits
// BENCH_fusion.json (best-of-reps, both speedups, parity block) for
// tools/check_bench.py.
//
//   bench_fusion [num_nodes] [candidates] [shots] [reps]
#include <algorithm>
#include <chrono>
#include <cmath>
#include <cstdio>
#include <fstream>
#include <functional>
#include <string>
#include <vector>

#include "backend/presets.hpp"
#include "common/rng.hpp"
#include "core/executor.hpp"
#include "core/models.hpp"
#include "core/qaoa.hpp"
#include "graph/graph.hpp"

using namespace hgp;

namespace {

double best_of(int reps, const std::function<double()>& body) {
  double best_s = 1e300;
  for (int r = 0; r < reps; ++r) best_s = std::min(best_s, body());
  return best_s;
}

double timed(const std::function<void()>& body) {
  const auto t0 = std::chrono::steady_clock::now();
  body();
  const auto t1 = std::chrono::steady_clock::now();
  return std::chrono::duration<double>(t1 - t0).count();
}

double total_variation(const sim::Counts& a, const sim::Counts& b, std::size_t shots) {
  double tv = 0.0;
  for (const auto& [bits, n] : a) {
    const auto it = b.find(bits);
    const double nb = it == b.end() ? 0.0 : static_cast<double>(it->second);
    tv += std::abs(static_cast<double>(n) - nb);
  }
  for (const auto& [bits, n] : b)
    if (a.find(bits) == a.end()) tv += static_cast<double>(n);
  return tv / (2.0 * static_cast<double>(shots));
}

}  // namespace

int main(int argc, char** argv) {
  const std::size_t n = argc > 1 ? std::stoul(argv[1]) : 12;
  const std::size_t k = argc > 2 ? std::stoul(argv[2]) : 32;
  const std::size_t shots = argc > 3 ? std::stoul(argv[3]) : 1024;
  const int reps = argc > 4 ? std::stoi(argv[4]) : 7;
  const std::size_t width = 3;  // widest fused kernel
  const int loop_iters = 8;     // run() calls per timed shot-loop sample

  // The weighted heavy-hex path of bench_gradient: routes with few swaps,
  // non-degenerate cut landscape.
  graph::Graph g(n);
  for (std::size_t i = 0; i + 1 < n; ++i)
    g.add_edge(i, i + 1, 1.0 + 0.1 * static_cast<double>(i % 3));

  const backend::FakeBackend dev = backend::make_toronto();
  core::ModelConfig mcfg;
  mcfg.p = 2;
  static const std::vector<std::size_t> chain = {6,  7,  4,  1,  2,  3,  5, 8,
                                                 11, 14, 13, 12, 15, 18, 17};
  mcfg.initial_layout.assign(chain.begin(), chain.begin() + static_cast<long>(n));
  const core::QaoaModel model =
      core::QaoaModel::build(g, dev, core::ModelKind::GateLevel, mcfg);
  const core::Program prog = model.instantiate(model.initial_parameters());

  core::ObjectiveSpec spec;
  spec.kind = core::ObjectiveKind::Expectation;
  spec.value = [&g](std::uint64_t bits) { return g.cut_value(bits); };

  std::vector<std::vector<double>> xs(k, model.initial_parameters());
  for (std::size_t c = 0; c < k; ++c)
    for (std::size_t j = 0; j < xs[c].size(); ++j)
      xs[c][j] += 0.01 * static_cast<double>(c) - 0.005 * static_cast<double>(j);
  auto instantiate_all = [&]() {
    std::vector<core::Program> progs;
    progs.reserve(k);
    for (const auto& x : xs) progs.push_back(model.instantiate(x));
    return progs;
  };

  auto make_ex = [&](std::size_t fusion_width, bool noise = false) {
    core::ExecutorOptions opts;
    opts.noise = noise;
    opts.num_threads = 1;
    opts.fusion_max_qubits = fusion_width;
    return core::Executor(dev, opts);
  };
  core::Executor unfused_ex = make_ex(0);
  core::Executor fused_ex = make_ex(width);

  // Warm both compiled-block caches (gate blocks AND fused compositions) so
  // the timings compare evaluation, not first-touch compilation.
  {
    Rng warm(1);
    unfused_ex.run(prog, 1, warm);
    fused_ex.run(prog, 1, warm);
    const std::vector<core::Program> progs = instantiate_all();
    (void)unfused_ex.run_expectation_batch(progs, spec);
    (void)fused_ex.run_expectation_batch(progs, spec);
  }
  const std::size_t blocks_unfused = fused_ex.last_report().block_count;
  const std::size_t blocks_fused = fused_ex.last_report().fused_block_count;

  // ---- noiseless shot loop: repeated run() ---------------------------------
  auto shotloop = [&](core::Executor& ex) {
    return best_of(reps, [&]() {
      return timed([&]() {
        Rng rng(17);
        for (int i = 0; i < loop_iters; ++i) (void)ex.run(prog, shots, rng);
      });
    });
  };
  const double unfused_s = shotloop(unfused_ex);
  const double fused_s = shotloop(fused_ex);
  const double shotloop_speedup = fused_s > 0.0 ? unfused_s / fused_s : 0.0;

  // ---- candidate-lane expectation batch ------------------------------------
  // Programs are instantiated outside the timed region: instantiation is
  // identical input-preparation work on both paths, and the metric is the
  // engine (delta-compile + lane evolve), which is what fusion changes.
  const std::vector<core::Program> batch_progs = instantiate_all();
  std::vector<double> batch_vals;
  auto batchloop = [&](core::Executor& ex) {
    return best_of(reps, [&]() {
      return timed([&]() { batch_vals = ex.run_expectation_batch(batch_progs, spec); });
    });
  };
  const double batch_unfused_s = batchloop(unfused_ex);
  const double batch_fused_s = batchloop(fused_ex);
  const double batch_speedup = batch_fused_s > 0.0 ? batch_unfused_s / batch_fused_s : 0.0;

  // ---- parity gates ---------------------------------------------------------
  // Fused vs unfused expectation: numerically equal up to the FP rounding of
  // the composed products (NOT bitwise — a different but equally valid
  // rounding of the same unitary product).
  double max_abs_gap = 0.0;
  {
    Rng r0(5), r1(5);
    for (const std::size_t w : {std::size_t{2}, width}) {
      core::Executor ex = make_ex(w);
      const double a = ex.run_expectation(prog, 8, r0, spec);
      const double b = unfused_ex.run_expectation(prog, 8, r1, spec);
      max_abs_gap = std::max(max_abs_gap, std::abs(a - b));
    }
  }
  const bool parity_ok = max_abs_gap <= 1e-9;

  // Batched candidate lanes vs scalar fused runs: bit-identical.
  std::vector<double> scalar_vals(k);
  {
    const std::vector<core::Program> progs = instantiate_all();
    batch_vals = fused_ex.run_expectation_batch(progs, spec);
    core::Executor scalar_ex = make_ex(width);
    for (std::size_t c = 0; c < k; ++c) {
      Rng rng(3);
      scalar_vals[c] = scalar_ex.run_expectation(progs[c], 8, rng, spec);
    }
  }
  const bool batch_identical = batch_vals == scalar_vals;

  // Sampled counts, fused vs unfused, same seed: informational TV distance
  // (amplitudes agree to ~1e-12; a CDF-boundary draw may flip one sample).
  double counts_tv = 0.0;
  {
    Rng r0(11), r1(11);
    counts_tv = total_variation(unfused_ex.run(prog, shots, r0),
                                fused_ex.run(prog, shots, r1), shots);
  }

  // Noisy trajectory counts: the knob must be a semantic no-op — fusion
  // never touches a noisy timeline, so counts are bit-identical.
  bool noisy_identical = false;
  {
    core::Executor noff = make_ex(0, /*noise=*/true);
    core::Executor non = make_ex(width, /*noise=*/true);
    Rng r0(23), r1(23);
    noisy_identical = noff.run(prog, 256, r0) == non.run(prog, 256, r1);
  }

  std::printf("%zu-node path QAOA p=2, width-%zu fusion: %zu -> %zu blocks\n", n, width,
              blocks_unfused, blocks_fused);
  std::printf("shot loop (%d x %zu shots): unfused %.4f s, fused %.4f s  ->  %.2fx\n",
              loop_iters, shots, unfused_s, fused_s, shotloop_speedup);
  std::printf("expectation batch (%zu lanes): unfused %.4f s, fused %.4f s  ->  %.2fx\n",
              k, batch_unfused_s, batch_fused_s, batch_speedup);
  std::printf("parity: |fused - unfused| expectation gap %.2e (<= 1e-9: %s)\n",
              max_abs_gap, parity_ok ? "yes" : "NO");
  std::printf("        batched lanes bit-identical to scalar fused runs: %s\n",
              batch_identical ? "yes" : "NO");
  std::printf("        fused-vs-unfused sampled counts TV distance %.4f\n", counts_tv);
  std::printf("        noisy counts bit-identical across the knob: %s\n",
              noisy_identical ? "yes" : "NO");

  std::ofstream json("BENCH_fusion.json");
  json << "{\n"
       << "  \"bench\": \"fusion\",\n"
       << "  \"qubits\": " << n << ",\n"
       << "  \"candidates\": " << k << ",\n"
       << "  \"shots\": " << shots << ",\n"
       << "  \"reps\": " << reps << ",\n"
       << "  \"fusion_width\": " << width << ",\n"
       << "  \"blocks_unfused\": " << blocks_unfused << ",\n"
       << "  \"blocks_fused\": " << blocks_fused << ",\n"
       << "  \"shotloop_unfused_s\": " << unfused_s << ",\n"
       << "  \"shotloop_fused_s\": " << fused_s << ",\n"
       << "  \"shotloop_speedup\": " << shotloop_speedup << ",\n"
       << "  \"batch_unfused_s\": " << batch_unfused_s << ",\n"
       << "  \"batch_fused_s\": " << batch_fused_s << ",\n"
       << "  \"batch_speedup\": " << batch_speedup << ",\n"
       << "  \"parity\": {\"parity_ok\": " << (parity_ok ? "true" : "false")
       << ", \"max_abs_gap\": " << max_abs_gap << ", \"counts_tv\": " << counts_tv
       << "},\n"
       << "  \"batch\": {\"bit_identical\": " << (batch_identical ? "true" : "false")
       << "},\n"
       << "  \"noisy\": {\"bit_identical\": " << (noisy_identical ? "true" : "false")
       << "}\n"
       << "}\n";
  std::printf("wrote BENCH_fusion.json\n");
  return parity_ok && batch_identical && noisy_identical ? 0 : 1;
}
