// Reproduces Fig. 4: the three Max-Cut benchmark instances with their
// brute-force optima (9, 8, 10) and classical baselines for context.
#include <cstdio>

#include "bench_util.hpp"
#include "common/table.hpp"
#include "graph/instances.hpp"
#include "graph/maxcut.hpp"

int main() {
  using namespace hgp;
  benchutil::header("Fig. 4: QAOA Max-Cut benchmark graphs");

  Table t({"task", "graph", "n", "m", "Max-Cut (paper)", "Max-Cut (brute force)",
           "random-cut E[C]", "local search"});
  Rng rng(7);
  int task = 1;
  for (const auto& inst : graph::paper_instances()) {
    const auto exact = graph::max_cut_brute_force(inst.graph);
    const auto local = graph::max_cut_local_search(inst.graph, rng);
    t.add_row({std::to_string(task++), inst.name, std::to_string(inst.graph.num_vertices()),
               std::to_string(inst.graph.num_edges()), Table::num(inst.max_cut, 0),
               Table::num(exact.value, 0), Table::num(graph::random_cut_expectation(inst.graph), 1),
               Table::num(local.value, 0)});
  }
  std::printf("%s\n", t.str().c_str());

  for (const auto& inst : graph::paper_instances())
    std::printf("%s\n", inst.graph.str().c_str());
  return 0;
}
