// Ablation A7: classical optimizer choice for the machine-in-loop training
// (the paper uses COBYLA; SPSA and Nelder-Mead are the usual alternatives
// under shot noise). Same evaluation budget for all.
#include <cstdio>

#include "backend/presets.hpp"
#include "bench_util.hpp"
#include "common/table.hpp"
#include "graph/instances.hpp"

int main() {
  using namespace hgp;
  benchutil::header("Ablation A7: optimizer choice at a fixed evaluation budget");

  const graph::Instance inst = graph::paper_task1();
  const backend::FakeBackend dev = backend::make_toronto();

  Table t({"optimizer", "gate AR", "hybrid AR"});
  for (const char* name : {"cobyla", "spsa", "neldermead"}) {
    std::fprintf(stderr, "[A7] %s...\n", name);
    core::RunConfig cfg = benchutil::base_config();
    cfg.gate_optimization = true;
    cfg.optimizer = name;
    const auto gate = core::run_qaoa(inst, dev, core::ModelKind::GateLevel, cfg);
    const auto hybrid = core::run_qaoa(inst, dev, core::ModelKind::Hybrid, cfg);
    t.add_row({name, Table::pct(gate.ar), Table::pct(hybrid.ar)});
  }
  std::printf("%s\n", t.str().c_str());
  std::printf("SPSA's two-evaluations-per-step scaling is dimension-free, which helps\n"
              "the 19-parameter hybrid model at tight budgets; COBYLA's linear model\n"
              "is stronger on the 2-parameter gate-level landscape.\n");
  return 0;
}
