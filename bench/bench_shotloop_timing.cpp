// Wall-clock timing of the executor's noisy shot loop on the shared
// heavy-hex ladder program — the per-evaluation hot path of the
// machine-in-loop workflow. Used to track the trajectory engine's speedup
// against the seed implementation.
//
//   bench_shotloop_timing [num_qubits] [shots] [reps] [threads]
#include <chrono>
#include <cstdio>
#include <string>

#include "backend/presets.hpp"
#include "bench_util.hpp"
#include "common/rng.hpp"
#include "core/executor.hpp"

using namespace hgp;

int main(int argc, char** argv) {
  const std::size_t n = argc > 1 ? std::stoul(argv[1]) : 12;
  const std::size_t shots = argc > 2 ? std::stoul(argv[2]) : 256;
  const int reps = argc > 3 ? std::stoi(argv[3]) : 5;
  const std::size_t threads = argc > 4 ? std::stoul(argv[4]) : 1;

  const core::Program prog = benchutil::toronto_ladder_program(n);
  const backend::FakeBackend dev = backend::make_toronto();
  core::ExecutorOptions opts;
  opts.num_threads = threads;
  core::Executor ex(dev, opts);
  Rng rng(17);
  ex.run(prog, 1, rng);  // warm the unitary cache

  double best_s = 1e300;
  for (int r = 0; r < reps; ++r) {
    const auto t0 = std::chrono::steady_clock::now();
    const sim::Counts counts = ex.run(prog, shots, rng);
    const auto t1 = std::chrono::steady_clock::now();
    const double s = std::chrono::duration<double>(t1 - t0).count();
    if (s < best_s) best_s = s;
    (void)counts;
  }
  std::printf("%zu qubits, %zu shots, %zu threads: best %.3f s (%.1f shots/s)\n", n, shots,
              threads, best_s, shots / best_s);
  return 0;
}
