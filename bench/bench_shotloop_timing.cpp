// Wall-clock timing of the executor's noisy shot loop on the shared
// heavy-hex ladder program — the per-evaluation hot path of the
// machine-in-loop workflow. Times the scalar per-shot engine
// (shot_batch_lanes = 1) against the lane-batched trajectory engine,
// verifies their counts are bit-identical at equal seeds, and emits
// BENCH_shotloop.json (best-of-reps, speedup, bit-identical flag).
//
//   bench_shotloop_timing [num_qubits] [shots] [reps] [threads] [lanes]
#include <algorithm>
#include <chrono>
#include <cstdio>
#include <fstream>
#include <string>

#include "backend/presets.hpp"
#include "bench_util.hpp"
#include "common/rng.hpp"
#include "core/executor.hpp"

using namespace hgp;

int main(int argc, char** argv) {
  const std::size_t n = argc > 1 ? std::stoul(argv[1]) : 12;
  const std::size_t shots = argc > 2 ? std::stoul(argv[2]) : 256;
  const int reps = argc > 3 ? std::stoi(argv[3]) : 5;
  const std::size_t threads = argc > 4 ? std::stoul(argv[4]) : 1;
  const std::size_t lanes = argc > 5 ? std::stoul(argv[5]) : core::ExecutorOptions{}.shot_batch_lanes;

  const core::Program prog = benchutil::toronto_ladder_program(n);
  const backend::FakeBackend dev = backend::make_toronto();

  // Best-of-reps with a fresh seed-17 Rng per rep, so every rep (and both
  // engines) executes the identical shot grid and the counts comparison is
  // exact rather than statistical.
  auto time_engine = [&](std::size_t engine_lanes, sim::Counts* counts_out) {
    core::ExecutorOptions opts;
    opts.num_threads = threads;
    opts.shot_batch_lanes = engine_lanes;
    core::Executor ex(dev, opts);
    Rng warm(1);
    ex.run(prog, 1, warm);  // warm the compiled-block cache
    double best_s = 1e300;
    for (int r = 0; r < reps; ++r) {
      Rng rng(17);
      const auto t0 = std::chrono::steady_clock::now();
      *counts_out = ex.run(prog, shots, rng);
      const auto t1 = std::chrono::steady_clock::now();
      best_s = std::min(best_s, std::chrono::duration<double>(t1 - t0).count());
    }
    return best_s;
  };

  sim::Counts scalar_counts, batched_counts;
  const double scalar_s = time_engine(1, &scalar_counts);
  const double batched_s = time_engine(lanes, &batched_counts);
  const double speedup = batched_s > 0.0 ? scalar_s / batched_s : 0.0;
  const bool identical = scalar_counts == batched_counts;

  std::printf("%zu qubits, %zu shots, %zu threads\n", n, shots, threads);
  std::printf("scalar  engine: best %.3f s (%.1f shots/s)\n", scalar_s, shots / scalar_s);
  std::printf("batched engine: best %.3f s (%.1f shots/s), %zu lanes  ->  %.2fx\n",
              batched_s, shots / batched_s, lanes, speedup);
  std::printf("counts bit-identical scalar vs batched: %s\n", identical ? "yes" : "NO");

  std::ofstream json("BENCH_shotloop.json");
  json << "{\n"
       << "  \"bench\": \"shotloop\",\n"
       << "  \"qubits\": " << n << ",\n"
       << "  \"shots\": " << shots << ",\n"
       << "  \"reps\": " << reps << ",\n"
       << "  \"threads\": " << threads << ",\n"
       << "  \"lanes\": " << lanes << ",\n"
       << "  \"scalar_s\": " << scalar_s << ",\n"
       << "  \"batched_s\": " << batched_s << ",\n"
       << "  \"scalar_shots_per_s\": " << shots / scalar_s << ",\n"
       << "  \"batched_shots_per_s\": " << shots / batched_s << ",\n"
       << "  \"speedup\": " << speedup << ",\n"
       << "  \"bit_identical\": " << (identical ? "true" : "false") << "\n"
       << "}\n";
  std::printf("wrote BENCH_shotloop.json\n");
  return identical ? 0 : 1;
}
