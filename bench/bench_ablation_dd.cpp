// Ablation A5 (paper Step III menu): dynamical decoupling. The inserted
// delay-X-delay-X-delay echoes refocus the quasi-static frame drift that
// accumulates in idle windows — the same coherent error the hybrid mixer's
// phase knob absorbs, so DD narrows the hybrid-vs-gate gap.
#include <cstdio>

#include "backend/presets.hpp"
#include "bench_util.hpp"
#include "common/table.hpp"
#include "graph/instances.hpp"

int main() {
  using namespace hgp;
  benchutil::header("Ablation A5: dynamical decoupling on idle windows (ibmq_toronto)");

  const graph::Instance inst = graph::paper_task1();
  const backend::FakeBackend dev = backend::make_toronto();

  Table t({"model", "AR without DD", "AR with DD", "delta"});
  for (const auto kind : {core::ModelKind::GateLevel, core::ModelKind::Hybrid}) {
    std::fprintf(stderr, "[A5] %s...\n", core::model_name(kind).c_str());
    core::RunConfig cfg = benchutil::base_config();
    cfg.gate_optimization = true;
    const auto plain = core::run_qaoa(inst, dev, kind, cfg);

    core::RunConfig dd_cfg = cfg;
    dd_cfg.model.dynamical_decoupling = true;
    const auto with_dd = core::run_qaoa(inst, dev, kind, dd_cfg);

    t.add_row({core::model_name(kind), Table::pct(plain.ar), Table::pct(with_dd.ar),
               Table::num(100.0 * (with_dd.ar - plain.ar), 1) + " pp"});
  }
  std::printf("%s\n", t.str().c_str());
  std::printf("the echo trades two extra X pulses per idle window (incoherent +\n"
              "gain-error cost) against refocusing the coherent idle drift — whether\n"
              "the trade pays off depends on the drift-to-gate-error ratio of the\n"
              "device, which is exactly why the paper lists DD as an optional Step III\n"
              "technique rather than a default.\n");
  return 0;
}
