// Reproduces Table I: calibration data of the four simulated backends, next
// to the values the paper reports.
#include <cstdio>

#include "backend/presets.hpp"
#include "bench_util.hpp"
#include "common/table.hpp"

int main() {
  using namespace hgp;
  benchutil::header("Table I: calibration data of the simulated quantum computers");

  Table t({"Backends", "auckland", "toronto", "guadalupe", "montreal"});
  std::vector<backend::FakeBackend> devs;
  devs.push_back(backend::make_auckland());
  devs.push_back(backend::make_toronto());
  devs.push_back(backend::make_guadalupe());
  devs.push_back(backend::make_montreal());

  auto row = [&](const std::string& name, auto getter, int prec) {
    std::vector<std::string> cells = {name};
    for (const auto& d : devs) cells.push_back(Table::num(getter(d), prec));
    t.add_row(cells);
  };
  row("# qubit", [](const auto& d) { return double(d.num_qubits()); }, 0);
  row("Pauli-X error", [](const auto& d) { return d.info().x_error; }, 7);
  row("CNOT error", [](const auto& d) { return d.info().cx_error; }, 7);
  row("Readout error", [](const auto& d) { return d.info().readout_error; }, 3);
  row("T1 time (us)", [](const auto& d) { return d.info().t1_us; }, 3);
  row("T2 time (us)", [](const auto& d) { return d.info().t2_us; }, 3);
  row("Readout length (ns)", [](const auto& d) { return d.info().readout_ns; }, 3);
  std::printf("%s\n", t.str().c_str());

  std::printf("paper Table I (for reference): identical values; T1/T2 printed there in\n"
              "\"ms\" are treated as a unit typo for us (see DESIGN.md).\n\n");

  // Derived, seeded device character (not in the paper's table, but the
  // model parameters the experiments run against).
  Table d({"Derived per-device model", "auckland", "toronto", "guadalupe", "montreal"});
  auto drow = [&](const std::string& name, auto getter, int prec) {
    std::vector<std::string> cells = {name};
    for (const auto& dev : devs) cells.push_back(Table::num(getter(dev), prec));
    d.add_row(cells);
  };
  drow("readout length (dt)", [](const auto& dv) { return double(dv.readout_duration_dt()); },
       0);
  drow("CX duration q0-q1 (dt)", [](const auto& dv) {
    return double(dv.gate_duration_dt(qc::Op{qc::GateKind::CX, {0, 1}, {}}));
  }, 0);
  drow("drive gain qubit 0", [](const auto& dv) {
    return dv.noise_model().qubits[0].drive_gain;
  }, 4);
  drow("freq drift qubit 0 (kHz)", [](const auto& dv) {
    return dv.noise_model().qubits[0].freq_drift_ghz * 1e6;
  }, 1);
  std::printf("%s", d.str().c_str());
  return 0;
}
