// Ablation A4: mixer expressivity — which of the pulse knobs (amplitude,
// phase, frequency; paper §IV-A-1) carries the hybrid model's gain?
#include <cstdio>

#include "backend/presets.hpp"
#include "bench_util.hpp"
#include "common/table.hpp"
#include "graph/instances.hpp"

int main() {
  using namespace hgp;
  benchutil::header("Ablation A4: trainable pulse-parameter subsets (hybrid mixer)");

  const graph::Instance inst = graph::paper_task1();
  const backend::FakeBackend dev = backend::make_toronto();

  struct Row {
    const char* name;
    bool amp, phase, freq;
  };
  const Row rows[] = {{"amplitude only", true, false, false},
                      {"amplitude + phase", true, true, false},
                      {"amplitude + freq", true, false, true},
                      {"amplitude + phase + freq", true, true, true}};

  Table t({"trainable knobs", "params", "hybrid AR"});
  for (const Row& r : rows) {
    std::fprintf(stderr, "[A4] %s...\n", r.name);
    core::RunConfig cfg = benchutil::base_config();
    cfg.gate_optimization = true;
    cfg.model.train_amp = r.amp;
    cfg.model.train_phase = r.phase;
    cfg.model.train_freq = r.freq;
    const auto res = core::run_qaoa(inst, dev, core::ModelKind::Hybrid, cfg);
    t.add_row({r.name, std::to_string(res.num_parameters), Table::pct(res.ar)});
  }

  core::RunConfig gate_cfg = benchutil::base_config();
  gate_cfg.gate_optimization = true;
  const auto gate = core::run_qaoa(inst, dev, core::ModelKind::GateLevel, gate_cfg);
  t.add_row({"(gate-level reference)", std::to_string(gate.num_parameters),
             Table::pct(gate.ar)});
  std::printf("%s\n", t.str().c_str());
  std::printf("the phase knob compensates the static per-qubit frame drift accumulated\n"
              "before the mixer; amplitude absorbs drive-gain miscalibration; frequency\n"
              "tracks the drifted qubit frequency during the pulse (paper §IV-A-2).\n");
  return 0;
}
