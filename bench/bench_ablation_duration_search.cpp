// Ablation A1 (paper §IV-B, Step I): the binary-search trace over the mixer
// pulse duration, showing where performance collapses and which duration the
// search keeps.
#include <cstdio>

#include "backend/presets.hpp"
#include "bench_util.hpp"
#include "common/table.hpp"
#include "graph/instances.hpp"

int main() {
  using namespace hgp;
  benchutil::header("Ablation A1: binary search for the mixer pulse duration (Step I)");

  const graph::Instance inst = graph::paper_task1();
  const backend::FakeBackend dev = backend::make_toronto();

  core::RunConfig cfg = benchutil::base_config();
  cfg.gate_optimization = true;

  std::fprintf(stderr, "[A1] searching...\n");
  const auto outcome = core::optimize_mixer_duration(inst, dev, cfg, 0.97);

  Table t({"mixer duration (dt)", "trained AR", "note"});
  for (const auto& [dur, score] : outcome.search.trace) {
    std::string note;
    if (dur == 320) note = "baseline";
    if (dur == outcome.search.best_duration) note = "selected";
    t.add_row({std::to_string(dur), Table::pct(score), note});
  }
  std::printf("%s\n", t.str().c_str());

  std::printf("selected duration: %d dt -> %.0f%% shorter than the 320dt baseline "
              "(paper: 128dt, 60%% shorter)\n",
              outcome.search.best_duration,
              100.0 * (1.0 - outcome.search.best_duration / 320.0));
  std::printf("physical floor: at short durations the drive amplitude saturates at "
              "|amp| = 1 and the pulse can no longer reach the needed rotation angle.\n");
  return 0;
}
