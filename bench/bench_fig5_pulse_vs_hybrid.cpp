// Reproduces Fig. 5: pulse-level model vs hybrid gate-pulse model on
// ibmq_toronto (task 1), plus the hybrid with Step-I pulse-duration
// optimization — approximation ratios, mixer durations, and the training
// cost gap ("4x faster convergence").
#include <cstdio>

#include "backend/presets.hpp"
#include "bench_util.hpp"
#include "common/table.hpp"
#include "graph/instances.hpp"

int main() {
  using namespace hgp;
  benchutil::header("Fig. 5: pulse-level vs hybrid gate-pulse on ibmq_toronto");

  const graph::Instance inst = graph::paper_task1();
  const backend::FakeBackend dev = backend::make_toronto();

  // Pulse-level model: the Hamiltonian layer's pulses are free too — larger
  // search space, trained with a 4x bigger budget (paper: "maximum
  // iteration up to 200").
  std::fprintf(stderr, "[fig5] pulse-level model (4x budget)...\n");
  core::RunConfig pulse_cfg = benchutil::base_config();
  pulse_cfg.max_evaluations *= 4;
  const auto pulse = core::run_qaoa(inst, dev, core::ModelKind::PulseLevel, pulse_cfg);

  std::fprintf(stderr, "[fig5] hybrid model...\n");
  core::RunConfig hybrid_cfg = benchutil::base_config();
  const auto hybrid = core::run_qaoa(inst, dev, core::ModelKind::Hybrid, hybrid_cfg);

  std::fprintf(stderr, "[fig5] hybrid + pulse-level optimization (Step I)...\n");
  const auto po = core::optimize_mixer_duration(inst, dev, hybrid_cfg);

  Table t({"model", "AR", "mixer duration", "free params", "evals used",
           "evals to converge"});
  t.add_row({"pulse-level", Table::pct(pulse.ar),
             std::to_string(pulse.mixer_layer_duration_dt) + "dt",
             std::to_string(pulse.num_parameters), std::to_string(pulse.optimizer.evaluations),
             std::to_string(pulse.iterations_to_converge)});
  t.add_row({"hybrid gate-pulse", Table::pct(hybrid.ar),
             std::to_string(hybrid.mixer_layer_duration_dt) + "dt",
             std::to_string(hybrid.num_parameters),
             std::to_string(hybrid.optimizer.evaluations),
             std::to_string(hybrid.iterations_to_converge)});
  t.add_row({"hybrid + PO", Table::pct(po.final_run.ar),
             std::to_string(po.final_run.mixer_layer_duration_dt) + "dt",
             std::to_string(po.final_run.num_parameters),
             std::to_string(po.final_run.optimizer.evaluations),
             std::to_string(po.final_run.iterations_to_converge)});
  std::printf("%s\n", t.str().c_str());

  std::printf("duration reduction from Step I: %.0f%% (paper: 60%%, 320dt -> 128dt)\n",
              100.0 * (1.0 - po.search.best_duration / 320.0));
  const double ratio = double(pulse.iterations_to_converge) /
                       std::max(1, hybrid.iterations_to_converge);
  std::printf("training-cost ratio pulse/hybrid: %.1fx (paper: ~4x)\n", ratio);
  std::printf("paper Fig. 5 reference: pulse 52.2%%, hybrid 54.3%%, hybrid+PO 54.1%%\n");
  return 0;
}
