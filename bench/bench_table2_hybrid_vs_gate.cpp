// Reproduces Table II: gate-level vs hybrid gate-pulse QAOA on the
// 3-regular 6-node graph across three backends, with the Raw / GO / M3 /
// CVaR metric ladder and the mixer-layer durations (raw vs after Step I).
#include <cstdio>

#include "backend/presets.hpp"
#include "bench_util.hpp"
#include "common/table.hpp"
#include "graph/instances.hpp"

int main() {
  using namespace hgp;
  benchutil::header(
      "Table II: hybrid gate-pulse vs gate-level QAOA, 3-regular 6-node Max-Cut");

  const graph::Instance inst = graph::paper_task1();
  const std::vector<std::string> names = {"auckland", "toronto", "guadalupe"};

  Table t({"", "auckland (gate)", "auckland (hybrid)", "toronto (gate)", "toronto (hybrid)",
           "guadalupe (gate)", "guadalupe (hybrid)"});

  std::vector<std::vector<std::string>> rows(6);
  const char* row_names[] = {"Raw AR", "GO AR", "M3 AR", "CVaR AR",
                             "Raw Mixer Layer Duration", "PO Mixer Layer Duration"};
  for (int r = 0; r < 6; ++r) rows[r].push_back(row_names[r]);

  for (const std::string& name : names) {
    const backend::FakeBackend dev = backend::make_backend(name);
    std::fprintf(stderr, "[table2] %s...\n", dev.name().c_str());

    // The four metric ladders, trained separately as in the paper.
    std::vector<core::RunConfig> ladder(4, benchutil::base_config());
    ladder[1].gate_optimization = true;
    ladder[2].gate_optimization = true;
    ladder[2].m3 = true;
    ladder[3] = ladder[2];
    ladder[3].cvar = true;

    for (const auto kind : {core::ModelKind::GateLevel, core::ModelKind::Hybrid}) {
      for (int r = 0; r < 4; ++r)
        rows[r].push_back(Table::pct(benchutil::mean_ar(inst, dev, kind, ladder[r])));
      rows[4].push_back("320dt");
      if (kind == core::ModelKind::Hybrid) {
        // Step I: duration search on top of the GO configuration.
        const auto po = core::optimize_mixer_duration(inst, dev, ladder[1]);
        rows[5].push_back(std::to_string(po.search.best_duration) + "dt");
      } else {
        rows[5].push_back("-");
      }
    }
  }
  for (auto& row : rows) t.add_row(row);
  std::printf("%s\n", t.str().c_str());
  std::printf("(AR cells: mean over HGP_SEEDS=%zu training repetitions)\n\n",
              benchutil::env_or("HGP_SEEDS", 2));

  std::printf("paper Table II (reference):\n"
              "  Raw AR    49.1 / 54.2 | 48.8 / 54.1 | 50.5 / 54.5\n"
              "  GO AR     53.3 / 55.7 | 49.9 / 57.3 | 52.4 / 55.9\n"
              "  M3 AR     50.8 / 55.5 | 51.3 / 60.1 | 53.8 / 56.8\n"
              "  CVaR AR   63.8 / 73.5 | 72.3 / 84.3 | 75.0 / 76.1\n"
              "  durations 320dt raw, 128dt after pulse-level optimization\n");
  return 0;
}
