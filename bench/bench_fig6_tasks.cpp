// Reproduces Fig. 6: optimized gate-level vs optimized hybrid gate-pulse
// models (GO + M3 for both; hybrid additionally uses the Step-I 128dt mixer)
// on tasks 1-3, on ibmq_toronto and ibmq_montreal.
#include <cstdio>

#include "backend/presets.hpp"
#include "bench_util.hpp"
#include "common/table.hpp"
#include "graph/instances.hpp"

int main() {
  using namespace hgp;
  benchutil::header("Fig. 6: optimized gate vs optimized hybrid, tasks 1-3");

  Table t({"backend", "task", "opt. gate AR", "opt. hybrid AR", "hybrid gain"});
  for (const char* name : {"toronto", "montreal"}) {
    const backend::FakeBackend dev = backend::make_backend(name);
    int task = 1;
    for (const auto& inst : graph::paper_instances()) {
      std::fprintf(stderr, "[fig6] %s task %d...\n", dev.name().c_str(), task);
      core::RunConfig cfg = benchutil::base_config();
      cfg.gate_optimization = true;
      cfg.m3 = true;

      const double gate_ar = benchutil::mean_ar(inst, dev, core::ModelKind::GateLevel, cfg);

      core::RunConfig hybrid_cfg = cfg;
      hybrid_cfg.model.mixer_duration_dt = 128;  // Step I result (see fig5/A1)
      const double hybrid_ar =
          benchutil::mean_ar(inst, dev, core::ModelKind::Hybrid, hybrid_cfg);

      t.add_row({dev.name(), std::to_string(task), Table::pct(gate_ar),
                 Table::pct(hybrid_ar),
                 Table::num(100.0 * (hybrid_ar - gate_ar), 1) + " pp"});
      ++task;
    }
  }
  std::printf("%s\n", t.str().c_str());
  std::printf("paper Fig. 6 reference (gate/hybrid):\n"
              "  toronto : task1 51.3/60.1, task2 74.0/78.3, task3 59.7/62.9\n"
              "  montreal: task1 51.4/57.1, task2 75.9/80.0, task3 62.9/65.8\n"
              "  (average hybrid gains: 7.3, 4.2, 3.0 pp on tasks 1-3)\n");
  return 0;
}
