// Lane-native objectives vs sample-and-aggregate, and batched vs serial
// parameter-shift gradients — the two wall-clock claims of the candidate-lane
// batching work. A K-candidate noiseless QAOA objective evaluation at 12
// qubits is timed the legacy way (per-candidate scalar run() + counts
// aggregation) against one run_expectation_batch whose candidates evolve as
// lanes of a single batched statevector; a 2·n-point parameter-shift gradient
// is timed as serial scalar evaluations against one candidate-lane batch.
// Verifies the batched results are bit-identical / element-wise identical to
// the scalar paths and emits BENCH_gradient.json (best-of-reps, both
// speedups, bit_identical flags) for tools/check_bench.py.
//
//   bench_gradient [num_nodes] [candidates] [shots] [reps]
#include <algorithm>
#include <chrono>
#include <cmath>
#include <cstdio>
#include <fstream>
#include <functional>
#include <string>
#include <vector>

#include "backend/presets.hpp"
#include "common/rng.hpp"
#include "core/executor.hpp"
#include "core/models.hpp"
#include "core/qaoa.hpp"
#include "graph/graph.hpp"
#include "optimize/gradient.hpp"

using namespace hgp;

namespace {

double best_of(int reps, const std::function<double()>& body) {
  double best_s = 1e300;
  for (int r = 0; r < reps; ++r) best_s = std::min(best_s, body());
  return best_s;
}

double timed(const std::function<void()>& body) {
  const auto t0 = std::chrono::steady_clock::now();
  body();
  const auto t1 = std::chrono::steady_clock::now();
  return std::chrono::duration<double>(t1 - t0).count();
}

}  // namespace

int main(int argc, char** argv) {
  const std::size_t n = argc > 1 ? std::stoul(argv[1]) : 12;
  const std::size_t k = argc > 2 ? std::stoul(argv[2]) : 16;
  const std::size_t shots = argc > 3 ? std::stoul(argv[3]) : 1024;
  const int reps = argc > 4 ? std::stoi(argv[4]) : 5;

  // A weighted path over n nodes: routes onto the heavy-hex map with few
  // swaps, and the varying weights keep the cut landscape non-degenerate.
  graph::Graph g(n);
  for (std::size_t i = 0; i + 1 < n; ++i)
    g.add_edge(i, i + 1, 1.0 + 0.1 * static_cast<double>(i % 3));

  const backend::FakeBackend dev = backend::make_toronto();
  core::ModelConfig mcfg;
  // p = 2: a 4-parameter model makes the parameter-shift batch 8 lanes wide
  // — the regime batched gradients are for.
  mcfg.p = 2;
  // Place the path along a heavy-hex line of ibmq_toronto (the default
  // device line only covers 8 qubits).
  static const std::vector<std::size_t> chain = {6,  7,  4,  1,  2,  3,  5, 8,
                                                 11, 14, 13, 12, 15, 18, 17};
  mcfg.initial_layout.assign(chain.begin(), chain.begin() + static_cast<long>(n));
  const core::QaoaModel model =
      core::QaoaModel::build(g, dev, core::ModelKind::GateLevel, mcfg);

  core::ObjectiveSpec spec;
  spec.kind = core::ObjectiveKind::Expectation;
  spec.value = [&g](std::uint64_t bits) { return g.cut_value(bits); };

  // K parameter candidates spread around the initial point — a Nelder-Mead
  // simplex's worth of structurally identical programs.
  std::vector<std::vector<double>> xs(k, model.initial_parameters());
  for (std::size_t c = 0; c < k; ++c)
    for (std::size_t j = 0; j < xs[c].size(); ++j)
      xs[c][j] += 0.01 * static_cast<double>(c) - 0.005 * static_cast<double>(j);
  auto instantiate_all = [&]() {
    std::vector<core::Program> progs;
    progs.reserve(k);
    for (const auto& x : xs) progs.push_back(model.instantiate(x));
    return progs;
  };

  core::ExecutorOptions opts;
  opts.noise = false;
  opts.num_threads = 1;
  core::Executor scalar_ex(dev, opts);
  core::Executor batch_ex(dev, opts);

  // Warm both compiled-block caches so the timings compare evaluation, not
  // first-touch compilation.
  {
    const std::vector<core::Program> progs = instantiate_all();
    Rng warm(1);
    scalar_ex.run(progs[0], 1, warm);
    for (const auto& p : progs) (void)scalar_ex.run_expectation(p, 1, warm, spec);
    (void)batch_ex.run_expectation_batch(progs, spec);
  }

  // ---- objective evaluation: sample-and-aggregate vs lane-native ----------
  std::vector<double> sampled_vals(k), lane_vals, scalar_lane_vals(k);
  const double sample_s = best_of(reps, [&]() {
    return timed([&]() {
      Rng rng(17);
      const std::vector<core::Program> progs = instantiate_all();
      for (std::size_t c = 0; c < k; ++c) {
        const sim::Counts counts = scalar_ex.run(progs[c], shots, rng);
        sampled_vals[c] = core::cut_expectation(g, counts);
      }
    });
  });
  const double expectation_s = best_of(reps, [&]() {
    return timed([&]() {
      const std::vector<core::Program> progs = instantiate_all();
      lane_vals = batch_ex.run_expectation_batch(progs, spec);
    });
  });
  const double expectation_speedup = expectation_s > 0.0 ? sample_s / expectation_s : 0.0;

  // Parity: every lane must reproduce the scalar run_expectation bit for bit
  // (the sampled values only agree statistically — not a gate).
  {
    const std::vector<core::Program> progs = instantiate_all();
    Rng rng(17);
    for (std::size_t c = 0; c < k; ++c)
      scalar_lane_vals[c] = scalar_ex.run_expectation(progs[c], shots, rng, spec);
  }
  const bool lanes_identical = lane_vals == scalar_lane_vals;
  double max_sampling_gap = 0.0;
  for (std::size_t c = 0; c < k; ++c)
    max_sampling_gap = std::max(max_sampling_gap, std::abs(lane_vals[c] - sampled_vals[c]));

  // ---- gradient: serial parameter shift vs one candidate-lane batch -------
  const std::vector<double> x0 = model.initial_parameters();
  const opt::Objective scalar_obj = [&](const std::vector<double>& x) {
    Rng rng(3);
    return scalar_ex.run_expectation(model.instantiate(x), shots, rng, spec);
  };
  const opt::BatchObjective batch_obj = [&](const std::vector<std::vector<double>>& pts) {
    std::vector<core::Program> progs;
    progs.reserve(pts.size());
    for (const auto& x : pts) progs.push_back(model.instantiate(x));
    return batch_ex.run_expectation_batch(progs, spec);
  };

  std::vector<double> serial_grad, batched_grad;
  const double serial_grad_s = best_of(reps, [&]() {
    return timed([&]() { serial_grad = opt::parameter_shift_gradient(scalar_obj, x0); });
  });
  const double batched_grad_s = best_of(reps, [&]() {
    return timed([&]() { batched_grad = opt::parameter_shift_gradient_batch(batch_obj, x0); });
  });
  const double gradient_speedup = batched_grad_s > 0.0 ? serial_grad_s / batched_grad_s : 0.0;
  const bool grads_identical = serial_grad == batched_grad;

  std::printf("%zu-node path QAOA, %zu candidates, %zu shots (sample path)\n", n, k, shots);
  std::printf("objective: sample-and-aggregate %.4f s, lane-native %.4f s  ->  %.2fx\n",
              sample_s, expectation_s, expectation_speedup);
  std::printf("           lane values bit-identical to scalar run_expectation: %s\n",
              lanes_identical ? "yes" : "NO");
  std::printf("           max |lane - sampled| = %.4f (sampling noise, informational)\n",
              max_sampling_gap);
  std::printf("gradient:  serial shifts %.4f s, one %zu-lane batch %.4f s  ->  %.2fx\n",
              serial_grad_s, 2 * x0.size(), batched_grad_s, gradient_speedup);
  std::printf("           batched gradient element-wise identical to serial: %s\n",
              grads_identical ? "yes" : "NO");

  std::ofstream json("BENCH_gradient.json");
  json << "{\n"
       << "  \"bench\": \"gradient\",\n"
       << "  \"qubits\": " << n << ",\n"
       << "  \"candidates\": " << k << ",\n"
       << "  \"shots\": " << shots << ",\n"
       << "  \"reps\": " << reps << ",\n"
       << "  \"params\": " << x0.size() << ",\n"
       << "  \"sample_s\": " << sample_s << ",\n"
       << "  \"expectation_s\": " << expectation_s << ",\n"
       << "  \"expectation_speedup\": " << expectation_speedup << ",\n"
       << "  \"expectation\": {\"bit_identical\": " << (lanes_identical ? "true" : "false")
       << ", \"max_sampling_gap\": " << max_sampling_gap << "},\n"
       << "  \"serial_grad_s\": " << serial_grad_s << ",\n"
       << "  \"batched_grad_s\": " << batched_grad_s << ",\n"
       << "  \"gradient_speedup\": " << gradient_speedup << ",\n"
       << "  \"gradient\": {\"bit_identical\": " << (grads_identical ? "true" : "false")
       << "}\n"
       << "}\n";
  std::printf("wrote BENCH_gradient.json\n");
  return lanes_identical && grads_identical ? 0 : 1;
}
