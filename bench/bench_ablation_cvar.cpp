// Ablation A2 (paper §IV-D): sweep of the CVaR tail fraction α for the
// hybrid model. α = 1 is the plain expectation; the paper fixes α = 0.3.
#include <cstdio>

#include "backend/presets.hpp"
#include "bench_util.hpp"
#include "common/table.hpp"
#include "graph/instances.hpp"

int main() {
  using namespace hgp;
  benchutil::header("Ablation A2: CVaR coefficient sweep (hybrid, ibmq_toronto)");

  const graph::Instance inst = graph::paper_task1();
  const backend::FakeBackend dev = backend::make_toronto();

  Table t({"alpha", "hybrid CVaR-AR", "gate CVaR-AR"});
  for (const double alpha : {0.1, 0.2, 0.3, 0.5, 1.0}) {
    std::fprintf(stderr, "[A2] alpha=%.1f...\n", alpha);
    core::RunConfig cfg = benchutil::base_config();
    cfg.gate_optimization = true;
    cfg.m3 = true;
    cfg.cvar = true;
    cfg.cvar_alpha = alpha;
    const auto hybrid = core::run_qaoa(inst, dev, core::ModelKind::Hybrid, cfg);
    const auto gate = core::run_qaoa(inst, dev, core::ModelKind::GateLevel, cfg);
    t.add_row({Table::num(alpha, 1), Table::pct(hybrid.ar), Table::pct(gate.ar)});
  }
  std::printf("%s\n", t.str().c_str());
  std::printf("smaller alpha focuses the optimizer on the best shots: the CVaR-AR rises\n"
              "as alpha decreases (the paper reports 84.3%% at alpha = 0.3 on toronto).\n");
  return 0;
}
