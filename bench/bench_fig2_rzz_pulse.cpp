// Reproduces Fig. 2(f): the pulse-level realization of the QAOA RZZ gate —
// drive ("D") and control ("U") channel schedules — for both the standard
// CX·RZ·CX lowering and the pulse-efficient direct-CR form.
#include <cstdio>

#include "backend/presets.hpp"
#include "bench_util.hpp"
#include "transpile/lowering.hpp"

int main() {
  using namespace hgp;
  benchutil::header("Fig. 2(f): compiled RZZ gate at the pulse level");

  const backend::FakeBackend dev = backend::make_toronto();
  qc::Circuit c(27);
  c.rzz(1, 4, 0.8);

  transpile::LoweringOptions standard;
  standard.include_measure = false;
  const auto lowered = transpile::lower_to_pulses(c, dev, standard);
  std::printf("standard lowering, RZZ = CX · RZ · CX:\n%s", lowered.schedule.draw().c_str());
  std::printf("duration %d dt (%.1f ns), %zu pulses\n\n", lowered.schedule.duration(),
              lowered.schedule.duration() * pulse::kDtNs, lowered.schedule.play_count());

  transpile::LoweringOptions efficient = standard;
  efficient.pulse_efficient_rzz = true;
  const auto direct = transpile::lower_to_pulses(c, dev, efficient);
  std::printf("pulse-efficient lowering, one echoed CR (+ basis changes):\n%s",
              direct.schedule.draw().c_str());
  std::printf("duration %d dt (%.1f ns), %zu pulses\n\n", direct.schedule.duration(),
              direct.schedule.duration() * pulse::kDtNs, direct.schedule.play_count());

  std::printf("redundancy removed by working below the gate level: %.0f%% shorter, "
              "%zu fewer pulses\n",
              100.0 * (1.0 - double(direct.schedule.duration()) / lowered.schedule.duration()),
              lowered.schedule.play_count() - direct.schedule.play_count());
  return 0;
}
