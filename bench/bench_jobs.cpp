// Overhead and correctness of the job layer: the same 6-run grid executes
// (a) inline (plain run_qaoa, the pre-job-layer reference), (b) through
// JobService with every job under one tenant (the deficit-round-robin queue
// degenerates to FIFO), and (c) through JobService split across two tenants
// (DRR actually interleaving). Reports the DRR/FIFO wall-clock ratio — the
// price of fair scheduling, gated against bench/baselines/BENCH_jobs.json —
// verifies both service runs are bit-identical to the inline reference, and
// checks the scheduler's fair-share pop order deterministically.
//
//   bench_jobs [workers]             (default 4)
//   HGP_SHOTS / HGP_EVALS            scale the per-run budget (smoke mode)
#include <chrono>
#include <cstdio>
#include <fstream>
#include <functional>
#include <string>
#include <vector>

#include "backend/presets.hpp"
#include "bench_util.hpp"
#include "serve/job.hpp"
#include "serve/job_service.hpp"

using namespace hgp;

namespace {

double seconds_since(std::chrono::steady_clock::time_point t0) {
  return std::chrono::duration<double>(std::chrono::steady_clock::now() - t0).count();
}

bool same_result(const core::RunResult& a, const core::RunResult& b) {
  return a.ar == b.ar && a.final_cost == b.final_cost &&
         a.optimizer.value == b.optimizer.value && a.optimizer.x == b.optimizer.x &&
         a.optimizer.history == b.optimizer.history;
}

/// Run the whole grid through a fresh JobService, tagging job i with
/// tenant_of(i). Returns wall seconds; outcomes land in `results`.
double run_through_service(const std::vector<serve::SweepJob>& jobs, std::size_t workers,
                           const std::function<std::string(std::size_t)>& tenant_of,
                           std::vector<core::RunResult>& results) {
  serve::JobService svc(serve::JobService::Options{workers, 8192});
  const auto t0 = std::chrono::steady_clock::now();
  std::vector<serve::JobHandle> handles;
  handles.reserve(jobs.size());
  for (std::size_t i = 0; i < jobs.size(); ++i) {
    serve::SweepJob job = jobs[i];
    job.tenant = tenant_of(i);
    handles.push_back(svc.submit(serve::JobRequest{std::move(job)}));
  }
  results.clear();
  for (serve::JobHandle& h : handles) {
    serve::JobOutcome outcome = h.outcome.get();
    if (outcome.state != serve::JobState::Completed) {
      std::printf("job %llu ended %s: %s\n", static_cast<unsigned long long>(h.id),
                  serve::job_state_name(outcome.state).c_str(),
                  outcome.error.message.c_str());
      std::exit(1);
    }
    results.push_back(std::move(outcome.result));
  }
  return seconds_since(t0);
}

/// Deterministic fair-share check on the scheduler itself: tenant A floods
/// four jobs, tenant B submits one — DRR must serve B second, not last.
bool fair_pop_order() {
  serve::FairJobQueue q;
  std::vector<std::string> served;
  for (int i = 0; i < 4; ++i) q.push("A", 1.0, 0, [&served] { served.push_back("A"); });
  q.push("B", 1.0, 0, [&served] { served.push_back("B"); });
  std::function<void()> task;
  while (q.pop(task)) task();
  return served == std::vector<std::string>{"A", "B", "A", "A", "A"};
}

}  // namespace

int main(int argc, char** argv) {
  const std::size_t workers = argc > 1 ? std::stoul(argv[1]) : 4;

  const backend::FakeBackend dev = backend::make_toronto();
  core::RunConfig base = benchutil::base_config();
  base.executor_threads = 1;  // parallelism comes from the service pool here

  // Two copies of the 3-config sweep grid — one per tenant in the DRR run.
  std::vector<serve::SweepJob> jobs;
  for (int copy = 0; copy < 2; ++copy) {
    const std::string tag = copy == 0 ? "/a" : "/b";
    core::RunConfig cobyla = base;
    jobs.push_back({"task1/gate/cobyla" + tag, graph::paper_task1(), &dev,
                    core::ModelKind::GateLevel, cobyla});
    core::RunConfig spsa = base;
    spsa.optimizer = "spsa";
    jobs.push_back({"task1/hybrid/spsa" + tag, graph::paper_task1(), &dev,
                    core::ModelKind::Hybrid, spsa});
    core::RunConfig nm = base;
    nm.optimizer = "neldermead";
    jobs.push_back({"task2/gate/neldermead" + tag, graph::paper_task2(), &dev,
                    core::ModelKind::GateLevel, nm});
  }

  benchutil::header("serve::JobService — job-layer overhead and fair scheduling");
  std::printf("%zu jobs, %zu workers, %zu shots, %d evals per run\n\n", jobs.size(),
              workers, base.shots, base.max_evaluations);

  // Inline reference: the exact numbers the job layer must reproduce.
  const auto t_plain = std::chrono::steady_clock::now();
  std::vector<core::RunResult> plain;
  for (const serve::SweepJob& job : jobs)
    plain.push_back(core::run_qaoa(job.instance, *job.dev, job.kind, job.config));
  const double plain_s = seconds_since(t_plain);

  // One tenant: the DRR ring has a single stop, i.e. plain FIFO dispatch.
  std::vector<core::RunResult> fifo;
  const double fifo_s =
      run_through_service(jobs, workers, [](std::size_t) { return "solo"; }, fifo);

  // Two tenants: the scheduler actually rotates the ring every dequeue.
  std::vector<core::RunResult> drr;
  const double drr_s = run_through_service(
      jobs, workers, [&](std::size_t i) { return i < jobs.size() / 2 ? "a" : "b"; }, drr);

  bool identical = fifo.size() == plain.size() && drr.size() == plain.size();
  for (std::size_t i = 0; identical && i < plain.size(); ++i)
    identical = same_result(fifo[i], plain[i]) && same_result(drr[i], plain[i]);

  const bool fairness = fair_pop_order();
  const double overhead = fifo_s > 0.0 ? drr_s / fifo_s : 0.0;

  for (std::size_t i = 0; i < jobs.size(); ++i)
    std::printf("  %-26s AR %.1f%%  (%d evals)\n", jobs[i].label.c_str(),
                100.0 * drr[i].ar, drr[i].optimizer.evaluations);
  std::printf("\nplain %.3f s | fifo (1 tenant) %.3f s | drr (2 tenants) %.3f s\n",
              plain_s, fifo_s, drr_s);
  std::printf("scheduler overhead %.3fx | bit-identical: %s | fair pop order: %s\n",
              overhead, identical ? "yes" : "NO", fairness ? "yes" : "NO");

  std::ofstream json("BENCH_jobs.json");
  json << "{\n"
       << "  \"bench\": \"jobs\",\n"
       << "  \"jobs\": " << jobs.size() << ",\n"
       << "  \"workers\": " << workers << ",\n"
       << "  \"shots\": " << base.shots << ",\n"
       << "  \"evals\": " << base.max_evaluations << ",\n"
       << "  \"plain_s\": " << plain_s << ",\n"
       << "  \"fifo_s\": " << fifo_s << ",\n"
       << "  \"drr_s\": " << drr_s << ",\n"
       << "  \"overhead_ratio\": " << overhead << ",\n"
       << "  \"bit_identical\": " << (identical ? "true" : "false") << ",\n"
       << "  \"fair_pop_order\": " << (fairness ? "true" : "false") << "\n"
       << "}\n";
  std::printf("wrote BENCH_jobs.json\n");
  return identical && fairness ? 0 : 1;
}
