// Microbenchmarks (google-benchmark) for the performance-critical kernels:
// statevector gate application, pulse-propagator stepping, SABRE routing,
// M3 mitigation solves, and the Hermitian eigensolver.
#include <benchmark/benchmark.h>

#include "backend/presets.hpp"
#include "common/rng.hpp"
#include "core/qaoa.hpp"
#include "graph/instances.hpp"
#include "linalg/eig.hpp"
#include "mitigation/m3.hpp"
#include "pulsesim/simulator.hpp"
#include "sim/statevector.hpp"
#include "transpile/sabre.hpp"

using namespace hgp;

static void BM_StatevectorCx(benchmark::State& state) {
  const std::size_t n = static_cast<std::size_t>(state.range(0));
  sim::Statevector sv(n);
  const la::CMat cx = qc::gate_matrix(qc::GateKind::CX);
  std::size_t q = 0;
  for (auto _ : state) {
    sv.apply_matrix(cx, {q, (q + 1) % n});
    q = (q + 1) % (n - 1);
    benchmark::DoNotOptimize(sv.data().data());
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_StatevectorCx)->Arg(6)->Arg(10)->Arg(14)->Arg(18);

static void BM_StatevectorSample(benchmark::State& state) {
  sim::Statevector sv(static_cast<std::size_t>(state.range(0)));
  qc::Circuit c(sv.num_qubits());
  for (std::size_t q = 0; q < sv.num_qubits(); ++q) c.h(q);
  sv.run(c);
  Rng rng(1);
  for (auto _ : state) benchmark::DoNotOptimize(sv.sample(1024, rng));
}
BENCHMARK(BM_StatevectorSample)->Arg(6)->Arg(10);

static void BM_PulsePropagatorCx(benchmark::State& state) {
  const backend::FakeBackend dev = backend::make_toronto();
  const auto sub = dev.subsystem({0, 1}, true);
  const pulse::Schedule sched =
      backend::FakeBackend::remap_schedule(dev.calibrations().cx(0, 1), sub.remap);
  for (auto _ : state) {
    psim::PulseSystem sys = dev.subsystem({0, 1}, true).system;
    const psim::PulseSimulator sim(std::move(sys), psim::Integrator::Exact, 1,
                                   static_cast<int>(state.range(0)));
    benchmark::DoNotOptimize(sim.unitary(sched));
  }
  state.SetLabel("stride=" + std::to_string(state.range(0)));
}
BENCHMARK(BM_PulsePropagatorCx)->Arg(1)->Arg(4);

static void BM_SabreRouting(benchmark::State& state) {
  const auto inst = graph::paper_task1();
  const qc::Circuit qaoa = core::qaoa_circuit(inst.graph, 1).bound({0.6, 0.4});
  const auto coupling = backend::heavy_hex_27();
  Rng rng(7);
  for (auto _ : state)
    benchmark::DoNotOptimize(transpile::sabre_route(qaoa, coupling, rng, 1, {0, 1, 4, 7, 10, 12}));
}
BENCHMARK(BM_SabreRouting);

static void BM_M3Mitigate(benchmark::State& state) {
  Rng rng(11);
  std::vector<noise::ReadoutError> errors(6, {0.02, 0.04});
  sim::Counts counts;
  for (int i = 0; i < state.range(0); ++i)
    counts[static_cast<std::uint64_t>(rng.uniform_int(0, 63))] += 16;
  const mit::M3Mitigator m3(errors);
  for (auto _ : state) benchmark::DoNotOptimize(m3.mitigate(counts));
  state.SetLabel(std::to_string(counts.size()) + " strings");
}
BENCHMARK(BM_M3Mitigate)->Arg(16)->Arg(48);

static void BM_Eigh(benchmark::State& state) {
  Rng rng(3);
  const std::size_t n = static_cast<std::size_t>(state.range(0));
  la::CMat a(n, n);
  for (std::size_t i = 0; i < n; ++i) {
    a(i, i) = rng.normal();
    for (std::size_t j = i + 1; j < n; ++j) {
      a(i, j) = la::cxd{rng.normal(), rng.normal()};
      a(j, i) = std::conj(a(i, j));
    }
  }
  for (auto _ : state) benchmark::DoNotOptimize(la::eigh(a));
}
BENCHMARK(BM_Eigh)->Arg(2)->Arg(4)->Arg(8)->Arg(16);

BENCHMARK_MAIN();
