// Microbenchmarks (google-benchmark) for the performance-critical kernels:
// statevector gate application (specialized vs dense reference), the
// executor's trajectory/density engines, pulse-propagator stepping, SABRE
// routing, M3 mitigation solves, and the Hermitian eigensolver.
#include <benchmark/benchmark.h>

#include "backend/presets.hpp"
#include "bench_util.hpp"
#include "common/rng.hpp"
#include "core/executor.hpp"
#include "core/fusion.hpp"
#include "core/qaoa.hpp"
#include "graph/instances.hpp"
#include "linalg/eig.hpp"
#include "mitigation/m3.hpp"
#include "obs/metrics.hpp"
#include "obs/obs.hpp"
#include "obs/trace.hpp"
#include "pulsesim/simulator.hpp"
#include "sim/batched_statevector.hpp"
#include "sim/statevector.hpp"
#include "transpile/sabre.hpp"

using namespace hgp;

namespace {

/// The seed's generic dense 2-qubit apply (pre-specialization): the baseline
/// the diagonal/permutation kernels are measured against.
void dense_apply_2q(sim::Statevector& sv, const la::CMat& u, std::size_t q0, std::size_t q1) {
  la::CVec& amp = sv.data();
  const std::uint64_t b0 = std::uint64_t{1} << q0;
  const std::uint64_t b1 = std::uint64_t{1} << q1;
  for (std::uint64_t i = 0; i < amp.size(); ++i) {
    if ((i & b0) || (i & b1)) continue;
    const std::uint64_t i0 = i, i1 = i | b0, i2 = i | b1, i3 = i | b0 | b1;
    const la::cxd a0 = amp[i0], a1 = amp[i1], a2 = amp[i2], a3 = amp[i3];
    amp[i0] = u(0, 0) * a0 + u(0, 1) * a1 + u(0, 2) * a2 + u(0, 3) * a3;
    amp[i1] = u(1, 0) * a0 + u(1, 1) * a1 + u(1, 2) * a2 + u(1, 3) * a3;
    amp[i2] = u(2, 0) * a0 + u(2, 1) * a1 + u(2, 2) * a2 + u(2, 3) * a3;
    amp[i3] = u(3, 0) * a0 + u(3, 1) * a1 + u(3, 2) * a2 + u(3, 3) * a3;
  }
}

using benchutil::toronto_ladder_program;

}  // namespace

// ---- specialized statevector kernels vs the dense baseline -----------------

static void BM_KernelRzzDense(benchmark::State& state) {
  sim::Statevector sv(static_cast<std::size_t>(state.range(0)));
  const la::CMat rzz = qc::gate_matrix(qc::GateKind::RZZ, {0.37});
  for (auto _ : state) {
    dense_apply_2q(sv, rzz, 0, 1);
    benchmark::DoNotOptimize(sv.data().data());
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_KernelRzzDense)->Arg(12)->Arg(16);

static void BM_KernelRzzDiagonal(benchmark::State& state) {
  sim::Statevector sv(static_cast<std::size_t>(state.range(0)));
  const la::CMat rzz = qc::gate_matrix(qc::GateKind::RZZ, {0.37});
  for (auto _ : state) {
    sv.apply_matrix(rzz, {0, 1});  // auto-dispatches to the diagonal kernel
    benchmark::DoNotOptimize(sv.data().data());
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_KernelRzzDiagonal)->Arg(12)->Arg(16);

static void BM_KernelCxDense(benchmark::State& state) {
  sim::Statevector sv(static_cast<std::size_t>(state.range(0)));
  const la::CMat cx = qc::gate_matrix(qc::GateKind::CX);
  for (auto _ : state) {
    dense_apply_2q(sv, cx, 0, 1);
    benchmark::DoNotOptimize(sv.data().data());
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_KernelCxDense)->Arg(12)->Arg(16);

static void BM_KernelCxPermutation(benchmark::State& state) {
  sim::Statevector sv(static_cast<std::size_t>(state.range(0)));
  const la::CMat cx = qc::gate_matrix(qc::GateKind::CX);
  for (auto _ : state) {
    sv.apply_matrix(cx, {0, 1});  // auto-dispatches to the permutation kernel
    benchmark::DoNotOptimize(sv.data().data());
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_KernelCxPermutation)->Arg(12)->Arg(16);

// ---- width-3 fusion kernels ------------------------------------------------
//
// The fusion pass's currency is the dense 3-qubit block: a run of 1q/2q
// gates composed into one 8x8. The first pair measures the dense 3q apply
// itself, scalar vs lane-batched per-lane (the delta-compile batch path);
// the second pair measures a fused run against applying its constituent
// sequence gate by gate — the per-shot win the pass buys.

namespace {

/// An 8-gate dense run on qubits {0,1,2}: the RZZ/RX alternation a QAOA
/// layer produces, composed with the fusion pass's own composition.
std::vector<std::pair<la::CMat, std::vector<std::size_t>>> fused_run_parts(double theta) {
  std::vector<std::pair<la::CMat, std::vector<std::size_t>>> parts;
  parts.emplace_back(qc::gate_matrix(qc::GateKind::RZZ, {theta}), std::vector<std::size_t>{0, 1});
  parts.emplace_back(qc::gate_matrix(qc::GateKind::RX, {0.5 * theta}), std::vector<std::size_t>{0});
  parts.emplace_back(qc::gate_matrix(qc::GateKind::RZZ, {1.3 * theta}), std::vector<std::size_t>{1, 2});
  parts.emplace_back(qc::gate_matrix(qc::GateKind::RX, {0.7 * theta}), std::vector<std::size_t>{1});
  parts.emplace_back(qc::gate_matrix(qc::GateKind::CX), std::vector<std::size_t>{0, 2});
  parts.emplace_back(qc::gate_matrix(qc::GateKind::RZ, {0.9 * theta}), std::vector<std::size_t>{2});
  parts.emplace_back(qc::gate_matrix(qc::GateKind::RZZ, {0.4 * theta}), std::vector<std::size_t>{0, 1});
  parts.emplace_back(qc::gate_matrix(qc::GateKind::RX, {1.1 * theta}), std::vector<std::size_t>{2});
  return parts;
}

la::CMat dense_3q_unitary(double theta) {
  const auto parts = fused_run_parts(theta);
  std::vector<core::FusePartView> views(parts.size());
  for (std::size_t i = 0; i < parts.size(); ++i)
    views[i] = core::FusePartView{&parts[i].first, &parts[i].second};
  return core::compose_fused(views.data(), views.size(), {0, 1, 2});
}

}  // namespace

static void BM_Kernel3qDenseScalar(benchmark::State& state) {
  const auto n = static_cast<std::size_t>(state.range(0));
  const auto lanes = static_cast<std::size_t>(state.range(1));
  const la::CMat u = dense_3q_unitary(0.37);
  std::vector<sim::Statevector> svs(lanes, sim::Statevector(n));
  for (auto _ : state) {
    for (auto& sv : svs) sv.apply_matrix(u, {0, 1, 2});
    benchmark::DoNotOptimize(svs[0].data().data());
  }
  state.SetItemsProcessed(state.iterations() * static_cast<std::int64_t>(lanes));
}
BENCHMARK(BM_Kernel3qDenseScalar)->Args({12, 16});

static void BM_Kernel3qDenseBatched(benchmark::State& state) {
  const auto n = static_cast<std::size_t>(state.range(0));
  const auto lanes = static_cast<std::size_t>(state.range(1));
  std::vector<la::CMat> us;
  us.reserve(lanes);
  for (std::size_t l = 0; l < lanes; ++l)
    us.push_back(dense_3q_unitary(0.37 + 0.01 * static_cast<double>(l)));
  sim::BatchedStatevector bsv(n, lanes);
  for (auto _ : state) {
    bsv.apply_matrix_per_lane(us, {0, 1, 2});
    benchmark::DoNotOptimize(&bsv);
  }
  state.SetItemsProcessed(state.iterations() * static_cast<std::int64_t>(lanes));
}
BENCHMARK(BM_Kernel3qDenseBatched)->Args({12, 16});

static void BM_KernelUnfusedSequence(benchmark::State& state) {
  sim::Statevector sv(static_cast<std::size_t>(state.range(0)));
  const auto parts = fused_run_parts(0.37);
  for (auto _ : state) {
    for (const auto& [u, qubits] : parts) sv.apply_matrix(u, qubits);
    benchmark::DoNotOptimize(sv.data().data());
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_KernelUnfusedSequence)->Arg(12)->Arg(16);

static void BM_KernelFusedRun(benchmark::State& state) {
  sim::Statevector sv(static_cast<std::size_t>(state.range(0)));
  const la::CMat u = dense_3q_unitary(0.37);
  for (auto _ : state) {
    sv.apply_matrix(u, {0, 1, 2});
    benchmark::DoNotOptimize(sv.data().data());
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_KernelFusedRun)->Arg(12)->Arg(16);

// ---- lane-batched kernels vs a per-shot scalar loop ------------------------
//
// Each pair applies the same operator to L independent trajectories: the
// scalar row loops over L separate statevectors (the pre-batching per-shot
// cost), the batched row applies once across the L lanes of a
// BatchedStatevector. items/sec counts trajectories, so the ratio of a pair
// is the per-kernel lane-batching speedup — regressions here are
// attributable to a single kernel.

static void scalar_lanes_loop(benchmark::State& state, const la::CMat& u,
                              const std::vector<std::size_t>& qubits) {
  const auto n = static_cast<std::size_t>(state.range(0));
  const auto lanes = static_cast<std::size_t>(state.range(1));
  std::vector<sim::Statevector> svs(lanes, sim::Statevector(n));
  for (auto _ : state) {
    for (auto& sv : svs) sv.apply_matrix(u, qubits);
    benchmark::DoNotOptimize(svs[0].data().data());
  }
  state.SetItemsProcessed(state.iterations() * static_cast<std::int64_t>(lanes));
  state.SetLabel(std::to_string(n) + "q x" + std::to_string(lanes) + " lanes");
}

static void batched_lanes_apply(benchmark::State& state, const la::CMat& u,
                                const std::vector<std::size_t>& qubits) {
  const auto n = static_cast<std::size_t>(state.range(0));
  const auto lanes = static_cast<std::size_t>(state.range(1));
  sim::BatchedStatevector bsv(n, lanes);
  for (auto _ : state) {
    bsv.apply_matrix(u, qubits);
    benchmark::DoNotOptimize(&bsv);
  }
  state.SetItemsProcessed(state.iterations() * static_cast<std::int64_t>(lanes));
  state.SetLabel(std::to_string(n) + "q x" + std::to_string(lanes) + " lanes");
}

static void BM_Lanes1qDiagonalScalar(benchmark::State& state) {
  scalar_lanes_loop(state, qc::gate_matrix(qc::GateKind::RZ, {0.37}), {0});
}
static void BM_Lanes1qDiagonalBatched(benchmark::State& state) {
  batched_lanes_apply(state, qc::gate_matrix(qc::GateKind::RZ, {0.37}), {0});
}
static void BM_Lanes1qDenseScalar(benchmark::State& state) {
  scalar_lanes_loop(state, qc::gate_matrix(qc::GateKind::SX), {0});
}
static void BM_Lanes1qDenseBatched(benchmark::State& state) {
  batched_lanes_apply(state, qc::gate_matrix(qc::GateKind::SX), {0});
}
static void BM_Lanes2qRzzDiagonalScalar(benchmark::State& state) {
  scalar_lanes_loop(state, qc::gate_matrix(qc::GateKind::RZZ, {0.37}), {0, 1});
}
static void BM_Lanes2qRzzDiagonalBatched(benchmark::State& state) {
  batched_lanes_apply(state, qc::gate_matrix(qc::GateKind::RZZ, {0.37}), {0, 1});
}
static void BM_Lanes2qDenseScalar(benchmark::State& state) {
  scalar_lanes_loop(
      state, la::kron(qc::gate_matrix(qc::GateKind::SX), qc::gate_matrix(qc::GateKind::SX)),
      {0, 1});
}
static void BM_Lanes2qDenseBatched(benchmark::State& state) {
  batched_lanes_apply(
      state, la::kron(qc::gate_matrix(qc::GateKind::SX), qc::gate_matrix(qc::GateKind::SX)),
      {0, 1});
}
BENCHMARK(BM_Lanes1qDiagonalScalar)->Args({12, 16});
BENCHMARK(BM_Lanes1qDiagonalBatched)->Args({12, 16});
BENCHMARK(BM_Lanes1qDenseScalar)->Args({12, 16});
BENCHMARK(BM_Lanes1qDenseBatched)->Args({12, 16});
BENCHMARK(BM_Lanes2qRzzDiagonalScalar)->Args({12, 16});
BENCHMARK(BM_Lanes2qRzzDiagonalBatched)->Args({12, 16});
BENCHMARK(BM_Lanes2qDenseScalar)->Args({12, 16});
BENCHMARK(BM_Lanes2qDenseBatched)->Args({12, 16});

// ---- candidate-lane kernels: each lane carries its own parameters ----------
//
// Candidate-lane batching (run_expectation_batch) evolves K parameter
// candidates as lanes, so parameterized blocks apply a *different* unitary
// per lane. The per-lane-theta RZZ pair isolates that kernel: scalar row =
// K statevectors each applying its own RZZ(theta_k), batched row = one
// apply_matrix_per_lane over the K lanes.

static void BM_LanesPerLaneThetaRzzScalar(benchmark::State& state) {
  const auto n = static_cast<std::size_t>(state.range(0));
  const auto lanes = static_cast<std::size_t>(state.range(1));
  std::vector<sim::Statevector> svs(lanes, sim::Statevector(n));
  std::vector<la::CMat> us;
  for (std::size_t l = 0; l < lanes; ++l)
    us.push_back(qc::gate_matrix(qc::GateKind::RZZ, {0.37 + 0.01 * static_cast<double>(l)}));
  for (auto _ : state) {
    for (std::size_t l = 0; l < lanes; ++l) svs[l].apply_matrix(us[l], {0, 1});
    benchmark::DoNotOptimize(svs[0].data().data());
  }
  state.SetItemsProcessed(state.iterations() * static_cast<std::int64_t>(lanes));
  state.SetLabel(std::to_string(n) + "q x" + std::to_string(lanes) + " lanes");
}
static void BM_LanesPerLaneThetaRzzBatched(benchmark::State& state) {
  const auto n = static_cast<std::size_t>(state.range(0));
  const auto lanes = static_cast<std::size_t>(state.range(1));
  sim::BatchedStatevector bsv(n, lanes);
  std::vector<la::CMat> us;
  for (std::size_t l = 0; l < lanes; ++l)
    us.push_back(qc::gate_matrix(qc::GateKind::RZZ, {0.37 + 0.01 * static_cast<double>(l)}));
  for (auto _ : state) {
    bsv.apply_matrix_per_lane(us, {0, 1});
    benchmark::DoNotOptimize(&bsv);
  }
  state.SetItemsProcessed(state.iterations() * static_cast<std::int64_t>(lanes));
  state.SetLabel(std::to_string(n) + "q x" + std::to_string(lanes) + " lanes");
}
BENCHMARK(BM_LanesPerLaneThetaRzzScalar)->Args({12, 16});
BENCHMARK(BM_LanesPerLaneThetaRzzBatched)->Args({12, 16});

// The lane expectation pass: the sampling-free objective reduction
// sum_i v[i]*|amp_i|^2 per lane. Scalar row = per-statevector amplitude
// walk, batched row = one weighted_masses sweep over the lane-major layout.

static void BM_LanesExpectationScalar(benchmark::State& state) {
  const auto n = static_cast<std::size_t>(state.range(0));
  const auto lanes = static_cast<std::size_t>(state.range(1));
  const std::size_t dim = std::size_t{1} << n;
  std::vector<sim::Statevector> svs(lanes, sim::Statevector(n));
  for (auto& sv : svs) sv.apply_matrix(qc::gate_matrix(qc::GateKind::SX), {0});
  std::vector<double> values(dim);
  for (std::size_t i = 0; i < dim; ++i) values[i] = static_cast<double>(i % 7);
  double sink = 0.0;
  for (auto _ : state) {
    for (auto& sv : svs) {
      double num = 0.0, den = 0.0;
      for (std::size_t i = 0; i < dim; ++i) {
        const double m = std::norm(sv.data()[i]);
        num += values[i] * m;
        den += m;
      }
      sink += num / den;
    }
    benchmark::DoNotOptimize(sink);
  }
  state.SetItemsProcessed(state.iterations() * static_cast<std::int64_t>(lanes));
  state.SetLabel(std::to_string(n) + "q x" + std::to_string(lanes) + " lanes");
}
static void BM_LanesExpectationBatched(benchmark::State& state) {
  const auto n = static_cast<std::size_t>(state.range(0));
  const auto lanes = static_cast<std::size_t>(state.range(1));
  const std::size_t dim = std::size_t{1} << n;
  sim::BatchedStatevector bsv(n, lanes);
  bsv.apply_matrix(qc::gate_matrix(qc::GateKind::SX), {0});
  std::vector<double> values(dim);
  for (std::size_t i = 0; i < dim; ++i) values[i] = static_cast<double>(i % 7);
  std::vector<double> num(lanes), den(lanes);
  for (auto _ : state) {
    bsv.weighted_masses(values.data(), num.data(), den.data());
    benchmark::DoNotOptimize(num.data());
  }
  state.SetItemsProcessed(state.iterations() * static_cast<std::int64_t>(lanes));
  state.SetLabel(std::to_string(n) + "q x" + std::to_string(lanes) + " lanes");
}
BENCHMARK(BM_LanesExpectationScalar)->Args({12, 16});
BENCHMARK(BM_LanesExpectationBatched)->Args({12, 16});

// ---- executor engines: the per-evaluation hot path --------------------------

static void BM_ExecutorTrajectory(benchmark::State& state) {
  const backend::FakeBackend dev = backend::make_toronto();
  core::ExecutorOptions opts;
  opts.num_threads = static_cast<std::size_t>(state.range(1));
  core::Executor ex(dev, opts);
  const core::Program prog = toronto_ladder_program(static_cast<std::size_t>(state.range(0)));
  Rng rng(17);
  ex.run(prog, 1, rng);  // warm the unitary cache outside the timed region
  // 1024 shots = 4 batches of the parallel grid, so the threads=0 rows
  // actually exercise multi-threaded batch scheduling.
  for (auto _ : state) benchmark::DoNotOptimize(ex.run(prog, 1024, rng));
  state.SetLabel(std::to_string(state.range(0)) + "q, threads=" +
                 std::to_string(state.range(1)));
  state.SetItemsProcessed(state.iterations() * 1024);
}
BENCHMARK(BM_ExecutorTrajectory)
    ->Args({12, 1})
    ->Args({12, 0})
    ->Args({14, 1})
    ->Args({14, 0})
    ->Unit(benchmark::kMillisecond);

static void BM_ExecutorExactDensity(benchmark::State& state) {
  const backend::FakeBackend dev = backend::make_toronto();
  core::ExecutorOptions opts;
  opts.engine = core::Engine::ExactDensity;
  core::Executor ex(dev, opts);
  const core::Program prog = toronto_ladder_program(static_cast<std::size_t>(state.range(0)));
  Rng rng(19);
  ex.run(prog, 1, rng);
  for (auto _ : state) benchmark::DoNotOptimize(ex.run(prog, 256, rng));
  state.SetLabel(std::to_string(state.range(0)) + "q exact");
  state.SetItemsProcessed(state.iterations() * 256);
}
BENCHMARK(BM_ExecutorExactDensity)->Arg(4)->Arg(6)->Unit(benchmark::kMillisecond);

static void BM_StatevectorCx(benchmark::State& state) {
  const std::size_t n = static_cast<std::size_t>(state.range(0));
  sim::Statevector sv(n);
  const la::CMat cx = qc::gate_matrix(qc::GateKind::CX);
  std::size_t q = 0;
  for (auto _ : state) {
    sv.apply_matrix(cx, {q, (q + 1) % n});
    q = (q + 1) % (n - 1);
    benchmark::DoNotOptimize(sv.data().data());
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_StatevectorCx)->Arg(6)->Arg(10)->Arg(14)->Arg(18);

static void BM_StatevectorSample(benchmark::State& state) {
  sim::Statevector sv(static_cast<std::size_t>(state.range(0)));
  qc::Circuit c(sv.num_qubits());
  for (std::size_t q = 0; q < sv.num_qubits(); ++q) c.h(q);
  sv.run(c);
  Rng rng(1);
  for (auto _ : state) benchmark::DoNotOptimize(sv.sample(1024, rng));
}
BENCHMARK(BM_StatevectorSample)->Arg(6)->Arg(10);

static void BM_PulsePropagatorCx(benchmark::State& state) {
  const backend::FakeBackend dev = backend::make_toronto();
  const auto sub = dev.subsystem({0, 1}, true);
  const pulse::Schedule sched =
      backend::FakeBackend::remap_schedule(dev.calibrations().cx(0, 1), sub.remap);
  for (auto _ : state) {
    psim::PulseSystem sys = dev.subsystem({0, 1}, true).system;
    const psim::PulseSimulator sim(std::move(sys), psim::Integrator::Exact, 1,
                                   static_cast<int>(state.range(0)));
    benchmark::DoNotOptimize(sim.unitary(sched));
  }
  state.SetLabel("stride=" + std::to_string(state.range(0)));
}
BENCHMARK(BM_PulsePropagatorCx)->Arg(1)->Arg(4);

static void BM_SabreRouting(benchmark::State& state) {
  const auto inst = graph::paper_task1();
  const qc::Circuit qaoa = core::qaoa_circuit(inst.graph, 1).bound({0.6, 0.4});
  const auto coupling = backend::heavy_hex_27();
  Rng rng(7);
  for (auto _ : state)
    benchmark::DoNotOptimize(transpile::sabre_route(qaoa, coupling, rng, 1, {0, 1, 4, 7, 10, 12}));
}
BENCHMARK(BM_SabreRouting);

static void BM_M3Mitigate(benchmark::State& state) {
  Rng rng(11);
  std::vector<noise::ReadoutError> errors(6, {0.02, 0.04});
  sim::Counts counts;
  for (int i = 0; i < state.range(0); ++i)
    counts[static_cast<std::uint64_t>(rng.uniform_int(0, 63))] += 16;
  const mit::M3Mitigator m3(errors);
  for (auto _ : state) benchmark::DoNotOptimize(m3.mitigate(counts));
  state.SetLabel(std::to_string(counts.size()) + " strings");
}
BENCHMARK(BM_M3Mitigate)->Arg(16)->Arg(48);

// ---- hgp::obs instruments: the telemetry-on vs -off cost per call ----------
//
// Each pair measures one instrument in both gate states. The Off rows are
// the price every uninstrumented run pays (one relaxed flag load); the On
// rows are the live cost (sharded fetch_add for a counter; two clock reads,
// an id, and a ring write for a span). The Off rows should be within noise
// of an empty loop.

static void BM_ObsCounterIncOn(benchmark::State& state) {
  obs::set_enabled(true);
  obs::Counter c;
  for (auto _ : state) {
    c.inc();
    benchmark::DoNotOptimize(&c);
  }
  obs::set_enabled(false);
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_ObsCounterIncOn);

static void BM_ObsCounterIncOff(benchmark::State& state) {
  obs::set_enabled(false);
  obs::Counter c;
  for (auto _ : state) {
    c.inc();
    benchmark::DoNotOptimize(&c);
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_ObsCounterIncOff);

static void BM_ObsSpanOn(benchmark::State& state) {
  obs::set_enabled(true);
  obs::Histogram h(obs::default_latency_bounds_ns());
  for (auto _ : state) {
    obs::Span span("perf_micro.span", &h);
    benchmark::DoNotOptimize(&span);
  }
  obs::set_enabled(false);
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_ObsSpanOn);

static void BM_ObsSpanOff(benchmark::State& state) {
  obs::set_enabled(false);
  for (auto _ : state) {
    obs::Span span("perf_micro.span");
    benchmark::DoNotOptimize(&span);
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_ObsSpanOff);

static void BM_Eigh(benchmark::State& state) {
  Rng rng(3);
  const std::size_t n = static_cast<std::size_t>(state.range(0));
  la::CMat a(n, n);
  for (std::size_t i = 0; i < n; ++i) {
    a(i, i) = rng.normal();
    for (std::size_t j = i + 1; j < n; ++j) {
      a(i, j) = la::cxd{rng.normal(), rng.normal()};
      a(j, i) = std::conj(a(i, j));
    }
  }
  for (auto _ : state) benchmark::DoNotOptimize(la::eigh(a));
}
BENCHMARK(BM_Eigh)->Arg(2)->Arg(4)->Arg(8)->Arg(16);

BENCHMARK_MAIN();
