// Throughput of the serve layer on a Table II-style grid: the same 3-config
// sweep runs once sequentially (plain run_qaoa per cell, private caches) and
// once through a SweepRunner pool sharing one compiled-block cache. Reports
// wall-clock speedup, verifies the results are bit-identical, and emits a
// BENCH_sweep.json baseline with the cache hit rate across optimizer
// iterations.
//
//   bench_sweep [workers]            (default 4)
//   HGP_SHOTS / HGP_EVALS            scale the per-run budget (smoke mode)
//   HGP_BLOCK_STORE                  persistent compiled-block store path
//                                    ("" = off); the JSON's store counters
//                                    then separate disk-warmed hits from
//                                    in-process ones
#include <chrono>
#include <cstdio>
#include <fstream>
#include <string>
#include <vector>

#include "backend/presets.hpp"
#include "bench_util.hpp"
#include "serve/job.hpp"
#include "serve/sweep.hpp"

using namespace hgp;

namespace {

double seconds_since(std::chrono::steady_clock::time_point t0) {
  return std::chrono::duration<double>(std::chrono::steady_clock::now() - t0).count();
}

bool same_result(const core::RunResult& a, const core::RunResult& b) {
  return a.ar == b.ar && a.final_cost == b.final_cost &&
         a.optimizer.value == b.optimizer.value && a.optimizer.x == b.optimizer.x &&
         a.optimizer.history == b.optimizer.history;
}

}  // namespace

int main(int argc, char** argv) {
  const std::size_t workers = argc > 1 ? std::stoul(argv[1]) : 4;

  const backend::FakeBackend dev = backend::make_toronto();
  core::RunConfig base = benchutil::base_config();
  base.executor_threads = 1;  // parallelism comes from the sweep pool here

  std::vector<serve::JobRequest> jobs;
  core::RunConfig cobyla = base;
  jobs.push_back({{"task1/gate/cobyla", graph::paper_task1(), &dev,
                   core::ModelKind::GateLevel, cobyla}});
  core::RunConfig spsa = base;
  spsa.optimizer = "spsa";
  jobs.push_back({{"task1/hybrid/spsa", graph::paper_task1(), &dev,
                   core::ModelKind::Hybrid, spsa}});
  core::RunConfig nm = base;
  nm.optimizer = "neldermead";
  jobs.push_back({{"task2/gate/neldermead", graph::paper_task2(), &dev,
                   core::ModelKind::GateLevel, nm}});

  benchutil::header("serve::SweepRunner — batched evaluation service throughput");
  std::printf("%zu configs, %zu workers, %zu shots, %d evals per run\n\n", jobs.size(),
              workers, base.shots, base.max_evaluations);

  // Sequential baseline: one run at a time, no shared service.
  const auto t_seq = std::chrono::steady_clock::now();
  std::vector<core::RunResult> sequential;
  for (const serve::JobRequest& request : jobs)
    sequential.push_back(core::run_qaoa(request.run.instance, *request.run.dev,
                                        request.run.kind, request.run.config));
  const double seq_s = seconds_since(t_seq);

  // The service: shared pool + shared compiled-block cache (persisted to
  // HGP_BLOCK_STORE when set — a second invocation then starts disk-warm).
  serve::SweepRunner runner(serve::SweepRunner::Options{
      workers, 8192, benchutil::env_or_str("HGP_BLOCK_STORE", "")});
  const auto t_par = std::chrono::steady_clock::now();
  const std::vector<core::RunResult> parallel = runner.run_all(jobs);
  const double par_s = seconds_since(t_par);

  bool identical = parallel.size() == sequential.size();
  for (std::size_t i = 0; identical && i < jobs.size(); ++i)
    identical = same_result(parallel[i], sequential[i]);

  const serve::BlockCache::Stats cache = runner.cache_stats();
  const double speedup = par_s > 0.0 ? seq_s / par_s : 0.0;

  for (std::size_t i = 0; i < jobs.size(); ++i)
    std::printf("  %-24s AR %.1f%%  (%d evals)\n", jobs[i].run.label.c_str(),
                100.0 * parallel[i].ar, parallel[i].optimizer.evaluations);
  std::printf("\nsequential %.3f s | sweep %.3f s | speedup %.2fx | bit-identical: %s\n",
              seq_s, par_s, speedup, identical ? "yes" : "NO");
  std::printf("block cache: %llu hits / %llu misses (hit rate %.1f%%), %llu evictions\n",
              static_cast<unsigned long long>(cache.hits),
              static_cast<unsigned long long>(cache.misses), 100.0 * cache.hit_rate(),
              static_cast<unsigned long long>(cache.evictions));
  std::printf("  by kind: gate %llu/%llu, pulse %llu/%llu (hybrid mixers)\n",
              static_cast<unsigned long long>(cache.gate_hits),
              static_cast<unsigned long long>(cache.gate_misses),
              static_cast<unsigned long long>(cache.pulse_hits),
              static_cast<unsigned long long>(cache.pulse_misses));
  if (cache.store_loaded > 0 || cache.store_hits > 0 || cache.store_misses > 0)
    std::printf("  persistent store: %llu loaded, disk-warmed hits %llu / misses %llu "
                "(rate %.1f%%)\n",
                static_cast<unsigned long long>(cache.store_loaded),
                static_cast<unsigned long long>(cache.store_hits),
                static_cast<unsigned long long>(cache.store_misses),
                100.0 * cache.store_hit_rate());

  std::ofstream json("BENCH_sweep.json");
  json << "{\n"
       << "  \"bench\": \"sweep\",\n"
       << "  \"configs\": " << jobs.size() << ",\n"
       << "  \"workers\": " << workers << ",\n"
       << "  \"shots\": " << base.shots << ",\n"
       << "  \"evals\": " << base.max_evaluations << ",\n"
       << "  \"sequential_s\": " << seq_s << ",\n"
       << "  \"sweep_s\": " << par_s << ",\n"
       << "  \"speedup\": " << speedup << ",\n"
       << "  \"bit_identical\": " << (identical ? "true" : "false") << ",\n"
       << "  \"cache\": {\"hits\": " << cache.hits << ", \"misses\": " << cache.misses
       << ", \"evictions\": " << cache.evictions << ", \"hit_rate\": " << cache.hit_rate()
       << ", \"gate_hits\": " << cache.gate_hits << ", \"gate_misses\": " << cache.gate_misses
       << ", \"pulse_hits\": " << cache.pulse_hits
       << ", \"pulse_misses\": " << cache.pulse_misses
       << ", \"store_hits\": " << cache.store_hits
       << ", \"store_misses\": " << cache.store_misses
       << ", \"store_loaded\": " << cache.store_loaded
       << ", \"store_hit_rate\": " << cache.store_hit_rate() << "}\n"
       << "}\n";
  std::printf("wrote BENCH_sweep.json\n");
  return identical ? 0 : 1;
}
