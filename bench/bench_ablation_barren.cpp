// Ablation A6 (paper §VI open questions): trainability of the three
// abstraction layers. Barren-plateau-style diagnostic: the variance of the
// cost gradient over random parameter points, per model. The paper
// conjectures the pulse-level model's larger parameter space "may lead to
// problems such as Barren Plateaus".
#include <cstdio>

#include "backend/presets.hpp"
#include "bench_util.hpp"
#include "common/rng.hpp"
#include "common/table.hpp"
#include "core/executor.hpp"
#include "core/models.hpp"
#include "core/qaoa.hpp"
#include "graph/instances.hpp"

int main() {
  using namespace hgp;
  benchutil::header("Ablation A6: gradient variance across abstraction layers");

  const graph::Instance inst = graph::paper_task1();
  const backend::FakeBackend dev = backend::make_toronto();
  core::ExecutorOptions ideal;
  ideal.noise = false;
  ideal.readout_error = false;
  ideal.coherent_noise = false;

  Rng rng(4242);
  const int points = 10;
  const double eps = 0.05;
  const std::size_t shots = 1 << 14;

  Table t({"model", "params", "Var[dC/dtheta]", "mean |dC/dtheta|"});
  for (const auto kind :
       {core::ModelKind::GateLevel, core::ModelKind::Hybrid, core::ModelKind::PulseLevel}) {
    std::fprintf(stderr, "[A6] %s...\n", core::model_name(kind).c_str());
    core::ModelConfig mcfg;
    const core::QaoaModel model = core::QaoaModel::build(inst.graph, dev, kind, mcfg);
    core::Executor ex(dev, ideal);

    auto cost = [&](const std::vector<double>& theta) {
      Rng sample_rng(9);  // common random numbers: isolates the landscape
      const sim::Counts counts = ex.run(model.instantiate(theta), shots, sample_rng);
      return core::cut_expectation(inst.graph, counts);
    };

    // Gradient of the first parameter at random points in the box.
    std::vector<double> grads;
    for (int pt = 0; pt < points; ++pt) {
      std::vector<double> theta(model.num_parameters());
      const auto& specs = model.parameters();
      for (std::size_t i = 0; i < theta.size(); ++i)
        theta[i] = rng.uniform(specs[i].lo, specs[i].hi);
      std::vector<double> tp = theta, tm = theta;
      tp[0] += eps;
      tm[0] -= eps;
      grads.push_back((cost(tp) - cost(tm)) / (2.0 * eps));
    }
    double mean = 0.0, mean_abs = 0.0;
    for (double g : grads) {
      mean += g;
      mean_abs += std::abs(g);
    }
    mean /= points;
    mean_abs /= points;
    double var = 0.0;
    for (double g : grads) var += (g - mean) * (g - mean);
    var /= points;

    t.add_row({core::model_name(kind), std::to_string(model.num_parameters()),
               Table::num(var, 4), Table::num(mean_abs, 4)});
  }
  std::printf("%s\n", t.str().c_str());
  std::printf("larger parameter spaces flatten the landscape seen by any single knob —\n"
              "the hybrid model keeps gate-level-like gradient magnitudes while the\n"
              "pulse-level model's shrink (the paper's trainability concern).\n");
  return 0;
}
