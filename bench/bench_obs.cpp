// Telemetry overhead on the executor's hot path: times the lane-batched
// noisy shot loop with hgp::obs disabled and enabled, verifies the counts
// are bit-identical (telemetry must never perturb results), and emits
// BENCH_obs.json (best-of-reps, overhead ratio, registry snapshot). The
// committed baseline gates the on/off ratio at <= 2% overhead.
//
//   bench_obs [num_qubits] [shots] [reps] [threads] [lanes]
#include <algorithm>
#include <chrono>
#include <cstdio>
#include <fstream>
#include <string>

#include "backend/presets.hpp"
#include "bench_util.hpp"
#include "common/rng.hpp"
#include "core/executor.hpp"
#include "obs/metrics.hpp"
#include "obs/obs.hpp"
#include "obs/trace.hpp"

using namespace hgp;

int main(int argc, char** argv) {
  const std::size_t n = argc > 1 ? std::stoul(argv[1]) : 12;
  const std::size_t shots = argc > 2 ? std::stoul(argv[2]) : 256;
  const int reps = argc > 3 ? std::stoi(argv[3]) : 5;
  const std::size_t threads = argc > 4 ? std::stoul(argv[4]) : 1;
  const std::size_t lanes =
      argc > 5 ? std::stoul(argv[5]) : core::ExecutorOptions{}.shot_batch_lanes;

  const core::Program prog = benchutil::toronto_ladder_program(n);
  const backend::FakeBackend dev = backend::make_toronto();

  // Best-of-reps with a fresh seed-17 Rng per rep: both telemetry states
  // execute the identical shot grid, so the counts comparison is exact.
  auto time_run = [&](bool telemetry, sim::Counts* counts_out) {
    obs::set_enabled(telemetry);
    core::ExecutorOptions opts;
    opts.num_threads = threads;
    opts.shot_batch_lanes = lanes;
    core::Executor ex(dev, opts);
    Rng warm(1);
    ex.run(prog, 1, warm);  // warm the compiled-block cache
    double best_s = 1e300;
    for (int r = 0; r < reps; ++r) {
      Rng rng(17);
      const auto t0 = std::chrono::steady_clock::now();
      *counts_out = ex.run(prog, shots, rng);
      const auto t1 = std::chrono::steady_clock::now();
      best_s = std::min(best_s, std::chrono::duration<double>(t1 - t0).count());
    }
    obs::set_enabled(false);
    return best_s;
  };

  sim::Counts off_counts, on_counts;
  const double off_s = time_run(false, &off_counts);
  const double on_s = time_run(true, &on_counts);
  const double overhead = off_s > 0.0 ? on_s / off_s : 0.0;
  const bool identical = off_counts == on_counts;

  const obs::Registry& reg = obs::Registry::global();
  const std::uint64_t spans = obs::Tracer::global().total_recorded();

  std::printf("%zu qubits, %zu shots, %zu threads, %zu lanes\n", n, shots, threads, lanes);
  std::printf("telemetry off: best %.3f s (%.1f shots/s)\n", off_s, shots / off_s);
  std::printf("telemetry on:  best %.3f s (%.1f shots/s)  ->  %.4fx overhead\n", on_s,
              shots / on_s, overhead);
  std::printf("counts bit-identical on vs off: %s\n", identical ? "yes" : "NO");
  std::printf("spans recorded: %llu\n", static_cast<unsigned long long>(spans));
  std::printf("registry snapshot: %s\n", reg.to_json().c_str());

  std::ofstream json("BENCH_obs.json");
  json << "{\n"
       << "  \"bench\": \"obs\",\n"
       << "  \"qubits\": " << n << ",\n"
       << "  \"shots\": " << shots << ",\n"
       << "  \"reps\": " << reps << ",\n"
       << "  \"threads\": " << threads << ",\n"
       << "  \"lanes\": " << lanes << ",\n"
       << "  \"off_s\": " << off_s << ",\n"
       << "  \"on_s\": " << on_s << ",\n"
       << "  \"overhead_ratio\": " << overhead << ",\n"
       << "  \"spans_recorded\": " << spans << ",\n"
       << "  \"bit_identical\": " << (identical ? "true" : "false") << "\n"
       << "}\n";
  std::printf("wrote BENCH_obs.json\n");
  // Overhead is gated against the committed baseline by tools/check_bench.py;
  // only a result-perturbing telemetry bug fails the bench itself.
  return identical ? 0 : 1;
}
