// Ablation A3: which noise source produces the hybrid model's advantage?
// Toggle each modeled error channel off in turn and re-train both models.
#include <cstdio>

#include "backend/presets.hpp"
#include "bench_util.hpp"
#include "common/table.hpp"
#include "graph/instances.hpp"

namespace {

using namespace hgp;

backend::FakeBackend variant(const std::string& which) {
  backend::FakeBackend dev = backend::make_toronto();
  auto& nm = dev.mutable_noise_model();
  if (which == "no coherent drift/gain") {
    for (auto& q : nm.qubits) {
      q.freq_drift_ghz = 0.0;
      q.drive_gain = 1.0;
    }
  } else if (which == "no depolarizing") {
    nm.dep_per_1q_pulse = 0.0;
    nm.dep_per_2q_block = 0.0;
  } else if (which == "no T1/T2") {
    for (auto& q : nm.qubits) {
      q.t1_us = 1e9;
      q.t2_us = 1e9;
    }
  } else if (which == "no readout error") {
    for (auto& q : nm.qubits) q.readout = noise::ReadoutError{};
  }
  return dev;
}

}  // namespace

int main() {
  using namespace hgp;
  benchutil::header("Ablation A3: error-source decomposition of the hybrid advantage");

  const graph::Instance inst = graph::paper_task1();
  Table t({"noise model", "gate AR", "hybrid AR", "hybrid gain"});
  for (const char* which : {"full model", "no coherent drift/gain", "no depolarizing",
                            "no T1/T2", "no readout error"}) {
    std::fprintf(stderr, "[A3] %s...\n", which);
    const backend::FakeBackend dev = variant(which);
    core::RunConfig cfg = benchutil::base_config();
    cfg.gate_optimization = true;
    const auto gate = core::run_qaoa(inst, dev, core::ModelKind::GateLevel, cfg);
    const auto hybrid = core::run_qaoa(inst, dev, core::ModelKind::Hybrid, cfg);
    t.add_row({which, Table::pct(gate.ar), Table::pct(hybrid.ar),
               Table::num(100.0 * (hybrid.ar - gate.ar), 1) + " pp"});
  }
  std::printf("%s\n", t.str().c_str());
  std::printf("expected: removing the coherent miscalibration (drift/gain) removes most\n"
              "of the hybrid's edge — the trainable pulse parameters win by absorbing\n"
              "exactly those errors (paper §IV-A: amplitude and frequency are invisible\n"
              "to gate-level users).\n");
  return 0;
}
