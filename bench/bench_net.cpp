// Wire-protocol overhead: the same 6-job grid trains (a) in process through
// JobService::submit and (b) over a loopback TCP connection through the HGPN
// front end (net::Server / net::Client), with identical serve::JobRequest
// payloads — the wire run resolves the backend by name server-side. Reports
// sequential submit→outcome latency percentiles for both paths plus the
// wire/in-process wall-clock ratio on a concurrent batch, gated against
// bench/baselines/BENCH_net.json; exits non-zero unless every wire outcome
// is bit-identical to its in-process twin.
//
//   bench_net [workers]              (default 2)
//   HGP_SHOTS / HGP_EVALS            scale the per-run budget (smoke mode)
#include <algorithm>
#include <chrono>
#include <cstdio>
#include <cstring>
#include <fstream>
#include <string>
#include <vector>

#include "backend/presets.hpp"
#include "bench_util.hpp"
#include "net/client.hpp"
#include "net/server.hpp"
#include "serve/job.hpp"
#include "serve/job_service.hpp"

using namespace hgp;

namespace {

double seconds_since(std::chrono::steady_clock::time_point t0) {
  return std::chrono::duration<double>(std::chrono::steady_clock::now() - t0).count();
}

bool same_double(double a, double b) { return std::memcmp(&a, &b, sizeof a) == 0; }

bool same_doubles(const std::vector<double>& a, const std::vector<double>& b) {
  if (a.size() != b.size()) return false;
  for (std::size_t i = 0; i < a.size(); ++i)
    if (!same_double(a[i], b[i])) return false;
  return true;
}

/// Bitwise result comparison — the wire round trip must not perturb a single
/// mantissa bit anywhere in the training trace.
bool same_result(const core::RunResult& a, const core::RunResult& b) {
  return same_double(a.ar, b.ar) && same_double(a.final_cost, b.final_cost) &&
         same_double(a.optimizer.value, b.optimizer.value) &&
         a.optimizer.evaluations == b.optimizer.evaluations &&
         same_doubles(a.optimizer.x, b.optimizer.x) &&
         same_doubles(a.optimizer.history, b.optimizer.history);
}

double percentile(std::vector<double> xs, double p) {
  if (xs.empty()) return 0.0;
  std::sort(xs.begin(), xs.end());
  const double rank = p * static_cast<double>(xs.size() - 1);
  const std::size_t lo = static_cast<std::size_t>(rank);
  const std::size_t hi = std::min(lo + 1, xs.size() - 1);
  return xs[lo] + (xs[hi] - xs[lo]) * (rank - static_cast<double>(lo));
}

core::RunResult must_complete(serve::JobOutcome outcome, const char* where) {
  if (outcome.state != serve::JobState::Completed) {
    std::printf("%s: job ended %s: %s\n", where,
                serve::job_state_name(outcome.state).c_str(),
                outcome.error.message.c_str());
    std::exit(1);
  }
  return std::move(outcome.result);
}

}  // namespace

int main(int argc, char** argv) {
  const std::size_t workers = argc > 1 ? std::stoul(argv[1]) : 2;

  core::RunConfig base = benchutil::base_config();
  base.executor_threads = 1;  // parallelism comes from the service pool here

  // The bench_jobs grid: two copies of a 3-config sweep. Wire form — backend
  // travels by preset name, run.dev stays null until the server resolves it.
  std::vector<serve::JobRequest> grid;
  for (int copy = 0; copy < 2; ++copy) {
    const std::string tag = copy == 0 ? "/a" : "/b";
    core::RunConfig cobyla = base;
    grid.push_back({{"task1/gate/cobyla" + tag, graph::paper_task1(), nullptr,
                     core::ModelKind::GateLevel, cobyla}});
    core::RunConfig spsa = base;
    spsa.optimizer = "spsa";
    grid.push_back({{"task1/hybrid/spsa" + tag, graph::paper_task1(), nullptr,
                     core::ModelKind::Hybrid, spsa}});
    core::RunConfig nm = base;
    nm.optimizer = "neldermead";
    grid.push_back({{"task2/gate/neldermead" + tag, graph::paper_task2(), nullptr,
                     core::ModelKind::GateLevel, nm}});
  }
  for (serve::JobRequest& request : grid) request.backend = "ibmq_toronto";

  serve::JobService::Options service_options;
  service_options.num_workers = workers;
  service_options.cache_capacity = 8192;

  benchutil::header("net::Server — HGPN wire front end vs in-process submission");
  std::printf("%zu jobs, %zu workers, %zu shots, %d evals per run\n\n", grid.size(),
              workers, base.shots, base.max_evaluations);

  // ---- In-process reference: same JobRequest, dev pointer set locally. ----
  const backend::FakeBackend dev = backend::make_toronto();
  std::vector<core::RunResult> inproc;
  std::vector<double> inproc_lat;
  double inproc_batch_s = 0.0;
  {
    serve::JobService svc(service_options);
    // Sequential round trips: submit→outcome latency per job.
    for (const serve::JobRequest& request : grid) {
      serve::JobRequest local = request;
      local.run.dev = &dev;
      const auto t0 = std::chrono::steady_clock::now();
      serve::JobHandle handle = svc.submit(std::move(local));
      inproc.push_back(must_complete(handle.outcome.get(), "inproc"));
      inproc_lat.push_back(seconds_since(t0));
    }
    // Concurrent batch: throughput with the pool actually loaded.
    const auto t0 = std::chrono::steady_clock::now();
    std::vector<serve::JobHandle> handles;
    for (const serve::JobRequest& request : grid) {
      serve::JobRequest local = request;
      local.run.dev = &dev;
      handles.push_back(svc.submit(std::move(local)));
    }
    for (std::size_t i = 0; i < handles.size(); ++i)
      if (!same_result(must_complete(handles[i].outcome.get(), "inproc batch"),
                       inproc[i])) {
        std::printf("inproc batch result %zu diverged from sequential run\n", i);
        return 1;
      }
    inproc_batch_s = seconds_since(t0);
  }

  // ---- Loopback wire path: same requests through net::Server/Client. ----
  std::vector<core::RunResult> wire;
  std::vector<double> wire_lat;
  double wire_batch_s = 0.0;
  {
    net::Server::Options options;
    options.service = service_options;
    net::Server server(options);
    net::Client client("127.0.0.1", server.port());

    for (const serve::JobRequest& request : grid) {
      const auto t0 = std::chrono::steady_clock::now();
      net::Client::Submitted submitted = client.submit(request);
      if (!submitted.accepted()) {
        std::printf("wire submit rejected: %s\n", submitted.error.message.c_str());
        return 1;
      }
      wire.push_back(must_complete(*client.await(submitted.id), "wire"));
      wire_lat.push_back(seconds_since(t0));
    }

    const auto t0 = std::chrono::steady_clock::now();
    std::vector<serve::JobId> ids;
    for (const serve::JobRequest& request : grid) {
      net::Client::Submitted submitted = client.submit(request);
      if (!submitted.accepted()) {
        std::printf("wire batch submit rejected: %s\n", submitted.error.message.c_str());
        return 1;
      }
      ids.push_back(submitted.id);
    }
    for (std::size_t i = 0; i < ids.size(); ++i)
      if (!same_result(must_complete(*client.await(ids[i]), "wire batch"), wire[i])) {
        std::printf("wire batch result %zu diverged from sequential run\n", i);
        return 1;
      }
    wire_batch_s = seconds_since(t0);

    client.close();
    server.stop();
  }

  bool identical = wire.size() == inproc.size();
  for (std::size_t i = 0; identical && i < inproc.size(); ++i)
    identical = same_result(wire[i], inproc[i]);

  const double overhead = inproc_batch_s > 0.0 ? wire_batch_s / inproc_batch_s : 0.0;
  const double inproc_rate =
      inproc_batch_s > 0.0 ? static_cast<double>(grid.size()) / inproc_batch_s : 0.0;
  const double wire_rate =
      wire_batch_s > 0.0 ? static_cast<double>(grid.size()) / wire_batch_s : 0.0;

  for (std::size_t i = 0; i < grid.size(); ++i)
    std::printf("  %-26s AR %.1f%%  (%d evals)\n", grid[i].run.label.c_str(),
                100.0 * wire[i].ar, wire[i].optimizer.evaluations);
  std::printf("\nlatency p50/p99: inproc %.1f/%.1f ms | wire %.1f/%.1f ms\n",
              1e3 * percentile(inproc_lat, 0.50), 1e3 * percentile(inproc_lat, 0.99),
              1e3 * percentile(wire_lat, 0.50), 1e3 * percentile(wire_lat, 0.99));
  std::printf("batch: inproc %.3f s (%.1f jobs/s) | wire %.3f s (%.1f jobs/s)\n",
              inproc_batch_s, inproc_rate, wire_batch_s, wire_rate);
  std::printf("wire overhead %.3fx | bit-identical: %s\n", overhead,
              identical ? "yes" : "NO");

  std::ofstream json("BENCH_net.json");
  json << "{\n"
       << "  \"bench\": \"net\",\n"
       << "  \"jobs\": " << grid.size() << ",\n"
       << "  \"workers\": " << workers << ",\n"
       << "  \"shots\": " << base.shots << ",\n"
       << "  \"evals\": " << base.max_evaluations << ",\n"
       << "  \"inproc_p50_ms\": " << 1e3 * percentile(inproc_lat, 0.50) << ",\n"
       << "  \"inproc_p99_ms\": " << 1e3 * percentile(inproc_lat, 0.99) << ",\n"
       << "  \"wire_p50_ms\": " << 1e3 * percentile(wire_lat, 0.50) << ",\n"
       << "  \"wire_p99_ms\": " << 1e3 * percentile(wire_lat, 0.99) << ",\n"
       << "  \"inproc_batch_s\": " << inproc_batch_s << ",\n"
       << "  \"wire_batch_s\": " << wire_batch_s << ",\n"
       << "  \"inproc_jobs_per_s\": " << inproc_rate << ",\n"
       << "  \"wire_jobs_per_s\": " << wire_rate << ",\n"
       << "  \"overhead_ratio\": " << overhead << ",\n"
       << "  \"bit_identical\": " << (identical ? "true" : "false") << "\n"
       << "}\n";
  std::printf("wrote BENCH_net.json\n");
  return identical ? 0 : 1;
}
