// Compile-path cost of the hybrid model's block pipeline: the same hybrid
// QAOA layer (problem segment + trainable pulse mixers) is compiled cold
// (empty cache — every gate and pulse block runs the pulse-ODE simulator)
// and warm (every block served from the shared serve::BlockCache), plus a
// simulator-level measurement of CompiledSchedule reuse (compile-once IR vs.
// re-lowering the schedule per call). Verifies counts are bit-identical
// cache-on vs. cache-off and emits BENCH_pulse.json.
//
// When HGP_BLOCK_STORE names a file, it also measures the cross-process
// persistent-store path: a fresh cache warm-starts from the store another
// invocation wrote (zero pulse-ODE compilations for the same calibration)
// and writes through for the next one — run the binary twice with the same
// store to get a disk-warmed second run.
//
//   bench_pulse_compile [warm_iters]   (default 5)
//   HGP_SHOTS                          shots for the bit-identical check
//   HGP_BLOCK_STORE                    persistent store path ("" = off)
#include <chrono>
#include <cstdio>
#include <fstream>
#include <memory>
#include <string>

#include "backend/presets.hpp"
#include "bench_util.hpp"
#include "core/models.hpp"
#include "graph/instances.hpp"
#include "pulsesim/simulator.hpp"
#include "serve/block_cache.hpp"

using namespace hgp;

namespace {

double seconds_since(std::chrono::steady_clock::time_point t0) {
  return std::chrono::duration<double>(std::chrono::steady_clock::now() - t0).count();
}

}  // namespace

int main(int argc, char** argv) {
  const std::size_t warm_iters = argc > 1 ? std::stoul(argv[1]) : 5;
  const std::size_t shots = benchutil::env_or("HGP_SHOTS", 256);

  const backend::FakeBackend dev = backend::make_toronto();
  const graph::Instance inst = graph::paper_task1();
  core::ModelConfig mcfg;
  const core::QaoaModel model =
      core::QaoaModel::build(inst.graph, dev, core::ModelKind::Hybrid, mcfg);
  const core::Program prog = model.instantiate(model.initial_parameters());

  benchutil::header("block-compilation pipeline — hybrid layer, cold vs. warm cache");
  std::printf("%zu ops (%zu pulse-block plays), %zu warm iterations\n\n", prog.ops.size(),
              prog.pulse_block_play_count(), warm_iters);

  auto cache = std::make_shared<serve::BlockCache>(4096);
  core::ExecutorOptions opts;
  opts.block_cache = cache;
  opts.num_threads = 1;
  core::Executor ex(dev, opts);

  // Cold: every block compiles through the pulse simulator. One shot keeps
  // the measurement compile-dominated.
  Rng rng(1);
  const auto t_cold = std::chrono::steady_clock::now();
  ex.run(prog, 1, rng);
  const double cold_s = seconds_since(t_cold);

  // Warm: the identical program (a repeated candidate angle) — every gate
  // and pulse block is served from the cache.
  const auto t_warm = std::chrono::steady_clock::now();
  for (std::size_t i = 0; i < warm_iters; ++i) ex.run(prog, 1, rng);
  const double warm_s = seconds_since(t_warm) / static_cast<double>(warm_iters);
  const double speedup = warm_s > 0.0 ? cold_s / warm_s : 0.0;
  const serve::BlockCache::Stats cache_stats = ex.cache_stats();

  // Bit-identical check: warm shared cache vs. fresh private caches.
  Rng warm_rng(42), cold_rng(42);
  const sim::Counts warm_counts = ex.run(prog, shots, warm_rng);
  core::ExecutorOptions fresh_opts;
  fresh_opts.num_threads = 1;
  core::Executor fresh(dev, fresh_opts);
  const sim::Counts cold_counts = fresh.run(prog, shots, cold_rng);
  bool identical = warm_counts == cold_counts;

  // Cross-process persistence: a fresh cache attached to HGP_BLOCK_STORE.
  // First invocation compiles cold and writes the store; a second invocation
  // (fresh process) loads it and must compile zero pulse blocks.
  const std::string store_path = benchutil::env_or_str("HGP_BLOCK_STORE", "");
  const bool store_enabled = !store_path.empty();
  double store_s = 0.0;
  bool store_warm = false, store_identical = true;
  serve::BlockCache::Stats store_stats;
  if (store_enabled) {
    core::ExecutorOptions sopts;
    sopts.num_threads = 1;
    sopts.block_store_path = store_path;
    Rng srng(1);
    // The timer covers executor construction too: attaching the store —
    // parsing and deserializing every record — is the cost the warm path
    // pays instead of compiling, so it belongs inside the measurement.
    const auto t_store = std::chrono::steady_clock::now();
    core::Executor store_ex(dev, sopts);
    store_ex.run(prog, 1, srng);
    store_s = seconds_since(t_store);
    store_warm = store_ex.cache_stats().store_loaded > 0;
    Rng check_rng(42);
    store_identical = store_ex.run(prog, shots, check_rng) == cold_counts;
    identical = identical && store_identical;
    store_stats = store_ex.cache_stats();
  }

  // CompiledSchedule reuse at the simulator layer: lower a mixer-style
  // schedule (frame knobs around a 320dt Gaussian, as QaoaModel emits) once
  // and reuse the IR vs. re-lowering per evolve.
  pulse::Schedule mixer("mixer");
  const pulse::Channel d0 = pulse::Channel::drive(0);
  mixer.append(pulse::ShiftPhase{0.1, d0});
  mixer.append(pulse::ShiftFrequency{0.01, d0});
  mixer.append(pulse::Play{
      pulse::PulseShape::gaussian(mcfg.mixer_duration_dt, 0.2, mcfg.mixer_duration_dt / 4.0),
      d0});
  mixer.append(pulse::ShiftFrequency{-0.01, d0});
  mixer.append(pulse::ShiftPhase{-0.1, d0});
  backend::FakeBackend::Subsystem sub = dev.subsystem({0}, true);
  const pulse::Schedule local = backend::FakeBackend::remap_schedule(mixer, sub.remap);
  const psim::PulseSimulator sim(std::move(sub.system));
  la::CVec psi0(2, la::cxd{0.0, 0.0});
  psi0[0] = 1.0;
  constexpr int kEvolves = 50;

  const auto t_percall = std::chrono::steady_clock::now();
  for (int i = 0; i < kEvolves; ++i) sim.evolve(local, psi0);
  const double percall_s = seconds_since(t_percall) / kEvolves;

  const psim::CompiledSchedule cs = sim.compile(local);
  const auto t_reuse = std::chrono::steady_clock::now();
  for (int i = 0; i < kEvolves; ++i) sim.evolve(cs, psi0);
  const double reuse_s = seconds_since(t_reuse) / kEvolves;
  const double ir_speedup = reuse_s > 0.0 ? percall_s / reuse_s : 0.0;

  std::printf("cold compile  %.4f s\nwarm compile  %.4f s  (%.1fx)\n", cold_s, warm_s,
              speedup);
  std::printf("pulse blocks: %llu hits / %llu misses (hit rate %.1f%%); gate blocks: "
              "%llu hits / %llu misses\n",
              static_cast<unsigned long long>(cache_stats.pulse_hits),
              static_cast<unsigned long long>(cache_stats.pulse_misses),
              100.0 * cache_stats.pulse_hit_rate(),
              static_cast<unsigned long long>(cache_stats.gate_hits),
              static_cast<unsigned long long>(cache_stats.gate_misses));
  std::printf("CompiledSchedule reuse: %.1f us/evolve vs %.1f us re-lowered (%.1fx)\n",
              1e6 * reuse_s, 1e6 * percall_s, ir_speedup);
  if (store_enabled) {
    std::printf("persistent store (%s): %s start, %.4f s (%.1fx vs cold), "
                "%llu loaded, store hits %llu / misses %llu (rate %.1f%%), "
                "pulse compiles %llu\n",
                store_path.c_str(), store_warm ? "WARM" : "cold", store_s,
                store_s > 0.0 ? cold_s / store_s : 0.0,
                static_cast<unsigned long long>(store_stats.store_loaded),
                static_cast<unsigned long long>(store_stats.store_hits),
                static_cast<unsigned long long>(store_stats.store_misses),
                100.0 * store_stats.store_hit_rate(),
                static_cast<unsigned long long>(store_stats.pulse_misses));
  }
  std::printf("counts bit-identical cache-on vs cache-off: %s\n", identical ? "yes" : "NO");

  std::ofstream json("BENCH_pulse.json");
  json << "{\n"
       << "  \"bench\": \"pulse_compile\",\n"
       << "  \"ops\": " << prog.ops.size() << ",\n"
       << "  \"warm_iters\": " << warm_iters << ",\n"
       << "  \"cold_s\": " << cold_s << ",\n"
       << "  \"warm_s\": " << warm_s << ",\n"
       << "  \"speedup\": " << speedup << ",\n"
       << "  \"ir_evolve_reused_s\": " << reuse_s << ",\n"
       << "  \"ir_evolve_relowered_s\": " << percall_s << ",\n"
       << "  \"ir_speedup\": " << ir_speedup << ",\n"
       << "  \"bit_identical\": " << (identical ? "true" : "false") << ",\n"
       << "  \"cache\": {\"pulse_hits\": " << cache_stats.pulse_hits
       << ", \"pulse_misses\": " << cache_stats.pulse_misses
       << ", \"gate_hits\": " << cache_stats.gate_hits
       << ", \"gate_misses\": " << cache_stats.gate_misses
       << ", \"pulse_hit_rate\": " << cache_stats.pulse_hit_rate() << "},\n"
       << "  \"store\": {\"enabled\": " << (store_enabled ? "true" : "false")
       << ", \"warm_start\": " << (store_warm ? "true" : "false")
       << ", \"loaded\": " << store_stats.store_loaded
       << ", \"store_hits\": " << store_stats.store_hits
       << ", \"store_misses\": " << store_stats.store_misses
       << ", \"store_hit_rate\": " << store_stats.store_hit_rate()
       << ", \"pulse_misses\": " << store_stats.pulse_misses
       << ", \"store_s\": " << store_s
       << ", \"store_speedup\": " << (store_s > 0.0 ? cold_s / store_s : 0.0)
       << ", \"bit_identical\": " << (store_identical ? "true" : "false") << "}\n"
       << "}\n";
  std::printf("wrote BENCH_pulse.json\n");
  return identical ? 0 : 1;
}
