// Table II as a service workload: queue a small model × optimizer grid onto
// one serve::SweepRunner and stream the results. Every run's optimizer
// candidates and all concurrent runs share the worker pool and the
// compiled-block cache, so identical gate blocks compile once for the whole
// grid — the per-evaluation cost drops to the parameter-bearing blocks.
//
//   build/example_sweep_table2 [workers] [task] [evals]
#include <chrono>
#include <cstdio>
#include <string>
#include <vector>

#include "backend/presets.hpp"
#include "common/table.hpp"
#include "serve/job.hpp"
#include "serve/sweep.hpp"

int main(int argc, char** argv) {
  using namespace hgp;

  const std::size_t workers = argc > 1 ? std::stoul(argv[1]) : 4;
  const int task = argc > 2 ? std::stoi(argv[2]) : 1;
  const int evals = argc > 3 ? std::stoi(argv[3]) : 20;

  const graph::Instance instance = task == 1   ? graph::paper_task1()
                                   : task == 2 ? graph::paper_task2()
                                               : graph::paper_task3();
  const backend::FakeBackend dev = backend::make_toronto();

  std::printf("== %s on %s: %zu-worker sweep ==\n", instance.name.c_str(),
              dev.name().c_str(), workers);

  std::vector<serve::JobRequest> jobs;
  for (const auto kind : {core::ModelKind::GateLevel, core::ModelKind::Hybrid}) {
    for (const std::string optimizer : {"cobyla", "spsa", "neldermead"}) {
      core::RunConfig cfg;
      cfg.max_evaluations = evals;
      cfg.optimizer = optimizer;
      cfg.executor_threads = 1;  // the sweep pool provides the parallelism
      jobs.push_back(
          {{core::model_name(kind) + "/" + optimizer, instance, &dev, kind, cfg}});
    }
  }

  serve::SweepRunner runner(serve::SweepRunner::Options{workers, 8192});
  const auto t0 = std::chrono::steady_clock::now();
  const std::vector<core::RunResult> results = runner.run_all(jobs);
  const double elapsed =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - t0).count();

  Table table({"run", "AR", "evals", "converged@", "makespan (dt)"});
  for (std::size_t i = 0; i < jobs.size(); ++i)
    table.add_row({jobs[i].run.label, Table::pct(results[i].ar),
                   std::to_string(results[i].optimizer.evaluations),
                   std::to_string(results[i].iterations_to_converge),
                   std::to_string(results[i].makespan_dt)});
  std::printf("%s\n", table.str().c_str());

  const serve::BlockCache::Stats cache = runner.cache_stats();
  std::printf("%zu runs in %.2f s on %zu workers\n", jobs.size(), elapsed,
              runner.service().num_workers());
  std::printf("shared block cache: %llu hits / %llu misses (hit rate %.1f%%)\n",
              static_cast<unsigned long long>(cache.hits),
              static_cast<unsigned long long>(cache.misses), 100.0 * cache.hit_rate());
  return 0;
}
