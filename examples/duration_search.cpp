// Step I demo (paper §IV-B): binary search for the minimum mixer pulse
// duration, in hardware-granularity multiples of 32 dt, that keeps the
// trained approximation ratio.
//
//   build/examples/example_duration_search [backend]
#include <cstdio>
#include <string>

#include "backend/presets.hpp"
#include "core/workflow.hpp"
#include "graph/instances.hpp"

int main(int argc, char** argv) {
  using namespace hgp;
  const std::string backend_name = argc > 1 ? argv[1] : "ibmq_toronto";
  const backend::FakeBackend dev = backend::make_backend(backend_name);
  const graph::Instance instance = graph::paper_task1();

  core::RunConfig cfg;
  cfg.gate_optimization = true;

  std::printf("Step I: pulse-duration binary search on %s (hybrid model)\n\n",
              dev.name().c_str());
  const auto outcome = core::optimize_mixer_duration(instance, dev, cfg);

  std::printf("%-14s %s\n", "duration (dt)", "trained AR");
  for (const auto& [dur, score] : outcome.search.trace)
    std::printf("%-14d %.1f%%%s\n", dur, 100.0 * score,
                dur == outcome.search.best_duration ? "   <- selected" : "");

  std::printf("\nbaseline 320 dt -> selected %d dt: %.0f%% duration reduction, AR %.1f%% -> %.1f%%\n",
              outcome.search.best_duration,
              100.0 * (1.0 - outcome.search.best_duration / 320.0),
              100.0 * outcome.search.baseline_score, 100.0 * outcome.final_run.ar);
  return 0;
}
