// Full workflow demo: compare all three abstraction layers (gate-level,
// hybrid gate-pulse, pulse-level) on one Max-Cut task, with and without the
// Step II/III optimizations, and run the Step I duration search.
//
//   build/example_maxcut_qaoa [backend] [task] [engine]
//
// `engine` selects the executor noise engine: "trajectory" | "density".
#include <cstdio>
#include <string>

#include "backend/presets.hpp"
#include "common/table.hpp"
#include "core/workflow.hpp"
#include "graph/instances.hpp"
#include "graph/maxcut.hpp"

int main(int argc, char** argv) {
  using namespace hgp;

  const std::string backend_name = argc > 1 ? argv[1] : "ibmq_toronto";
  const int task = argc > 2 ? std::stoi(argv[2]) : 1;
  const std::string engine = argc > 3 ? argv[3] : "trajectory";

  const graph::Instance instance = task == 1   ? graph::paper_task1()
                                   : task == 2 ? graph::paper_task2()
                                               : graph::paper_task3();
  const backend::FakeBackend dev = backend::make_backend(backend_name);

  std::printf("== %s on %s ==\n", instance.name.c_str(), dev.name().c_str());

  // Classical context: what a non-quantum heuristic achieves.
  Rng rng(1);
  const auto classical = graph::max_cut_local_search(instance.graph, rng);
  std::printf("classical local search: cut %.0f / %.0f\n\n", classical.value,
              instance.max_cut);

  Table table({"model", "raw AR", "GO+M3 AR", "GO+M3+CVaR AR", "mixer (dt)"});
  for (const auto kind :
       {core::ModelKind::GateLevel, core::ModelKind::Hybrid, core::ModelKind::PulseLevel}) {
    core::RunConfig raw_cfg;
    raw_cfg.engine = engine;
    raw_cfg.max_evaluations = kind == core::ModelKind::PulseLevel ? 200 : 50;
    const auto raw = core::run_qaoa(instance, dev, kind, raw_cfg);

    core::RunConfig go_cfg = raw_cfg;
    go_cfg.gate_optimization = true;
    go_cfg.m3 = true;
    const auto go = core::run_qaoa(instance, dev, kind, go_cfg);

    core::RunConfig cvar_cfg = go_cfg;
    cvar_cfg.cvar = true;
    const auto cvar = core::run_qaoa(instance, dev, kind, cvar_cfg);

    table.add_row({core::model_name(kind), Table::pct(raw.ar), Table::pct(go.ar),
                   Table::pct(cvar.ar), std::to_string(raw.mixer_layer_duration_dt)});
  }
  std::printf("%s\n", table.str().c_str());

  // Step I: binary search for the shortest mixer pulse (hybrid model).
  std::printf("Step I duration search (hybrid, GO+M3):\n");
  core::RunConfig search_cfg;
  search_cfg.engine = engine;
  search_cfg.gate_optimization = true;
  search_cfg.m3 = true;
  const auto outcome = core::optimize_mixer_duration(instance, dev, search_cfg);
  for (const auto& [dur, score] : outcome.search.trace)
    std::printf("  duration %4d dt -> AR %.1f%%\n", dur, 100.0 * score);
  std::printf("  selected %d dt (baseline 320 dt): %.0f%% shorter\n",
              outcome.search.best_duration,
              100.0 * (1.0 - outcome.search.best_duration / 320.0));
  return 0;
}
