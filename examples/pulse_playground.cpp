// Pulse-level tour: build schedules, inspect the calibrated gate pulses of a
// fake backend (including the paper's Fig. 2f RZZ realization), and verify
// the cross-resonance physics with the pulse simulator.
//
//   build/examples/example_pulse_playground
#include <cstdio>

#include "backend/presets.hpp"
#include "circuit/gates.hpp"
#include "pulse/calibration.hpp"
#include "pulsesim/simulator.hpp"
#include "transpile/lowering.hpp"

int main() {
  using namespace hgp;
  const backend::FakeBackend dev = backend::make_toronto();
  const pulse::CalibrationSet& cal = dev.calibrations();

  std::printf("== calibrated single-qubit pulses (qubit 0) ==\n");
  std::printf("SX amplitude: %.4f (analytic, drive rate %.4f GHz)\n", cal.sx_amp(0),
              cal.qubit(0).drive_rate_ghz);
  std::printf("%s\n", cal.sx(0).draw().c_str());

  std::printf("== CX(1 -> 4): echoed cross-resonance ==\n");
  const pulse::Schedule cx = cal.cx(1, 4);
  std::printf("%s", cx.draw().c_str());
  std::printf("duration %d dt = %.1f ns, %zu pulses\n\n", cx.duration(),
              cx.duration() * pulse::kDtNs, cx.play_count());

  std::printf("== Fig. 2f: RZZ(0.8) compiled to pulses ==\n");
  qc::Circuit rzz(27);
  rzz.rzz(1, 4, 0.8);
  transpile::LoweringOptions standard;
  standard.include_measure = false;
  transpile::LoweringOptions efficient = standard;
  efficient.pulse_efficient_rzz = true;
  const auto std_sched = transpile::lower_to_pulses(rzz, dev, standard);
  const auto pe_sched = transpile::lower_to_pulses(rzz, dev, efficient);
  std::printf("standard (CX·RZ·CX):  %5d dt, %zu pulses\n", std_sched.schedule.duration(),
              std_sched.schedule.play_count());
  std::printf("pulse-efficient (CR): %5d dt, %zu pulses\n%s\n",
              pe_sched.schedule.duration(), pe_sched.schedule.play_count(),
              pe_sched.schedule.draw().c_str());

  std::printf("== physics check: simulate the calibrated CX ==\n");
  const auto sub = dev.subsystem({1, 4}, /*with_coherent_noise=*/false);
  const psim::PulseSimulator sim(std::move(const_cast<psim::PulseSystem&>(sub.system)));
  la::CMat u = sim.unitary(backend::FakeBackend::remap_schedule(cx, sub.remap));
  const double shift = pulse::CalibrationSet::drive_phase_shift(cx, 1);
  u = la::kron(la::CMat::identity(2), qc::gate_matrix(qc::GateKind::RZ, {-shift})) * u;
  const auto tr = (qc::gate_matrix(qc::GateKind::CX).dagger() * u).trace();
  std::printf("gate fidelity |tr(CX† U)|/4 = %.6f\n", std::abs(tr) / 4.0);

  std::printf("\n== and with the device's coherent miscalibration ==\n");
  const auto noisy_sub = dev.subsystem({1, 4}, /*with_coherent_noise=*/true);
  const psim::PulseSimulator noisy_sim(
      std::move(const_cast<psim::PulseSystem&>(noisy_sub.system)));
  la::CMat un = noisy_sim.unitary(backend::FakeBackend::remap_schedule(cx, noisy_sub.remap));
  un = la::kron(la::CMat::identity(2), qc::gate_matrix(qc::GateKind::RZ, {-shift})) * un;
  const auto trn = (qc::gate_matrix(qc::GateKind::CX).dagger() * un).trace();
  std::printf("gate fidelity |tr(CX† U)|/4 = %.6f  <- what the hybrid model trains around\n",
              std::abs(trn) / 4.0);
  return 0;
}
