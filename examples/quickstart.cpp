// Quickstart: solve a Max-Cut instance with the hybrid gate-pulse QAOA on a
// simulated IBM backend, in a dozen lines of library calls.
//
//   build/example_quickstart [engine] [threads]
//
// `engine` picks the executor's noise engine by name: "trajectory" (sampled
// shots, multi-threaded) or "density" (one exact density-matrix pass per
// evaluation, no shot loop).
#include <cstdio>
#include <string>

#include "backend/presets.hpp"
#include "core/workflow.hpp"
#include "graph/instances.hpp"

int main(int argc, char** argv) {
  using namespace hgp;

  // The paper's task 1: 3-regular graph on 6 nodes (Max-Cut = 9).
  const graph::Instance instance = graph::paper_task1();
  std::printf("instance: %s\n%s\n", instance.name.c_str(), instance.graph.str().c_str());

  // A simulated ibmq_toronto with the paper's Table I calibration data.
  const backend::FakeBackend dev = backend::make_toronto();

  // Train the hybrid gate-pulse model: Hamiltonian layer stays at gate
  // level, the mixer is one trainable pulse per qubit (amp/phase/freq).
  core::RunConfig config;
  config.shots = 1024;
  config.max_evaluations = 50;  // COBYLA budget, as in the paper
  config.gate_optimization = true;
  config.engine = argc > 1 ? argv[1] : "trajectory";
  config.executor_threads = argc > 2 ? std::stoul(argv[2]) : 0;

  const core::RunResult result =
      core::run_qaoa(instance, dev, core::ModelKind::Hybrid, config);

  std::printf("\nhybrid gate-pulse QAOA on %s (engine: %s)\n", dev.name().c_str(),
              config.engine.c_str());
  std::printf("  approximation ratio : %.1f%%\n", 100.0 * result.ar);
  std::printf("  expected cut value  : %.2f / %.0f\n", result.final_cost, instance.max_cut);
  std::printf("  trainable parameters: %zu\n", result.num_parameters);
  std::printf("  mixer layer duration: %d dt\n", result.mixer_layer_duration_dt);
  std::printf("  circuit makespan    : %d dt (%.2f us)\n", result.makespan_dt,
              result.makespan_dt * pulse::kDtNs * 1e-3);
  return 0;
}
