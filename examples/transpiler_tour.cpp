// Transpiler tour: route a QAOA circuit onto the heavy-hex lattice with the
// greedy baseline vs SABRE, show commutative cancellation at work, and dump
// the result as OpenQASM.
//
//   build/examples/example_transpiler_tour
#include <cstdio>

#include "backend/presets.hpp"
#include "circuit/qasm.hpp"
#include "common/rng.hpp"
#include "core/qaoa.hpp"
#include "graph/instances.hpp"
#include "transpile/basis.hpp"
#include "transpile/cancellation.hpp"
#include "transpile/sabre.hpp"
#include "transpile/scheduling.hpp"
#include "transpile/transpiler.hpp"

int main() {
  using namespace hgp;
  const backend::FakeBackend dev = backend::make_toronto();
  const graph::Instance instance = graph::paper_task1();
  const qc::Circuit qaoa = core::qaoa_circuit(instance.graph, 1).bound({0.65, 0.40});

  std::printf("virtual circuit: %s\n\n", qaoa.str().c_str());

  const std::vector<std::size_t> layout = {0, 1, 4, 7, 10, 12};
  Rng rng(3);

  const auto greedy = transpile::greedy_route(qaoa, dev.coupling(), layout);
  std::printf("greedy routing (fixed line layout):      %2zu SWAPs\n", greedy.swap_count);
  const auto sabre = transpile::sabre_route(qaoa, dev.coupling(), rng, 4, layout);
  std::printf("SABRE routing (fixed line layout):       %2zu SWAPs\n", sabre.swap_count);
  const auto sabre_free = transpile::sabre_route(qaoa, dev.coupling(), rng, 4);
  std::printf("SABRE routing + layout search:           %2zu SWAPs\n\n",
              sabre_free.swap_count);

  const qc::Circuit native = transpile::to_native_basis(sabre.circuit);
  const qc::Circuit cancelled = transpile::cancel_gates(native);
  std::printf("native basis:    %zu ops (%zu CX)\n", native.size(),
              native.count(qc::GateKind::CX));
  std::printf("after cancellation: %zu ops (%zu CX), %zu removed\n\n", cancelled.size(),
              cancelled.count(qc::GateKind::CX),
              transpile::cancellation_gain(native, cancelled));

  const auto sched = transpile::schedule_asap(cancelled, dev);
  std::printf("ASAP makespan: %d dt = %.2f us (+ %.2f us readout)\n\n", sched.makespan_dt,
              sched.makespan_dt * pulse::kDtNs * 1e-3,
              dev.readout_duration_dt() * pulse::kDtNs * 1e-3);

  std::printf("first lines of OpenQASM:\n");
  const std::string qasm = qc::to_qasm(cancelled);
  std::size_t shown = 0, pos = 0;
  while (shown < 12 && pos < qasm.size()) {
    const auto eol = qasm.find('\n', pos);
    std::printf("  %s\n", qasm.substr(pos, eol - pos).c_str());
    pos = eol + 1;
    ++shown;
  }
  std::printf("  ...\n");
  return 0;
}
