// VQE on the transverse-field Ising chain with the Fig. 2b hardware-
// efficient PQC — the "other VQAs" direction the paper's conclusion points
// the hybrid abstraction layer at.
//
//   build/example_vqe_tfim [n_sites] [layers] [backend]
//
// `backend` picks the simulation representation by name: "statevector"
// (default) or "density" (exact mixed-state reference).
#include <cstdio>
#include <string>

#include "common/table.hpp"
#include "core/qaoa.hpp"
#include "core/vqe.hpp"

int main(int argc, char** argv) {
  using namespace hgp;
  const std::size_t n = argc > 1 ? std::stoul(argv[1]) : 4;
  const int layers = argc > 2 ? std::stoi(argv[2]) : 2;
  const std::string backend = argc > 3 ? argv[3] : "statevector";

  const la::PauliSum ham = core::tfim_hamiltonian(n, 1.0, 0.8);
  std::printf("TFIM chain: %zu sites, J = 1.0, h = 0.8, %zu Pauli terms (%s backend)\n\n", n,
              ham.size(), backend.c_str());

  Table t({"entanglement", "optimizer", "energy", "exact", "rel. error"});
  for (const char* ent : {"linear", "circular"}) {
    const qc::Circuit ansatz = core::hardware_efficient_pqc(n, layers, ent);
    for (const char* optname : {"cobyla", "neldermead"}) {
      core::VqeConfig cfg;
      cfg.optimizer = optname;
      cfg.state_backend = backend;
      cfg.max_evaluations = 600;
      const core::VqeResult res = core::run_vqe(ham, ansatz, cfg);
      t.add_row({ent, optname, Table::num(res.energy, 4), Table::num(res.exact_ground, 4),
                 Table::pct(res.relative_error, 2)});
    }
  }
  std::printf("%s\n", t.str().c_str());
  std::printf("(the PQC of paper Fig. 2b: U3 rotation layers + CX entanglement layers)\n");
  return 0;
}
