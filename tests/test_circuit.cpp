#include <gtest/gtest.h>

#include "circuit/circuit.hpp"
#include "common/error.hpp"
#include "circuit/gates.hpp"
#include "circuit/qasm.hpp"
#include "linalg/types.hpp"
#include "linalg/vec.hpp"
#include "sim/statevector.hpp"

using namespace hgp;
using qc::Circuit;
using qc::GateKind;
using qc::Param;

TEST(Gates, ArityAndParamCounts) {
  EXPECT_EQ(qc::gate_arity(GateKind::CX), 2u);
  EXPECT_EQ(qc::gate_arity(GateKind::H), 1u);
  EXPECT_EQ(qc::gate_num_params(GateKind::U3), 3u);
  EXPECT_EQ(qc::gate_num_params(GateKind::RZZ), 1u);
  EXPECT_EQ(qc::gate_num_params(GateKind::X), 0u);
}

class GateUnitarity : public ::testing::TestWithParam<double> {};

TEST_P(GateUnitarity, AllParameterizedGatesAreUnitary) {
  const double t = GetParam();
  for (GateKind k : {GateKind::RX, GateKind::RY, GateKind::RZ, GateKind::P, GateKind::RZZ,
                     GateKind::RXX}) {
    EXPECT_TRUE(qc::gate_matrix(k, {t}).is_unitary(1e-12)) << qc::gate_name(k) << " t=" << t;
  }
  EXPECT_TRUE(qc::gate_matrix(GateKind::U3, {t, t / 2, -t}).is_unitary(1e-12));
}

INSTANTIATE_TEST_SUITE_P(Angles, GateUnitarity,
                         ::testing::Values(-3.1, -1.0, -0.25, 0.0, 0.3, 1.57, 2.9, 6.3));

TEST(Gates, SxSquaredIsX) {
  const auto sx = qc::gate_matrix(GateKind::SX);
  const auto x = qc::gate_matrix(GateKind::X);
  EXPECT_LT((sx * sx).max_abs_diff(x), 1e-12);
}

TEST(Gates, RzzIsDiagonalWithCorrectPhases) {
  const auto m = qc::gate_matrix(GateKind::RZZ, {1.0});
  EXPECT_NEAR(std::arg(m(0, 0)), -0.5, 1e-12);
  EXPECT_NEAR(std::arg(m(1, 1)), 0.5, 1e-12);
  EXPECT_NEAR(std::arg(m(2, 2)), 0.5, 1e-12);
  EXPECT_NEAR(std::arg(m(3, 3)), -0.5, 1e-12);
}

TEST(Gates, U3CoversHadamard) {
  // H = U3(pi/2, 0, pi) up to global phase.
  const auto u = qc::gate_matrix(GateKind::U3, {la::kPi / 2, 0.0, la::kPi});
  const auto h = qc::gate_matrix(GateKind::H);
  EXPECT_LT(u.max_abs_diff(h), 1e-12);
}

TEST(Circuit, BuilderAndCounts) {
  Circuit c(3);
  c.h(0).cx(0, 1).cx(1, 2).rz(2, 0.5).barrier().rzz(0, 2, Param::symbol(0, 2.0));
  EXPECT_EQ(c.size(), 6u);
  EXPECT_EQ(c.count(GateKind::CX), 2u);
  EXPECT_EQ(c.count_2q(), 3u);
  EXPECT_EQ(c.num_parameters(), 1u);
}

TEST(Circuit, DepthWithBarrier) {
  Circuit c(2);
  c.h(0).h(1);
  EXPECT_EQ(c.depth(), 1u);
  c.barrier();
  c.h(0);
  EXPECT_EQ(c.depth(), 2u);
  c.cx(0, 1);
  EXPECT_EQ(c.depth(), 3u);
}

TEST(Circuit, ParamBinding) {
  Circuit c(1);
  c.rx(0, Param::symbol(0, 2.0, 0.5));  // angle = 0.5 + 2*theta0
  const Circuit b = c.bound({0.25});
  ASSERT_TRUE(b.ops()[0].params[0].is_constant());
  EXPECT_DOUBLE_EQ(b.ops()[0].params[0].value(), 1.0);
  EXPECT_EQ(b.num_parameters(), 0u);
}

TEST(Circuit, RejectsInvalidOps) {
  Circuit c(2);
  EXPECT_THROW(c.h(2), Error);
  EXPECT_THROW(c.cx(0, 0), Error);
  EXPECT_THROW(c.append(qc::Op{GateKind::RX, {0}, {}}), Error);
}

TEST(Circuit, InverseCancelsToIdentity) {
  Circuit c(3);
  c.h(0).cx(0, 1).t(1).s(2).rzz(1, 2, 0.7).u3(0, Param::constant(0.3), Param::constant(-0.4),
                                              Param::constant(1.1));
  Circuit full = c;
  full.compose(c.inverse());
  sim::Statevector sv(3);
  // Start from a non-trivial state.
  sv.apply_matrix(qc::gate_matrix(GateKind::H), {0});
  sv.apply_matrix(qc::gate_matrix(GateKind::RY, {0.9}), {2});
  const la::CVec before = sv.data();
  sv.run(full);
  EXPECT_LT(la::max_abs_diff(before, sv.data()), 1e-12);
}

TEST(Qasm, RoundTripPreservesSemantics) {
  Circuit c(3);
  c.h(0).cx(0, 1).rz(1, 0.375).rzz(1, 2, -1.25).sx(2).barrier();
  const std::string text = qc::to_qasm(c);
  EXPECT_NE(text.find("OPENQASM 2.0"), std::string::npos);
  EXPECT_NE(text.find("rzz(-1.25) q[1],q[2]"), std::string::npos);
  const Circuit parsed = qc::from_qasm(text);
  EXPECT_EQ(parsed.num_qubits(), 3u);

  sim::Statevector a(3), b(3);
  a.run(c);
  b.run(parsed);
  EXPECT_LT(la::max_abs_diff(a.data(), b.data()), 1e-12);
}

TEST(Qasm, ParsesPiLiterals) {
  const Circuit c = qc::from_qasm(
      "OPENQASM 2.0;\nqreg q[1];\nrx(pi/2) q[0];\nrz(-pi) q[0];\nrx(0.5*pi) q[0];\n");
  ASSERT_EQ(c.size(), 3u);
  EXPECT_NEAR(c.ops()[0].params[0].value(), la::kPi / 2, 1e-12);
  EXPECT_NEAR(c.ops()[1].params[0].value(), -la::kPi, 1e-12);
  EXPECT_NEAR(c.ops()[2].params[0].value(), la::kPi / 2, 1e-12);
}

TEST(Qasm, RejectsUnbound) {
  Circuit c(1);
  c.rx(0, Param::symbol(0));
  EXPECT_THROW(qc::to_qasm(c), Error);
}
