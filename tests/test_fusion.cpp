// The timeline block-fusion pass: embedding/composition algebra, fused vs
// unfused parity on every deterministic-unitary engine path, the noisy
// engines' knob-is-a-no-op guarantee (bit-identical counts), bit-identity of
// the delta-compiled candidate lanes against scalar fused runs, fused-block
// cache hits across iterations and BlockStore warm starts, and the shared
// transpile::PassStats reporting of the cancellation pass.
#include <gtest/gtest.h>

#include <cmath>
#include <cstdio>
#include <string>
#include <vector>

#include "backend/presets.hpp"
#include "circuit/circuit.hpp"
#include "common/rng.hpp"
#include "core/executor.hpp"
#include "core/fusion.hpp"
#include "core/models.hpp"
#include "core/qaoa.hpp"
#include "graph/instances.hpp"
#include "serve/block_cache.hpp"
#include "sim/statevector.hpp"
#include "transpile/cancellation.hpp"

using namespace hgp;
using core::CompiledProgram;
using core::ExecOp;
using core::Executor;
using core::ExecutorOptions;
using core::FusionOptions;
using core::FusionResult;
using core::ObjectiveKind;
using core::ObjectiveSpec;
using core::Program;
using core::Scheduled;

namespace {

const backend::FakeBackend& toronto() {
  static const backend::FakeBackend dev = backend::make_toronto();
  return dev;
}

ObjectiveSpec cut_spec(const graph::Graph& g, ObjectiveKind kind) {
  ObjectiveSpec spec;
  spec.kind = kind;
  spec.value = [&g](std::uint64_t bits) { return g.cut_value(bits); };
  spec.cvar_alpha = 0.3;
  return spec;
}

/// The paper's K3,3 instance, static because QaoaModel keeps a pointer to
/// the graph it was built over.
const graph::Instance& paper_instance() {
  static const graph::Instance inst = graph::paper_task1();
  return inst;
}

/// p=2 gate-level QAOA on the paper's K3,3 instance — deep enough that the
/// greedy pass finds multi-block runs at every width.
core::QaoaModel paper_model() {
  core::ModelConfig mcfg;
  mcfg.p = 2;
  return core::QaoaModel::build(paper_instance().graph, toronto(),
                                core::ModelKind::GateLevel, mcfg);
}

std::vector<std::vector<double>> spread_candidates(const std::vector<double>& x0,
                                                   std::size_t k) {
  std::vector<std::vector<double>> xs(k, x0);
  for (std::size_t i = 0; i < k; ++i)
    for (std::size_t j = 0; j < x0.size(); ++j)
      xs[i][j] += 0.07 * static_cast<double>(i) - 0.03 * static_cast<double>(j % 3);
  return xs;
}

Executor make_executor(std::size_t fusion_width, bool noise = false,
                       std::shared_ptr<serve::BlockCache> cache = nullptr,
                       const std::string& store_path = {}) {
  ExecutorOptions opts;
  opts.noise = noise;
  opts.num_threads = 1;
  opts.fusion_max_qubits = fusion_width;
  if (cache) opts.block_cache = std::move(cache);
  opts.block_store_path = store_path;
  return Executor(toronto(), opts);
}

double total_variation(const sim::Counts& a, const sim::Counts& b, std::size_t shots) {
  double tv = 0.0;
  auto count = [](const sim::Counts& c, std::uint64_t k) {
    const auto it = c.find(k);
    return it == c.end() ? 0.0 : static_cast<double>(it->second);
  };
  for (const auto& [bits, n] : a) tv += std::abs(static_cast<double>(n) - count(b, bits));
  for (const auto& [bits, n] : b)
    if (a.find(bits) == a.end()) tv += static_cast<double>(n);
  return tv / (2.0 * static_cast<double>(shots));
}

}  // namespace

// ---- embedding / composition algebra ----------------------------------------

TEST(FusionEmbed, EmbeddedOperatorActsLikeOriginal) {
  // Acting with the embedded matrix on the full support must equal acting
  // with the original on its own qubits, for every support position.
  const la::CMat u1 = qc::gate_matrix(qc::GateKind::SX);
  const la::CMat u2 = qc::gate_matrix(qc::GateKind::RZZ, {0.7});
  const std::vector<std::size_t> support = {0, 1, 2};
  struct Case {
    const la::CMat* u;
    std::vector<std::size_t> local;
  };
  for (const Case& c : {Case{&u1, {0}}, Case{&u1, {1}}, Case{&u1, {2}},
                        Case{&u2, {0, 2}}, Case{&u2, {2, 0}}, Case{&u2, {1, 2}}}) {
    sim::Statevector direct(3), embedded(3);
    // A non-trivial input state.
    for (std::size_t q = 0; q < 3; ++q)
      direct.apply_matrix(qc::gate_matrix(qc::GateKind::SX), {q});
    for (std::size_t q = 0; q < 3; ++q)
      embedded.apply_matrix(qc::gate_matrix(qc::GateKind::SX), {q});
    direct.apply_matrix(*c.u, c.local);
    embedded.apply_matrix(core::embed_on_support(*c.u, c.local, support), support);
    for (std::size_t i = 0; i < 8; ++i)
      EXPECT_LT(std::abs(direct.data()[i] - embedded.data()[i]), 1e-12);
  }
}

TEST(FusionEmbed, ComposeMatchesSequentialApply) {
  const la::CMat sx = qc::gate_matrix(qc::GateKind::SX);
  const la::CMat cx = qc::gate_matrix(qc::GateKind::CX);
  const la::CMat rzz = qc::gate_matrix(qc::GateKind::RZZ, {1.1});
  const std::vector<std::size_t> l0 = {1}, l1 = {2, 0}, l2 = {0, 1};
  const std::vector<std::size_t> support = {0, 1, 2};
  const std::vector<core::FusePartView> parts = {{&sx, &l0}, {&cx, &l1}, {&rzz, &l2}};
  const la::CMat fused = core::compose_fused(parts.data(), parts.size(), support);

  sim::Statevector seq(3), one(3);
  for (std::size_t q = 0; q < 3; ++q) seq.apply_matrix(sx, {q});
  for (std::size_t q = 0; q < 3; ++q) one.apply_matrix(sx, {q});
  seq.apply_matrix(sx, l0);
  seq.apply_matrix(cx, l1);
  seq.apply_matrix(rzz, l2);
  one.apply_matrix(fused, support);
  for (std::size_t i = 0; i < 8; ++i)
    EXPECT_LT(std::abs(seq.data()[i] - one.data()[i]), 1e-12);
}

TEST(FusionPass, MergesAdjacentRunsAndRemapsSlots) {
  // Two 1q blocks on qubit 0 then one on qubit 1: width 2 fuses all three.
  CompiledProgram cp;
  cp.touched = {3, 5};  // physical qubits; local 0 and 1
  cp.measure_phys = {3, 5};
  cp.measure_local = {0, 1};
  cp.clock = {0, 0};
  auto push = [&](const la::CMat& u, std::vector<std::size_t> local) {
    Scheduled s;
    s.block.unitary = u;
    s.local = std::move(local);
    s.idle_before_dt.assign(s.local.size(), 0);
    cp.timeline.push_back(std::move(s));
  };
  push(qc::gate_matrix(qc::GateKind::SX), {0});
  push(qc::gate_matrix(qc::GateKind::RZ, {0.4}), {0});
  push(qc::gate_matrix(qc::GateKind::SX), {1});
  cp.op_slot = {0, 1, 2};

  FusionOptions opt;
  opt.max_qubits = 2;
  const FusionResult fr = core::fuse_program(cp, opt, nullptr, "", 0);
  ASSERT_EQ(fr.program.timeline.size(), 1u);
  EXPECT_EQ(fr.slots[0].sources, (std::vector<std::size_t>{0, 1, 2}));
  EXPECT_EQ(fr.program.op_slot, (std::vector<long>{0, 0, 0}));
  EXPECT_EQ(fr.stats.ops_in, 3u);
  EXPECT_EQ(fr.stats.ops_out, 1u);
  EXPECT_EQ(fr.stats.merged_runs, 1u);
  EXPECT_EQ(fr.stats.max_run_len, 3u);
  EXPECT_EQ(fr.stats.removed(), 2u);
  EXPECT_EQ(fr.program.timeline[0].local, (std::vector<std::size_t>{0, 1}));
  EXPECT_EQ(fr.program.timeline[0].block.qubits, (std::vector<std::size_t>{3, 5}));

  // Disabled widths pass through 1:1.
  opt.max_qubits = 0;
  const FusionResult off = core::fuse_program(cp, opt, nullptr, "", 0);
  EXPECT_EQ(off.program.timeline.size(), 3u);
  EXPECT_EQ(off.stats.merged_runs, 0u);
  EXPECT_EQ(off.program.op_slot, cp.op_slot);
}

// ---- fused vs unfused parity on the deterministic paths ---------------------

TEST(FusionParity, NoiselessExpectationAcrossWidths) {
  const graph::Instance& inst = paper_instance();
  const core::QaoaModel model = paper_model();
  const Program prog = model.instantiate(model.initial_parameters());

  for (const ObjectiveKind kind : {ObjectiveKind::Expectation, ObjectiveKind::CVaR}) {
    const ObjectiveSpec spec = cut_spec(inst.graph, kind);
    Executor unfused = make_executor(0);
    Rng r0(5);
    const double reference = unfused.run_expectation(prog, 64, r0, spec);
    for (const std::size_t width : {std::size_t{2}, std::size_t{3}}) {
      Executor fused = make_executor(width);
      Rng r1(5);
      const double got = fused.run_expectation(prog, 64, r1, spec);
      EXPECT_NEAR(got, reference, 1e-9) << "width=" << width;
      EXPECT_LT(fused.last_report().fused_block_count,
                fused.last_report().block_count)
          << "width=" << width;
    }
    EXPECT_EQ(unfused.last_report().fused_block_count,
              unfused.last_report().block_count);
  }
}

TEST(FusionParity, NoiselessCountsDistribution) {
  const core::QaoaModel model = paper_model();
  const Program prog = model.instantiate(model.initial_parameters());
  const std::size_t shots = 4096;

  Executor unfused = make_executor(0);
  Rng r0(11);
  const sim::Counts base = unfused.run(prog, shots, r0);
  for (const std::size_t width : {std::size_t{2}, std::size_t{3}}) {
    Executor fused = make_executor(width);
    Rng r1(11);
    const sim::Counts got = fused.run(prog, shots, r1);
    // The fused amplitudes agree to ~1e-12, so with the same RNG draws the
    // sampled counts are overwhelmingly identical — but a draw landing on a
    // CDF boundary may legally flip one sample, so gate on TV distance.
    EXPECT_LE(total_variation(base, got, shots), 0.01) << "width=" << width;
  }
}

TEST(FusionParity, WidthAboveThreeClampsToThree) {
  const core::QaoaModel model = paper_model();
  const Program prog = model.instantiate(model.initial_parameters());
  Executor w3 = make_executor(3), w9 = make_executor(9);
  Rng r0(3), r1(3);
  const sim::Counts a = w3.run(prog, 512, r0);
  const sim::Counts b = w9.run(prog, 512, r1);
  EXPECT_EQ(a, b);  // same pass, bit-identical
  EXPECT_EQ(w3.last_report().fused_block_count, w9.last_report().fused_block_count);
}

// ---- noisy engines: the knob is a semantic no-op ----------------------------

TEST(FusionNoisy, TrajectoryCountsBitIdenticalAcrossKnob) {
  const core::QaoaModel model = paper_model();
  const Program prog = model.instantiate(model.initial_parameters());
  for (const std::size_t width : {std::size_t{2}, std::size_t{3}}) {
    Executor off = make_executor(0, /*noise=*/true);
    Executor on = make_executor(width, /*noise=*/true);
    Rng r0(21), r1(21);
    EXPECT_EQ(off.run(prog, 512, r0), on.run(prog, 512, r1)) << "width=" << width;
  }
}

TEST(FusionNoisy, DensityCountsBitIdenticalAcrossKnob) {
  const graph::Instance& inst = paper_instance();
  core::ModelConfig mcfg;
  const core::QaoaModel model =
      core::QaoaModel::build(inst.graph, toronto(), core::ModelKind::GateLevel, mcfg);
  const Program prog = model.instantiate(model.initial_parameters());
  ExecutorOptions opts;
  opts.noise = true;
  opts.engine = core::Engine::ExactDensity;
  opts.fusion_max_qubits = 0;
  Executor off(toronto(), opts);
  opts.fusion_max_qubits = 3;
  Executor on(toronto(), opts);
  Rng r0(33), r1(33);
  EXPECT_EQ(off.run(prog, 256, r0), on.run(prog, 256, r1));
}

TEST(FusionNoisy, TrajectoryExpectationBitIdenticalAcrossKnobLanesThreads) {
  const graph::Instance& inst = paper_instance();
  const core::QaoaModel model = paper_model();
  const Program prog = model.instantiate(model.initial_parameters());
  const ObjectiveSpec spec = cut_spec(inst.graph, ObjectiveKind::Expectation);

  auto eval = [&](std::size_t width, std::size_t lanes, std::size_t threads) {
    ExecutorOptions opts;
    opts.noise = true;
    opts.fusion_max_qubits = width;
    opts.shot_batch_lanes = lanes;
    opts.num_threads = threads;
    Executor ex(toronto(), opts);
    Rng rng(44);
    return ex.run_expectation(prog, 600, rng, spec);
  };
  const double reference = eval(0, 1, 1);
  for (const std::size_t lanes : {std::size_t{1}, std::size_t{4}, std::size_t{7},
                                  std::size_t{32}})
    for (const std::size_t threads : {std::size_t{1}, std::size_t{4}})
      EXPECT_EQ(eval(3, lanes, threads), reference)
          << "lanes=" << lanes << " threads=" << threads;
}

// ---- determinism of the fused noiseless path --------------------------------

TEST(FusionDeterminism, NoiselessCountsStableAcrossLanesAndThreads) {
  // Lane/thread knobs must not leak into the fused deterministic evolve.
  const core::QaoaModel model = paper_model();
  const Program prog = model.instantiate(model.initial_parameters());
  auto sample = [&](std::size_t lanes, std::size_t threads) {
    ExecutorOptions opts;
    opts.noise = false;
    opts.fusion_max_qubits = 2;
    opts.shot_batch_lanes = lanes;
    opts.num_threads = threads;
    Executor ex(toronto(), opts);
    Rng rng(9);
    return ex.run(prog, 1024, rng);
  };
  const sim::Counts reference = sample(1, 1);
  for (const std::size_t lanes : {std::size_t{4}, std::size_t{7}, std::size_t{32}})
    for (const std::size_t threads : {std::size_t{1}, std::size_t{4}})
      EXPECT_EQ(sample(lanes, threads), reference)
          << "lanes=" << lanes << " threads=" << threads;
}

// ---- delta-compiled candidate lanes through fused slots ---------------------

TEST(FusionDelta, BatchedCandidatesBitIdenticalToScalarFusedRuns) {
  const graph::Instance& inst = paper_instance();
  const core::QaoaModel model = paper_model();
  const auto xs = spread_candidates(model.initial_parameters(), 5);
  std::vector<Program> progs;
  for (const auto& x : xs) progs.push_back(model.instantiate(x));

  for (const std::size_t width : {std::size_t{0}, std::size_t{2}, std::size_t{3}}) {
    for (const ObjectiveKind kind : {ObjectiveKind::Expectation, ObjectiveKind::CVaR}) {
      const ObjectiveSpec spec = cut_spec(inst.graph, kind);
      Executor batch_ex = make_executor(width);
      const std::vector<double> batched = batch_ex.run_expectation_batch(progs, spec);
      Executor scalar_ex = make_executor(width);
      std::vector<double> scalar(progs.size());
      for (std::size_t c = 0; c < progs.size(); ++c) {
        Rng rng(1);
        scalar[c] = scalar_ex.run_expectation(progs[c], 8, rng, spec);
      }
      EXPECT_EQ(batched, scalar) << "width=" << width;
    }
  }
}

TEST(FusionDelta, RepeatedBatchesReuseFusedBlocks) {
  const graph::Instance& inst = paper_instance();
  const core::QaoaModel model = paper_model();
  const auto xs = spread_candidates(model.initial_parameters(), 4);
  std::vector<Program> progs;
  for (const auto& x : xs) progs.push_back(model.instantiate(x));
  const ObjectiveSpec spec = cut_spec(inst.graph, ObjectiveKind::Expectation);

  auto cache = std::make_shared<serve::BlockCache>(4096);
  Executor ex = make_executor(2, false, cache);
  const std::vector<double> first = ex.run_expectation_batch(progs, spec);
  const auto s1 = cache->stats();
  EXPECT_GT(s1.fused_misses, 0u);
  const std::vector<double> second = ex.run_expectation_batch(progs, spec);
  const auto s2 = cache->stats();
  // The second identical batch composes nothing new: pure fused hits.
  EXPECT_EQ(s2.fused_misses, s1.fused_misses);
  EXPECT_GT(s2.fused_hits, s1.fused_hits);
  EXPECT_EQ(first, second);
}

// ---- fused-block caching and store warm start -------------------------------

TEST(FusionCache, SecondRunServesFusedBlocksFromCache) {
  const graph::Instance& inst = paper_instance();
  const core::QaoaModel model = paper_model();
  const Program prog = model.instantiate(model.initial_parameters());
  const ObjectiveSpec spec = cut_spec(inst.graph, ObjectiveKind::Expectation);

  auto cache = std::make_shared<serve::BlockCache>(4096);
  Executor ex = make_executor(2, false, cache);
  Rng r0(2), r1(2);
  const double a = ex.run_expectation(prog, 8, r0, spec);
  const auto s1 = cache->stats();
  EXPECT_GT(s1.fused_misses, 0u);
  const double b = ex.run_expectation(prog, 8, r1, spec);
  const auto s2 = cache->stats();
  EXPECT_EQ(s2.fused_misses, s1.fused_misses);
  EXPECT_GE(s2.fused_hits, s1.fused_hits + s1.fused_misses);
  EXPECT_EQ(a, b);
}

TEST(FusionCache, StoreWarmStartSkipsComposition) {
  const graph::Instance& inst = paper_instance();
  const core::QaoaModel model = paper_model();
  const Program prog = model.instantiate(model.initial_parameters());
  const ObjectiveSpec spec = cut_spec(inst.graph, ObjectiveKind::Expectation);
  const std::string path = ::testing::TempDir() + "hgp_fusion_store.bin";
  std::remove(path.c_str());

  double cold = 0.0;
  {
    auto cache = std::make_shared<serve::BlockCache>(4096);
    Executor ex = make_executor(2, false, cache, path);
    Rng rng(2);
    cold = ex.run_expectation(prog, 8, rng, spec);
    EXPECT_GT(cache->stats().fused_misses, 0u);
  }
  // A fresh process: new cache, same store — every fused unitary (and every
  // gate block) comes off disk, so nothing re-composes.
  {
    auto cache = std::make_shared<serve::BlockCache>(4096);
    Executor ex = make_executor(2, false, cache, path);
    Rng rng(2);
    const double warm = ex.run_expectation(prog, 8, rng, spec);
    const auto s = cache->stats();
    EXPECT_EQ(s.fused_misses, 0u);
    EXPECT_GT(s.fused_hits, 0u);
    EXPECT_GT(s.store_hits, 0u);
    EXPECT_EQ(warm, cold);  // store round trip is bit-exact
  }
  std::remove(path.c_str());
}

// ---- shared pass-report plumbing (cancellation dedupe) ----------------------

TEST(FusionStats, CancellationReportsThroughSharedStruct) {
  qc::Circuit c(2);
  c.append(qc::Op{qc::GateKind::RZ, {0}, {qc::Param::constant(0.3)}});
  c.append(qc::Op{qc::GateKind::RZ, {0}, {qc::Param::constant(0.4)}});
  c.append(qc::Op{qc::GateKind::X, {1}, {}});
  c.append(qc::Op{qc::GateKind::X, {1}, {}});
  c.append(qc::Op{qc::GateKind::CX, {0, 1}, {}});

  transpile::PassStats stats;
  const qc::Circuit out = transpile::cancel_gates(c, &stats);
  EXPECT_EQ(stats.ops_in, 5u);
  EXPECT_EQ(stats.ops_out, out.size());
  EXPECT_EQ(stats.removed(), 5u - out.size());
  EXPECT_GE(stats.merged_runs, 1u);  // the RZ pair merged
  // The overload defaults to the old signature.
  const qc::Circuit same = transpile::cancel_gates(c);
  EXPECT_EQ(same.size(), out.size());
}
