// The job layer: request validation (structured codes before any executor
// exists), the lifecycle state machine, cooperative cancellation through the
// optimizer and trajectory shot loops, deadline expiry of queued jobs,
// deficit-round-robin fair sharing across tenants, deterministic admission
// control at the queue limit, and the contract that jobs completing normally
// are bit-identical to plain run_qaoa for any worker count.
#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <thread>
#include <vector>

#include "backend/presets.hpp"
#include "common/cancel.hpp"
#include "core/workflow.hpp"
#include "graph/instances.hpp"
#include "obs/metrics.hpp"
#include "obs/obs.hpp"
#include "serve/eval_service.hpp"
#include "serve/job.hpp"
#include "serve/job_service.hpp"
#include "serve/job_validation.hpp"
#include "serve/sweep.hpp"

using namespace hgp;
using serve::FairJobQueue;
using serve::Job;
using serve::JobErrorCode;
using serve::JobHandle;
using serve::JobId;
using serve::JobOutcome;
using serve::JobRequest;
using serve::JobService;
using serve::JobState;
using serve::SweepJob;

namespace {

const backend::FakeBackend& toronto() {
  static const backend::FakeBackend dev = backend::make_toronto();
  return dev;
}

core::RunConfig tiny_config(const std::string& optimizer) {
  core::RunConfig cfg;
  cfg.shots = 64;
  cfg.max_evaluations = 6;
  cfg.optimizer = optimizer;
  cfg.executor_threads = 1;  // keep the nested shot loop serial in tests
  return cfg;
}

SweepJob good_job(const std::string& label, const std::string& optimizer = "cobyla") {
  return {label, graph::paper_task1(), &toronto(), core::ModelKind::GateLevel,
          tiny_config(optimizer)};
}

/// The 12 physical qubits of toronto's heavy-hex lattice that form a line —
/// the default device layout stops at 8 qubits, so 12-qubit jobs pin this
/// placement explicitly.
const std::vector<std::size_t> kLine12 = {0, 1, 4, 7, 10, 12, 13, 14, 16, 19, 22, 25};

/// A 12-vertex path whose edges are all nearest neighbours on kLine12, so
/// routing inserts no SWAPs and the compiled program touches exactly 12
/// physical qubits — big enough that one noisy evaluation takes real wall
/// time, so a cancel request reliably lands mid-shot-loop.
graph::Instance line12() {
  graph::Graph g(12);
  for (std::size_t i = 0; i + 1 < 12; ++i) g.add_edge(i, i + 1);
  return graph::Instance{"line12", g, 11.0};
}

/// A 12-vertex ring with chords: passes validation (12 <= the 14-qubit
/// trajectory cap) but the closure edge and chords route through heavy-hex
/// qubits outside the line, blowing the executor's active-qubit bound at
/// run time — a genuine mid-run throw inside a worker.
graph::Instance ring12() {
  graph::Graph g(12);
  for (std::size_t i = 0; i < 12; ++i) g.add_edge(i, (i + 1) % 12);
  g.add_edge(0, 6);
  g.add_edge(3, 9);
  return graph::Instance{"ring12", g, 14.0};
}

SweepJob big_job(const std::string& label) {
  SweepJob job = good_job(label);
  job.instance = line12();
  job.config.shots = std::size_t{1} << 16;
  job.config.max_evaluations = 8;
  job.config.model.initial_layout = kLine12;
  return job;
}

void expect_same_result(const core::RunResult& a, const core::RunResult& b) {
  EXPECT_EQ(a.optimizer.x, b.optimizer.x);
  EXPECT_EQ(a.optimizer.value, b.optimizer.value);
  EXPECT_EQ(a.optimizer.history, b.optimizer.history);
  EXPECT_EQ(a.optimizer.evaluations, b.optimizer.evaluations);
  EXPECT_EQ(a.ar, b.ar);
  EXPECT_EQ(a.final_cost, b.final_cost);
}

/// Park the single worker on a sleep task so subsequent submits all land in
/// the queue before anything is dequeued (deterministic scheduling tests).
void block_worker(JobService& svc, std::chrono::milliseconds for_ms) {
  svc.service().post(serve::EvalService::SubmitOptions{},
                     [for_ms] { std::this_thread::sleep_for(for_ms); });
}

bool wait_for_state(JobService& svc, JobId id, JobState want,
                    std::chrono::milliseconds timeout) {
  const auto deadline = std::chrono::steady_clock::now() + timeout;
  while (std::chrono::steady_clock::now() < deadline) {
    if (svc.state(id) == want) return true;
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }
  return false;
}

JobErrorCode code_of(const SweepJob& job) { return serve::validate_job(job).code; }

}  // namespace

// ---------------------------------------------------------------------------
// Validation

TEST(JobValidation, WellFormedJobPasses) {
  EXPECT_EQ(code_of(good_job("ok")), JobErrorCode::None);
  EXPECT_FALSE(serve::validate_job(good_job("ok")));
}

TEST(JobValidation, RejectsEachMalformation) {
  SweepJob j = good_job("bad");
  j.dev = nullptr;
  EXPECT_EQ(code_of(j), JobErrorCode::NullBackend);

  j = good_job("bad");
  j.instance.graph = graph::Graph(0);
  EXPECT_EQ(code_of(j), JobErrorCode::EmptyInstance);

  j = good_job("bad");
  j.instance.graph = graph::Graph(4);  // vertices but no edges
  EXPECT_EQ(code_of(j), JobErrorCode::EmptyInstance);

  j = good_job("bad");
  j.config.engine = "teleport";
  EXPECT_EQ(code_of(j), JobErrorCode::BadEngine);

  // 12 vertices: fine for trajectories (cap 14), over the density cap (10).
  j = big_job("bad");
  EXPECT_EQ(code_of(j), JobErrorCode::None);
  j.config.engine = "density";
  EXPECT_EQ(code_of(j), JobErrorCode::TooManyQubits);

  j = good_job("bad");
  j.config.objective = "fidelity";
  EXPECT_EQ(code_of(j), JobErrorCode::BadObjective);

  j = good_job("bad");
  j.config.m3 = true;
  j.config.objective = "expectation";
  EXPECT_EQ(code_of(j), JobErrorCode::IncompatibleM3);

  j = good_job("bad");
  j.config.optimizer = "gradient_descent";
  EXPECT_EQ(code_of(j), JobErrorCode::BadOptimizer);

  j = good_job("bad");
  j.config.shots = 0;
  EXPECT_EQ(code_of(j), JobErrorCode::BadShots);

  j = good_job("bad");
  j.config.max_evaluations = 0;
  EXPECT_EQ(code_of(j), JobErrorCode::BadEvaluations);

  j = good_job("bad");
  j.config.shot_batch_lanes = serve::kMaxLanes + 1;
  EXPECT_EQ(code_of(j), JobErrorCode::BadLanes);

  j = good_job("bad");
  j.config.objective = "cvar";
  j.config.cvar_alpha = 0.0;
  EXPECT_EQ(code_of(j), JobErrorCode::BadCvarAlpha);

  j = good_job("bad");
  j.config.model.p = 0;
  EXPECT_EQ(code_of(j), JobErrorCode::BadModel);

  j = good_job("bad");
  j.kind = core::ModelKind::Hybrid;
  j.config.model.mixer_duration_dt = 0;
  EXPECT_EQ(code_of(j), JobErrorCode::BadModel);

  j = good_job("bad");
  j.tenant = "";
  EXPECT_EQ(code_of(j), JobErrorCode::BadTenant);

  j = good_job("bad");
  j.weight = -1.0;
  EXPECT_EQ(code_of(j), JobErrorCode::BadTenant);
}

TEST(JobValidation, BackendTooSmallForInstance) {
  // falcon_16's 16 qubits cannot host a 12-qubit line placed past qubit 15 —
  // use a graph bigger than the device instead.
  graph::Graph g(20);
  for (std::size_t i = 0; i + 1 < 20; ++i) g.add_edge(i, i + 1);
  SweepJob j = good_job("bad");
  j.instance = graph::Instance{"line20", g, 19.0};
  EXPECT_EQ(code_of(j), JobErrorCode::TooManyQubits);  // register cap first
}

TEST(JobValidation, ErrorCodeNamesAndTransience) {
  EXPECT_EQ(serve::job_error_code_name(JobErrorCode::None), "none");
  EXPECT_EQ(serve::job_error_code_name(JobErrorCode::QueueFull), "queue_full");
  EXPECT_EQ(serve::job_error_code_name(JobErrorCode::ExecutionFailed), "execution_failed");
  EXPECT_TRUE(serve::job_error_transient(JobErrorCode::QueueFull));
  EXPECT_TRUE(serve::job_error_transient(JobErrorCode::BacklogFull));
  EXPECT_FALSE(serve::job_error_transient(JobErrorCode::NullBackend));
  EXPECT_FALSE(serve::job_error_transient(JobErrorCode::DeadlineExpired));
}

TEST(JobValidation, SweepRunnerReturnsFailedFutureInsteadOfCrashing) {
  serve::SweepRunner runner(serve::SweepRunner::Options{1, 64});
  SweepJob job = good_job("null-dev");
  job.dev = nullptr;  // used to be a hard HGP_REQUIRE (or worse, a segfault)
  std::future<core::RunResult> f = runner.submit(serve::JobRequest{std::move(job)});
  try {
    f.get();
    FAIL() << "expected JobValidationError";
  } catch (const serve::JobValidationError& e) {
    EXPECT_EQ(e.error().code, JobErrorCode::NullBackend);
    EXPECT_NE(std::string(e.what()).find("null_backend"), std::string::npos);
  }
}

// ---------------------------------------------------------------------------
// Lifecycle state machine

TEST(JobStateMachine, TransitionEdges) {
  using serve::job_transition_allowed;
  EXPECT_TRUE(job_transition_allowed(JobState::Queued, JobState::Running));
  EXPECT_TRUE(job_transition_allowed(JobState::Queued, JobState::Cancelled));
  EXPECT_TRUE(job_transition_allowed(JobState::Queued, JobState::Expired));
  EXPECT_TRUE(job_transition_allowed(JobState::Running, JobState::Completed));
  EXPECT_TRUE(job_transition_allowed(JobState::Running, JobState::Failed));
  EXPECT_TRUE(job_transition_allowed(JobState::Running, JobState::Cancelled));
  EXPECT_TRUE(job_transition_allowed(JobState::Running, JobState::Expired));

  EXPECT_FALSE(job_transition_allowed(JobState::Queued, JobState::Completed));
  EXPECT_FALSE(job_transition_allowed(JobState::Queued, JobState::Failed));
  EXPECT_FALSE(job_transition_allowed(JobState::Completed, JobState::Running));
  EXPECT_FALSE(job_transition_allowed(JobState::Cancelled, JobState::Queued));
  EXPECT_FALSE(job_transition_allowed(JobState::Running, JobState::Queued));
  EXPECT_FALSE(job_transition_allowed(JobState::Rejected, JobState::Queued));
}

TEST(JobStateMachine, TerminalStatesAndNames) {
  EXPECT_FALSE(serve::job_state_terminal(JobState::Queued));
  EXPECT_FALSE(serve::job_state_terminal(JobState::Running));
  EXPECT_TRUE(serve::job_state_terminal(JobState::Completed));
  EXPECT_TRUE(serve::job_state_terminal(JobState::Failed));
  EXPECT_TRUE(serve::job_state_terminal(JobState::Cancelled));
  EXPECT_TRUE(serve::job_state_terminal(JobState::Expired));
  EXPECT_TRUE(serve::job_state_terminal(JobState::Rejected));
  EXPECT_EQ(serve::job_state_name(JobState::Queued), "queued");
  EXPECT_EQ(serve::job_state_name(JobState::Expired), "expired");
}

TEST(JobStateMachine, CasAllowsExactlyOneWinner) {
  Job job(1, JobRequest{good_job("cas")});
  EXPECT_EQ(job.state(), JobState::Queued);
  EXPECT_TRUE(job.try_transition(JobState::Queued, JobState::Running));
  // Second claimant of the same edge loses.
  EXPECT_FALSE(job.try_transition(JobState::Queued, JobState::Cancelled));
  // Illegal edge never succeeds.
  EXPECT_FALSE(job.try_transition(JobState::Running, JobState::Queued));
  EXPECT_TRUE(job.try_transition(JobState::Running, JobState::Completed));
  EXPECT_FALSE(job.try_transition(JobState::Running, JobState::Failed));
  EXPECT_EQ(job.state(), JobState::Completed);
}

// ---------------------------------------------------------------------------
// CancelToken

TEST(JobCancelToken, LatchesFirstReason) {
  CancelToken tok;
  EXPECT_FALSE(tok.cancelled());
  EXPECT_EQ(tok.reason(), CancelReason::None);
  tok.cancel();
  EXPECT_TRUE(tok.cancelled());
  EXPECT_EQ(tok.reason(), CancelReason::Cancelled);
  // Later causes never overwrite the first.
  tok.cancel(CancelReason::DeadlineExpired);
  EXPECT_EQ(tok.reason(), CancelReason::Cancelled);
  EXPECT_THROW(tok.check(), CancelledError);
}

TEST(JobCancelToken, DeadlineLatchesDeadlineExpired) {
  CancelToken tok;
  tok.set_deadline(std::chrono::steady_clock::now() - std::chrono::milliseconds(1));
  EXPECT_TRUE(tok.has_deadline());
  EXPECT_TRUE(tok.cancelled());
  EXPECT_EQ(tok.reason(), CancelReason::DeadlineExpired);
  try {
    tok.check();
    FAIL() << "expected CancelledError";
  } catch (const CancelledError& e) {
    EXPECT_EQ(e.reason(), CancelReason::DeadlineExpired);
    EXPECT_NE(std::string(e.what()).find("deadline_expired"), std::string::npos);
  }
}

TEST(JobCancelToken, FutureDeadlineDoesNotFire) {
  CancelToken tok;
  tok.set_deadline(std::chrono::steady_clock::now() + std::chrono::hours(1));
  EXPECT_FALSE(tok.cancelled());
  EXPECT_NO_THROW(tok.check());
}

// ---------------------------------------------------------------------------
// FairJobQueue (the DRR scheduler, isolated)

TEST(JobQueue, EqualWeightsInterleaveRoundRobin) {
  FairJobQueue q;
  std::vector<std::string> served;
  auto task = [&served](std::string tag) { return [&served, tag] { served.push_back(tag); }; };
  for (int i = 0; i < 4; ++i) q.push("A", 1.0, 0, task("A" + std::to_string(i)));
  q.push("B", 1.0, 0, task("B0"));
  EXPECT_EQ(q.size(), 5u);
  EXPECT_EQ(q.tenant_count(), 2u);

  std::function<void()> t;
  while (q.pop(t)) t();
  // One credit each per ring pass: A0, then B's only job, then A drains.
  EXPECT_EQ(served, (std::vector<std::string>{"A0", "B0", "A1", "A2", "A3"}));
  EXPECT_TRUE(q.empty());
}

TEST(JobQueue, WeightsScaleServiceShare) {
  FairJobQueue q;
  std::vector<std::string> served;
  auto task = [&served](std::string tag) { return [&served, tag] { served.push_back(tag); }; };
  for (int i = 0; i < 4; ++i) q.push("A", 2.0, 0, task("A"));
  for (int i = 0; i < 2; ++i) q.push("B", 1.0, 0, task("B"));

  std::function<void()> t;
  while (q.pop(t)) t();
  // Weight 2 tenant serves two jobs per ring stop, weight 1 serves one.
  EXPECT_EQ(served, (std::vector<std::string>{"A", "A", "B", "A", "A", "B"}));
}

TEST(JobQueue, PriorityOrdersWithinTenant) {
  FairJobQueue q;
  std::vector<int> served;
  q.push("A", 1.0, 0, [&served] { served.push_back(1); });
  q.push("A", 1.0, 5, [&served] { served.push_back(2); });
  q.push("A", 1.0, 0, [&served] { served.push_back(3); });
  std::function<void()> t;
  while (q.pop(t)) t();
  // Higher priority first; FIFO within a priority.
  EXPECT_EQ(served, (std::vector<int>{2, 1, 3}));
}

TEST(JobQueue, DrainedTenantForfeitsDeficit) {
  FairJobQueue q;
  std::vector<std::string> served;
  auto task = [&served](std::string tag) { return [&served, tag] { served.push_back(tag); }; };
  // B drains with banked weight; when it comes back it must start from zero
  // credit, not burst ahead of A.
  q.push("A", 1.0, 0, task("A0"));
  q.push("B", 5.0, 0, task("B0"));
  std::function<void()> t;
  while (q.pop(t)) t();
  served.clear();
  q.push("A", 1.0, 0, task("A1"));
  q.push("B", 1.0, 0, task("B1"));
  q.push("B", 1.0, 0, task("B2"));
  while (q.pop(t)) t();
  EXPECT_EQ(served, (std::vector<std::string>{"A1", "B1", "B2"}));
}

TEST(JobQueue, PopOnEmptyReturnsFalse) {
  FairJobQueue q;
  std::function<void()> t;
  EXPECT_FALSE(q.pop(t));
  q.push("A", 1.0, 0, [] {});
  EXPECT_TRUE(q.pop(t));
  EXPECT_FALSE(q.pop(t));
}

// ---------------------------------------------------------------------------
// JobService: the happy path and determinism

TEST(JobService, SubmitRunsToCompletion) {
  JobService svc(JobService::Options{2, 1024});
  JobHandle h = svc.submit(JobRequest{good_job("happy")});
  ASSERT_TRUE(h.accepted());
  EXPECT_GT(h.id, 0u);

  const JobOutcome outcome = h.outcome.get();
  EXPECT_EQ(outcome.state, JobState::Completed);
  EXPECT_FALSE(outcome.error);
  ASSERT_TRUE(outcome.has_result);
  EXPECT_FALSE(outcome.result.cancelled);
  EXPECT_GT(outcome.result.ar, 0.0);
  EXPECT_GT(outcome.run_ns, 0u);
  EXPECT_EQ(svc.state(h.id), JobState::Completed);
  EXPECT_EQ(svc.queued(), 0u);
}

TEST(JobService, UnknownIdsAreHandled) {
  JobService svc(JobService::Options{1, 64});
  EXPECT_FALSE(svc.state(42).has_value());
  EXPECT_FALSE(svc.cancel(42));
}

TEST(JobService, CancelOfTerminalJobIsFalse) {
  JobService svc(JobService::Options{1, 1024});
  JobHandle h = svc.submit(JobRequest{good_job("done")});
  h.outcome.wait();
  EXPECT_FALSE(svc.cancel(h.id));
}

TEST(JobService, PruneDropsTerminalJobs) {
  JobService svc(JobService::Options{1, 1024});
  JobHandle h = svc.submit(JobRequest{good_job("prune")});
  h.outcome.wait();
  EXPECT_EQ(svc.prune_finished(), 1u);
  EXPECT_FALSE(svc.state(h.id).has_value());
  // The handle's future stays valid after pruning.
  EXPECT_EQ(h.outcome.get().state, JobState::Completed);
}

TEST(JobService, RejectedSubmitResolvesImmediately) {
  JobService svc(JobService::Options{1, 64});
  SweepJob bad = good_job("reject-me");
  bad.config.optimizer = "bogus";
  JobHandle h = svc.submit(JobRequest{std::move(bad)});
  EXPECT_FALSE(h.accepted());
  EXPECT_EQ(h.submit_state, JobState::Rejected);
  EXPECT_EQ(h.submit_error.code, JobErrorCode::BadOptimizer);
  const JobOutcome outcome = h.outcome.get();  // already resolved
  EXPECT_EQ(outcome.state, JobState::Rejected);
  EXPECT_FALSE(outcome.has_result);
}

TEST(JobService, CompletedJobsBitIdenticalToPlainRunForAnyWorkerCount) {
  // SPSA fans 2-candidate batches through the pool every iteration.
  const SweepJob job = good_job("determinism", "spsa");
  const core::RunResult inline_result =
      core::run_qaoa(job.instance, *job.dev, job.kind, job.config);

  for (std::size_t workers : {std::size_t{1}, std::size_t{2}, std::size_t{4}}) {
    SCOPED_TRACE("workers=" + std::to_string(workers));
    JobService svc(JobService::Options{workers, 1024});
    JobHandle h = svc.submit(JobRequest{job});
    const JobOutcome outcome = h.outcome.get();
    ASSERT_EQ(outcome.state, JobState::Completed);
    expect_same_result(outcome.result, inline_result);
  }
}

// ---------------------------------------------------------------------------
// Cancellation

TEST(JobCancellation, RunningJobFreesWorkerQuickly) {
  JobService svc(JobService::Options{1, 4096});
  JobHandle h = svc.submit(JobRequest{big_job("cancel-me")});
  ASSERT_TRUE(h.accepted());
  ASSERT_TRUE(wait_for_state(svc, h.id, JobState::Running, std::chrono::seconds(30)));
  // Let it get well into the first evaluation's shot loop.
  std::this_thread::sleep_for(std::chrono::milliseconds(100));

  const auto t0 = std::chrono::steady_clock::now();
  EXPECT_TRUE(svc.cancel(h.id));
  const JobOutcome outcome = h.outcome.get();
  const auto elapsed = std::chrono::steady_clock::now() - t0;

  EXPECT_EQ(outcome.state, JobState::Cancelled);
  EXPECT_EQ(outcome.error.code, JobErrorCode::CancelRequested);
  // The checkpoint granularity is one shot batch / lane group — resolution
  // must come orders of magnitude sooner than the run's natural end. The
  // bound is generous for CI noise; an uncancelled run takes tens of seconds.
  EXPECT_LT(std::chrono::duration_cast<std::chrono::milliseconds>(elapsed).count(), 5000);
  // Partial-result annotation survives the unwind.
  ASSERT_TRUE(outcome.has_result);
  EXPECT_TRUE(outcome.result.cancelled);
  EXPECT_EQ(outcome.result.cancel_reason, "cancelled");

  // The worker is healthy and free: a follow-up job completes.
  JobHandle next = svc.submit(JobRequest{good_job("after-cancel")});
  EXPECT_EQ(next.outcome.get().state, JobState::Completed);
}

TEST(JobCancellation, QueuedJobCancelsWithoutRunning) {
  JobService svc(JobService::Options{1, 1024});
  block_worker(svc, std::chrono::milliseconds(300));
  JobHandle h = svc.submit(JobRequest{good_job("queued-cancel")});
  ASSERT_TRUE(h.accepted());
  EXPECT_TRUE(svc.cancel(h.id));
  // Resolved by the canceller, not the worker: immediate.
  const JobOutcome outcome = h.outcome.get();
  EXPECT_EQ(outcome.state, JobState::Cancelled);
  EXPECT_EQ(outcome.error.code, JobErrorCode::CancelRequested);
  EXPECT_FALSE(outcome.has_result);
  EXPECT_EQ(svc.queued(), 0u);
}

TEST(JobCancellation, TimeToCancelHistogramRecords) {
  obs::set_enabled(true);
  obs::Histogram& h_ns = obs::Registry::global().histogram("service.job_cancel_ns");
  const std::uint64_t before = h_ns.count();
  JobService svc(JobService::Options{1, 1024});
  block_worker(svc, std::chrono::milliseconds(50));
  JobHandle h = svc.submit(JobRequest{good_job("timed-cancel")});
  svc.cancel(h.id);
  h.outcome.wait();
  EXPECT_EQ(h_ns.count(), before + 1);
}

// ---------------------------------------------------------------------------
// Deadlines

TEST(JobDeadline, QueuedJobExpiresWithoutConstructingAnExecutor) {
  JobService svc(JobService::Options{1, 1024});
  const serve::BlockCache::Stats before = svc.cache_stats();
  // The single worker is busy long past the deadline.
  block_worker(svc, std::chrono::milliseconds(250));

  JobRequest req{good_job("too-late")};
  req.deadline = std::chrono::milliseconds(50);
  JobHandle h = svc.submit(std::move(req));
  ASSERT_TRUE(h.accepted());

  const JobOutcome outcome = h.outcome.get();
  EXPECT_EQ(outcome.state, JobState::Expired);
  EXPECT_EQ(outcome.error.code, JobErrorCode::DeadlineExpired);
  EXPECT_FALSE(outcome.has_result);
  EXPECT_EQ(svc.state(h.id), JobState::Expired);
  // No executor, no model, no compilation: the shared cache saw no traffic.
  const serve::BlockCache::Stats after = svc.cache_stats();
  EXPECT_EQ(after.misses, before.misses);
  EXPECT_EQ(after.hits, before.hits);
}

TEST(JobDeadline, NegativeDeadlineExpiresAtSubmit) {
  JobService svc(JobService::Options{1, 64});
  JobRequest req{good_job("pre-expired")};
  req.deadline = std::chrono::milliseconds(-5);
  JobHandle h = svc.submit(std::move(req));
  EXPECT_FALSE(h.accepted());
  EXPECT_EQ(h.submit_state, JobState::Expired);
  EXPECT_EQ(h.outcome.get().error.code, JobErrorCode::DeadlineExpired);
}

TEST(JobDeadline, GenerousDeadlineDoesNotDisturbTheRun) {
  JobService svc(JobService::Options{1, 1024});
  JobRequest req{good_job("plenty-of-time")};
  req.deadline = std::chrono::minutes(10);
  JobHandle h = svc.submit(std::move(req));
  const JobOutcome outcome = h.outcome.get();
  EXPECT_EQ(outcome.state, JobState::Completed);
  ASSERT_TRUE(outcome.has_result);
  EXPECT_FALSE(outcome.result.cancelled);
}

TEST(JobDeadline, ExpireOverdueSweepsQueuedJobsWithoutAWorker) {
  // Even with every worker pinned (so nothing ever dequeues), a sweep must
  // expire overdue queued jobs: the future resolves, the queue count drops,
  // and admission control stops charging for the corpse.
  JobService svc(JobService::Options{1, 1024});
  block_worker(svc, std::chrono::milliseconds(300));

  JobRequest req{good_job("swept")};
  req.deadline = std::chrono::milliseconds(20);
  JobHandle h = svc.submit(std::move(req));
  ASSERT_TRUE(h.accepted());
  EXPECT_EQ(svc.queued(), 1u);

  std::this_thread::sleep_for(std::chrono::milliseconds(50));
  EXPECT_EQ(svc.state(h.id), JobState::Queued);  // nothing swept it yet
  EXPECT_EQ(svc.expire_overdue(), 1u);
  EXPECT_EQ(svc.state(h.id), JobState::Expired);
  EXPECT_EQ(svc.queued(), 0u);
  const JobOutcome outcome = h.outcome.get();
  EXPECT_EQ(outcome.state, JobState::Expired);
  EXPECT_EQ(outcome.error.code, JobErrorCode::DeadlineExpired);
  EXPECT_EQ(svc.expire_overdue(), 0u);  // idempotent: already terminal
}

TEST(JobDeadline, PruneFinishedExpiresOverdueQueuedJobsFirst) {
  JobService svc(JobService::Options{1, 1024});
  block_worker(svc, std::chrono::milliseconds(300));
  JobRequest req{good_job("pruned")};
  req.deadline = std::chrono::milliseconds(20);
  JobHandle h = svc.submit(std::move(req));
  ASSERT_TRUE(h.accepted());
  std::this_thread::sleep_for(std::chrono::milliseconds(50));
  // prune_finished sweeps the overdue job to Expired, then drops it (it is
  // terminal now) — the handle's future stays valid.
  EXPECT_GE(svc.prune_finished(), 1u);
  EXPECT_FALSE(svc.state(h.id).has_value());
  EXPECT_EQ(h.outcome.get().state, JobState::Expired);
}

// ---------------------------------------------------------------------------
// Outcome retention for parties that did not submit

TEST(JobOutcomeAccessor, OutcomeByIdServesNonSubmittingClients) {
  JobService svc(JobService::Options{1, 1024});
  JobHandle h = svc.submit(JobRequest{good_job("retained")});
  ASSERT_TRUE(h.accepted());

  // A party that only knows the id (a reconnected wire session) can fetch
  // the same shared future and see the same terminal outcome.
  const auto future = svc.outcome(h.id);
  ASSERT_TRUE(future.has_value());
  const JobOutcome via_accessor = future->get();
  const JobOutcome via_handle = h.outcome.get();
  EXPECT_EQ(via_accessor.state, JobState::Completed);
  EXPECT_EQ(via_accessor.state, via_handle.state);
  EXPECT_EQ(via_accessor.result.optimizer.value, via_handle.result.optimizer.value);

  EXPECT_FALSE(svc.outcome(999999).has_value());
  svc.prune_finished();
  EXPECT_FALSE(svc.outcome(h.id).has_value());  // pruned ids are gone
}

// ---------------------------------------------------------------------------
// Fair sharing across tenants

TEST(JobFairShare, LightTenantIsNotStarvedByHeavyTenant) {
  JobService svc(JobService::Options{1, 4096});
  block_worker(svc, std::chrono::milliseconds(150));

  // Tenant A floods 4 jobs, then tenant B submits one. Under the old FIFO
  // deque B would wait behind all of A; under DRR it runs second.
  std::vector<JobHandle> a_handles;
  for (int i = 0; i < 4; ++i) {
    SweepJob job = good_job("a" + std::to_string(i));
    job.tenant = "tenant-a";
    a_handles.push_back(svc.submit(JobRequest{std::move(job)}));
  }
  SweepJob bjob = good_job("b0");
  bjob.tenant = "tenant-b";
  JobHandle b = svc.submit(JobRequest{std::move(bjob)});

  b.outcome.wait();
  // The single worker dequeues A0, B0, A1, A2, A3 — when B resolves, A's
  // last two jobs cannot even have been dequeued yet.
  const auto ready = [](const JobHandle& h) {
    return h.outcome.wait_for(std::chrono::seconds(0)) == std::future_status::ready;
  };
  EXPECT_FALSE(ready(a_handles[2]) && ready(a_handles[3]));
  for (JobHandle& h : a_handles) EXPECT_EQ(h.outcome.get().state, JobState::Completed);
}

// ---------------------------------------------------------------------------
// Admission control

TEST(JobAdmission, QueueLimitIsExactAndDeterministic) {
  JobService::Options opt;
  opt.num_workers = 1;
  opt.cache_capacity = 1024;
  opt.max_queued_jobs = 2;
  JobService svc(opt);
  block_worker(svc, std::chrono::milliseconds(200));

  JobHandle h1 = svc.submit(JobRequest{good_job("fits-1")});
  JobHandle h2 = svc.submit(JobRequest{good_job("fits-2")});
  EXPECT_TRUE(h1.accepted());
  EXPECT_TRUE(h2.accepted());
  EXPECT_EQ(svc.queued(), 2u);

  // The third submit finds the queue at the limit — rejected, every time.
  for (int i = 0; i < 3; ++i) {
    JobHandle h3 = svc.submit(JobRequest{good_job("over")});
    EXPECT_FALSE(h3.accepted());
    EXPECT_EQ(h3.submit_state, JobState::Rejected);
    EXPECT_EQ(h3.submit_error.code, JobErrorCode::QueueFull);
  }

  EXPECT_EQ(h1.outcome.get().state, JobState::Completed);
  EXPECT_EQ(h2.outcome.get().state, JobState::Completed);
  // With the queue drained, admission opens again.
  JobHandle h4 = svc.submit(JobRequest{good_job("fits-again")});
  EXPECT_TRUE(h4.accepted());
  EXPECT_EQ(h4.outcome.get().state, JobState::Completed);
}

TEST(JobAdmission, RetryWithBackoffRidesOutQueuePressure) {
  JobService::Options opt;
  opt.num_workers = 1;
  opt.cache_capacity = 1024;
  opt.max_queued_jobs = 1;
  JobService svc(opt);
  block_worker(svc, std::chrono::milliseconds(400));
  JobHandle occupant = svc.submit(JobRequest{good_job("occupant")});
  ASSERT_TRUE(occupant.accepted());

  // Free the slot shortly after the first retry attempt fails.
  std::thread canceller([&svc, &occupant] {
    std::this_thread::sleep_for(std::chrono::milliseconds(40));
    svc.cancel(occupant.id);
  });

  JobService::RetryPolicy policy;
  policy.max_attempts = 8;
  policy.initial_delay = std::chrono::milliseconds(20);
  JobHandle h = svc.submit_with_retry(JobRequest{good_job("patient")}, policy);
  canceller.join();
  EXPECT_TRUE(h.accepted());
  EXPECT_EQ(h.outcome.get().state, JobState::Completed);
}

TEST(JobAdmission, ExhaustedRetriesReturnTheRejection) {
  JobService::Options opt;
  opt.num_workers = 1;
  opt.cache_capacity = 1024;
  opt.max_queued_jobs = 1;
  JobService svc(opt);
  block_worker(svc, std::chrono::milliseconds(300));
  JobHandle occupant = svc.submit(JobRequest{good_job("occupant")});
  ASSERT_TRUE(occupant.accepted());

  JobService::RetryPolicy policy;
  policy.max_attempts = 3;
  policy.initial_delay = std::chrono::milliseconds(5);
  JobHandle h = svc.submit_with_retry(JobRequest{good_job("gives-up")}, policy);
  EXPECT_FALSE(h.accepted());
  EXPECT_EQ(h.submit_error.code, JobErrorCode::QueueFull);
  occupant.outcome.wait();
}

TEST(JobAdmission, PermanentRejectionsAreNotRetried) {
  JobService svc(JobService::Options{1, 64});
  SweepJob bad = good_job("permanent");
  bad.config.engine = "warp";
  JobService::RetryPolicy policy;
  policy.max_attempts = 5;
  policy.initial_delay = std::chrono::milliseconds(50);
  const auto t0 = std::chrono::steady_clock::now();
  JobHandle h = svc.submit_with_retry(JobRequest{std::move(bad)}, policy);
  const auto elapsed = std::chrono::steady_clock::now() - t0;
  EXPECT_EQ(h.submit_error.code, JobErrorCode::BadEngine);
  // Returned on the first attempt — no backoff sleeps for a permanent code.
  EXPECT_LT(std::chrono::duration_cast<std::chrono::milliseconds>(elapsed).count(), 50);
}

// ---------------------------------------------------------------------------
// Failure isolation

TEST(JobFailure, ThrowingRunFailsTheJobAndLeavesThePoolHealthy) {
  JobService svc(JobService::Options{1, 1024});
  // Passes validation (12 vertices, under the 14-qubit trajectory cap) but
  // the ring's closure edge and chords route through physical qubits outside
  // the pinned line, so the executor rejects the compiled program mid-run.
  SweepJob bad = good_job("throws");
  bad.instance = ring12();
  bad.config.model.initial_layout = kLine12;
  JobHandle h = svc.submit(JobRequest{std::move(bad)});
  ASSERT_TRUE(h.accepted());

  const JobOutcome outcome = h.outcome.get();
  EXPECT_EQ(outcome.state, JobState::Failed);
  EXPECT_EQ(outcome.error.code, JobErrorCode::ExecutionFailed);
  EXPECT_NE(outcome.error.message.find("too many active qubits"), std::string::npos);
  EXPECT_FALSE(outcome.has_result);

  // The worker survived and the shared block cache is not poisoned: a good
  // job (including pulse compilation) completes right after.
  SweepJob good = good_job("healthy");
  good.kind = core::ModelKind::Hybrid;
  JobHandle next = svc.submit(JobRequest{std::move(good)});
  const JobOutcome ok = next.outcome.get();
  EXPECT_EQ(ok.state, JobState::Completed);
  ASSERT_TRUE(ok.has_result);
  EXPECT_GT(ok.result.ar, 0.0);
}

// ---------------------------------------------------------------------------
// Telemetry (satellite: the queue-depth gauge stays correct on dequeue)

TEST(JobQueueDepthGauge, ReturnsToZeroAfterDrain) {
  obs::set_enabled(true);
  obs::Gauge& depth = obs::Registry::global().gauge("service.queue_depth");
  obs::Gauge& queued = obs::Registry::global().gauge("service.jobs_queued");

  JobService svc(JobService::Options{1, 1024});
  block_worker(svc, std::chrono::milliseconds(100));
  std::vector<JobHandle> handles;
  for (int i = 0; i < 3; ++i)
    handles.push_back(svc.submit(JobRequest{good_job("g" + std::to_string(i))}));
  EXPECT_EQ(queued.value(), 3);
  EXPECT_GE(depth.value(), 3);

  for (JobHandle& h : handles) EXPECT_EQ(h.outcome.get().state, JobState::Completed);
  EXPECT_EQ(queued.value(), 0);
  // The gauge is updated on every dequeue (not just submit), so a drained
  // service reports zero depth.
  EXPECT_EQ(depth.value(), 0);
}

// ---------------------------------------------------------------------------
// Concurrency stress (exercised under TSan in CI)

TEST(JobStress, ConcurrentCancelsAndQueriesResolveEveryFuture) {
  JobService svc(JobService::Options{4, 4096});
  std::vector<JobHandle> handles;
  const char* tenants[] = {"red", "green", "blue"};
  for (int i = 0; i < 12; ++i) {
    SweepJob job = good_job("s" + std::to_string(i));
    job.tenant = tenants[i % 3];
    job.weight = 1.0 + (i % 2);
    JobRequest req{std::move(job)};
    if (i % 4 == 3) req.deadline = std::chrono::milliseconds(1 + i);
    handles.push_back(svc.submit(std::move(req)));
  }

  std::atomic<bool> stop{false};
  std::thread canceller([&] {
    for (std::size_t i = 0; i < handles.size(); i += 2) svc.cancel(handles[i].id);
  });
  std::thread prober([&] {
    while (!stop.load()) {
      for (const JobHandle& h : handles) (void)svc.state(h.id);
      (void)svc.queued();
      (void)svc.estimated_backlog_ns();
      std::this_thread::sleep_for(std::chrono::milliseconds(1));
    }
  });

  for (JobHandle& h : handles) {
    const JobOutcome outcome = h.outcome.get();  // every future resolves
    EXPECT_TRUE(serve::job_state_terminal(outcome.state));
  }
  stop.store(true);
  canceller.join();
  prober.join();
  svc.prune_finished();
}
