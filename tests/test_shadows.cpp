#include <gtest/gtest.h>

#include "common/rng.hpp"
#include "core/qaoa.hpp"
#include "graph/instances.hpp"
#include "mitigation/shadows.hpp"
#include "sim/statevector.hpp"

using namespace hgp;
using mit::ClassicalShadow;

TEST(Shadows, SingleQubitPauliExpectations) {
  // |+>: <X> = 1, <Z> = 0.
  qc::Circuit prep(1);
  prep.h(0);
  Rng rng(3);
  const auto shadow = ClassicalShadow::collect(prep, 6000, rng);
  EXPECT_NEAR(shadow.estimate(la::PauliString::parse("X")), 1.0, 0.1);
  EXPECT_NEAR(shadow.estimate(la::PauliString::parse("Z")), 0.0, 0.1);
  EXPECT_NEAR(shadow.estimate(la::PauliString::parse("Y")), 0.0, 0.1);
}

TEST(Shadows, BellStateCorrelations) {
  qc::Circuit prep(2);
  prep.h(0).cx(0, 1);
  Rng rng(4);
  const auto shadow = ClassicalShadow::collect(prep, 20000, rng);
  EXPECT_NEAR(shadow.estimate(la::PauliString::parse("ZZ")), 1.0, 0.15);
  EXPECT_NEAR(shadow.estimate(la::PauliString::parse("XX")), 1.0, 0.15);
  EXPECT_NEAR(shadow.estimate(la::PauliString::parse("YY")), -1.0, 0.15);
  EXPECT_NEAR(shadow.estimate(la::PauliString::parse("ZI")), 0.0, 0.1);
}

TEST(Shadows, EstimatesMaxcutHamiltonian) {
  // The shadow estimate of <H_P> must agree with the exact expectation.
  const auto inst = graph::paper_task1();
  const qc::Circuit prep = core::qaoa_circuit(inst.graph, 1).bound({0.65, 0.40});
  const la::PauliSum h = core::maxcut_hamiltonian(inst.graph);

  sim::Statevector sv(6);
  sv.run(prep);
  const double exact = sv.expectation(h);

  Rng rng(5);
  const auto shadow = ClassicalShadow::collect(prep, 30000, rng);
  EXPECT_NEAR(shadow.estimate(h), exact, 0.35);
}

TEST(Shadows, MeasurementReductionVsDirectSampling) {
  // One shadow collection estimates every ZZ term at once — the paper's
  // "measurement reduction" motivation. Check all 9 edges from one pool.
  const auto inst = graph::paper_task1();
  const qc::Circuit prep = core::qaoa_circuit(inst.graph, 1).bound({0.65, 0.40});
  sim::Statevector sv(6);
  sv.run(prep);

  Rng rng(6);
  const auto shadow = ClassicalShadow::collect(prep, 30000, rng);
  for (const auto& e : inst.graph.edges()) {
    std::vector<la::Pauli> zz(6, la::Pauli::I);
    zz[e.u] = la::Pauli::Z;
    zz[e.v] = la::Pauli::Z;
    const la::PauliString p(zz);
    EXPECT_NEAR(shadow.estimate(p), p.expectation(sv.data()), 0.2)
        << e.u << "," << e.v;
  }
}

TEST(Shadows, RejectsBadInput) {
  qc::Circuit prep(1);
  prep.h(0);
  Rng rng(7);
  EXPECT_THROW(ClassicalShadow::collect(prep, 0, rng), Error);
  const auto shadow = ClassicalShadow::collect(prep, 100, rng);
  EXPECT_THROW(shadow.estimate(la::PauliString::parse("XX")), Error);
}
