// Workflow-level unit tests with tiny budgets: metric plumbing (M3/CVaR in
// the training objective), config propagation, and result bookkeeping.
#include <gtest/gtest.h>

#include <cmath>

#include "backend/presets.hpp"
#include "common/error.hpp"
#include "core/calibration_run.hpp"
#include "core/workflow.hpp"
#include "graph/instances.hpp"

using namespace hgp;

namespace {
core::RunConfig tiny() {
  core::RunConfig cfg;
  cfg.shots = 128;
  cfg.max_evaluations = 5;
  return cfg;
}
}  // namespace

TEST(Workflow, ResultRecordsModelName) {
  const auto inst = graph::paper_task1();
  const auto dev = backend::make_toronto();
  EXPECT_EQ(core::run_qaoa(inst, dev, core::ModelKind::GateLevel, tiny()).model,
            "gate-level");
  EXPECT_EQ(core::run_qaoa(inst, dev, core::ModelKind::Hybrid, tiny()).model,
            "hybrid gate-pulse");
}

TEST(Workflow, HistoryLengthTracksBudget) {
  const auto inst = graph::paper_task1();
  const auto dev = backend::make_toronto();
  core::RunConfig cfg = tiny();
  cfg.max_evaluations = 10;
  const auto res = core::run_qaoa(inst, dev, core::ModelKind::GateLevel, cfg);
  EXPECT_LE(res.optimizer.evaluations, 10);
  EXPECT_FALSE(res.optimizer.history.empty());
}

TEST(Workflow, MixerDurationConfigPropagates) {
  const auto inst = graph::paper_task1();
  const auto dev = backend::make_toronto();
  core::RunConfig cfg = tiny();
  cfg.model.mixer_duration_dt = 128;
  const auto res = core::run_qaoa(inst, dev, core::ModelKind::Hybrid, cfg);
  EXPECT_EQ(res.mixer_layer_duration_dt, 128);
  // The gate model ignores the knob: its mixer is two SX pulses.
  const auto gate = core::run_qaoa(inst, dev, core::ModelKind::GateLevel, cfg);
  EXPECT_EQ(gate.mixer_layer_duration_dt, 320);
}

TEST(Workflow, ShorterMixerShortensMakespan) {
  const auto inst = graph::paper_task1();
  const auto dev = backend::make_toronto();
  core::RunConfig long_cfg = tiny();
  long_cfg.model.mixer_duration_dt = 320;
  core::RunConfig short_cfg = tiny();
  short_cfg.model.mixer_duration_dt = 64;
  const auto l = core::run_qaoa(inst, dev, core::ModelKind::Hybrid, long_cfg);
  const auto s = core::run_qaoa(inst, dev, core::ModelKind::Hybrid, short_cfg);
  EXPECT_EQ(l.makespan_dt - s.makespan_dt, 320 - 64);
}

TEST(Workflow, GateOptimizationReducesSwaps) {
  const auto inst = graph::paper_task1();
  const auto dev = backend::make_toronto();
  core::RunConfig raw_cfg = tiny();
  core::RunConfig go_cfg = tiny();
  go_cfg.gate_optimization = true;
  const auto raw = core::run_qaoa(inst, dev, core::ModelKind::GateLevel, raw_cfg);
  const auto go = core::run_qaoa(inst, dev, core::ModelKind::GateLevel, go_cfg);
  EXPECT_LE(go.swap_count, raw.swap_count);
}

TEST(Workflow, FixedLayoutIsUsed) {
  const auto inst = graph::paper_task1();
  const auto dev = backend::make_guadalupe();
  core::RunConfig cfg = tiny();
  cfg.model.initial_layout = {0, 1, 4, 7, 10, 12};
  const auto res = core::run_qaoa(inst, dev, core::ModelKind::GateLevel, cfg);
  EXPECT_GT(res.ar, 0.2);
}

TEST(Workflow, PTwoLayersWork) {
  const auto inst = graph::paper_task1();
  const auto dev = backend::make_toronto();
  core::RunConfig cfg = tiny();
  cfg.model.p = 2;
  const auto gate = core::run_qaoa(inst, dev, core::ModelKind::GateLevel, cfg);
  EXPECT_EQ(gate.optimizer.x.size(), 4u);  // gamma_0 beta_0 gamma_1 beta_1
  const auto hybrid = core::run_qaoa(inst, dev, core::ModelKind::Hybrid, cfg);
  EXPECT_EQ(hybrid.optimizer.x.size(), 2u * (1u + 18u));
  EXPECT_GT(hybrid.ar, 0.2);
}

TEST(Workflow, ReadoutCalibrationEstimatesConfusion) {
  const auto dev = backend::make_toronto();
  core::Executor ex(dev);
  Rng rng(9);
  const std::vector<std::size_t> qubits = {0, 1, 4};
  const auto est = core::calibrate_readout(ex, qubits, 20000, rng);
  ASSERT_EQ(est.size(), 3u);
  for (std::size_t i = 0; i < 3; ++i) {
    const auto& truth = dev.noise_model().qubits[qubits[i]].readout;
    EXPECT_NEAR(est[i].p1_given_0, truth.p1_given_0, 0.01);
    // The |1> calibration sees the *effective* 1->0 error: bare confusion
    // plus T1 decay across the ~6 us readout window (~5% on toronto). This
    // is exactly what hardware M3 calibration measures — and corrects.
    const double t1 = dev.noise_model().qubits[qubits[i]].t1_us;
    const double decay = 1.0 - std::exp(-(dev.readout_duration_dt() * pulse::kDtNs * 1e-3) / t1);
    EXPECT_NEAR(est[i].p0_given_1, truth.p0_given_1 + decay, 0.02);
    EXPECT_GT(est[i].p0_given_1, truth.p0_given_1);
  }
}

TEST(Workflow, OptimizerSelection) {
  const auto inst = graph::paper_task1();
  const auto dev = backend::make_toronto();
  core::RunConfig cfg = tiny();
  for (const char* name : {"cobyla", "spsa", "neldermead"}) {
    cfg.optimizer = name;
    const auto res = core::run_qaoa(inst, dev, core::ModelKind::GateLevel, cfg);
    EXPECT_GT(res.ar, 0.2) << name;
  }
  cfg.optimizer = "bogus";
  EXPECT_THROW(core::run_qaoa(inst, dev, core::ModelKind::GateLevel, cfg), Error);
}
