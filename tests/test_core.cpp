#include <gtest/gtest.h>

#include <cmath>

#include "backend/presets.hpp"
#include "common/rng.hpp"
#include "core/executor.hpp"
#include "core/models.hpp"
#include "core/qaoa.hpp"
#include "graph/generators.hpp"
#include "graph/instances.hpp"
#include "sim/statevector.hpp"

using namespace hgp;
using core::ExecOp;
using core::Executor;
using core::ExecutorOptions;
using core::ModelKind;
using core::Program;
using core::QaoaModel;

namespace {

const backend::FakeBackend& toronto() {
  static const backend::FakeBackend dev = backend::make_toronto();
  return dev;
}

ExecutorOptions noiseless() {
  ExecutorOptions o;
  o.noise = false;
  o.readout_error = false;
  o.coherent_noise = false;
  return o;
}

}  // namespace

TEST(Qaoa, HamiltonianExpectationEqualsCut) {
  const auto inst = graph::paper_task1();
  const la::PauliSum h = core::maxcut_hamiltonian(inst.graph);
  EXPECT_TRUE(h.is_diagonal());
  // Energy of each basis state equals its cut value.
  for (std::uint64_t bits = 0; bits < 64; ++bits)
    EXPECT_NEAR(h.energy(bits), inst.graph.cut_value(bits), 1e-12) << bits;
  EXPECT_NEAR(h.max_energy(), 9.0, 1e-12);
}

TEST(Qaoa, CircuitStructure) {
  const auto inst = graph::paper_task1();
  const qc::Circuit c = core::qaoa_circuit(inst.graph, 2);
  EXPECT_EQ(c.count(qc::GateKind::H), 6u);
  EXPECT_EQ(c.count(qc::GateKind::RZZ), 18u);
  EXPECT_EQ(c.count(qc::GateKind::RX), 12u);
  EXPECT_EQ(c.num_parameters(), 4u);
}

TEST(Qaoa, IdealP1LandscapeIsSensible) {
  const auto inst = graph::paper_task1();
  // At theta = 0 the state stays |+>^n: expected cut = m/2 = 4.5.
  EXPECT_NEAR(core::ideal_qaoa_expectation(inst.graph, 1, {0.0, 0.0}), 4.5, 1e-9);
  // Known good p=1 angles beat random guessing comfortably.
  const double at_init = core::ideal_qaoa_expectation(inst.graph, 1, {0.65, 0.40});
  EXPECT_GT(at_init / inst.max_cut, 0.65);
}

TEST(Qaoa, CutExpectationFromCounts) {
  const auto inst = graph::paper_task1();
  sim::Counts counts;
  counts[0b000111] = 500;  // K3,3 optimal side split: cut 9
  counts[0b000000] = 500;  // cut 0
  EXPECT_NEAR(core::cut_expectation(inst.graph, counts), 4.5, 1e-12);
  EXPECT_NEAR(core::approximation_ratio(4.5, inst.max_cut), 0.5, 1e-12);
}

TEST(Qaoa, HardwareEfficientPqcShape) {
  const qc::Circuit c = core::hardware_efficient_pqc(4, 2, "linear");
  EXPECT_EQ(c.count(qc::GateKind::U3), 8u);
  EXPECT_EQ(c.count(qc::GateKind::CX), 6u);
  EXPECT_EQ(c.num_parameters(), 24u);
  EXPECT_EQ(core::hardware_efficient_pqc(4, 1, "full").count(qc::GateKind::CX), 6u);
  EXPECT_EQ(core::hardware_efficient_pqc(4, 1, "circular").count(qc::GateKind::CX), 4u);
  EXPECT_THROW(core::hardware_efficient_pqc(4, 1, "star"), Error);
}

TEST(Executor, NoiselessBellProgram) {
  Program prog;
  // H = RZ(pi/2) SX RZ(pi/2) on physical qubit 0, then CX(0,1).
  prog.ops.push_back(ExecOp::from_gate(qc::Op{qc::GateKind::RZ, {0}, {qc::Param::constant(la::kPi / 2)}}));
  prog.ops.push_back(ExecOp::from_gate(qc::Op{qc::GateKind::SX, {0}, {}}));
  prog.ops.push_back(ExecOp::from_gate(qc::Op{qc::GateKind::RZ, {0}, {qc::Param::constant(la::kPi / 2)}}));
  prog.ops.push_back(ExecOp::from_gate(qc::Op{qc::GateKind::CX, {0, 1}, {}}));
  prog.measure_qubits = {0, 1};

  Executor ex(toronto(), noiseless());
  Rng rng(1);
  const sim::Counts counts = ex.run(prog, 4000, rng);
  ASSERT_EQ(counts.size(), 2u);
  EXPECT_NEAR(double(counts.at(0b00)) / 4000.0, 0.5, 0.05);
  EXPECT_NEAR(double(counts.at(0b11)) / 4000.0, 0.5, 0.05);
}

TEST(Executor, CoherentPulsePathMatchesIdealGatesClosely) {
  // With coherent noise off... on a clean device the pulse-lowered CX path
  // should agree with the exact-matrix path to sampling accuracy.
  Program prog;
  prog.ops.push_back(ExecOp::from_gate(qc::Op{qc::GateKind::SX, {0}, {}}));
  prog.ops.push_back(ExecOp::from_gate(qc::Op{qc::GateKind::CX, {0, 1}, {}}));
  prog.measure_qubits = {0, 1};

  ExecutorOptions pulse_path = noiseless();
  pulse_path.noise = true;  // enables the pulse-simulation path...
  pulse_path.coherent_noise = true;
  // ...but strip all stochastic noise by zeroing the model.
  backend::FakeBackend dev = backend::make_toronto();
  for (auto& q : dev.mutable_noise_model().qubits) {
    q.t1_us = 1e9;
    q.t2_us = 1e9;
    q.readout = {};
    q.freq_drift_ghz = 0.0;
    q.drive_gain = 1.0;
  }
  dev.mutable_noise_model().dep_per_1q_pulse = 0.0;
  dev.mutable_noise_model().dep_per_2q_block = 0.0;

  Executor ex(dev, pulse_path);
  Rng rng(2);
  const sim::Counts counts = ex.run(prog, 8000, rng);
  // Ideal: SX then CX -> (|00> + |11>)/... amplitudes give 50/50 on 00 and 11.
  EXPECT_NEAR(double(counts.at(0b00)) / 8000.0, 0.5, 0.03);
  EXPECT_NEAR(double(counts.at(0b11)) / 8000.0, 0.5, 0.03);
}

TEST(Executor, MeasureMapReordersBits) {
  Program prog;
  prog.ops.push_back(ExecOp::from_gate(qc::Op{qc::GateKind::X, {5}, {}}));
  prog.measure_qubits = {5, 6};  // virtual bit 0 = physical 5
  Executor ex(toronto(), noiseless());
  Rng rng(3);
  const sim::Counts counts = ex.run(prog, 100, rng);
  ASSERT_EQ(counts.size(), 1u);
  EXPECT_EQ(counts.begin()->first, 0b01u);
}

TEST(Executor, NoiseReducesGhzFidelity) {
  Program prog;
  prog.ops.push_back(ExecOp::from_gate(qc::Op{qc::GateKind::RZ, {0}, {qc::Param::constant(la::kPi / 2)}}));
  prog.ops.push_back(ExecOp::from_gate(qc::Op{qc::GateKind::SX, {0}, {}}));
  prog.ops.push_back(ExecOp::from_gate(qc::Op{qc::GateKind::RZ, {0}, {qc::Param::constant(la::kPi / 2)}}));
  prog.ops.push_back(ExecOp::from_gate(qc::Op{qc::GateKind::CX, {0, 1}, {}}));
  prog.ops.push_back(ExecOp::from_gate(qc::Op{qc::GateKind::CX, {1, 4}, {}}));
  prog.measure_qubits = {0, 1, 4};

  Rng rng(4);
  Executor noisy(toronto());
  const sim::Counts counts = noisy.run(prog, 4000, rng);
  double good = 0.0, total = 0.0;
  for (const auto& [bits, n] : counts) {
    total += double(n);
    if (bits == 0b000 || bits == 0b111) good += double(n);
  }
  const double fidelity = good / total;
  EXPECT_LT(fidelity, 0.995);  // noise visible
  EXPECT_GT(fidelity, 0.80);   // but not catastrophic
}

TEST(Executor, ReportsTimeline) {
  Program prog;
  prog.ops.push_back(ExecOp::from_gate(qc::Op{qc::GateKind::SX, {0}, {}}));
  prog.ops.push_back(ExecOp::from_gate(qc::Op{qc::GateKind::SX, {0}, {}}));
  prog.measure_qubits = {0};
  Executor ex(toronto(), noiseless());
  Rng rng(5);
  ex.run(prog, 10, rng);
  EXPECT_EQ(ex.last_report().makespan_dt, 320);
  EXPECT_EQ(ex.last_report().block_count, 2u);
}

TEST(Models, GateLevelParameterSpace) {
  const auto inst = graph::paper_task1();
  core::ModelConfig cfg;
  const QaoaModel m = QaoaModel::build(inst.graph, toronto(), ModelKind::GateLevel, cfg);
  EXPECT_EQ(m.num_parameters(), 2u);
  EXPECT_EQ(m.parameters()[0].name, "gamma_0");
  EXPECT_EQ(m.parameters()[1].name, "beta_0");
  EXPECT_EQ(m.mixer_layer_duration_dt(), 320);  // two SX pulses
}

TEST(Models, HybridParameterSpace) {
  const auto inst = graph::paper_task1();
  core::ModelConfig cfg;
  const QaoaModel m = QaoaModel::build(inst.graph, toronto(), ModelKind::Hybrid, cfg);
  EXPECT_EQ(m.num_parameters(), 1u + 3u * 6u);
  EXPECT_EQ(m.mixer_layer_duration_dt(), 320);
  // Mixer duration is the Step-I knob.
  QaoaModel m2 = m;
  m2.set_mixer_duration(128);
  EXPECT_EQ(m2.mixer_layer_duration_dt(), 128);
  EXPECT_THROW(m2.set_mixer_duration(100), Error);
}

TEST(Models, PulseLevelHasLargerParameterSpace) {
  const auto inst = graph::paper_task1();
  core::ModelConfig cfg;
  const QaoaModel hybrid = QaoaModel::build(inst.graph, toronto(), ModelKind::Hybrid, cfg);
  const QaoaModel pulse = QaoaModel::build(inst.graph, toronto(), ModelKind::PulseLevel, cfg);
  // The paper's scalability point: the pulse-level model's search space is
  // much larger than the hybrid's.
  EXPECT_GT(pulse.num_parameters(), 3 * hybrid.num_parameters());
}

TEST(Models, NoiselessHybridMatchesGateAtEquivalentInit) {
  // At the initial parameters (mixer pulse ≡ RX(2β0)) and without noise,
  // gate and hybrid programs must sample (nearly) the same distribution.
  const auto inst = graph::paper_task1();
  core::ModelConfig cfg;
  const QaoaModel gate = QaoaModel::build(inst.graph, toronto(), ModelKind::GateLevel, cfg);
  const QaoaModel hybrid = QaoaModel::build(inst.graph, toronto(), ModelKind::Hybrid, cfg);

  Executor ex(toronto(), noiseless());
  Rng rng1(6), rng2(6);
  const sim::Counts cg = ex.run(gate.instantiate(gate.initial_parameters()), 20000, rng1);
  const sim::Counts ch = ex.run(hybrid.instantiate(hybrid.initial_parameters()), 20000, rng2);
  const double eg = core::cut_expectation(inst.graph, cg);
  const double eh = core::cut_expectation(inst.graph, ch);
  EXPECT_NEAR(eg, eh, 0.12);
  // And both match the ideal statevector value.
  const double ideal = core::ideal_qaoa_expectation(inst.graph, 1, {cfg.init_gamma, cfg.init_beta});
  EXPECT_NEAR(eg, ideal, 0.12);
}

TEST(Models, MixerAblationFlagsShrinkParameterSpace) {
  const auto inst = graph::paper_task1();
  core::ModelConfig cfg;
  cfg.train_phase = false;
  cfg.train_freq = false;
  const QaoaModel m = QaoaModel::build(inst.graph, toronto(), ModelKind::Hybrid, cfg);
  EXPECT_EQ(m.num_parameters(), 1u + 6u);  // gamma + per-qubit amplitude only
}

TEST(Models, InstantiateRejectsWrongParameterCount) {
  const auto inst = graph::paper_task1();
  core::ModelConfig cfg;
  const QaoaModel m = QaoaModel::build(inst.graph, toronto(), ModelKind::GateLevel, cfg);
  EXPECT_THROW(m.instantiate({0.1}), Error);
}

TEST(Models, WorksOnGuadalupe16) {
  const auto inst = graph::paper_task3();  // 8 qubits
  const backend::FakeBackend dev = backend::make_guadalupe();
  core::ModelConfig cfg;
  const QaoaModel m = QaoaModel::build(inst.graph, dev, ModelKind::Hybrid, cfg);
  const Program prog = m.instantiate(m.initial_parameters());
  EXPECT_EQ(prog.measure_qubits.size(), 8u);
  for (std::size_t q : prog.measure_qubits) EXPECT_LT(q, 16u);
}

TEST(Executor, DdEchoRefocusesStaticDrift) {
  // Pure frame-drift device: a Ramsey sequence H - idle - H loses contrast,
  // but splitting the idle with a time-separated X-X echo restores it.
  backend::FakeBackend dev = backend::make_toronto();
  for (auto& q : dev.mutable_noise_model().qubits) {
    q.t1_us = 1e9;
    q.t2_us = 1e9;
    q.readout = {};
    q.drive_gain = 1.0;
    q.freq_drift_ghz = 2e-4;  // strong, so the Ramsey phase is O(1)
  }
  dev.mutable_noise_model().dep_per_1q_pulse = 0.0;
  dev.mutable_noise_model().dep_per_2q_block = 0.0;

  const int idle = 6400;  // dt; drift phase 2*pi*2e-4*6400*(2/9) = 1.8 rad
  auto ramsey = [&](bool dd) {
    Program prog;
    auto h_gate = [&](std::size_t q) {
      prog.ops.push_back(ExecOp::from_gate(
          qc::Op{qc::GateKind::RZ, {q}, {qc::Param::constant(la::kPi / 2)}}));
      prog.ops.push_back(ExecOp::from_gate(qc::Op{qc::GateKind::SX, {q}, {}}));
      prog.ops.push_back(ExecOp::from_gate(
          qc::Op{qc::GateKind::RZ, {q}, {qc::Param::constant(la::kPi / 2)}}));
    };
    h_gate(0);
    if (dd) {
      prog.ops.push_back(ExecOp::from_gate(
          qc::Op{qc::GateKind::Delay, {0}, {qc::Param::constant(idle / 2)}}));
      prog.ops.push_back(ExecOp::from_gate(qc::Op{qc::GateKind::X, {0}, {}}));
      prog.ops.push_back(ExecOp::from_gate(
          qc::Op{qc::GateKind::Delay, {0}, {qc::Param::constant(idle / 2)}}));
      prog.ops.push_back(ExecOp::from_gate(qc::Op{qc::GateKind::X, {0}, {}}));
    } else {
      prog.ops.push_back(ExecOp::from_gate(
          qc::Op{qc::GateKind::Delay, {0}, {qc::Param::constant(idle)}}));
    }
    h_gate(0);
    prog.measure_qubits = {0};
    Executor ex(dev);
    Rng rng(5);
    const sim::Counts counts = ex.run(prog, 4000, rng);
    double zeros = 0.0, total = 0.0;
    for (const auto& [bits, n] : counts) {
      total += double(n);
      if (bits == 0) zeros += double(n);
    }
    return zeros / total;
  };

  const double plain = ramsey(false);
  const double echoed = ramsey(true);
  EXPECT_LT(plain, 0.90);   // Ramsey contrast lost to the drift phase
  EXPECT_GT(echoed, 0.97);  // echo refocuses it
}
