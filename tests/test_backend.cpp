#include <gtest/gtest.h>

#include "backend/presets.hpp"
#include "backend/topology.hpp"
#include "common/error.hpp"
#include "pulsesim/simulator.hpp"

using namespace hgp;
using backend::CouplingMap;
using backend::FakeBackend;

TEST(Topology, HeavyHex27Shape) {
  const CouplingMap m = backend::heavy_hex_27();
  EXPECT_EQ(m.num_qubits(), 27u);
  EXPECT_EQ(m.edges().size(), 28u);
  EXPECT_TRUE(m.connected(0, 1));
  EXPECT_FALSE(m.connected(0, 2));
  // Distances: symmetric, triangle inequality spot checks.
  EXPECT_EQ(m.distance(0, 0), 0u);
  EXPECT_EQ(m.distance(0, 1), 1u);
  EXPECT_EQ(m.distance(0, 2), 2u);
  EXPECT_EQ(m.distance(2, 0), 2u);
  EXPECT_LE(m.distance(0, 26), m.distance(0, 12) + m.distance(12, 26));
}

TEST(Topology, Falcon16Shape) {
  const CouplingMap m = backend::falcon_16();
  EXPECT_EQ(m.num_qubits(), 16u);
  EXPECT_EQ(m.edges().size(), 16u);
}

TEST(Topology, LineDistances) {
  const CouplingMap m = backend::line(5);
  EXPECT_EQ(m.distance(0, 4), 4u);
  EXPECT_EQ(m.neighbors(2).size(), 2u);
}

TEST(Presets, TableOneParameters) {
  const FakeBackend auckland = backend::make_auckland();
  EXPECT_EQ(auckland.num_qubits(), 27u);
  EXPECT_DOUBLE_EQ(auckland.info().cx_error, 1.164e-2);
  EXPECT_DOUBLE_EQ(auckland.info().readout_error, 0.011);
  EXPECT_DOUBLE_EQ(auckland.info().t1_us, 166.220);

  const FakeBackend guadalupe = backend::make_guadalupe();
  EXPECT_EQ(guadalupe.num_qubits(), 16u);
  EXPECT_DOUBLE_EQ(guadalupe.info().readout_ns, 7111.111);

  EXPECT_EQ(backend::make_backend("ibmq_toronto").name(), "ibmq_toronto");
  EXPECT_THROW(backend::make_backend("ibmq_nowhere"), Error);
}

TEST(Presets, SeededVariationIsDeterministic) {
  const FakeBackend a = backend::make_toronto();
  const FakeBackend b = backend::make_toronto();
  for (std::size_t q = 0; q < 27; ++q) {
    EXPECT_DOUBLE_EQ(a.noise_model().qubits[q].freq_drift_ghz,
                     b.noise_model().qubits[q].freq_drift_ghz);
    EXPECT_DOUBLE_EQ(a.calibrations().qubit(q).drive_rate_ghz,
                     b.calibrations().qubit(q).drive_rate_ghz);
  }
}

TEST(Presets, NoiseDerivedFromTableOne) {
  const FakeBackend t = backend::make_toronto();
  // In-circuit 2q error = 1.5x the Table I RB number (crosstalk inflation).
  EXPECT_DOUBLE_EQ(t.noise_model().dep_per_2q_block, 1.5 * 9.677e-3);
  EXPECT_DOUBLE_EQ(t.noise_model().dep_per_1q_pulse, 2.774e-4);
  for (std::size_t q = 0; q < t.num_qubits(); ++q) {
    const auto& qn = t.noise_model().qubits[q];
    EXPECT_GT(qn.t1_us, 50.0);
    EXPECT_LE(qn.t2_us, 2.0 * qn.t1_us + 1e-9);
    EXPECT_NEAR(qn.readout.p1_given_0, 0.8 * 0.031, 1e-12);
    EXPECT_NEAR(qn.readout.p0_given_1, 1.2 * 0.031, 1e-12);
  }
}

TEST(Backend, GateDurations) {
  const FakeBackend t = backend::make_toronto();
  const int sx = t.gate_duration_dt(qc::Op{qc::GateKind::SX, {0}, {}});
  EXPECT_EQ(sx, 160);
  EXPECT_EQ(t.gate_duration_dt(qc::Op{qc::GateKind::RZ, {0}, {qc::Param::constant(1.0)}}), 0);
  const int cx = t.gate_duration_dt(qc::Op{qc::GateKind::CX, {0, 1}, {}});
  EXPECT_EQ(cx, 2 * 704 + 3 * 160);
  // RX lowers to two SX pulses: the paper's 320dt gate-level mixer cost.
  EXPECT_EQ(t.gate_duration_dt(qc::Op{qc::GateKind::RX, {0}, {qc::Param::constant(0.5)}}),
            320);
  // Readout length from Table I, rounded to the granularity.
  EXPECT_NEAR(t.readout_duration_dt() * pulse::kDtNs, 5962.667, 16 * pulse::kDtNs);
}

TEST(Backend, SubsystemWiring) {
  const FakeBackend t = backend::make_toronto();
  const auto sub = t.subsystem({0, 1}, /*with_coherent_noise=*/false);
  EXPECT_EQ(sub.system.num_qubits(), 2u);
  // Drive channels remapped, CR channels in both directions.
  EXPECT_TRUE(sub.remap.count(pulse::Channel::drive(0)) == 1);
  EXPECT_TRUE(sub.remap.count(pulse::Channel::drive(1)) == 1);
  int cr_channels = 0;
  for (const auto& [phys, local] : sub.remap)
    if (phys.type == pulse::ChannelType::Control) ++cr_channels;
  EXPECT_EQ(cr_channels, 2);
}

TEST(Backend, SubsystemCxIsAccurateWithoutNoise) {
  const FakeBackend t = backend::make_toronto();
  const auto sub = t.subsystem({1, 4}, false);
  const pulse::Schedule phys = t.calibrations().cx(1, 4);
  const pulse::Schedule local = FakeBackend::remap_schedule(phys, sub.remap);
  const psim::PulseSimulator sim(std::move(const_cast<psim::PulseSystem&>(sub.system)));
  la::CMat u = sim.unitary(local);
  // Undo the virtual-Z frame on the control.
  const double shift = pulse::CalibrationSet::drive_phase_shift(phys, 1);
  u = la::kron(la::CMat::identity(2), qc::gate_matrix(qc::GateKind::RZ, {-shift})) * u;
  EXPECT_TRUE(u.is_unitary(1e-6));
  // |<CX, U>| / 4 close to 1 (global-phase-insensitive fidelity).
  const la::CMat cx = qc::gate_matrix(qc::GateKind::CX);
  const std::complex<double> tr = (cx.dagger() * u).trace();
  EXPECT_GT(std::abs(tr) / 4.0, 0.999);
}

TEST(Backend, ZzCrosstalkSymmetricLookup) {
  const FakeBackend t = backend::make_toronto();
  EXPECT_DOUBLE_EQ(t.zz_crosstalk(0, 1), t.zz_crosstalk(1, 0));
  EXPECT_DOUBLE_EQ(t.zz_crosstalk(0, 26), 0.0);  // uncoupled pair
}
