// End-to-end integration tests: the full machine-in-loop pipeline (model
// build -> transpile -> lower -> pulse-simulate -> trajectory sampling ->
// mitigation -> COBYLA) on reduced budgets, checking cross-module contracts
// rather than absolute performance.
#include <gtest/gtest.h>

#include "backend/presets.hpp"
#include "core/qaoa.hpp"
#include "core/workflow.hpp"
#include "graph/instances.hpp"

using namespace hgp;

namespace {

core::RunConfig small_budget() {
  core::RunConfig cfg;
  cfg.shots = 256;
  cfg.max_evaluations = 12;
  return cfg;
}

}  // namespace

TEST(Integration, GateLevelRunProducesSaneResult) {
  const auto inst = graph::paper_task1();
  const auto dev = backend::make_toronto();
  const auto res = core::run_qaoa(inst, dev, core::ModelKind::GateLevel, small_budget());
  EXPECT_GT(res.ar, 0.30);  // far above nothing...
  EXPECT_LT(res.ar, 1.0);   // ...and physical
  EXPECT_EQ(res.num_parameters, 2u);
  EXPECT_EQ(res.mixer_layer_duration_dt, 320);
  EXPECT_GT(res.makespan_dt, 1000);
  EXPECT_GE(res.optimizer.evaluations, 3);
}

TEST(Integration, HybridRunProducesSaneResult) {
  const auto inst = graph::paper_task1();
  const auto dev = backend::make_toronto();
  const auto res = core::run_qaoa(inst, dev, core::ModelKind::Hybrid, small_budget());
  EXPECT_GT(res.ar, 0.30);
  EXPECT_LT(res.ar, 1.0);
  EXPECT_EQ(res.num_parameters, 19u);
}

TEST(Integration, MitigationLaddersRunEndToEnd) {
  const auto inst = graph::paper_task2();
  const auto dev = backend::make_auckland();
  core::RunConfig cfg = small_budget();
  cfg.gate_optimization = true;
  cfg.m3 = true;
  const auto m3 = core::run_qaoa(inst, dev, core::ModelKind::GateLevel, cfg);
  EXPECT_GT(m3.ar, 0.30);
  cfg.cvar = true;
  const auto cvar = core::run_qaoa(inst, dev, core::ModelKind::GateLevel, cfg);
  // CVaR(0.3) of the same trained family is a tail metric: it reads higher
  // than the mean-based AR in any non-degenerate distribution.
  EXPECT_GT(cvar.ar, m3.ar - 0.05);
}

TEST(Integration, CvarMetricExceedsMeanMetricOnTrainedModel) {
  const auto inst = graph::paper_task1();
  const auto dev = backend::make_toronto();
  core::RunConfig mean_cfg = small_budget();
  const auto mean_run = core::run_qaoa(inst, dev, core::ModelKind::GateLevel, mean_cfg);
  core::RunConfig cvar_cfg = mean_cfg;
  cvar_cfg.cvar = true;
  const auto cvar_run = core::run_qaoa(inst, dev, core::ModelKind::GateLevel, cvar_cfg);
  EXPECT_GT(cvar_run.ar, mean_run.ar);
}

TEST(Integration, NoiselessTrainingApproachesIdealOptimum) {
  // With all noise removed the gate-level model should train close to the
  // ideal p=1 QAOA value.
  const auto inst = graph::paper_task1();
  backend::FakeBackend dev = backend::make_toronto();
  for (auto& q : dev.mutable_noise_model().qubits) {
    q.t1_us = 1e9;
    q.t2_us = 1e9;
    q.readout = {};
    q.freq_drift_ghz = 0.0;
    q.drive_gain = 1.0;
  }
  dev.mutable_noise_model().dep_per_1q_pulse = 0.0;
  dev.mutable_noise_model().dep_per_2q_block = 0.0;
  // (cx phase defects remain: they are part of the device's calibration.)

  core::RunConfig cfg;
  cfg.shots = 1024;
  cfg.max_evaluations = 40;
  const auto res = core::run_qaoa(inst, dev, core::ModelKind::GateLevel, cfg);
  // Ideal p=1 for K3,3 reaches ~0.75; allow noise-free-but-miscalibrated
  // slack.
  EXPECT_GT(res.ar, 0.60);
}

TEST(Integration, PulseLevelModelRuns) {
  const auto inst = graph::paper_task1();
  const auto dev = backend::make_toronto();
  core::RunConfig cfg = small_budget();
  cfg.max_evaluations = 8;  // just the pipeline, not convergence
  const auto res = core::run_qaoa(inst, dev, core::ModelKind::PulseLevel, cfg);
  EXPECT_GT(res.num_parameters, 60u);
  EXPECT_GT(res.ar, 0.25);
}

TEST(Integration, DurationSearchShrinksMixer) {
  const auto inst = graph::paper_task1();
  const auto dev = backend::make_toronto();
  core::RunConfig cfg = small_budget();
  // Generous keep fraction: with tiny budgets scores are noisy; we check
  // mechanics (granularity, trace shape), not the paper's 128dt here.
  const auto outcome = core::optimize_mixer_duration(inst, dev, cfg, 0.5);
  EXPECT_EQ(outcome.search.best_duration % 32, 0);
  EXPECT_LE(outcome.search.best_duration, 320);
  EXPECT_GE(outcome.search.trace.size(), 2u);
  EXPECT_EQ(outcome.final_run.mixer_layer_duration_dt, outcome.search.best_duration);
}

TEST(Integration, DifferentBackendsGiveDifferentResults) {
  const auto inst = graph::paper_task1();
  core::RunConfig cfg = small_budget();
  const auto toronto = core::run_qaoa(inst, backend::make_toronto(),
                                      core::ModelKind::GateLevel, cfg);
  const auto auckland = core::run_qaoa(inst, backend::make_auckland(),
                                       core::ModelKind::GateLevel, cfg);
  // Different calibration tables -> different trained outcomes.
  EXPECT_NE(toronto.final_cost, auckland.final_cost);
}

TEST(Integration, SeedsMakeRunsReproducible) {
  const auto inst = graph::paper_task1();
  const auto dev = backend::make_toronto();
  core::RunConfig cfg = small_budget();
  cfg.seed = 77;
  const auto a = core::run_qaoa(inst, dev, core::ModelKind::Hybrid, cfg);
  const auto b = core::run_qaoa(inst, dev, core::ModelKind::Hybrid, cfg);
  EXPECT_DOUBLE_EQ(a.ar, b.ar);
  EXPECT_EQ(a.optimizer.x, b.optimizer.x);
}

TEST(Integration, EightQubitTaskRuns) {
  const auto inst = graph::paper_task3();
  const auto dev = backend::make_montreal();
  core::RunConfig cfg = small_budget();
  cfg.max_evaluations = 6;
  const auto res = core::run_qaoa(inst, dev, core::ModelKind::Hybrid, cfg);
  EXPECT_GT(res.ar, 0.3);
  EXPECT_EQ(res.num_parameters, 1u + 3u * 8u);
}
