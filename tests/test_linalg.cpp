#include <gtest/gtest.h>

#include <cmath>

#include "common/rng.hpp"
#include "linalg/eig.hpp"
#include "linalg/expm.hpp"
#include "linalg/matrix.hpp"
#include "linalg/pauli.hpp"
#include "linalg/solve.hpp"
#include "linalg/types.hpp"
#include "linalg/vec.hpp"

using namespace hgp;
using la::cxd;
using la::CMat;
using la::CVec;

namespace {
CMat random_hermitian(std::size_t n, Rng& rng) {
  CMat a(n, n);
  for (std::size_t i = 0; i < n; ++i) {
    a(i, i) = rng.normal();
    for (std::size_t j = i + 1; j < n; ++j) {
      a(i, j) = cxd{rng.normal(), rng.normal()};
      a(j, i) = std::conj(a(i, j));
    }
  }
  return a;
}
}  // namespace

TEST(Matrix, IdentityAndMultiply) {
  const CMat eye = CMat::identity(3);
  CMat a(3, 3);
  for (std::size_t i = 0; i < 3; ++i)
    for (std::size_t j = 0; j < 3; ++j) a(i, j) = cxd{double(i), double(j)};
  EXPECT_NEAR((eye * a).max_abs_diff(a), 0.0, 1e-15);
  EXPECT_NEAR((a * eye).max_abs_diff(a), 0.0, 1e-15);
}

TEST(Matrix, DaggerIsConjugateTranspose) {
  CMat a{{cxd{1, 2}, cxd{3, -1}}, {cxd{0, 1}, cxd{-2, 0}}};
  const CMat d = a.dagger();
  EXPECT_EQ(d(0, 1), std::conj(a(1, 0)));
  EXPECT_EQ(d(1, 0), std::conj(a(0, 1)));
}

TEST(Matrix, KronDimensionsAndValues) {
  const CMat x = la::pauli_matrix(la::Pauli::X);
  const CMat z = la::pauli_matrix(la::Pauli::Z);
  const CMat k = la::kron(z, x);
  ASSERT_EQ(k.rows(), 4u);
  // kron(Z, X): upper-left block X, lower-right block -X.
  EXPECT_EQ(k(0, 1), cxd(1, 0));
  EXPECT_EQ(k(2, 3), cxd(-1, 0));
}

TEST(Matrix, UnitaryAndHermitianChecks) {
  EXPECT_TRUE(la::pauli_matrix(la::Pauli::Y).is_unitary());
  EXPECT_TRUE(la::pauli_matrix(la::Pauli::Y).is_hermitian());
  CMat a{{1, 1}, {0, 1}};
  EXPECT_FALSE(a.is_unitary());
}

TEST(Vec, DotNormFidelity) {
  CVec a = {cxd{1, 0}, cxd{0, 1}};
  // (1, i) and (i, 1) are orthogonal under the conjugated inner product.
  CVec b = {cxd{0, 1}, cxd{1, 0}};
  EXPECT_NEAR(la::norm(a), std::sqrt(2.0), 1e-12);
  EXPECT_NEAR(std::abs(la::dot(a, b)), 0.0, 1e-12);
  la::normalize(a);
  EXPECT_NEAR(la::norm(a), 1.0, 1e-12);
  // A global phase does not change fidelity.
  CVec c = a;
  for (cxd& x : c) x *= std::polar(1.0, 0.77);
  EXPECT_NEAR(la::fidelity(a, c), 1.0, 1e-12);
}

TEST(Vec, PhaseInsensitiveDiff) {
  CVec a = {cxd{1, 0}, cxd{0.5, 0.25}};
  CVec b = a;
  const cxd phase = std::polar(1.0, 1.234);
  for (cxd& x : b) x *= phase;
  EXPECT_GT(la::max_abs_diff(a, b), 0.1);
  EXPECT_NEAR(la::max_abs_diff_up_to_phase(a, b), 0.0, 1e-12);
}

class EighSweep : public ::testing::TestWithParam<int> {};

TEST_P(EighSweep, ReconstructsMatrix) {
  Rng rng(42 + static_cast<std::uint64_t>(GetParam()));
  const std::size_t n = static_cast<std::size_t>(GetParam());
  const CMat a = random_hermitian(n, rng);
  const la::EigResult eg = la::eigh(a);
  ASSERT_EQ(eg.values.size(), n);
  // Ascending eigenvalues.
  for (std::size_t i = 1; i < n; ++i) EXPECT_LE(eg.values[i - 1], eg.values[i] + 1e-12);
  // V is unitary.
  EXPECT_TRUE(eg.vectors.is_unitary(1e-8));
  // A = V D V†.
  CMat d(n, n);
  for (std::size_t i = 0; i < n; ++i) d(i, i) = eg.values[i];
  const CMat rec = eg.vectors * d * eg.vectors.dagger();
  EXPECT_LT(rec.max_abs_diff(a), 1e-8);
}

INSTANTIATE_TEST_SUITE_P(Dims, EighSweep, ::testing::Values(1, 2, 3, 4, 6, 8, 12, 16));

TEST(Eigh, DegenerateSpectrum) {
  // Z ⊗ I has doubly degenerate eigenvalues ±1.
  const CMat a = la::kron(la::pauli_matrix(la::Pauli::Z), CMat::identity(2));
  const la::EigResult eg = la::eigh(a);
  EXPECT_NEAR(eg.values[0], -1.0, 1e-9);
  EXPECT_NEAR(eg.values[1], -1.0, 1e-9);
  EXPECT_NEAR(eg.values[2], 1.0, 1e-9);
  EXPECT_NEAR(eg.values[3], 1.0, 1e-9);
  EXPECT_TRUE(eg.vectors.is_unitary(1e-8));
}

TEST(Expm, MatchesEigenExponentialForHermitian) {
  Rng rng(7);
  const CMat h = random_hermitian(5, rng);
  // expm(-iHt) vs expm_ih(H, t)
  const double t = 0.37;
  const CMat a = h * cxd{0.0, -t};
  const CMat e1 = la::expm(a);
  const CMat e2 = la::expm_ih(h, t);
  EXPECT_LT(e1.max_abs_diff(e2), 1e-9);
  EXPECT_TRUE(e1.is_unitary(1e-9));
}

TEST(Expm, NilpotentExactly) {
  CMat n{{0, 1}, {0, 0}};
  const CMat e = la::expm(n);
  EXPECT_NEAR(std::abs(e(0, 0) - cxd(1, 0)), 0.0, 1e-12);
  EXPECT_NEAR(std::abs(e(0, 1) - cxd(1, 0)), 0.0, 1e-12);
  EXPECT_NEAR(std::abs(e(1, 1) - cxd(1, 0)), 0.0, 1e-12);
}

TEST(Expm, LargeNormScaling) {
  // exp(-i * 50 * X) should still be unitary and match the closed form.
  const CMat x = la::pauli_matrix(la::Pauli::X);
  const CMat e = la::expm(x * cxd{0.0, -50.0});
  EXPECT_TRUE(e.is_unitary(1e-8));
  EXPECT_NEAR(e(0, 0).real(), std::cos(50.0), 1e-7);
}

TEST(LuSolve, RecoversSolution) {
  Rng rng(3);
  const std::size_t n = 8;
  CMat a(n, n);
  for (std::size_t i = 0; i < n; ++i)
    for (std::size_t j = 0; j < n; ++j)
      a(i, j) = cxd{rng.normal(), rng.normal()} + (i == j ? cxd{4.0, 0.0} : cxd{0, 0});
  CVec x_true(n);
  for (std::size_t i = 0; i < n; ++i) x_true[i] = cxd{rng.normal(), rng.normal()};
  const CVec b = a * x_true;
  const CVec x = la::lu_solve(a, b);
  EXPECT_LT(la::max_abs_diff(x, x_true), 1e-9);
}

TEST(Gmres, SolvesDiagonallyDominantSystem) {
  Rng rng(11);
  const std::size_t n = 40;
  std::vector<std::vector<double>> a(n, std::vector<double>(n));
  for (std::size_t i = 0; i < n; ++i) {
    for (std::size_t j = 0; j < n; ++j) a[i][j] = 0.1 * rng.normal();
    a[i][i] += 3.0;
  }
  std::vector<double> x_true(n);
  for (double& v : x_true) v = rng.normal();
  auto matvec = [&](const std::vector<double>& v) {
    std::vector<double> out(n, 0.0);
    for (std::size_t i = 0; i < n; ++i)
      for (std::size_t j = 0; j < n; ++j) out[i] += a[i][j] * v[j];
    return out;
  };
  std::vector<double> b = matvec(x_true);
  const la::GmresResult r = la::gmres(matvec, b, 400, 1e-12, 30);
  EXPECT_TRUE(r.converged);
  double err = 0.0;
  for (std::size_t i = 0; i < n; ++i) err = std::max(err, std::abs(r.x[i] - x_true[i]));
  EXPECT_LT(err, 1e-8);
}

TEST(Pauli, ParseRoundTrip) {
  const la::PauliString p = la::PauliString::parse("ZIXY");
  EXPECT_EQ(p.num_qubits(), 4u);
  EXPECT_EQ(p.str(), "ZIXY");
  EXPECT_EQ(p.op(0), la::Pauli::Y);  // rightmost char = qubit 0
  EXPECT_EQ(p.op(3), la::Pauli::Z);
  EXPECT_EQ(p.weight(), 3u);
}

TEST(Pauli, ApplyMatchesMatrix) {
  Rng rng(5);
  for (const char* s : {"X", "Y", "Z", "XY", "ZZ", "YXZ", "IZY"}) {
    const la::PauliString p = la::PauliString::parse(s);
    const std::size_t dim = std::size_t{1} << p.num_qubits();
    CVec v(dim);
    for (cxd& x : v) x = cxd{rng.normal(), rng.normal()};
    const CVec via_apply = p.apply(v);
    const CVec via_matrix = p.matrix() * v;
    EXPECT_LT(la::max_abs_diff(via_apply, via_matrix), 1e-12) << s;
  }
}

TEST(Pauli, DiagonalEnergies) {
  la::PauliSum h(2);
  h.add(0.5, "ZZ");
  h.add(-1.0, "IZ");  // Z on qubit 0
  EXPECT_TRUE(h.is_diagonal());
  EXPECT_NEAR(h.energy(0b00), 0.5 - 1.0, 1e-12);
  EXPECT_NEAR(h.energy(0b01), -0.5 + 1.0, 1e-12);  // qubit0=1
  EXPECT_NEAR(h.energy(0b11), 0.5 + 1.0, 1e-12);
  EXPECT_NEAR(h.energy(0b10), -0.5 - 1.0, 1e-12);  // qubit1=1: ZZ=-1, Z0=+1
  EXPECT_NEAR(h.min_energy(), -1.5, 1e-12);
  EXPECT_NEAR(h.max_energy(), 1.5, 1e-12);
}

TEST(Pauli, ExpectationOnBellState) {
  // |Φ+> = (|00> + |11>)/√2: <XX> = <ZZ> = 1, <ZI> = 0.
  CVec bell = {cxd{1 / std::sqrt(2.0), 0}, 0, 0, cxd{1 / std::sqrt(2.0), 0}};
  EXPECT_NEAR(la::PauliString::parse("XX").expectation(bell), 1.0, 1e-12);
  EXPECT_NEAR(la::PauliString::parse("ZZ").expectation(bell), 1.0, 1e-12);
  EXPECT_NEAR(la::PauliString::parse("ZI").expectation(bell), 0.0, 1e-12);
  EXPECT_NEAR(la::PauliString::parse("YY").expectation(bell), -1.0, 1e-12);
}

TEST(Rng, DeterministicAndUniform) {
  Rng a(123), b(123);
  for (int i = 0; i < 16; ++i) EXPECT_EQ(a.next_u64(), b.next_u64());
  Rng c(9);
  double mean = 0.0;
  const int n = 20000;
  for (int i = 0; i < n; ++i) mean += c.uniform();
  mean /= n;
  EXPECT_NEAR(mean, 0.5, 0.02);
}

TEST(Rng, DiscreteRespectsWeights) {
  Rng rng(77);
  std::vector<double> w = {1.0, 0.0, 3.0};
  std::vector<int> hits(3, 0);
  for (int i = 0; i < 8000; ++i) ++hits[rng.discrete(w)];
  EXPECT_EQ(hits[1], 0);
  EXPECT_NEAR(double(hits[2]) / hits[0], 3.0, 0.4);
}
