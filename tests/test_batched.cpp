// The lane-batched trajectory engine: scalar-vs-batched count bit-identity
// for arbitrary lane counts, per-lane Kraus-branch parity against the scalar
// statevector, broadcast-kernel parity, lane/thread determinism interaction,
// and the sorted terminal sampler.
#include <gtest/gtest.h>

#include <cmath>

#include "backend/presets.hpp"
#include "common/rng.hpp"
#include "core/executor.hpp"
#include "sim/batched_statevector.hpp"
#include "sim/statevector.hpp"

using namespace hgp;
using core::ExecOp;
using core::Executor;
using core::ExecutorOptions;
using core::Program;

namespace {

const backend::FakeBackend& toronto() {
  static const backend::FakeBackend dev = backend::make_toronto();
  return dev;
}

/// n-qubit GHZ-style ladder in the native basis (RZ/SX/RZ frame per qubit
/// plus a CX chain) — enough structure to exercise virtual folding, dense
/// blocks, relaxation, and depolarizing charges.
Program ladder_program(std::size_t n) {
  // A simple path through ibmq_toronto's heavy-hex coupling map, so every CX
  // pair has a CR calibration.
  static const std::vector<std::size_t> chain = {6, 7, 4, 1, 2, 3, 5, 8};
  Program prog;
  for (std::size_t i = 0; i < n; ++i) {
    const std::size_t q = chain[i];
    prog.ops.push_back(
        ExecOp::from_gate(qc::Op{qc::GateKind::RZ, {q}, {qc::Param::constant(0.3 + 0.05 * i)}}));
    prog.ops.push_back(ExecOp::from_gate(qc::Op{qc::GateKind::SX, {q}, {}}));
    prog.ops.push_back(
        ExecOp::from_gate(qc::Op{qc::GateKind::RZ, {q}, {qc::Param::constant(-0.2)}}));
  }
  for (std::size_t i = 0; i + 1 < n; ++i)
    prog.ops.push_back(
        ExecOp::from_gate(qc::Op{qc::GateKind::CX, {chain[i], chain[i + 1]}, {}}));
  for (std::size_t i = 0; i < n; ++i) prog.measure_qubits.push_back(chain[i]);
  return prog;
}

sim::Counts run_with(const Program& prog, std::size_t lanes, std::size_t threads,
                     std::size_t shots, std::uint64_t seed,
                     std::shared_ptr<serve::BlockCache> cache = nullptr,
                     bool noise = true) {
  ExecutorOptions opts;
  opts.noise = noise;
  opts.shot_batch_lanes = lanes;
  opts.num_threads = threads;
  opts.block_cache = std::move(cache);
  Executor ex(toronto(), opts);
  Rng rng(seed);
  return ex.run(prog, shots, rng);
}

std::size_t total_shots(const sim::Counts& counts) {
  std::size_t t = 0;
  for (const auto& [bits, c] : counts) t += c;
  return t;
}

/// 2x2 real rotation by theta — a dense 1q operator whose angle can vary per
/// lane so lanes genuinely diverge in magnitude, not just phase.
la::CMat rotation(double theta) {
  la::CMat r(2, 2);
  r(0, 0) = std::cos(theta);
  r(0, 1) = -std::sin(theta);
  r(1, 0) = std::sin(theta);
  r(1, 1) = std::cos(theta);
  return r;
}

}  // namespace

// ---- engine-level bit-identity ---------------------------------------------

TEST(BatchedTrajectories, CountsBitIdenticalToScalarAcrossLaneCounts) {
  // 600 shots span two full 256-shot thread batches plus a partial tail, so
  // lane counts that do not divide the batch exercise tail lane groups too.
  const Program prog = ladder_program(5);
  auto cache = std::make_shared<serve::BlockCache>(256);
  const sim::Counts reference = run_with(prog, 1, 1, 600, 123, cache);
  EXPECT_EQ(total_shots(reference), 600u);
  for (std::size_t lanes : {4u, 7u, 32u}) {
    const sim::Counts counts = run_with(prog, lanes, 1, 600, 123, cache);
    EXPECT_EQ(counts, reference) << "lanes=" << lanes;
  }
}

TEST(BatchedTrajectories, NoiselessCountsUnaffectedByLanes) {
  const Program prog = ladder_program(4);
  const sim::Counts reference = run_with(prog, 1, 1, 400, 9, nullptr, false);
  const sim::Counts batched = run_with(prog, 8, 1, 400, 9, nullptr, false);
  EXPECT_EQ(batched, reference);
}

TEST(BatchedTrajectories, ZeroStochasticNoiseSharesOneSortedSamplingPass) {
  // Strip every stochastic channel so no lane ever diverges: the batched
  // engine then samples every lane through the shared sorted pass, and must
  // still match the scalar per-shot scans exactly.
  backend::FakeBackend dev = backend::make_toronto();
  for (auto& q : dev.mutable_noise_model().qubits) {
    q.t1_us = 1e9;
    q.t2_us = 1e9;
    q.readout = {};
    q.freq_drift_ghz = 0.0;
  }
  dev.mutable_noise_model().dep_per_1q_pulse = 0.0;
  dev.mutable_noise_model().dep_per_2q_block = 0.0;

  const Program prog = ladder_program(4);
  auto run_lanes = [&](std::size_t lanes) {
    ExecutorOptions opts;
    opts.shot_batch_lanes = lanes;
    opts.num_threads = 1;
    Executor ex(dev, opts);
    Rng rng(41);
    return ex.run(prog, 500, rng);
  };
  const sim::Counts reference = run_lanes(1);
  EXPECT_EQ(run_lanes(8), reference);
  EXPECT_EQ(run_lanes(16), reference);
}

TEST(BatchedTrajectories, LanesAndThreadsAreIndependentOfCounts) {
  // The shot_batch_lanes knob composes with the threaded batch grid: any
  // (threads, lanes) pair must reproduce the single-threaded scalar counts.
  const Program prog = ladder_program(4);
  auto cache = std::make_shared<serve::BlockCache>(256);
  const sim::Counts reference = run_with(prog, 1, 1, 1500, 77, cache);
  for (std::size_t threads : {2u, 4u}) {
    for (std::size_t lanes : {1u, 7u, 16u}) {
      const sim::Counts counts = run_with(prog, lanes, threads, 1500, 77, cache);
      EXPECT_EQ(counts, reference) << "threads=" << threads << " lanes=" << lanes;
    }
  }
}

TEST(BatchedTrajectories, CallerRngAdvanceIsShotAndLaneIndependent) {
  const Program prog = ladder_program(3);
  Rng r1(3), r2(3);
  {
    ExecutorOptions opts;
    opts.shot_batch_lanes = 1;
    Executor ex(toronto(), opts);
    ex.run(prog, 100, r1);
  }
  {
    ExecutorOptions opts;
    opts.shot_batch_lanes = 16;
    Executor ex(toronto(), opts);
    ex.run(prog, 2000, r2);
  }
  EXPECT_EQ(r1.next_u64(), r2.next_u64());
}

// ---- kernel-level parity ----------------------------------------------------

TEST(BatchedKernels, BroadcastMatrixMatchesScalarPerLane) {
  constexpr std::size_t kLanes = 5;
  sim::BatchedStatevector bsv(3, kLanes);
  std::vector<sim::Statevector> ref(kLanes, sim::Statevector(3));

  // Diverge the lanes first with per-lane rotations, then broadcast the full
  // kernel zoo: dense 1q, diagonal 1q, anti-diagonal 1q, permutation 2q,
  // diagonal 2q, dense 2q, generic 3q.
  for (std::size_t l = 0; l < kLanes; ++l) {
    const la::CMat r = rotation(0.2 + 0.17 * static_cast<double>(l));
    bsv.apply_matrix_lane(r, 0, l);
    ref[l].apply_matrix(r, {0});
    bsv.apply_matrix_lane(rotation(0.4 * static_cast<double>(l)), 2, l);
    ref[l].apply_matrix(rotation(0.4 * static_cast<double>(l)), {2});
  }
  const la::CMat sx = qc::gate_matrix(qc::GateKind::SX);
  const la::CMat rz = qc::gate_matrix(qc::GateKind::RZ, {0.7});
  const la::CMat x = qc::gate_matrix(qc::GateKind::X);
  const la::CMat cx = qc::gate_matrix(qc::GateKind::CX);
  const la::CMat rzz = qc::gate_matrix(qc::GateKind::RZZ, {0.31});
  const la::CMat dense2 = la::kron(sx, rotation(0.9));
  const la::CMat generic3 = la::kron(rz, la::kron(sx, rotation(0.5)));

  auto broadcast = [&](const la::CMat& u, const std::vector<std::size_t>& qs) {
    bsv.apply_matrix(u, qs);
    for (auto& sv : ref) sv.apply_matrix(u, qs);
  };
  broadcast(sx, {1});
  broadcast(rz, {0});
  broadcast(x, {2});
  broadcast(cx, {0, 2});
  broadcast(rzz, {1, 2});
  broadcast(dense2, {2, 0});
  broadcast(generic3, {0, 1, 2});

  for (std::size_t l = 0; l < kLanes; ++l)
    for (std::uint64_t i = 0; i < 8; ++i) {
      const la::cxd got = bsv.amplitude(i, l);
      const la::cxd want = ref[l].data()[i];
      EXPECT_NEAR(got.real(), want.real(), 1e-12) << "lane " << l << " i " << i;
      EXPECT_NEAR(got.imag(), want.imag(), 1e-12) << "lane " << l << " i " << i;
    }
}

TEST(BatchedKernels, LaneMaskedKrausBranchesMatchPerShotReference) {
  constexpr std::size_t kLanes = 4;
  constexpr std::size_t kQ = 1;
  sim::BatchedStatevector bsv(3, kLanes);
  std::vector<sim::Statevector> ref(kLanes, sim::Statevector(3));

  for (std::size_t l = 0; l < kLanes; ++l) {
    const la::CMat r = rotation(0.3 + 0.25 * static_cast<double>(l));
    bsv.apply_matrix_lane(r, kQ, l);
    ref[l].apply_matrix(r, {kQ});
    bsv.apply_matrix_lane(rotation(0.6), 0, l);
    ref[l].apply_matrix(rotation(0.6), {0});
  }

  // Per-lane |1> masses against a direct scalar accumulation.
  double m1[kLanes];
  bsv.masses_one(kQ, m1);
  const std::uint64_t bit = std::uint64_t{1} << kQ;
  for (std::size_t l = 0; l < kLanes; ++l) {
    double want = 0.0;
    for (std::uint64_t i = 0; i < 8; ++i)
      if (i & bit) want += std::norm(ref[l].data()[i]);
    EXPECT_NEAR(m1[l], want, 1e-12) << "lane " << l;
  }

  // Mixed per-lane branches: lane 0 jumps, lane 1 damps, lane 2 damps with a
  // dephasing flip, lane 3 keeps amplitude but flips. The scalar reference
  // applies the same quantum-jump updates the executor's scalar kernel does.
  const double damp = 0.8;
  const double take[kLanes] = {1.0, 0.0, 0.0, 0.0};
  const double scale1[kLanes] = {0.0, damp, -damp, -1.0};
  bsv.damp_or_jump(kQ, take, scale1);
  for (std::size_t l = 0; l < kLanes; ++l) {
    la::CVec& amp = ref[l].data();
    for (std::uint64_t i = 0; i < 8; ++i) {
      if (!(i & bit)) continue;
      if (take[l] == 1.0) {
        amp[i ^ bit] = amp[i];
        amp[i] = la::cxd{0.0, 0.0};
      } else {
        amp[i] *= scale1[l];
      }
    }
  }
  for (std::size_t l = 0; l < kLanes; ++l)
    for (std::uint64_t i = 0; i < 8; ++i) {
      const la::cxd got = bsv.amplitude(i, l);
      EXPECT_NEAR(got.real(), ref[l].data()[i].real(), 1e-12) << "lane " << l << " i " << i;
      EXPECT_NEAR(got.imag(), ref[l].data()[i].imag(), 1e-12) << "lane " << l << " i " << i;
    }

  // Fused mass + damp on another qubit: masses are the pre-damp masses and
  // the amplitudes end scaled, exactly as two separate passes would give.
  std::vector<sim::Statevector> before;
  before.reserve(kLanes);
  for (auto& sv : ref) before.push_back(sv);
  const double scales[kLanes] = {0.9, -0.9, 1.0, 0.5};
  double fused[kLanes];
  bsv.fused_mass_damp(0, scales, fused);
  const std::uint64_t bit0 = 1;
  for (std::size_t l = 0; l < kLanes; ++l) {
    double want_mass = 0.0;
    for (std::uint64_t i = 0; i < 8; ++i)
      if (i & bit0) want_mass += std::norm(before[l].data()[i]);
    EXPECT_NEAR(fused[l], want_mass, 1e-12) << "lane " << l;
    for (std::uint64_t i = 0; i < 8; ++i) {
      const la::cxd want =
          (i & bit0) ? before[l].data()[i] * scales[l] : before[l].data()[i];
      const la::cxd got = bsv.amplitude(i, l);
      EXPECT_NEAR(got.real(), want.real(), 1e-12) << "lane " << l << " i " << i;
      EXPECT_NEAR(got.imag(), want.imag(), 1e-12) << "lane " << l << " i " << i;
    }
  }
}

TEST(BatchedKernels, SampleLanesMatchesScalarScan) {
  constexpr std::size_t kLanes = 3;
  sim::BatchedStatevector bsv(2, kLanes);
  std::vector<sim::Statevector> ref(kLanes, sim::Statevector(2));
  for (std::size_t l = 0; l < kLanes; ++l) {
    const la::CMat r = rotation(0.5 + 0.4 * static_cast<double>(l));
    bsv.apply_matrix_lane(r, 0, l);
    ref[l].apply_matrix(r, {0});
    bsv.apply_matrix_lane(rotation(1.1), 1, l);
    ref[l].apply_matrix(rotation(1.1), {1});
  }
  const double x[kLanes] = {0.05, 0.5, 0.93};
  std::uint64_t got[kLanes];
  bsv.sample_lanes(x, nullptr, got);
  for (std::size_t l = 0; l < kLanes; ++l) {
    double acc = 0.0;
    std::uint64_t want = 3;
    for (std::uint64_t i = 0; i < 4; ++i) {
      acc += std::norm(ref[l].data()[i]);
      if (x[l] < acc) {
        want = i;
        break;
      }
    }
    EXPECT_EQ(got[l], want) << "lane " << l;
  }

  // The sorted shared pass must agree with scanning each draw against the
  // reference lane individually.
  const std::pair<double, std::size_t> draws[kLanes] = {{0.05, 2}, {0.5, 0}, {0.93, 1}};
  std::uint64_t sorted_out[kLanes];
  bsv.sample_sorted(1, draws, kLanes, sorted_out);
  for (std::size_t d = 0; d < kLanes; ++d) {
    double acc = 0.0;
    std::uint64_t want = 3;
    for (std::uint64_t i = 0; i < 4; ++i) {
      acc += std::norm(ref[1].data()[i]);
      if (draws[d].first < acc) {
        want = i;
        break;
      }
    }
    EXPECT_EQ(sorted_out[draws[d].second], want) << "draw " << d;
  }
}

// ---- grouped depolarizing charges -------------------------------------------

TEST(BatchedTrajectories, LargeDepolarizingRatesStayBitIdenticalToScalar) {
  // At production dep rates a lane group rarely charges more than one lane
  // per block, so the grouped Pauli pass's multi-lane path barely runs.
  // Crank the rates until most blocks charge several lanes at once: the
  // lane-grouped walk (one pass over the block's qubits, apply_pauli_lanes
  // for every multi-lane Pauli) must still reproduce the scalar per-shot
  // counts bit for bit.
  backend::FakeBackend dev = backend::make_toronto();
  dev.mutable_noise_model().dep_per_1q_pulse = 0.2;
  dev.mutable_noise_model().dep_per_2q_block = 0.35;

  const Program prog = ladder_program(5);
  auto run = [&](std::size_t lanes) {
    ExecutorOptions opts;
    opts.shot_batch_lanes = lanes;
    opts.num_threads = 1;
    Executor ex(dev, opts);
    Rng rng(321);
    return ex.run(prog, 600, rng);
  };
  const sim::Counts reference = run(1);
  EXPECT_EQ(total_shots(reference), 600u);
  for (std::size_t lanes : {4u, 7u, 32u})
    EXPECT_EQ(run(lanes), reference) << "lanes=" << lanes;
}
