// The serve subsystem: the shared compiled-block cache (LRU semantics,
// structure keys, calibration invalidation), the EvalService worker pool
// (nested batches, error propagation), and the determinism contract —
// batched runs are bit-identical for any worker count, and a SweepRunner
// grid matches sequential execution exactly.
#include <gtest/gtest.h>

#include <future>
#include <vector>

#include "backend/presets.hpp"
#include "common/error.hpp"
#include "common/rng.hpp"
#include "core/executor.hpp"
#include "core/qaoa.hpp"
#include "core/vqe.hpp"
#include "core/workflow.hpp"
#include "graph/instances.hpp"
#include "serve/block_cache.hpp"
#include "serve/eval_service.hpp"
#include "serve/job.hpp"
#include "serve/sweep.hpp"

using namespace hgp;
using core::ExecOp;
using core::Executor;
using core::ExecutorOptions;
using core::Program;

namespace {

const backend::FakeBackend& toronto() {
  static const backend::FakeBackend dev = backend::make_toronto();
  return dev;
}

Program bell_program() {
  Program prog;
  prog.ops.push_back(
      ExecOp::from_gate(qc::Op{qc::GateKind::RZ, {0}, {qc::Param::constant(la::kPi / 2)}}));
  prog.ops.push_back(ExecOp::from_gate(qc::Op{qc::GateKind::SX, {0}, {}}));
  prog.ops.push_back(
      ExecOp::from_gate(qc::Op{qc::GateKind::RZ, {0}, {qc::Param::constant(la::kPi / 2)}}));
  prog.ops.push_back(ExecOp::from_gate(qc::Op{qc::GateKind::CX, {0, 1}, {}}));
  prog.measure_qubits = {0, 1};
  return prog;
}

Program rzz_program(double theta) {
  Program prog;
  prog.ops.push_back(
      ExecOp::from_gate(qc::Op{qc::GateKind::RZZ, {0, 1}, {qc::Param::constant(theta)}}));
  prog.measure_qubits = {0, 1};
  return prog;
}

core::RunConfig tiny_config(const std::string& optimizer) {
  core::RunConfig cfg;
  cfg.shots = 64;
  cfg.max_evaluations = 6;
  cfg.optimizer = optimizer;
  cfg.executor_threads = 1;  // keep the nested shot loop serial in tests
  return cfg;
}

void expect_same_result(const core::RunResult& a, const core::RunResult& b) {
  EXPECT_EQ(a.optimizer.x, b.optimizer.x);
  EXPECT_EQ(a.optimizer.value, b.optimizer.value);
  EXPECT_EQ(a.optimizer.history, b.optimizer.history);
  EXPECT_EQ(a.optimizer.evaluations, b.optimizer.evaluations);
  EXPECT_EQ(a.ar, b.ar);
  EXPECT_EQ(a.final_cost, b.final_cost);
}

}  // namespace

TEST(BlockCache, LruEvictsOldestAndCountsStats) {
  serve::BlockCache cache(2);
  core::CompiledBlock block;
  EXPECT_EQ(cache.find("a"), nullptr);  // miss
  cache.insert("a", block);
  cache.insert("b", block);
  EXPECT_NE(cache.find("a"), nullptr);  // hit — "a" becomes most recent
  cache.insert("c", block);             // evicts the LRU entry "b"
  EXPECT_EQ(cache.find("b"), nullptr);
  EXPECT_NE(cache.find("a"), nullptr);
  EXPECT_NE(cache.find("c"), nullptr);

  const serve::BlockCache::Stats s = cache.stats();
  EXPECT_EQ(s.size, 2u);
  EXPECT_EQ(s.capacity, 2u);
  EXPECT_EQ(s.evictions, 1u);
  EXPECT_EQ(s.hits, 3u);
  EXPECT_EQ(s.misses, 2u);
  EXPECT_NEAR(s.hit_rate(), 0.6, 1e-12);
}

TEST(BlockCache, ExecutorHitsOnReboundBlocksAndSharesAcrossExecutors) {
  auto cache = std::make_shared<serve::BlockCache>(256);
  ExecutorOptions opts;
  opts.block_cache = cache;
  Executor ex(toronto(), opts);
  Rng rng(5);

  ex.run(bell_program(), 32, rng);
  const serve::BlockCache::Stats first = ex.cache_stats();
  EXPECT_EQ(first.hits, 0u);
  EXPECT_EQ(first.misses, 2u);  // SX(0) + CX(0,1); virtual RZ blocks bypass

  ex.run(bell_program(), 32, rng);  // second evaluation: everything hits
  EXPECT_EQ(ex.cache_stats().hits, 2u);
  EXPECT_EQ(ex.cache_stats().misses, 2u);

  Executor other(toronto(), opts);  // concurrent-run sharing: same cache
  other.run(bell_program(), 32, rng);
  EXPECT_EQ(cache->stats().hits, 4u);
  EXPECT_EQ(cache->stats().misses, 2u);
}

TEST(BlockCache, KeyDiscriminatesParametersAndCalibration) {
  auto cache = std::make_shared<serve::BlockCache>(256);
  ExecutorOptions opts;
  opts.block_cache = cache;
  const backend::FakeBackend dev = backend::make_toronto();
  Executor ex(dev, opts);
  Rng rng(7);

  ex.run(rzz_program(0.3), 16, rng);
  EXPECT_EQ(cache->stats().misses, 1u);
  ex.run(rzz_program(0.3), 16, rng);  // re-bound identical parameter: hit
  EXPECT_EQ(cache->stats().hits, 1u);
  ex.run(rzz_program(0.3000001), 16, rng);  // nearby angle: its own slot
  EXPECT_EQ(cache->stats().misses, 2u);

  // Recalibration: a drifted device must not replay blocks compiled for the
  // original calibration out of the same shared cache.
  backend::FakeBackend drifted = backend::make_toronto();
  drifted.mutable_noise_model().qubits[0].freq_drift_ghz += 1e-4;
  EXPECT_NE(dev.fingerprint(), drifted.fingerprint());
  Executor ex2(drifted, opts);
  const serve::BlockCache::Stats before = cache->stats();
  ex2.run(rzz_program(0.3), 16, rng);
  EXPECT_EQ(cache->stats().hits, before.hits);
  EXPECT_EQ(cache->stats().misses, before.misses + 1);
}

namespace {

/// A hybrid-model-style pulse step: frame knobs around one Gaussian play on
/// qubit 0's drive channel (what QaoaModel::mixer_pulse emits).
Program mixer_program(double amp) {
  pulse::Schedule s("mixer");
  const pulse::Channel d = pulse::Channel::drive(0);
  s.append(pulse::ShiftPhase{0.3, d});
  s.append(pulse::Play{pulse::PulseShape::gaussian(64, amp, 16.0), d});
  s.append(pulse::ShiftPhase{-0.3, d});
  Program prog;
  prog.ops.push_back(ExecOp::from_pulse({0}, s));
  prog.measure_qubits = {0};
  return prog;
}

}  // namespace

TEST(BlockCachePulse, ExecutorServesRepeatedPulseBlocksFromCache) {
  auto cache = std::make_shared<serve::BlockCache>(256);
  ExecutorOptions opts;
  opts.block_cache = cache;
  Executor ex(toronto(), opts);
  Rng rng(3);

  ex.run(mixer_program(0.2), 32, rng);
  serve::BlockCache::Stats s = ex.cache_stats();
  EXPECT_EQ(s.pulse_misses, 1u);
  EXPECT_EQ(s.pulse_hits, 0u);

  ex.run(mixer_program(0.2), 32, rng);  // repeated candidate angle: hit
  s = ex.cache_stats();
  EXPECT_EQ(s.pulse_hits, 1u);
  EXPECT_EQ(s.pulse_misses, 1u);
  // Totals fold both kinds; this program has no cacheable gate blocks.
  EXPECT_EQ(s.hits, s.gate_hits + s.pulse_hits);

  ex.run(mixer_program(0.2 + 1e-9), 32, rng);  // nearby amplitude: own slot
  EXPECT_EQ(ex.cache_stats().pulse_misses, 2u);
}

TEST(BlockCachePulse, CountsBitIdenticalCacheOnVsOff) {
  // A cached pulse block must replay the exact unitary a fresh compilation
  // produces: same seeds, warm shared cache vs. cold private caches.
  const Program prog = mixer_program(0.37);
  auto shared = std::make_shared<serve::BlockCache>(256);
  ExecutorOptions warm_opts;
  warm_opts.block_cache = shared;
  warm_opts.num_threads = 1;
  Executor warm(toronto(), warm_opts);
  Rng w1(11);
  const sim::Counts warm_first = warm.run(prog, 512, w1);
  const sim::Counts warm_second = warm.run(prog, 512, w1);  // all pulse hits
  EXPECT_GT(warm.cache_stats().pulse_hits, 0u);

  ExecutorOptions cold_opts;
  cold_opts.num_threads = 1;
  Rng c1(11);
  Executor cold_a(toronto(), cold_opts);  // private cache, compiles fresh
  const sim::Counts cold_first = cold_a.run(prog, 512, c1);
  Executor cold_b(toronto(), cold_opts);
  const sim::Counts cold_second = cold_b.run(prog, 512, c1);

  EXPECT_EQ(warm_first, cold_first);
  EXPECT_EQ(warm_second, cold_second);
}

TEST(BlockCachePulse, CalibrationChangeInvalidatesPulseEntries) {
  auto cache = std::make_shared<serve::BlockCache>(256);
  ExecutorOptions opts;
  opts.block_cache = cache;
  const backend::FakeBackend dev = backend::make_toronto();
  Executor ex(dev, opts);
  Rng rng(9);
  ex.run(mixer_program(0.2), 16, rng);
  ex.run(mixer_program(0.2), 16, rng);
  EXPECT_EQ(cache->stats().pulse_hits, 1u);

  backend::FakeBackend drifted = backend::make_toronto();
  drifted.mutable_noise_model().qubits[0].freq_drift_ghz += 1e-4;
  ASSERT_NE(dev.fingerprint(), drifted.fingerprint());
  Executor ex2(drifted, opts);
  const serve::BlockCache::Stats before = cache->stats();
  ex2.run(mixer_program(0.2), 16, rng);  // same schedule, drifted device
  EXPECT_EQ(cache->stats().pulse_hits, before.pulse_hits);
  EXPECT_EQ(cache->stats().pulse_misses, before.pulse_misses + 1);
}

TEST(BlockCachePulse, HybridQaoaRunHitsAcrossOptimizerIterations) {
  // The acceptance criterion of the unified pipeline: a hybrid QAOA run's
  // trainable pulse mixers are served from the cache when the optimizer
  // revisits candidate angles (at minimum the final best-point evaluation).
  auto cache = std::make_shared<serve::BlockCache>(4096);
  core::run_qaoa(graph::paper_task1(), toronto(), core::ModelKind::Hybrid,
                 tiny_config("cobyla"), nullptr, cache);
  const serve::BlockCache::Stats s = cache->stats();
  EXPECT_GT(s.pulse_hits, 0u);
  EXPECT_GT(s.gate_hits, 0u);
}

TEST(EvalService, NestedBatchesCompleteWithoutDeadlock) {
  // More jobs than workers, each dispatching its own candidate batches onto
  // the same pool — progress relies on the submitting thread helping drain.
  serve::EvalService svc(serve::EvalService::Options{2, 64});
  std::vector<std::future<double>> futures;
  for (int j = 0; j < 4; ++j)
    futures.push_back(svc.submit([&svc, j] {
      std::vector<double> vals(8, 0.0);
      std::vector<std::function<void()>> tasks;
      for (int i = 0; i < 8; ++i)
        tasks.push_back([&vals, i, j] { vals[i] = 100.0 * j + i; });
      svc.run(tasks);
      double sum = 0.0;
      for (double v : vals) sum += v;
      return sum;
    }));
  for (int j = 0; j < 4; ++j) EXPECT_DOUBLE_EQ(futures[j].get(), 800.0 * j + 28.0);
}

TEST(EvalService, BatchErrorsPropagateToSubmitter) {
  serve::EvalService svc(serve::EvalService::Options{2, 64});
  std::vector<std::function<void()>> tasks(3, [] {});
  tasks[1] = [] { throw Error("candidate failed"); };
  EXPECT_THROW(svc.run(tasks), Error);
}

TEST(Serve, RunQaoaBitIdenticalForAnyWorkerCount) {
  const graph::Instance inst = graph::paper_task1();
  const backend::FakeBackend& dev = toronto();
  // SPSA submits 2-candidate batches every iteration — real fan-out.
  const core::RunConfig cfg = tiny_config("spsa");
  const core::RunResult inline_result =
      core::run_qaoa(inst, dev, core::ModelKind::GateLevel, cfg);

  for (std::size_t workers : {std::size_t{1}, std::size_t{4}}) {
    serve::EvalService svc(serve::EvalService::Options{workers, 1024});
    const core::RunResult r = core::run_qaoa(inst, dev, core::ModelKind::GateLevel, cfg,
                                             &svc, svc.block_cache());
    expect_same_result(r, inline_result);
  }
}

TEST(Serve, SweepMatchesSequentialExecutionBitExactly) {
  const backend::FakeBackend& dev = toronto();
  std::vector<serve::JobRequest> jobs;
  jobs.push_back({{"t1-gate-cobyla", graph::paper_task1(), &dev,
                   core::ModelKind::GateLevel, tiny_config("cobyla")}});
  jobs.push_back({{"t1-hybrid-spsa", graph::paper_task1(), &dev, core::ModelKind::Hybrid,
                   tiny_config("spsa")}});
  jobs.push_back({{"t2-gate-nm", graph::paper_task2(), &dev, core::ModelKind::GateLevel,
                   tiny_config("neldermead")}});

  std::vector<core::RunResult> sequential;
  for (const serve::JobRequest& request : jobs)
    sequential.push_back(core::run_qaoa(request.run.instance, *request.run.dev,
                                        request.run.kind, request.run.config));

  serve::SweepRunner runner(serve::SweepRunner::Options{4, 4096});
  const std::vector<core::RunResult> parallel = runner.run_all(jobs);

  ASSERT_EQ(parallel.size(), sequential.size());
  for (std::size_t i = 0; i < jobs.size(); ++i) {
    SCOPED_TRACE(jobs[i].run.label);
    expect_same_result(parallel[i], sequential[i]);
  }
  // The whole grid shares one compiled-block cache: re-bound blocks across
  // iterations and runs must hit.
  const serve::BlockCache::Stats stats = runner.cache_stats();
  EXPECT_GT(stats.hits, stats.misses);
}

TEST(Serve, ConcurrentSweepSharesCompiledPulseMixers) {
  // Two identical hybrid runs through one SweepRunner: the second run's
  // pulse mixer blocks (every candidate angle) must be served from the
  // shared cache compiled by the first — the cross-run sharing the per-kind
  // stats exist to make visible.
  const backend::FakeBackend& dev = toronto();
  std::vector<serve::JobRequest> jobs;
  jobs.push_back({{"hybrid-a", graph::paper_task1(), &dev, core::ModelKind::Hybrid,
                   tiny_config("cobyla")}});
  jobs.push_back({{"hybrid-b", graph::paper_task1(), &dev, core::ModelKind::Hybrid,
                   tiny_config("cobyla")}});

  serve::SweepRunner runner(serve::SweepRunner::Options{2, 4096});
  const std::vector<core::RunResult> results = runner.run_all(jobs);
  expect_same_result(results[0], results[1]);

  // Each run's final best-point evaluation re-binds angles its own
  // optimizer already compiled, so pulse hits are guaranteed even if the
  // two runs race in lockstep (concurrent first-touch lookups of one key
  // may legitimately both miss — the cache lets racing workers
  // double-compile rather than block).
  const serve::BlockCache::Stats stats = runner.cache_stats();
  EXPECT_GT(stats.pulse_hits, 0u);
}

TEST(Serve, IdealExpectationBatchMatchesPointwise) {
  const graph::Instance inst = graph::paper_task1();
  std::vector<std::vector<double>> grid;
  for (double gamma : {0.2, 0.5})
    for (double beta : {0.1, 0.3}) grid.push_back({gamma, beta});

  serve::EvalService svc(serve::EvalService::Options{3, 64});
  const std::vector<double> batched =
      core::ideal_qaoa_expectation_batch(inst.graph, 1, grid, &svc);
  ASSERT_EQ(batched.size(), grid.size());
  for (std::size_t i = 0; i < grid.size(); ++i)
    EXPECT_DOUBLE_EQ(batched[i], core::ideal_qaoa_expectation(inst.graph, 1, grid[i]));
}

TEST(Serve, VqeDispatcherMatchesInline) {
  const la::PauliSum ham = core::tfim_hamiltonian(3, 1.0, 0.7);
  const qc::Circuit ansatz = core::hardware_efficient_pqc(3, 1, "linear");
  core::VqeConfig cfg;
  cfg.max_evaluations = 40;
  cfg.optimizer = "neldermead";
  const core::VqeResult inline_result = core::run_vqe(ham, ansatz, cfg);
  serve::EvalService svc(serve::EvalService::Options{4, 64});
  const core::VqeResult pooled = core::run_vqe(ham, ansatz, cfg, &svc);
  EXPECT_EQ(pooled.optimizer.x, inline_result.optimizer.x);
  EXPECT_EQ(pooled.energy, inline_result.energy);
  EXPECT_EQ(pooled.optimizer.history, inline_result.optimizer.history);
}
