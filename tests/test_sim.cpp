#include <gtest/gtest.h>

#include <cmath>

#include "circuit/circuit.hpp"
#include "common/rng.hpp"
#include "linalg/pauli.hpp"
#include "linalg/vec.hpp"
#include "sim/statevector.hpp"

using namespace hgp;
using qc::Circuit;
using qc::GateKind;
using sim::Statevector;

TEST(Statevector, InitialState) {
  Statevector sv(2);
  EXPECT_EQ(sv.data().size(), 4u);
  EXPECT_EQ(sv.data()[0], la::cxd(1, 0));
  EXPECT_NEAR(la::norm(sv.data()), 1.0, 1e-15);
}

TEST(Statevector, BellState) {
  Statevector sv(2);
  Circuit c(2);
  c.h(0).cx(0, 1);
  sv.run(c);
  EXPECT_NEAR(std::norm(sv.data()[0]), 0.5, 1e-12);
  EXPECT_NEAR(std::norm(sv.data()[3]), 0.5, 1e-12);
  EXPECT_NEAR(std::norm(sv.data()[1]) + std::norm(sv.data()[2]), 0.0, 1e-12);
}

TEST(Statevector, GhzOnFiveQubits) {
  Statevector sv(5);
  Circuit c(5);
  c.h(0);
  for (std::size_t q = 0; q + 1 < 5; ++q) c.cx(q, q + 1);
  sv.run(c);
  EXPECT_NEAR(std::norm(sv.data()[0]), 0.5, 1e-12);
  EXPECT_NEAR(std::norm(sv.data()[31]), 0.5, 1e-12);
}

TEST(Statevector, CxDirectionMatters) {
  // |10> (qubit0 = 1): CX(0 -> 1) flips qubit 1; CX(1 -> 0) does nothing.
  Statevector sv(2);
  Circuit flip(2);
  flip.x(0).cx(0, 1);
  sv.run(flip);
  EXPECT_NEAR(std::norm(sv.data()[0b11]), 1.0, 1e-12);

  Statevector sv2(2);
  Circuit noflip(2);
  noflip.x(0).cx(1, 0);
  sv2.run(noflip);
  EXPECT_NEAR(std::norm(sv2.data()[0b01]), 1.0, 1e-12);
}

TEST(Statevector, GenericThreeQubitPathMatchesTwoQubitFastPath) {
  Statevector a(3), b(3);
  Circuit prep(3);
  prep.h(0).ry(1, 0.7).cx(0, 2).rz(2, -0.3);
  a.run(prep);
  b.run(prep);

  // kron(cx, I) listed on {0,1,2} puts cx's control on sub-index bit 1 (= q1)
  // and target on bit 2 (= q2): identical to the 2-qubit fast path on {1,2}.
  const auto cx = qc::gate_matrix(GateKind::CX);
  b.apply_matrix(cx, {1, 2});
  a.apply_matrix(la::kron(cx, la::CMat::identity(2)), {0, 1, 2});
  EXPECT_LT(la::max_abs_diff(a.data(), b.data()), 1e-12);
}

TEST(Statevector, GenericPathScatteredQubitsMatchesFactoredApplication) {
  // The generic k-qubit path's block enumeration must hit exactly the
  // indices with all target bits clear even when the targets are scattered
  // (and listed out of ascending order): A⊗B⊗C on {5, 0, 3} equals the
  // factors applied separately (C on sub-bit 0 = qubit 5, per the
  // first-listed-is-least-significant convention).
  Statevector a(6), b(6);
  Circuit prep(6);
  prep.h(0).ry(3, 0.7).cx(0, 5).rz(5, -0.3).ry(1, 0.4).cx(3, 4);
  a.run(prep);
  b.run(prep);

  const auto sx = qc::gate_matrix(GateKind::SX);
  const auto rz = qc::gate_matrix(GateKind::RZ, {0.9});
  const auto ry = qc::gate_matrix(GateKind::RY, {1.3});
  a.apply_matrix(la::kron(ry, la::kron(rz, sx)), {5, 0, 3});
  b.apply_matrix(sx, {5});
  b.apply_matrix(rz, {0});
  b.apply_matrix(ry, {3});
  EXPECT_LT(la::max_abs_diff(a.data(), b.data()), 1e-12);
}

TEST(Statevector, SamplingMatchesProbabilities) {
  Statevector sv(2);
  Circuit c(2);
  c.h(0).h(1);
  sv.run(c);
  Rng rng(99);
  const sim::Counts counts = sv.sample(40000, rng);
  for (const auto& [bits, n] : counts) EXPECT_NEAR(double(n) / 40000.0, 0.25, 0.02) << bits;
}

TEST(Statevector, SamplingDeterministicUnderSeed) {
  Statevector sv(3);
  Circuit c(3);
  c.h(0).cx(0, 1).ry(2, 1.2);
  sv.run(c);
  Rng r1(5), r2(5);
  EXPECT_EQ(sv.sample(500, r1), sv.sample(500, r2));
}

TEST(Statevector, ExpectationMatchesAnalytic) {
  Statevector sv(2);
  Circuit c(2);
  c.h(0).cx(0, 1);  // Bell
  sv.run(c);
  la::PauliSum obs(2);
  obs.add(1.0, "ZZ");
  obs.add(0.5, "XX");
  EXPECT_NEAR(sv.expectation(obs), 1.5, 1e-12);
}

TEST(Statevector, RotationExpectationSweep) {
  // <Z> after RY(t) = cos(t); <X> = sin(t).
  for (double t : {0.0, 0.4, 1.1, 2.2, 3.0}) {
    Statevector sv(1);
    Circuit c(1);
    c.ry(0, t);
    sv.run(c);
    la::PauliSum z(1), x(1);
    z.add(1.0, "Z");
    x.add(1.0, "X");
    EXPECT_NEAR(sv.expectation(z), std::cos(t), 1e-12);
    EXPECT_NEAR(sv.expectation(x), std::sin(t), 1e-12);
  }
}

TEST(Statevector, CollapseRenormalizes) {
  Statevector sv(2);
  Circuit c(2);
  c.h(0).cx(0, 1);
  sv.run(c);
  const double p = sv.collapse(0, true);
  EXPECT_NEAR(p, 0.5, 1e-12);
  EXPECT_NEAR(la::norm(sv.data()), 1.0, 1e-12);
  EXPECT_NEAR(std::norm(sv.data()[0b11]), 1.0, 1e-12);
  EXPECT_NEAR(sv.prob_one(1), 1.0, 1e-12);
}

TEST(Statevector, ProbOne) {
  Statevector sv(1);
  Circuit c(1);
  c.ry(0, 1.0);
  sv.run(c);
  EXPECT_NEAR(sv.prob_one(0), std::sin(0.5) * std::sin(0.5), 1e-12);
}

TEST(BitsToString, BigEndianPrinting) {
  EXPECT_EQ(sim::bits_to_string(0b01, 2), "01");
  EXPECT_EQ(sim::bits_to_string(0b10, 2), "10");
  EXPECT_EQ(sim::bits_to_string(0b001, 3), "001");  // qubit 0 measured 1
  EXPECT_EQ(sim::bits_to_string(0b100, 3), "100");
}

TEST(Statevector, RzzPhasesOnBasisStates) {
  for (std::uint64_t basis : {0b00ull, 0b01ull, 0b10ull, 0b11ull}) {
    Statevector sv(2);
    Circuit prep(2);
    if (basis & 1) prep.x(0);
    if (basis & 2) prep.x(1);
    prep.rzz(0, 1, 0.8);
    sv.run(prep);
    const double zz = ((basis & 1) != 0) == ((basis & 2) != 0) ? 1.0 : -1.0;
    EXPECT_NEAR(std::arg(sv.data()[basis]), -0.4 * zz, 1e-12);
  }
}
