// The executor's two noise engines: deterministic threaded trajectory
// sampling and the exact density-matrix pass, plus their statistical
// agreement and the virtual-RZ folding.
#include <gtest/gtest.h>

#include <cmath>

#include "backend/presets.hpp"
#include "common/rng.hpp"
#include "core/executor.hpp"
#include "sim/state.hpp"

using namespace hgp;
using core::Engine;
using core::ExecOp;
using core::Executor;
using core::ExecutorOptions;
using core::Program;

namespace {

const backend::FakeBackend& toronto() {
  static const backend::FakeBackend dev = backend::make_toronto();
  return dev;
}

/// H (native basis) on `q`.
void push_h(Program& prog, std::size_t q) {
  prog.ops.push_back(
      ExecOp::from_gate(qc::Op{qc::GateKind::RZ, {q}, {qc::Param::constant(la::kPi / 2)}}));
  prog.ops.push_back(ExecOp::from_gate(qc::Op{qc::GateKind::SX, {q}, {}}));
  prog.ops.push_back(
      ExecOp::from_gate(qc::Op{qc::GateKind::RZ, {q}, {qc::Param::constant(la::kPi / 2)}}));
}

Program bell_program() {
  Program prog;
  push_h(prog, 0);
  prog.ops.push_back(ExecOp::from_gate(qc::Op{qc::GateKind::CX, {0, 1}, {}}));
  prog.measure_qubits = {0, 1};
  return prog;
}

double total_shots(const sim::Counts& counts) {
  double t = 0.0;
  for (const auto& [bits, n] : counts) t += static_cast<double>(n);
  return t;
}

}  // namespace

TEST(EngineNames, RoundTrip) {
  EXPECT_EQ(core::engine_from_name("trajectory"), Engine::Trajectory);
  EXPECT_EQ(core::engine_from_name("density"), Engine::ExactDensity);
  EXPECT_THROW(core::engine_from_name("mps"), Error);
  EXPECT_EQ(core::engine_name(Engine::ExactDensity), "density");
}

TEST(ThreadedTrajectories, BitIdenticalAcrossThreadCounts) {
  const Program prog = bell_program();
  sim::Counts reference;
  for (std::size_t threads : {1u, 2u, 4u, 7u}) {
    ExecutorOptions opts;
    opts.num_threads = threads;
    Executor ex(toronto(), opts);
    Rng rng(99);
    const sim::Counts counts = ex.run(prog, 1500, rng);  // spans several batches
    EXPECT_NEAR(total_shots(counts), 1500.0, 0.0);
    if (threads == 1)
      reference = counts;
    else
      EXPECT_EQ(counts, reference) << "threads=" << threads;
  }
}

TEST(ThreadedTrajectories, CallerRngAdvanceIsShotIndependent) {
  // The parallel engine draws exactly one value from the caller's Rng, so
  // downstream consumers see the same stream no matter the shot count.
  const Program prog = bell_program();
  Executor ex(toronto());
  Rng r1(3), r2(3);
  ex.run(prog, 100, r1);
  ex.run(prog, 2000, r2);
  EXPECT_EQ(r1.next_u64(), r2.next_u64());
}

TEST(ExactDensity, MatchesTrajectoryStatistics) {
  // Same noisy Bell program through both engines: the trajectory frequencies
  // must converge to the exact density-matrix distribution.
  const Program prog = bell_program();

  ExecutorOptions dopts;
  dopts.engine = Engine::ExactDensity;
  Executor exact(toronto(), dopts);
  Rng drng(11);
  const std::size_t shots = 40000;
  const sim::Counts dc = exact.run(prog, shots, drng);

  Executor traj(toronto());
  Rng trng(13);
  const sim::Counts tc = traj.run(prog, shots, trng);

  for (std::uint64_t bits = 0; bits < 4; ++bits) {
    const double fd = dc.count(bits) ? dc.at(bits) / double(shots) : 0.0;
    const double ft = tc.count(bits) ? tc.at(bits) / double(shots) : 0.0;
    EXPECT_NEAR(fd, ft, 0.015) << "bits=" << bits;
  }
}

TEST(ExactDensity, NoiseVisibleAndDeterministicGivenSeed) {
  const Program prog = bell_program();
  ExecutorOptions opts;
  opts.engine = Engine::ExactDensity;
  Executor ex(toronto(), opts);
  Rng r1(21), r2(21);
  const sim::Counts a = ex.run(prog, 4000, r1);
  const sim::Counts b = ex.run(prog, 4000, r2);
  EXPECT_EQ(a, b);
  // Noise leaks probability out of the Bell pair.
  const double good = (a.count(0b00) ? a.at(0b00) : 0) + (a.count(0b11) ? a.at(0b11) : 0);
  EXPECT_LT(good / 4000.0, 0.999);
  EXPECT_GT(good / 4000.0, 0.80);
}

TEST(ExactDensity, RejectsLargeRegisters) {
  Program prog;
  // 12 active qubits exceed the density engine's dense-rho budget.
  for (std::size_t q : {0u, 1u, 2u, 3u, 4u, 5u, 6u, 7u, 8u, 9u, 10u, 11u})
    prog.ops.push_back(ExecOp::from_gate(qc::Op{qc::GateKind::SX, {q}, {}}));
  prog.measure_qubits = {0, 1, 2, 3, 4, 5, 6, 7, 8, 9, 10, 11};
  ExecutorOptions opts;
  opts.engine = Engine::ExactDensity;
  Executor ex(toronto(), opts);
  Rng rng(1);
  EXPECT_THROW(ex.run(prog, 16, rng), Error);
}

TEST(VirtualFolding, FoldedRzRunMatchesSingleRz) {
  // RZ(a) RZ(b) ... folded into one diagonal block must act exactly like
  // RZ(a+b): compare deterministic noiseless sampling under a shared seed.
  ExecutorOptions noiseless;
  noiseless.noise = false;
  noiseless.readout_error = false;
  noiseless.coherent_noise = false;

  auto ramsey = [&](std::vector<double> angles) {
    Program prog;
    push_h(prog, 0);
    for (double a : angles)
      prog.ops.push_back(
          ExecOp::from_gate(qc::Op{qc::GateKind::RZ, {0}, {qc::Param::constant(a)}}));
    push_h(prog, 0);
    prog.measure_qubits = {0};
    Executor ex(toronto(), noiseless);
    Rng rng(31);
    return ex.run(prog, 2000, rng);
  };

  const sim::Counts split = ramsey({0.3, 0.5, 0.4});
  const sim::Counts merged = ramsey({1.2});
  EXPECT_EQ(split, merged);
}

TEST(VirtualFolding, ReportCountsFoldedBlocksOnce) {
  Program prog;
  prog.ops.push_back(
      ExecOp::from_gate(qc::Op{qc::GateKind::RZ, {0}, {qc::Param::constant(0.2)}}));
  prog.ops.push_back(
      ExecOp::from_gate(qc::Op{qc::GateKind::RZ, {0}, {qc::Param::constant(0.3)}}));
  prog.ops.push_back(ExecOp::from_gate(qc::Op{qc::GateKind::SX, {0}, {}}));
  prog.measure_qubits = {0};
  ExecutorOptions noiseless;
  noiseless.noise = false;
  noiseless.readout_error = false;
  noiseless.coherent_noise = false;
  Executor ex(toronto(), noiseless);
  Rng rng(1);
  ex.run(prog, 10, rng);
  EXPECT_EQ(ex.last_report().block_count, 2u);  // fused RZ + SX
}

TEST(RngChild, StreamsAreDeterministicAndDecorrelated) {
  Rng a = Rng::child(123, 0);
  Rng b = Rng::child(123, 0);
  Rng c = Rng::child(123, 1);
  EXPECT_EQ(a.next_u64(), b.next_u64());
  bool differs = false;
  for (int i = 0; i < 4; ++i) differs |= (a.next_u64() != c.next_u64());
  EXPECT_TRUE(differs);
}
