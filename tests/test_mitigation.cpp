#include <gtest/gtest.h>

#include <cmath>

#include "common/error.hpp"
#include "common/rng.hpp"
#include "mitigation/cvar.hpp"
#include "mitigation/m3.hpp"
#include "mitigation/zne.hpp"
#include "linalg/vec.hpp"
#include "sim/statevector.hpp"

using namespace hgp;
using mit::M3Mitigator;
using noise::ReadoutError;
using sim::Counts;

namespace {

/// Push ideal counts through the confusion model many times to get noisy
/// counts for mitigation tests.
Counts corrupt(const Counts& ideal, const std::vector<ReadoutError>& errors, Rng& rng) {
  Counts noisy;
  for (const auto& [bits, n] : ideal)
    for (std::size_t s = 0; s < n; ++s) ++noisy[noise::apply_readout(bits, errors, rng)];
  return noisy;
}

}  // namespace

TEST(M3, IdentityWhenNoReadoutError) {
  const std::vector<ReadoutError> errors = {{0.0, 0.0}, {0.0, 0.0}};
  const M3Mitigator m3(errors);
  Counts counts = {{0b00, 500}, {0b11, 500}};
  const auto quasi = m3.mitigate(counts);
  EXPECT_TRUE(quasi.converged);
  EXPECT_NEAR(quasi.probs.at(0b00), 0.5, 1e-9);
  EXPECT_NEAR(quasi.probs.at(0b11), 0.5, 1e-9);
  EXPECT_NEAR(quasi.overhead, 1.0, 1e-9);
}

TEST(M3, RecoversExpectationUnderConfusion) {
  Rng rng(7);
  // Ideal: GHZ-like counts -> <Z0 Z1> = 1.
  Counts ideal = {{0b00, 6000}, {0b11, 6000}};
  const std::vector<ReadoutError> errors = {{0.04, 0.08}, {0.03, 0.06}};
  const Counts noisy = corrupt(ideal, errors, rng);

  auto zz = [](std::uint64_t bits) {
    const int parity = __builtin_popcountll(bits & 0b11) % 2;
    return parity == 0 ? 1.0 : -1.0;
  };
  // Noisy expectation is visibly biased.
  double noisy_zz = 0.0;
  std::size_t shots = 0;
  for (const auto& [bits, n] : noisy) {
    noisy_zz += zz(bits) * double(n);
    shots += n;
  }
  noisy_zz /= double(shots);
  EXPECT_LT(noisy_zz, 0.87);

  const M3Mitigator m3(errors);
  const auto quasi = m3.mitigate(noisy);
  EXPECT_TRUE(quasi.converged);
  const double mitigated = quasi.expectation(zz);
  EXPECT_NEAR(mitigated, 1.0, 0.03);
  EXPECT_GT(mitigated, noisy_zz);
  EXPECT_GE(quasi.overhead, 1.0);
}

TEST(M3, QuasiProbsSumToOne) {
  Rng rng(8);
  Counts ideal = {{0b000, 300}, {0b101, 500}, {0b010, 200}, {0b111, 24}};
  const std::vector<ReadoutError> errors = {{0.02, 0.05}, {0.03, 0.04}, {0.01, 0.06}};
  const Counts noisy = corrupt(ideal, errors, rng);
  const auto quasi = M3Mitigator(errors).mitigate(noisy);
  double sum = 0.0;
  for (const auto& [bits, p] : quasi.probs) sum += p;
  EXPECT_NEAR(sum, 1.0, 1e-6);
}

TEST(M3, RejectsBadInput) {
  EXPECT_THROW(M3Mitigator({}), Error);
  EXPECT_THROW(M3Mitigator({{0.6, 0.1}}), Error);
  const M3Mitigator m3({{0.01, 0.02}});
  EXPECT_THROW(m3.mitigate({}), Error);
}

TEST(Cvar, AlphaOneIsMean) {
  Counts counts = {{0, 250}, {1, 750}};
  auto value = [](std::uint64_t b) { return b == 0 ? 4.0 : 8.0; };
  EXPECT_NEAR(mit::cvar_from_counts(counts, value, 1.0), 7.0, 1e-12);
}

TEST(Cvar, SmallAlphaPicksBestTail) {
  Counts counts = {{0, 700}, {1, 300}};
  auto value = [](std::uint64_t b) { return b == 0 ? 2.0 : 9.0; };
  // Best 30% of shots are exactly the 300 shots at value 9.
  EXPECT_NEAR(mit::cvar_from_counts(counts, value, 0.3), 9.0, 1e-12);
  // Minimization flips the tail.
  EXPECT_NEAR(mit::cvar_from_counts(counts, value, 0.3, /*maximize=*/false), 2.0, 1e-12);
}

TEST(Cvar, FractionalTailInterpolates) {
  Counts counts = {{0, 500}, {1, 500}};
  auto value = [](std::uint64_t b) { return b == 0 ? 0.0 : 10.0; };
  // alpha = 0.75: tail = 500 shots at 10 plus 250 shots at 0.
  EXPECT_NEAR(mit::cvar_from_counts(counts, value, 0.75), 10.0 * 500 / 750, 1e-12);
}

TEST(Cvar, QuasiDistributionIgnoresNegativeWeights) {
  mit::QuasiDistribution quasi;
  quasi.probs = {{0, 0.7}, {1, 0.4}, {2, -0.1}};
  auto value = [](std::uint64_t b) { return double(b); };
  // Best tail under maximize: bits=1 (value 1) has weight 0.4 >= alpha*1.1.
  EXPECT_NEAR(mit::cvar_from_quasi(quasi, value, 0.3), 1.0, 1e-9);
}

TEST(Cvar, RejectsBadAlpha) {
  Counts counts = {{0, 10}};
  auto value = [](std::uint64_t) { return 1.0; };
  EXPECT_THROW(mit::cvar_from_counts(counts, value, 0.0), Error);
  EXPECT_THROW(mit::cvar_from_counts(counts, value, 1.5), Error);
}

TEST(Zne, FoldingPreservesUnitary) {
  qc::Circuit c(2);
  c.h(0).cx(0, 1).rz(1, 0.7).sx(1);
  const qc::Circuit folded = mit::fold_gates(c, 3);
  EXPECT_GT(folded.size(), c.size());
  sim::Statevector a(2), b(2);
  a.run(c);
  b.run(folded);
  EXPECT_LT(la::max_abs_diff_up_to_phase(a.data(), b.data()), 1e-12);
}

TEST(Zne, FoldCountScaling) {
  qc::Circuit c(1);
  c.x(0);
  EXPECT_EQ(mit::fold_gates(c, 1).count(qc::GateKind::X), 1u);
  EXPECT_EQ(mit::fold_gates(c, 3).count(qc::GateKind::X), 3u);
  EXPECT_EQ(mit::fold_gates(c, 5).count(qc::GateKind::X), 5u);
  EXPECT_THROW(mit::fold_gates(c, 2), Error);
}

TEST(Zne, RichardsonLinearAndQuadratic) {
  // Linear data y = 1 - 0.1 x.
  EXPECT_NEAR(mit::richardson_extrapolate({{1.0, 0.9}, {3.0, 0.7}}), 1.0, 1e-12);
  // Quadratic data y = 1 - 0.1 x - 0.02 x^2.
  auto y = [](double x) { return 1.0 - 0.1 * x - 0.02 * x * x; };
  EXPECT_NEAR(mit::richardson_extrapolate({{1.0, y(1)}, {3.0, y(3)}, {5.0, y(5)}}), 1.0,
              1e-12);
}
